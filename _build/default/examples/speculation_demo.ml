(* The two faces of speculative scheduling (paper Sections 5.3-5.4):

   1. In the minmax loop, both arm compares may move into BL1 because
      renaming gives the second one a fresh condition register
      (Figure 6's cr6 -> cr5).
   2. In the Section 5.3 two-sided if, only ONE of x=5 / x=3 may move:
      the second motion would clobber a live register and the merge
      point makes renaming impossible.

   Run with: dune exec examples/speculation_demo.exe *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_workloads

let machine = Machine.rs6k

let config =
  {
    Config.speculative with
    Config.unroll_small_loops = false;
    rotate_small_loops = false;
  }

let () =
  Fmt.pr "=== 1. minmax: speculation with renaming ===@.";
  let t = Minmax.build () in
  let cfg = Cfg.deep_copy t.Minmax.cfg in
  let reports = Global_sched.schedule machine config cfg in
  Validate.check_exn cfg;
  List.iter
    (fun (r : Global_sched.region_report) ->
      List.iter
        (fun (m : Global_sched.move) ->
          if m.Global_sched.speculative then
            Fmt.pr "  speculative: %a@." Global_sched.pp_move m)
        r.Global_sched.moves)
    reports;
  Fmt.pr "@.BL1 after scheduling:@.%a@.@." Block.pp (Cfg.block_of_label cfg "CL.0");

  Fmt.pr "=== 2. Section 5.3: the blocked second motion ===@.";
  let s = Section53.build () in
  Fmt.pr "before:@.%a@.@." Cfg.pp s.Section53.cfg;
  let reports = Global_sched.schedule machine config s.Section53.cfg in
  List.iter
    (fun (r : Global_sched.region_report) ->
      List.iter
        (fun (m : Global_sched.move) -> Fmt.pr "  moved:   %a@." Global_sched.pp_move m)
        r.Global_sched.moves;
      List.iter
        (fun (b : Global_sched.blocked) ->
          let reason =
            match b.Global_sched.reason with
            | `Live_on_exit r -> Fmt.str "%a is live on exit" Reg.pp r
            | `Rename_unsafe r ->
                Fmt.str "%a cannot be renamed (merged uses)" Reg.pp r
          in
          Fmt.pr "  blocked: uid %d (%s)@." b.Global_sched.blocked_uid reason)
        r.Global_sched.blocked)
    reports;
  Fmt.pr "@.after:@.%a@.@." Cfg.pp s.Section53.cfg;
  (* Both arms still print the right value. *)
  List.iter
    (fun selector ->
      let o =
        Simulator.run machine s.Section53.cfg (Section53.input ~selector s)
      in
      Fmt.pr "selector=%d prints %a@." selector
        Fmt.(list ~sep:comma string)
        o.Simulator.output)
    [ 1; 0 ]
