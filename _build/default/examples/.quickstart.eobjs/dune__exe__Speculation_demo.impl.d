examples/speculation_demo.ml: Block Cfg Config Fmt Gis_core Gis_ir Gis_machine Gis_sim Gis_workloads Global_sched List Machine Minmax Reg Section53 Simulator Validate
