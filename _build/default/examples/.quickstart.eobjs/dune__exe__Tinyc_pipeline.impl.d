examples/tinyc_pipeline.ml: Array Ast Cfg Codegen Config Fmt Gis_core Gis_frontend Gis_ir Gis_machine Gis_sim Gis_workloads List Machine Minmax Parser Pipeline Prng Simulator String Sys Validate
