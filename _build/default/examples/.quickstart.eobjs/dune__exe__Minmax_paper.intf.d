examples/minmax_paper.mli:
