examples/quickstart.ml: Builder Cfg Config Fmt Gis_core Gis_ir Gis_machine Gis_sim Global_sched Instr List Machine Pipeline Reg Simulator Validate
