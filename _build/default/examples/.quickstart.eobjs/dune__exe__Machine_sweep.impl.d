examples/machine_sweep.ml: Cfg Codegen Config Fmt Gis_core Gis_frontend Gis_ir Gis_machine Gis_sim Gis_workloads List Machine Minmax Pipeline Prng Simulator Spec_proxy
