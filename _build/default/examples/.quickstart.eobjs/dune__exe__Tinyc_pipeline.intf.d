examples/tinyc_pipeline.mli:
