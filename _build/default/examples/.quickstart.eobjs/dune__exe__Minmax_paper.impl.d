examples/minmax_paper.ml: Cfg Config Fmt Gis_core Gis_ir Gis_machine Gis_sim Gis_workloads List Machine Minmax Pipeline Prng Simulator
