examples/quickstart.mli:
