(* Parametric machine sweep (the paper's Section 6 closing remark: "we
   may expect even bigger payoffs in machines with a larger number of
   computational units").

   For each issue width, schedule the minmax loop and each SPEC proxy at
   all three levels and report simulated speedups over the local-only
   BASE on the same machine.

   Run with: dune exec examples/machine_sweep.exe *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_frontend
open Gis_workloads

let widths = [ 1; 2; 4; 8 ]

let measure machine compiled input config =
  let cfg = Cfg.deep_copy compiled in
  ignore (Pipeline.run machine config cfg);
  (Simulator.run machine cfg input).Simulator.cycles

let sweep name compiled input =
  Fmt.pr "@.%s:@." name;
  Fmt.pr "  width |    base |  useful | spec    | useful RTI | spec RTI@.";
  List.iter
    (fun width ->
      let machine = Machine.superscalar ~width in
      let base = measure machine compiled input Config.base in
      let useful = measure machine compiled input Config.useful_only in
      let spec = measure machine compiled input Config.speculative in
      let rti x = 100.0 *. (1.0 -. (float_of_int x /. float_of_int base)) in
      Fmt.pr "  %5d | %7d | %7d | %7d | %9.1f%% | %7.1f%%@." width base useful
        spec (rti useful) (rti spec))
    widths

let () =
  let t = Minmax.build () in
  let elements =
    let rng = Prng.create ~seed:17 in
    List.init 64 (fun _ -> Prng.int rng 1000)
  in
  sweep "minmax (Figures 2/5/6)" t.Minmax.cfg (Minmax.input t elements);
  List.iter
    (fun (p : Spec_proxy.t) ->
      let compiled = Spec_proxy.compile p in
      sweep
        (Fmt.str "%s proxy" p.Spec_proxy.name)
        compiled.Codegen.cfg
        (p.Spec_proxy.setup compiled))
    Spec_proxy.all
