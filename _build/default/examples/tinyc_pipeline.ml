(* The full compiler pipeline on Tiny-C source: parse -> lower to IR ->
   global scheduling -> local post-pass -> simulate. Pass a file name to
   compile your own program, or run without arguments for the paper's
   Figure 1 program.

   Run with: dune exec examples/tinyc_pipeline.exe [-- file.tc] *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_frontend
open Gis_workloads

let machine = Machine.rs6k

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let source =
    if Array.length Sys.argv > 1 then read_file Sys.argv.(1) else Minmax.source
  in
  Fmt.pr "=== source ===@.%s@." (String.trim source);
  let program = Parser.parse source in
  Fmt.pr "@.=== parsed (pretty-printed) ===@.%a@." Ast.pp_program program;
  let compiled = Codegen.compile program in
  Fmt.pr "@.=== machine IR (%d blocks, %d instructions) ===@.%a@."
    (Cfg.num_blocks compiled.Codegen.cfg)
    (Cfg.instr_count compiled.Codegen.cfg)
    Cfg.pp compiled.Codegen.cfg;
  let input =
    (* The paper's Figure 1 program wants an array and its length; give
       every array deterministic contents and set every uninitialised
       scalar that looks like a length to the element count. *)
    let rng = Prng.create ~seed:3 in
    let arrays =
      List.map
        (fun (name, _, len) -> (name, List.init len (fun _ -> Prng.int rng 100)))
        compiled.Codegen.arrays
    in
    let n_binding =
      match List.assoc_opt "n" compiled.Codegen.vars with
      | Some reg ->
          let shortest =
            List.fold_left
              (fun acc (_, _, len) -> min acc len)
              max_int compiled.Codegen.arrays
          in
          [ (reg, if shortest = max_int then 0 else shortest) ]
      | None -> []
    in
    {
      Simulator.no_input with
      Simulator.int_regs = n_binding;
      memory = Codegen.array_input compiled arrays;
    }
  in
  let baseline = Cfg.deep_copy compiled.Codegen.cfg in
  ignore (Pipeline.run machine Config.base baseline);
  let scheduled = Cfg.deep_copy compiled.Codegen.cfg in
  let stats = Pipeline.run machine Config.speculative scheduled in
  Validate.check_exn scheduled;
  Fmt.pr "@.=== after global scheduling ===@.%a@." Cfg.pp scheduled;
  Fmt.pr "@.%d loops unrolled, %d rotated, %d interblock motions@."
    stats.Pipeline.unrolled stats.Pipeline.rotated
    (List.length (Pipeline.moves stats));
  let run label cfg =
    let o = Simulator.run machine cfg input in
    Fmt.pr "%-22s: %6d cycles, %5d instructions, output [%a]@." label
      o.Simulator.cycles o.Simulator.instructions
      Fmt.(list ~sep:comma string)
      o.Simulator.output;
    o
  in
  Fmt.pr "@.=== simulation (rs6k) ===@.";
  let ob = run "base (local only)" baseline in
  let os = run "global + speculative" scheduled in
  if Simulator.observables ob <> Simulator.observables os then
    failwith "scheduling changed the program's behaviour!"
  else
    Fmt.pr "observable behaviour preserved; speedup %.2fx@."
      (float_of_int ob.Simulator.cycles /. float_of_int os.Simulator.cycles)
