(* Reproduces the paper's running example end to end: the minmax loop of
   Figure 2, its useful-only schedule (Figure 5) and its speculative
   schedule (Figure 6), with per-iteration cycle counts on the RS/6000
   model. Run with: dune exec examples/minmax_paper.exe *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_workloads

let machine = Machine.rs6k

(* The paper's configuration for the figures: no unrolling or rotation,
   so that the schedule stays comparable with the published listings. *)
let config level =
  {
    Config.default with
    Config.level;
    unroll_small_loops = false;
    rotate_small_loops = false;
  }

let elements =
  let rng = Prng.create ~seed:5 in
  List.init 64 (fun _ -> Prng.int rng 1000)

let measure label cfg t =
  let input = Minmax.input t elements in
  let per_iter =
    Simulator.cycles_per_iteration machine cfg ~header:t.Minmax.loop_header input
  in
  let outcome = Simulator.run machine cfg input in
  Fmt.pr "%-28s %5.1f cycles/iteration   output: %a@." label per_iter
    Fmt.(list ~sep:comma string)
    outcome.Simulator.output

let () =
  let t = Minmax.build () in
  Fmt.pr "=== Figure 2: original code ===@.%a@.@." Cfg.pp t.Minmax.cfg;
  measure "baseline (local only)"
    (let c = Cfg.deep_copy t.Minmax.cfg in
     ignore (Pipeline.run machine (config Config.Local) c);
     c)
    t;
  let useful = Cfg.deep_copy t.Minmax.cfg in
  ignore (Pipeline.run machine (config Config.Useful) useful);
  Fmt.pr "@.=== Figure 5: useful-only global scheduling ===@.%a@.@." Cfg.pp useful;
  measure "useful only" useful t;
  let spec = Cfg.deep_copy t.Minmax.cfg in
  ignore (Pipeline.run machine (config Config.Speculative) spec);
  Fmt.pr "@.=== Figure 6: useful + speculative ===@.%a@.@." Cfg.pp spec;
  measure "useful + speculative" spec t;
  let min_v, max_v = Minmax.reference_min_max elements in
  Fmt.pr "@.reference: print_int(%d), print_int(%d)@." min_v max_v
