(* Quickstart: build a small loop with the IR builder, run the full
   scheduling pipeline, and measure it on the RS/6000 model.

   Run with: dune exec examples/quickstart.exe *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
module B = Builder

let () =
  (* A loop that sums an array: the delayed load and the compare->branch
     delay leave stalls that global scheduling fills. *)
  let gen = Reg.Gen.create () in
  let acc = Reg.Gen.fresh gen Reg.Gpr in
  let addr = Reg.Gen.fresh gen Reg.Gpr in
  let i = Reg.Gen.fresh gen Reg.Gpr in
  let n = Reg.Gen.fresh gen Reg.Gpr in
  let x = Reg.Gen.fresh gen Reg.Gpr in
  let c = Reg.Gen.fresh gen Reg.Cr in
  let cfg =
    B.func ~reg_gen:gen
      [
        ( "entry",
          [ B.li ~dst:acc 0; B.li ~dst:addr 1020; B.li ~dst:i 0;
            B.cmp ~dst:c ~lhs:i ~rhs:n ],
          B.bt ~cr:c ~cond:Instr.Lt ~taken:"loop" ~fallthru:"exit" );
        ( "loop",
          [ B.load_update ~dst:x ~base:addr ~offset:4 ],
          B.jmp "body" );
        ( "body",
          [ B.add ~dst:acc ~lhs:acc ~rhs:x ],
          B.jmp "latch" );
        ( "latch",
          [ B.addi ~dst:i ~lhs:i 1; B.cmp ~dst:c ~lhs:i ~rhs:n ],
          B.bt ~cr:c ~cond:Instr.Lt ~taken:"loop" ~fallthru:"exit" );
        ("exit", [ B.call "print_int" [ acc ] ], Instr.Halt);
      ]
  in
  Validate.check_exn cfg;
  let machine = Machine.rs6k in
  let elements = List.init 40 (fun k -> k * k mod 97) in
  let input =
    {
      Simulator.no_input with
      Simulator.int_regs = [ (n, List.length elements) ];
      memory = List.mapi (fun k v -> (1024 + (4 * k), v)) elements;
    }
  in
  let measure label cfg =
    let o = Simulator.run machine cfg input in
    Fmt.pr "%-12s %4d cycles total, output %a@." label o.Simulator.cycles
      Fmt.(list ~sep:comma string)
      o.Simulator.output
  in
  Fmt.pr "--- original code ---@.%a@.@." Cfg.pp cfg;
  measure "baseline" cfg;
  let scheduled = Cfg.deep_copy cfg in
  let stats = Pipeline.run machine Config.speculative scheduled in
  Fmt.pr "@.--- after global scheduling (%d unrolled, %d rotated) ---@.%a@.@."
    stats.Pipeline.unrolled stats.Pipeline.rotated Cfg.pp scheduled;
  List.iter
    (fun m -> Fmt.pr "motion: %a@." Global_sched.pp_move m)
    (Pipeline.moves stats);
  measure "scheduled" scheduled
