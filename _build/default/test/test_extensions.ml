(* Tests for the extensions beyond the paper's prototype: register-web
   splitting (Section 4.2's renaming pre-pass), n-branch speculation
   (Section 7 future work) and profile-guided speculation (Section 1's
   "branch probabilities, whenever available"). *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_workloads
module B = Builder

let machine = Machine.rs6k

(* ---- register webs ---- *)

let test_webs_split_minmax () =
  let t = Minmax.build () in
  let cfg = t.Minmax.cfg in
  let input = Minmax.input t [ 3; 1; 4; 1; 5; 9 ] in
  let expected = Simulator.observables (Simulator.run machine cfg input) in
  let stats = Webs.split cfg in
  Validate.check_exn cfg;
  (* cr7 carries three independent webs (I3/I4, I8/I9, I15/I16) and cr6
     two (I5/I6, I12/I13): at least three renames happen. *)
  Alcotest.(check bool)
    (Fmt.str "some webs renamed (%d/%d)" stats.Webs.webs_renamed
       stats.Webs.webs_seen)
    true
    (stats.Webs.webs_renamed >= 3);
  Alcotest.(check string) "semantics preserved" expected
    (Simulator.observables (Simulator.run machine cfg input));
  (* Idempotent. *)
  let again = Webs.split cfg in
  Alcotest.(check int) "second run renames nothing" 0 again.Webs.webs_renamed

let test_webs_keep_externals_and_update_bases () =
  let t = Minmax.build () in
  let cfg = t.Minmax.cfg in
  ignore (Webs.split cfg);
  (* r27 (the parameter n) must keep its name: its value comes from
     outside the procedure. r31 is threaded through an update-form load
     around the loop, so its web is tainted too. *)
  let uses_reg r =
    List.exists (fun i -> List.exists (Reg.equal r) (Instr.uses i)) (Cfg.all_instrs cfg)
  in
  Alcotest.(check bool) "n still read" true (uses_reg t.Minmax.n_reg);
  let r31 =
    List.find_map
      (fun i ->
        match Instr.kind i with
        | Instr.Load { base; update = true; _ } -> Some base
        | _ -> None)
      (Cfg.all_instrs cfg)
  in
  match r31 with
  | Some base -> Alcotest.(check int) "LU base unrenamed" 31 base.Reg.id
  | None -> Alcotest.fail "expected the LU to survive"

(* After web splitting, the Figure 6 motions need no scheduler renaming:
   the two compares already write different registers. *)
let test_webs_remove_scheduler_renames () =
  let t = Minmax.build () in
  let cfg = t.Minmax.cfg in
  let config =
    {
      Config.speculative with
      Config.split_webs = true;
      unroll_small_loops = false;
      rotate_small_loops = false;
    }
  in
  ignore (Webs.split cfg);
  let reports = Global_sched.schedule machine config cfg in
  Validate.check_exn cfg;
  let moves = List.concat_map (fun r -> r.Global_sched.moves) reports in
  let spec_into_bl1 =
    List.filter
      (fun (m : Global_sched.move) ->
        m.Global_sched.to_label = "CL.0" && m.Global_sched.speculative)
      moves
  in
  Alcotest.(check int) "both compares still move" 2 (List.length spec_into_bl1);
  Alcotest.(check bool) "no renaming was needed" true
    (List.for_all
       (fun (m : Global_sched.move) -> m.Global_sched.renamed = None)
       spec_into_bl1)

let test_webs_via_pipeline_preserves () =
  List.iter
    (fun seed ->
      let compiled = Random_prog.generate_compiled ~seed in
      let input = Random_prog.random_input ~seed compiled in
      let cfg = compiled.Gis_frontend.Codegen.cfg in
      let expected = Simulator.observables (Simulator.run machine cfg input) in
      let scheduled = Cfg.deep_copy cfg in
      ignore
        (Pipeline.run machine
           { Config.speculative with Config.split_webs = true }
           scheduled);
      Validate.check_exn scheduled;
      Alcotest.(check string)
        (Fmt.str "seed %d" seed)
        expected
        (Simulator.observables (Simulator.run machine scheduled input)))
    [ 3; 17; 99; 254; 1023 ]

(* ---- n-branch speculation ---- *)

(* A: outer test; B: inner test (degree 1 from A); C: a compare two
   branches deep (degree 2 from A). *)
let nested_compare_cfg () =
  let g = Reg.Gen.create () in
  let p = Reg.Gen.fresh g Reg.Gpr in
  let q = Reg.Gen.fresh g Reg.Gpr in
  let c1 = Reg.Gen.fresh g Reg.Cr in
  let c2 = Reg.Gen.fresh g Reg.Cr in
  let c3 = Reg.Gen.fresh g Reg.Cr in
  let out = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ("A", [ B.cmpi ~dst:c1 ~lhs:p 0 ],
         B.bt ~cr:c1 ~cond:Instr.Gt ~taken:"B" ~fallthru:"J");
        ("B", [ B.cmpi ~dst:c2 ~lhs:q 0 ],
         B.bt ~cr:c2 ~cond:Instr.Gt ~taken:"C" ~fallthru:"J");
        ("C", [ B.cmp ~dst:c3 ~lhs:p ~rhs:q ],
         B.bt ~cr:c3 ~cond:Instr.Lt ~taken:"X" ~fallthru:"Y");
        ("X", [ B.li ~dst:out 1 ], B.jmp "J");
        ("Y", [ B.li ~dst:out 2 ], B.jmp "J");
        ("J", [ B.call "print_int" [ out ] ], Instr.Halt);
      ]
  in
  Validate.check_exn cfg;
  (cfg, p, q)

let moved_to moves label =
  List.filter
    (fun (m : Global_sched.move) -> m.Global_sched.to_label = label)
    moves

let test_degree_two_hoists_further () =
  let config degree =
    {
      Config.speculative with
      Config.max_speculation_degree = degree;
      unroll_small_loops = false;
      rotate_small_loops = false;
    }
  in
  (* Degree 1: C's compare can reach B but not A. *)
  let cfg1, _, _ = nested_compare_cfg () in
  let r1 = Global_sched.schedule machine (config 1) cfg1 in
  let moves1 = List.concat_map (fun r -> r.Global_sched.moves) r1 in
  Alcotest.(check bool) "degree 1: nothing lands in A from C" true
    (List.for_all
       (fun (m : Global_sched.move) ->
         not (m.Global_sched.to_label = "A" && m.Global_sched.from_label = "C"))
       moves1);
  (* Degree 2: it goes all the way up to A. *)
  let cfg2, p, q = nested_compare_cfg () in
  let r2 = Global_sched.schedule machine (config 2) cfg2 in
  Validate.check_exn cfg2;
  let moves2 = List.concat_map (fun r -> r.Global_sched.moves) r2 in
  Alcotest.(check bool) "degree 2: A receives from further away" true
    (List.length (moved_to moves2 "A") > List.length (moved_to moves1 "A"));
  Alcotest.(check bool) "degree 2: C's compare reached A" true
    (List.exists
       (fun (m : Global_sched.move) ->
         m.Global_sched.from_label = "C" && m.Global_sched.to_label = "A")
       moves2);
  (* Semantics hold on all four input quadrants. *)
  List.iter
    (fun (pv, qv) ->
      let input =
        { Simulator.no_input with Simulator.int_regs = [ (p, pv); (q, qv) ] }
      in
      let cfg0, _, _ = nested_compare_cfg () in
      let expected = Simulator.observables (Simulator.run machine cfg0 input) in
      Alcotest.(check string)
        (Fmt.str "p=%d q=%d" pv qv)
        expected
        (Simulator.observables (Simulator.run machine cfg2 input)))
    [ (1, 1); (1, -1); (-1, 1); (-1, -1) ]

(* ---- duplication (Definition 6) ---- *)

(* A diamond whose join starts with computation whose operands come from
   the dominator: with duplication enabled it moves into one arm and a
   copy lands in the other. *)
let diamond_join_cfg () =
  let g = Reg.Gen.create () in
  let p = Reg.Gen.fresh g Reg.Gpr in
  let q = Reg.Gen.fresh g Reg.Gpr in
  let m = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let a1 = Reg.Gen.fresh g Reg.Gpr in
  let t = Reg.Gen.fresh g Reg.Gpr in
  let u = Reg.Gen.fresh g Reg.Gpr in
  (* The join computation [t = m + q] depends on E's slow divide: it is
     not ready before E's own pass closes, so hoisting it usefully into
     E never happens — only duplication into the arms can lift it out of
     the join. *)
  let cfg =
    B.func ~reg_gen:g
      [
        ( "E",
          [ B.binop Instr.Div ~dst:m ~lhs:p ~rhs:(Instr.Imm 3);
            B.cmpi ~dst:c ~lhs:p 0 ],
          B.bt ~cr:c ~cond:Instr.Gt ~taken:"L" ~fallthru:"R" );
        ("L", [ B.addi ~dst:a1 ~lhs:p 1 ], B.jmp "J");
        ("R", [ B.addi ~dst:a1 ~lhs:q 2 ], B.jmp "J");
        ( "J",
          [ B.add ~dst:t ~lhs:m ~rhs:q; B.add ~dst:u ~lhs:t ~rhs:a1;
            B.call "print_int" [ u ] ],
          Instr.Halt );
      ]
  in
  Validate.check_exn cfg;
  (cfg, p, q)

let test_duplication_motion () =
  let config on =
    {
      Config.speculative with
      Config.allow_duplication = on;
      unroll_small_loops = false;
      rotate_small_loops = false;
    }
  in
  (* Without duplication the join computation stays put. *)
  let cfg_off, _, _ = diamond_join_cfg () in
  let r_off = Global_sched.schedule machine (config false) cfg_off in
  let moves_off = List.concat_map (fun r -> r.Global_sched.moves) r_off in
  Alcotest.(check bool) "no motion out of J without duplication" true
    (List.for_all
       (fun (m : Global_sched.move) -> m.Global_sched.from_label <> "J")
       moves_off);
  (* With duplication, the add escapes J; its copy lands in the other
     arm. *)
  let cfg_on, p, q = diamond_join_cfg () in
  let r_on = Global_sched.schedule machine (config true) cfg_on in
  Validate.check_exn cfg_on;
  let moves_on = List.concat_map (fun r -> r.Global_sched.moves) r_on in
  let dup_move =
    List.find_opt
      (fun (m : Global_sched.move) ->
        m.Global_sched.from_label = "J" && m.Global_sched.duplicated_into <> [])
      moves_on
  in
  (match dup_move with
  | Some m ->
      Alcotest.(check bool) "moved into one arm" true
        (List.mem m.Global_sched.to_label [ "L"; "R" ]);
      Alcotest.(check int) "one copy host" 1
        (List.length m.Global_sched.duplicated_into);
      Alcotest.(check bool) "copy in the other arm" true
        (m.Global_sched.duplicated_into
        <> [ m.Global_sched.to_label ])
  | None -> Alcotest.fail "expected a duplication motion out of J");
  (* Both arms now compute t: the join shrank, the arms grew. *)
  let j = Cfg.block_of_label cfg_on "J" in
  Alcotest.(check int) "join lost the add" 2 (Gis_util.Vec.length j.Block.body);
  (* Semantics on both branch directions. *)
  List.iter
    (fun pv ->
      let input =
        { Simulator.no_input with
          Simulator.int_regs = [ (p, pv); (q, 7) ] }
      in
      let fresh, p', q' = diamond_join_cfg () in
      let input_ref =
        { Simulator.no_input with
          Simulator.int_regs = [ (p', pv); (q', 7) ] }
      in
      Alcotest.(check string)
        (Fmt.str "p=%d" pv)
        (Simulator.observables (Simulator.run machine fresh input_ref))
        (Simulator.observables (Simulator.run machine cfg_on input)))
    [ 5; -5 ]

(* Duplication must refuse when the moved definition would clobber a
   copy host's branch input or when a source does not dominate the
   join. *)
let test_duplication_blocked_cases () =
  let g = Reg.Gen.create () in
  let p = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let a1 = Reg.Gen.fresh g Reg.Gpr in
  let t = Reg.Gen.fresh g Reg.Gpr in
  (* The join's computation depends on a1, defined differently in each
     arm: sources do not dominate the join, so no duplication. *)
  let cfg =
    B.func ~reg_gen:g
      [
        ("E", [ B.cmpi ~dst:c ~lhs:p 0 ],
         B.bt ~cr:c ~cond:Instr.Gt ~taken:"L" ~fallthru:"R");
        ("L", [ B.addi ~dst:a1 ~lhs:p 1 ], B.jmp "J");
        ("R", [ B.addi ~dst:a1 ~lhs:p 2 ], B.jmp "J");
        ("J", [ B.addi ~dst:t ~lhs:a1 3; B.call "print_int" [ t ] ], Instr.Halt);
      ]
  in
  let config =
    {
      Config.speculative with
      Config.allow_duplication = true;
      unroll_small_loops = false;
      rotate_small_loops = false;
    }
  in
  let reports = Global_sched.schedule machine config cfg in
  Validate.check_exn cfg;
  let moves = List.concat_map (fun r -> r.Global_sched.moves) reports in
  Alcotest.(check bool) "arm-dependent join value stays put" true
    (List.for_all
       (fun (m : Global_sched.move) -> m.Global_sched.from_label <> "J")
       moves)

(* ---- profile-guided speculation ---- *)

let hot_cold_cfg () =
  let g = Reg.Gen.create () in
  let sel = Reg.Gen.fresh g Reg.Gpr in
  let i = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let ch = Reg.Gen.fresh g Reg.Cr in
  let cc = Reg.Gen.fresh g Reg.Cr in
  let cl = Reg.Gen.fresh g Reg.Cr in
  let acc = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ("TOP", [ B.li ~dst:i 0; B.li ~dst:acc 0 ], B.jmp "H");
        ("H", [ B.cmpi ~dst:c ~lhs:sel 0 ],
         B.bt ~cr:c ~cond:Instr.Gt ~taken:"HOT" ~fallthru:"COLD");
        ("HOT", [ B.cmpi ~dst:ch ~lhs:i 100 ],
         B.bt ~cr:ch ~cond:Instr.Lt ~taken:"HK" ~fallthru:"J");
        ("HK", [ B.addi ~dst:acc ~lhs:acc 1 ], B.jmp "J");
        ("COLD", [ B.cmpi ~dst:cc ~lhs:i 50 ],
         B.bt ~cr:cc ~cond:Instr.Lt ~taken:"CK" ~fallthru:"J");
        ("CK", [ B.addi ~dst:acc ~lhs:acc 2 ], B.jmp "J");
        ("J", [ B.addi ~dst:i ~lhs:i 1; B.cmpi ~dst:cl ~lhs:i 40 ],
         B.bt ~cr:cl ~cond:Instr.Lt ~taken:"H" ~fallthru:"E");
        ("E", [ B.call "print_int" [ acc ] ], Instr.Halt);
      ]
  in
  Validate.check_exn cfg;
  (cfg, sel)

let test_profile_guided_gating () =
  (* Profile with sel > 0: COLD never executes. *)
  let cfg0, sel = hot_cold_cfg () in
  let input = { Simulator.no_input with Simulator.int_regs = [ (sel, 1) ] } in
  let profile_run = Simulator.run machine cfg0 input in
  Alcotest.(check int) "cold block never runs" 0
    (Simulator.profile_fn profile_run "COLD");
  Alcotest.(check bool) "hot block runs" true
    (Simulator.profile_fn profile_run "HOT" > 0);
  let schedule config =
    let cfg, _ = hot_cold_cfg () in
    (* Rebuild with identical structure: labels align, so the profile
       from cfg0 applies. *)
    let reports = Global_sched.schedule machine config cfg in
    (cfg, List.concat_map (fun r -> r.Global_sched.moves) reports)
  in
  let base_config =
    {
      Config.speculative with
      Config.unroll_small_loops = false;
      rotate_small_loops = false;
    }
  in
  (* Blind speculation moves compares from both arms into H. *)
  let _, blind = schedule base_config in
  let spec_from label moves =
    List.exists
      (fun (m : Global_sched.move) ->
        m.Global_sched.speculative && m.Global_sched.from_label = label)
      moves
  in
  Alcotest.(check bool) "blind: hoists from HOT" true (spec_from "HOT" blind);
  Alcotest.(check bool) "blind: hoists from COLD" true (spec_from "COLD" blind);
  (* Profile-guided speculation skips the cold arm. *)
  let guided_config =
    {
      base_config with
      Config.profile = Some (Simulator.profile_fn profile_run);
      min_speculation_probability = 0.5;
    }
  in
  let cfg_guided, guided = schedule guided_config in
  Validate.check_exn cfg_guided;
  Alcotest.(check bool) "guided: still hoists from HOT" true
    (spec_from "HOT" guided);
  Alcotest.(check bool) "guided: leaves COLD alone" false
    (spec_from "COLD" guided);
  (* And the guided schedule still computes the same answer, on both the
     profiled and the unprofiled branch direction. *)
  List.iter
    (fun sv ->
      let cfg_ref, sel_ref = hot_cold_cfg () in
      let mk s r = { Simulator.no_input with Simulator.int_regs = [ (r, s) ] } in
      let expected =
        Simulator.observables (Simulator.run machine cfg_ref (mk sv sel_ref))
      in
      Alcotest.(check string)
        (Fmt.str "sel=%d" sv)
        expected
        (Simulator.observables (Simulator.run machine cfg_guided (mk sv sel))))
    [ 1; -1 ]

let test_profile_counts_sum () =
  let t = Minmax.build () in
  let o = Simulator.run machine t.Minmax.cfg (Minmax.input t [ 1; 2; 3; 4 ]) in
  (* n=4: entry once, loop header twice (i = 1, 3), exit once. *)
  Alcotest.(check int) "entry once" 1 (Simulator.profile_fn o "L.entry");
  Alcotest.(check int) "loop twice" 2 (Simulator.profile_fn o "CL.0");
  Alcotest.(check int) "exit once" 1 (Simulator.profile_fn o "L.exit");
  Alcotest.(check int) "unknown block" 0 (Simulator.profile_fn o "NOPE")

let () =
  Alcotest.run "gis_extensions"
    [
      ( "register webs",
        [
          Alcotest.test_case "split minmax" `Quick test_webs_split_minmax;
          Alcotest.test_case "externals/update bases kept" `Quick
            test_webs_keep_externals_and_update_bases;
          Alcotest.test_case "removes scheduler renames" `Quick
            test_webs_remove_scheduler_renames;
          Alcotest.test_case "pipeline preserves semantics" `Quick
            test_webs_via_pipeline_preserves;
        ] );
      ( "n-branch speculation",
        [ Alcotest.test_case "degree 2 hoists further" `Quick test_degree_two_hoists_further ] );
      ( "duplication",
        [
          Alcotest.test_case "join motion" `Quick test_duplication_motion;
          Alcotest.test_case "blocked cases" `Quick test_duplication_blocked_cases;
        ] );
      ( "profile-guided",
        [
          Alcotest.test_case "gating" `Quick test_profile_guided_gating;
          Alcotest.test_case "counts" `Quick test_profile_counts_sum;
        ] );
    ]
