open Gis_frontend
open Gis_machine
open Gis_sim

let machine = Machine.rs6k

let run_source ?(int_regs = []) ?(memory = []) src =
  let compiled = Codegen.compile_string src in
  let input = { Simulator.no_input with Simulator.int_regs; memory } in
  (compiled, Simulator.run machine compiled.Codegen.cfg input)

let outputs o = o.Simulator.output

(* ---- lexer ---- *)

let test_lexer_tokens () =
  let toks = List.map fst (Lexer.tokenize "x = (a[3] << 2) != 7; // hi") in
  Alcotest.(check int) "token count incl eof" 14 (List.length toks);
  Alcotest.(check bool) "shift lexed" true (List.mem Lexer.SHL toks);
  Alcotest.(check bool) "neq lexed" true (List.mem Lexer.NEQ toks)

let test_lexer_comments_and_lines () =
  let toks = Lexer.tokenize "a /* multi\nline */ b\n// tail\nc" in
  let idents = List.filter_map (function Lexer.IDENT s, l -> Some (s, l) | _ -> None) toks in
  Alcotest.(check (list (pair string int))) "lines tracked"
    [ ("a", 1); ("b", 2); ("c", 4) ] idents

let test_lexer_error () =
  Alcotest.(check bool) "bad char" true
    (match Lexer.tokenize "a $ b" with
    | exception Lexer.Error _ -> true
    | _ -> false)

(* ---- parser ---- *)

let test_parser_shapes () =
  let p =
    Parser.parse
      "int x; int a[4]; x = 1 + 2 * 3; if (x > 2 && x < 9) { x = 0; } \
       while (x < 3) { x = x + 1; } print(x);"
  in
  Alcotest.(check int) "decls" 2 (List.length p.Ast.decls);
  Alcotest.(check int) "stmts" 4 (List.length p.Ast.body);
  match p.Ast.body with
  | Ast.Assign (_, Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)))
    :: Ast.If (Ast.And_also _, _, []) :: Ast.While _ :: Ast.Print _ :: [] ->
      ()
  | _ -> Alcotest.failf "unexpected shape: %a" Ast.pp_program p

let test_parser_paren_cond_backtracking () =
  (* "(a + b) < c" must parse as a relation whose lhs is parenthesized. *)
  let p = Parser.parse "int a; int b; int c; if ((a + b) < c) { a = 1; }" in
  (match p.Ast.body with
  | [ Ast.If (Ast.Rel (Ast.Lt, Ast.Binop (Ast.Add, _, _), Ast.Var "c"), _, []) ] -> ()
  | _ -> Alcotest.failf "bad parse: %a" Ast.pp_program p);
  (* And "((a<b) || (c<d)) && e<f" parses as a condition tree. *)
  let p = Parser.parse "int a; int b; if (((a<b) || (b<a)) && a != b) { a = 1; }" in
  match p.Ast.body with
  | [ Ast.If (Ast.And_also (Ast.Or_else _, Ast.Rel (Ast.Ne, _, _)), _, _) ] -> ()
  | _ -> Alcotest.failf "bad cond parse: %a" Ast.pp_program p

let test_parser_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) (Fmt.str "reject %S" src) true
        (match Parser.parse src with
        | exception Parser.Error _ -> true
        | exception Lexer.Error _ -> true
        | _ -> false))
    [
      "int;";
      "x = ;";
      "if x > 2 { }";
      "while (x) { }"; (* conditions need a comparison *)
      "int a[0];";
      "print(x)";
    ]

(* ---- codegen + semantics ---- *)

let test_straight_line_program () =
  let _, o = run_source "int x; int y; x = 6; y = x * 7; print(y);" in
  Alcotest.(check (list string)) "42" [ "print_int(42)" ] (outputs o)

let test_if_else () =
  let src d =
    Fmt.str
      "int x = %d; if (x > 3) { print(1); } else { print(2); } print(x);" d
  in
  let _, o = run_source (src 5) in
  Alcotest.(check (list string)) "then" [ "print_int(1)"; "print_int(5)" ] (outputs o);
  let _, o = run_source (src 2) in
  Alcotest.(check (list string)) "else" [ "print_int(2)"; "print_int(2)" ] (outputs o)

let test_short_circuit () =
  (* Division by zero on the right of && must not execute when the left
     is false: short-circuit means the branch never reaches it. *)
  let src =
    "int x = 0; int y = 5; if (x != 0 && y / x > 1) { print(1); } else { print(2); }"
  in
  let _, o = run_source src in
  Alcotest.(check (list string)) "guarded" [ "print_int(2)" ] (outputs o)

let test_loops () =
  let _, o =
    run_source
      "int i; int s; s = 0; for (i = 0; i < 5; i = i + 1) { s = s + i; } print(s);"
  in
  Alcotest.(check (list string)) "for" [ "print_int(10)" ] (outputs o);
  let _, o =
    run_source "int i = 0; do { i = i + 1; } while (i < 3); print(i);"
  in
  Alcotest.(check (list string)) "do-while" [ "print_int(3)" ] (outputs o);
  let _, o =
    run_source "int i = 9; while (i < 3) { i = 0; } print(i);"
  in
  Alcotest.(check (list string)) "while skipped" [ "print_int(9)" ] (outputs o)

let test_arrays () =
  let src =
    "int a[8]; int i; int s; for (i = 0; i < 8; i = i + 1) { a[i] = i * i; } \
     s = a[3] + a[7]; print(s); a[0] = a[1]; print(a[0]);"
  in
  let _, o = run_source src in
  Alcotest.(check (list string)) "array rw" [ "print_int(58)"; "print_int(1)" ] (outputs o)

let test_array_inputs () =
  let compiled = Codegen.compile_string Gis_workloads.Minmax.source in
  let elements = [ 5; 3; 9; 1; 7; 2 ] in
  let input =
    {
      Simulator.no_input with
      Simulator.int_regs = [ (Codegen.var_reg compiled "n", List.length elements) ];
      memory = Codegen.array_input compiled [ ("a", elements) ];
    }
  in
  let o = Simulator.run machine compiled.Codegen.cfg input in
  let min_v, max_v = Gis_workloads.Minmax.reference_min_max elements in
  Alcotest.(check (list string)) "tiny-c minmax agrees with Figure 1"
    [ Fmt.str "print_int(%d)" min_v; Fmt.str "print_int(%d)" max_v ]
    (outputs o)

let test_else_if_chain () =
  let src d =
    Fmt.str
      "int x = %d; if (x > 10) { print(3); } else { if (x > 5) { print(2); }        else { print(1); } }"
      d
  in
  List.iter
    (fun (d, expect) ->
      let _, o = run_source (src d) in
      Alcotest.(check (list string)) (Fmt.str "x=%d" d)
        [ Fmt.str "print_int(%d)" expect ]
        (outputs o))
    [ (12, 3); (7, 2); (1, 1) ]

let test_nested_loops_source () =
  let src =
    "int i; int j; int s; s = 0; for (i = 0; i < 4; i = i + 1) { for (j = 0;      j < 3; j = j + 1) { s = s + (i * j); } } print(s);"
  in
  let compiled, o = run_source src in
  (* sum over i<4, j<3 of i*j = (0+1+2+3)*(0+1+2) = 18 *)
  Alcotest.(check (list string)) "nested" [ "print_int(18)" ] (outputs o);
  let info = Gis_analysis.Loops.compute compiled.Codegen.cfg in
  Alcotest.(check int) "two loops" 2
    (Array.length (Gis_analysis.Loops.loops info));
  Alcotest.(check bool) "nesting depth 2" true
    (List.exists
       (fun (l : Gis_analysis.Loops.loop) -> l.Gis_analysis.Loops.depth = 2)
       (Array.to_list (Gis_analysis.Loops.loops info)))

let test_while_inversion_shape () =
  (* The frontend inverts while loops: the loop body's test is at the
     bottom, like the paper's Figure 2. The guard test is a separate
     copy before the loop. *)
  let compiled =
    Codegen.compile_string "int i; int n; i = 0; while (i < n) { i = i + 1; } print(i);"
  in
  let cfg = compiled.Codegen.cfg in
  let info = Gis_analysis.Loops.compute cfg in
  Alcotest.(check int) "one loop" 1 (Array.length (Gis_analysis.Loops.loops info));
  let l = (Gis_analysis.Loops.loops info).(0) in
  (* Back edge source carries the bottom test: its terminator is a
     conditional branch, not a jump. *)
  List.iter
    (fun (tail, _) ->
      Alcotest.(check bool) "latch ends in a conditional branch" true
        (Gis_ir.Instr.is_cond_branch (Gis_ir.Cfg.block cfg tail).Gis_ir.Block.term))
    l.Gis_analysis.Loops.back_edges

let test_codegen_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) (Fmt.str "reject %S" src) true
        (match Codegen.compile_string src with
        | exception Codegen.Error _ -> true
        | _ -> false))
    [
      "x = 1;";                      (* undeclared *)
      "int a[4]; a = 1;";            (* array as scalar *)
      "int x; x[0] = 1;";            (* scalar as array *)
      "int x; int x; x = 1;";        (* duplicate *)
      "int a[4]; int b; b = a;";     (* array read without index *)
    ]

let test_neg_and_precedence () =
  let _, o = run_source "int x; x = -3 + 2 * (1 - 5); print(x);" in
  Alcotest.(check (list string)) "-11" [ "print_int(-11)" ] (outputs o)

let test_codegen_structure () =
  let compiled = Codegen.compile_string Gis_workloads.Minmax.source in
  let cfg = compiled.Codegen.cfg in
  Gis_ir.Validate.check_exn cfg;
  (* The loop body compiles to many small blocks, like Figure 2. *)
  Alcotest.(check bool) "at least 10 blocks" true (Gis_ir.Cfg.num_blocks cfg >= 10);
  let info = Gis_analysis.Loops.compute cfg in
  Alcotest.(check bool) "reducible" true (Gis_analysis.Loops.reducible info);
  Alcotest.(check int) "one loop" 1 (Array.length (Gis_analysis.Loops.loops info))

let () =
  Alcotest.run "gis_frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments" `Quick test_lexer_comments_and_lines;
          Alcotest.test_case "errors" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "shapes" `Quick test_parser_shapes;
          Alcotest.test_case "paren backtracking" `Quick test_parser_paren_cond_backtracking;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "straight line" `Quick test_straight_line_program;
          Alcotest.test_case "if/else" `Quick test_if_else;
          Alcotest.test_case "short-circuit" `Quick test_short_circuit;
          Alcotest.test_case "loops" `Quick test_loops;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "minmax vs reference" `Quick test_array_inputs;
          Alcotest.test_case "else-if chains" `Quick test_else_if_chain;
          Alcotest.test_case "nested loops" `Quick test_nested_loops_source;
          Alcotest.test_case "while inversion" `Quick test_while_inversion_shape;
          Alcotest.test_case "errors" `Quick test_codegen_errors;
          Alcotest.test_case "negation/precedence" `Quick test_neg_and_precedence;
          Alcotest.test_case "structure" `Quick test_codegen_structure;
        ] );
    ]
