open Gis_util

let check_int = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

let test_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get 0" 0 (Vec.get v 0);
  check_int "get 99" 198 (Vec.get v 99);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index 100 out of bounds [0,100)")
    (fun () -> ignore (Vec.get v 100))

let test_pop_last () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check (option int)) "last" (Some 3) (Vec.last v);
  Alcotest.(check (option int)) "pop" (Some 3) (Vec.pop v);
  check_list "after pop" [ 1; 2 ] (Vec.to_list v);
  ignore (Vec.pop v);
  ignore (Vec.pop v);
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v)

let test_insert_remove () =
  let v = Vec.of_list [ 1; 2; 4 ] in
  Vec.insert v 2 3;
  check_list "insert middle" [ 1; 2; 3; 4 ] (Vec.to_list v);
  Vec.insert v 0 0;
  check_list "insert front" [ 0; 1; 2; 3; 4 ] (Vec.to_list v);
  Vec.insert v 5 5;
  check_list "insert end" [ 0; 1; 2; 3; 4; 5 ] (Vec.to_list v);
  check_int "remove" 3 (Vec.remove v 3);
  check_list "after remove" [ 0; 1; 2; 4; 5 ] (Vec.to_list v)

let test_iterators () =
  let v = Vec.of_list [ 5; 6; 7 ] in
  let sum = Vec.fold_left ( + ) 0 v in
  check_int "fold" 18 sum;
  let collected = ref [] in
  Vec.iteri (fun i x -> collected := (i, x) :: !collected) v;
  Alcotest.(check (list (pair int int)))
    "iteri" [ (2, 7); (1, 6); (0, 5) ] !collected;
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 6) v);
  Alcotest.(check bool) "for_all" false (Vec.for_all (fun x -> x > 5) v);
  Alcotest.(check (option int)) "find" (Some 6) (Vec.find_opt (fun x -> x mod 2 = 0) v);
  Alcotest.(check (option int)) "find_index" (Some 1) (Vec.find_index (fun x -> x = 6) v)

let test_filter_map_copy () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5; 6 ] in
  let w = Vec.copy v in
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  check_list "filtered" [ 2; 4; 6 ] (Vec.to_list v);
  check_list "copy untouched" [ 1; 2; 3; 4; 5; 6 ] (Vec.to_list w);
  let doubled = Vec.map (fun x -> x * 2) v in
  check_list "map" [ 4; 8; 12 ] (Vec.to_list doubled);
  Vec.append v doubled;
  check_list "append" [ 2; 4; 6; 4; 8; 12 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v)

let test_set_in_place () =
  let v = Vec.of_array [| 9; 8; 7 |] in
  Vec.set v 1 42;
  check_list "set" [ 9; 42; 7 ] (Vec.to_list v)

let test_fix_iterate () =
  let x = ref 0 in
  let rounds = Fix.iterate (fun () -> incr x; !x < 5) in
  check_int "rounds" 5 rounds;
  check_int "final" 5 !x;
  Alcotest.check_raises "divergence guard"
    (Failure "Fix.iterate: did not converge") (fun () ->
      ignore (Fix.iterate ~max_rounds:10 (fun () -> true)))

let test_worklist () =
  let open Fix.Worklist in
  let w = create () in
  add w 1;
  add w 2;
  add w 1;
  (* duplicate ignored *)
  Alcotest.(check (option int)) "pop lifo" (Some 2) (pop w);
  Alcotest.(check (option int)) "pop next" (Some 1) (pop w);
  Alcotest.(check bool) "empty" true (is_empty w);
  Alcotest.(check (option int)) "pop empty" None (pop w);
  (* Re-adding after pop works. *)
  add w 1;
  Alcotest.(check (option int)) "re-add" (Some 1) (pop w)

let test_int_set_pp () =
  let s = Ints.Int_set.of_list [ 3; 1; 2 ] in
  Alcotest.(check string) "pp" "{1, 2, 3}" (Fmt.str "%a" Ints.pp_int_set s)

let () =
  Alcotest.run "gis_util"
    [
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_push_get;
          Alcotest.test_case "pop/last" `Quick test_pop_last;
          Alcotest.test_case "insert/remove" `Quick test_insert_remove;
          Alcotest.test_case "iterators" `Quick test_iterators;
          Alcotest.test_case "filter/map/copy" `Quick test_filter_map_copy;
          Alcotest.test_case "set" `Quick test_set_in_place;
        ] );
      ( "fix",
        [
          Alcotest.test_case "iterate" `Quick test_fix_iterate;
          Alcotest.test_case "worklist" `Quick test_worklist;
        ] );
      ("ints", [ Alcotest.test_case "pp" `Quick test_int_set_pp ]);
    ]
