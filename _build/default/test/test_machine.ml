open Gis_ir
open Gis_machine
module B = Builder

let gen = Reg.Gen.create ()
let r0 = Reg.Gen.reserve gen Reg.Gpr 0
let r1 = Reg.Gen.reserve gen Reg.Gpr 1
let cr0 = Reg.Gen.reserve gen Reg.Cr 0
let f0 = Reg.Gen.reserve gen Reg.Fpr 0
let f1 = Reg.Gen.reserve gen Reg.Fpr 1
let igen = Instr.Gen.create ()
let mk kind = Instr.Gen.make igen kind

let test_units () =
  Alcotest.(check int) "rs6k fixed" 1 (Machine.units Machine.rs6k Instr.Fixed);
  Alcotest.(check int) "rs6k float" 1 (Machine.units Machine.rs6k Instr.Float);
  Alcotest.(check int) "rs6k branch" 1 (Machine.units Machine.rs6k Instr.Branch);
  let wide = Machine.superscalar ~width:4 in
  Alcotest.(check int) "wide fixed" 4 (Machine.units wide Instr.Fixed);
  Alcotest.check_raises "zero width"
    (Invalid_argument "Machine.superscalar: width must be positive") (fun () ->
      ignore (Machine.superscalar ~width:0))

let test_exec_times () =
  let t k = Machine.exec_time Machine.rs6k (mk k) in
  Alcotest.(check int) "add" 1 (t (B.add ~dst:r0 ~lhs:r0 ~rhs:r1));
  Alcotest.(check int) "mul" 5 (t (B.mul ~dst:r0 ~lhs:r0 ~rhs:r1));
  Alcotest.(check int) "div" 19 (t (B.binop Instr.Div ~dst:r0 ~lhs:r0 ~rhs:(Instr.Reg r1)));
  Alcotest.(check int) "load" 1 (t (B.load ~dst:r0 ~base:r1 ~offset:0));
  Alcotest.(check int) "fdiv" 19 (t (B.fbinop Instr.Fdiv ~dst:f0 ~lhs:f0 ~rhs:f1));
  Alcotest.(check int) "fadd" 1 (t (B.fbinop Instr.Fadd ~dst:f0 ~lhs:f0 ~rhs:f1))

(* The four delay rules of Section 2.1. *)
let test_delays () =
  let d producer consumer reg =
    Machine.delay Machine.rs6k ~producer ~consumer ~reg
  in
  let load = mk (B.load ~dst:r0 ~base:r1 ~offset:0) in
  let lu = mk (B.load_update ~dst:r0 ~base:r1 ~offset:8) in
  let use = mk (B.add ~dst:r1 ~lhs:r0 ~rhs:r0) in
  let cmp = mk (B.cmp ~dst:cr0 ~lhs:r0 ~rhs:r1) in
  let fcmp = mk (B.fcmp ~dst:cr0 ~lhs:f0 ~rhs:f1) in
  let branch = mk (B.bt ~cr:cr0 ~cond:Instr.Lt ~taken:"X" ~fallthru:"Y") in
  let fadd = mk (B.fbinop Instr.Fadd ~dst:f0 ~lhs:f0 ~rhs:f1) in
  Alcotest.(check int) "delayed load" 1 (d load use r0);
  Alcotest.(check int) "lu value delayed" 1 (d lu use r0);
  Alcotest.(check int) "lu base not delayed" 0 (d lu use r1);
  Alcotest.(check int) "cmp->branch" 3 (d cmp branch cr0);
  Alcotest.(check int) "fcmp->branch" 5 (d fcmp branch cr0);
  Alcotest.(check int) "float result" 1 (d fadd fadd f0);
  Alcotest.(check int) "alu no delay" 0 (d use use r1);
  Alcotest.(check int) "cmp->non-branch" 0 (d cmp use cr0)

let test_zero_delay_machine () =
  let m = Machine.zero_delay_single_issue in
  let load = mk (B.load ~dst:r0 ~base:r1 ~offset:0) in
  let use = mk (B.add ~dst:r1 ~lhs:r0 ~rhs:r0) in
  Alcotest.(check int) "no delay" 0 (Machine.delay m ~producer:load ~consumer:use ~reg:r0);
  Alcotest.(check int) "unit exec" 1
    (Machine.exec_time m (mk (B.mul ~dst:r0 ~lhs:r0 ~rhs:r1)))

let test_detailed_model () =
  let store = mk (B.store ~src:r0 ~base:r1 ~offset:0) in
  let load = mk (B.load ~dst:r0 ~base:r1 ~offset:0) in
  let d m = Machine.mem_delay m ~producer:store ~consumer:load in
  Alcotest.(check int) "rs6k store->load" 0 (d Machine.rs6k);
  Alcotest.(check int) "detailed store->load" 1 (d Machine.rs6k_detailed);
  Alcotest.(check int) "detailed load->load" 0
    (Machine.mem_delay Machine.rs6k_detailed ~producer:load ~consumer:load);
  (* Primary delays are unchanged on the detailed model. *)
  let use = mk (B.add ~dst:r1 ~lhs:r0 ~rhs:r0) in
  Alcotest.(check int) "delayed load still 1" 1
    (Machine.delay Machine.rs6k_detailed ~producer:load ~consumer:use ~reg:r0)

let test_custom_machine () =
  let m =
    Machine.make ~name:"custom" ~fixed_units:2 ~float_units:0 ~branch_units:1
      ~exec_time:(fun _ -> 2) ()
  in
  Alcotest.(check int) "fixed" 2 (Machine.units m Instr.Fixed);
  Alcotest.(check int) "float" 0 (Machine.units m Instr.Float);
  Alcotest.(check int) "exec override" 2
    (Machine.exec_time m (mk (B.li ~dst:r0 1)));
  (* Default delay rules still apply. *)
  let cmp = mk (B.cmp ~dst:cr0 ~lhs:r0 ~rhs:r1) in
  let branch = mk (B.bt ~cr:cr0 ~cond:Instr.Lt ~taken:"X" ~fallthru:"Y") in
  Alcotest.(check int) "default delays" 3
    (Machine.delay m ~producer:cmp ~consumer:branch ~reg:cr0);
  Alcotest.check_raises "no branch unit"
    (Invalid_argument "Machine.make: need at least one fixed and one branch unit")
    (fun () ->
      ignore
        (Machine.make ~name:"bad" ~fixed_units:1 ~float_units:1 ~branch_units:0 ()))

let () =
  Alcotest.run "gis_machine"
    [
      ( "machine",
        [
          Alcotest.test_case "units" `Quick test_units;
          Alcotest.test_case "exec-times" `Quick test_exec_times;
          Alcotest.test_case "delays" `Quick test_delays;
          Alcotest.test_case "zero-delay" `Quick test_zero_delay_machine;
          Alcotest.test_case "detailed model" `Quick test_detailed_model;
          Alcotest.test_case "custom" `Quick test_custom_machine;
        ] );
    ]
