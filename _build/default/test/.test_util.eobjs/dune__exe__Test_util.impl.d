test/test_util.ml: Alcotest Fix Fmt Gis_util Ints Vec
