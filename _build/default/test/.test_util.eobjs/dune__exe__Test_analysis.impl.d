test/test_analysis.ml: Alcotest Array Block Builder Cdg Cfg Dominance Flow Fmt Fun Gis_analysis Gis_ir Gis_util Gis_workloads Instr Int Int_set List Liveness Loops Option Reaching Reg Regions
