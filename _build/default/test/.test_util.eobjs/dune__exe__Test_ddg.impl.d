test/test_ddg.ml: Alcotest Array Block Builder Cfg Ddg Flow Fmt Gis_analysis Gis_ddg Gis_ir Gis_machine Gis_util Gis_workloads Hashtbl Instr List Machine Option Reg Regions
