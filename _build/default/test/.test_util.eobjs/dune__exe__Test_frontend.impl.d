test/test_frontend.ml: Alcotest Array Ast Codegen Fmt Gis_analysis Gis_frontend Gis_ir Gis_machine Gis_sim Gis_workloads Lexer List Machine Parser Simulator
