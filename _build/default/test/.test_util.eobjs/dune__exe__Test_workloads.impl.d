test/test_workloads.ml: Alcotest Cfg Codegen Fmt Gis_frontend Gis_ir Gis_machine Gis_sim Gis_workloads List Machine Minmax Prng Random_prog Reg Section53 Simulator Spec_proxy Validate
