test/test_sim.ml: Alcotest Block Builder Cfg Fmt Gis_ir Gis_machine Gis_sim Gis_util Gis_workloads Instr List Machine Reg Simulator
