test/test_machine.ml: Alcotest Builder Gis_ir Gis_machine Instr Machine Reg
