test/test_ir.ml: Alcotest Array Block Builder Cfg Fmt Fun Gis_ir Gis_util Instr List Reg Validate
