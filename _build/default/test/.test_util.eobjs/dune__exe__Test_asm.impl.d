test/test_asm.ml: Alcotest Asm Cfg Fmt Gis_core Gis_frontend Gis_ir Gis_machine Gis_sim Gis_workloads Instr List Machine Minmax Random_prog Reg Simulator Validate
