test/test_ddg.mli:
