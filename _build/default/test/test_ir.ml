open Gis_ir
module B = Builder

let gen = Reg.Gen.create ()
let r0 = Reg.Gen.reserve gen Reg.Gpr 0
let r1 = Reg.Gen.reserve gen Reg.Gpr 1
let r2 = Reg.Gen.reserve gen Reg.Gpr 2
let cr0 = Reg.Gen.reserve gen Reg.Cr 0
let f0 = Reg.Gen.reserve gen Reg.Fpr 0
let f1 = Reg.Gen.reserve gen Reg.Fpr 1

let reg_list = Alcotest.testable (Fmt.list Reg.pp) (List.equal Reg.equal)

let igen = Instr.Gen.create ()
let mk kind = Instr.Gen.make igen kind

let test_reg_basics () =
  Alcotest.(check bool) "equal" true (Reg.equal r0 r0);
  Alcotest.(check bool)
    "distinct classes" false
    (Reg.equal r0 (Reg.Gen.reserve (Reg.Gen.create ()) Reg.Cr 0));
  Alcotest.(check string) "pp gpr" "r12" (Fmt.str "%a" Reg.pp (Reg.Gen.reserve gen Reg.Gpr 12));
  Alcotest.(check string) "pp cr" "cr7" (Fmt.str "%a" Reg.pp (Reg.Gen.reserve gen Reg.Cr 7));
  Alcotest.(check string) "pp fpr" "f3" (Fmt.str "%a" Reg.pp (Reg.Gen.reserve gen Reg.Fpr 3));
  let g = Reg.Gen.create () in
  let a = Reg.Gen.fresh g Reg.Gpr in
  let _ = Reg.Gen.reserve g Reg.Gpr 5 in
  let b = Reg.Gen.fresh g Reg.Gpr in
  Alcotest.(check bool) "fresh after reserve" true (b.Reg.id > 5);
  Alcotest.(check int) "first fresh" 0 a.Reg.id;
  (* Hash is injective on (id, class). *)
  Alcotest.(check bool) "hash distinct" true (Reg.hash r0 <> Reg.hash cr0)

let test_defs_uses () =
  let check name i defs uses =
    Alcotest.check reg_list (name ^ " defs") defs (Instr.defs i);
    Alcotest.check reg_list (name ^ " uses") uses (Instr.uses i)
  in
  check "load" (mk (B.load ~dst:r0 ~base:r1 ~offset:4)) [ r0 ] [ r1 ];
  check "load update"
    (mk (B.load_update ~dst:r0 ~base:r1 ~offset:8))
    [ r0; r1 ] [ r1 ];
  check "store" (mk (B.store ~src:r0 ~base:r1 ~offset:0)) [] [ r0; r1 ];
  check "store update"
    (mk (B.store_update ~src:r0 ~base:r1 ~offset:4))
    [ r1 ] [ r0; r1 ];
  check "li" (mk (B.li ~dst:r2 7)) [ r2 ] [];
  check "move" (mk (B.mr ~dst:r0 ~src:r1)) [ r0 ] [ r1 ];
  check "add" (mk (B.add ~dst:r2 ~lhs:r0 ~rhs:r1)) [ r2 ] [ r0; r1 ];
  check "addi" (mk (B.addi ~dst:r2 ~lhs:r0 3)) [ r2 ] [ r0 ];
  check "cmp" (mk (B.cmp ~dst:cr0 ~lhs:r0 ~rhs:r1)) [ cr0 ] [ r0; r1 ];
  check "fadd" (mk (B.fbinop Instr.Fadd ~dst:f0 ~lhs:f1 ~rhs:f1)) [ f0 ] [ f1; f1 ];
  check "fcmp" (mk (B.fcmp ~dst:cr0 ~lhs:f0 ~rhs:f1)) [ cr0 ] [ f0; f1 ];
  check "branch"
    (mk (B.bt ~cr:cr0 ~cond:Instr.Lt ~taken:"A" ~fallthru:"B"))
    [] [ cr0 ];
  check "jump" (mk (B.jmp "A")) [] [];
  check "call" (mk (B.call ~ret:r0 "f" [ r1; r2 ])) [ r0 ] [ r1; r2 ];
  check "halt" (mk Instr.Halt) [] []

let test_predicates () =
  let load = mk (B.load ~dst:r0 ~base:r1 ~offset:0) in
  let store = mk (B.store ~src:r0 ~base:r1 ~offset:0) in
  let call = mk (B.call "f" []) in
  let branch = mk (B.jmp "X") in
  let add = mk (B.add ~dst:r2 ~lhs:r0 ~rhs:r1) in
  Alcotest.(check bool) "load memory" true (Instr.touches_memory load);
  Alcotest.(check bool) "add not memory" false (Instr.touches_memory add);
  Alcotest.(check bool) "load speculable" true (Instr.speculable load);
  Alcotest.(check bool) "store not speculable" false (Instr.speculable store);
  Alcotest.(check bool) "store movable" true (Instr.movable_across_blocks store);
  Alcotest.(check bool) "call not movable" false (Instr.movable_across_blocks call);
  Alcotest.(check bool) "branch not movable" false (Instr.movable_across_blocks branch);
  Alcotest.(check bool) "branch is branch" true (Instr.is_branch branch);
  Alcotest.(check bool) "unit fixed" true (Instr.unit_ty add = Instr.Fixed);
  Alcotest.(check bool) "unit branch" true (Instr.unit_ty branch = Instr.Branch);
  Alcotest.(check bool)
    "unit float" true
    (Instr.unit_ty (mk (B.fbinop Instr.Fmul ~dst:f0 ~lhs:f0 ~rhs:f1)) = Instr.Float)

let test_rename () =
  let i = mk (B.add ~dst:r2 ~lhs:r0 ~rhs:r0) in
  let j = Instr.rename_uses i ~from_reg:r0 ~to_reg:r1 in
  Alcotest.check reg_list "uses renamed" [ r1; r1 ] (Instr.uses j);
  Alcotest.check reg_list "defs untouched" [ r2 ] (Instr.defs j);
  Alcotest.(check int) "uid preserved" (Instr.uid i) (Instr.uid j);
  let k = Instr.rename_def i ~from_reg:r2 ~to_reg:r1 in
  Alcotest.check reg_list "def renamed" [ r1 ] (Instr.defs k);
  Alcotest.check_raises "rename non-def"
    (Invalid_argument
       (Fmt.str "Instr.rename_def: %d does not (plainly) define %a"
          (Instr.uid i) Reg.pp r0)) (fun () ->
      ignore (Instr.rename_def i ~from_reg:r0 ~to_reg:r1));
  (* The base of an update load is not plainly renameable. *)
  let lu = mk (B.load_update ~dst:r0 ~base:r1 ~offset:4) in
  Alcotest.(check bool) "update base rename rejected" true
    (match Instr.rename_def lu ~from_reg:r1 ~to_reg:r2 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_cond_eval () =
  List.iter
    (fun (c, ord, expected) ->
      Alcotest.(check bool)
        (Fmt.str "%a %d" Instr.pp_cond c ord)
        expected (Instr.eval_cond c ord))
    [
      (Instr.Lt, -1, true); (Instr.Lt, 0, false); (Instr.Gt, 1, true);
      (Instr.Eq, 0, true); (Instr.Eq, 1, false); (Instr.Le, 0, true);
      (Instr.Ge, -1, false); (Instr.Ne, -1, true); (Instr.Ne, 0, false);
    ];
  List.iter
    (fun c ->
      List.iter
        (fun ord ->
          Alcotest.(check bool)
            (Fmt.str "negate %a" Instr.pp_cond c)
            (not (Instr.eval_cond c ord))
            (Instr.eval_cond (Instr.negate_cond c) ord))
        [ -1; 0; 1 ])
    [ Instr.Lt; Instr.Gt; Instr.Eq; Instr.Le; Instr.Ge; Instr.Ne ]

let test_pp () =
  Alcotest.(check string)
    "load pp" "L     r0=mem(r1,4)"
    (Fmt.str "%a" Instr.pp (mk (B.load ~dst:r0 ~base:r1 ~offset:4)));
  Alcotest.(check string)
    "lu pp" "LU    r0,r1=mem(r1,8)"
    (Fmt.str "%a" Instr.pp (mk (B.load_update ~dst:r0 ~base:r1 ~offset:8)));
  Alcotest.(check string)
    "bf pp" "BF    X,cr0,gt"
    (Fmt.str "%a" Instr.pp
       (mk (B.bf ~cr:cr0 ~cond:Instr.Gt ~taken:"X" ~fallthru:"Y")))

(* ---- CFG ---- *)

let diamond () =
  let g = Reg.Gen.create () in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  B.func ~reg_gen:g
    [
      ("A", [ B.cmpi ~dst:c ~lhs:x 0 ],
       B.bt ~cr:c ~cond:Instr.Eq ~taken:"B" ~fallthru:"C");
      ("B", [ B.li ~dst:x 1 ], B.jmp "D");
      ("C", [ B.li ~dst:x 2 ], B.jmp "D");
      ("D", [], Instr.Halt);
    ]

let test_cfg_structure () =
  let cfg = diamond () in
  Alcotest.(check int) "blocks" 4 (Cfg.num_blocks cfg);
  Alcotest.(check int) "entry" 0 (Cfg.entry cfg);
  let succs = Cfg.successors cfg 0 in
  Alcotest.(check (list (pair int string)))
    "A succs"
    [ (2, "fallthru"); (1, "taken") ]
    (List.map (fun (b, k) -> (b, Fmt.str "%a" Cfg.pp_edge_kind k)) succs);
  let preds = Cfg.predecessors cfg in
  Alcotest.(check (list int)) "D preds" [ 1; 2 ] preds.(3);
  Alcotest.(check int) "instr count" 7 (Cfg.instr_count cfg);
  Alcotest.(check (list int)) "layout" [ 0; 1; 2; 3 ] (Cfg.layout cfg)

let test_cfg_reachable_compact () =
  let g = Reg.Gen.create () in
  let cfg =
    B.func ~reg_gen:g
      [
        ("A", [], B.jmp "C");
        ("B", [], B.jmp "C");  (* unreachable *)
        ("C", [], Instr.Halt);
      ]
  in
  Alcotest.(check int) "reachable" 2
    (Gis_util.Ints.Int_set.cardinal (Cfg.reachable cfg));
  let compacted = Cfg.compact cfg in
  Alcotest.(check int) "compact blocks" 2 (Cfg.num_blocks compacted);
  Alcotest.(check bool) "labels kept" true (Cfg.find_label compacted "C" <> None);
  Alcotest.(check bool) "B dropped" true (Cfg.find_label compacted "B" = None)

let test_deep_copy_isolation () =
  let cfg = diamond () in
  let copy = Cfg.deep_copy cfg in
  let b = Cfg.block_of_label cfg "B" in
  let before = Cfg.instr_count copy in
  ignore (Gis_util.Vec.pop b.Block.body);
  Alcotest.(check int) "copy unaffected" before (Cfg.instr_count copy);
  Alcotest.(check int) "original shrank" (before - 1) (Cfg.instr_count cfg)

let test_update_instr () =
  let cfg = diamond () in
  let b = Cfg.block_of_label cfg "B" in
  let i = Gis_util.Vec.get b.Block.body 0 in
  let updated =
    Cfg.update_instr cfg ~uid:(Instr.uid i) ~f:(fun old ->
        Instr.with_kind old (B.li ~dst:(List.hd (Instr.defs old)) 42))
  in
  Alcotest.(check bool) "found" true updated;
  (match Instr.kind (Gis_util.Vec.get b.Block.body 0) with
  | Instr.Load_imm { value; _ } -> Alcotest.(check int) "value" 42 value
  | _ -> Alcotest.fail "unexpected kind");
  Alcotest.(check bool) "missing uid" false
    (Cfg.update_instr cfg ~uid:9999 ~f:Fun.id)

let test_insert_block_after () =
  let cfg = diamond () in
  let nb = Cfg.insert_block_after cfg ~after:1 ~label:"B2" in
  Alcotest.(check (list int)) "layout order" [ 0; 1; nb.Block.id; 2; 3 ]
    (Cfg.layout cfg)

let test_owner_of_uid () =
  let cfg = diamond () in
  let b = Cfg.block_of_label cfg "C" in
  let i = Gis_util.Vec.get b.Block.body 0 in
  Alcotest.(check (option int)) "owner" (Some b.Block.id)
    (Cfg.owner_of_uid cfg (Instr.uid i));
  Alcotest.(check (option int)) "terminator owner" (Some b.Block.id)
    (Cfg.owner_of_uid cfg (Instr.uid b.Block.term));
  Alcotest.(check (option int)) "none" None (Cfg.owner_of_uid cfg 424242)

(* ---- validation ---- *)

let test_validate_ok () =
  match Validate.check (diamond ()) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %a" Fmt.(list string) es

let expect_invalid name build =
  match Validate.check (build ()) with
  | Ok () -> Alcotest.failf "%s: expected a violation" name
  | Error _ -> ()

let test_validate_bad_target () =
  expect_invalid "bad target" (fun () ->
      let g = Reg.Gen.create () in
      B.func ~reg_gen:g [ ("A", [], B.jmp "NOWHERE") ])

let test_validate_class_violation () =
  expect_invalid "gpr branch" (fun () ->
      let g = Reg.Gen.create () in
      let x = Reg.Gen.fresh g Reg.Gpr in
      B.func ~reg_gen:g
        [
          ("A", [], B.bt ~cr:x ~cond:Instr.Lt ~taken:"A" ~fallthru:"A");
        ])

let test_validate_update_alias () =
  expect_invalid "lu dst=base" (fun () ->
      let g = Reg.Gen.create () in
      let x = Reg.Gen.fresh g Reg.Gpr in
      B.func ~reg_gen:g
        [ ("A", [ B.load_update ~dst:x ~base:x ~offset:4 ], Instr.Halt) ])

let test_builder_rejects_branch_in_body () =
  Alcotest.(check bool) "branch in body" true
    (match
       B.func [ ("A", [ B.jmp "A" ], Instr.Halt) ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "gis_ir"
    [
      ( "reg",
        [ Alcotest.test_case "basics" `Quick test_reg_basics ] );
      ( "instr",
        [
          Alcotest.test_case "defs/uses" `Quick test_defs_uses;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "cond-eval" `Quick test_cond_eval;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "structure" `Quick test_cfg_structure;
          Alcotest.test_case "reachable/compact" `Quick test_cfg_reachable_compact;
          Alcotest.test_case "deep-copy" `Quick test_deep_copy_isolation;
          Alcotest.test_case "update-instr" `Quick test_update_instr;
          Alcotest.test_case "insert-after" `Quick test_insert_block_after;
          Alcotest.test_case "owner-of-uid" `Quick test_owner_of_uid;
        ] );
      ( "validate",
        [
          Alcotest.test_case "ok" `Quick test_validate_ok;
          Alcotest.test_case "bad-target" `Quick test_validate_bad_target;
          Alcotest.test_case "class-violation" `Quick test_validate_class_violation;
          Alcotest.test_case "update-alias" `Quick test_validate_update_alias;
          Alcotest.test_case "branch-in-body" `Quick test_builder_rejects_branch_in_body;
        ] );
    ]
