open Gis_ir
open Gis_machine
open Gis_sim
open Gis_frontend
open Gis_workloads

let machine = Machine.rs6k

let test_prng_determinism () =
  let a = Prng.create ~seed:42 in
  let b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.bits a) (Prng.bits b)
  done;
  let c = Prng.create ~seed:43 in
  Alcotest.(check bool) "different seed diverges" true
    (List.init 10 (fun _ -> Prng.bits a) <> List.init 10 (fun _ -> Prng.bits c))

let test_prng_bounds () =
  let rng = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_minmax_structure () =
  let t = Minmax.build () in
  Validate.check_exn t.Minmax.cfg;
  Alcotest.(check int) "twelve blocks (loop + entry + exit)" 12
    (Cfg.num_blocks t.Minmax.cfg);
  (* The paper's register assignment survives construction. *)
  Alcotest.(check string) "min reg" "r28" (Fmt.str "%a" Reg.pp t.Minmax.min_reg);
  Alcotest.(check string) "max reg" "r30" (Fmt.str "%a" Reg.pp t.Minmax.max_reg);
  Alcotest.(check string) "n reg" "r27" (Fmt.str "%a" Reg.pp t.Minmax.n_reg)

let test_minmax_against_reference () =
  let t = Minmax.build () in
  List.iter
    (fun seed ->
      let rng = Prng.create ~seed in
      let elements = List.init (2 * (4 + Prng.int rng 20)) (fun _ -> Prng.int rng 500) in
      let o = Simulator.run machine t.Minmax.cfg (Minmax.input t elements) in
      let min_v, max_v = Minmax.reference_min_max elements in
      Alcotest.(check (list string))
        (Fmt.str "seed %d" seed)
        [ Fmt.str "print_int(%d)" min_v; Fmt.str "print_int(%d)" max_v ]
        o.Simulator.output)
    [ 1; 2; 3; 4; 5 ]

let test_minmax_empty_input () =
  let t = Minmax.build () in
  let o = Simulator.run machine t.Minmax.cfg (Minmax.input t [ 7 ]) in
  (* n = 1: the loop is never entered; min = max = a[0]. *)
  Alcotest.(check (list string)) "no iterations"
    [ "print_int(7)"; "print_int(7)" ] o.Simulator.output

let test_section53 () =
  let s = Section53.build () in
  Validate.check_exn s.Section53.cfg;
  let run sel =
    (Simulator.run machine s.Section53.cfg (Section53.input ~selector:sel s))
      .Simulator.output
  in
  Alcotest.(check (list string)) "true arm" [ "print_int(5)" ] (run 1);
  Alcotest.(check (list string)) "false arm" [ "print_int(3)" ] (run 0)

let test_proxies_compile_and_run () =
  List.iter
    (fun (p : Spec_proxy.t) ->
      let compiled = Spec_proxy.compile p in
      Validate.check_exn compiled.Codegen.cfg;
      let input = p.Spec_proxy.setup compiled in
      let o = Simulator.run machine compiled.Codegen.cfg input in
      Alcotest.(check bool)
        (Fmt.str "%s halted" p.Spec_proxy.name)
        true
        (o.Simulator.stop = Simulator.Halted);
      Alcotest.(check bool)
        (Fmt.str "%s produced output" p.Spec_proxy.name)
        true
        (o.Simulator.output <> []);
      (* Inputs are deterministic: run twice, observe the same. *)
      let o2 = Simulator.run machine compiled.Codegen.cfg input in
      Alcotest.(check string)
        (Fmt.str "%s deterministic" p.Spec_proxy.name)
        (Simulator.observables o) (Simulator.observables o2))
    Spec_proxy.all

let test_proxy_names () =
  Alcotest.(check (list string)) "paper order"
    [ "li"; "eqntott"; "espresso"; "gcc" ]
    (List.map (fun p -> p.Spec_proxy.name) Spec_proxy.all)

let test_random_programs_generate () =
  List.iter
    (fun seed ->
      let compiled = Random_prog.generate_compiled ~seed in
      Validate.check_exn compiled.Codegen.cfg;
      let input = Random_prog.random_input ~seed compiled in
      let o = Simulator.run machine compiled.Codegen.cfg input in
      (* Generated programs always terminate and always print. *)
      Alcotest.(check bool) (Fmt.str "seed %d halts" seed) true
        (o.Simulator.stop = Simulator.Halted);
      Alcotest.(check bool) (Fmt.str "seed %d prints" seed) true
        (o.Simulator.output <> []))
    (List.init 25 (fun i -> i * 13 + 1))

let () =
  Alcotest.run "gis_workloads"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
        ] );
      ( "minmax",
        [
          Alcotest.test_case "structure" `Quick test_minmax_structure;
          Alcotest.test_case "vs reference" `Quick test_minmax_against_reference;
          Alcotest.test_case "degenerate input" `Quick test_minmax_empty_input;
        ] );
      ("section53", [ Alcotest.test_case "both arms" `Quick test_section53 ]);
      ( "spec-proxies",
        [
          Alcotest.test_case "compile+run" `Quick test_proxies_compile_and_run;
          Alcotest.test_case "names" `Quick test_proxy_names;
        ] );
      ( "random programs",
        [ Alcotest.test_case "generate+run" `Quick test_random_programs_generate ] );
    ]
