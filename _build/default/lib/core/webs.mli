(** Register-web splitting — the renaming pre-pass of paper Section 4.2:
    "To minimize the number of anti and output data dependences, which
    may unnecessarily constrain the scheduling process, the XL compiler
    does certain renaming of registers, which is similar to the effect
    of the static single assignment form."

    A {e web} is a maximal set of definitions of one register connected
    through shared uses (two definitions are in the same web when some
    use is reached by both). Distinct webs of the same register are
    independent values that merely share a name; giving each web its own
    fresh symbolic register removes the anti and output dependences
    between them. Registers are symbolic and unbounded before register
    allocation, so splitting costs nothing here.

    A web is left untouched when renaming it is impossible or unsound:
    it may reach a use also reachable by the procedure-entry (external)
    value of the register, or one of its definitions is the base of an
    update-form load/store (renaming the definition would also rename
    the address use). *)

type stats = {
  webs_seen : int;  (** total webs discovered *)
  webs_renamed : int;  (** webs given a fresh register *)
}

val split : Gis_ir.Cfg.t -> stats
(** Split all splittable webs in place. Idempotent: a second run finds
    nothing to rename. *)
