open Gis_ir
open Gis_analysis

type stats = {
  webs_seen : int;
  webs_renamed : int;
}

(* Keys for union-find: a definition site is (uid, register hash); the
   external (procedure entry) value of a register is (-1, hash).
   [Reg.hash] is injective, so the hash identifies the register. *)
type key = int * int

let key_of_site reg = function
  | Reaching.Def uid -> (uid, Reg.hash reg)
  | Reaching.External -> (-1, Reg.hash reg)

(* Is [r] the base of an update-form access in [i]? Such positions are
   simultaneously a use and a definition, so neither their web nor any
   web reaching them can be renamed through [i]. *)
let update_base_position i r =
  match Instr.kind i with
  | Instr.Load { base; update = true; _ } | Instr.Store { base; update = true; _ }
    ->
      Reg.equal base r
  | Instr.Load _ | Instr.Store _ | Instr.Load_imm _ | Instr.Move _
  | Instr.Binop _ | Instr.Fbinop _ | Instr.Compare _ | Instr.Fcompare _
  | Instr.Branch_cond _ | Instr.Jump _ | Instr.Call _ | Instr.Halt ->
      false

module Union_find = struct
  let parent : (key, key) Hashtbl.t = Hashtbl.create 64

  let reset () = Hashtbl.reset parent

  let rec find k =
    match Hashtbl.find_opt parent k with
    | Some p when p <> k ->
        let root = find p in
        Hashtbl.replace parent k root;
        root
    | Some _ -> k
    | None ->
        Hashtbl.replace parent k k;
        k

  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
end

let split cfg =
  let reach = Reaching.compute cfg in
  Union_find.reset ();
  let tainted = Hashtbl.create 16 in (* root key -> unit, set after unions *)
  let taints = ref [] in             (* keys to taint once unions are done *)
  let instrs = Cfg.all_instrs cfg in
  let reg_of_hash = Hashtbl.create 32 in
  (* 1. Union definition sites that share a use; remember taints. *)
  List.iter
    (fun i ->
      List.iter
        (fun r ->
          Hashtbl.replace reg_of_hash (Reg.hash r) r;
          let sites = Reaching.defs_of_use reach ~uid:(Instr.uid i) ~reg:r in
          let keys = List.map (key_of_site r) sites in
          (match keys with
          | [] -> ()
          | first :: rest -> List.iter (Union_find.union first) rest);
          List.iter
            (fun k ->
              if update_base_position i r then taints := k :: !taints;
              if fst k = -1 then taints := k :: !taints)
            keys)
        (Instr.uses i);
      List.iter
        (fun r ->
          Hashtbl.replace reg_of_hash (Reg.hash r) r;
          let k = key_of_site r (Reaching.Def (Instr.uid i)) in
          ignore (Union_find.find k);
          if update_base_position i r then taints := k :: !taints)
        (Instr.defs i))
    instrs;
  List.iter (fun k -> Hashtbl.replace tainted (Union_find.find k) ()) !taints;
  (* 2. Gather webs: root -> member def uids, per register. *)
  let webs = Hashtbl.create 32 in (* root key -> uid list *)
  List.iter
    (fun i ->
      List.iter
        (fun r ->
          let k = key_of_site r (Reaching.Def (Instr.uid i)) in
          let root = Union_find.find k in
          let cur = Option.value ~default:[] (Hashtbl.find_opt webs root) in
          Hashtbl.replace webs root (Instr.uid i :: cur))
        (Instr.defs i))
    instrs;
  (* 3. Per register, keep the first web (smallest uid), rename the
     rest. *)
  let by_reg = Hashtbl.create 32 in (* reg hash -> (min uid, root, uids) list *)
  Hashtbl.iter
    (fun ((_, rh) as root) uids ->
      if not (Hashtbl.mem tainted (Union_find.find root)) then begin
        let entry = (List.fold_left min max_int uids, root, uids) in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_reg rh) in
        Hashtbl.replace by_reg rh (entry :: cur)
      end)
    webs;
  let seen = ref 0 and renamed = ref 0 in
  Hashtbl.iter
    (fun rh entries ->
      let r = Hashtbl.find reg_of_hash rh in
      let sorted =
        List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) entries
      in
      seen := !seen + List.length sorted;
      (* The first web keeps the original name — and so does any web when
         an external value of the same register exists somewhere (the
         external web was tainted, but it still owns the name). *)
      let renameable =
        match sorted with [] -> [] | _first :: rest -> rest
      in
      List.iter
        (fun (_, _, uids) ->
          let fresh = Cfg.fresh_reg cfg r.Reg.cls in
          let use_uids =
            List.concat_map
              (fun d -> Reaching.uses_of_def reach ~uid:d ~reg:r)
              uids
            |> List.sort_uniq Int.compare
          in
          List.iter
            (fun d ->
              ignore
                (Cfg.update_instr cfg ~uid:d
                   ~f:(Instr.rename_def ~from_reg:r ~to_reg:fresh)))
            (List.sort_uniq Int.compare uids);
          List.iter
            (fun u ->
              ignore
                (Cfg.update_instr cfg ~uid:u
                   ~f:(Instr.rename_uses ~from_reg:r ~to_reg:fresh)))
            use_uids;
          incr renamed)
        renameable)
    by_reg;
  { webs_seen = !seen; webs_renamed = !renamed }
