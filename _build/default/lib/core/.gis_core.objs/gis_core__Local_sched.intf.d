lib/core/local_sched.mli: Gis_ir Gis_machine Priority_rule
