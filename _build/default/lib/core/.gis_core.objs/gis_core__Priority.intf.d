lib/core/priority.mli: Priority_rule
