lib/core/priority.ml: Bool Int List Priority_rule
