lib/core/webs.mli: Gis_ir
