lib/core/priority_rule.ml: Fmt
