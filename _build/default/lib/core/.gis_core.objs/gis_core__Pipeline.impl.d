lib/core/pipeline.ml: Cfg Config Gis_ir Global_sched List Local_sched Option Rotate Sys Unroll Webs
