lib/core/heuristics.ml: Array Ddg Fmt Gis_ddg List
