lib/core/webs.ml: Cfg Gis_analysis Gis_ir Hashtbl Instr Int List Option Reaching Reg
