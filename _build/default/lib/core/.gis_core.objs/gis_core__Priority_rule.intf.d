lib/core/priority_rule.mli: Fmt
