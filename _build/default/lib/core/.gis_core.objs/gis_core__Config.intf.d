lib/core/config.mli: Fmt Gis_ir Gis_machine Priority_rule
