lib/core/config.ml: Fmt Gis_ir Gis_machine Priority_rule
