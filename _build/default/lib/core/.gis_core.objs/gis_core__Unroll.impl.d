lib/core/unroll.ml: Array Block Cfg Gis_analysis Gis_ir Gis_util Hashtbl Instr Int_set Ints Label List Loops Option Vec
