lib/core/local_sched.ml: Array Block Cfg Ddg Fun Gis_ddg Gis_ir Gis_machine Gis_util Hashtbl Heuristics Instr List Priority Priority_rule Vec
