lib/core/pipeline.mli: Config Gis_ir Gis_machine Global_sched
