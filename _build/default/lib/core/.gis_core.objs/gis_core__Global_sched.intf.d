lib/core/global_sched.mli: Config Fmt Gis_analysis Gis_ir Gis_machine
