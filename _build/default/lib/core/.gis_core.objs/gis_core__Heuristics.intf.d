lib/core/heuristics.mli: Fmt Gis_ddg
