lib/core/rotate.ml: Array Block Cfg Gis_analysis Gis_ir Gis_util Instr Int_set Label List Loops
