lib/core/unroll.mli: Gis_analysis Gis_ir
