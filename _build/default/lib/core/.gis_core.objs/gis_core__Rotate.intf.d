lib/core/rotate.mli: Gis_analysis Gis_ir
