open Gis_ir

type stats = {
  unrolled : int;
  rotated : int;
  pass1 : Global_sched.region_report list;
  pass2 : Global_sched.region_report list;
  seconds : float;
}

let moves stats =
  List.concat_map
    (fun (r : Global_sched.region_report) -> r.Global_sched.moves)
    (stats.pass1 @ stats.pass2)

let run machine (config : Config.t) cfg =
  let t0 = Sys.time () in
  if config.Config.split_webs && config.Config.level <> Config.Local then
    ignore (Webs.split cfg);
  let unrolled, pass1, rotated, pass2 =
    match config.Config.level with
    | Config.Local -> (0, [], 0, [])
    | Config.Useful | Config.Speculative ->
        let unrolled =
          if config.Config.unroll_small_loops then
            Unroll.unroll_small_inner_loops
              ~max_blocks:config.Config.small_loop_blocks cfg
          else 0
        in
        let pass1 =
          Global_sched.schedule ~only:Global_sched.is_inner_region machine
            config cfg
        in
        let rotated =
          if config.Config.rotate_small_loops then
            Rotate.rotate_small_inner_loops
              ~max_blocks:config.Config.small_loop_blocks cfg
          else 0
        in
        let pass2 =
          Global_sched.schedule
            ~only:(fun r -> rotated > 0 || not (Global_sched.is_inner_region r))
            machine config cfg
        in
        (unrolled, pass1, rotated, pass2)
  in
  if config.Config.local_post_pass then begin
    let local_machine =
      Option.value ~default:machine config.Config.local_machine
    in
    Local_sched.schedule_cfg ~rules:config.Config.rules local_machine cfg
  end;
  let seconds = Sys.time () -. t0 in
  ignore (Cfg.reachable cfg);
  { unrolled; rotated; pass1; pass2; seconds }
