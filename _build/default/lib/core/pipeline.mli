(** The complete compilation flow of the paper's prototype (Section 6):

    + certain inner loops are unrolled;
    + global scheduling is applied the first time, to inner regions only;
    + certain inner loops are rotated;
    + global scheduling is applied the second time, to the rotated inner
      loops and the outer regions;
    + the basic block scheduler runs over every block (Section 5.1).

    With [Config.base] only the last step runs — that is the paper's
    BASE compiler, whose own local scheduling the global results are
    measured against. *)

type stats = {
  unrolled : int;
  rotated : int;
  pass1 : Global_sched.region_report list;
  pass2 : Global_sched.region_report list;
  seconds : float;  (** CPU time spent in scheduling (all steps) *)
}

val moves : stats -> Global_sched.move list
(** All interblock motions across both passes. *)

val run :
  Gis_machine.Machine.t -> Config.t -> Gis_ir.Cfg.t -> stats
(** Transform the procedure in place. *)
