(** Growable arrays.

    OCaml 5.1 does not ship [Dynarray]; this is the small subset the
    scheduler needs: amortized O(1) push, O(1) random access, in-place
    removal and insertion. Indices are 0-based. *)

type 'a t

val create : unit -> 'a t
(** A fresh empty vector. *)

val of_list : 'a list -> 'a t

val of_array : 'a array -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] raises [Invalid_argument] when [i] is out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the last element. *)

val last : 'a t -> 'a option

val insert : 'a t -> int -> 'a -> unit
(** [insert v i x] shifts elements [i..] right by one and writes [x] at
    [i]. [i] may equal [length v] (append). *)

val remove : 'a t -> int -> 'a
(** [remove v i] deletes and returns the element at [i], shifting the
    tail left by one. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val for_all : ('a -> bool) -> 'a t -> bool

val find_opt : ('a -> bool) -> 'a t -> 'a option

val find_index : ('a -> bool) -> 'a t -> int option

val filter_in_place : ('a -> bool) -> 'a t -> unit

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val copy : 'a t -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t

val append : 'a t -> 'a t -> unit
(** [append dst src] pushes every element of [src] onto [dst]. *)
