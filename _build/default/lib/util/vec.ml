type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0,%d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let data = Array.make cap' x in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    Some v.data.(v.len)
  end

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)

let insert v i x =
  if i < 0 || i > v.len then invalid_arg "Vec.insert: index out of bounds";
  push v x;
  (* [push] made room; shift the tail right and place [x]. *)
  if i < v.len - 1 then begin
    Array.blit v.data i v.data (i + 1) (v.len - 1 - i);
    v.data.(i) <- x
  end

let remove v i =
  check v i;
  let x = v.data.(i) in
  Array.blit v.data (i + 1) v.data i (v.len - 1 - i);
  v.len <- v.len - 1;
  x

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let find_opt p v =
  let rec loop i =
    if i >= v.len then None
    else if p v.data.(i) then Some v.data.(i)
    else loop (i + 1)
  in
  loop 0

let find_index p v =
  let rec loop i =
    if i >= v.len then None else if p v.data.(i) then Some i else loop (i + 1)
  in
  loop 0

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    if p v.data.(i) then begin
      v.data.(!j) <- v.data.(i);
      incr j
    end
  done;
  v.len <- !j

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

let of_list l = of_array (Array.of_list l)

let copy v = { data = Array.copy v.data; len = v.len }

let map f v =
  if v.len = 0 then create ()
  else begin
    let data = Array.init v.len (fun i -> f v.data.(i)) in
    { data; len = v.len }
  end

let append dst src = iter (push dst) src
