(** Integer sets and maps, shared across the code base so that analysis
    results can be passed between libraries without conversion. *)

module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

let pp_int_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") int) (Int_set.elements s)
