lib/util/fix.ml: Ints Vec
