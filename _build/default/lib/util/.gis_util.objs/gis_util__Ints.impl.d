lib/util/ints.ml: Fmt Int Map Set
