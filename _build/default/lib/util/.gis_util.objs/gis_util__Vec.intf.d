lib/util/vec.mli:
