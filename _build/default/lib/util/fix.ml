(** Fixpoint iteration helpers for dataflow-style computations. *)

(** [iterate ~max_rounds step] calls [step ()] until it returns [false]
    (no change), or raises [Failure] after [max_rounds] rounds — a guard
    against non-monotone transfer functions during development. Returns
    the number of rounds executed. *)
let iterate ?(max_rounds = 1_000_000) step =
  let rec go rounds =
    if rounds >= max_rounds then failwith "Fix.iterate: did not converge";
    if step () then go (rounds + 1) else rounds + 1
  in
  go 0

(** A mutable worklist with set semantics: an element is present at most
    once; [pop] order is LIFO. *)
module Worklist = struct
  type t = {
    stack : int Vec.t;
    mutable members : Ints.Int_set.t;
  }

  let create () = { stack = Vec.create (); members = Ints.Int_set.empty }

  let add t x =
    if not (Ints.Int_set.mem x t.members) then begin
      Vec.push t.stack x;
      t.members <- Ints.Int_set.add x t.members
    end

  let pop t =
    match Vec.pop t.stack with
    | None -> None
    | Some x ->
        t.members <- Ints.Int_set.remove x t.members;
        Some x

  let is_empty t = Vec.is_empty t.stack
end
