lib/machine/machine.mli: Fmt Gis_ir
