lib/machine/machine.ml: Fmt Gis_ir Instr Printf Reg
