type cls = Gpr | Cr | Fpr

type t = {
  id : int;
  cls : cls;
}

let equal a b = a.id = b.id && a.cls = b.cls

let cls_rank = function Gpr -> 0 | Cr -> 1 | Fpr -> 2

let compare a b =
  let c = Int.compare (cls_rank a.cls) (cls_rank b.cls) in
  if c <> 0 then c else Int.compare a.id b.id

let hash a = (a.id * 4) + cls_rank a.cls

let pp_cls ppf = function
  | Gpr -> Fmt.string ppf "gpr"
  | Cr -> Fmt.string ppf "cr"
  | Fpr -> Fmt.string ppf "fpr"

let pp ppf r =
  match r.cls with
  | Gpr -> Fmt.pf ppf "r%d" r.id
  | Cr -> Fmt.pf ppf "cr%d" r.id
  | Fpr -> Fmt.pf ppf "f%d" r.id

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Gen = struct
  type reg = t

  type t = { mutable next : int }

  let create () = { next = 0 }

  let fresh gen cls =
    let id = gen.next in
    gen.next <- id + 1;
    { id; cls }

  let reserve gen cls n =
    if n >= gen.next then gen.next <- n + 1;
    { id = n; cls }
end
