(** Textual pseudo-assembly, round-trippable with the IR.

    The syntax is the paper's Figure 2 notation as emitted by
    {!Instr.pp} — [L r12=mem(r31,4)], [BF CL.4,cr7,gt], [AI r29=r29,2] —
    plus labels ending in [:], comments starting with [;] or [#], and an
    explicit fallthrough arrow on conditional branches whose fallthrough
    is not the lexically next block ([BT CL.0,cr4,lt -> EXIT]).

    {!print} and {!parse} are inverses up to instruction uids:
    [parse (print cfg)] is structurally identical to [cfg] (same labels,
    layout, entry, and instruction kinds), which the test suite checks
    both directly and by simulating the two graphs against each other. *)

exception Error of string
(** Parse errors, with a line number. *)

val print : Cfg.t -> string

val parse : string -> Cfg.t
(** The first block is the entry. Conditional branches must be block
    terminators; instructions after one start a fresh anonymous block
    only if labelled, otherwise it is an error. *)
