let load ~dst ~base ~offset = Instr.Load { dst; base; offset; update = false }
let load_update ~dst ~base ~offset = Instr.Load { dst; base; offset; update = true }
let store ~src ~base ~offset = Instr.Store { src; base; offset; update = false }

let store_update ~src ~base ~offset =
  Instr.Store { src; base; offset; update = true }

let li ~dst value = Instr.Load_imm { dst; value }
let mr ~dst ~src = Instr.Move { dst; src }
let binop op ~dst ~lhs ~rhs = Instr.Binop { op; dst; lhs; rhs }
let add ~dst ~lhs ~rhs = binop Instr.Add ~dst ~lhs ~rhs:(Instr.Reg rhs)
let addi ~dst ~lhs n = binop Instr.Add ~dst ~lhs ~rhs:(Instr.Imm n)
let sub ~dst ~lhs ~rhs = binop Instr.Sub ~dst ~lhs ~rhs:(Instr.Reg rhs)
let subi ~dst ~lhs n = binop Instr.Sub ~dst ~lhs ~rhs:(Instr.Imm n)
let mul ~dst ~lhs ~rhs = binop Instr.Mul ~dst ~lhs ~rhs:(Instr.Reg rhs)
let fbinop op ~dst ~lhs ~rhs = Instr.Fbinop { op; dst; lhs; rhs }
let cmp ~dst ~lhs ~rhs = Instr.Compare { dst; lhs; rhs = Instr.Reg rhs }
let cmpi ~dst ~lhs n = Instr.Compare { dst; lhs; rhs = Instr.Imm n }
let fcmp ~dst ~lhs ~rhs = Instr.Fcompare { dst; lhs; rhs }

let bt ~cr ~cond ~taken ~fallthru =
  Instr.Branch_cond { cr; cond; expect = true; taken; fallthru }

let bf ~cr ~cond ~taken ~fallthru =
  Instr.Branch_cond { cr; cond; expect = false; taken; fallthru }

let jmp target = Instr.Jump { target }
let call ?ret name args = Instr.Call { name; args; ret }
let halt = Instr.Halt

let is_terminator_kind = function
  | Instr.Branch_cond _ | Instr.Jump _ | Instr.Halt -> true
  | Instr.Load _ | Instr.Store _ | Instr.Load_imm _ | Instr.Move _
  | Instr.Binop _ | Instr.Fbinop _ | Instr.Compare _ | Instr.Fcompare _
  | Instr.Call _ ->
      false

let func ?reg_gen blocks =
  let cfg = Cfg.create ?reg_gen () in
  (* Create all blocks first so forward branch targets resolve. *)
  List.iter (fun (label, _, _) -> ignore (Cfg.add_block cfg ~label)) blocks;
  List.iter
    (fun (label, body, term) ->
      if not (is_terminator_kind term) then
        invalid_arg
          (Fmt.str "Builder.func: block %a has a non-branch terminator"
             Label.pp label);
      let b = Cfg.block_of_label cfg label in
      List.iter
        (fun kind ->
          if is_terminator_kind kind then
            invalid_arg
              (Fmt.str "Builder.func: branch in the body of block %a" Label.pp
                 label);
          Gis_util.Vec.push b.Block.body (Cfg.make_instr cfg kind))
        body;
      b.Block.term <- Cfg.make_instr cfg term)
    blocks;
  (match blocks with
  | [] -> invalid_arg "Builder.func: no blocks"
  | (entry, _, _) :: _ ->
      Cfg.set_entry cfg (Cfg.block_of_label cfg entry).Block.id);
  cfg
