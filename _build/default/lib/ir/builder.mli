(** Convenient CFG construction.

    Two layers: smart constructors for {!Instr.kind} values (mnemonics
    close to the paper's pseudo-code), and {!func}, which assembles a
    whole procedure from [(label, body, terminator)] triples. *)

val load : dst:Reg.t -> base:Reg.t -> offset:int -> Instr.kind
val load_update : dst:Reg.t -> base:Reg.t -> offset:int -> Instr.kind
val store : src:Reg.t -> base:Reg.t -> offset:int -> Instr.kind
val store_update : src:Reg.t -> base:Reg.t -> offset:int -> Instr.kind
val li : dst:Reg.t -> int -> Instr.kind
val mr : dst:Reg.t -> src:Reg.t -> Instr.kind

val binop : Instr.binop -> dst:Reg.t -> lhs:Reg.t -> rhs:Instr.operand -> Instr.kind
val add : dst:Reg.t -> lhs:Reg.t -> rhs:Reg.t -> Instr.kind
val addi : dst:Reg.t -> lhs:Reg.t -> int -> Instr.kind
val sub : dst:Reg.t -> lhs:Reg.t -> rhs:Reg.t -> Instr.kind
val subi : dst:Reg.t -> lhs:Reg.t -> int -> Instr.kind
val mul : dst:Reg.t -> lhs:Reg.t -> rhs:Reg.t -> Instr.kind

val fbinop : Instr.fbinop -> dst:Reg.t -> lhs:Reg.t -> rhs:Reg.t -> Instr.kind

val cmp : dst:Reg.t -> lhs:Reg.t -> rhs:Reg.t -> Instr.kind
val cmpi : dst:Reg.t -> lhs:Reg.t -> int -> Instr.kind
val fcmp : dst:Reg.t -> lhs:Reg.t -> rhs:Reg.t -> Instr.kind

val bt :
  cr:Reg.t -> cond:Instr.cond -> taken:Label.t -> fallthru:Label.t -> Instr.kind
(** Branch if the condition holds (paper's BT). *)

val bf :
  cr:Reg.t -> cond:Instr.cond -> taken:Label.t -> fallthru:Label.t -> Instr.kind
(** Branch if the condition does {e not} hold (paper's BF): [bf ~cond:Gt]
    branches to [taken] when the compare result is not [Gt]. *)

val jmp : Label.t -> Instr.kind
val call : ?ret:Reg.t -> string -> Reg.t list -> Instr.kind
val halt : Instr.kind

val func :
  ?reg_gen:Reg.Gen.t ->
  (Label.t * Instr.kind list * Instr.kind) list ->
  Cfg.t
(** Build a procedure; the first triple is the entry block. The
    terminator kind must be a branch kind ({!bt}, {!bf}, {!jmp},
    {!halt}); anything else raises [Invalid_argument]. *)
