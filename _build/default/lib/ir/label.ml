type t = string

let equal = String.equal
let compare = String.compare
let pp = Fmt.string

module Set = Set.Make (String)
module Map = Map.Make (String)

let counter = ref 0

let fresh ~prefix () =
  incr counter;
  Printf.sprintf "%s.%d" prefix !counter
