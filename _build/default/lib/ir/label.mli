(** Branch-target labels.

    Labels name basic blocks; the paper's pseudo-code uses labels such as
    [CL.0], [CL.4]. A label is a string plus an equality/compare/hash
    suite, so that it can key maps and hash tables. *)

type t = string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val fresh : prefix:string -> unit -> t
(** [fresh ~prefix ()] generates a label unique within the process,
    e.g. [fresh ~prefix:"CL" () = "CL.17"]. Used by CFG transformations
    (unrolling, rotation) that must invent new block names. *)
