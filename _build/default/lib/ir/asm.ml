open Gis_util

exception Error of string

let err line fmt = Fmt.kstr (fun m -> raise (Error (Fmt.str "line %d: %s" line m))) fmt

(* ---- printing ---- *)

let print cfg =
  let buf = Buffer.create 1024 in
  let layout = Cfg.layout cfg in
  let next_label = Hashtbl.create 16 in
  let rec note = function
    | a :: (b :: _ as rest) ->
        Hashtbl.replace next_label a (Cfg.block cfg b).Block.label;
        note rest
    | [ _ ] | [] -> ()
  in
  note layout;
  List.iter
    (fun id ->
      let b = Cfg.block cfg id in
      Buffer.add_string buf (Fmt.str "%a:\n" Label.pp b.Block.label);
      Vec.iter
        (fun i -> Buffer.add_string buf (Fmt.str "  %a\n" Instr.pp i))
        b.Block.body;
      let term = b.Block.term in
      (match Instr.kind term with
      | Instr.Branch_cond { fallthru; _ } ->
          let explicit =
            match Hashtbl.find_opt next_label id with
            | Some next -> not (Label.equal next fallthru)
            | None -> true
          in
          if explicit then
            Buffer.add_string buf
              (Fmt.str "  %a -> %a\n" Instr.pp term Label.pp fallthru)
          else Buffer.add_string buf (Fmt.str "  %a\n" Instr.pp term)
      | _ -> Buffer.add_string buf (Fmt.str "  %a\n" Instr.pp term)))
    layout;
  Buffer.contents buf

(* ---- parsing ---- *)

type pending_term =
  | P_cond of {
      cr : Reg.t;
      cond : Instr.cond;
      expect : bool;
      taken : Label.t;
      fallthru : Label.t option;
    }
  | P_jump of Label.t
  | P_halt
  | P_call of Instr.kind  (** calls and other body kinds never terminate *)

let strip_comment line =
  let cut c s = match String.index_opt s c with Some i -> String.sub s 0 i | None -> s in
  cut ';' (cut '#' line)

let parse_reg ~line gen s =
  let s = String.trim s in
  let mk cls skip =
    match int_of_string_opt (String.sub s skip (String.length s - skip)) with
    | Some id when id >= 0 -> Reg.Gen.reserve gen cls id
    | Some _ | None -> err line "bad register %S" s
  in
  if String.length s >= 3 && s.[0] = 'c' && s.[1] = 'r' then mk Reg.Cr 2
  else if String.length s >= 2 && s.[0] = 'r' then mk Reg.Gpr 1
  else if String.length s >= 2 && s.[0] = 'f' then mk Reg.Fpr 1
  else err line "bad register %S" s

let parse_operand ~line gen s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some n -> Instr.Imm n
  | None -> Instr.Reg (parse_reg ~line gen s)

let parse_cond ~line s =
  match String.trim s with
  | "lt" -> Instr.Lt
  | "gt" -> Instr.Gt
  | "eq" -> Instr.Eq
  | "le" -> Instr.Le
  | "ge" -> Instr.Ge
  | "ne" -> Instr.Ne
  | other -> err line "bad condition %S" other

(* "mem(rB,OFF)" -> (base string, offset) *)
let parse_mem ~line s =
  let s = String.trim s in
  match String.index_opt s '(' , String.index_opt s ')' with
  | Some o, Some c
    when o = 3 && c = String.length s - 1 && String.sub s 0 3 = "mem" -> (
      let inner = String.sub s 4 (c - 4) in
      match String.split_on_char ',' inner with
      | [ base; off ] -> (
          match int_of_string_opt (String.trim off) with
          | Some n -> (base, n)
          | None -> err line "bad memory offset in %S" s)
      | _ -> err line "bad memory operand %S" s)
  | _ -> err line "bad memory operand %S" s

let split2 ~line ~on s what =
  match String.index_opt s on with
  | Some i ->
      ( String.sub s 0 i,
        String.sub s (i + 1) (String.length s - i - 1) )
  | None -> err line "expected %c in %s %S" on what s

let binop_of_mnemonic = function
  | "A" -> Some Instr.Add
  | "S" -> Some Instr.Sub
  | "MUL" -> Some Instr.Mul
  | "DIV" -> Some Instr.Div
  | "REM" -> Some Instr.Rem
  | "AND" -> Some Instr.And
  | "OR" -> Some Instr.Or
  | "XOR" -> Some Instr.Xor
  | "SL" -> Some Instr.Shl
  | "SR" -> Some Instr.Shr
  | _ -> None

let fbinop_of_mnemonic = function
  | "FA" -> Some Instr.Fadd
  | "FS" -> Some Instr.Fsub
  | "FM" -> Some Instr.Fmul
  | "FD" -> Some Instr.Fdiv
  | _ -> None

(* Parse one instruction line into either a body kind or a pending
   terminator. *)
let parse_line ~line gen text =
  let text = String.trim text in
  let mnemonic, rest =
    match String.index_opt text ' ' with
    | Some i ->
        ( String.sub text 0 i,
          String.trim (String.sub text (i + 1) (String.length text - i - 1)) )
    | None -> (text, "")
  in
  let reg = parse_reg ~line gen in
  let operand = parse_operand ~line gen in
  let body k = `Body k in
  match mnemonic with
  | "HALT" -> `Term P_halt
  | "B" -> `Term (P_jump (String.trim rest))
  | "BT" | "BF" -> (
      let expect = mnemonic = "BT" in
      let rest, fallthru =
        match String.index_opt rest '-' with
        | Some i
          when i + 1 < String.length rest && rest.[i + 1] = '>' ->
            ( String.trim (String.sub rest 0 i),
              Some
                (String.trim (String.sub rest (i + 2) (String.length rest - i - 2)))
            )
        | Some _ | None -> (rest, None)
      in
      match String.split_on_char ',' rest with
      | [ taken; cr; cond ] ->
          `Term
            (P_cond
               {
                 cr = reg cr;
                 cond = parse_cond ~line cond;
                 expect;
                 taken = String.trim taken;
                 fallthru;
               })
      | _ -> err line "bad branch %S" rest)
  | "L" | "LU" ->
      let lhs, rhs = split2 ~line ~on:'=' rest "load" in
      let base_s, offset = parse_mem ~line rhs in
      let base = reg base_s in
      if mnemonic = "L" then body (Instr.Load { dst = reg lhs; base; offset; update = false })
      else begin
        match String.split_on_char ',' lhs with
        | [ dst; base2 ] ->
            if not (Reg.equal (reg base2) base) then
              err line "update load base mismatch in %S" rest;
            body (Instr.Load { dst = reg dst; base; offset; update = true })
        | _ -> err line "bad update load %S" rest
      end
  | "ST" | "STU" ->
      let lhs, rhs = split2 ~line ~on:'=' rest "store" in
      let src = reg rhs in
      if mnemonic = "ST" then begin
        let base_s, offset = parse_mem ~line lhs in
        body (Instr.Store { src; base = reg base_s; offset; update = false })
      end
      else begin
        (* mem(rB,off),rB=src *)
        match String.rindex_opt lhs ',' with
        | Some i ->
            let mem_part = String.sub lhs 0 i in
            let base2 = String.sub lhs (i + 1) (String.length lhs - i - 1) in
            let base_s, offset = parse_mem ~line mem_part in
            let base = reg base_s in
            if not (Reg.equal (reg base2) base) then
              err line "update store base mismatch in %S" rest;
            body (Instr.Store { src; base; offset; update = true })
        | None -> err line "bad update store %S" rest
      end
  | "LI" ->
      let lhs, rhs = split2 ~line ~on:'=' rest "li" in
      (match int_of_string_opt (String.trim rhs) with
      | Some value -> body (Instr.Load_imm { dst = reg lhs; value })
      | None -> err line "bad immediate %S" rhs)
  | "LR" ->
      let lhs, rhs = split2 ~line ~on:'=' rest "move" in
      body (Instr.Move { dst = reg lhs; src = reg rhs })
  | "C" ->
      let lhs, rhs = split2 ~line ~on:'=' rest "compare" in
      (match String.split_on_char ',' rhs with
      | [ a; b ] ->
          body (Instr.Compare { dst = reg lhs; lhs = reg a; rhs = operand b })
      | _ -> err line "bad compare %S" rest)
  | "FC" ->
      let lhs, rhs = split2 ~line ~on:'=' rest "fcompare" in
      (match String.split_on_char ',' rhs with
      | [ a; b ] ->
          body (Instr.Fcompare { dst = reg lhs; lhs = reg a; rhs = reg b })
      | _ -> err line "bad fcompare %S" rest)
  | "CALL" ->
      (* [ret=]name(arg,...) *)
      let target, ret =
        match String.index_opt rest '=' with
        | Some i
          when (match String.index_opt rest '(' with
               | Some p -> i < p
               | None -> false) ->
            ( String.sub rest (i + 1) (String.length rest - i - 1),
              Some (reg (String.sub rest 0 i)) )
        | Some _ | None -> (rest, None)
      in
      (match String.index_opt target '(', String.index_opt target ')' with
      | Some o, Some c when c = String.length target - 1 && o < c ->
          let name = String.trim (String.sub target 0 o) in
          let args_s = String.trim (String.sub target (o + 1) (c - o - 1)) in
          let args =
            if args_s = "" then []
            else List.map reg (String.split_on_char ',' args_s)
          in
          `Term (P_call (Instr.Call { name; args; ret }))
      | _ -> err line "bad call %S" rest)
  | m -> (
      let base, imm_form =
        if String.length m > 1 && m.[String.length m - 1] = 'I' then
          (String.sub m 0 (String.length m - 1), true)
        else (m, false)
      in
      match binop_of_mnemonic base, fbinop_of_mnemonic m with
      | Some op, _ ->
          let lhs, rhs = split2 ~line ~on:'=' rest "binop" in
          (match String.split_on_char ',' rhs with
          | [ a; b ] ->
              let rhs_op =
                if imm_form then
                  match int_of_string_opt (String.trim b) with
                  | Some n -> Instr.Imm n
                  | None -> err line "immediate expected in %S" rest
                else operand b
              in
              body (Instr.Binop { op; dst = reg lhs; lhs = reg a; rhs = rhs_op })
          | _ -> err line "bad binop %S" rest)
      | None, Some op ->
          let lhs, rhs = split2 ~line ~on:'=' rest "fbinop" in
          (match String.split_on_char ',' rhs with
          | [ a; b ] ->
              body (Instr.Fbinop { op; dst = reg lhs; lhs = reg a; rhs = reg b })
          | _ -> err line "bad fbinop %S" rest)
      | None, None -> err line "unknown mnemonic %S" mnemonic)

type raw_block = {
  rb_label : Label.t;
  rb_line : int;
  mutable rb_body : Instr.kind list;  (** reversed *)
  mutable rb_term : (pending_term * int) option;
}

let parse text =
  let gen = Reg.Gen.create () in
  let blocks = ref [] in
  let current = ref None in
  let start_block ~line label =
    let rb = { rb_label = label; rb_line = line; rb_body = []; rb_term = None } in
    blocks := rb :: !blocks;
    current := Some rb
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let text = String.trim (strip_comment raw) in
      if text <> "" then
        if String.length text > 1 && text.[String.length text - 1] = ':' then
          start_block ~line (String.trim (String.sub text 0 (String.length text - 1)))
        else
          match !current with
          | None -> err line "instruction before the first label"
          | Some rb -> (
              if rb.rb_term <> None then
                err line "instruction after the block terminator";
              match parse_line ~line gen text with
              | `Body k -> rb.rb_body <- k :: rb.rb_body
              | `Term (P_call k) -> rb.rb_body <- k :: rb.rb_body
              | `Term t -> rb.rb_term <- Some (t, line)))
    lines;
  let ordered = List.rev !blocks in
  if ordered = [] then raise (Error "empty program");
  (* Resolve fallthroughs and build the graph. *)
  let cfg = Cfg.create ~reg_gen:gen () in
  List.iter (fun rb -> ignore (Cfg.add_block cfg ~label:rb.rb_label)) ordered;
  let rec next_of = function
    | a :: (b :: _ as rest) ->
        (a.rb_label, b.rb_label) :: next_of rest
    | [ _ ] | [] -> []
  in
  let next_table = next_of ordered in
  List.iter
    (fun rb ->
      let b = Cfg.block_of_label cfg rb.rb_label in
      List.iter
        (fun k -> Vec.push b.Block.body (Cfg.make_instr cfg k))
        (List.rev rb.rb_body);
      let term_kind =
        match rb.rb_term with
        | Some (P_halt, _) -> Instr.Halt
        | Some (P_jump target, _) -> Instr.Jump { target }
        | Some (P_cond { cr; cond; expect; taken; fallthru }, tline) ->
            let fallthru =
              match fallthru with
              | Some f -> f
              | None -> (
                  match List.assoc_opt rb.rb_label next_table with
                  | Some next -> next
                  | None ->
                      err tline
                        "conditional branch in the last block needs an \
                         explicit '->' fallthrough")
            in
            Instr.Branch_cond { cr; cond; expect; taken; fallthru }
        | Some (P_call _, _) -> assert false
        | None -> (
            (* Implicit fallthrough for hand-written input. *)
            match List.assoc_opt rb.rb_label next_table with
            | Some next -> Instr.Jump { target = next }
            | None -> Instr.Halt)
      in
      b.Block.term <- Cfg.make_instr cfg term_kind)
    ordered;
  Cfg.set_entry cfg (Cfg.block_of_label cfg (List.hd ordered).rb_label).Block.id;
  (match Validate.check cfg with
  | Ok () -> ()
  | Error es ->
      raise (Error (Fmt.str "invalid program: %a" Fmt.(list ~sep:(any "; ") string) es)));
  cfg
