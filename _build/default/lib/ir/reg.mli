(** Symbolic machine registers.

    Scheduling happens before register allocation (paper, Section 2), so
    the supply of registers is unbounded. Three classes mirror the
    RS/6000: general-purpose (fixed point), condition registers set by
    compares and read by branches, and floating-point registers. *)

type cls =
  | Gpr  (** general purpose (fixed point) register, printed [rN] *)
  | Cr   (** condition register, printed [crN] *)
  | Fpr  (** floating point register, printed [fN] *)

type t = private {
  id : int;   (** unique within a register generator *)
  cls : cls;
}

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t
val pp_cls : cls Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** A register generator: a counter producing fresh symbolic registers.
    Each CFG owns one, so that renaming during scheduling can always
    invent a register that clashes with nothing. *)
module Gen : sig
  type reg = t
  type t

  val create : unit -> t

  val fresh : t -> cls -> reg
  (** A register never produced before by this generator. *)

  val reserve : t -> cls -> int -> reg
  (** [reserve gen cls n] returns the register [n] of class [cls] and
      bumps the generator's counter past [n], so that later [fresh]
      calls do not collide. Used to build code with the paper's
      concrete register numbers (r0, r12, r28...). *)
end
