lib/ir/asm.ml: Block Buffer Cfg Fmt Gis_util Hashtbl Instr Label List Reg String Validate Vec
