lib/ir/label.ml: Fmt Map Printf Set String
