lib/ir/asm.mli: Cfg
