lib/ir/builder.ml: Block Cfg Fmt Gis_util Instr Label List
