lib/ir/builder.mli: Cfg Instr Label Reg
