lib/ir/cfg.mli: Block Fmt Gis_util Instr Label Reg
