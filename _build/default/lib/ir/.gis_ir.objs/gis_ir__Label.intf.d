lib/ir/label.mli: Fmt Map Set
