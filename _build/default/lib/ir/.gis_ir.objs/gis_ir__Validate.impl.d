lib/ir/validate.ml: Block Cfg Fmt Gis_util Hashtbl Instr Label List Reg Vec
