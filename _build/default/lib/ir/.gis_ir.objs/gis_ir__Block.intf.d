lib/ir/block.mli: Fmt Gis_util Instr Label
