lib/ir/cfg.ml: Array Block Fmt Gis_util Hashtbl Instr Int_set Ints Label List Reg Vec
