lib/ir/reg.ml: Fmt Int Map Set
