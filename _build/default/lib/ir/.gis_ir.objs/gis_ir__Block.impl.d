lib/ir/block.ml: Fmt Gis_util Instr Label Vec
