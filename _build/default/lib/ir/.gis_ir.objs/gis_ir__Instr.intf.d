lib/ir/instr.mli: Fmt Label Reg
