lib/ir/validate.mli: Cfg
