lib/ir/instr.ml: Fmt Label List Reg
