(** Basic blocks.

    A block is a label, a vector of non-branch body instructions, and a
    single terminator (conditional branch, jump, or halt). Successor
    edges are derived from the terminator, so the CFG can never disagree
    with the code. Body vectors are mutable because the global scheduler
    physically moves instructions between blocks. *)

type t = {
  id : int;  (** dense index within the owning CFG *)
  label : Label.t;
  body : Instr.t Gis_util.Vec.t;
  mutable term : Instr.t;
}

val successor_labels : t -> Label.t list
(** Successors in edge order: for a conditional branch, fallthrough
    first, then taken target; for a jump, its target; for halt, none. *)

val instr_count : t -> int
(** Body instructions plus the terminator. *)

val instrs : t -> Instr.t list
(** Body in order, terminator last. *)

val mem_uid : t -> int -> bool
(** Does the block contain the instruction with this uid (body or
    terminator)? *)

val find_body_index : t -> uid:int -> int option

val remove_by_uid : t -> uid:int -> Instr.t
(** Remove a body instruction by uid. Raises [Not_found] if absent or if
    the uid names the terminator. *)

val pp : t Fmt.t
