open Gis_util

type t = {
  id : int;
  label : Label.t;
  body : Instr.t Vec.t;
  mutable term : Instr.t;
}

let successor_labels b =
  match Instr.kind b.term with
  | Instr.Branch_cond { taken; fallthru; _ } -> [ fallthru; taken ]
  | Instr.Jump { target } -> [ target ]
  | Instr.Halt -> []
  | Instr.Load _ | Instr.Store _ | Instr.Load_imm _ | Instr.Move _
  | Instr.Binop _ | Instr.Fbinop _ | Instr.Compare _ | Instr.Fcompare _
  | Instr.Call _ ->
      invalid_arg "Block.successor_labels: non-branch terminator"

let instr_count b = Vec.length b.body + 1

let instrs b = Vec.to_list b.body @ [ b.term ]

let mem_uid b uid =
  Instr.uid b.term = uid || Vec.exists (fun i -> Instr.uid i = uid) b.body

let find_body_index b ~uid = Vec.find_index (fun i -> Instr.uid i = uid) b.body

let remove_by_uid b ~uid =
  match find_body_index b ~uid with
  | Some idx -> Vec.remove b.body idx
  | None -> raise Not_found

let pp ppf b =
  Fmt.pf ppf "@[<v>%a:" Label.pp b.label;
  Vec.iter (fun i -> Fmt.pf ppf "@,  %a" Instr.pp i) b.body;
  Fmt.pf ppf "@,  %a@]" Instr.pp b.term
