(** IR well-formedness checking.

    Run after construction and after every scheduling transformation in
    tests: catching a malformed graph at the source beats debugging a
    miscompiled schedule. *)

val check : Cfg.t -> (unit, string list) result
(** All violations found, not just the first: unresolved branch targets,
    branches in block bodies, non-branch terminators, duplicate
    instruction uids, register-class violations (e.g. a branch testing a
    general-purpose register), and update-form loads whose destination
    equals the base. *)

val check_exn : Cfg.t -> unit
(** Raises [Failure] with the formatted violation list. *)
