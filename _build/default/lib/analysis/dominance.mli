(** Dominator and postdominator trees (paper Definitions 1–3).

    Computed with the Cooper–Harvey–Kennedy iterative algorithm over a
    {!Flow.t} view. A node unreachable from the view entry has no
    dominator information and dominates nothing. *)

type t

val compute : Flow.t -> t

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry and for unreachable
    nodes. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: [a] appears on every path from the entry to [b].
    Reflexive. False when either node is unreachable (unless equal and
    reachable). O(1) after preprocessing. *)

val strictly_dominates : t -> int -> int -> bool

val children : t -> int -> int list
(** Dominator-tree children. *)

val reachable : t -> int -> bool

val dom_tree_depth : t -> int -> int
(** Depth of a node in the dominator tree (entry = 0); [-1] when
    unreachable. *)

(** Postdominators: [b] postdominates [a] iff [b] appears on every path
    from [a] to EXIT (paper Definition 2). Computed as dominance on the
    reversed graph with a virtual exit that gathers every node without
    successors. *)
module Post : sig
  type post

  val compute : Flow.t -> post

  val postdominates : post -> int -> int -> bool
  (** [postdominates p b a]: [b] appears on every path from [a] to the
      (virtual) exit. Reflexive on reachable-to-exit nodes. *)

  val ipostdom : post -> int -> int option
  (** Immediate postdominator within the view; [None] when it is the
      virtual exit or the node cannot reach an exit. *)

  val virtual_exit : post -> int
  (** Index of the virtual exit in the reversed graph (= [num_nodes]). *)

  val ipostdom_raw : post -> int -> int option
  (** Immediate postdominator, possibly the virtual exit node. *)
end

val equivalent : t -> Post.post -> int -> int -> bool
(** Paper Definition 3: [equivalent dom post a b] iff [a] dominates [b]
    and [b] postdominates [a] — the nodes execute under exactly the same
    conditions, with [a] first. *)

val naive_dominators : Flow.t -> Gis_util.Ints.Int_set.t array
(** Reference implementation by set intersection over all paths
    (iterative dataflow with explicit sets), used to cross-check
    {!compute} in property tests. [result.(v)] is the full dominator set
    of [v]; empty for unreachable nodes. *)
