(** Live-variable analysis over a whole CFG.

    The global scheduler needs the registers *live on exit* from each
    basic block to decide whether a speculative motion is safe (paper
    Section 5.3): an instruction must not be moved into block [B] if it
    writes a register live on exit from [B]. The information is
    recomputed after each motion — the paper notes it "has to be updated
    dynamically". *)

type t

val compute : Gis_ir.Cfg.t -> t
(** Backward iterative dataflow to a fixpoint; back edges included. *)

val live_in : t -> int -> Gis_ir.Reg.Set.t
val live_out : t -> int -> Gis_ir.Reg.Set.t

val live_before_terminator : t -> Gis_ir.Cfg.t -> int -> Gis_ir.Reg.Set.t
(** Registers live immediately before the block's terminator — what a
    motion *into* the block (which always places code before the
    terminator) must not clobber. Equals [live_out] plus the
    terminator's own uses. *)

val pp : t Fmt.t
