open Gis_util
open Gis_ir

type site = Def of int | External

let pp_site ppf = function
  | Def uid -> Fmt.pf ppf "def#%d" uid
  | External -> Fmt.string ppf "external"

let equal_site a b =
  match a, b with
  | Def x, Def y -> x = y
  | External, External -> true
  | Def _, External | External, Def _ -> false

(* Sites are interned to dense indices so the dataflow runs on integer
   sets. [Reg.hash] is injective, so it serves as a register key. *)
type t = {
  use_chains : (int * int, site list) Hashtbl.t;  (* (uid, reg key) -> sites *)
  def_chains : (int * int, int list) Hashtbl.t;   (* (uid, reg key) -> use uids *)
}

let reg_key r = Reg.hash r

let compute cfg =
  let open Ints in
  (* 1. Enumerate definition sites. *)
  let site_of = Hashtbl.create 64 in (* (sitekind, regkey) -> index *)
  let sites = Vec.create () in       (* index -> (site, reg) *)
  let intern site reg =
    let key = ((match site with Def u -> u | External -> -1), reg_key reg) in
    match Hashtbl.find_opt site_of key with
    | Some idx -> idx
    | None ->
        let idx = Vec.length sites in
        Vec.push sites (site, reg);
        Hashtbl.add site_of key idx;
        idx
  in
  let sites_of_reg = Hashtbl.create 64 in (* regkey -> index list *)
  let note_reg_site reg idx =
    let k = reg_key reg in
    let cur = Option.value ~default:[] (Hashtbl.find_opt sites_of_reg k) in
    if not (List.mem idx cur) then Hashtbl.replace sites_of_reg k (idx :: cur)
  in
  let all_regs = ref Reg.Set.empty in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          List.iter (fun r -> all_regs := Reg.Set.add r !all_regs) (Instr.uses i);
          List.iter
            (fun r ->
              all_regs := Reg.Set.add r !all_regs;
              note_reg_site r (intern (Def (Instr.uid i)) r))
            (Instr.defs i))
        (Block.instrs b))
    cfg;
  let external_sites =
    Reg.Set.fold
      (fun r acc ->
        let idx = intern External r in
        note_reg_site r idx;
        Int_set.add idx acc)
      !all_regs Int_set.empty
  in
  let indices_of_reg r =
    Option.value ~default:[] (Hashtbl.find_opt sites_of_reg (reg_key r))
  in
  (* 2. gen/kill per block. *)
  let n = Cfg.num_blocks cfg in
  let gen = Array.make n Int_set.empty in
  let kill = Array.make n Int_set.empty in
  for id = 0 to n - 1 do
    let b = Cfg.block cfg id in
    List.iter
      (fun i ->
        List.iter
          (fun r ->
            let own = intern (Def (Instr.uid i)) r in
            let others =
              List.filter (fun s -> s <> own) (indices_of_reg r)
            in
            gen.(id) <-
              Int_set.add own
                (List.fold_left (fun g s -> Int_set.remove s g) gen.(id) others);
            kill.(id) <-
              List.fold_left (fun k s -> Int_set.add s k) kill.(id) others)
          (Instr.defs i))
      (Block.instrs b)
  done;
  (* 3. Forward dataflow. *)
  let in_ = Array.make n Int_set.empty in
  let out = Array.make n Int_set.empty in
  let preds = Cfg.predecessors cfg in
  let entry = Cfg.entry cfg in
  let step () =
    let changed = ref false in
    List.iter
      (fun id ->
        let inn =
          List.fold_left
            (fun acc p -> Int_set.union acc out.(p))
            (if id = entry then external_sites else Int_set.empty)
            preds.(id)
        in
        let o = Int_set.union gen.(id) (Int_set.diff inn kill.(id)) in
        if not (Int_set.equal inn in_.(id)) || not (Int_set.equal o out.(id))
        then begin
          in_.(id) <- inn;
          out.(id) <- o;
          changed := true
        end)
      (Cfg.layout cfg);
    !changed
  in
  ignore (Fix.iterate step);
  (* 4. Walk each block once more to record use-def / def-use chains. *)
  let use_chains = Hashtbl.create 64 in
  let def_chains = Hashtbl.create 64 in
  let add_def_use duid reg use_uid =
    let key = (duid, reg_key reg) in
    let cur = Option.value ~default:[] (Hashtbl.find_opt def_chains key) in
    if not (List.mem use_uid cur) then
      Hashtbl.replace def_chains key (use_uid :: cur)
  in
  for id = 0 to n - 1 do
    let b = Cfg.block cfg id in
    let running = ref in_.(id) in
    List.iter
      (fun i ->
        List.iter
          (fun r ->
            let reaching =
              List.filter (fun s -> Int_set.mem s !running) (indices_of_reg r)
              |> List.map (fun s -> fst (Vec.get sites s))
            in
            Hashtbl.replace use_chains (Instr.uid i, reg_key r) reaching;
            List.iter
              (function
                | Def duid -> add_def_use duid r (Instr.uid i)
                | External -> ())
              reaching)
          (Instr.uses i);
        List.iter
          (fun r ->
            let own = intern (Def (Instr.uid i)) r in
            running :=
              Int_set.add own
                (List.fold_left
                   (fun acc s -> Int_set.remove s acc)
                   !running (indices_of_reg r)))
          (Instr.defs i))
      (Block.instrs b)
  done;
  { use_chains; def_chains }

let defs_of_use t ~uid ~reg =
  match Hashtbl.find_opt t.use_chains (uid, reg_key reg) with
  | Some sites -> sites
  | None ->
      invalid_arg
        (Fmt.str "Reaching.defs_of_use: instruction %d has no use of %a" uid
           Reg.pp reg)

let uses_of_def t ~uid ~reg =
  Option.value ~default:[] (Hashtbl.find_opt t.def_chains (uid, reg_key reg))

let sole_def_of_all_uses t ~uid ~reg =
  let uses = uses_of_def t ~uid ~reg in
  let sole u =
    match defs_of_use t ~uid:u ~reg with
    | [ Def d ] -> d = uid
    | [] | [ External ] | _ :: _ -> false
  in
  if List.for_all sole uses then Some uses else None
