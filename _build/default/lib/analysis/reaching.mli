(** Reaching definitions and use-def / def-use chains.

    Used by the scheduler's renaming transformation: renaming the
    destination of a moved definition is only sound when every use that
    definition reaches is reached by *no other* definition (paper
    Section 5.3 / Figure 6 — `cr6` becomes `cr5` precisely because `I13`
    is reached only by `I12`'s compare). Registers that may be defined
    before the procedure (parameters) get a synthetic {!External}
    definition site at the entry. *)

type site =
  | Def of int  (** uid of the defining instruction *)
  | External    (** defined before the procedure entry *)

val pp_site : site Fmt.t
val equal_site : site -> site -> bool

type t

val compute : Gis_ir.Cfg.t -> t
(** Forward iterative dataflow over all definition sites; back edges
    included, so definitions reaching around a loop are visible. *)

val defs_of_use : t -> uid:int -> reg:Gis_ir.Reg.t -> site list
(** Definition sites reaching the given use operand. Raises
    [Invalid_argument] if the instruction does not use [reg]. *)

val uses_of_def : t -> uid:int -> reg:Gis_ir.Reg.t -> int list
(** Uids of instructions with a use of [reg] reached by this
    definition. *)

val sole_def_of_all_uses : t -> uid:int -> reg:Gis_ir.Reg.t -> int list option
(** [Some uses] when every use reached by definition [uid] of [reg] has
    that definition as its *only* reaching definition — the renaming
    safety condition; [None] otherwise. *)
