(** Flow-graph views.

    Analyses (dominance, control dependence, reachability) run over a
    *view* of a CFG: a subset of its blocks with some edges masked, all
    renumbered to dense local indices. Views let the same algorithms
    serve the whole procedure, a loop body with its back edges masked
    (the paper's forward control dependence graph, Section 4.1), and an
    outer region with inner loops collapsed. *)

type t = {
  num_nodes : int;
  entry : int;  (** local index *)
  succ : int list array;
  pred : int list array;
  to_block : int array;  (** local index -> CFG block id; [-1] for synthetic nodes *)
  extra_exits : int list;
      (** nodes with an edge that leaves the view (a dropped loop exit
          or a masked back edge). Control may leave the view there, so
          postdominance must treat them as connected to EXIT — otherwise
          a loop body would spuriously postdominate a header whose exit
          edge was dropped, and the scheduler would treat them as
          equivalent. *)
}

val local_of_block : t -> int Gis_util.Ints.Int_map.t
(** Inverse of [to_block], ignoring synthetic nodes. *)

val of_cfg :
  ?blocks:Gis_util.Ints.Int_set.t ->
  ?masked_edges:(int * int) list ->
  entry:int ->
  Gis_ir.Cfg.t ->
  t
(** View of [cfg] restricted to [blocks] (default: all), with the given
    CFG edges (pairs of block ids) removed. Edges leaving the subset are
    dropped. *)

val make :
  ?extra_exits:int list -> entry:int -> to_block:int array -> int list array -> t
(** Build a view from an explicit successor structure (predecessors are
    derived). Used for synthetic graphs in tests and for region graphs
    with collapsed loops. *)

val exit_nodes : t -> int list
(** Sinks (no successors) plus {!field-extra_exits}: every node from
    which control can leave the view. *)

val reverse : t -> exit_nodes:int list -> t
(** The reversed graph with a fresh virtual entry node (index
    [num_nodes]) whose successors are [exit_nodes] — the standard
    construction for postdominators. Nodes unreachable backwards from
    the exits keep empty edges. *)

val postorder : t -> int list
(** Depth-first postorder from the entry; unreachable nodes omitted. *)

val reverse_postorder : t -> int list

val reachable_matrix : t -> bool array array
(** [m.(a).(b)] iff [b] is reachable from [a] following view edges
    ([a] reaches itself). O(V·E) — views are small by the paper's
    region-size limits. *)

val is_acyclic : t -> bool

val pp : t Fmt.t
