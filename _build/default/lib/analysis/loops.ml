open Gis_util
open Gis_ir
open Ints

type loop = {
  index : int;
  header : int;
  blocks : Int_set.t;
  back_edges : (int * int) list;
  parent : int option;
  children : int list;
  depth : int;
}

type t = {
  loops : loop array;
  reducible : bool;
  innermost : int array;  (** block id -> innermost loop index or -1 *)
}

(* Retreating edges: edges (a, b) where b is an ancestor of a in the
   DFS tree (i.e. the DFS has not finished b when the edge is seen). *)
let retreating_edges cfg =
  let n = Cfg.num_blocks cfg in
  let color = Array.make n 0 in
  let edges = ref [] in
  let rec go v =
    color.(v) <- 1;
    List.iter
      (fun (s, _) ->
        if color.(s) = 1 then edges := (v, s) :: !edges
        else if color.(s) = 0 then go s)
      (Cfg.successors cfg v);
    color.(v) <- 2
  in
  go (Cfg.entry cfg);
  !edges

let natural_loop_body cfg (tail, header) =
  let body = ref (Int_set.singleton header) in
  let preds = Cfg.predecessors cfg in
  let rec pull v =
    if not (Int_set.mem v !body) then begin
      body := Int_set.add v !body;
      List.iter pull preds.(v)
    end
  in
  pull tail;
  !body

let compute cfg =
  let flow = Flow.of_cfg ~entry:(Cfg.entry cfg) cfg in
  (* The full-CFG view preserves ids: check, then use ids directly. *)
  let id_of_local = flow.Flow.to_block in
  let local_of_id = Flow.local_of_block flow in
  let dom = Dominance.compute flow in
  let dominates a b =
    match Int_map.find_opt a local_of_id, Int_map.find_opt b local_of_id with
    | Some la, Some lb -> Dominance.dominates dom la lb
    | None, _ | _, None -> false
  in
  ignore id_of_local;
  let retreating = retreating_edges cfg in
  let back_edges = List.filter (fun (t, h) -> dominates h t) retreating in
  let reducible =
    List.for_all (fun e -> List.mem e back_edges) retreating
  in
  (* Group back edges by header and take the union of their bodies. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (t, h) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_header h) in
      Hashtbl.replace by_header h ((t, h) :: cur))
    back_edges;
  let headers = List.sort_uniq Int.compare (List.map snd back_edges) in
  let raw =
    List.map
      (fun h ->
        let edges = Hashtbl.find by_header h in
        let blocks =
          List.fold_left
            (fun acc e -> Int_set.union acc (natural_loop_body cfg e))
            Int_set.empty edges
        in
        (h, blocks, edges))
      headers
  in
  (* Nesting: the parent of a loop is the smallest strictly-containing
     loop. Containment is by block-set inclusion. *)
  let count = List.length raw in
  let arr = Array.of_list raw in
  let parent = Array.make count None in
  for i = 0 to count - 1 do
    let _, bi, _ = arr.(i) in
    for j = 0 to count - 1 do
      if i <> j then begin
        let _, bj, _ = arr.(j) in
        if Int_set.subset bi bj && not (Int_set.equal bi bj) then
          match parent.(i) with
          | None -> parent.(i) <- Some j
          | Some k ->
              let _, bk, _ = arr.(k) in
              if Int_set.cardinal bj < Int_set.cardinal bk then
                parent.(i) <- Some j
      end
    done
  done;
  let children = Array.make count [] in
  Array.iteri
    (fun i p ->
      match p with Some j -> children.(j) <- i :: children.(j) | None -> ())
    parent;
  let rec depth_of i =
    match parent.(i) with None -> 1 | Some j -> 1 + depth_of j
  in
  let loops =
    Array.init count (fun i ->
        let header, blocks, back_edges = arr.(i) in
        {
          index = i;
          header;
          blocks;
          back_edges;
          parent = parent.(i);
          children = children.(i);
          depth = depth_of i;
        })
  in
  let innermost = Array.make (Cfg.num_blocks cfg) (-1) in
  let ordered =
    List.sort
      (fun a b -> Int.compare a.depth b.depth)
      (Array.to_list loops)
  in
  (* Outer loops first, inner loops overwrite. *)
  List.iter
    (fun l -> Int_set.iter (fun b -> innermost.(b) <- l.index) l.blocks)
    ordered;
  { loops; reducible; innermost }

let loops t = t.loops
let reducible t = t.reducible

let innermost_first t =
  List.sort
    (fun a b -> Int.compare b.depth a.depth)
    (Array.to_list t.loops)

let loop_of_block t b =
  if b < 0 || b >= Array.length t.innermost then None
  else if t.innermost.(b) = -1 then None
  else Some t.innermost.(b)

let pp ppf t =
  Fmt.pf ppf "@[<v>reducible=%b" t.reducible;
  Array.iter
    (fun l ->
      Fmt.pf ppf "@,loop %d: header=%d depth=%d blocks=%a" l.index l.header
        l.depth Ints.pp_int_set l.blocks)
    t.loops;
  Fmt.pf ppf "@]"
