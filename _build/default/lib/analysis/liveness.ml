open Gis_util
open Gis_ir

type t = {
  live_in : Reg.Set.t array;
  live_out : Reg.Set.t array;
}

let block_use_def b =
  let use = ref Reg.Set.empty and def = ref Reg.Set.empty in
  let visit i =
    List.iter
      (fun r -> if not (Reg.Set.mem r !def) then use := Reg.Set.add r !use)
      (Instr.uses i);
    List.iter (fun r -> def := Reg.Set.add r !def) (Instr.defs i)
  in
  Vec.iter visit b.Block.body;
  visit b.Block.term;
  (!use, !def)

let compute cfg =
  let n = Cfg.num_blocks cfg in
  let use = Array.make n Reg.Set.empty and def = Array.make n Reg.Set.empty in
  for id = 0 to n - 1 do
    let u, d = block_use_def (Cfg.block cfg id) in
    use.(id) <- u;
    def.(id) <- d
  done;
  let live_in = Array.make n Reg.Set.empty in
  let live_out = Array.make n Reg.Set.empty in
  let step () =
    let changed = ref false in
    (* Reverse layout order converges quickly on mostly-forward graphs. *)
    List.iter
      (fun id ->
        let out =
          List.fold_left
            (fun acc (s, _) -> Reg.Set.union acc live_in.(s))
            Reg.Set.empty (Cfg.successors cfg id)
        in
        let inn = Reg.Set.union use.(id) (Reg.Set.diff out def.(id)) in
        if
          (not (Reg.Set.equal out live_out.(id)))
          || not (Reg.Set.equal inn live_in.(id))
        then begin
          live_out.(id) <- out;
          live_in.(id) <- inn;
          changed := true
        end)
      (List.rev (Cfg.layout cfg));
    !changed
  in
  ignore (Fix.iterate step);
  { live_in; live_out }

let live_in t id = t.live_in.(id)
let live_out t id = t.live_out.(id)

let live_before_terminator t cfg id =
  let b = Cfg.block cfg id in
  List.fold_left
    (fun acc r -> Reg.Set.add r acc)
    t.live_out.(id)
    (Instr.uses b.Block.term)

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  Array.iteri
    (fun id s ->
      Fmt.pf ppf "block %d: out={%a}@," id
        Fmt.(list ~sep:comma Reg.pp)
        (Reg.Set.elements s))
    t.live_out;
  Fmt.pf ppf "@]"
