(** Forward control dependence graph — the control subgraph of the PDG
    (CSPDG, paper Section 4.1).

    Node [b] is control dependent on [a] under label [l] when [a]'s
    branch decides whether [b] executes: there is an edge [a -> x]
    labelled [l] such that [b] postdominates [x] (or is [x]) but [b]
    does not postdominate [a] (Ferrante–Ottenstein–Warren). Computed on
    a {!Flow.t} view with back edges masked, so the graph is acyclic
    (forward control dependences only, after [CHH89]). *)

type label = Gis_ir.Cfg.edge_kind

type t

val compute : ?edge_label:(int -> int -> label) -> Flow.t -> t
(** [edge_label a b] gives the branch condition of the flow edge
    [a -> b]; it defaults to calling the view's underlying structure
    positionally — first successor [Fallthru], second [Taken], single
    successor [Always]. Pass an explicit function when the view does not
    follow that convention. *)

val parents : t -> int -> (int * label) list
(** The nodes controlling [v] (its control dependences), without
    duplicates. *)

val children : t -> int -> (int * label) list
(** The nodes [v] controls. *)

val immediate_successors : t -> int -> int list
(** Distinct CSPDG successors of [v] — the blocks reachable by gambling
    on exactly one branch of [v] (used for 1-branch speculative
    candidate sets, Section 5.1 level 2b). *)

val identically_dependent : t -> int -> int -> bool
(** Same controlling nodes under the same labels — the paper's test for
    locating equivalent nodes in the CSPDG. *)

val speculation_degree : t -> src:int -> dst:int -> int option
(** Length of the shortest CSPDG path from [src] to [dst] — the number
    of branches gambled on when moving instructions from [dst] up to
    [src] (paper Definition 7). [Some 0] when [src = dst]; [None] when
    no path exists. *)

val pp : t Fmt.t
