open Gis_util

type t = {
  flow : Flow.t;
  idom : int array;  (** idom.(v); entry maps to itself; -1 unreachable *)
  (* Euler-tour intervals over the dominator tree give O(1)
     ancestor queries. *)
  tin : int array;
  tout : int array;
  depth : int array;
  children : int list array;
}

(* Cooper, Harvey, Kennedy: "A simple, fast dominance algorithm". *)
let compute_idoms (flow : Flow.t) =
  let n = flow.Flow.num_nodes in
  let rpo = Flow.reverse_postorder flow in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i v -> rpo_index.(v) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(flow.Flow.entry) <- flow.Flow.entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do
        a := idom.(!a)
      done;
      while rpo_index.(!b) > rpo_index.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let step () =
    let changed = ref false in
    List.iter
      (fun v ->
        if v <> flow.Flow.entry then begin
          let processed_preds =
            List.filter (fun p -> idom.(p) <> -1) flow.Flow.pred.(v)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(v) <> new_idom then begin
                idom.(v) <- new_idom;
                changed := true
              end
        end)
      rpo;
    !changed
  in
  ignore (Fix.iterate step);
  idom

let compute flow =
  let n = flow.Flow.num_nodes in
  let idom = compute_idoms flow in
  let children = Array.make n [] in
  for v = 0 to n - 1 do
    if idom.(v) <> -1 && v <> flow.Flow.entry then
      children.(idom.(v)) <- v :: children.(idom.(v))
  done;
  let tin = Array.make n (-1) and tout = Array.make n (-1) in
  let depth = Array.make n (-1) in
  let clock = ref 0 in
  let rec dfs d v =
    depth.(v) <- d;
    tin.(v) <- !clock;
    incr clock;
    List.iter (dfs (d + 1)) children.(v);
    tout.(v) <- !clock;
    incr clock
  in
  dfs 0 flow.Flow.entry;
  { flow; idom; tin; tout; depth; children }

let reachable t v = t.idom.(v) <> -1

let idom t v =
  if (not (reachable t v)) || v = t.flow.Flow.entry then None
  else Some t.idom.(v)

let dominates t a b =
  reachable t a && reachable t b && t.tin.(a) <= t.tin.(b)
  && t.tout.(b) <= t.tout.(a)

let strictly_dominates t a b = a <> b && dominates t a b

let children t v = t.children.(v)

let dom_tree_depth t v = t.depth.(v)

module Post = struct
  type post = {
    dom : t;  (** dominance over the reversed graph *)
    vexit : int;
  }

  let compute flow =
    let n = flow.Flow.num_nodes in
    let rev = Flow.reverse flow ~exit_nodes:(Flow.exit_nodes flow) in
    { dom = compute rev; vexit = n }

  let postdominates p b a = dominates p.dom b a

  let virtual_exit p = p.vexit

  let ipostdom_raw p v = idom p.dom v

  let ipostdom p v =
    match idom p.dom v with
    | Some d when d <> p.vexit -> Some d
    | Some _ | None -> None
end

let equivalent dom post a b =
  dominates dom a b && Post.postdominates post b a

let naive_dominators (flow : Flow.t) =
  let open Ints in
  let n = flow.Flow.num_nodes in
  let all = List.fold_left (fun s v -> Int_set.add v s) Int_set.empty (List.init n Fun.id) in
  let reach = Array.make n false in
  let rec mark v =
    if not reach.(v) then begin
      reach.(v) <- true;
      List.iter mark flow.Flow.succ.(v)
    end
  in
  mark flow.Flow.entry;
  let doms = Array.make n Int_set.empty in
  for v = 0 to n - 1 do
    if reach.(v) then
      doms.(v) <-
        (if v = flow.Flow.entry then Int_set.singleton v else all)
  done;
  let step () =
    let changed = ref false in
    for v = 0 to n - 1 do
      if reach.(v) && v <> flow.Flow.entry then begin
        let preds = List.filter (fun p -> reach.(p)) flow.Flow.pred.(v) in
        let inter =
          match preds with
          | [] -> Int_set.empty
          | first :: rest ->
              List.fold_left
                (fun acc p -> Int_set.inter acc doms.(p))
                doms.(first) rest
        in
        let next = Int_set.add v inter in
        if not (Int_set.equal next doms.(v)) then begin
          doms.(v) <- next;
          changed := true
        end
      end
    done;
    !changed
  in
  ignore (Fix.iterate step);
  doms
