(** Scheduling regions (paper Section 5.1).

    A region is either a loop body or the body of the procedure without
    its enclosed loops. Instructions never move out of or into a region;
    regions are scheduled innermost first. A region's *view* is a
    {!Flow.t} over the region's own blocks plus one collapsed node per
    immediately nested loop, with this region's back edges masked — so
    the view is acyclic and single-entry, ready for dominance, control
    dependence and topological traversal. *)

type node =
  | Block of int      (** CFG block id *)
  | Inner_loop of int (** index of a collapsed immediately-nested loop *)

val pp_node : node Fmt.t

type region = {
  id : int;
  loop : Loops.loop option;  (** [None] for the top-level region *)
  entry_block : int;
  own_blocks : Gis_util.Ints.Int_set.t;
      (** blocks belonging to this region and to no nested loop *)
  nesting : int;  (** 0 for the top level, matching loop depth otherwise *)
}

type t

val compute : Gis_ir.Cfg.t -> t

val regions : t -> region list
(** Innermost first — the scheduling order. Includes the top-level
    region last. *)

val reducible : t -> bool

type view = {
  flow : Flow.t;
  nodes : node array;  (** view node index -> node *)
  edge_label : int -> int -> Gis_ir.Cfg.edge_kind;
  block_node : int -> int option;  (** CFG block id -> view node index *)
}

val view : Gis_ir.Cfg.t -> t -> region -> view
(** Raises [Invalid_argument] if the region's graph is not single-entry
    acyclic after masking (i.e. the CFG is irreducible there). *)

val summary_blocks : t -> loop_index:int -> Gis_util.Ints.Int_set.t
(** All CFG blocks inside the given loop (including deeper nests) — the
    blocks summarized by an [Inner_loop] node. *)
