open Gis_ir

type label = Cfg.edge_kind

type t = {
  parents : (int * label) list array;
  children : (int * label) list array;
}

let default_edge_label (flow : Flow.t) a b =
  match flow.Flow.succ.(a) with
  | [ _ ] -> Cfg.Always
  | [ ft; tk ] ->
      if b = ft then Cfg.Fallthru
      else if b = tk then Cfg.Taken
      else invalid_arg "Cdg: edge not found"
  | _ -> invalid_arg "Cdg: node with unexpected successor count"

let compute ?edge_label (flow : Flow.t) =
  let edge_label =
    match edge_label with
    | Some f -> f
    | None -> default_edge_label flow
  in
  let n = flow.Flow.num_nodes in
  let post = Dominance.Post.compute flow in
  let vexit = Dominance.Post.virtual_exit post in
  let parents = Array.make n [] in
  let children = Array.make n [] in
  let add dep_on v l =
    if not (List.mem (dep_on, l) parents.(v)) then begin
      parents.(v) <- (dep_on, l) :: parents.(v);
      children.(dep_on) <- (v, l) :: children.(dep_on)
    end
  in
  for a = 0 to n - 1 do
    (* Only branch points generate dependences. An edge that left the
       view (a loop exit) still makes its source a branch point: the
       in-view successors execute only when that branch stays inside. *)
    let fanout =
      List.length flow.Flow.succ.(a)
      + (if List.mem a flow.Flow.extra_exits then 1 else 0)
    in
    if fanout > 1 then
      List.iter
        (fun b ->
          if not (Dominance.Post.postdominates post b a) then begin
            let l = edge_label a b in
            let stop =
              match Dominance.Post.ipostdom_raw post a with
              | Some d -> d
              | None -> vexit
            in
            (* Walk the postdominator tree from [b] up to (excluding)
               ipostdom(a); every node on the way is controlled by [a]. *)
            let rec climb v =
              if v <> stop && v <> vexit then begin
                add a v l;
                match Dominance.Post.ipostdom_raw post v with
                | Some d -> climb d
                | None -> ()
              end
            in
            climb b
          end)
        flow.Flow.succ.(a)
  done;
  { parents; children }

let parents t v = t.parents.(v)
let children t v = t.children.(v)

let immediate_successors t v =
  List.sort_uniq Int.compare (List.map fst t.children.(v))

let canonical deps =
  List.sort_uniq
    (fun (a, la) (b, lb) ->
      match Int.compare a b with 0 -> Stdlib.compare la lb | c -> c)
    deps

let identically_dependent t a b =
  canonical t.parents.(a) = canonical t.parents.(b)

let speculation_degree t ~src ~dst =
  (* BFS over CSPDG children; the graph is acyclic and small. *)
  let n = Array.length t.children in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  let rec loop () =
    if Queue.is_empty q then ()
    else begin
      let v = Queue.pop q in
      List.iter
        (fun (c, _) ->
          if dist.(c) = -1 then begin
            dist.(c) <- dist.(v) + 1;
            Queue.add c q
          end)
        t.children.(v);
      loop ()
    end
  in
  loop ();
  if dist.(dst) = -1 then None else Some dist.(dst)

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  Array.iteri
    (fun v deps ->
      if deps <> [] then
        Fmt.pf ppf "%d <- %a@,"
          v
          Fmt.(
            list ~sep:comma (fun ppf (d, l) ->
                pf ppf "%d/%a" d Cfg.pp_edge_kind l))
          deps)
    t.parents;
  Fmt.pf ppf "@]"
