open Gis_util
open Gis_ir
open Ints

type node = Block of int | Inner_loop of int

let pp_node ppf = function
  | Block b -> Fmt.pf ppf "blk%d" b
  | Inner_loop l -> Fmt.pf ppf "loop%d" l

type region = {
  id : int;
  loop : Loops.loop option;
  entry_block : int;
  own_blocks : Int_set.t;
  nesting : int;
}

type t = {
  cfg_entry : int;
  loop_info : Loops.t;
  region_list : region list;
}

let compute cfg =
  let loop_info = Loops.compute cfg in
  let loops = Loops.loops loop_info in
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let region_of_loop (l : Loops.loop) =
    let nested =
      List.fold_left
        (fun acc c -> Int_set.union acc loops.(c).Loops.blocks)
        Int_set.empty l.Loops.children
    in
    {
      id = fresh ();
      loop = Some l;
      entry_block = l.Loops.header;
      own_blocks = Int_set.diff l.Loops.blocks nested;
      nesting = l.Loops.depth;
    }
  in
  let loop_regions = List.map region_of_loop (Loops.innermost_first loop_info) in
  let all_loop_blocks =
    Array.fold_left
      (fun acc l -> Int_set.union acc l.Loops.blocks)
      Int_set.empty loops
  in
  let reachable = Cfg.reachable cfg in
  let toplevel =
    {
      id = fresh ();
      loop = None;
      entry_block = Cfg.entry cfg;
      own_blocks = Int_set.diff reachable all_loop_blocks;
      nesting = 0;
    }
  in
  {
    cfg_entry = Cfg.entry cfg;
    loop_info;
    region_list = loop_regions @ [ toplevel ];
  }

let regions t = t.region_list
let reducible t = Loops.reducible t.loop_info

let summary_blocks t ~loop_index =
  (Loops.loops t.loop_info).(loop_index).Loops.blocks

type view = {
  flow : Flow.t;
  nodes : node array;
  edge_label : int -> int -> Cfg.edge_kind;
  block_node : int -> int option;
}

let view cfg t region =
  let loops = Loops.loops t.loop_info in
  (* Immediate child loops of this region. *)
  let children =
    match region.loop with
    | Some l -> l.Loops.children
    | None ->
        Array.to_list loops
        |> List.filter_map (fun l ->
               if l.Loops.parent = None then Some l.Loops.index else None)
  in
  (* Node table: own blocks first (sorted), then child loops. *)
  let own = Int_set.elements region.own_blocks in
  let nodes =
    Array.of_list
      (List.map (fun b -> Block b) own
      @ List.map (fun c -> Inner_loop c) children)
  in
  let node_count = Array.length nodes in
  let node_of_block = Hashtbl.create 16 in
  Array.iteri
    (fun idx n ->
      match n with
      | Block b -> Hashtbl.replace node_of_block b idx
      | Inner_loop c ->
          Int_set.iter
            (fun b -> Hashtbl.replace node_of_block b idx)
            loops.(c).Loops.blocks)
    nodes;
  let masked =
    match region.loop with Some l -> l.Loops.back_edges | None -> []
  in
  let succ = Array.make node_count [] in
  let labels = Hashtbl.create 32 in
  let add_edge a b kind =
    if a <> b && not (List.mem b succ.(a)) then begin
      succ.(a) <- succ.(a) @ [ b ];
      Hashtbl.replace labels (a, b) kind
    end
  in
  let in_region b =
    Int_set.mem b region.own_blocks
    || List.exists (fun c -> Int_set.mem b loops.(c).Loops.blocks) children
  in
  (* Nodes with an edge that leaves the view (loop exit or masked back
     edge): control can escape there, which postdominance must see. *)
  let extra_exits = ref [] in
  let visit_block b =
    List.iter
      (fun (s, kind) ->
        let a = Hashtbl.find node_of_block b in
        if in_region s && not (List.mem (b, s) masked) then begin
          let vb = Hashtbl.find node_of_block s in
          if a <> vb then add_edge a vb kind
        end
        else extra_exits := a :: !extra_exits)
      (Cfg.successors cfg b)
  in
  Int_set.iter visit_block region.own_blocks;
  List.iter
    (fun c -> Int_set.iter visit_block loops.(c).Loops.blocks)
    children;
  let entry =
    match Hashtbl.find_opt node_of_block region.entry_block with
    | Some v -> v
    | None -> invalid_arg "Regions.view: entry block not in region"
  in
  let to_block =
    Array.map (function Block b -> b | Inner_loop _ -> -1) nodes
  in
  let flow = Flow.make ~extra_exits:!extra_exits ~entry ~to_block succ in
  if not (Flow.is_acyclic flow) then
    invalid_arg "Regions.view: region graph is cyclic (irreducible CFG?)";
  let edge_label a b =
    match Hashtbl.find_opt labels (a, b) with
    | Some k -> k
    | None -> invalid_arg "Regions.view: unknown edge"
  in
  let block_node b = Hashtbl.find_opt node_of_block b in
  { flow; nodes; edge_label; block_node }
