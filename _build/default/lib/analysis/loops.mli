(** Natural-loop detection and loop nesting.

    A back edge is a CFG edge whose target dominates its source; the
    natural loop of a back edge [(t, h)] is [h] plus every block that
    reaches [t] without passing through [h]. Loops sharing a header are
    merged. The CFG is *reducible* when every retreating edge (w.r.t. a
    DFS) is a back edge — the paper's precondition for treating strongly
    connected regions as single-entry loops (Section 4.1). *)

type loop = {
  index : int;
  header : int;  (** CFG block id; the loop's single entry *)
  blocks : Gis_util.Ints.Int_set.t;  (** including nested loops' blocks *)
  back_edges : (int * int) list;  (** (tail, header) pairs *)
  parent : int option;  (** index of the immediately enclosing loop *)
  children : int list;  (** indices of immediately nested loops *)
  depth : int;  (** 1 for outermost loops *)
}

type t

val compute : Gis_ir.Cfg.t -> t

val loops : t -> loop array
(** Indexed by [loop.index]; topologically ordered so children follow
    parents is NOT guaranteed — use [depth] or [children]. *)

val reducible : t -> bool

val innermost_first : t -> loop list
(** Loops sorted by decreasing depth — the scheduling order of
    Section 5.1 ("innermost regions are scheduled first"). *)

val loop_of_block : t -> int -> int option
(** Index of the innermost loop containing the block. *)

val pp : t Fmt.t
