open Gis_util
open Gis_ir

type t = {
  num_nodes : int;
  entry : int;
  succ : int list array;
  pred : int list array;
  to_block : int array;
  extra_exits : int list;
}

let local_of_block t =
  let open Ints in
  let map = ref Int_map.empty in
  Array.iteri
    (fun local blk -> if blk >= 0 then map := Int_map.add blk local !map)
    t.to_block;
  !map

let derive_preds num_nodes succ =
  let pred = Array.make num_nodes [] in
  Array.iteri
    (fun a succs -> List.iter (fun b -> pred.(b) <- a :: pred.(b)) succs)
    succ;
  Array.map List.rev pred

let make ?(extra_exits = []) ~entry ~to_block succ =
  let num_nodes = Array.length succ in
  if Array.length to_block <> num_nodes then
    invalid_arg "Flow.make: to_block length mismatch";
  if entry < 0 || entry >= num_nodes then invalid_arg "Flow.make: bad entry";
  {
    num_nodes;
    entry;
    succ;
    pred = derive_preds num_nodes succ;
    to_block;
    extra_exits = List.sort_uniq Int.compare extra_exits;
  }

let exit_nodes t =
  let sinks =
    List.filter (fun v -> t.succ.(v) = []) (List.init t.num_nodes Fun.id)
  in
  List.sort_uniq Int.compare (sinks @ t.extra_exits)

let of_cfg ?blocks ?(masked_edges = []) ~entry cfg =
  let open Ints in
  let keep =
    match blocks with
    | Some s -> s
    | None ->
        List.fold_left
          (fun acc id -> Int_set.add id acc)
          Int_set.empty (Cfg.layout cfg)
  in
  if not (Int_set.mem entry keep) then
    invalid_arg "Flow.of_cfg: entry not in block subset";
  let ids = Int_set.elements keep in
  let to_block = Array.of_list ids in
  let of_block =
    List.fold_left
      (fun (m, i) blk -> (Int_map.add blk i m, i + 1))
      (Int_map.empty, 0) ids
    |> fst
  in
  let masked = List.fold_left (fun s e -> e :: s) [] masked_edges in
  let is_masked a b = List.exists (fun (x, y) -> x = a && y = b) masked in
  let extra_exits = ref [] in
  let succ =
    Array.mapi
      (fun local blk ->
        Cfg.successors cfg blk
        |> List.filter_map (fun (s, _) ->
               if Int_set.mem s keep && not (is_masked blk s) then
                 Int_map.find_opt s of_block
               else begin
                 extra_exits := local :: !extra_exits;
                 None
               end))
      to_block
  in
  let entry_local =
    match Int_map.find_opt entry of_block with
    | Some i -> i
    | None -> invalid_arg "Flow.of_cfg: entry vanished"
  in
  make ~extra_exits:!extra_exits ~entry:entry_local ~to_block succ

let reverse t ~exit_nodes =
  let n = t.num_nodes in
  let succ = Array.make (n + 1) [] in
  for v = 0 to n - 1 do
    succ.(v) <- t.pred.(v)
  done;
  succ.(n) <- exit_nodes;
  let to_block = Array.append t.to_block [| -1 |] in
  make ~entry:n ~to_block succ

let postorder t =
  let seen = Array.make t.num_nodes false in
  let order = ref [] in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go t.succ.(v);
      order := v :: !order
    end
  in
  go t.entry;
  List.rev !order

let reverse_postorder t = List.rev (postorder t)

let reachable_matrix t =
  let n = t.num_nodes in
  let m = Array.make_matrix n n false in
  for src = 0 to n - 1 do
    let rec go v =
      if not m.(src).(v) then begin
        m.(src).(v) <- true;
        List.iter go t.succ.(v)
      end
    in
    go src
  done;
  m

let is_acyclic t =
  (* White/grey/black DFS over every node. *)
  let color = Array.make t.num_nodes 0 in
  let rec go v =
    if color.(v) = 1 then false
    else if color.(v) = 2 then true
    else begin
      color.(v) <- 1;
      let ok = List.for_all go t.succ.(v) in
      color.(v) <- 2;
      ok
    end
  in
  let rec all v = v >= t.num_nodes || (go v && all (v + 1)) in
  all 0

let pp ppf t =
  Fmt.pf ppf "@[<v>entry=%d" t.entry;
  Array.iteri
    (fun v succs ->
      Fmt.pf ppf "@,%d (blk %d) -> %a" v t.to_block.(v)
        Fmt.(list ~sep:comma int)
        succs)
    t.succ;
  Fmt.pf ppf "@]"
