lib/analysis/cdg.ml: Array Cfg Dominance Flow Fmt Gis_ir Int List Queue Stdlib
