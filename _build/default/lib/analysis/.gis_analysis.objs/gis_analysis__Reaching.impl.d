lib/analysis/reaching.ml: Array Block Cfg Fix Fmt Gis_ir Gis_util Hashtbl Instr Int_set Ints List Option Reg Vec
