lib/analysis/flow.ml: Array Cfg Fmt Fun Gis_ir Gis_util Int Int_map Int_set Ints List
