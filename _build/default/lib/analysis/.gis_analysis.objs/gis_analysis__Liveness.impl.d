lib/analysis/liveness.ml: Array Block Cfg Fix Fmt Gis_ir Gis_util Instr List Reg Vec
