lib/analysis/cdg.mli: Flow Fmt Gis_ir
