lib/analysis/loops.ml: Array Cfg Dominance Flow Fmt Gis_ir Gis_util Hashtbl Int Int_map Int_set Ints List Option
