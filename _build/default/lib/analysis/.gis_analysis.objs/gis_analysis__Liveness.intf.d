lib/analysis/liveness.mli: Fmt Gis_ir
