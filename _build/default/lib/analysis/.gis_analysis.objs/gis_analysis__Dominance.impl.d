lib/analysis/dominance.ml: Array Fix Flow Fun Gis_util Int_set Ints List
