lib/analysis/regions.mli: Flow Fmt Gis_ir Gis_util Loops
