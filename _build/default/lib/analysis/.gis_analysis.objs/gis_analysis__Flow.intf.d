lib/analysis/flow.mli: Fmt Gis_ir Gis_util
