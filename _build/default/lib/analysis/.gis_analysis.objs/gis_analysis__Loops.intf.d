lib/analysis/loops.mli: Fmt Gis_ir Gis_util
