lib/analysis/dominance.mli: Flow Gis_util
