lib/analysis/reaching.mli: Fmt Gis_ir
