lib/analysis/regions.ml: Array Cfg Flow Fmt Gis_ir Gis_util Hashtbl Int_set Ints List Loops
