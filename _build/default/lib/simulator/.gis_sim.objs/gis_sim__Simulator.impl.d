lib/simulator/simulator.ml: Block Cfg Float Fmt Gis_ir Gis_machine Gis_util Hashtbl Instr Label List Machine Option Reg String
