lib/simulator/simulator.mli: Fmt Gis_ir Gis_machine
