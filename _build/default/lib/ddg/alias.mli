(** Memory disambiguation (paper Section 4.2, fourth dependence rule).

    Two memory-touching instructions must be ordered unless it is proven
    they address different locations. The proof here is syntactic, in
    the spirit of the XL compiler: two references are independent when
    they use the same base register holding the same *value* (the same
    reaching definition during a single block scan) with accesses that
    cannot overlap. Loads never conflict with loads. Calls conflict with
    every memory reference. *)

type ref_info = {
  base : Gis_ir.Reg.t;
  version : int;
      (** uid of the base register's defining instruction at address
          computation time, or [-1] when defined before the scan began
          (unknown/external); two refs disambiguate positionally only
          when versions are equal and non-conflicting offsets *)
  offset : int;
  width : int;  (** bytes accessed *)
}

type access =
  | Load_ref of ref_info
  | Store_ref of ref_info
  | Call_ref  (** conservatively touches everything *)

val access_of_instr :
  version_of:(Gis_ir.Reg.t -> int) -> Gis_ir.Instr.t -> access option
(** [None] when the instruction does not touch memory. [version_of]
    supplies the current value-version of the base register. *)

val conflict : access -> access -> bool
(** Must the second access stay ordered after the first? *)

val ranges_disjoint : ref_info -> ref_info -> bool
(** Do the two [offset, offset+width) intervals miss each other?
    (Base values are the caller's problem — used by the inter-block
    disambiguator, which proves base equality through reaching
    definitions instead of scan versions.) *)
