open Gis_ir

type ref_info = {
  base : Reg.t;
  version : int;
  offset : int;
  width : int;
}

type access =
  | Load_ref of ref_info
  | Store_ref of ref_info
  | Call_ref

let width_of_reg (r : Reg.t) =
  match r.Reg.cls with Reg.Fpr -> 8 | Reg.Gpr | Reg.Cr -> 4

let access_of_instr ~version_of i =
  match Instr.kind i with
  | Instr.Load { dst; base; offset; _ } ->
      Some
        (Load_ref
           { base; version = version_of base; offset; width = width_of_reg dst })
  | Instr.Store { src; base; offset; _ } ->
      Some
        (Store_ref
           { base; version = version_of base; offset; width = width_of_reg src })
  | Instr.Call _ -> Some Call_ref
  | Instr.Load_imm _ | Instr.Move _ | Instr.Binop _ | Instr.Fbinop _
  | Instr.Compare _ | Instr.Fcompare _ | Instr.Branch_cond _ | Instr.Jump _
  | Instr.Halt ->
      None

(* Proven-disjoint: same base value, non-overlapping [offset, offset+width)
   intervals. Unknown versions (-1) still compare equal only to -1, which
   is sound within one block scan: version -1 means "whatever the base
   held at block entry", a single well-defined value. *)
let ranges_disjoint a b =
  a.offset + a.width <= b.offset || b.offset + b.width <= a.offset

let disjoint a b =
  Reg.equal a.base b.base && a.version = b.version && ranges_disjoint a b

let conflict a b =
  match a, b with
  | Load_ref _, Load_ref _ -> false
  | Call_ref, _ | _, Call_ref -> true
  | Load_ref x, Store_ref y
  | Store_ref x, Load_ref y
  | Store_ref x, Store_ref y ->
      not (disjoint x y)
