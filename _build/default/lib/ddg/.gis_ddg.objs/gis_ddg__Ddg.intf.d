lib/ddg/ddg.mli: Fmt Gis_analysis Gis_ir Gis_machine
