lib/ddg/alias.ml: Gis_ir Instr Reg
