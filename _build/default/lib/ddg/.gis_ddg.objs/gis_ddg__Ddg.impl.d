lib/ddg/ddg.ml: Alias Array Block Cfg Flow Fmt Fun Gis_analysis Gis_ir Gis_machine Gis_util Hashtbl Instr Ints Lazy List Option Reaching Reg Regions Vec
