lib/ddg/alias.mli: Gis_ir
