open Gis_ir
module B = Builder

type compiled = {
  cfg : Cfg.t;
  vars : (string * Reg.t) list;
  arrays : (string * int * int) list;
}

let first_array_base = 1024

exception Error of string

let err fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

type env = {
  cfg : Cfg.t;
  var_regs : (string, Reg.t) Hashtbl.t;
  array_info : (string, int * int * Reg.t) Hashtbl.t;
      (** name -> (base address, length, base register) *)
  mutable current : Block.t;
}

let emit env kind =
  Gis_util.Vec.push env.current.Block.body (Cfg.make_instr env.cfg kind)

let terminate env kind next =
  env.current.Block.term <- Cfg.make_instr env.cfg kind;
  env.current <- next

let new_block env = Cfg.add_block env.cfg ~label:(Label.fresh ~prefix:"L" ())

let fresh_gpr env = Cfg.fresh_reg env.cfg Reg.Gpr
let fresh_cr env = Cfg.fresh_reg env.cfg Reg.Cr

let var_of env name =
  match Hashtbl.find_opt env.var_regs name with
  | Some r -> r
  | None ->
      if Hashtbl.mem env.array_info name then
        err "%s is an array; it needs an index" name
      else err "undeclared variable %s" name

let array_of env name =
  match Hashtbl.find_opt env.array_info name with
  | Some info -> info
  | None ->
      if Hashtbl.mem env.var_regs name then
        err "%s is a scalar, not an array" name
      else err "undeclared array %s" name

let binop_of = function
  | Ast.Add -> Instr.Add
  | Ast.Sub -> Instr.Sub
  | Ast.Mul -> Instr.Mul
  | Ast.Div -> Instr.Div
  | Ast.Rem -> Instr.Rem
  | Ast.And -> Instr.And
  | Ast.Or -> Instr.Or
  | Ast.Xor -> Instr.Xor
  | Ast.Shl -> Instr.Shl
  | Ast.Shr -> Instr.Shr

let cond_of = function
  | Ast.Lt -> Instr.Lt
  | Ast.Gt -> Instr.Gt
  | Ast.Le -> Instr.Le
  | Ast.Ge -> Instr.Ge
  | Ast.Eq -> Instr.Eq
  | Ast.Ne -> Instr.Ne

(* Compute the byte address of [a[idx]] into a fresh register. *)
let rec array_addr env name idx =
  let _, _, base_reg = array_of env name in
  match idx with
  | Ast.Int n ->
      (base_reg, 4 * n)  (* constant index folds into the load offset *)
  | _ ->
      let idx_reg = compile_expr env idx in
      let scaled = fresh_gpr env in
      emit env (B.binop Instr.Shl ~dst:scaled ~lhs:idx_reg ~rhs:(Instr.Imm 2));
      let addr = fresh_gpr env in
      emit env (B.add ~dst:addr ~lhs:base_reg ~rhs:scaled);
      (addr, 0)

and compile_expr env (e : Ast.expr) : Reg.t =
  match e with
  | Ast.Int n ->
      let dst = fresh_gpr env in
      emit env (B.li ~dst n);
      dst
  | Ast.Var v -> var_of env v
  | Ast.Index (a, idx) ->
      let base, offset = array_addr env a idx in
      let dst = fresh_gpr env in
      emit env (B.load ~dst ~base ~offset);
      dst
  | Ast.Binop (op, lhs, rhs) -> (
      let l = compile_expr env lhs in
      let dst = fresh_gpr env in
      match rhs with
      | Ast.Int n ->
          emit env (B.binop (binop_of op) ~dst ~lhs:l ~rhs:(Instr.Imm n));
          dst
      | _ ->
          let r = compile_expr env rhs in
          emit env (B.binop (binop_of op) ~dst ~lhs:l ~rhs:(Instr.Reg r));
          dst)
  | Ast.Neg inner ->
      let v = compile_expr env inner in
      let zero = fresh_gpr env in
      emit env (B.li ~dst:zero 0);
      let dst = fresh_gpr env in
      emit env (B.sub ~dst ~lhs:zero ~rhs:v);
      dst

(* Lower a condition to control flow: leaves the current block
   terminated, control proceeds at [if_true] or [if_false]. *)
let rec compile_cond env (c : Ast.cond) ~if_true ~if_false =
  match c with
  | Ast.Rel (op, lhs, rhs) -> (
      let l = compile_expr env lhs in
      let cr = fresh_cr env in
      let finish () =
        (* BT to the true target, falling through to the false one. The
           caller repoints [env.current] afterwards — every use of
           [compile_cond] continues in an explicitly created block. *)
        env.current.Block.term <-
          Cfg.make_instr env.cfg
            (B.bt ~cr ~cond:(cond_of op) ~taken:if_true ~fallthru:if_false)
      in
      match rhs with
      | Ast.Int n ->
          emit env (B.cmpi ~dst:cr ~lhs:l n);
          finish ()
      | _ ->
          let r = compile_expr env rhs in
          emit env (B.cmp ~dst:cr ~lhs:l ~rhs:r);
          finish ())
  | Ast.Not inner -> compile_cond env inner ~if_true:if_false ~if_false:if_true
  | Ast.And_also (a, b) ->
      let mid = new_block env in
      compile_cond env a ~if_true:mid.Block.label ~if_false;
      env.current <- mid;
      compile_cond env b ~if_true ~if_false
  | Ast.Or_else (a, b) ->
      let mid = new_block env in
      compile_cond env a ~if_true ~if_false:mid.Block.label;
      env.current <- mid;
      compile_cond env b ~if_true ~if_false

let rec compile_stmt env (s : Ast.stmt) =
  match s with
  | Ast.Assign (v, e) ->
      let dst = var_of env v in
      let value = compile_expr env e in
      emit env (B.mr ~dst ~src:value)
  | Ast.Store (a, idx, e) ->
      let value = compile_expr env e in
      let base, offset = array_addr env a idx in
      emit env (B.store ~src:value ~base ~offset)
  | Ast.If (c, then_, else_) ->
      let then_blk = new_block env in
      let else_blk = new_block env in
      let join = new_block env in
      compile_cond env c ~if_true:then_blk.Block.label
        ~if_false:else_blk.Block.label;
      env.current <- then_blk;
      List.iter (compile_stmt env) then_;
      terminate env (B.jmp join.Block.label) else_blk;
      List.iter (compile_stmt env) else_;
      terminate env (B.jmp join.Block.label) join
  | Ast.While (c, body) ->
      (* Loop inversion, as the XL compiler does (the paper's Figure 1
         while-loop compiles to Figure 2's bottom-tested loop): a guard
         copy of the test at the entry, the real test at the bottom, so
         the loop body contains no exit branch above its own work. *)
      let body_blk = new_block env in
      let exit_blk = new_block env in
      compile_cond env c ~if_true:body_blk.Block.label
        ~if_false:exit_blk.Block.label;
      env.current <- body_blk;
      List.iter (compile_stmt env) body;
      compile_cond env c ~if_true:body_blk.Block.label
        ~if_false:exit_blk.Block.label;
      env.current <- exit_blk
  | Ast.Do_while (body, c) ->
      let body_blk = new_block env in
      let exit_blk = new_block env in
      terminate env (B.jmp body_blk.Block.label) body_blk;
      List.iter (compile_stmt env) body;
      compile_cond env c ~if_true:body_blk.Block.label
        ~if_false:exit_blk.Block.label;
      env.current <- exit_blk
  | Ast.For (init, c, step, body) ->
      Option.iter (compile_stmt env) init;
      let body_blk = new_block env in
      let exit_blk = new_block env in
      (match c with
      | Some c ->
          compile_cond env c ~if_true:body_blk.Block.label
            ~if_false:exit_blk.Block.label
      | None -> terminate env (B.jmp body_blk.Block.label) body_blk);
      env.current <- body_blk;
      List.iter (compile_stmt env) body;
      Option.iter (compile_stmt env) step;
      (match c with
      | Some c ->
          compile_cond env c ~if_true:body_blk.Block.label
            ~if_false:exit_blk.Block.label;
          env.current <- exit_blk
      | None -> terminate env (B.jmp body_blk.Block.label) exit_blk)
  | Ast.Print e ->
      let v = compile_expr env e in
      emit env (B.call "print_int" [ v ])
  | Ast.Block body -> List.iter (compile_stmt env) body

let compile (p : Ast.program) =
  let cfg = Cfg.create () in
  let entry = Cfg.add_block cfg ~label:"L.entry" in
  Cfg.set_entry cfg entry.Block.id;
  let env =
    { cfg; var_regs = Hashtbl.create 16; array_info = Hashtbl.create 8;
      current = entry }
  in
  let next_base = ref first_array_base in
  let declare_once name =
    if Hashtbl.mem env.var_regs name || Hashtbl.mem env.array_info name then
      err "duplicate declaration of %s" name
  in
  List.iter
    (fun d ->
      match d with
      | Ast.Scalar (name, init) ->
          declare_once name;
          let r = fresh_gpr env in
          Hashtbl.replace env.var_regs name r;
          (* Uninitialised scalars emit nothing: they read as whatever
             the environment provides (the simulator input mechanism, or
             zero), exactly like the paper's r27 = n parameter. *)
          (match init with
          | Some v -> emit env (B.li ~dst:r v)
          | None -> ())
      | Ast.Array (name, len) ->
          declare_once name;
          let base = !next_base in
          next_base := base + (4 * len) + 8;
          let r = fresh_gpr env in
          emit env (B.li ~dst:r base);
          Hashtbl.replace env.array_info name (base, len, r))
    p.Ast.decls;
  List.iter (compile_stmt env) p.Ast.body;
  env.current.Block.term <- Cfg.make_instr cfg Instr.Halt;
  let cfg = Cfg.compact cfg in
  Validate.check_exn cfg;
  {
    cfg;
    vars = Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.var_regs [];
    arrays =
      Hashtbl.fold
        (fun k (base, len, _) acc -> (k, base, len) :: acc)
        env.array_info [];
  }

let compile_string src = compile (Parser.parse src)

let array_base c name =
  match List.find_opt (fun (n, _, _) -> n = name) c.arrays with
  | Some (_, base, _) -> base
  | None -> err "unknown array %s" name

let var_reg c name =
  match List.assoc_opt name c.vars with
  | Some r -> r
  | None -> err "unknown variable %s" name

let array_input c inits =
  List.concat_map
    (fun (name, values) ->
      match List.find_opt (fun (n, _, _) -> n = name) c.arrays with
      | None -> err "unknown array %s" name
      | Some (_, base, len) ->
          if List.length values > len then
            err "array %s holds %d words, got %d" name len (List.length values);
          List.mapi (fun i v -> (base + (4 * i), v)) values)
    inits
