(** Abstract syntax of Tiny-C.

    A deliberately small C subset — the constructs of the paper's
    Figure 1 program and of the SPEC-style workloads: integer scalars
    and arrays, arithmetic, short-circuit conditions, [if]/[while]/
    [do-while]/[for], and a [print] statement that becomes an observable
    call. Conditions and arithmetic expressions are separate syntactic
    classes, mirroring how the code generator lowers comparisons to
    condition registers and branches. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr

type relop = Lt | Gt | Le | Ge | Eq | Ne

type expr =
  | Int of int
  | Var of string
  | Index of string * expr  (** [a\[e\]] *)
  | Binop of binop * expr * expr
  | Neg of expr

type cond =
  | Rel of relop * expr * expr
  | Not of cond
  | And_also of cond * cond  (** short-circuit [&&] *)
  | Or_else of cond * cond  (** short-circuit [||] *)

type stmt =
  | Assign of string * expr
  | Store of string * expr * expr  (** [a\[e1\] = e2] *)
  | If of cond * stmt list * stmt list
  | While of cond * stmt list
  | Do_while of stmt list * cond
  | For of stmt option * cond option * stmt option * stmt list
  | Print of expr
  | Block of stmt list

type decl =
  | Scalar of string * int option  (** [int x;] or [int x = 7;] *)
  | Array of string * int  (** [int a\[100\];] *)

type program = {
  decls : decl list;
  body : stmt list;
}

val pp_expr : expr Fmt.t
val pp_cond : cond Fmt.t
val pp_stmt : stmt Fmt.t
val pp_program : program Fmt.t
