lib/frontend/parser.ml: Array Ast Fmt Lexer List
