lib/frontend/lexer.ml: Fmt List Option Printf String
