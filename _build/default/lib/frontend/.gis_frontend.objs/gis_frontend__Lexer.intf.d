lib/frontend/lexer.mli: Fmt
