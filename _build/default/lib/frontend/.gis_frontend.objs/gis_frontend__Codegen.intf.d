lib/frontend/codegen.mli: Ast Gis_ir
