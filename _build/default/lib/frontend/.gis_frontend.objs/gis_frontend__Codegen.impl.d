lib/frontend/codegen.ml: Ast Block Builder Cfg Fmt Gis_ir Gis_util Hashtbl Instr Label List Option Parser Reg Validate
