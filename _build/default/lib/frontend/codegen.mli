(** Lowering Tiny-C to the machine IR.

    Scalars live in symbolic general-purpose registers (scheduling runs
    before register allocation, so the supply is unbounded). Arrays are
    laid out in static memory starting at {!first_array_base}; each
    array's base address is materialised into a register in the entry
    block. Conditions become compare + conditional-branch pairs with
    short-circuit control flow, producing exactly the small-basic-block
    shape the paper targets. *)

type compiled = {
  cfg : Gis_ir.Cfg.t;
  vars : (string * Gis_ir.Reg.t) list;  (** scalar name -> register *)
  arrays : (string * int * int) list;
      (** array name, base byte address, length in 4-byte words *)
}

val first_array_base : int

exception Error of string
(** Undeclared variables, name clashes, using an array as a scalar... *)

val compile : Ast.program -> compiled
(** The result has been validated ({!Gis_ir.Validate.check_exn}) and
    contains only reachable blocks. *)

val compile_string : string -> compiled
(** Parse then compile. *)

val array_input :
  compiled -> (string * int list) list -> (int * int) list
(** Build a simulator memory image that initialises the named arrays
    with the given contents: [(address, value)] pairs. Raises {!Error}
    for unknown arrays or oversized contents. *)

val array_base : compiled -> string -> int
val var_reg : compiled -> string -> Gis_ir.Reg.t
