(** Hand-written lexer for Tiny-C (menhir/ocamllex are deliberately not
    used — the grammar is small and the container is sealed). *)

type token =
  | INT of int
  | IDENT of string
  | KW_INT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_PRINT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | BAR
  | CARET
  | SHL
  | SHR
  | LT
  | GT
  | LE
  | GE
  | EQEQ
  | NEQ
  | ANDAND
  | OROR
  | BANG
  | ASSIGN
  | SEMI
  | COMMA
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | EOF

val pp_token : token Fmt.t

exception Error of string
(** Message includes the line and column of the offending character. *)

val tokenize : string -> (token * int) list
(** Token stream with line numbers, ending with [(EOF, _)]. Supports
    [//] line comments and [/* */] block comments. *)
