open Ast

exception Error of string

type state = {
  tokens : (Lexer.token * int) array;
  mutable pos : int;
}

let peek st = fst st.tokens.(st.pos)
let line st = snd st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise
    (Error
       (Fmt.str "line %d: %s (found %a)" (line st) msg Lexer.pp_token (peek st)))

let eat st tok =
  if peek st = tok then advance st
  else fail st (Fmt.str "expected %a" Lexer.pp_token tok)

let eat_ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | _ -> fail st "expected an identifier"

let eat_int st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      n
  | Lexer.MINUS -> (
      advance st;
      match peek st with
      | Lexer.INT n ->
          advance st;
          -n
      | _ -> fail st "expected an integer literal")
  | _ -> fail st "expected an integer literal"

(* ---- expressions: precedence climbing ---- *)

let binop_of_token = function
  | Lexer.BAR -> Some (Or, 1)
  | Lexer.CARET -> Some (Xor, 2)
  | Lexer.AMP -> Some (And, 3)
  | Lexer.SHL -> Some (Shl, 4)
  | Lexer.SHR -> Some (Shr, 4)
  | Lexer.PLUS -> Some (Add, 5)
  | Lexer.MINUS -> Some (Sub, 5)
  | Lexer.STAR -> Some (Mul, 6)
  | Lexer.SLASH -> Some (Div, 6)
  | Lexer.PERCENT -> Some (Rem, 6)
  | _ -> None

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := Binop (op, !lhs, rhs)
    | Some _ | None -> continue_ := false
  done;
  !lhs

and parse_primary st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      Int n
  | Lexer.MINUS ->
      advance st;
      Neg (parse_primary st)
  | Lexer.IDENT name -> (
      advance st;
      match peek st with
      | Lexer.LBRACKET ->
          advance st;
          let idx = parse_expr st in
          eat st Lexer.RBRACKET;
          Index (name, idx)
      | _ -> Var name)
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      eat st Lexer.RPAREN;
      e
  | _ -> fail st "expected an expression"

(* ---- conditions, with backtracking over "(": it may open a nested
   condition or a parenthesized arithmetic operand ---- *)

let relop_of_token = function
  | Lexer.LT -> Some Lt
  | Lexer.GT -> Some Gt
  | Lexer.LE -> Some Le
  | Lexer.GE -> Some Ge
  | Lexer.EQEQ -> Some Eq
  | Lexer.NEQ -> Some Ne
  | _ -> None

let rec parse_cond st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek st = Lexer.OROR do
    advance st;
    let rhs = parse_and st in
    lhs := Or_else (!lhs, rhs)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_cond_atom st) in
  while peek st = Lexer.ANDAND do
    advance st;
    let rhs = parse_cond_atom st in
    lhs := And_also (!lhs, rhs)
  done;
  !lhs

and parse_cond_atom st =
  match peek st with
  | Lexer.BANG ->
      advance st;
      Not (parse_cond_atom st)
  | Lexer.LPAREN -> (
      let saved = st.pos in
      (* Try a parenthesized condition first; fall back to a relation
         whose left operand happens to start with "(". *)
      advance st;
      match
        let c = parse_cond st in
        eat st Lexer.RPAREN;
        c
      with
      | c -> c
      | exception Error _ ->
          st.pos <- saved;
          parse_relation st)
  | _ -> parse_relation st

and parse_relation st =
  let lhs = parse_expr st in
  match relop_of_token (peek st) with
  | Some op ->
      advance st;
      let rhs = parse_expr st in
      Rel (op, lhs, rhs)
  | None -> fail st "expected a comparison operator"

(* ---- statements ---- *)

let rec parse_stmt st =
  match peek st with
  | Lexer.IDENT _ ->
      let s = parse_simple st in
      eat st Lexer.SEMI;
      s
  | Lexer.KW_IF ->
      advance st;
      eat st Lexer.LPAREN;
      let c = parse_cond st in
      eat st Lexer.RPAREN;
      let then_ = parse_body st in
      let else_ =
        if peek st = Lexer.KW_ELSE then begin
          advance st;
          parse_body st
        end
        else []
      in
      If (c, then_, else_)
  | Lexer.KW_WHILE ->
      advance st;
      eat st Lexer.LPAREN;
      let c = parse_cond st in
      eat st Lexer.RPAREN;
      While (c, parse_body st)
  | Lexer.KW_DO ->
      advance st;
      let body = parse_body st in
      eat st Lexer.KW_WHILE;
      eat st Lexer.LPAREN;
      let c = parse_cond st in
      eat st Lexer.RPAREN;
      eat st Lexer.SEMI;
      Do_while (body, c)
  | Lexer.KW_FOR ->
      advance st;
      eat st Lexer.LPAREN;
      let init = if peek st = Lexer.SEMI then None else Some (parse_simple st) in
      eat st Lexer.SEMI;
      let c = if peek st = Lexer.SEMI then None else Some (parse_cond st) in
      eat st Lexer.SEMI;
      let step =
        if peek st = Lexer.RPAREN then None else Some (parse_simple st)
      in
      eat st Lexer.RPAREN;
      For (init, c, step, parse_body st)
  | Lexer.KW_PRINT ->
      advance st;
      eat st Lexer.LPAREN;
      let e = parse_expr st in
      eat st Lexer.RPAREN;
      eat st Lexer.SEMI;
      Print e
  | Lexer.LBRACE -> Block (parse_body st)
  | _ -> fail st "expected a statement"

and parse_simple st =
  let name = eat_ident st in
  match peek st with
  | Lexer.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      eat st Lexer.RBRACKET;
      eat st Lexer.ASSIGN;
      Store (name, idx, parse_expr st)
  | Lexer.ASSIGN ->
      advance st;
      Assign (name, parse_expr st)
  | _ -> fail st "expected = or [ after identifier"

and parse_body st =
  if peek st = Lexer.LBRACE then begin
    advance st;
    let stmts = ref [] in
    while peek st <> Lexer.RBRACE do
      stmts := parse_stmt st :: !stmts
    done;
    advance st;
    List.rev !stmts
  end
  else [ parse_stmt st ]

let parse_decls st =
  let decls = ref [] in
  while peek st = Lexer.KW_INT do
    advance st;
    let name = eat_ident st in
    (match peek st with
    | Lexer.LBRACKET ->
        advance st;
        let size = eat_int st in
        eat st Lexer.RBRACKET;
        if size <= 0 then fail st "array size must be positive";
        decls := Array (name, size) :: !decls
    | Lexer.ASSIGN ->
        advance st;
        let v = eat_int st in
        decls := Scalar (name, Some v) :: !decls
    | _ -> decls := Scalar (name, None) :: !decls);
    eat st Lexer.SEMI
  done;
  List.rev !decls

let parse src =
  let st = { tokens = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let decls = parse_decls st in
  let body = ref [] in
  while peek st <> Lexer.EOF do
    body := parse_stmt st :: !body
  done;
  { decls; body = List.rev !body }
