(** Recursive-descent parser for Tiny-C.

    Grammar (declarations first, then statements):
    {v
    program   := decl* stmt* EOF
    decl      := "int" IDENT ("=" "-"? INT | "[" INT "]")? ";"
    stmt      := IDENT "=" expr ";"
               | IDENT "[" expr "]" "=" expr ";"
               | "if" "(" cond ")" body ("else" body)?
               | "while" "(" cond ")" body
               | "do" body "while" "(" cond ")" ";"
               | "for" "(" simple? ";" cond? ";" simple? ")" body
               | "print" "(" expr ")" ";"
               | "{" stmt* "}"
    cond      := ("!" | "(" ... ) with && and || short-circuit operators
    expr      := C-like precedence over | ^ & << >> + - * / %
    v} *)

exception Error of string

val parse : string -> Ast.program
(** Raises {!Error} (or {!Lexer.Error}) with a line-annotated message on
    malformed input. *)
