type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type relop = Lt | Gt | Le | Ge | Eq | Ne

type expr =
  | Int of int
  | Var of string
  | Index of string * expr
  | Binop of binop * expr * expr
  | Neg of expr

type cond =
  | Rel of relop * expr * expr
  | Not of cond
  | And_also of cond * cond
  | Or_else of cond * cond

type stmt =
  | Assign of string * expr
  | Store of string * expr * expr
  | If of cond * stmt list * stmt list
  | While of cond * stmt list
  | Do_while of stmt list * cond
  | For of stmt option * cond option * stmt option * stmt list
  | Print of expr
  | Block of stmt list

type decl = Scalar of string * int option | Array of string * int

type program = {
  decls : decl list;
  body : stmt list;
}

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let relop_symbol = function
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let rec pp_expr ppf = function
  | Int n -> Fmt.int ppf n
  | Var v -> Fmt.string ppf v
  | Index (a, e) -> Fmt.pf ppf "%s[%a]" a pp_expr e
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Neg e -> Fmt.pf ppf "(-%a)" pp_expr e

let rec pp_cond ppf = function
  | Rel (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_expr a (relop_symbol op) pp_expr b
  | Not c -> Fmt.pf ppf "!(%a)" pp_cond c
  | And_also (a, b) -> Fmt.pf ppf "(%a && %a)" pp_cond a pp_cond b
  | Or_else (a, b) -> Fmt.pf ppf "(%a || %a)" pp_cond a pp_cond b

let rec pp_stmt ppf = function
  | Assign (v, e) -> Fmt.pf ppf "%s = %a;" v pp_expr e
  | Store (a, i, e) -> Fmt.pf ppf "%s[%a] = %a;" a pp_expr i pp_expr e
  | If (c, t, []) ->
      Fmt.pf ppf "@[<v 2>if (%a) {%a@]@,}" pp_cond c pp_stmts t
  | If (c, t, e) ->
      Fmt.pf ppf "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" pp_cond c
        pp_stmts t pp_stmts e
  | While (c, b) -> Fmt.pf ppf "@[<v 2>while (%a) {%a@]@,}" pp_cond c pp_stmts b
  | Do_while (b, c) ->
      Fmt.pf ppf "@[<v 2>do {%a@]@,} while (%a);" pp_stmts b pp_cond c
  | For (init, c, step, b) ->
      Fmt.pf ppf "@[<v 2>for (%a; %a; %a) {%a@]@,}"
        Fmt.(option pp_stmt_inline)
        init
        Fmt.(option pp_cond)
        c
        Fmt.(option pp_stmt_inline)
        step pp_stmts b
  | Print e -> Fmt.pf ppf "print(%a);" pp_expr e
  | Block b -> Fmt.pf ppf "@[<v 2>{%a@]@,}" pp_stmts b

and pp_stmt_inline ppf s =
  match s with
  | Assign (v, e) -> Fmt.pf ppf "%s = %a" v pp_expr e
  | Store (a, i, e) -> Fmt.pf ppf "%s[%a] = %a" a pp_expr i pp_expr e
  | If _ | While _ | Do_while _ | For _ | Print _ | Block _ -> pp_stmt ppf s

and pp_stmts ppf stmts = List.iter (fun s -> Fmt.pf ppf "@,%a" pp_stmt s) stmts

let pp_decl ppf = function
  | Scalar (v, None) -> Fmt.pf ppf "int %s;" v
  | Scalar (v, Some n) -> Fmt.pf ppf "int %s = %d;" v n
  | Array (a, n) -> Fmt.pf ppf "int %s[%d];" a n

let pp_program ppf p =
  Fmt.pf ppf "@[<v>";
  List.iter (fun d -> Fmt.pf ppf "%a@," pp_decl d) p.decls;
  List.iter (fun s -> Fmt.pf ppf "%a@," pp_stmt s) p.body;
  Fmt.pf ppf "@]"
