type token =
  | INT of int
  | IDENT of string
  | KW_INT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_PRINT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | BAR
  | CARET
  | SHL
  | SHR
  | LT
  | GT
  | LE
  | GE
  | EQEQ
  | NEQ
  | ANDAND
  | OROR
  | BANG
  | ASSIGN
  | SEMI
  | COMMA
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | EOF

let pp_token ppf t =
  Fmt.string ppf
    (match t with
    | INT n -> string_of_int n
    | IDENT s -> s
    | KW_INT -> "int"
    | KW_IF -> "if"
    | KW_ELSE -> "else"
    | KW_WHILE -> "while"
    | KW_DO -> "do"
    | KW_FOR -> "for"
    | KW_PRINT -> "print"
    | PLUS -> "+"
    | MINUS -> "-"
    | STAR -> "*"
    | SLASH -> "/"
    | PERCENT -> "%"
    | AMP -> "&"
    | BAR -> "|"
    | CARET -> "^"
    | SHL -> "<<"
    | SHR -> ">>"
    | LT -> "<"
    | GT -> ">"
    | LE -> "<="
    | GE -> ">="
    | EQEQ -> "=="
    | NEQ -> "!="
    | ANDAND -> "&&"
    | OROR -> "||"
    | BANG -> "!"
    | ASSIGN -> "="
    | SEMI -> ";"
    | COMMA -> ","
    | LPAREN -> "("
    | RPAREN -> ")"
    | LBRACE -> "{"
    | RBRACE -> "}"
    | LBRACKET -> "["
    | RBRACKET -> "]"
    | EOF -> "<eof>")

exception Error of string

let keyword = function
  | "int" -> Some KW_INT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "for" -> Some KW_FOR
  | "print" | "printf" -> Some KW_PRINT
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit t = tokens := (t, !line) :: !tokens in
  let fail i msg =
    raise (Error (Printf.sprintf "line %d (offset %d): %s" !line i msg))
  in
  let rec go i =
    if i >= n then emit EOF
    else
      match src.[i] with
      | '\n' ->
          incr line;
          go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
          go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          let rec skip j =
            if j + 1 >= n then fail j "unterminated comment"
            else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
            else begin
              if src.[j] = '\n' then incr line;
              skip (j + 1)
            end
          in
          go (skip (i + 2))
      | c when is_digit c ->
          let rec span j = if j < n && is_digit src.[j] then span (j + 1) else j in
          let j = span i in
          emit (INT (int_of_string (String.sub src i (j - i))));
          go j
      | c when is_ident_start c ->
          let rec span j = if j < n && is_ident src.[j] then span (j + 1) else j in
          let j = span i in
          let word = String.sub src i (j - i) in
          emit (Option.value ~default:(IDENT word) (keyword word));
          go j
      | '<' when i + 1 < n && src.[i + 1] = '<' -> emit SHL; go (i + 2)
      | '>' when i + 1 < n && src.[i + 1] = '>' -> emit SHR; go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE; go (i + 2)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE; go (i + 2)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> emit EQEQ; go (i + 2)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NEQ; go (i + 2)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> emit ANDAND; go (i + 2)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> emit OROR; go (i + 2)
      | '<' -> emit LT; go (i + 1)
      | '>' -> emit GT; go (i + 1)
      | '=' -> emit ASSIGN; go (i + 1)
      | '!' -> emit BANG; go (i + 1)
      | '&' -> emit AMP; go (i + 1)
      | '|' -> emit BAR; go (i + 1)
      | '^' -> emit CARET; go (i + 1)
      | '+' -> emit PLUS; go (i + 1)
      | '-' -> emit MINUS; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | '%' -> emit PERCENT; go (i + 1)
      | ';' -> emit SEMI; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | '{' -> emit LBRACE; go (i + 1)
      | '}' -> emit RBRACE; go (i + 1)
      | '[' -> emit LBRACKET; go (i + 1)
      | ']' -> emit RBRACKET; go (i + 1)
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  List.rev !tokens
