open Gis_ir
module B = Builder

type t = {
  cfg : Cfg.t;
  cond_reg : Reg.t;
  x5_uid : int;
  x3_uid : int;
  dispatch : Label.t;
}

let build () =
  let gen = Reg.Gen.create () in
  let cond_reg = Reg.Gen.fresh gen Reg.Gpr in
  let x = Reg.Gen.fresh gen Reg.Gpr in
  let cr = Reg.Gen.fresh gen Reg.Cr in
  let cfg =
    B.func ~reg_gen:gen
      [
        ( "B1",
          [ B.cmpi ~dst:cr ~lhs:cond_reg 0 ],
          B.bt ~cr ~cond:Instr.Ne ~taken:"B2" ~fallthru:"B3" );
        ("B2", [ B.li ~dst:x 5 ], B.jmp "B4");
        ("B3", [ B.li ~dst:x 3 ], B.jmp "B4");
        ("B4", [ B.call "print_int" [ x ] ], Instr.Halt);
      ]
  in
  Validate.check_exn cfg;
  let uid_of_li label =
    let blk = Cfg.block_of_label cfg label in
    Instr.uid (Gis_util.Vec.get blk.Block.body 0)
  in
  {
    cfg;
    cond_reg;
    x5_uid = uid_of_li "B2";
    x3_uid = uid_of_li "B3";
    dispatch = "B1";
  }

let input ~selector t =
  {
    Gis_sim.Simulator.no_input with
    Gis_sim.Simulator.int_regs = [ (t.cond_reg, selector) ];
  }
