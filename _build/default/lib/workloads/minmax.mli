(** The paper's running example: the minimum/maximum program of
    Figures 1–2, hand-built to match the published RS/6000 pseudo-code
    instruction for instruction (same register numbers, same block
    structure BL1–BL10, labels CL.0/CL.4/CL.6/CL.9/CL.11).

    The paper's cycle estimates for one loop iteration on the RS/6000
    model: 20–22 cycles as compiled (Figure 2), 12–13 after useful-only
    global scheduling (Figure 5), 11–12 after useful + 1-branch
    speculative scheduling (Figure 6). *)

type t = {
  cfg : Gis_ir.Cfg.t;
  a_base : int;  (** byte address of the array [a] *)
  n_reg : Gis_ir.Reg.t;  (** r27, must be set to the element count *)
  min_reg : Gis_ir.Reg.t;  (** r28 *)
  max_reg : Gis_ir.Reg.t;  (** r30 *)
  loop_header : Gis_ir.Label.t;  (** CL.0 — BL1's label *)
}

val build : unit -> t
(** A fresh copy (fresh mutable blocks) of the Figure 2 procedure,
    wrapped with an entry block that initialises [min]/[max]/[i] and an
    exit block that prints both results. *)

val input : t -> int list -> Gis_sim.Simulator.input
(** Simulator input placing the array in memory and its length in r27.
    The iteration pattern reads pairs, so use an even element count. *)

val reference_min_max : int list -> int * int
(** What the program should print (the paper's C semantics: elements are
    scanned in pairs starting at index 1). *)

val source : string
(** The Figure 1 program in Tiny-C, for the frontend pipeline. *)
