open Gis_ir
module B = Builder

type t = {
  cfg : Cfg.t;
  a_base : int;
  n_reg : Reg.t;
  min_reg : Reg.t;
  max_reg : Reg.t;
  loop_header : Label.t;
}

let a_base = 1024

let build () =
  let gen = Reg.Gen.create () in
  let r n = Reg.Gen.reserve gen Reg.Gpr n in
  let cr n = Reg.Gen.reserve gen Reg.Cr n in
  (* Figure 2's register assignment. *)
  let v = r 0 and u = r 12 in
  let n_reg = r 27 and min_r = r 28 and i_reg = r 29 in
  let max_r = r 30 and addr = r 31 in
  let cr4 = cr 4 and cr6 = cr 6 and cr7 = cr 7 in
  let cfg =
    B.func ~reg_gen:gen
      [
        (* Entry: min = a[0]; max = min; i = 1; enter the loop if i < n. *)
        ( "L.entry",
          [
            B.li ~dst:addr a_base;
            B.load ~dst:min_r ~base:addr ~offset:0;
            B.mr ~dst:max_r ~src:min_r;
            B.li ~dst:i_reg 1;
            B.cmp ~dst:cr4 ~lhs:i_reg ~rhs:n_reg;
          ],
          B.bt ~cr:cr4 ~cond:Instr.Lt ~taken:"CL.0" ~fallthru:"L.exit" );
        (* BL1: loads, u > v test. *)
        ( "CL.0",
          [
            B.load ~dst:u ~base:addr ~offset:4 (* I1 *);
            B.load_update ~dst:v ~base:addr ~offset:8 (* I2 *);
            B.cmp ~dst:cr7 ~lhs:u ~rhs:v (* I3 *);
          ],
          B.bf ~cr:cr7 ~cond:Instr.Gt ~taken:"CL.4" ~fallthru:"BL2" (* I4 *) );
        (* BL2: u > max? *)
        ( "BL2",
          [ B.cmp ~dst:cr6 ~lhs:u ~rhs:max_r (* I5 *) ],
          B.bf ~cr:cr6 ~cond:Instr.Gt ~taken:"CL.6" ~fallthru:"BL3" (* I6 *) );
        (* BL3: max = u *)
        ("BL3", [ B.mr ~dst:max_r ~src:u (* I7 *) ], B.jmp "CL.6");
        (* BL4: v < min? *)
        ( "CL.6",
          [ B.cmp ~dst:cr7 ~lhs:v ~rhs:min_r (* I8 *) ],
          B.bf ~cr:cr7 ~cond:Instr.Lt ~taken:"CL.9" ~fallthru:"BL5" (* I9 *) );
        (* BL5: min = v *)
        ("BL5", [ B.mr ~dst:min_r ~src:v (* I10 *) ], B.jmp "CL.9" (* I11 *));
        (* BL6: v > max? *)
        ( "CL.4",
          [ B.cmp ~dst:cr6 ~lhs:v ~rhs:max_r (* I12 *) ],
          B.bf ~cr:cr6 ~cond:Instr.Gt ~taken:"CL.11" ~fallthru:"BL7" (* I13 *) );
        (* BL7: max = v *)
        ("BL7", [ B.mr ~dst:max_r ~src:v (* I14 *) ], B.jmp "CL.11");
        (* BL8: u < min? *)
        ( "CL.11",
          [ B.cmp ~dst:cr7 ~lhs:u ~rhs:min_r (* I15 *) ],
          B.bf ~cr:cr7 ~cond:Instr.Lt ~taken:"CL.9" ~fallthru:"BL9" (* I16 *) );
        (* BL9: min = u *)
        ("BL9", [ B.mr ~dst:min_r ~src:u (* I17 *) ], B.jmp "CL.9");
        (* BL10: i = i + 2; loop while i < n. *)
        ( "CL.9",
          [
            B.addi ~dst:i_reg ~lhs:i_reg 2 (* I18 *);
            B.cmp ~dst:cr4 ~lhs:i_reg ~rhs:n_reg (* I19 *);
          ],
          B.bt ~cr:cr4 ~cond:Instr.Lt ~taken:"CL.0" ~fallthru:"L.exit" (* I20 *) );
        ( "L.exit",
          [ B.call "print_int" [ min_r ]; B.call "print_int" [ max_r ] ],
          Instr.Halt );
      ]
  in
  Validate.check_exn cfg;
  {
    cfg;
    a_base;
    n_reg;
    min_reg = min_r;
    max_reg = max_r;
    loop_header = "CL.0";
  }

let input t elements =
  {
    Gis_sim.Simulator.no_input with
    Gis_sim.Simulator.int_regs = [ (t.n_reg, List.length elements) ];
    memory = List.mapi (fun i v -> (t.a_base + (4 * i), v)) elements;
  }

let reference_min_max elements =
  let a = Array.of_list elements in
  let n = Array.length a in
  let get i = if i < n then a.(i) else 0 in
  let min_v = ref (get 0) and max_v = ref (get 0) in
  let i = ref 1 in
  while !i < n do
    let u = get !i and v = get (!i + 1) in
    if u > v then begin
      if u > !max_v then max_v := u;
      if v < !min_v then min_v := v
    end
    else begin
      if v > !max_v then max_v := v;
      if u < !min_v then min_v := u
    end;
    i := !i + 2
  done;
  (!min_v, !max_v)

let source =
  {|
int a[512];
int n;
int i;
int u;
int v;
int min;
int max;
min = a[0];
max = min;
i = 1;
while (i < n) {
  u = a[i];
  v = a[i + 1];
  if (u > v) {
    if (u > max) { max = u; }
    if (v < min) { min = v; }
  } else {
    if (v > max) { max = v; }
    if (u < min) { min = u; }
  }
  i = i + 2;
}
print(min);
print(max);
|}
