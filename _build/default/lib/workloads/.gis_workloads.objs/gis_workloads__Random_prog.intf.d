lib/workloads/random_prog.mli: Gis_frontend Gis_sim
