lib/workloads/random_prog.ml: Gis_frontend Gis_sim List Printf Prng
