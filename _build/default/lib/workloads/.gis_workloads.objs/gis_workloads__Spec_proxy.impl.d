lib/workloads/spec_proxy.ml: Array Codegen Gis_frontend Gis_sim List Prng Simulator
