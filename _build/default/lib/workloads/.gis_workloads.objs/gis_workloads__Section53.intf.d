lib/workloads/section53.mli: Gis_ir Gis_sim
