lib/workloads/prng.mli:
