lib/workloads/section53.ml: Block Builder Cfg Gis_ir Gis_sim Gis_util Instr Label Reg Validate
