lib/workloads/spec_proxy.mli: Gis_frontend Gis_sim
