lib/workloads/minmax.ml: Array Builder Cfg Gis_ir Gis_sim Instr Label List Reg Validate
