lib/workloads/minmax.mli: Gis_ir Gis_sim
