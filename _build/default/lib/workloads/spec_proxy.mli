(** Synthetic proxies for the paper's four SPEC C benchmarks
    (Section 6, Figures 7–8).

    The originals (Lisp interpreter, eqntott, espresso, gcc) cannot be
    compiled by a Tiny-C frontend, and their 1991 inputs are long gone.
    What Figure 8's *shape* depends on is the control structure of each
    hot loop, so each proxy reproduces that structure:

    - {b li}: interpreter-style dispatch — tiny blocks behind a cascade
      of data-dependent branches, each arm a compare plus a one-line
      update. Most of the win must come from {e speculative} motion,
      as the paper reports (2.0% useful vs 6.9% speculative).
    - {b eqntott}: a compare-and-accumulate scan in equivalent-block
      pairs — delay slots that {e useful} motion alone fills (7.1%
      useful, 7.3% speculative in the paper).
    - {b espresso}: dense bitwise kernels in large basic blocks; the
      local scheduler already saturates the machine, so global motion
      adds roughly nothing (-0.5% / 0%).
    - {b gcc}: branchy code whose arms are dominated by stores — stores
      may not be moved speculatively (Section 5.1), so global motion
      again adds roughly nothing (-1.5% / 0%).

    Each proxy carries the Tiny-C source, deterministic input data, and
    the registers/arrays needed to set up a simulation. *)

type t = {
  name : string;
  source : string;
  setup : Gis_frontend.Codegen.compiled -> Gis_sim.Simulator.input;
      (** input for one measured run (deterministic) *)
}

val li : t
val eqntott : t
val espresso : t
val gcc : t

val all : t list
(** In the paper's Figure 8 order: li, eqntott, espresso, gcc. *)

val compile : t -> Gis_frontend.Codegen.compiled
(** Compile the proxy's source with the Tiny-C frontend. *)
