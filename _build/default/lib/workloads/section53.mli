(** The speculative-scheduling counterexample of paper Section 5.3:

    {v
    if (cond) { x = 5; } else { x = 3; }  print(x);
    v}

    Each assignment alone may move into the dispatch block B1, but once
    one of them has moved, [x] becomes live on exit from B1 and the
    other motion must be rejected (and cannot be renamed, because the
    print's use of [x] is reached by both definitions). *)

type t = {
  cfg : Gis_ir.Cfg.t;
  cond_reg : Gis_ir.Reg.t;  (** nonzero selects the x = 5 branch *)
  x5_uid : int;  (** uid of the [x = 5] instruction *)
  x3_uid : int;  (** uid of the [x = 3] instruction *)
  dispatch : Gis_ir.Label.t;  (** B1 *)
}

val build : unit -> t

val input : selector:int -> t -> Gis_sim.Simulator.input
