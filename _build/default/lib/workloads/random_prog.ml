open Gis_frontend.Ast

type ctx = {
  rng : Prng.t;
  scalars : string list;  (** assignable scalars *)
  arrays : string list;
  mutable counters : int;  (** loop counters allocated so far *)
}

let rec gen_expr ctx depth =
  if depth = 0 then
    match Prng.int ctx.rng 3 with
    | 0 -> Int (Prng.int ctx.rng 64 - 16)
    | 1 -> Var (Prng.pick ctx.rng ctx.scalars)
    | _ -> (
        match ctx.arrays with
        | [] -> Var (Prng.pick ctx.rng ctx.scalars)
        | arrays -> Index (Prng.pick ctx.rng arrays, Int (Prng.int ctx.rng 16)))
  else
    match Prng.int ctx.rng 6 with
    | 0 ->
        let op = Prng.pick ctx.rng [ Add; Sub; Mul; And; Or; Xor ] in
        Binop (op, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 1 ->
        (* Division and remainder only by a non-zero literal. *)
        let op = Prng.pick ctx.rng [ Div; Rem ] in
        Binop (op, gen_expr ctx (depth - 1), Int (1 + Prng.int ctx.rng 9))
    | 2 ->
        let op = Prng.pick ctx.rng [ Shl; Shr ] in
        Binop (op, gen_expr ctx (depth - 1), Int (Prng.int ctx.rng 5))
    | 3 -> Neg (gen_expr ctx (depth - 1))
    | 4 -> (
        match ctx.arrays with
        | [] -> gen_expr ctx 0
        | arrays -> Index (Prng.pick ctx.rng arrays, gen_expr ctx (depth - 1)))
    | _ -> gen_expr ctx 0

let rec gen_cond ctx depth =
  if depth = 0 || Prng.int ctx.rng 3 = 0 then
    let op = Prng.pick ctx.rng [ Lt; Gt; Le; Ge; Eq; Ne ] in
    Rel (op, gen_expr ctx 1, gen_expr ctx 1)
  else
    match Prng.int ctx.rng 3 with
    | 0 -> Not (gen_cond ctx (depth - 1))
    | 1 -> And_also (gen_cond ctx (depth - 1), gen_cond ctx (depth - 1))
    | _ -> Or_else (gen_cond ctx (depth - 1), gen_cond ctx (depth - 1))

(* Array stores use a masked index expression so that runs stay inside
   the address space deterministically even for wild indices. *)
let store_index ctx = Binop (And, gen_expr ctx 1, Int 15)

let max_counters = 12

let rec gen_stmt ctx depth =
  let choices =
    if depth = 0 then 3 else if ctx.counters >= max_counters then 4 else 7
  in
  match Prng.int ctx.rng choices with
  | 0 -> Assign (Prng.pick ctx.rng ctx.scalars, gen_expr ctx 2)
  | 1 -> (
      match ctx.arrays with
      | [] -> Assign (Prng.pick ctx.rng ctx.scalars, gen_expr ctx 2)
      | arrays ->
          Store (Prng.pick ctx.rng arrays, store_index ctx, gen_expr ctx 2))
  | 2 -> Print (gen_expr ctx 2)
  | 3 ->
      If
        ( gen_cond ctx 2,
          gen_stmts ctx (depth - 1) (1 + Prng.int ctx.rng 3),
          if Prng.bool ctx.rng then gen_stmts ctx (depth - 1) (1 + Prng.int ctx.rng 2)
          else [] )
  | 4 | 5 ->
      (* A bounded loop driven by a private counter. *)
      let c = Printf.sprintf "c%d" ctx.counters in
      ctx.counters <- ctx.counters + 1;
      let bound = 2 + Prng.int ctx.rng 6 in
      let body =
        gen_stmts ctx (depth - 1) (1 + Prng.int ctx.rng 3)
        @ [ Assign (c, Binop (Add, Var c, Int 1)) ]
      in
      Block [ Assign (c, Int 0); While (Rel (Lt, Var c, Int bound), body) ]
  | _ ->
      let c = Printf.sprintf "c%d" ctx.counters in
      ctx.counters <- ctx.counters + 1;
      let bound = 1 + Prng.int ctx.rng 4 in
      Block
        [
          For
            ( Some (Assign (c, Int 0)),
              Some (Rel (Lt, Var c, Int bound)),
              Some (Assign (c, Binop (Add, Var c, Int 1))),
              gen_stmts ctx (depth - 1) (1 + Prng.int ctx.rng 3) );
        ]

and gen_stmts ctx depth count = List.init count (fun _ -> gen_stmt ctx depth)

let generate ~seed =
  let rng = Prng.create ~seed in
  let n_scalars = 3 + Prng.int rng 4 in
  let scalars = List.init n_scalars (Printf.sprintf "x%d") in
  let n_arrays = 1 + Prng.int rng 2 in
  let arrays = List.init n_arrays (Printf.sprintf "a%d") in
  let ctx = { rng; scalars; arrays; counters = 0 } in
  let body = gen_stmts ctx 2 (3 + Prng.int rng 5) in
  let decls =
    List.map (fun s -> Scalar (s, Some (Prng.int rng 32))) scalars
    @ List.map (fun a -> Array (a, 16)) arrays
    @ List.init max_counters (fun i -> Scalar (Printf.sprintf "c%d" i, Some 0))
  in
  let epilogue = List.map (fun s -> Print (Var s)) scalars in
  { decls; body = body @ epilogue }

let generate_compiled ~seed =
  let rec try_seed s attempts =
    if attempts = 0 then failwith "Random_prog: generation kept failing"
    else
      let prog = generate ~seed:s in
      match Gis_frontend.Codegen.compile prog with
      | compiled -> compiled
      | exception Gis_frontend.Codegen.Error _ -> try_seed (s + 7919) (attempts - 1)
  in
  try_seed seed 10

let random_input ~seed compiled =
  let rng = Prng.create ~seed:(seed + 101) in
  {
    Gis_sim.Simulator.no_input with
    Gis_sim.Simulator.memory =
      List.concat_map
        (fun (_, base, len) ->
          List.init len (fun i -> (base + (4 * i), Prng.int rng 256 - 64)))
        compiled.Gis_frontend.Codegen.arrays;
  }
