(** Random structured Tiny-C programs for differential testing.

    Generated programs always terminate (every loop is driven by a
    dedicated counter the body never writes), never divide by a variable
    (division and remainder only get non-zero literal divisors), and end
    by printing every scalar — so two runs are behaviourally equal iff
    their observable traces match. Generation is deterministic in the
    seed. *)

val generate : seed:int -> Gis_frontend.Ast.program

val generate_compiled : seed:int -> Gis_frontend.Codegen.compiled
(** Generate and compile; retries with derived seeds in the unlikely
    event the program dies of a codegen restriction. *)

val random_input :
  seed:int -> Gis_frontend.Codegen.compiled -> Gis_sim.Simulator.input
(** Random contents for every declared array. *)
