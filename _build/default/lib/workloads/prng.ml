(* SplitMix64-style mixing, truncated to OCaml's int. *)
type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int (seed * 2654435761 + 1) }

let bits t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 0x3FFFFFFFL)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  bits t mod bound

let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let bool t = bits t land 1 = 1
