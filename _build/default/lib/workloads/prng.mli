(** Deterministic pseudo-random numbers for workload inputs and random
    program generation. [Stdlib.Random] is avoided so that test inputs
    and generated programs are stable across OCaml versions. *)

type t

val create : seed:int -> t

val bits : t -> int
(** 30 pseudo-random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform-ish in [\[0, bound)]; [bound > 0]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val bool : t -> bool
