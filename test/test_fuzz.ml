(* The differential fuzzer, tested from both ends:

   - the generator's retry loop is deterministic and advances by the
     documented stride when a candidate fails to compile;
   - every *accepted* shrink step is a valid Tiny-C program that still
     satisfies the predicate, and shrinking is a pure function of
     (program, predicate);
   - an injected compiler bug (dropped memory DDG edges) and an
     injected simulator bug (wide-machine add corruption) are each
     caught by a campaign within a small seed window and shrunk to a
     compact reproducer — the end-to-end proof that the oracle has
     teeth;
   - a small honest window produces no findings. *)

open Gis_ir
open Gis_frontend
open Gis_workloads
open Gis_fuzz

(* ------------------------------------------------------------------ *)
(* Generator retry loop                                                *)
(* ------------------------------------------------------------------ *)

let pp_prog p = Fmt.str "%a" Ast.pp_program p

let test_retry_stride () =
  let params = Random_prog.default in
  let seed = 42 in
  let calls = ref 0 in
  (* Reject the first candidate; accept (as-is) every later one. *)
  let compile prog =
    incr calls;
    if !calls = 1 then Error "injected failure" else Ok prog
  in
  let got = Random_prog.generate_compiled_via ~compile params ~seed in
  let expected =
    Random_prog.generate_with params
      ~seed:(seed + Random_prog.retry_stride)
  in
  Alcotest.(check int) "exactly two attempts" 2 !calls;
  Alcotest.(check string) "retry advances by the documented stride"
    (pp_prog expected) (pp_prog got)

let test_retry_deterministic () =
  let params = Random_prog.hardened in
  let gen () =
    let calls = ref 0 in
    let compile prog =
      incr calls;
      if !calls <= 2 then Error "injected" else Ok prog
    in
    pp_prog (Random_prog.generate_compiled_via ~compile params ~seed:7)
  in
  Alcotest.(check string) "same program on re-run" (gen ()) (gen ())

let test_retry_gives_up () =
  Alcotest.(check bool) "persistent failure raises" true
    (match
       Random_prog.generate_compiled_via
         ~compile:(fun _ -> Error "never")
         Random_prog.default ~seed:1
     with
    | _ -> false
    | exception Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Shrinker invariants                                                 *)
(* ------------------------------------------------------------------ *)

let compile_opt prog =
  Label.reset_fresh_counter ();
  match Codegen.compile prog with
  | compiled -> Some compiled
  | exception Codegen.Error _ -> None

let compiles prog = Option.is_some (compile_opt prog)

(* A hardened-grammar program that compiles, following the same stride
   the retry loop uses. *)
let rec compiling_prog ~attempts seed =
  if attempts = 0 then None
  else
    let prog = Random_prog.generate_with Random_prog.hardened ~seed in
    if compiles prog then Some prog
    else compiling_prog ~attempts:(attempts - 1) (seed + Random_prog.retry_stride)

let prop_shrink_steps_valid seed =
  match compiling_prog ~attempts:5 seed with
  | None -> true (* astronomically unlikely; not this property's concern *)
  | Some prog ->
      let valid = ref true in
      let last_size = ref (Shrink.size prog) in
      let check p =
        (match compile_opt p with
        | Some compiled -> (
            try Validate.check_exn compiled.Codegen.cfg
            with _ -> valid := false)
        | None -> valid := false);
        if Shrink.size p > !last_size then valid := false;
        last_size := Shrink.size p
      in
      let shrunk = Shrink.shrink ~fuel:400 ~on_step:check ~pred:compiles prog in
      !valid && compiles shrunk

let prop_shrink_deterministic seed =
  match compiling_prog ~attempts:5 seed with
  | None -> true
  | Some prog ->
      let run () = pp_prog (Shrink.shrink ~fuel:400 ~pred:compiles prog) in
      String.equal (run ()) (run ())

let qtest name count prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count QCheck.(int_range 1 1_000_000) prop)

(* ------------------------------------------------------------------ *)
(* Injected mutants                                                    *)
(* ------------------------------------------------------------------ *)

let with_flag flag f =
  flag := true;
  Fun.protect ~finally:(fun () -> flag := false) f

(* A campaign over a small seed window must catch the mutant and shrink
   the reproducer well under the corpus budget. Detection aborts at the
   first failing cell and shrinking is fuel-bounded, so this stays
   test-suite fast. *)
let assert_mutant_caught ~what ~seeds flag =
  with_flag flag (fun () ->
      let report =
        Fuzz.campaign ~max_findings:1 ~shrink_fuel:600 ~start:0 ~seeds ()
      in
      match report.Fuzz.findings with
      | [] ->
          Alcotest.fail
            (Fmt.str "%s: not caught within %d seeds" what seeds)
      | f :: _ ->
          Alcotest.(check bool)
            (Fmt.str "%s: shrunk to <= 25 statements (got %d)" what
               (Shrink.stmt_count f.Fuzz.shrunk))
            true
            (Shrink.stmt_count f.Fuzz.shrunk <= 25);
          Alcotest.(check bool)
            (Fmt.str "%s: shrunk reproducer compiles" what)
            true (compiles f.Fuzz.shrunk);
          (* The predicate's termination guard: shrinking a loop
             condition must not walk off to an infinite loop. *)
          let compiled = Option.get (compile_opt f.Fuzz.shrunk) in
          let input =
            Random_prog.random_input ~seed:f.Fuzz.seed compiled
          in
          let outcome =
            Gis_sim.Simulator.run Fuzz.reference_machine
              compiled.Codegen.cfg input
          in
          Alcotest.(check bool)
            (Fmt.str "%s: shrunk reproducer halts" what)
            true
            (outcome.Gis_sim.Simulator.stop = Gis_sim.Simulator.Halted))

let test_catches_dropped_mem_edge () =
  assert_mutant_caught ~what:"dropped mem edges" ~seeds:5
    Gis_ddg.Ddg.drop_mem_edges_for_testing

let test_catches_corrupt_wide_add () =
  assert_mutant_caught ~what:"wide-add corruption" ~seeds:5
    Gis_sim.Simulator.corrupt_wide_add_for_testing

(* The scheduler-side address analysis over-claims deltas it cannot
   prove; the checker's independent re-implementation (and, failing
   that, the trace comparison) must catch the resulting illegal
   reorders. *)
let test_catches_symaddr_overclaim () =
  assert_mutant_caught ~what:"symaddr over-claim" ~seeds:5
    Gis_analysis.Symaddr.overclaim_for_testing

(* ------------------------------------------------------------------ *)
(* Honest compiler                                                     *)
(* ------------------------------------------------------------------ *)

let test_honest_window_clean () =
  let report = Fuzz.campaign ~start:0 ~seeds:2 () in
  Alcotest.(check int) "cells per seed" (List.length Fuzz.cells)
    report.Fuzz.cells_per_seed;
  Alcotest.(check int) "no findings" 0 (List.length report.Fuzz.findings)

let () =
  Alcotest.run "gis_fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "retry stride" `Quick test_retry_stride;
          Alcotest.test_case "retry deterministic" `Quick
            test_retry_deterministic;
          Alcotest.test_case "retry gives up" `Quick test_retry_gives_up;
        ] );
      ( "shrinker",
        [
          qtest "accepted steps stay valid and monotone" 15
            prop_shrink_steps_valid;
          qtest "shrinking is deterministic" 10 prop_shrink_deterministic;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "catches dropped mem edges" `Quick
            test_catches_dropped_mem_edge;
          Alcotest.test_case "catches wide-add corruption" `Quick
            test_catches_corrupt_wide_add;
          Alcotest.test_case "catches symaddr over-claim" `Quick
            test_catches_symaddr_overclaim;
          Alcotest.test_case "honest window is clean" `Quick
            test_honest_window_clean;
        ] );
    ]
