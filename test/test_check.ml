(* Static schedule-legality verification: the checker certifies every
   pipeline output over the workloads at every level (no simulator
   involved), rejects hand-mutated schedules with precise diagnostics,
   the tightened IR validator catches branches into detached blocks,
   the exit-code table is pinned, and the linter is clean over the
   example programs (golden file). *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_frontend
open Gis_workloads
module B = Builder
module C = Gis_check.Check
module D = Gis_check.Diagnostic
module L = Gis_check.Lint

let machine = Machine.rs6k

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
  in
  m = 0 || go 0

let workloads =
  ("minmax", Minmax.source)
  :: List.map
       (fun (p : Spec_proxy.t) -> (p.Spec_proxy.name, p.Spec_proxy.source))
       Spec_proxy.all

let levels =
  [
    ("local", Config.base);
    ("useful", Config.useful_only);
    ("speculative", Config.speculative);
  ]

(* Run the pipeline with the verification hook installed; return every
   diagnostic the checker produced (stage transitions + final lint). *)
let check_run ?regs ?(regalloc = false) config src =
  Label.reset_fresh_counter ();
  let compiled = Codegen.compile_string src in
  let cfg = compiled.Codegen.cfg in
  let prov = Gis_obs.Provenance.create () in
  let collector =
    C.collector ~prov
      ~max_speculation_degree:config.Config.max_speculation_degree ()
  in
  let config =
    {
      config with
      Config.regalloc;
      regs;
      prov = Some prov;
      check = Some (C.hook collector);
    }
  in
  let stats = Pipeline.run machine config cfg in
  let staged_slots =
    match stats.Pipeline.regalloc with
    | Some alloc -> Gis_regalloc.Regalloc.staged_slots alloc
    | None -> []
  in
  let final = L.run ~prov ~staged_slots ~stage:"final" cfg in
  (List.concat_map snd (C.diagnostics collector) @ final, C.stats collector)

let pp_diags ds = Fmt.str "%a" Fmt.(list ~sep:cut D.pp) ds

let test_accepts_workloads () =
  List.iter
    (fun (name, src) ->
      List.iter
        (fun (lname, config) ->
          let diags, stats = check_run config src in
          Alcotest.(check int)
            (Fmt.str "%s/%s errors: %s" name lname (pp_diags diags))
            0
            (List.length (C.errors diags));
          if config.Config.level <> Config.Local then
            Alcotest.(check bool)
              (Fmt.str "%s/%s checked some dependences" name lname)
              true (stats.C.deps_checked > 0))
        levels)
    workloads

let test_accepts_regalloc () =
  List.iter
    (fun (name, src) ->
      let diags, stats = check_run ~regalloc:true ~regs:6 Config.speculative src in
      Alcotest.(check int)
        (Fmt.str "%s regalloc/6 errors: %s" name (pp_diags diags))
        0
        (List.length (C.errors diags));
      Alcotest.(check int)
        (Fmt.str "%s regalloc stage ran" name)
        6 stats.C.stages)
    workloads

(* ---- mutation rejection ---- *)

let has_rule rule ds = List.exists (fun d -> String.equal d.D.rule rule) ds

let fresh_gprs n =
  let g = Reg.Gen.create () in
  (g, List.init n (fun _ -> Reg.Gen.fresh g Reg.Gpr))

(* Swapping two flow-dependent instructions inside a block must be
   caught by the local-stage check. *)
let test_rejects_swap () =
  let g, regs = fresh_gprs 3 in
  let r1, r2 = (List.nth regs 0, List.nth regs 1) in
  let pre =
    B.func ~reg_gen:g
      [ ("L.entry", [ B.li ~dst:r1 7; B.addi ~dst:r2 ~lhs:r1 1 ], B.halt) ]
  in
  let post = Cfg.deep_copy pre in
  let b = Cfg.block_of_label post "L.entry" in
  let i0 = Gis_util.Vec.get b.Block.body 0 in
  let i1 = Gis_util.Vec.get b.Block.body 1 in
  Gis_util.Vec.set b.Block.body 0 i1;
  Gis_util.Vec.set b.Block.body 1 i0;
  let ds = C.check_stage ~stage:"local" ~pre ~post () in
  Alcotest.(check bool)
    (Fmt.str "flow-dep swap rejected: %s" (pp_diags ds))
    true
    (has_rule "dependence.violated" (C.errors ds))

(* Hoisting a store above its guarding branch is the paper's canonical
   illegal speculation; the checker must name the store's uid. *)
let test_rejects_store_speculation () =
  let g, regs = fresh_gprs 3 in
  let r1, rb, c0 =
    (List.nth regs 0, List.nth regs 1, Reg.Gen.fresh g Reg.Cr)
  in
  let pre =
    B.func ~reg_gen:g
      [
        ( "L.entry",
          [ B.li ~dst:r1 7; B.li ~dst:rb 100; B.cmpi ~dst:c0 ~lhs:r1 0 ],
          B.bt ~cr:c0 ~cond:Instr.Gt ~taken:"L.then" ~fallthru:"L.join" );
        ("L.then", [ B.store ~src:r1 ~base:rb ~offset:0 ], B.jmp "L.join");
        ("L.join", [], B.halt);
      ]
  in
  let post = Cfg.deep_copy pre in
  let bthen = Cfg.block_of_label post "L.then" in
  let store = List.hd (Gis_util.Vec.to_list bthen.Block.body) in
  ignore (Block.remove_by_uid bthen ~uid:(Instr.uid store));
  let bentry = Cfg.block_of_label post "L.entry" in
  Gis_util.Vec.push bentry.Block.body store;
  let ds = C.check_stage ~stage:"global-pass1" ~pre ~post () in
  let errs = C.errors ds in
  Alcotest.(check bool)
    (Fmt.str "store speculation rejected: %s" (pp_diags ds))
    true
    (has_rule "speculation.store" errs);
  Alcotest.(check bool) "diagnostic names the store's uid" true
    (List.exists
       (fun d -> d.D.uid = Some (Instr.uid store))
       errs)

(* Hoist the first body instruction of [from] onto the end of [to_]'s
   body — the physical shape of a speculative upward motion. *)
let hoist post ~from ~to_ =
  let bsrc = Cfg.block_of_label post from in
  let inst = List.hd (Gis_util.Vec.to_list bsrc.Block.body) in
  ignore (Block.remove_by_uid bsrc ~uid:(Instr.uid inst));
  let bdst = Cfg.block_of_label post to_ in
  Gis_util.Vec.push bdst.Block.body inst;
  inst

(* A speculated definition whose value survives to the target block's
   exit while the register is live into the off-path successor is the
   classic illegal clobber; the checker must flag it. *)
let test_rejects_off_path_clobber () =
  let g, regs = fresh_gprs 4 in
  let r1, r9, r3, c0 =
    ( List.nth regs 0,
      List.nth regs 1,
      List.nth regs 2,
      Reg.Gen.fresh g Reg.Cr )
  in
  let pre =
    B.func ~reg_gen:g
      [
        ( "L.entry",
          [ B.li ~dst:r1 7; B.li ~dst:r9 1; B.cmpi ~dst:c0 ~lhs:r9 0 ],
          B.bt ~cr:c0 ~cond:Instr.Gt ~taken:"L.then" ~fallthru:"L.else" );
        ("L.then", [ B.li ~dst:r1 0 ], B.jmp "L.join");
        ("L.else", [ B.addi ~dst:r3 ~lhs:r1 1 ], B.jmp "L.join");
        ("L.join", [], B.halt);
      ]
  in
  let post = Cfg.deep_copy pre in
  let moved = hoist post ~from:"L.then" ~to_:"L.entry" in
  let ds = C.check_stage ~stage:"global-pass1" ~pre ~post () in
  let errs = C.errors ds in
  Alcotest.(check bool)
    (Fmt.str "off-path clobber rejected: %s" (pp_diags ds))
    true
    (has_rule "speculation.live-off-path" errs);
  Alcotest.(check bool) "diagnostic names the moved uid" true
    (List.exists (fun d -> d.D.uid = Some (Instr.uid moved)) errs)

(* The counterpart from fuzz seed 1741: when a later hoisted definition
   of the same register kills the speculated one inside the target
   block, the dead value never escapes and the motion is legal — the
   killer itself came from a block every off-path successor reaches, so
   neither motion may be flagged. *)
let test_accepts_killed_off_path_def () =
  let g, regs = fresh_gprs 4 in
  let r1, r9, r3, c0 =
    ( List.nth regs 0,
      List.nth regs 1,
      List.nth regs 2,
      Reg.Gen.fresh g Reg.Cr )
  in
  let pre =
    B.func ~reg_gen:g
      [
        ( "L.entry",
          [ B.li ~dst:r9 1; B.cmpi ~dst:c0 ~lhs:r9 0 ],
          B.bt ~cr:c0 ~cond:Instr.Gt ~taken:"L.then" ~fallthru:"L.skip" );
        ("L.then", [ B.li ~dst:r1 0 ], B.jmp "L.tail");
        ("L.skip", [], B.jmp "L.tail");
        ("L.tail", [ B.li ~dst:r1 5; B.addi ~dst:r3 ~lhs:r1 1 ], B.halt);
      ]
  in
  let post = Cfg.deep_copy pre in
  let speculated = hoist post ~from:"L.then" ~to_:"L.entry" in
  let killer = hoist post ~from:"L.tail" ~to_:"L.entry" in
  Alcotest.(check bool) "killer defines the same register" true
    (List.exists
       (fun r -> List.exists (Reg.equal r) (Instr.defs killer))
       (Instr.defs speculated));
  let ds = C.check_stage ~stage:"global-pass1" ~pre ~post () in
  Alcotest.(check bool)
    (Fmt.str "killed speculative def accepted: %s" (pp_diags ds))
    true
    (not (has_rule "speculation.live-off-path" (C.errors ds)))

(* Deleting an instruction must be caught as a conservation failure. *)
let test_rejects_deletion () =
  let g, regs = fresh_gprs 2 in
  let r1, r2 = (List.nth regs 0, List.nth regs 1) in
  let pre =
    B.func ~reg_gen:g
      [ ("L.entry", [ B.li ~dst:r1 7; B.li ~dst:r2 8 ], B.halt) ]
  in
  let post = Cfg.deep_copy pre in
  let b = Cfg.block_of_label post "L.entry" in
  let victim = Gis_util.Vec.get b.Block.body 1 in
  ignore (Block.remove_by_uid b ~uid:(Instr.uid victim));
  let ds = C.check_stage ~stage:"global-pass2" ~pre ~post () in
  Alcotest.(check bool)
    (Fmt.str "deletion rejected: %s" (pp_diags ds))
    true
    (has_rule "conservation.removed" (C.errors ds))

(* ---- validator: branch into a detached block ---- *)

let test_validator_detached_block () =
  let g, regs = fresh_gprs 1 in
  let r1 = List.hd regs in
  let cfg =
    B.func ~reg_gen:g
      [
        ("L.entry", [ B.li ~dst:r1 1 ], B.jmp "L.dead");
        ("L.dead", [], B.halt);
      ]
  in
  (match Validate.check cfg with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "well-formed graph rejected: %a"
        Fmt.(list ~sep:cut string)
        es);
  (match Cfg.find_label cfg "L.dead" with
  | Some id -> Cfg.remove_block cfg id
  | None -> Alcotest.fail "L.dead not found");
  match Validate.check cfg with
  | Ok () -> Alcotest.fail "branch into a detached block accepted"
  | Error es ->
      Alcotest.(check bool)
        (Fmt.str "error mentions detachment: %a"
           Fmt.(list ~sep:cut string)
           es)
        true
        (List.exists (fun m -> contains m "detached") es)

(* The linter flags the same hazard on a full CFG. *)
let test_lint_detached_target () =
  let g, regs = fresh_gprs 1 in
  let r1 = List.hd regs in
  let cfg =
    B.func ~reg_gen:g
      [
        ("L.entry", [ B.li ~dst:r1 1 ], B.jmp "L.dead");
        ("L.dead", [], B.halt);
      ]
  in
  (match Cfg.find_label cfg "L.dead" with
  | Some id -> Cfg.remove_block cfg id
  | None -> Alcotest.fail "L.dead not found");
  let ds = L.run cfg in
  Alcotest.(check bool)
    (Fmt.str "lint flags detached target: %s" (pp_diags ds))
    true
    (has_rule "cfg.malformed-target" (C.errors ds))

(* ---- memory disambiguation: the checker is independent ---- *)

(* The fault-injection hook makes the scheduler-side analysis fabricate
   base deltas it cannot prove. The checker's own re-implementation
   ([Addrcheck]) must not be fooled: it still reconstructs the Mem
   dependence from the stage's input, and a schedule that exploited the
   over-claim is rejected. *)
let test_checker_independent_of_overclaim () =
  let g = Reg.Gen.create () in
  let b1 = Reg.Gen.fresh g Reg.Gpr in
  let b2 = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let pre =
    B.func ~reg_gen:g
      [
        ( "L.entry",
          [
            B.li ~dst:x 7;
            B.store ~src:x ~base:b1 ~offset:0;
            B.store ~src:x ~base:b2 ~offset:8;
          ],
          B.halt );
      ]
  in
  let body = (Cfg.block_of_label pre "L.entry").Block.body in
  let s1 = Instr.uid (Gis_util.Vec.get body 1) in
  let s2 = Instr.uid (Gis_util.Vec.get body 2) in
  Gis_analysis.Symaddr.overclaim_for_testing := true;
  Fun.protect
    ~finally:(fun () -> Gis_analysis.Symaddr.overclaim_for_testing := false)
    (fun () ->
      (* Scheduler side swallows the over-claim and drops the edge... *)
      let sym = Gis_analysis.Symaddr.compute pre in
      let ddg =
        Gis_ddg.Ddg.build_single_block ~sym machine
          (Cfg.block_of_label pre "L.entry")
      in
      Alcotest.(check int) "scheduler side pruned the false pair" 1
        (Gis_ddg.Ddg.mem_pruned ddg);
      (* ...the checker still requires the order... *)
      let deps = Gis_check.Deps.reconstruct (Gis_check.Deps.of_cfg pre) in
      Alcotest.(check bool) "checker reconstructs the Mem dependence" true
        (List.exists
           (fun (d : Gis_check.Deps.dep) ->
             d.Gis_check.Deps.d_src = s1
             && d.Gis_check.Deps.d_dst = s2
             && d.Gis_check.Deps.d_kind = Gis_check.Deps.Mem)
           deps);
      (* ...and a schedule built on it is rejected. *)
      let post = Cfg.deep_copy pre in
      let b = Cfg.block_of_label post "L.entry" in
      let i1 = Gis_util.Vec.get b.Block.body 1 in
      let i2 = Gis_util.Vec.get b.Block.body 2 in
      Gis_util.Vec.set b.Block.body 1 i2;
      Gis_util.Vec.set b.Block.body 2 i1;
      let ds = C.check_stage ~stage:"local" ~pre ~post () in
      Alcotest.(check bool)
        (Fmt.str "over-claimed reorder rejected: %s" (pp_diags ds))
        true
        (has_rule "dependence.violated" (C.errors ds)))

(* Legitimately pruned reorders pass: the checker re-proves the
   disjointness on its own. *)
let test_checker_reproves_pruned_reorder () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let b2 = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let pre =
    B.func ~reg_gen:g
      [
        ( "L.entry",
          [
            B.li ~dst:x 7;
            B.addi ~dst:b2 ~lhs:base 8;
            B.store ~src:x ~base ~offset:0;
            B.store ~src:x ~base:b2 ~offset:0;
          ],
          B.halt );
      ]
  in
  (* Swap the stores: different base registers, so the syntactic rule
     alone must keep them ordered — only the affine proof (b2 = base+8,
     bytes [0,4) vs [8,12)) makes the reorder legal, and the checker
     must find that proof on its own. *)
  let post = Cfg.deep_copy pre in
  let b = Cfg.block_of_label post "L.entry" in
  let st0 = Gis_util.Vec.get b.Block.body 2 in
  let st8 = Gis_util.Vec.get b.Block.body 3 in
  Gis_util.Vec.set b.Block.body 2 st8;
  Gis_util.Vec.set b.Block.body 3 st0;
  let ds = C.check_stage ~stage:"local" ~pre ~post () in
  Alcotest.(check int)
    (Fmt.str "disjoint-store reorder accepted: %s" (pp_diags ds))
    0
    (List.length (C.errors ds))

(* ---- lint.dead-store ---- *)

let test_dead_store_lint () =
  let run_lint blocks =
    let ds = L.run (B.func blocks) in
    (has_rule "lint.dead-store" ds, ds)
  in
  let mk body =
    let g = Reg.Gen.create () in
    let base = Reg.Gen.fresh g Reg.Gpr in
    let b2 = Reg.Gen.fresh g Reg.Gpr in
    let x = Reg.Gen.fresh g Reg.Gpr in
    let y = Reg.Gen.fresh g Reg.Gpr in
    let f = Reg.Gen.fresh g Reg.Fpr in
    [ ("L.entry", body ~base ~b2 ~x ~y ~f, B.halt) ]
  in
  let fired, ds =
    run_lint
      (mk (fun ~base ~b2:_ ~x ~y:_ ~f:_ ->
           [
             B.li ~dst:x 1;
             B.store ~src:x ~base ~offset:0;
             B.store ~src:x ~base ~offset:0;
           ]))
  in
  Alcotest.(check bool)
    (Fmt.str "overwritten store flagged: %s" (pp_diags ds))
    true fired;
  (* The killer must cover the victim through a provable base shift. *)
  let fired, ds =
    run_lint
      (mk (fun ~base ~b2:_ ~x ~y:_ ~f:_ ->
           [
             B.li ~dst:x 1;
             B.store ~src:x ~base ~offset:4;
             B.addi ~dst:base ~lhs:base 4;
             B.store ~src:x ~base ~offset:0;
           ]))
  in
  Alcotest.(check bool)
    (Fmt.str "covered through base shift: %s" (pp_diags ds))
    true fired;
  (* An intervening possibly-aliasing load reads the store. *)
  let fired, _ =
    run_lint
      (mk (fun ~base ~b2:_ ~x ~y ~f:_ ->
           [
             B.li ~dst:x 1;
             B.store ~src:x ~base ~offset:0;
             B.load ~dst:y ~base ~offset:0;
             B.store ~src:x ~base ~offset:0;
           ]))
  in
  Alcotest.(check bool) "intervening load absolves" false fired;
  (* A call may read anything. *)
  let fired, _ =
    run_lint
      (mk (fun ~base ~b2:_ ~x ~y:_ ~f:_ ->
           [
             B.li ~dst:x 1;
             B.store ~src:x ~base ~offset:0;
             B.call "f" [];
             B.store ~src:x ~base ~offset:0;
           ]))
  in
  Alcotest.(check bool) "intervening call absolves" false fired;
  (* Different families never interact. *)
  let fired, _ =
    run_lint
      (mk (fun ~base ~b2:_ ~x ~y:_ ~f ->
           [
             B.li ~dst:x 1;
             B.store ~src:f ~base ~offset:0;
             B.store ~src:x ~base ~offset:0;
           ]))
  in
  Alcotest.(check bool) "cross-family store is no kill" false fired;
  (* Different base registers route to different spill segments even
     at equal numeric addresses, so they must not pair up. *)
  let fired, _ =
    run_lint
      (mk (fun ~base ~b2 ~x ~y:_ ~f:_ ->
           [
             B.li ~dst:x 1;
             B.li ~dst:base 64;
             B.li ~dst:b2 64;
             B.store ~src:x ~base ~offset:0;
             B.store ~src:x ~base:b2 ~offset:0;
           ]))
  in
  Alcotest.(check bool) "different base registers are exempt" false fired

(* ---- exit codes: single source of truth, pinned ---- *)

let test_exit_codes () =
  let module E = Gis_driver.Exit_codes in
  Alcotest.(check (list int)) "table" [ 0; 1; 2; 3; 4; 5; 6; 7 ] E.all;
  Alcotest.(check int) "ok" 0 E.ok;
  Alcotest.(check int) "compile" 1 E.compile_error;
  Alcotest.(check int) "usage" 2 E.usage_error;
  Alcotest.(check int) "verification" 3 E.verification_failure;
  Alcotest.(check int) "batch partial" 4 E.batch_partial_failure;
  Alcotest.(check int) "batch timeout" 5 E.batch_timeout_only;
  Alcotest.(check int) "fuzz finding" 6 E.fuzz_finding;
  Alcotest.(check int) "regalloc infeasible" 7 E.regalloc_infeasible;
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Fmt.str "code %d described" c)
        false
        (String.equal (E.describe c) "unknown"))
    E.all

(* ---- golden lint over the example programs ---- *)

let golden_path =
  if Sys.file_exists "golden_lint.txt" then "golden_lint.txt"
  else "test/golden_lint.txt"

let lint_report () =
  String.concat ""
    (List.map
       (fun (name, src) ->
         Label.reset_fresh_counter ();
         let compiled = Codegen.compile_string src in
         match L.run ~stage:name compiled.Codegen.cfg with
         | [] -> Fmt.str "%s: clean\n" name
         | ds -> Fmt.str "%a\n" Fmt.(list ~sep:cut D.pp) ds)
       workloads)

let test_golden_lint () =
  let ic = open_in golden_path in
  let n = in_channel_length ic in
  let golden = really_input_string ic n in
  close_in ic;
  Alcotest.(check string) "lint diagnostics match golden file" golden
    (lint_report ())

(* ---- property: the checker accepts every pipeline output ---- *)

let prop_accepts config seed =
  let compiled = Random_prog.generate_compiled ~seed in
  let cfg = compiled.Codegen.cfg in
  let prov = Gis_obs.Provenance.create () in
  let collector =
    C.collector ~prov
      ~max_speculation_degree:config.Config.max_speculation_degree ()
  in
  let config =
    { config with Config.prov = Some prov; check = Some (C.hook collector) }
  in
  ignore (Pipeline.run machine config cfg);
  let diags = List.concat_map snd (C.diagnostics collector) in
  match C.errors diags with
  | [] -> true
  | es ->
      QCheck.Test.fail_reportf "checker rejected seed %d:@.%s" seed
        (pp_diags es)

let qtest name count prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count QCheck.(int_range 1 1_000_000) prop)

let () =
  Alcotest.run "gis_check"
    [
      ( "acceptance",
        [
          Alcotest.test_case "workloads x levels" `Quick test_accepts_workloads;
          Alcotest.test_case "workloads under regalloc" `Quick
            test_accepts_regalloc;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "intra-block dependence swap" `Quick
            test_rejects_swap;
          Alcotest.test_case "store hoisted above its branch" `Quick
            test_rejects_store_speculation;
          Alcotest.test_case "off-path live clobber" `Quick
            test_rejects_off_path_clobber;
          Alcotest.test_case "killed off-path def accepted" `Quick
            test_accepts_killed_off_path_def;
          Alcotest.test_case "instruction deleted" `Quick test_rejects_deletion;
        ] );
      ( "disambiguation",
        [
          Alcotest.test_case "checker independent of over-claim" `Quick
            test_checker_independent_of_overclaim;
          Alcotest.test_case "checker re-proves pruned reorder" `Quick
            test_checker_reproves_pruned_reorder;
          Alcotest.test_case "dead-store lint" `Quick test_dead_store_lint;
        ] );
      ( "validator",
        [
          Alcotest.test_case "detached branch target" `Quick
            test_validator_detached_block;
          Alcotest.test_case "lint flags detached target" `Quick
            test_lint_detached_target;
        ] );
      ( "exit codes",
        [ Alcotest.test_case "pinned table" `Quick test_exit_codes ] );
      ( "lint golden",
        [ Alcotest.test_case "examples are clean" `Quick test_golden_lint ] );
      ( "properties",
        [
          qtest "random programs accepted (useful)" 40
            (prop_accepts Config.useful_only);
          qtest "random programs accepted (speculative)" 60
            (prop_accepts Config.speculative);
          qtest "random programs accepted (no transforms)" 40
            (prop_accepts
               {
                 Config.speculative with
                 Config.unroll_small_loops = false;
                 rotate_small_loops = false;
               });
        ] );
    ]
