(* End-to-end reproduction checks: the paper's figures as assertions.
   Bands are deliberately generous — the goal is the *shape* of each
   result (who wins, roughly by how much), not bit-exact cycle counts. *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_frontend
open Gis_workloads

let machine = Machine.rs6k

let fig_config level =
  {
    Config.default with
    Config.level;
    unroll_small_loops = false;
    rotate_small_loops = false;
  }

let elements =
  let rng = Prng.create ~seed:5 in
  List.init 64 (fun _ -> Prng.int rng 1000)

let minmax_cycles level =
  let t = Minmax.build () in
  let cfg = Cfg.deep_copy t.Minmax.cfg in
  ignore (Pipeline.run machine (fig_config level) cfg);
  Validate.check_exn cfg;
  ( Simulator.cycles_per_iteration machine cfg ~header:t.Minmax.loop_header
      (Minmax.input t elements),
    cfg )

(* Figures 2/5/6: per-iteration cycles 20-22 / 12-13 / 11-12. *)
let test_figure_2_5_6_bands () =
  let base, _ = minmax_cycles Config.Local in
  let useful, _ = minmax_cycles Config.Useful in
  let spec, _ = minmax_cycles Config.Speculative in
  Alcotest.(check bool) (Fmt.str "figure 2 band: %.1f" base) true
    (base >= 19.0 && base <= 23.0);
  Alcotest.(check bool) (Fmt.str "figure 5 band: %.1f" useful) true
    (useful >= 11.5 && useful <= 14.5);
  Alcotest.(check bool) (Fmt.str "figure 6 band: %.1f" spec) true
    (spec >= 10.5 && spec <= 13.5);
  Alcotest.(check bool) "speculation saves about one cycle" true
    (useful -. spec >= 0.5 && useful -. spec <= 2.5)

(* Figure 5's published schedule for BL1: L, LU, AI, C(u,v), C(i,n), BF. *)
let test_figure5_bl1_contents () =
  let _, cfg = minmax_cycles Config.Useful in
  let bl1 = Cfg.block_of_label cfg "CL.0" in
  let mnemonics =
    Gis_util.Vec.to_list bl1.Block.body
    |> List.map (fun i ->
           match Instr.kind i with
           | Instr.Load { update = false; _ } -> "L"
           | Instr.Load { update = true; _ } -> "LU"
           | Instr.Binop { op = Instr.Add; _ } -> "AI"
           | Instr.Compare _ -> "C"
           | _ -> "?")
  in
  Alcotest.(check (list string)) "BL1 after useful scheduling"
    [ "L"; "LU"; "AI"; "C"; "C" ] mnemonics

(* Figure 6: BL1 additionally holds both speculative compares, the
   second with a renamed condition register. *)
let test_figure6_bl1_contents () =
  let _, cfg = minmax_cycles Config.Speculative in
  let bl1 = Cfg.block_of_label cfg "CL.0" in
  let compares =
    Gis_util.Vec.to_list bl1.Block.body
    |> List.filter_map (fun i ->
           match Instr.kind i with
           | Instr.Compare { dst; _ } -> Some dst
           | _ -> None)
  in
  (* Four compares: cr7 (u,v), cr4 (i,n), cr6 (u,max), fresh (v,max). *)
  Alcotest.(check int) "four compares in BL1" 4 (List.length compares);
  let ids = List.map (fun (r : Reg.t) -> r.Reg.id) compares in
  Alcotest.(check bool) "one renamed register beyond the paper's set" true
    (List.exists (fun id -> id > 31) ids);
  (* The branch of BL2 now reads cr6 moved into BL1; the branch of CL.4
     reads the renamed register. *)
  let cl4 = Cfg.block_of_label cfg "CL.4" in
  (match Instr.kind cl4.Block.term with
  | Instr.Branch_cond { cr; _ } ->
      Alcotest.(check bool) "CL.4 branch reads the renamed cr" true
        (cr.Reg.id > 31)
  | _ -> Alcotest.fail "CL.4 must end in a conditional branch")

(* Figure 8's shape on the SPEC proxies. *)
let proxy_rti (p : Spec_proxy.t) =
  let compiled = Spec_proxy.compile p in
  let input = p.Spec_proxy.setup compiled in
  let cycles config =
    let cfg = Cfg.deep_copy compiled.Codegen.cfg in
    ignore (Pipeline.run machine config cfg);
    Validate.check_exn cfg;
    let o = Simulator.run machine cfg input in
    (float_of_int o.Simulator.cycles, Simulator.observables o)
  in
  let base, ob = cycles Config.base in
  let useful, ou = cycles Config.useful_only in
  let spec, os = cycles Config.speculative in
  Alcotest.(check string) (p.Spec_proxy.name ^ " useful observables") ob ou;
  Alcotest.(check string) (p.Spec_proxy.name ^ " spec observables") ob os;
  let rti x = 100.0 *. (1.0 -. (x /. base)) in
  (rti useful, rti spec)

let test_figure8_li () =
  (* Paper: useful 2.0%, speculative 6.9% — speculation dominates. *)
  let useful, spec = proxy_rti Spec_proxy.li in
  Alcotest.(check bool) (Fmt.str "li useful %.1f%% > 0" useful) true (useful > 0.5);
  Alcotest.(check bool)
    (Fmt.str "li speculative (%.1f%%) well above useful (%.1f%%)" spec useful)
    true
    (spec -. useful >= 2.0)

let test_figure8_eqntott () =
  (* Paper: useful 7.1%, speculative 7.3% — almost all from useful. *)
  let useful, spec = proxy_rti Spec_proxy.eqntott in
  Alcotest.(check bool) (Fmt.str "eqntott useful %.1f%% sizeable" useful) true
    (useful >= 3.0);
  Alcotest.(check bool)
    (Fmt.str "eqntott speculation adds little (%.1f%% vs %.1f%%)" spec useful)
    true
    (spec -. useful <= 1.5)

let test_figure8_espresso () =
  (* Paper: -0.5% / 0% — no improvement. *)
  let useful, spec = proxy_rti Spec_proxy.espresso in
  Alcotest.(check bool) (Fmt.str "espresso useful flat (%.1f%%)" useful) true
    (Float.abs useful <= 1.5);
  Alcotest.(check bool) (Fmt.str "espresso spec flat (%.1f%%)" spec) true
    (Float.abs spec <= 1.5)

let test_figure8_gcc () =
  (* Paper: -1.5% / 0% — no improvement. *)
  let useful, spec = proxy_rti Spec_proxy.gcc in
  Alcotest.(check bool) (Fmt.str "gcc useful flat (%.1f%%)" useful) true
    (Float.abs useful <= 2.0);
  Alcotest.(check bool) (Fmt.str "gcc spec nearly flat (%.1f%%)" spec) true
    (spec <= 6.0)

(* Cross-validation: the Tiny-C compiled minmax behaves like the
   hand-built Figure 2 program at every scheduling level. *)
let test_tinyc_minmax_pipeline () =
  let compiled = Codegen.compile_string Minmax.source in
  let input =
    {
      Simulator.no_input with
      Simulator.int_regs = [ (Codegen.var_reg compiled "n", List.length elements) ];
      memory = Codegen.array_input compiled [ ("a", elements) ];
    }
  in
  let min_v, max_v = Minmax.reference_min_max elements in
  let expected = [ Fmt.str "print_int(%d)" min_v; Fmt.str "print_int(%d)" max_v ] in
  List.iter
    (fun level ->
      let cfg = Cfg.deep_copy compiled.Codegen.cfg in
      ignore (Pipeline.run machine { Config.default with Config.level } cfg);
      Validate.check_exn cfg;
      let o = Simulator.run machine cfg input in
      Alcotest.(check (list string))
        (Fmt.str "level %a" Config.pp_level level)
        expected o.Simulator.output)
    [ Config.Local; Config.Useful; Config.Speculative ]

(* Compile-time overhead (Figure 7 shape): global scheduling costs more
   than base compilation but stays within a small multiple. *)
let test_figure7_overhead_sane () =
  List.iter
    (fun (p : Spec_proxy.t) ->
      let compiled = Spec_proxy.compile p in
      let time config =
        let cfg = Cfg.deep_copy compiled.Codegen.cfg in
        Pipeline.seconds (Pipeline.run machine config cfg)
      in
      let base = time Config.base in
      let full = time Config.speculative in
      Alcotest.(check bool)
        (Fmt.str "%s: scheduling time (%.4fs) bounded" p.Spec_proxy.name full)
        true
        (full < Float.max 0.05 (base *. 500.0)))
    Spec_proxy.all

(* Wider machines benefit more (paper Section 6's expectation). *)
let test_wider_machine_payoff () =
  let t = Minmax.build () in
  let per_iter machine level =
    let cfg = Cfg.deep_copy t.Minmax.cfg in
    ignore (Pipeline.run machine (fig_config level) cfg);
    Simulator.cycles_per_iteration machine cfg ~header:t.Minmax.loop_header
      (Minmax.input t elements)
  in
  let wide = Machine.superscalar ~width:2 in
  let narrow_gain = per_iter machine Config.Local -. per_iter machine Config.Speculative in
  let wide_gain = per_iter wide Config.Local -. per_iter wide Config.Speculative in
  Alcotest.(check bool)
    (Fmt.str "2-issue gains (%.1f) at least as much as 1-issue (%.1f)"
       wide_gain narrow_gain)
    true
    (wide_gain >= narrow_gain -. 0.6)

let () =
  Alcotest.run "gis_integration"
    [
      ( "figures 2/5/6",
        [
          Alcotest.test_case "cycle bands" `Quick test_figure_2_5_6_bands;
          Alcotest.test_case "figure 5 BL1" `Quick test_figure5_bl1_contents;
          Alcotest.test_case "figure 6 BL1" `Quick test_figure6_bl1_contents;
        ] );
      ( "figure 8",
        [
          Alcotest.test_case "li" `Quick test_figure8_li;
          Alcotest.test_case "eqntott" `Quick test_figure8_eqntott;
          Alcotest.test_case "espresso" `Quick test_figure8_espresso;
          Alcotest.test_case "gcc" `Quick test_figure8_gcc;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "tiny-c minmax" `Quick test_tinyc_minmax_pipeline;
          Alcotest.test_case "figure 7 overhead" `Quick test_figure7_overhead_sane;
          Alcotest.test_case "wider machines" `Quick test_wider_machine_payoff;
        ] );
    ]
