(* Helpers shared across the differential test suites (props, driver,
   asm, fuzz). One definition of the reference machine, the observable
   projection, the random-program baselines and the standard workload
   corpus — previously duplicated per file. *)

open Gis_machine
open Gis_core
open Gis_sim
open Gis_frontend
open Gis_workloads

let machine = Machine.rs6k

let observe cfg input = Simulator.observables (Simulator.run machine cfg input)

(* Random-program baseline: the compiled program plus its standard
   input, both functions of the seed alone. *)
let baseline_compiled seed =
  let compiled = Random_prog.generate_compiled ~seed in
  let input = Random_prog.random_input ~seed compiled in
  (compiled, input)

let baseline_and_input seed =
  let compiled, input = baseline_compiled seed in
  (compiled.Codegen.cfg, input)

let config_of_level = function
  | `Local -> Config.base
  | `Useful -> Config.useful_only
  | `Speculative -> Config.speculative

let level_name = function
  | `Local -> "local"
  | `Useful -> "useful"
  | `Speculative -> "speculative"

let minmax_elements =
  let rng = Prng.create ~seed:5 in
  List.init 64 (fun _ -> Prng.int rng 1000)

(* The paper's workloads, each with its standard simulator input. *)
let standard_programs () =
  ("minmax",
   (let t = Minmax.build () in
    (t.Minmax.cfg, Minmax.input t minmax_elements)))
  :: List.map
       (fun (p : Spec_proxy.t) ->
         let compiled = Spec_proxy.compile p in
         (p.Spec_proxy.name, (compiled.Codegen.cfg, p.Spec_proxy.setup compiled)))
       Spec_proxy.all
