open Gis_ir
open Gis_machine
open Gis_analysis
open Gis_ddg
open Gis_core
open Gis_workloads
module B = Builder

let machine = Machine.rs6k

(* ---- heuristics ---- *)

(* Hand-check D and CP on the paper's BL1: I1 load, I2 load-update,
   I3 compare, I4 branch. Edges (pruned or not): I1->I3 (d1), I2->I3
   (d1), I3->I4 (d3), I1->I2 anti (d0).
   D(I4)=0, CP(I4)=1; D(I3)=3, CP(I3)=1+3+1=5;
   D(I2)=max(D(I3)+1)=4, CP(I2)=CP(I3)+1+1=7; D(I1)=max(4+0, 3+1)=4,
   CP(I1)=max(CP(I2)+0, CP(I3)+1)+1=8. *)
let test_heuristics_bl1 () =
  let g = Reg.Gen.create () in
  let u = Reg.Gen.reserve g Reg.Gpr 12 in
  let v = Reg.Gen.reserve g Reg.Gpr 0 in
  let addr = Reg.Gen.reserve g Reg.Gpr 31 in
  let cr7 = Reg.Gen.reserve g Reg.Cr 7 in
  let cfg = Cfg.create ~reg_gen:g () in
  let b = Cfg.add_block cfg ~label:"BL1" in
  Cfg.set_entry cfg b.Block.id;
  List.iter
    (fun k -> Gis_util.Vec.push b.Block.body (Cfg.make_instr cfg k))
    [
      B.load ~dst:u ~base:addr ~offset:4;
      B.load_update ~dst:v ~base:addr ~offset:8;
      B.cmp ~dst:cr7 ~lhs:u ~rhs:v;
    ];
  b.Block.term <-
    Cfg.make_instr cfg (B.bf ~cr:cr7 ~cond:Instr.Gt ~taken:"BL1" ~fallthru:"BL1");
  let ddg = Ddg.build_single_block machine b in
  let h = Heuristics.compute ddg in
  Alcotest.(check int) "D(I4)" 0 (Heuristics.d h 3);
  Alcotest.(check int) "CP(I4)" 1 (Heuristics.cp h 3);
  Alcotest.(check int) "D(I3)" 3 (Heuristics.d h 2);
  Alcotest.(check int) "CP(I3)" 5 (Heuristics.cp h 2);
  Alcotest.(check int) "D(I2)" 4 (Heuristics.d h 1);
  Alcotest.(check int) "CP(I2)" 7 (Heuristics.cp h 1);
  Alcotest.(check int) "D(I1)" 4 (Heuristics.d h 0);
  Alcotest.(check int) "CP(I1)" 8 (Heuristics.cp h 0)

(* ---- priority rules ---- *)

let item ?(useful = true) ?(d = 0) ?(cp = 0) ?(pressure = 0) ~order node =
  { Priority.node; useful; d; cp; order; pressure }

let test_priority_order () =
  let rules = Priority_rule.paper_order in
  let prefers a b =
    Alcotest.(check bool) "prefers" true (Priority.compare ~rules a b < 0)
  in
  (* Rule 1-2: useful beats speculative even with a worse D/CP. *)
  prefers (item ~useful:true ~d:0 ~cp:0 ~order:5 1)
    (item ~useful:false ~d:9 ~cp:9 ~order:1 2);
  (* Rule 3-4: larger D wins within a class. *)
  prefers (item ~d:3 ~cp:0 ~order:5 1) (item ~d:1 ~cp:9 ~order:1 2);
  (* Rule 5-6: larger CP breaks D ties. *)
  prefers (item ~d:3 ~cp:7 ~order:5 1) (item ~d:3 ~cp:2 ~order:1 2);
  (* Rule 7: program order breaks everything else. *)
  prefers (item ~d:3 ~cp:7 ~order:1 1) (item ~d:3 ~cp:7 ~order:5 2);
  (* Reordered rules change the outcome. *)
  let cp_first = Priority_rule.[ Max_critical_path; Max_delay; Program_order ] in
  Alcotest.(check bool) "cp-first flips" true
    (Priority.compare ~rules:cp_first
       (item ~d:1 ~cp:9 ~order:1 1)
       (item ~d:3 ~cp:2 ~order:2 2)
    < 0);
  match Priority.best ~rules [] with
  | None -> ()
  | Some _ -> Alcotest.fail "best of empty"

(* ---- local scheduler ---- *)

(* Two independent loads and two dependent adds: the list scheduler must
   hide the load delays behind the independent work. *)
let test_local_fills_delay_slots () =
  let g = Reg.Gen.create () in
  let a = Reg.Gen.fresh g Reg.Gpr in
  let b_ = Reg.Gen.fresh g Reg.Gpr in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let y = Reg.Gen.fresh g Reg.Gpr in
  let cfg = Cfg.create ~reg_gen:g () in
  let blk = Cfg.add_block cfg ~label:"X" in
  Cfg.set_entry cfg blk.Block.id;
  (* Deliberately bad order: load; use; load; use. *)
  List.iter
    (fun k -> Gis_util.Vec.push blk.Block.body (Cfg.make_instr cfg k))
    [
      B.load ~dst:a ~base ~offset:0;
      B.addi ~dst:x ~lhs:a 1;
      B.load ~dst:b_ ~base ~offset:4;
      B.addi ~dst:y ~lhs:b_ 1;
    ];
  blk.Block.term <- Cfg.make_instr cfg Instr.Halt;
  let naive_len = Local_sched.block_schedule_length machine blk in
  ignore naive_len;
  let len = Local_sched.schedule_block machine blk in
  (* loads at 0,1; adds at 2,3; halt issues beside the last add -> 4 *)
  Alcotest.(check int) "optimal length" 4 len;
  (match Instr.kind (Gis_util.Vec.get blk.Block.body 1) with
  | Instr.Load _ -> ()
  | _ -> Alcotest.fail "second slot should be the other load");
  Validate.check_exn cfg

(* Local scheduling preserves intra-block data dependences for random
   blocks — checked by simulation elsewhere; here check a subtle anti
   case: a use must not migrate after a redefinition. *)
let test_local_respects_anti () =
  let g = Reg.Gen.create () in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let y = Reg.Gen.fresh g Reg.Gpr in
  let z = Reg.Gen.fresh g Reg.Gpr in
  let cfg = Cfg.create ~reg_gen:g () in
  let blk = Cfg.add_block cfg ~label:"X" in
  Cfg.set_entry cfg blk.Block.id;
  List.iter
    (fun k -> Gis_util.Vec.push blk.Block.body (Cfg.make_instr cfg k))
    [
      B.li ~dst:x 1;
      B.mr ~dst:y ~src:x;   (* reads x=1 *)
      B.li ~dst:x 2;        (* redefines x *)
      B.mr ~dst:z ~src:x;   (* reads x=2 *)
    ];
  blk.Block.term <- Cfg.make_instr cfg Instr.Halt;
  ignore (Local_sched.schedule_block machine blk);
  let order =
    Gis_util.Vec.to_list blk.Block.body
    |> List.map (fun i -> Fmt.str "%a" Instr.pp i)
  in
  let idx s = Option.get (List.find_index (fun o -> o = s) order) in
  Alcotest.(check bool) "y=x before x=2" true
    (idx (Fmt.str "LR    %a=%a" Reg.pp y Reg.pp x)
    < idx (Fmt.str "LI    %a=2" Reg.pp x))

(* Custom rule orders still produce valid (dependence-respecting)
   schedules. *)
let test_local_custom_rules () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let a = Reg.Gen.fresh g Reg.Gpr in
  let b_ = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Gpr in
  let cfg = Cfg.create ~reg_gen:g () in
  let blk = Cfg.add_block cfg ~label:"X" in
  Cfg.set_entry cfg blk.Block.id;
  List.iter
    (fun k -> Gis_util.Vec.push blk.Block.body (Cfg.make_instr cfg k))
    [
      B.load ~dst:a ~base ~offset:0;
      B.addi ~dst:b_ ~lhs:a 1;
      B.addi ~dst:c ~lhs:b_ 1;
      B.li ~dst:base 99;
    ];
  blk.Block.term <- Cfg.make_instr cfg Instr.Halt;
  List.iter
    (fun rules ->
      let copy = Cfg.deep_copy cfg in
      let cblk = Cfg.block_of_label copy "X" in
      ignore (Local_sched.schedule_block ~rules machine cblk);
      Validate.check_exn copy;
      (* The dependent chain stays in order; the li may float. *)
      let order =
        Gis_util.Vec.to_list cblk.Block.body
        |> List.mapi (fun idx i -> (Instr.uid i, idx))
      in
      let pos uid = List.assoc uid order in
      let uids =
        List.map Instr.uid (Gis_util.Vec.to_list blk.Block.body)
      in
      match uids with
      | [ load; add1; add2; _li ] ->
          Alcotest.(check bool) "load before add1" true (pos load < pos add1);
          Alcotest.(check bool) "add1 before add2" true (pos add1 < pos add2)
      | _ -> Alcotest.fail "unexpected block shape")
    [
      Priority_rule.paper_order;
      Priority_rule.[ Program_order ];
      Priority_rule.[ Max_critical_path ];
      [];
    ]

(* ---- global scheduling: the paper's figures ---- *)

let sched_config level =
  {
    Config.default with
    Config.level;
    unroll_small_loops = false;
    rotate_small_loops = false;
  }

let test_figure5_moves () =
  let t = Minmax.build () in
  let cfg = t.Minmax.cfg in
  let reports = Global_sched.schedule machine (sched_config Config.Useful) cfg in
  Validate.check_exn cfg;
  let moves = List.concat_map (fun r -> r.Global_sched.moves) reports in
  let has ~from_ ~to_ =
    List.exists
      (fun (m : Global_sched.move) ->
        m.Global_sched.from_label = from_ && m.Global_sched.to_label = to_
        && not m.Global_sched.speculative)
      moves
  in
  (* Figure 5: I18/I19 from BL10 to BL1; I8 from BL4 to BL2; I15 from
     BL8 to BL6. *)
  Alcotest.(check bool) "BL10 -> BL1" true (has ~from_:"CL.9" ~to_:"CL.0");
  Alcotest.(check bool) "BL4 -> BL2" true (has ~from_:"CL.6" ~to_:"BL2");
  Alcotest.(check bool) "BL8 -> BL6" true (has ~from_:"CL.11" ~to_:"CL.4");
  Alcotest.(check int) "exactly two instructions into BL1" 2
    (List.length
       (List.filter
          (fun (m : Global_sched.move) -> m.Global_sched.to_label = "CL.0")
          moves));
  (* No speculative motion at the Useful level. *)
  Alcotest.(check bool) "no speculation" true
    (List.for_all (fun (m : Global_sched.move) -> not m.Global_sched.speculative) moves)

let test_figure6_moves_and_rename () =
  let t = Minmax.build () in
  let cfg = t.Minmax.cfg in
  let reports =
    Global_sched.schedule machine (sched_config Config.Speculative) cfg
  in
  Validate.check_exn cfg;
  let moves = List.concat_map (fun r -> r.Global_sched.moves) reports in
  let spec_into_bl1 =
    List.filter
      (fun (m : Global_sched.move) ->
        m.Global_sched.to_label = "CL.0" && m.Global_sched.speculative)
      moves
  in
  (* Figure 6: I5 (from BL2) and I12 (from BL6) move speculatively into
     BL1; the second one needs its condition register renamed. *)
  Alcotest.(check int) "two speculative compares" 2 (List.length spec_into_bl1);
  Alcotest.(check bool) "one was renamed" true
    (List.exists
       (fun (m : Global_sched.move) -> m.Global_sched.renamed <> None)
       spec_into_bl1);
  Alcotest.(check bool) "the I5 motion kept cr6" true
    (List.exists
       (fun (m : Global_sched.move) ->
         m.Global_sched.from_label = "BL2" && m.Global_sched.renamed = None)
       spec_into_bl1);
  Alcotest.(check bool) "the I12 motion was renamed" true
    (List.exists
       (fun (m : Global_sched.move) ->
         m.Global_sched.from_label = "CL.4" && m.Global_sched.renamed <> None)
       spec_into_bl1)

(* Section 5.3: only one of x=5 / x=3 may move into the dispatch block,
   and the second motion is rejected as not renameable. *)
let test_section53_safety () =
  let s = Section53.build () in
  let cfg = s.Section53.cfg in
  let reports =
    Global_sched.schedule machine (sched_config Config.Speculative) cfg
  in
  Validate.check_exn cfg;
  let moves = List.concat_map (fun r -> r.Global_sched.moves) reports in
  let into_b1 =
    List.filter
      (fun (m : Global_sched.move) -> m.Global_sched.to_label = "B1")
      moves
  in
  Alcotest.(check int) "exactly one motion into B1" 1 (List.length into_b1);
  let blocked = List.concat_map (fun r -> r.Global_sched.blocked) reports in
  Alcotest.(check bool) "the other was blocked" true
    (List.exists
       (fun (b : Global_sched.blocked) ->
         b.Global_sched.blocked_uid = s.Section53.x5_uid
         || b.Global_sched.blocked_uid = s.Section53.x3_uid)
       blocked);
  (* Semantics hold on both branch outcomes. *)
  List.iter
    (fun selector ->
      let out =
        Gis_sim.Simulator.run machine cfg (Section53.input ~selector s)
      in
      Alcotest.(check (list string))
        (Fmt.str "output sel=%d" selector)
        [ (if selector <> 0 then "print_int(5)" else "print_int(3)") ]
        out.Gis_sim.Simulator.output)
    [ 0; 1 ]

(* Renaming disabled: both motions must be blocked in minmax's BL1 after
   the first compare moves. *)
let test_rename_ablation () =
  let t = Minmax.build () in
  let cfg = t.Minmax.cfg in
  let config = { (sched_config Config.Speculative) with Config.rename = false } in
  let reports = Global_sched.schedule machine config cfg in
  Validate.check_exn cfg;
  let moves = List.concat_map (fun r -> r.Global_sched.moves) reports in
  let spec_into_bl1 =
    List.filter
      (fun (m : Global_sched.move) ->
        m.Global_sched.to_label = "CL.0" && m.Global_sched.speculative)
      moves
  in
  Alcotest.(check int) "only one compare moves without renaming" 1
    (List.length spec_into_bl1);
  Alcotest.(check bool) "no renames happened" true
    (List.for_all (fun (m : Global_sched.move) -> m.Global_sched.renamed = None) moves)

(* ---- unroll / rotate ---- *)

let counting_loop () =
  let g = Reg.Gen.create () in
  let acc = Reg.Gen.fresh g Reg.Gpr in
  let i = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let cfg =
    B.func ~reg_gen:g
      [
        ("PRE", [ B.li ~dst:acc 0; B.li ~dst:i 0 ], B.jmp "H");
        ("H", [ B.cmpi ~dst:c ~lhs:i 7 ],
         B.bt ~cr:c ~cond:Instr.Lt ~taken:"BODY" ~fallthru:"POST");
        ("BODY",
         [ B.add ~dst:acc ~lhs:acc ~rhs:i; B.addi ~dst:i ~lhs:i 1 ],
         B.jmp "H");
        ("POST", [ B.call "print_int" [ acc ] ], Instr.Halt);
      ]
  in
  Validate.check_exn cfg;
  cfg

let run_out cfg =
  (Gis_sim.Simulator.run machine cfg Gis_sim.Simulator.no_input)
    .Gis_sim.Simulator.output

let test_unroll_semantics () =
  let cfg = counting_loop () in
  let expected = run_out (Cfg.deep_copy cfg) in
  let n = Unroll.unroll_small_inner_loops ~max_blocks:4 cfg in
  Alcotest.(check int) "one loop unrolled" 1 n;
  Validate.check_exn cfg;
  Alcotest.(check (list string)) "same output" expected (run_out cfg);
  (* The loop now has twice the blocks. *)
  let info = Loops.compute cfg in
  let l = (Loops.loops info).(0) in
  Alcotest.(check int) "doubled" 4
    (Gis_util.Ints.Int_set.cardinal l.Loops.blocks)

let test_unroll_only_once () =
  let cfg = counting_loop () in
  ignore (Unroll.unroll_small_inner_loops ~max_blocks:4 cfg);
  let blocks_after_first = Cfg.num_blocks cfg in
  (* A second call unrolls the (now bigger) loop again only if it still
     fits; with max_blocks 2 nothing happens. *)
  let n = Unroll.unroll_small_inner_loops ~max_blocks:2 cfg in
  Alcotest.(check int) "no fit, no unroll" 0 n;
  Alcotest.(check int) "unchanged" blocks_after_first (Cfg.num_blocks cfg)

let test_rotate_semantics () =
  let cfg = counting_loop () in
  let expected = run_out (Cfg.deep_copy cfg) in
  let n = Rotate.rotate_small_inner_loops ~max_blocks:4 cfg in
  Alcotest.(check int) "one loop rotated" 1 n;
  Validate.check_exn cfg;
  Alcotest.(check (list string)) "same output" expected (run_out cfg);
  (* The original header is now a peel: the back edges reach the copy. *)
  let info = Loops.compute cfg in
  Alcotest.(check int) "still one loop" 1 (Array.length (Loops.loops info));
  let l = (Loops.loops info).(0) in
  let header_label = (Cfg.block cfg l.Loops.header).Block.label in
  Alcotest.(check bool) "new header is the rotated copy or the body" true
    (not (String.equal header_label "H"))

let test_unroll_then_rotate_then_schedule () =
  let cfg = counting_loop () in
  let expected = run_out (Cfg.deep_copy cfg) in
  let stats = Pipeline.run machine Config.speculative cfg in
  Validate.check_exn cfg;
  Alcotest.(check int) "unrolled" 1 stats.Pipeline.unrolled;
  Alcotest.(check int) "rotated" 1 stats.Pipeline.rotated;
  Alcotest.(check (list string)) "same output" expected (run_out cfg)

(* ---- level monotonicity on minmax ---- *)

let cycles cfg (t : Minmax.t) elements =
  Gis_sim.Simulator.cycles_per_iteration machine cfg ~header:t.Minmax.loop_header
    (Minmax.input t elements)

let test_levels_improve_minmax () =
  let elements = List.init 64 (fun k -> (k * 37) mod 101) in
  let t = Minmax.build () in
  let run level =
    let c = Cfg.deep_copy t.Minmax.cfg in
    ignore (Pipeline.run machine (sched_config level) c);
    Validate.check_exn c;
    cycles c t elements
  in
  let base = run Config.Local in
  let useful = run Config.Useful in
  let spec = run Config.Speculative in
  Alcotest.(check bool) (Fmt.str "useful (%.1f) < base (%.1f)" useful base)
    true (useful < base);
  Alcotest.(check bool) (Fmt.str "spec (%.1f) <= useful (%.1f)" spec useful)
    true (spec <= useful);
  (* The paper's bands: base 20-22, useful 12-13, speculative 11-12. Our
     timing model sits within one cycle of those. *)
  Alcotest.(check bool) (Fmt.str "base band (%.1f)" base) true
    (base >= 19.0 && base <= 23.0);
  Alcotest.(check bool) (Fmt.str "useful band (%.1f)" useful) true
    (useful >= 11.5 && useful <= 14.5);
  Alcotest.(check bool) (Fmt.str "spec band (%.1f)" spec) true
    (spec >= 10.5 && spec <= 13.5)

(* Stores never move speculatively. *)
let test_stores_not_speculated () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let i = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ("H", [ B.cmpi ~dst:c ~lhs:i 4 ],
         B.bt ~cr:c ~cond:Instr.Lt ~taken:"S" ~fallthru:"J");
        ("S", [ B.store ~src:x ~base ~offset:0 ], B.jmp "J");
        ("J", [ B.addi ~dst:i ~lhs:i 1 ], Instr.Halt);
      ]
  in
  let reports =
    Global_sched.schedule machine (sched_config Config.Speculative) cfg
  in
  Validate.check_exn cfg;
  let moves = List.concat_map (fun r -> r.Global_sched.moves) reports in
  Alcotest.(check bool) "store stayed put" true
    (List.for_all
       (fun (m : Global_sched.move) -> m.Global_sched.from_label <> "S")
       moves)

let () =
  Alcotest.run "gis_core"
    [
      ("heuristics", [ Alcotest.test_case "paper BL1" `Quick test_heuristics_bl1 ]);
      ("priority", [ Alcotest.test_case "seven rules" `Quick test_priority_order ]);
      ( "local",
        [
          Alcotest.test_case "fills delay slots" `Quick test_local_fills_delay_slots;
          Alcotest.test_case "respects anti deps" `Quick test_local_respects_anti;
          Alcotest.test_case "custom rule orders" `Quick test_local_custom_rules;
        ] );
      ( "global",
        [
          Alcotest.test_case "figure 5 moves" `Quick test_figure5_moves;
          Alcotest.test_case "figure 6 speculation+rename" `Quick test_figure6_moves_and_rename;
          Alcotest.test_case "section 5.3 safety" `Quick test_section53_safety;
          Alcotest.test_case "rename ablation" `Quick test_rename_ablation;
          Alcotest.test_case "stores stay put" `Quick test_stores_not_speculated;
        ] );
      ( "transforms",
        [
          Alcotest.test_case "unroll semantics" `Quick test_unroll_semantics;
          Alcotest.test_case "unroll bounded" `Quick test_unroll_only_once;
          Alcotest.test_case "rotate semantics" `Quick test_rotate_semantics;
          Alcotest.test_case "full pipeline" `Quick test_unroll_then_rotate_then_schedule;
        ] );
      ( "figures",
        [ Alcotest.test_case "cycle bands" `Quick test_levels_improve_minmax ] );
    ]
