open Gis_ir
open Gis_machine
open Gis_sim
module B = Builder
module Trace = Gis_obs.Trace

let machine = Machine.rs6k

let run ?(input = Simulator.no_input) cfg = Simulator.run machine cfg input

let straight_line kinds =
  let cfg = Cfg.create () in
  let b = Cfg.add_block cfg ~label:"A" in
  Cfg.set_entry cfg b.Block.id;
  List.iter (fun k -> Gis_util.Vec.push b.Block.body (Cfg.make_instr cfg k)) kinds;
  cfg

let test_arithmetic () =
  let g = Reg.Gen.create () in
  let a = Reg.Gen.fresh g Reg.Gpr in
  let b = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ( "A",
          [
            B.li ~dst:a 10;
            B.li ~dst:b 3;
            B.binop Instr.Mul ~dst:c ~lhs:a ~rhs:(Instr.Reg b);
            B.call "print_int" [ c ];
            B.binop Instr.Div ~dst:c ~lhs:a ~rhs:(Instr.Reg b);
            B.call "print_int" [ c ];
            B.binop Instr.Rem ~dst:c ~lhs:a ~rhs:(Instr.Reg b);
            B.call "print_int" [ c ];
            B.binop Instr.Shl ~dst:c ~lhs:a ~rhs:(Instr.Imm 2);
            B.call "print_int" [ c ];
            B.binop Instr.Xor ~dst:c ~lhs:a ~rhs:(Instr.Imm 6);
            B.call "print_int" [ c ];
          ],
          Instr.Halt );
      ]
  in
  let o = run cfg in
  Alcotest.(check (list string)) "outputs"
    [ "print_int(30)"; "print_int(3)"; "print_int(1)"; "print_int(40)";
      "print_int(12)" ]
    o.Simulator.output;
  Alcotest.(check bool) "halted" true (o.Simulator.stop = Simulator.Halted)

let test_div_by_zero_traps () =
  let g = Reg.Gen.create () in
  let a = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ("A", [ B.li ~dst:a 1; B.binop Instr.Div ~dst:a ~lhs:a ~rhs:(Instr.Imm 0) ],
         Instr.Halt);
      ]
  in
  match (run cfg).Simulator.stop with
  | Simulator.Trap _ -> ()
  | Simulator.Halted | Simulator.Out_of_fuel -> Alcotest.fail "expected trap"

let test_memory_and_update_forms () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let y = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ( "A",
          [
            B.li ~dst:base 100;
            B.li ~dst:x 7;
            (* STU writes to 104 and leaves base=104. *)
            B.store_update ~src:x ~base ~offset:4;
            (* LU reads from 112 and leaves base=112. *)
            B.load_update ~dst:y ~base ~offset:8;
            B.call "print_int" [ y ];
            B.call "print_int" [ base ];
          ],
          Instr.Halt );
      ]
  in
  let input =
    { Simulator.no_input with Simulator.memory = [ (112, 55) ] }
  in
  let o = run ~input cfg in
  Alcotest.(check (list string)) "update semantics"
    [ "print_int(55)"; "print_int(112)" ]
    o.Simulator.output;
  Alcotest.(check bool) "store landed at 104" true
    (List.mem (104, 7) o.Simulator.final_memory)

let test_branches () =
  let g = Reg.Gen.create () in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let cfg sel =
    let cfg =
      B.func ~reg_gen:g
        [
          ("A", [ B.li ~dst:x sel; B.cmpi ~dst:c ~lhs:x 5 ],
           B.bt ~cr:c ~cond:Instr.Lt ~taken:"LT" ~fallthru:"GE");
          ("LT", [ B.call "print_int" [ x ] ], Instr.Halt);
          ("GE", [ B.li ~dst:x 99; B.call "print_int" [ x ] ], Instr.Halt);
        ]
    in
    cfg
  in
  Alcotest.(check (list string)) "taken" [ "print_int(3)" ]
    (run (cfg 3)).Simulator.output;
  Alcotest.(check (list string)) "fallthru" [ "print_int(99)" ]
    (run (cfg 7)).Simulator.output

let test_fuel () =
  let cfg = B.func [ ("A", [], B.jmp "A") ] in
  let o = Simulator.run ~fuel:100 machine cfg Simulator.no_input in
  Alcotest.(check bool) "out of fuel" true (o.Simulator.stop = Simulator.Out_of_fuel);
  Alcotest.(check int) "counted" 100 o.Simulator.instructions

let test_float_path () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let fa = Reg.Gen.fresh g Reg.Fpr in
  let fb = Reg.Gen.fresh g Reg.Fpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ( "A",
          [
            B.li ~dst:base 0;
            B.load ~dst:fa ~base ~offset:0;
            B.load ~dst:fb ~base ~offset:8;
            B.fbinop Instr.Fadd ~dst:fa ~lhs:fa ~rhs:fb;
            B.fcmp ~dst:c ~lhs:fa ~rhs:fb;
          ],
          B.bt ~cr:c ~cond:Instr.Gt ~taken:"BIG" ~fallthru:"SMALL" );
        ("BIG", [ B.li ~dst:x 1; B.call "print_int" [ x ] ], Instr.Halt);
        ("SMALL", [ B.li ~dst:x 0; B.call "print_int" [ x ] ], Instr.Halt);
      ]
  in
  let input =
    { Simulator.no_input with Simulator.float_memory = [ (0, 2.5); (8, 1.5) ] }
  in
  let o = run ~input cfg in
  Alcotest.(check (list string)) "float compare" [ "print_int(1)" ] o.Simulator.output;
  Alcotest.(check bool) "float memory dumped" true
    (o.Simulator.final_float_memory = [ (0, 2.5); (8, 1.5) ])

(* ---- timing model ---- *)

let issue_cycles kinds =
  (* Cycles of a straight-line block, via total cycle count. *)
  let cfg = straight_line kinds in
  (run cfg).Simulator.cycles

let test_delayed_load_stall () =
  let g = Reg.Gen.create () in
  let a = Reg.Gen.fresh g Reg.Gpr in
  let b = Reg.Gen.fresh g Reg.Gpr in
  let base = Reg.Gen.fresh g Reg.Gpr in
  (* load @0; dependent add must wait: ready = 0+1+1 = 2; halt @2. *)
  let dependent =
    issue_cycles [ B.load ~dst:a ~base ~offset:0; B.addi ~dst:b ~lhs:a 1 ]
  in
  (* independent add issues @1. *)
  let independent =
    issue_cycles [ B.load ~dst:a ~base ~offset:0; B.addi ~dst:b ~lhs:base 1 ]
  in
  Alcotest.(check bool)
    (Fmt.str "dependent (%d) slower than independent (%d)" dependent independent)
    true
    (dependent = independent + 1)

let test_compare_branch_delay () =
  let g = Reg.Gen.create () in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let cfg =
    B.func ~reg_gen:g
      [
        ("A", [ B.li ~dst:x 1; B.cmpi ~dst:c ~lhs:x 0 ],
         B.bt ~cr:c ~cond:Instr.Gt ~taken:"B" ~fallthru:"B");
        ("B", [], Instr.Halt);
      ]
  in
  (* li@0, cmp@1, branch at 1+1+3=5; B's halt takes the branch unit at
     6 and completes at 7. *)
  Alcotest.(check int) "3-cycle compare->branch" 7 (run cfg).Simulator.cycles

let test_detailed_store_load_penalty () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let y = Reg.Gen.fresh g Reg.Gpr in
  let kinds =
    [ B.store ~src:x ~base ~offset:0; B.load ~dst:y ~base ~offset:4 ]
  in
  let cycles m =
    let cfg = straight_line kinds in
    (Simulator.run m cfg Simulator.no_input).Simulator.cycles
  in
  Alcotest.(check int) "one extra cycle on the detailed model"
    (cycles Machine.rs6k + 1)
    (cycles Machine.rs6k_detailed)

(* Calls are serialization points, not stores: an intervening call must
   not clear the store-queue constraint, and a call's own memory delay
   is attributed to its own category. Custom machines make each effect
   deterministic. *)
let call_machine ~store_load ~call_load =
  Machine.make ~name:"call-test" ~fixed_units:1 ~float_units:1 ~branch_units:1
    ~exec_time:(fun _ -> 1)
    ~mem_delay:(fun ~producer ~consumer ->
      match (Instr.kind producer, Instr.kind consumer) with
      | Instr.Store _, Instr.Load _ -> store_load
      | Instr.Call _, Instr.Load _ -> call_load
      | _, _ -> 0)
    ()

let test_store_queue_survives_call () =
  (* store; call; load — the store->load penalty binds across the
     call. A simulator that tracked only "the last memory writer" would
     let the call shadow the store and charge nothing. *)
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let y = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    straight_line
      [
        B.store ~src:x ~base ~offset:0;
        B.call "print_int" [ x ];
        B.load ~dst:y ~base ~offset:4;
      ]
  in
  let m = call_machine ~store_load:3 ~call_load:0 in
  let o = Simulator.run m cfg Simulator.no_input in
  let s = o.Simulator.telemetry in
  Alcotest.(check bool) "store-queue stall charged across the call" true
    (s.Trace.mem_interlock_cycles > 0);
  Alcotest.(check int) "no call-interlock on this machine" 0
    s.Trace.call_interlock_cycles;
  Alcotest.(check int) "identity holds" s.Trace.last_issue
    (Trace.stall_total s)

let test_call_heavy_breakdown () =
  (* store; call; load; store; load — the first load is bound by the
     call (larger delay), the second by the store; the two stalls land
     in their own categories and the accounting identity still holds. *)
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let y = Reg.Gen.fresh g Reg.Gpr in
  let z = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    straight_line
      [
        B.store ~src:x ~base ~offset:0;
        B.call "print_int" [ x ];
        B.load ~dst:y ~base ~offset:4;
        B.store ~src:y ~base ~offset:8;
        B.load ~dst:z ~base ~offset:12;
      ]
  in
  let m = call_machine ~store_load:2 ~call_load:3 in
  let o = Simulator.run m cfg Simulator.no_input in
  let s = o.Simulator.telemetry in
  Alcotest.(check bool) "call-bound stall recorded" true
    (s.Trace.call_interlock_cycles > 0);
  Alcotest.(check bool) "store-bound stall recorded" true
    (s.Trace.mem_interlock_cycles > 0);
  Alcotest.(check bool) "call stall larger (delay 3 vs 2)" true
    (s.Trace.call_interlock_cycles > s.Trace.mem_interlock_cycles);
  Alcotest.(check int) "identity holds" s.Trace.last_issue
    (Trace.stall_total s);
  (* The category is visible in serialized telemetry too. *)
  match
    Gis_obs.Json.of_string (Gis_obs.Json.to_string (Trace.to_json s))
  with
  | Error e -> Alcotest.fail e
  | Ok v -> (
      match Gis_obs.Json.member "stalls" v with
      | None -> Alcotest.fail "stalls object missing"
      | Some stalls -> (
          match Gis_obs.Json.member "call_interlock" stalls with
          | Some (Gis_obs.Json.Int n) ->
              Alcotest.(check int) "serialized call_interlock"
                s.Trace.call_interlock_cycles n
          | _ -> Alcotest.fail "stalls.call_interlock missing"))

let test_parallel_units () =
  let g = Reg.Gen.create () in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let kinds = [ B.li ~dst:x 1; B.li ~dst:x 2; B.li ~dst:x 3; B.li ~dst:x 4 ] in
  let narrow = issue_cycles kinds in
  let cfg = straight_line kinds in
  let wide = (Simulator.run (Machine.superscalar ~width:4) cfg Simulator.no_input).Simulator.cycles in
  Alcotest.(check bool)
    (Fmt.str "4-issue (%d) beats 1-issue (%d)" wide narrow)
    true (wide < narrow)

(* The paper's Section 3 estimate: Figure 2 runs in 20-22 cycles per
   iteration depending on how many min/max updates happen. *)
let test_fcompare_branch_delay () =
  let g = Reg.Gen.create () in
  let f0 = Reg.Gen.fresh g Reg.Fpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let cfg =
    B.func ~reg_gen:g
      [
        ("A", [ B.fcmp ~dst:c ~lhs:f0 ~rhs:f0 ],
         B.bt ~cr:c ~cond:Instr.Eq ~taken:"B" ~fallthru:"B");
        ("B", [], Instr.Halt);
      ]
  in
  (* fcmp@0; branch at 0+1+5=6; halt@7; done at 8. *)
  Alcotest.(check int) "5-cycle fcompare->branch" 8 (run cfg).Simulator.cycles

let test_minmax_iteration_bands () =
  let t = Gis_workloads.Minmax.build () in
  (* All elements equal: u > v never holds; max updates... choose inputs
     forcing specific paths. Increasing data: u<v every pair -> the
     "else" arm with one update (max). *)
  let increasing = List.init 32 (fun i -> i * 3) in
  let per_iter =
    Simulator.cycles_per_iteration machine t.Gis_workloads.Minmax.cfg
      ~header:t.Gis_workloads.Minmax.loop_header
      (Gis_workloads.Minmax.input t increasing)
  in
  Alcotest.(check bool) (Fmt.str "band (%f)" per_iter) true
    (per_iter >= 19.0 && per_iter <= 23.0)

let test_cycles_per_iteration_errors () =
  let t = Gis_workloads.Minmax.build () in
  (* n = 1: the loop header is never entered twice. *)
  Alcotest.(check bool) "too few entries" true
    (match
       Simulator.cycles_per_iteration machine t.Gis_workloads.Minmax.cfg
         ~header:t.Gis_workloads.Minmax.loop_header
         (Gis_workloads.Minmax.input t [ 7 ])
     with
    | exception Failure _ -> true
    | _ -> false)

let test_observables_stable () =
  let t = Gis_workloads.Minmax.build () in
  let input = Gis_workloads.Minmax.input t [ 4; 9; 2; 7; 5; 1 ] in
  let a = Simulator.run machine t.Gis_workloads.Minmax.cfg input in
  let b = Simulator.run machine t.Gis_workloads.Minmax.cfg input in
  Alcotest.(check string) "deterministic" (Simulator.observables a)
    (Simulator.observables b);
  let min_v, max_v = Gis_workloads.Minmax.reference_min_max [ 4; 9; 2; 7; 5; 1 ] in
  Alcotest.(check (list string)) "min/max"
    [ Fmt.str "print_int(%d)" min_v; Fmt.str "print_int(%d)" max_v ]
    a.Simulator.output

let () =
  Alcotest.run "gis_sim"
    [
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "div-by-zero" `Quick test_div_by_zero_traps;
          Alcotest.test_case "memory/update" `Quick test_memory_and_update_forms;
          Alcotest.test_case "branches" `Quick test_branches;
          Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "floats" `Quick test_float_path;
        ] );
      ( "timing",
        [
          Alcotest.test_case "delayed load" `Quick test_delayed_load_stall;
          Alcotest.test_case "compare-branch delay" `Quick test_compare_branch_delay;
          Alcotest.test_case "parallel units" `Quick test_parallel_units;
          Alcotest.test_case "detailed store->load" `Quick
            test_detailed_store_load_penalty;
          Alcotest.test_case "store-queue across call" `Quick
            test_store_queue_survives_call;
          Alcotest.test_case "call-heavy breakdown" `Quick
            test_call_heavy_breakdown;
          Alcotest.test_case "fcompare-branch delay" `Quick test_fcompare_branch_delay;
          Alcotest.test_case "minmax 20-22" `Quick test_minmax_iteration_bands;
          Alcotest.test_case "determinism" `Quick test_observables_stable;
          Alcotest.test_case "cycles-per-iteration errors" `Quick
            test_cycles_per_iteration_errors;
        ] );
    ]
