(* Regenerates the Chrome-trace golden file used by test_obs.ml:

     dune exec test/regen_chrome_golden.exe > test/golden_chrome_trace.json

   Keep the program here in lockstep with [diamond_outcome] in
   test_obs.ml — same builder calls, same input — or the golden test
   will (rightly) fail. *)

open Gis_ir
open Gis_machine
open Gis_sim
open Gis_obs

let () =
  let module B = Builder in
  let g = Reg.Gen.create () in
  let p = Reg.Gen.reserve g Reg.Gpr 1 in
  let q = Reg.Gen.reserve g Reg.Gpr 2 in
  let m = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let a1 = Reg.Gen.fresh g Reg.Gpr in
  let t = Reg.Gen.fresh g Reg.Gpr in
  let u = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ( "E",
          [ B.binop Instr.Div ~dst:m ~lhs:p ~rhs:(Instr.Imm 3);
            B.cmpi ~dst:c ~lhs:p 0 ],
          B.bt ~cr:c ~cond:Instr.Gt ~taken:"L" ~fallthru:"R" );
        ("L", [ B.addi ~dst:a1 ~lhs:p 1 ], B.jmp "J");
        ("R", [ B.addi ~dst:a1 ~lhs:q 2 ], B.jmp "J");
        ( "J",
          [ B.add ~dst:t ~lhs:m ~rhs:q; B.add ~dst:u ~lhs:t ~rhs:a1;
            B.call "print_int" [ u ] ],
          Instr.Halt );
      ]
  in
  let input =
    { Simulator.no_input with Simulator.int_regs = [ (p, 41); (q, 7) ] }
  in
  let o = Simulator.run ~trace:true Machine.rs6k cfg input in
  print_string
    (Chrome_trace.to_string ~process_name:"diamond" o.Simulator.telemetry);
  print_newline ()
