(* Register allocation: the linear scan allocates every workload onto
   real register files of various sizes, spill code is priced and
   correct, the verifier actually rejects broken allocations, and the
   pressure-aware scheduling knob is inert when pressure never meets
   the budget. *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_frontend
open Gis_workloads
module B = Builder
module R = Gis_regalloc.Regalloc

let machine = Machine.rs6k

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

let workloads =
  ("minmax", Minmax.source)
  :: List.map
       (fun (p : Spec_proxy.t) -> (p.Spec_proxy.name, p.Spec_proxy.source))
       Spec_proxy.all

(* Same default input rule as gisc and the batch driver. *)
let default_input compiled ~elements ~seed =
  let rng = Prng.create ~seed in
  let arrays =
    List.map
      (fun (name, _, len) ->
        (name, List.init (min len elements) (fun _ -> Prng.int rng 1000)))
      compiled.Codegen.arrays
  in
  let n_binding =
    match List.assoc_opt "n" compiled.Codegen.vars with
    | Some reg -> [ (reg, elements) ]
    | None -> []
  in
  {
    Simulator.no_input with
    Simulator.int_regs = n_binding;
    memory = Codegen.array_input compiled arrays;
  }

let compile_schedule ?regs ?(pressure_aware = false) src =
  Label.reset_fresh_counter ();
  let compiled = Codegen.compile_string src in
  let baseline = Cfg.deep_copy compiled.Codegen.cfg in
  ignore (Pipeline.run machine Config.base baseline);
  let cfg = Cfg.deep_copy compiled.Codegen.cfg in
  let config =
    { Config.speculative with Config.regalloc = true; regs; pressure_aware }
  in
  let stats = Pipeline.run machine config cfg in
  Validate.check_exn cfg;
  (compiled, baseline, cfg, stats)

(* ------------------------------------------------------------------ *)
(* Every workload, several file sizes, full verifier.                  *)
(* ------------------------------------------------------------------ *)

let test_workloads_verify () =
  List.iter
    (fun (name, src) ->
      List.iter
        (fun regs ->
          let compiled, baseline, cfg, stats = compile_schedule ?regs src in
          let input = default_input compiled ~elements:64 ~seed:3 in
          match stats.Pipeline.regalloc with
          | None -> Alcotest.failf "%s: pipeline produced no allocation" name
          | Some alloc -> (
              match
                R.verify ?gprs:regs ?fprs:regs ~machine ~baseline
                  ~allocated:cfg alloc input
              with
              | Ok () -> ()
              | Error m ->
                  Alcotest.failf "%s (regs=%a): %s" name
                    Fmt.(option ~none:(any "default") int)
                    regs m))
        [ None; Some 8; Some 6; Some 5 ])
    workloads

(* ------------------------------------------------------------------ *)
(* Spills appear when the file shrinks, with consistent telemetry.     *)
(* ------------------------------------------------------------------ *)

let test_forced_spills () =
  let _, _, roomy_cfg, roomy = compile_schedule Minmax.source in
  let _, _, tight_cfg, tight = compile_schedule ~regs:6 Minmax.source in
  let roomy_alloc = Option.get roomy.Pipeline.regalloc in
  let tight_alloc = Option.get tight.Pipeline.regalloc in
  Alcotest.(check int) "no spills on the full file" 0
    (List.length roomy_alloc.R.spilled);
  Alcotest.(check bool) "tight file spills" true
    (List.length tight_alloc.R.spilled > 0);
  Alcotest.(check int) "one slot per spilled register"
    (List.length tight_alloc.R.spilled)
    tight_alloc.R.slots;
  Alcotest.(check bool) "reloads inserted" true (tight_alloc.R.spill_loads > 0);
  Alcotest.(check bool) "spill stores inserted" true
    (tight_alloc.R.spill_stores > 0);
  Alcotest.(check bool) "spill code grows the procedure" true
    (Cfg.instr_count tight_cfg > Cfg.instr_count roomy_cfg);
  (* No physical register index strays past its budget. *)
  List.iter
    (fun (s : R.cls_stat) ->
      Alcotest.(check bool)
        (Fmt.str "%a used within budget" Reg.pp_cls s.R.cls)
        true
        (s.R.used <= s.R.budget))
    tight_alloc.R.per_class

let test_file_too_small_to_spill () =
  let _, _, cfg, _ = compile_schedule Minmax.source in
  match R.allocate ~gprs:4 ~fprs:4 machine (Cfg.deep_copy cfg) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "4 GPRs cannot hold minmax and spill code"

(* ------------------------------------------------------------------ *)
(* Condition registers spill through an integer transfer scratch; a    *)
(* file with a single CR cannot even hold the scratch and is rejected. *)
(* ------------------------------------------------------------------ *)

let test_cr_overflow_rejected () =
  let g = Reg.Gen.create () in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let c1 = Reg.Gen.fresh g Reg.Cr in
  let c2 = Reg.Gen.fresh g Reg.Cr in
  (* c1 and c2 are both live out of A: two overlapping CR intervals. *)
  let cfg =
    B.func ~reg_gen:g
      [
        ( "A",
          [ B.li ~dst:x 1; B.cmpi ~dst:c1 ~lhs:x 0; B.cmpi ~dst:c2 ~lhs:x 1 ],
          B.bt ~cr:c1 ~cond:Instr.Gt ~taken:"B" ~fallthru:"B" );
        ("B", [], B.bt ~cr:c2 ~cond:Instr.Gt ~taken:"C" ~fallthru:"C");
        ("C", [], Instr.Halt);
      ]
  in
  let one_cr =
    Machine.make ~name:"one-cr" ~fixed_units:1 ~float_units:1 ~branch_units:1
      ~crs:1 ()
  in
  match R.allocate one_cr cfg with
  | Error m ->
      Alcotest.(check bool) "error mentions the condition register" true
        (contains m "condition register")
  | Ok _ -> Alcotest.fail "two live CRs cannot fit one CR field"

(* Three CR values live at once on a 2-CR machine: the scan must spill
   condition registers through the integer transfer scratch (mfcr/mtcr
   moves around spill loads/stores), the branches on spilled CRs must
   reload through the terminator path, and the allocated code must
   still print the same trace as the symbolic baseline. *)
let cr_pressure_cfg () =
  let g = Reg.Gen.create () in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let v = Reg.Gen.fresh g Reg.Gpr in
  let c1 = Reg.Gen.fresh g Reg.Cr in
  let c2 = Reg.Gen.fresh g Reg.Cr in
  let c3 = Reg.Gen.fresh g Reg.Cr in
  let print_block name k next =
    (name, [ B.li ~dst:v k; B.call "print_int" [ v ] ], B.jmp next)
  in
  let cfg =
    B.func ~reg_gen:g
      [
        ( "A",
          [
            B.li ~dst:x 1;
            B.cmpi ~dst:c1 ~lhs:x 0;
            B.cmpi ~dst:c2 ~lhs:x 1;
            B.cmpi ~dst:c3 ~lhs:x 2;
          ],
          B.bt ~cr:c1 ~cond:Instr.Gt ~taken:"T1" ~fallthru:"F1" );
        print_block "T1" 1 "J1";
        print_block "F1" 2 "J1";
        ("J1", [], B.bt ~cr:c2 ~cond:Instr.Eq ~taken:"T2" ~fallthru:"F2");
        print_block "T2" 3 "J2";
        print_block "F2" 4 "J2";
        ("J2", [], B.bt ~cr:c3 ~cond:Instr.Lt ~taken:"T3" ~fallthru:"F3");
        print_block "T3" 5 "End";
        print_block "F3" 6 "End";
        ("End", [], Instr.Halt);
      ]
  in
  cfg

let two_cr_machine =
  Machine.make ~name:"two-cr" ~fixed_units:1 ~float_units:1 ~branch_units:1
    ~crs:2 ()

let test_cr_spill_roundtrip () =
  let cfg = cr_pressure_cfg () in
  let baseline = Cfg.deep_copy cfg in
  let prov = Gis_obs.Provenance.create () in
  match R.allocate ~prov two_cr_machine cfg with
  | Error m -> Alcotest.failf "CR pressure 3 on 2 CRs should spill: %s" m
  | Ok alloc ->
      Validate.check_exn cfg;
      (* The spill-discipline lint must accept the cr<->gpr transfer
         moves as spill code, not flag them as spill.not-mem. *)
      let lint_errors =
        Gis_check.Check.errors
          (Gis_check.Lint.run ~prov ~staged_slots:(R.staged_slots alloc)
             ~stage:"final" cfg)
      in
      Alcotest.(check int)
        (Fmt.str "lint clean: %a" Fmt.(list Gis_check.Diagnostic.pp)
           lint_errors)
        0
        (List.length lint_errors);
      let spilled_crs =
        List.filter (fun (r, _) -> r.Reg.cls = Reg.Cr) alloc.R.spilled
      in
      Alcotest.(check bool) "at least one CR spilled" true
        (spilled_crs <> []);
      Alcotest.(check bool) "cr transfer moves inserted" true
        (alloc.R.cr_spill_moves > 0);
      (* x=1: c1 is Gt (print 1), c2 is Eq (print 3), c3 is Lt (print 5). *)
      (match
         R.verify ~machine:two_cr_machine ~baseline ~allocated:cfg alloc
           Simulator.no_input
       with
      | Ok () -> ()
      | Error m -> Alcotest.failf "CR spill verify: %s" m);
      let out =
        (Simulator.run ?frame:alloc.R.frame two_cr_machine cfg
           (R.remap_input alloc Simulator.no_input))
          .Simulator.output
      in
      Alcotest.(check (list string))
        "allocated trace"
        [ "print_int(1)"; "print_int(3)"; "print_int(5)" ]
        out

(* The same procedure on the full rs6k CR file must not spill any CR —
   the transfer machinery only engages under real pressure. *)
let test_cr_spill_only_under_pressure () =
  let cfg = cr_pressure_cfg () in
  match R.allocate machine cfg with
  | Error m -> Alcotest.failf "roomy CR file: %s" m
  | Ok alloc ->
      Alcotest.(check int) "no cr transfers" 0 alloc.R.cr_spill_moves;
      Alcotest.(check bool) "no CR spilled" true
        (List.for_all (fun (r, _) -> r.Reg.cls <> Reg.Cr) alloc.R.spilled)

(* ------------------------------------------------------------------ *)
(* The verifier rejects a genuinely broken assignment.                 *)
(* ------------------------------------------------------------------ *)

let test_verifier_catches_conflict () =
  let compiled, baseline, cfg, stats = compile_schedule Minmax.source in
  let alloc = Option.get stats.Pipeline.regalloc in
  let input = default_input compiled ~elements:64 ~seed:3 in
  (* Find two overlapping GPR intervals and force them into the same
     physical register. *)
  let gprs =
    List.filter (fun iv -> iv.R.reg.Reg.cls = Reg.Gpr) alloc.R.intervals
  in
  let overlapping =
    List.find_map
      (fun a ->
        List.find_map
          (fun b ->
            if
              (not (Reg.equal a.R.reg b.R.reg))
              && a.R.start <= b.R.start && b.R.start <= a.R.stop
            then Some (a.R.reg, b.R.reg)
            else None)
          gprs)
      gprs
  in
  match overlapping with
  | None -> Alcotest.fail "minmax has no overlapping GPR intervals?"
  | Some (ra, rb) -> (
      let pa = List.assoc ra alloc.R.assignment in
      let broken =
        {
          alloc with
          R.assignment =
            List.map
              (fun (r, p) -> if Reg.equal r rb then (r, pa) else (r, p))
              alloc.R.assignment;
        }
      in
      match
        R.verify ~machine ~baseline ~allocated:cfg broken input
      with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "verifier accepted overlapping live ranges")

(* ------------------------------------------------------------------ *)
(* Pressure-aware scheduling is inert when the file is large.          *)
(* ------------------------------------------------------------------ *)

let test_pressure_rule_inert_on_roomy_file () =
  (* With 32 registers per class no candidate's import penalty is ever
     non-zero, so the prepended rule compares all-equal and the
     schedule must be byte-identical — the golden-schedule guarantee
     extends to the flag itself as long as pressure stays under
     budget. *)
  let _, _, off_cfg, _ = compile_schedule Minmax.source in
  let _, _, on_cfg, _ = compile_schedule ~pressure_aware:true Minmax.source in
  Alcotest.(check string) "identical schedule"
    (Fmt.str "%a" Cfg.pp off_cfg)
    (Fmt.str "%a" Cfg.pp on_cfg)

let test_pressure_aware_tight_still_correct () =
  List.iter
    (fun (name, src) ->
      let compiled, baseline, cfg, stats =
        compile_schedule ~regs:6 ~pressure_aware:true src
      in
      let input = default_input compiled ~elements:64 ~seed:3 in
      let alloc = Option.get stats.Pipeline.regalloc in
      match
        R.verify ~gprs:6 ~fprs:6 ~machine ~baseline ~allocated:cfg alloc input
      with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s pressure-aware at 6 regs: %s" name m)
    workloads

(* ------------------------------------------------------------------ *)
(* Fuzzer-found reproducers, pinned as corpus fixtures.                *)
(* ------------------------------------------------------------------ *)

module F = Gis_fuzz.Fuzz

(* Each fixture is the shrunk program of a real fuzzer finding from
   before spill storage was isolated / condition registers could spill;
   the header comment in the .tc file records the original failure.
   Replaying the exact failing cell through the full oracle (legality
   checker + allocation verifier + trace comparison against the
   unscheduled reference) must now pass. *)
let corpus_source name =
  let path =
    let candidates =
      [
        Filename.concat "fuzz-corpus" name;
        Filename.concat (Filename.concat ".." "fuzz-corpus") name;
      ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.failf "corpus fixture %s not found" name
  in
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

let test_corpus_fixture ~file ~seed ~cell () =
  let src = corpus_source file in
  Label.reset_fresh_counter ();
  let compiled = Codegen.compile_string src in
  (* The shrinker evaluates candidates under the input derived from the
     original seed, so the fixture must be replayed with exactly that
     input to hit the original failure path. *)
  let input = Random_prog.random_input ~seed compiled in
  let reference =
    Simulator.observables
      (Simulator.run F.reference_machine compiled.Codegen.cfg input)
  in
  match F.run_cell cell compiled input ~reference with
  | Ok () -> ()
  | Error kind ->
      Alcotest.failf "%s still fails in %a: %s" file F.pp_cell cell
        (F.kind_label kind)

(* Seed 532: out-of-bounds program address arithmetic used to read a
   spill slot (check-failure: verifier observable mismatch). *)
let test_corpus_seed532 =
  test_corpus_fixture ~file:"seed532_base_rs6k_ra.tc" ~seed:532
    ~cell:{ F.level = Config.Local; regalloc = true; machine = Machine.rs6k }

(* Seed 658: CR pressure above the file used to crash with "cannot
   spill condition register". *)
let test_corpus_seed658 =
  test_corpus_fixture ~file:"seed658_speculative_rs6k_ra.tc" ~seed:658
    ~cell:
      { F.level = Config.Speculative; regalloc = true; machine = Machine.rs6k }

(* Seed 1741 (no regalloc involved): the checker's off-path clobber
   rule used to flag a speculated definition that a later hoisted
   definition of the same register killed inside the target block —
   a false positive surfaced by the first default-grammar campaign
   over the isolated spill segment. *)
let test_corpus_seed1741 =
  test_corpus_fixture ~file:"seed1741_speculative_superscalar-2_sym.tc"
    ~seed:1741
    ~cell:
      {
        F.level = Config.Speculative;
        regalloc = false;
        machine = Machine.superscalar ~width:2;
      }

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "gis_regalloc"
    [
      ( "allocation",
        [
          Alcotest.test_case "workloads verify" `Quick test_workloads_verify;
          Alcotest.test_case "forced spills" `Quick test_forced_spills;
          Alcotest.test_case "file too small" `Quick
            test_file_too_small_to_spill;
          Alcotest.test_case "cr overflow rejected" `Quick
            test_cr_overflow_rejected;
          Alcotest.test_case "cr spill roundtrip" `Quick
            test_cr_spill_roundtrip;
          Alcotest.test_case "cr spill only under pressure" `Quick
            test_cr_spill_only_under_pressure;
        ] );
      ( "fuzz corpus",
        [
          Alcotest.test_case "seed 532 (spill address isolation)" `Quick
            test_corpus_seed532;
          Alcotest.test_case "seed 658 (cr spilling)" `Quick
            test_corpus_seed658;
          Alcotest.test_case "seed 1741 (off-path kill false positive)"
            `Quick test_corpus_seed1741;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "catches conflicts" `Quick
            test_verifier_catches_conflict;
        ] );
      ( "pressure-aware scheduling",
        [
          Alcotest.test_case "inert on a roomy file" `Quick
            test_pressure_rule_inert_on_roomy_file;
          Alcotest.test_case "correct on a tight file" `Quick
            test_pressure_aware_tight_still_correct;
        ] );
    ]
