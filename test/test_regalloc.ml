(* Register allocation: the linear scan allocates every workload onto
   real register files of various sizes, spill code is priced and
   correct, the verifier actually rejects broken allocations, and the
   pressure-aware scheduling knob is inert when pressure never meets
   the budget. *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_frontend
open Gis_workloads
module B = Builder
module R = Gis_regalloc.Regalloc

let machine = Machine.rs6k

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

let workloads =
  ("minmax", Minmax.source)
  :: List.map
       (fun (p : Spec_proxy.t) -> (p.Spec_proxy.name, p.Spec_proxy.source))
       Spec_proxy.all

(* Same default input rule as gisc and the batch driver. *)
let default_input compiled ~elements ~seed =
  let rng = Prng.create ~seed in
  let arrays =
    List.map
      (fun (name, _, len) ->
        (name, List.init (min len elements) (fun _ -> Prng.int rng 1000)))
      compiled.Codegen.arrays
  in
  let n_binding =
    match List.assoc_opt "n" compiled.Codegen.vars with
    | Some reg -> [ (reg, elements) ]
    | None -> []
  in
  {
    Simulator.no_input with
    Simulator.int_regs = n_binding;
    memory = Codegen.array_input compiled arrays;
  }

let compile_schedule ?regs ?(pressure_aware = false) src =
  Label.reset_fresh_counter ();
  let compiled = Codegen.compile_string src in
  let baseline = Cfg.deep_copy compiled.Codegen.cfg in
  ignore (Pipeline.run machine Config.base baseline);
  let cfg = Cfg.deep_copy compiled.Codegen.cfg in
  let config =
    { Config.speculative with Config.regalloc = true; regs; pressure_aware }
  in
  let stats = Pipeline.run machine config cfg in
  Validate.check_exn cfg;
  (compiled, baseline, cfg, stats)

(* ------------------------------------------------------------------ *)
(* Every workload, several file sizes, full verifier.                  *)
(* ------------------------------------------------------------------ *)

let test_workloads_verify () =
  List.iter
    (fun (name, src) ->
      List.iter
        (fun regs ->
          let compiled, baseline, cfg, stats = compile_schedule ?regs src in
          let input = default_input compiled ~elements:64 ~seed:3 in
          match stats.Pipeline.regalloc with
          | None -> Alcotest.failf "%s: pipeline produced no allocation" name
          | Some alloc -> (
              match
                R.verify ?gprs:regs ?fprs:regs ~machine ~baseline
                  ~allocated:cfg alloc input
              with
              | Ok () -> ()
              | Error m ->
                  Alcotest.failf "%s (regs=%a): %s" name
                    Fmt.(option ~none:(any "default") int)
                    regs m))
        [ None; Some 8; Some 6; Some 5 ])
    workloads

(* ------------------------------------------------------------------ *)
(* Spills appear when the file shrinks, with consistent telemetry.     *)
(* ------------------------------------------------------------------ *)

let test_forced_spills () =
  let _, _, roomy_cfg, roomy = compile_schedule Minmax.source in
  let _, _, tight_cfg, tight = compile_schedule ~regs:6 Minmax.source in
  let roomy_alloc = Option.get roomy.Pipeline.regalloc in
  let tight_alloc = Option.get tight.Pipeline.regalloc in
  Alcotest.(check int) "no spills on the full file" 0
    (List.length roomy_alloc.R.spilled);
  Alcotest.(check bool) "tight file spills" true
    (List.length tight_alloc.R.spilled > 0);
  Alcotest.(check int) "one slot per spilled register"
    (List.length tight_alloc.R.spilled)
    tight_alloc.R.slots;
  Alcotest.(check bool) "reloads inserted" true (tight_alloc.R.spill_loads > 0);
  Alcotest.(check bool) "spill stores inserted" true
    (tight_alloc.R.spill_stores > 0);
  Alcotest.(check bool) "spill code grows the procedure" true
    (Cfg.instr_count tight_cfg > Cfg.instr_count roomy_cfg);
  (* No physical register index strays past its budget. *)
  List.iter
    (fun (s : R.cls_stat) ->
      Alcotest.(check bool)
        (Fmt.str "%a used within budget" Reg.pp_cls s.R.cls)
        true
        (s.R.used <= s.R.budget))
    tight_alloc.R.per_class

let test_file_too_small_to_spill () =
  let _, _, cfg, _ = compile_schedule Minmax.source in
  match R.allocate ~gprs:4 ~fprs:4 machine (Cfg.deep_copy cfg) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "4 GPRs cannot hold minmax and spill code"

(* ------------------------------------------------------------------ *)
(* Condition registers never spill.                                    *)
(* ------------------------------------------------------------------ *)

let test_cr_overflow_rejected () =
  let g = Reg.Gen.create () in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let c1 = Reg.Gen.fresh g Reg.Cr in
  let c2 = Reg.Gen.fresh g Reg.Cr in
  (* c1 and c2 are both live out of A: two overlapping CR intervals. *)
  let cfg =
    B.func ~reg_gen:g
      [
        ( "A",
          [ B.li ~dst:x 1; B.cmpi ~dst:c1 ~lhs:x 0; B.cmpi ~dst:c2 ~lhs:x 1 ],
          B.bt ~cr:c1 ~cond:Instr.Gt ~taken:"B" ~fallthru:"B" );
        ("B", [], B.bt ~cr:c2 ~cond:Instr.Gt ~taken:"C" ~fallthru:"C");
        ("C", [], Instr.Halt);
      ]
  in
  let one_cr =
    Machine.make ~name:"one-cr" ~fixed_units:1 ~float_units:1 ~branch_units:1
      ~crs:1 ()
  in
  match R.allocate one_cr cfg with
  | Error m ->
      Alcotest.(check bool) "error mentions the condition register" true
        (contains m "condition register")
  | Ok _ -> Alcotest.fail "two live CRs cannot fit one CR field"

(* ------------------------------------------------------------------ *)
(* The verifier rejects a genuinely broken assignment.                 *)
(* ------------------------------------------------------------------ *)

let test_verifier_catches_conflict () =
  let compiled, baseline, cfg, stats = compile_schedule Minmax.source in
  let alloc = Option.get stats.Pipeline.regalloc in
  let input = default_input compiled ~elements:64 ~seed:3 in
  (* Find two overlapping GPR intervals and force them into the same
     physical register. *)
  let gprs =
    List.filter (fun iv -> iv.R.reg.Reg.cls = Reg.Gpr) alloc.R.intervals
  in
  let overlapping =
    List.find_map
      (fun a ->
        List.find_map
          (fun b ->
            if
              (not (Reg.equal a.R.reg b.R.reg))
              && a.R.start <= b.R.start && b.R.start <= a.R.stop
            then Some (a.R.reg, b.R.reg)
            else None)
          gprs)
      gprs
  in
  match overlapping with
  | None -> Alcotest.fail "minmax has no overlapping GPR intervals?"
  | Some (ra, rb) -> (
      let pa = List.assoc ra alloc.R.assignment in
      let broken =
        {
          alloc with
          R.assignment =
            List.map
              (fun (r, p) -> if Reg.equal r rb then (r, pa) else (r, p))
              alloc.R.assignment;
        }
      in
      match
        R.verify ~machine ~baseline ~allocated:cfg broken input
      with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "verifier accepted overlapping live ranges")

(* ------------------------------------------------------------------ *)
(* Pressure-aware scheduling is inert when the file is large.          *)
(* ------------------------------------------------------------------ *)

let test_pressure_rule_inert_on_roomy_file () =
  (* With 32 registers per class no candidate's import penalty is ever
     non-zero, so the prepended rule compares all-equal and the
     schedule must be byte-identical — the golden-schedule guarantee
     extends to the flag itself as long as pressure stays under
     budget. *)
  let _, _, off_cfg, _ = compile_schedule Minmax.source in
  let _, _, on_cfg, _ = compile_schedule ~pressure_aware:true Minmax.source in
  Alcotest.(check string) "identical schedule"
    (Fmt.str "%a" Cfg.pp off_cfg)
    (Fmt.str "%a" Cfg.pp on_cfg)

let test_pressure_aware_tight_still_correct () =
  List.iter
    (fun (name, src) ->
      let compiled, baseline, cfg, stats =
        compile_schedule ~regs:6 ~pressure_aware:true src
      in
      let input = default_input compiled ~elements:64 ~seed:3 in
      let alloc = Option.get stats.Pipeline.regalloc in
      match
        R.verify ~gprs:6 ~fprs:6 ~machine ~baseline ~allocated:cfg alloc input
      with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s pressure-aware at 6 regs: %s" name m)
    workloads

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "gis_regalloc"
    [
      ( "allocation",
        [
          Alcotest.test_case "workloads verify" `Quick test_workloads_verify;
          Alcotest.test_case "forced spills" `Quick test_forced_spills;
          Alcotest.test_case "file too small" `Quick
            test_file_too_small_to_spill;
          Alcotest.test_case "cr overflow rejected" `Quick
            test_cr_overflow_rejected;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "catches conflicts" `Quick
            test_verifier_catches_conflict;
        ] );
      ( "pressure-aware scheduling",
        [
          Alcotest.test_case "inert on a roomy file" `Quick
            test_pressure_rule_inert_on_roomy_file;
          Alcotest.test_case "correct on a tight file" `Quick
            test_pressure_aware_tight_still_correct;
        ] );
    ]
