(* Property-based differential testing: the scheduler, at every level and
   under every configuration knob, must preserve the observable
   behaviour (output trace, final memory, termination) of randomly
   generated structured programs. This is the repo's strongest
   correctness evidence: each case compiles a random Tiny-C program,
   schedules it, and compares simulations. *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_frontend
open Gis_workloads

let machine = Test_support.machine
let observe = Test_support.observe
let baseline_compiled = Test_support.baseline_compiled
let baseline_and_input = Test_support.baseline_and_input

let preserves_observables ~config seed =
  let cfg, input = baseline_and_input seed in
  let expected = observe cfg input in
  let scheduled = Cfg.deep_copy cfg in
  ignore (Pipeline.run machine config scheduled);
  Validate.check_exn scheduled;
  String.equal expected (observe scheduled input)

let qtest name count prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count QCheck.(int_range 1 1_000_000) prop)

let prop_local seed = preserves_observables ~config:Config.base seed

let prop_useful seed = preserves_observables ~config:Config.useful_only seed

let prop_speculative seed = preserves_observables ~config:Config.speculative seed

let prop_no_rename seed =
  preserves_observables ~config:{ Config.speculative with Config.rename = false } seed

let prop_no_prune seed =
  preserves_observables
    ~config:{ Config.speculative with Config.prune_transitive = false }
    seed

let prop_no_transforms seed =
  preserves_observables
    ~config:
      {
        Config.speculative with
        Config.unroll_small_loops = false;
        rotate_small_loops = false;
      }
    seed

let prop_degree_2 seed =
  preserves_observables
    ~config:{ Config.speculative with Config.max_speculation_degree = 2 }
    seed

let prop_degree_3_with_webs seed =
  preserves_observables
    ~config:
      {
        Config.speculative with
        Config.max_speculation_degree = 3;
        split_webs = true;
      }
    seed

let prop_webs seed =
  preserves_observables
    ~config:{ Config.speculative with Config.split_webs = true }
    seed

let prop_profile_guided seed =
  (* Profile on one random input, schedule with it, then validate
     observables on a *different* input — speculation gating must never
     be load-bearing for correctness. *)
  let compiled, input = baseline_compiled seed in
  let cfg = compiled.Codegen.cfg in
  let other_input = Random_prog.random_input ~seed:(seed + 5000) compiled in
  let profile_outcome = Simulator.run machine cfg input in
  let scheduled = Cfg.deep_copy cfg in
  ignore
    (Pipeline.run machine
       {
         Config.speculative with
         Config.profile = Some (Simulator.profile_fn profile_outcome);
         min_speculation_probability = 0.4;
       }
       scheduled);
  Validate.check_exn scheduled;
  String.equal (observe cfg input) (observe scheduled input)
  && String.equal (observe cfg other_input) (observe scheduled other_input)

let prop_duplication seed =
  preserves_observables
    ~config:{ Config.speculative with Config.allow_duplication = true }
    seed

let prop_duplication_with_everything seed =
  preserves_observables
    ~config:
      {
        Config.speculative with
        Config.allow_duplication = true;
        split_webs = true;
        max_speculation_degree = 2;
      }
    seed

let prop_detailed_local_machine seed =
  preserves_observables
    ~config:
      { Config.speculative with Config.local_machine = Some Machine.rs6k_detailed }
    seed

let prop_wide_machine seed =
  let cfg, input = baseline_and_input seed in
  let expected = observe cfg input in
  let scheduled = Cfg.deep_copy cfg in
  ignore (Pipeline.run (Machine.superscalar ~width:4) Config.speculative scheduled);
  Validate.check_exn scheduled;
  (* Observables are machine-independent: check against rs6k execution
     of the scheduled code too. *)
  String.equal expected (observe scheduled input)

(* Scheduling twice is still sound (idempotence of correctness, not of
   code): the second pass sees already-moved code. *)
let prop_reschedule seed =
  let cfg, input = baseline_and_input seed in
  let expected = observe cfg input in
  let scheduled = Cfg.deep_copy cfg in
  ignore (Pipeline.run machine Config.speculative scheduled);
  ignore
    (Pipeline.run machine
       {
         Config.speculative with
         Config.unroll_small_loops = false;
         rotate_small_loops = false;
       }
       scheduled);
  Validate.check_exn scheduled;
  String.equal expected (observe scheduled input)

(* Unroll and rotate on their own preserve semantics for arbitrary
   generated programs. *)
let prop_unroll seed =
  let cfg, input = baseline_and_input seed in
  let expected = observe cfg input in
  let t = Cfg.deep_copy cfg in
  ignore (Unroll.unroll_small_inner_loops ~max_blocks:6 t);
  Validate.check_exn t;
  String.equal expected (observe t input)

let prop_rotate seed =
  let cfg, input = baseline_and_input seed in
  let expected = observe cfg input in
  let t = Cfg.deep_copy cfg in
  ignore (Rotate.rotate_small_inner_loops ~max_blocks:6 t);
  Validate.check_exn t;
  String.equal expected (observe t input)

(* Composing the transforms: unrolled-then-rotated loops are still
   semantically equivalent, both as bare transforms and after the full
   pipeline re-schedules the pre-transformed body at every level. *)
let prop_unroll_then_rotate_all_levels seed =
  let cfg, input = baseline_and_input seed in
  let expected = observe cfg input in
  let t = Cfg.deep_copy cfg in
  ignore (Unroll.unroll_small_inner_loops ~max_blocks:6 t);
  ignore (Rotate.rotate_small_inner_loops ~max_blocks:6 t);
  Validate.check_exn t;
  String.equal expected (observe t input)
  && List.for_all
       (fun level ->
         let c = Cfg.deep_copy t in
         ignore (Pipeline.run machine { Config.default with Config.level } c);
         Validate.check_exn c;
         String.equal expected (observe c input))
       [ Config.Local; Config.Useful; Config.Speculative ]

(* Linear-scan allocation on a deliberately small register file: the
   allocated code must verify (disjoint intervals per physical
   register, within budget, evaluator-identical — spill storage lives
   in its own segment, so observables compare exactly). Random
   sampling: the soundness gaps the fuzzer found here (wild program
   addresses aliasing spill slots, CR spill capacity) are fixed and
   pinned as corpus fixtures in test_regalloc. *)
let prop_regalloc_verifies seed =
  let cfg, input = baseline_and_input seed in
  let scheduled = Cfg.deep_copy cfg in
  let config =
    { Config.speculative with Config.regalloc = true; regs = Some 8 }
  in
  let stats = Pipeline.run machine config scheduled in
  Validate.check_exn scheduled;
  match stats.Pipeline.regalloc with
  | None -> false
  | Some alloc -> (
      match
        Gis_regalloc.Regalloc.verify ~gprs:8 ~fprs:8 ~machine ~baseline:cfg
          ~allocated:scheduled alloc input
      with
      | Ok () -> true
      | Error _ -> false)

(* Dominators from the optimized algorithm agree with the naive
   reference on every generated CFG. *)
let prop_dominance seed =
  let cfg, _ = baseline_and_input seed in
  let flow = Gis_analysis.Flow.of_cfg ~entry:(Cfg.entry cfg) cfg in
  let dom = Gis_analysis.Dominance.compute flow in
  let naive = Gis_analysis.Dominance.naive_dominators flow in
  let ok = ref true in
  for a = 0 to flow.Gis_analysis.Flow.num_nodes - 1 do
    for b = 0 to flow.Gis_analysis.Flow.num_nodes - 1 do
      let fast = Gis_analysis.Dominance.dominates dom a b in
      let slow =
        (not (Gis_util.Ints.Int_set.is_empty naive.(b)))
        && Gis_util.Ints.Int_set.mem a naive.(b)
      in
      if fast <> slow then ok := false
    done
  done;
  !ok

(* Region dependence graphs are acyclic, and every edge goes from a
   node to one in the same or a reachable view node. *)
let prop_ddg_wellformed seed =
  let cfg, _ = baseline_and_input seed in
  let regions = Gis_analysis.Regions.compute cfg in
  List.for_all
    (fun region ->
      match Gis_analysis.Regions.view cfg regions region with
      | exception Invalid_argument _ -> true
      | view ->
          let ddg = Gis_ddg.Ddg.build cfg machine regions view in
          let reach =
            Gis_analysis.Flow.reachable_matrix view.Gis_analysis.Regions.flow
          in
          let ok = ref (Gis_ddg.Ddg.is_acyclic ddg) in
          Gis_ddg.Ddg.iter_edges
            (fun e ->
              let va = (Gis_ddg.Ddg.node ddg e.Gis_ddg.Ddg.src).Gis_ddg.Ddg.view_node in
              let vb = (Gis_ddg.Ddg.node ddg e.Gis_ddg.Ddg.dst).Gis_ddg.Ddg.view_node in
              if not reach.(va).(vb) then ok := false)
            ddg;
          !ok)
    (Gis_analysis.Regions.regions regions)

(* Memory disambiguation only ever removes constraints: every edge of
   the symbolically refined DDG is present in the conservative one, on
   every region of every generated program. Node indices agree because
   [sym] affects only the edge decisions, never the node layout. *)
let prop_disambig_subset seed =
  let cfg, _ = baseline_and_input seed in
  let sym = Gis_analysis.Symaddr.compute cfg in
  let regions = Gis_analysis.Regions.compute cfg in
  List.for_all
    (fun region ->
      match Gis_analysis.Regions.view cfg regions region with
      | exception Invalid_argument _ -> true
      | view ->
          let refined = Gis_ddg.Ddg.build ~sym cfg machine regions view in
          let conservative = Gis_ddg.Ddg.build cfg machine regions view in
          let cons = Hashtbl.create 64 in
          Gis_ddg.Ddg.iter_edges
            (fun (e : Gis_ddg.Ddg.edge) ->
              Hashtbl.replace cons
                (e.Gis_ddg.Ddg.src, e.Gis_ddg.Ddg.dst, e.Gis_ddg.Ddg.kind)
                ())
            conservative;
          let subset = ref true in
          Gis_ddg.Ddg.iter_edges
            (fun (e : Gis_ddg.Ddg.edge) ->
              if
                not
                  (Hashtbl.mem cons
                     ( e.Gis_ddg.Ddg.src,
                       e.Gis_ddg.Ddg.dst,
                       e.Gis_ddg.Ddg.kind ))
              then subset := false)
            refined;
          !subset
          && Gis_ddg.Ddg.num_edges refined
             <= Gis_ddg.Ddg.num_edges conservative)
    (Gis_analysis.Regions.regions regions)

(* Disambiguation-on schedules at every level and machine width are
   certified by the static checker (every pruned edge re-proved from
   the stage's own input by the independent checker-side analysis) and
   still reproduce the unscheduled observables. *)
let prop_disambig_checked seed =
  let cfg0, input = baseline_and_input seed in
  let expected = observe cfg0 input in
  List.for_all
    (fun (level, width) ->
      let m = Machine.superscalar ~width in
      let scheduled = Cfg.deep_copy cfg0 in
      let prov = Gis_obs.Provenance.create () in
      let collector =
        Gis_check.Check.collector ~prov
          ~max_speculation_degree:
            Config.default.Config.max_speculation_degree ()
      in
      let config =
        {
          Config.default with
          Config.level;
          prov = Some prov;
          check = Some (Gis_check.Check.hook collector);
        }
      in
      ignore (Pipeline.run m config scheduled);
      Validate.check_exn scheduled;
      Gis_check.Check.errors
        (List.concat_map snd (Gis_check.Check.diagnostics collector))
      = []
      && String.equal expected (observe scheduled input))
    [ (Config.Local, 1); (Config.Useful, 2); (Config.Speculative, 4) ]

(* The --no-disambig control configuration is itself sound. *)
let prop_no_disambig seed =
  preserves_observables
    ~config:{ Config.speculative with Config.disambiguate = false }
    seed

(* Liveness is a sound upper bound: running the program never reads a
   register that liveness considers dead at the entry... approximated
   here by the cheaper internal-consistency property live_in >=
   use U (live_out - def). *)
let prop_liveness_consistent seed =
  let cfg, _ = baseline_and_input seed in
  let live = Gis_analysis.Liveness.compute cfg in
  List.for_all
    (fun id ->
      let b = Cfg.block cfg id in
      let out = Gis_analysis.Liveness.live_out live id in
      let inn = Gis_analysis.Liveness.live_in live id in
      (* Successor consistency. *)
      List.for_all
        (fun (s, _) ->
          Reg.Set.subset (Gis_analysis.Liveness.live_in live s) out)
        (Cfg.successors cfg id)
      &&
      (* Transfer consistency: anything live out and not defined in the
         block is live in. *)
      let defs =
        List.concat_map Instr.defs (Block.instrs b) |> Reg.Set.of_list
      in
      Reg.Set.subset (Reg.Set.diff out defs) inn)
    (Cfg.layout cfg)

(* The paper's minmax on random inputs at every level. *)
let prop_minmax_all_levels seed =
  let rng = Prng.create ~seed in
  let elements = List.init (2 * (2 + Prng.int rng 30)) (fun _ -> Prng.int rng 2000 - 1000) in
  let t = Minmax.build () in
  let input = Minmax.input t elements in
  let expected = observe t.Minmax.cfg input in
  List.for_all
    (fun level ->
      let c = Cfg.deep_copy t.Minmax.cfg in
      ignore
        (Pipeline.run machine
           { Config.default with Config.level } c);
      Validate.check_exn c;
      String.equal expected (observe c input))
    [ Config.Local; Config.Useful; Config.Speculative ]

(* The batch driver is deterministic in the worker count: scheduling a
   batch of random Tiny-C programs with one domain and with four must
   produce byte-identical results (code, observables, cycle counts, and
   the scrubbed JSON report). The seed picks the batch; the batch picks
   everything else. *)
let prop_driver_jobs_deterministic seed =
  let tasks =
    Gis_driver.Driver.corpus_tasks
      ~seeds:(List.init 6 (fun i -> (seed * 7) + i))
  in
  let run jobs =
    Gis_driver.Driver.run ~jobs machine Config.speculative tasks
  in
  let seq = run 1 and par = run 4 in
  let json r =
    Gis_obs.Json.to_string
      (Gis_driver.Driver.report_to_json ~deterministic:true r)
  in
  seq.Gis_driver.Driver.pool.Gis_driver.Driver.failed = 0
  && String.equal (json seq) (json par)

let () =
  Alcotest.run "gis_props"
    [
      ( "scheduling preserves observables",
        [
          qtest "local" 60 prop_local;
          qtest "useful" 60 prop_useful;
          qtest "speculative" 60 prop_speculative;
          qtest "no-rename" 40 prop_no_rename;
          qtest "no-prune" 40 prop_no_prune;
          qtest "no-transforms" 40 prop_no_transforms;
          qtest "wide machine" 40 prop_wide_machine;
          qtest "reschedule" 30 prop_reschedule;
          qtest "degree 2" 40 prop_degree_2;
          qtest "degree 3 + webs" 40 prop_degree_3_with_webs;
          qtest "webs" 40 prop_webs;
          qtest "profile-guided" 40 prop_profile_guided;
          qtest "detailed local machine" 40 prop_detailed_local_machine;
          qtest "duplication" 60 prop_duplication;
          qtest "duplication + everything" 40 prop_duplication_with_everything;
          qtest "no-disambig control" 40 prop_no_disambig;
        ] );
      ( "memory disambiguation",
        [
          qtest "pruned DDG is a subset" 40 prop_disambig_subset;
          qtest "checked at all levels x widths" 25 prop_disambig_checked;
        ] );
      ( "transforms preserve observables",
        [
          qtest "unroll" 40 prop_unroll;
          qtest "rotate" 40 prop_rotate;
          qtest "unroll then rotate, all levels" 40
            prop_unroll_then_rotate_all_levels;
        ] );
      ( "register allocation",
        [ qtest "tight file verifies" 40 prop_regalloc_verifies ] );
      ( "batch driver determinism",
        [ qtest "jobs 1 = jobs 4" 12 prop_driver_jobs_deterministic ] );
      ( "analysis invariants",
        [
          qtest "dominance vs naive" 40 prop_dominance;
          qtest "ddg wellformed" 30 prop_ddg_wellformed;
          qtest "liveness consistent" 40 prop_liveness_consistent;
          qtest "minmax all levels" 30 prop_minmax_all_levels;
        ] );
    ]
