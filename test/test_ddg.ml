open Gis_ir
open Gis_machine
open Gis_analysis
open Gis_ddg
module B = Builder

let machine = Machine.rs6k

let single_block ?reg_gen kinds term =
  let cfg = Cfg.create ?reg_gen () in
  let b = Cfg.add_block cfg ~label:"X" in
  Cfg.set_entry cfg b.Block.id;
  List.iter
    (fun k -> Gis_util.Vec.push b.Block.body (Cfg.make_instr cfg k))
    kinds;
  b.Block.term <- Cfg.make_instr cfg term;
  b

let edge_set ddg =
  let edges = ref [] in
  Ddg.iter_edges
    (fun e -> edges := (e.Ddg.src, e.Ddg.dst, e.Ddg.kind, e.Ddg.delay) :: !edges)
    ddg;
  List.sort compare !edges

(* The paper's BL1 example (Section 4.2): anti I1->I2; flow I2->I3 with a
   one-cycle delay (delayed load); flow I3->I4 with a three-cycle delay
   (compare to branch); flow I1->I3 is transitive and prunable. *)
let test_bl1_dependences () =
  let g = Reg.Gen.create () in
  let u = Reg.Gen.reserve g Reg.Gpr 12 in
  let v = Reg.Gen.reserve g Reg.Gpr 0 in
  let addr = Reg.Gen.reserve g Reg.Gpr 31 in
  let cr7 = Reg.Gen.reserve g Reg.Cr 7 in
  let b =
    single_block ~reg_gen:g
      [
        B.load ~dst:u ~base:addr ~offset:4;
        B.load_update ~dst:v ~base:addr ~offset:8;
        B.cmp ~dst:cr7 ~lhs:u ~rhs:v;
      ]
      (B.bf ~cr:cr7 ~cond:Instr.Gt ~taken:"X" ~fallthru:"X")
  in
  let ddg = Ddg.build_single_block machine b in
  Alcotest.(check int) "four nodes" 4 (Ddg.num_nodes ddg);
  let edges = edge_set ddg in
  Alcotest.(check bool) "anti I1->I2" true
    (List.exists (fun (s, d, k, _) -> s = 0 && d = 1 && k = Ddg.Anti) edges);
  Alcotest.(check bool) "flow I2->I3 delay 1" true
    (List.mem (1, 2, Ddg.Flow, 1) edges);
  Alcotest.(check bool) "flow I1->I3 delay 1" true
    (List.mem (0, 2, Ddg.Flow, 1) edges);
  Alcotest.(check bool) "flow I3->I4 delay 3" true
    (List.mem (2, 3, Ddg.Flow, 3) edges);
  let pruned = Ddg.prune_transitive ddg in
  let edges' = edge_set pruned in
  Alcotest.(check bool) "I1->I3 pruned as transitive" false
    (List.mem (0, 2, Ddg.Flow, 1) edges');
  Alcotest.(check bool) "I2->I3 kept" true (List.mem (1, 2, Ddg.Flow, 1) edges');
  Alcotest.(check bool) "I3->I4 kept" true (List.mem (2, 3, Ddg.Flow, 3) edges');
  Alcotest.(check bool) "still acyclic" true (Ddg.is_acyclic pruned)

let test_output_dependence () =
  let g = Reg.Gen.create () in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let b = single_block ~reg_gen:g [ B.li ~dst:x 1; B.li ~dst:x 2 ] Instr.Halt in
  let ddg = Ddg.build_single_block machine b in
  Alcotest.(check bool) "output edge" true
    (List.exists
       (fun (s, d, k, _) -> s = 0 && d = 1 && k = Ddg.Output)
       (edge_set ddg))

let mem_edges ddg =
  List.filter (fun (_, _, k, _) -> k = Ddg.Mem) (edge_set ddg)

let test_mem_disambiguation () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let y = Reg.Gen.fresh g Reg.Gpr in
  let build kinds =
    Ddg.build_single_block machine (single_block ~reg_gen:g kinds Instr.Halt)
  in
  let ddg =
    build [ B.store ~src:x ~base ~offset:0; B.load ~dst:y ~base ~offset:4 ]
  in
  Alcotest.(check int) "disjoint store/load" 0 (List.length (mem_edges ddg));
  let ddg =
    build [ B.store ~src:x ~base ~offset:0; B.load ~dst:y ~base ~offset:0 ]
  in
  Alcotest.(check int) "aliasing store/load" 1 (List.length (mem_edges ddg));
  let ddg =
    build [ B.load ~dst:x ~base ~offset:0; B.load ~dst:y ~base ~offset:0 ]
  in
  Alcotest.(check int) "load/load never conflict" 0 (List.length (mem_edges ddg));
  (* Redefining the base breaks positional disambiguation: the stores at
     "+8 before" and "+0 after" may hit the same cell, so they must stay
     ordered even though base register and offsets differ textually. *)
  let ddg =
    build
      [
        B.store ~src:x ~base ~offset:8;
        B.addi ~dst:base ~lhs:base 8;
        B.store ~src:x ~base ~offset:0;
      ]
  in
  Alcotest.(check bool) "across version change conflicts" true
    (List.exists (fun (s, d, _, _) -> s = 0 && d = 2) (mem_edges ddg))

(* Symbolic refinement: the affine analysis proves disjointness across
   a base redefinition, where the positional scan must keep the edge —
   and keeps the edge when the shifted ranges do overlap. *)
let test_symbolic_pruning () =
  let build ~offset0 ~sym =
    let g = Reg.Gen.create () in
    let base = Reg.Gen.fresh g Reg.Gpr in
    let x = Reg.Gen.fresh g Reg.Gpr in
    let cfg =
      B.func ~reg_gen:g
        [
          ( "A",
            [
              B.store ~src:x ~base ~offset:offset0;
              B.addi ~dst:base ~lhs:base 8;
              B.store ~src:x ~base ~offset:0;
            ],
            Instr.Halt );
        ]
    in
    let sym = if sym then Some (Symaddr.compute cfg) else None in
    Ddg.build_single_block ?sym machine (Cfg.block_of_label cfg "A")
  in
  (* base+0 then (base+8)+0: bytes [0,4) vs [8,12) — provably disjoint. *)
  let ddg = build ~offset0:0 ~sym:true in
  Alcotest.(check int) "shifted disjoint stores pruned" 0
    (List.length (mem_edges ddg));
  Alcotest.(check int) "pruned tally" 1 (Ddg.mem_pruned ddg);
  Alcotest.(check int) "kept tally" 0 (Ddg.mem_kept ddg);
  let ddg = build ~offset0:0 ~sym:false in
  Alcotest.(check int) "same pair kept without the analysis" 1
    (List.length (mem_edges ddg));
  Alcotest.(check int) "kept tally without" 1 (Ddg.mem_kept ddg);
  (* base+8 then (base+8)+0: both name bytes [8,12) — must stay. *)
  let ddg = build ~offset0:8 ~sym:true in
  Alcotest.(check int) "overlapping pair kept" 1
    (List.length (mem_edges ddg))

(* Memory families: an integer and a floating-point access live in
   architecturally disjoint memories, so no analysis is needed. *)
let test_family_pruning () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let f = Reg.Gen.fresh g Reg.Fpr in
  let b =
    single_block ~reg_gen:g
      [ B.store ~src:x ~base ~offset:0; B.store ~src:f ~base ~offset:0 ]
      Instr.Halt
  in
  let ddg = Ddg.build_single_block machine b in
  Alcotest.(check int) "cross-family stores independent" 0
    (List.length (mem_edges ddg));
  Alcotest.(check int) "family prune counted" 1 (Ddg.mem_pruned ddg)

(* Inter-block: the reaching-definition rule loses the base across a
   redefinition, the symbolic analysis carries it through. *)
let test_interblock_symbolic_pruning () =
  let build ~sym =
    let g = Reg.Gen.create () in
    let base = Reg.Gen.fresh g Reg.Gpr in
    let x = Reg.Gen.fresh g Reg.Gpr in
    let y = Reg.Gen.fresh g Reg.Gpr in
    let cfg =
      B.func ~reg_gen:g
        [
          ( "B1",
            [ B.store ~src:x ~base ~offset:0; B.addi ~dst:base ~lhs:base 8 ],
            B.jmp "B2" );
          ("B2", [ B.load ~dst:y ~base ~offset:0 ], Instr.Halt);
        ]
    in
    let regions = Regions.compute cfg in
    let top = List.hd (Regions.regions regions) in
    let view = Regions.view cfg regions top in
    let sym = if sym then Some (Symaddr.compute cfg) else None in
    let ddg = Ddg.build ?sym cfg machine regions view in
    let s =
      Option.get
        (Ddg.node_of_uid ddg
           (Instr.uid
              (Gis_util.Vec.get (Cfg.block_of_label cfg "B1").Block.body 0)))
    in
    let l =
      Option.get
        (Ddg.node_of_uid ddg
           (Instr.uid
              (Gis_util.Vec.get (Cfg.block_of_label cfg "B2").Block.body 0)))
    in
    List.exists
      (fun (e : Ddg.edge) -> e.Ddg.dst = l && e.Ddg.kind = Ddg.Mem)
      (Ddg.succs ddg s)
  in
  Alcotest.(check bool) "kept by the reaching-definition rule" true
    (build ~sym:false);
  Alcotest.(check bool) "pruned by the symbolic analysis" false
    (build ~sym:true)

let test_call_barrier () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let b =
    single_block ~reg_gen:g
      [
        B.load ~dst:x ~base ~offset:0;
        B.call "f" [];
        B.store ~src:x ~base ~offset:4;
      ]
      Instr.Halt
  in
  let ddg = Ddg.build_single_block machine b in
  let mem = mem_edges ddg in
  Alcotest.(check bool) "load before call" true
    (List.exists (fun (s, d, _, _) -> s = 0 && d = 1) mem);
  Alcotest.(check bool) "call before store" true
    (List.exists (fun (s, d, _, _) -> s = 1 && d = 2) mem)

(* ---- region DDG over the minmax loop ---- *)

let minmax_ddg () =
  let t = Gis_workloads.Minmax.build () in
  let cfg = t.Gis_workloads.Minmax.cfg in
  let regions = Regions.compute cfg in
  let region =
    List.find (fun r -> r.Regions.loop <> None) (Regions.regions regions)
  in
  let view = Regions.view cfg regions region in
  (cfg, view, Ddg.build cfg machine regions view)

let test_minmax_region_ddg () =
  let cfg, view, ddg = minmax_ddg () in
  (* The paper's 20 instructions plus three explicit jumps that the
     published listing expresses as fallthrough (BL3, BL7, BL9). *)
  Alcotest.(check int) "twenty-three instructions" 23 (Ddg.num_nodes ddg);
  Alcotest.(check bool) "acyclic" true (Ddg.is_acyclic ddg);
  for v = 0 to view.Regions.flow.Flow.num_nodes - 1 do
    List.iter
      (fun i ->
        Alcotest.(check int) "view node consistent" v
          (Ddg.node ddg i).Ddg.view_node)
      (Ddg.nodes_of_view_node ddg v)
  done;
  (* Interblock anti dependence: I4 (BL1's branch, uses cr7) must precede
     I8 (CL.6's compare, defines cr7). *)
  let uid_of_term label = Instr.uid (Cfg.block_of_label cfg label).Block.term in
  let uid_of_body label idx =
    Instr.uid (Gis_util.Vec.get (Cfg.block_of_label cfg label).Block.body idx)
  in
  let n4 = Option.get (Ddg.node_of_uid ddg (uid_of_term "CL.0")) in
  let n8 = Option.get (Ddg.node_of_uid ddg (uid_of_body "CL.6" 0)) in
  Alcotest.(check bool) "anti I4->I8" true
    (List.exists
       (fun (e : Ddg.edge) -> e.Ddg.dst = n8 && e.Ddg.kind = Ddg.Anti)
       (Ddg.succs ddg n4));
  (* Flow across blocks: I2 (defines r0/v) feeds I8 (uses v). *)
  let n2 = Option.get (Ddg.node_of_uid ddg (uid_of_body "CL.0" 1)) in
  Alcotest.(check bool) "flow I2->I8" true
    (List.exists
       (fun (e : Ddg.edge) -> e.Ddg.dst = n8 && e.Ddg.kind = Ddg.Flow)
       (Ddg.succs ddg n2));
  (* No dependence between mutually unreachable blocks: I5 (BL2) and
     I12 (CL.4) both write cr6, yet no edge links them. *)
  let n5 = Option.get (Ddg.node_of_uid ddg (uid_of_body "BL2" 0)) in
  let n12 = Option.get (Ddg.node_of_uid ddg (uid_of_body "CL.4" 0)) in
  Alcotest.(check bool) "disjoint paths carry no edge" false
    (List.exists (fun (e : Ddg.edge) -> e.Ddg.dst = n12) (Ddg.succs ddg n5)
    || List.exists (fun (e : Ddg.edge) -> e.Ddg.dst = n5) (Ddg.succs ddg n12))

(* Pruning must leave, for every original edge, a surviving path whose
   accumulated timing constraint is at least as strong. *)
let test_prune_preserves_constraints () =
  let _, _, ddg = minmax_ddg () in
  let pruned = Ddg.prune_transitive ddg in
  Alcotest.(check bool) "monotone size" true
    (Ddg.num_edges pruned <= Ddg.num_edges ddg);
  let n = Ddg.num_nodes pruned in
  (* weight of an edge: what it forces between issue(src) and issue(dst). *)
  let weight (e : Ddg.edge) =
    match e.Ddg.kind with
    | Ddg.Flow -> Ddg.exec_time pruned e.Ddg.src + e.Ddg.delay
    | Ddg.Anti | Ddg.Output | Ddg.Mem -> e.Ddg.delay
  in
  let longest_from src =
    let dist = Array.make n min_int in
    dist.(src) <- 0;
    (* The region DDG is a DAG; simple relaxation to a fixpoint. *)
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 0 to n - 1 do
        if dist.(i) > min_int then
          List.iter
            (fun e ->
              let cand = dist.(i) + weight e in
              if cand > dist.(e.Ddg.dst) then begin
                dist.(e.Ddg.dst) <- cand;
                changed := true
              end)
            (Ddg.succs pruned i)
      done
    done;
    dist
  in
  let cache = Hashtbl.create 16 in
  Ddg.iter_edges
    (fun e ->
      let dist =
        match Hashtbl.find_opt cache e.Ddg.src with
        | Some d -> d
        | None ->
            let d = longest_from e.Ddg.src in
            Hashtbl.add cache e.Ddg.src d;
            d
      in
      let w =
        match e.Ddg.kind with
        | Ddg.Flow -> Ddg.exec_time ddg e.Ddg.src + e.Ddg.delay
        | Ddg.Anti | Ddg.Output | Ddg.Mem -> e.Ddg.delay
      in
      Alcotest.(check bool)
        (Fmt.str "constraint %d->%d preserved" e.Ddg.src e.Ddg.dst)
        true
        (dist.(e.Ddg.dst) >= w))
    ddg

(* Inter-block disambiguation: same reaching base definition at both
   references proves base equality across blocks. *)
let test_interblock_disambiguation () =
  let build body2 =
    let g = Reg.Gen.create () in
    let base = Reg.Gen.fresh g Reg.Gpr in
    let x = Reg.Gen.fresh g Reg.Gpr in
    let y = Reg.Gen.fresh g Reg.Gpr in
    let mid =
      match body2 with
      | `Straight -> []
      | `Clobber_base -> [ B.addi ~dst:base ~lhs:base 8 ]
    in
    let cfg =
      B.func ~reg_gen:g
        [
          ("B1",
           [ B.li ~dst:base 512; B.store ~src:x ~base ~offset:0 ] @ mid,
           B.jmp "B2");
          ("B2", [ B.load ~dst:y ~base ~offset:4 ], Instr.Halt);
        ]
    in
    let regions = Regions.compute cfg in
    let top = List.hd (Regions.regions regions) in
    let view = Regions.view cfg regions top in
    let ddg = Ddg.build cfg machine regions view in
    let store_uid =
      Instr.uid (Gis_util.Vec.get (Cfg.block_of_label cfg "B1").Block.body 1)
    in
    let load_uid =
      Instr.uid (Gis_util.Vec.get (Cfg.block_of_label cfg "B2").Block.body 0)
    in
    let s = Option.get (Ddg.node_of_uid ddg store_uid) in
    let l = Option.get (Ddg.node_of_uid ddg load_uid) in
    List.exists
      (fun (e : Ddg.edge) -> e.Ddg.dst = l && e.Ddg.kind = Ddg.Mem)
      (Ddg.succs ddg s)
  in
  Alcotest.(check bool) "same base, distinct offsets: independent" false
    (build `Straight);
  Alcotest.(check bool) "base redefined between: ordered" true
    (build `Clobber_base)

(* Memory edges carry the machine's secondary delay on the detailed
   model. *)
let test_mem_edge_delay () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let y = Reg.Gen.fresh g Reg.Gpr in
  let b =
    single_block ~reg_gen:g
      [ B.store ~src:x ~base ~offset:0; B.load ~dst:y ~base ~offset:0 ]
      Instr.Halt
  in
  let simple = Ddg.build_single_block Machine.rs6k b in
  let detailed = Ddg.build_single_block Machine.rs6k_detailed b in
  let mem_delay ddg =
    List.filter_map
      (fun (_, _, k, d) -> if k = Ddg.Mem then Some d else None)
      (edge_set ddg)
  in
  Alcotest.(check (list int)) "simple model: zero" [ 0 ] (mem_delay simple);
  Alcotest.(check (list int)) "detailed model: one" [ 1 ] (mem_delay detailed)

let test_summary_nodes () =
  (* Build a program with an inner loop between two blocks that touch
     the same register; check that the outer region's DDG routes the
     dependence through the summary node. *)
  let g = Reg.Gen.create () in
  let acc = Reg.Gen.fresh g Reg.Gpr in
  let i = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let cfg =
    B.func ~reg_gen:g
      [
        ("PRE", [ B.li ~dst:acc 5; B.li ~dst:i 0 ], B.jmp "H");
        ("H", [ B.cmpi ~dst:c ~lhs:i 4 ],
         B.bt ~cr:c ~cond:Instr.Lt ~taken:"BODY" ~fallthru:"POST");
        ("BODY",
         [ B.add ~dst:acc ~lhs:acc ~rhs:i; B.addi ~dst:i ~lhs:i 1 ],
         B.jmp "H");
        ("POST", [ B.call "print_int" [ acc ] ], Instr.Halt);
      ]
  in
  let regions = Regions.compute cfg in
  let top = List.find (fun r -> r.Regions.loop = None) (Regions.regions regions) in
  let view = Regions.view cfg regions top in
  let ddg = Ddg.build cfg machine regions view in
  (* Find the summary node. *)
  let summary = ref None in
  for k = 0 to Ddg.num_nodes ddg - 1 do
    if (Ddg.node ddg k).Ddg.instr = None then summary := Some k
  done;
  let s = Option.get !summary in
  Alcotest.(check bool) "summary defines acc" true
    (Reg.Set.mem acc (Ddg.node ddg s).Ddg.defs);
  (* acc's initialisation flows into the summary, and the summary flows
     into the print. *)
  let pre = Cfg.block_of_label cfg "PRE" in
  let li_acc = Option.get (Ddg.node_of_uid ddg (Instr.uid (Gis_util.Vec.get pre.Block.body 0))) in
  Alcotest.(check bool) "li acc -> summary" true
    (List.exists (fun (e : Ddg.edge) -> e.Ddg.dst = s) (Ddg.succs ddg li_acc));
  let post = Cfg.block_of_label cfg "POST" in
  let print_node =
    Option.get (Ddg.node_of_uid ddg (Instr.uid (Gis_util.Vec.get post.Block.body 0)))
  in
  Alcotest.(check bool) "summary -> print" true
    (List.exists (fun (e : Ddg.edge) -> e.Ddg.dst = print_node) (Ddg.succs ddg s))

let () =
  Alcotest.run "gis_ddg"
    [
      ( "intra-block",
        [
          Alcotest.test_case "paper BL1" `Quick test_bl1_dependences;
          Alcotest.test_case "output dep" `Quick test_output_dependence;
          Alcotest.test_case "mem disambiguation" `Quick test_mem_disambiguation;
          Alcotest.test_case "symbolic pruning" `Quick test_symbolic_pruning;
          Alcotest.test_case "family pruning" `Quick test_family_pruning;
          Alcotest.test_case "call barrier" `Quick test_call_barrier;
        ] );
      ( "region",
        [
          Alcotest.test_case "minmax" `Quick test_minmax_region_ddg;
          Alcotest.test_case "interblock disambiguation" `Quick
            test_interblock_disambiguation;
          Alcotest.test_case "interblock symbolic pruning" `Quick
            test_interblock_symbolic_pruning;
          Alcotest.test_case "mem edge delay" `Quick test_mem_edge_delay;
          Alcotest.test_case "prune-safe" `Quick test_prune_preserves_constraints;
          Alcotest.test_case "summary nodes" `Quick test_summary_nodes;
        ] );
    ]
