(* Schedule-quality bounds (Gis_bounds): the lower bound must never
   exceed the achieved issue span, and the accounting identity
   (achieved = lower bound + attributed gap, per region and
   program-wide) must be exact — on the paper's workloads at every
   level, on hand-built programs where each bound kind dominates, and
   on random programs across machines, levels and register
   allocation. *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_frontend
module Bounds = Gis_bounds.Bounds

let rs6k = Machine.rs6k

let bound_of_cfg ~machine ~config cfg0 input =
  let cfg = Cfg.deep_copy cfg0 in
  let stats = Pipeline.run machine config cfg in
  let sched_input, frame =
    match stats.Pipeline.regalloc with
    | Some alloc ->
        ( Gis_regalloc.Regalloc.remap_input alloc input,
          alloc.Gis_regalloc.Regalloc.frame )
    | None -> (input, None)
  in
  let os = Simulator.run ?frame machine cfg sched_input in
  ( Bounds.compute ~machine
      ~halted:(os.Simulator.stop = Simulator.Halted)
      cfg os.Simulator.telemetry,
    os )

let sound (b : Bounds.t) =
  Bounds.identity_holds b && b.Bounds.lower_bound <= b.Bounds.achieved
  && b.Bounds.gap >= 0

(* ---- exact identity on every workload x level ---- *)

let test_workload_identity () =
  List.iter
    (fun (name, (cfg0, input)) ->
      List.iter
        (fun level ->
          let config = Test_support.config_of_level level in
          let b, _ = bound_of_cfg ~machine:rs6k ~config cfg0 input in
          let ctx = name ^ "/" ^ Test_support.level_name level in
          Alcotest.(check bool) (ctx ^ " identity") true (Bounds.identity_holds b);
          Alcotest.(check bool)
            (ctx ^ " bound <= achieved") true
            (b.Bounds.lower_bound <= b.Bounds.achieved);
          Alcotest.(check int)
            (ctx ^ " bound = max(cp,res)")
            (max b.Bounds.cp_lb b.Bounds.res_lb)
            b.Bounds.lower_bound;
          Alcotest.(check int)
            (ctx ^ " credits sum to gap") b.Bounds.gap
            (List.fold_left
               (fun acc (c : Bounds.credit) -> acc + c.Bounds.cycles)
               0 b.Bounds.credits))
        [ `Local; `Useful; `Speculative ])
    (Test_support.standard_programs ())

(* ---- per-instruction slack is consistent with the region statics ---- *)

let test_slack_consistent () =
  let programs = Test_support.standard_programs () in
  let _, (cfg0, input) = List.hd programs in
  let b, _ = bound_of_cfg ~machine:rs6k ~config:Config.speculative cfg0 input in
  List.iter
    (fun (r : Bounds.region_bound) ->
      List.iter
        (fun (i : Bounds.instr_bound) ->
          Alcotest.(check bool)
            "slack = lstart - estart" true
            (i.Bounds.slack = i.Bounds.lstart - i.Bounds.estart);
          Alcotest.(check bool) "slack >= 0" true (i.Bounds.slack >= 0);
          Alcotest.(check (option int))
            "slack_of_uid agrees" (Some i.Bounds.slack)
            (Bounds.slack_of_uid b i.Bounds.uid))
        r.Bounds.instrs;
      List.iter
        (fun (e : Bounds.binding_edge) ->
          Alcotest.(check bool)
            "edge rank bounded by region cp" true
            (e.Bounds.e_rank <= r.Bounds.static_cp_lb))
        r.Bounds.binding;
      Alcotest.(check bool)
        "a zero-slack instruction exists" true
        (r.Bounds.instrs = []
        || List.exists (fun (i : Bounds.instr_bound) -> i.Bounds.slack = 0)
             r.Bounds.instrs))
    b.Bounds.regions

(* ---- hand-built programs where each bound kind dominates ---- *)

(* A pointer-chasing chain of dependent loads: the weighted dependence
   chain dwarfs what unit capacity alone would force. *)
let chain_source =
  {|
int a[16];
int h;
h = 0;
h = a[h];
h = a[h];
h = a[h];
h = a[h];
h = a[h];
h = a[h];
h = a[h];
h = a[h];
h = a[h];
h = a[h];
h = a[h];
h = a[h];
print(h);
|}

(* Independent adds off the same operand: no chain to speak of, but
   every one of them needs the single fixed-point unit for a cycle. *)
let independent_source =
  {|
int n;
int a; int b; int c; int d; int e; int f; int g; int h;
int i; int j; int k; int l; int m; int o; int p; int q;
a = n + 1; b = n + 2; c = n + 3; d = n + 4;
e = n + 5; f = n + 6; g = n + 7; h = n + 8;
i = n + 9; j = n + 10; k = n + 11; l = n + 12;
m = n + 13; o = n + 14; p = n + 15; q = n + 16;
print(q);
|}

let compile_and_bound source =
  let compiled = Codegen.compile_string source in
  bound_of_cfg ~machine:rs6k ~config:Config.base compiled.Codegen.cfg
    Simulator.no_input

let test_cp_dominates () =
  let b, _ = compile_and_bound chain_source in
  Alcotest.(check bool) "identity" true (sound b);
  Alcotest.(check bool)
    (Fmt.str "chain bound dominates (cp %d > res %d)" b.Bounds.cp_lb
       b.Bounds.res_lb)
    true
    (b.Bounds.cp_lb > b.Bounds.res_lb);
  Alcotest.(check int) "lower bound is the chain bound" b.Bounds.cp_lb
    b.Bounds.lower_bound

let test_res_dominates () =
  let b, _ = compile_and_bound independent_source in
  Alcotest.(check bool) "identity" true (sound b);
  Alcotest.(check bool)
    (Fmt.str "resource bound dominates (res %d > cp %d)" b.Bounds.res_lb
       b.Bounds.cp_lb)
    true
    (b.Bounds.res_lb > b.Bounds.cp_lb);
  Alcotest.(check int) "lower bound is the resource bound" b.Bounds.res_lb
    b.Bounds.lower_bound

(* ---- metrics export and JSON shape ---- *)

let test_export () =
  let module Metrics = Gis_obs.Metrics in
  Metrics.enable ();
  let _, (cfg0, input) = List.hd (Test_support.standard_programs ()) in
  let b, _ = bound_of_cfg ~machine:rs6k ~config:Config.speculative cfg0 input in
  Bounds.export_metrics b;
  let gauge name =
    match List.assoc_opt name (Metrics.snapshot ()) with
    | Some (Metrics.Gauge_v v) -> int_of_float v
    | _ -> Alcotest.failf "gauge %s missing" name
  in
  Alcotest.(check int) "achieved gauge" b.Bounds.achieved
    (gauge "bound.achieved_cycles");
  Alcotest.(check int) "lower gauge" b.Bounds.lower_bound
    (gauge "bound.lower_cycles");
  Alcotest.(check int) "gap gauge" b.Bounds.gap (gauge "bound.gap_cycles");
  match Bounds.to_json b with
  | Gis_obs.Json.Obj fields ->
      List.iter
        (fun k ->
          Alcotest.(check bool) ("json has " ^ k) true (List.mem_assoc k fields))
        [
          "achieved_cycles"; "cp_lower_cycles"; "res_lower_cycles";
          "lower_bound_cycles"; "gap_cycles"; "credits"; "identity_exact";
          "regions";
        ]
  | _ -> Alcotest.fail "bound json is not an object"

(* ---- the per-rule tie-break counters (satellite) ---- *)

let test_rule_decides_counters () =
  let module Metrics = Gis_obs.Metrics in
  Metrics.reset ();
  Metrics.enable ();
  let _, (cfg0, _) = List.hd (Test_support.standard_programs ()) in
  let cfg = Cfg.deep_copy cfg0 in
  ignore (Pipeline.run rs6k Config.speculative cfg);
  let total =
    List.fold_left
      (fun acc slug ->
        acc
        + Option.value ~default:0
            (Metrics.find_counter ("priority.rule_decides_total." ^ slug)))
      0
      ("order-fallback" :: List.map Priority_rule.slug Priority_rule.all)
  in
  Alcotest.(check bool)
    (Fmt.str "some ready-queue tie was broken (%d recorded)" total)
    true (total > 0)

(* ---- QCheck soundness across levels, machines, regalloc ---- *)

let prop_sound ~machine ~config seed =
  let compiled, input = Test_support.baseline_compiled seed in
  match bound_of_cfg ~machine ~config compiled.Codegen.cfg input with
  | exception Gis_regalloc.Regalloc.Infeasible _ -> true
  | b, _ -> sound b

let qtest name count prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count QCheck.(int_range 1 1_000_000) prop)

let () =
  Alcotest.run "bounds"
    [
      ( "identity",
        [
          Alcotest.test_case "workloads x levels" `Quick test_workload_identity;
          Alcotest.test_case "slack consistent" `Quick test_slack_consistent;
          Alcotest.test_case "chain bound dominates" `Quick test_cp_dominates;
          Alcotest.test_case "resource bound dominates" `Quick
            test_res_dominates;
          Alcotest.test_case "metrics and json export" `Quick test_export;
          Alcotest.test_case "tie-break rule counters" `Quick
            test_rule_decides_counters;
        ] );
      ( "soundness",
        [
          qtest "random local rs6k" 40
            (prop_sound ~machine:rs6k ~config:Config.base);
          qtest "random useful rs6k" 40
            (prop_sound ~machine:rs6k ~config:Config.useful_only);
          qtest "random speculative rs6k" 40
            (prop_sound ~machine:rs6k ~config:Config.speculative);
          qtest "random speculative detailed machine" 25
            (prop_sound ~machine:Machine.rs6k_detailed
               ~config:Config.speculative);
          qtest "random speculative width 4" 25
            (prop_sound ~machine:(Machine.superscalar ~width:4)
               ~config:Config.speculative);
          qtest "random speculative + regalloc" 25
            (prop_sound ~machine:rs6k
               ~config:{ Config.speculative with Config.regalloc = true });
        ] );
    ]
