open Gis_ir
open Gis_analysis
open Gis_util.Ints
module B = Builder

(* ---- synthetic flow graphs ---- *)

let flow_of succ ~entry =
  Flow.make ~entry ~to_block:(Array.init (Array.length succ) Fun.id) succ

(* The diamond: 0 -> 1,2 -> 3. *)
let diamond = flow_of [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |] ~entry:0

let test_postorder () =
  let rpo = Flow.reverse_postorder diamond in
  Alcotest.(check int) "first is entry" 0 (List.hd rpo);
  Alcotest.(check int) "length" 4 (List.length rpo);
  Alcotest.(check bool) "3 last" true (List.nth rpo 3 = 3)

let test_reachability () =
  let m = Flow.reachable_matrix diamond in
  Alcotest.(check bool) "0->3" true m.(0).(3);
  Alcotest.(check bool) "1->2" false m.(1).(2);
  Alcotest.(check bool) "self" true m.(1).(1)

let test_acyclicity () =
  Alcotest.(check bool) "diamond acyclic" true (Flow.is_acyclic diamond);
  let loop = flow_of [| [ 1 ]; [ 0 ] |] ~entry:0 in
  Alcotest.(check bool) "loop cyclic" false (Flow.is_acyclic loop)

let test_dominance_diamond () =
  let dom = Dominance.compute diamond in
  Alcotest.(check bool) "0 dom 3" true (Dominance.dominates dom 0 3);
  Alcotest.(check bool) "1 !dom 3" false (Dominance.dominates dom 1 3);
  Alcotest.(check bool) "reflexive" true (Dominance.dominates dom 2 2);
  Alcotest.(check (option int)) "idom 3" (Some 0) (Dominance.idom dom 3);
  Alcotest.(check (option int)) "idom of entry" None (Dominance.idom dom 0);
  Alcotest.(check int) "depth 3" 1 (Dominance.dom_tree_depth dom 3)

let test_postdominance_diamond () =
  let post = Dominance.Post.compute diamond in
  Alcotest.(check bool) "3 pdom 0" true (Dominance.Post.postdominates post 3 0);
  Alcotest.(check bool) "1 !pdom 0" false (Dominance.Post.postdominates post 1 0);
  let dom = Dominance.compute diamond in
  Alcotest.(check bool) "0 equiv 3" true (Dominance.equivalent dom post 0 3);
  Alcotest.(check bool) "0 !equiv 1" false (Dominance.equivalent dom post 0 1)

(* Cross-check the CHK dominators against the naive set-intersection
   reference on a handful of irregular graphs. *)
let test_dominance_vs_naive () =
  let graphs =
    [
      diamond;
      flow_of [| [ 1 ]; [ 2; 3 ]; [ 4 ]; [ 4 ]; [ 1; 5 ]; [] |] ~entry:0;
      flow_of [| [ 1; 2 ]; [ 3 ]; [ 3; 4 ]; [ 5 ]; [ 5 ]; [ 1 ] |] ~entry:0;
      flow_of [| [ 0 ] |] ~entry:0;
      (* unreachable node 3 *)
      flow_of [| [ 1 ]; [ 2 ]; []; [ 2 ] |] ~entry:0;
    ]
  in
  List.iteri
    (fun gi flow ->
      let dom = Dominance.compute flow in
      let naive = Dominance.naive_dominators flow in
      for a = 0 to flow.Flow.num_nodes - 1 do
        for b = 0 to flow.Flow.num_nodes - 1 do
          let fast = Dominance.dominates dom a b in
          let slow =
            (not (Int_set.is_empty naive.(b))) && Int_set.mem a naive.(b)
          in
          Alcotest.(check bool) (Fmt.str "graph %d: %d dom %d" gi a b) slow fast
        done
      done)
    graphs

(* ---- the paper's Figure 3/4 structure via the minmax program ---- *)

let minmax_view () =
  let t = Gis_workloads.Minmax.build () in
  let regions = Regions.compute t.Gis_workloads.Minmax.cfg in
  let region =
    List.find (fun r -> r.Regions.loop <> None) (Regions.regions regions)
  in
  let view = Regions.view t.Gis_workloads.Minmax.cfg regions region in
  let node_of label =
    let blk = Cfg.block_of_label t.Gis_workloads.Minmax.cfg label in
    match view.Regions.block_node blk.Block.id with
    | Some v -> v
    | None -> Alcotest.failf "label %s not in loop view" label
  in
  (t, view, node_of)

let test_minmax_loop_shape () =
  let _, view, _ = minmax_view () in
  Alcotest.(check int) "ten blocks" 10 view.Regions.flow.Flow.num_nodes;
  Alcotest.(check bool) "forward graph acyclic" true
    (Flow.is_acyclic view.Regions.flow)

(* Figure 4's equivalences: {BL1,BL10}, {BL2,BL4}, {BL6,BL8}. *)
let test_minmax_equivalences () =
  let _, view, node_of = minmax_view () in
  let dom = Dominance.compute view.Regions.flow in
  let post = Dominance.Post.compute view.Regions.flow in
  let equiv a b = Dominance.equivalent dom post (node_of a) (node_of b) in
  Alcotest.(check bool) "BL1~BL10" true (equiv "CL.0" "CL.9");
  Alcotest.(check bool) "BL2~BL4" true (equiv "BL2" "CL.6");
  Alcotest.(check bool) "BL6~BL8" true (equiv "CL.4" "CL.11");
  Alcotest.(check bool) "BL1!~BL2" false (equiv "CL.0" "BL2");
  Alcotest.(check bool) "BL2!~BL6" false (equiv "BL2" "CL.4");
  Alcotest.(check bool) "BL3!~BL1" false (equiv "CL.0" "BL3")

(* Figure 4's control dependence edges. *)
let test_minmax_cdg () =
  let _, view, node_of = minmax_view () in
  let cdg =
    Cdg.compute ~edge_label:view.Regions.edge_label view.Regions.flow
  in
  let parents label =
    List.map fst (Cdg.parents cdg (node_of label)) |> List.sort_uniq Int.compare
  in
  Alcotest.(check (list int)) "BL1 has no parents" [] (parents "CL.0");
  Alcotest.(check (list int)) "BL10 has no parents" [] (parents "CL.9");
  Alcotest.(check (list int)) "BL2 <- BL1" [ node_of "CL.0" ] (parents "BL2");
  Alcotest.(check (list int)) "BL4 <- BL1" [ node_of "CL.0" ] (parents "CL.6");
  Alcotest.(check (list int)) "BL6 <- BL1" [ node_of "CL.0" ] (parents "CL.4");
  Alcotest.(check (list int)) "BL8 <- BL1" [ node_of "CL.0" ] (parents "CL.11");
  Alcotest.(check (list int)) "BL3 <- BL2" [ node_of "BL2" ] (parents "BL3");
  Alcotest.(check (list int)) "BL5 <- BL4" [ node_of "CL.6" ] (parents "BL5");
  (* Identically-dependent labels coincide with Definition 3. *)
  Alcotest.(check bool) "BL2 ~id~ BL4" true
    (Cdg.identically_dependent cdg (node_of "BL2") (node_of "CL.6"));
  Alcotest.(check bool) "BL2 !~id~ BL6" false
    (Cdg.identically_dependent cdg (node_of "BL2") (node_of "CL.4"))

(* Definition 7: moving from BL8 to BL1 gambles on one branch, from BL5
   to BL1 on two. *)
let test_minmax_speculation_degree () =
  let _, view, node_of = minmax_view () in
  let cdg =
    Cdg.compute ~edge_label:view.Regions.edge_label view.Regions.flow
  in
  let deg a b = Cdg.speculation_degree cdg ~src:(node_of a) ~dst:(node_of b) in
  Alcotest.(check (option int)) "BL1->BL8" (Some 1) (deg "CL.0" "CL.11");
  Alcotest.(check (option int)) "BL1->BL5" (Some 2) (deg "CL.0" "BL5");
  Alcotest.(check (option int)) "BL1->BL1" (Some 0) (deg "CL.0" "CL.0");
  Alcotest.(check (option int)) "BL2->BL6" None (deg "BL2" "CL.4");
  let succs = Cdg.immediate_successors cdg (node_of "CL.0") in
  Alcotest.(check int) "BL1 controls four blocks" 4 (List.length succs)

(* Regression: a loop body must not postdominate (nor be equivalent to)
   a header whose exit edge leaves the region view — dropping the exit
   edge used to make them look equivalent, letting loop-variant code
   hoist above the exit test. *)
let test_loop_exit_not_equivalent () =
  let g = Reg.Gen.create () in
  let acc = Reg.Gen.fresh g Reg.Gpr in
  let i = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let cfg =
    B.func ~reg_gen:g
      [
        ("PRE", [ B.li ~dst:i 0 ], B.jmp "H");
        ("H", [ B.cmpi ~dst:c ~lhs:i 7 ],
         B.bt ~cr:c ~cond:Instr.Lt ~taken:"BODY" ~fallthru:"POST");
        ("BODY",
         [ B.add ~dst:acc ~lhs:acc ~rhs:i; B.addi ~dst:i ~lhs:i 1 ],
         B.jmp "H");
        ("POST", [ B.call "print_int" [ acc ] ], Instr.Halt);
      ]
  in
  let regions = Regions.compute cfg in
  let region =
    List.find (fun r -> r.Regions.loop <> None) (Regions.regions regions)
  in
  let view = Regions.view cfg regions region in
  let node l =
    Option.get (view.Regions.block_node (Cfg.block_of_label cfg l).Block.id)
  in
  let dom = Dominance.compute view.Regions.flow in
  let post = Dominance.Post.compute view.Regions.flow in
  Alcotest.(check bool) "header is an exit of the view" true
    (List.mem (node "H") (Flow.exit_nodes view.Regions.flow));
  Alcotest.(check bool) "BODY does not postdominate H" false
    (Dominance.Post.postdominates post (node "BODY") (node "H"));
  Alcotest.(check bool) "H not equivalent to BODY" false
    (Dominance.equivalent dom post (node "H") (node "BODY"));
  (* And the CDG records BODY as control dependent on H. *)
  let cdg = Cdg.compute ~edge_label:view.Regions.edge_label view.Regions.flow in
  Alcotest.(check (list int)) "BODY <- H" [ node "H" ]
    (List.map fst (Cdg.parents cdg (node "BODY")))

(* ---- liveness ---- *)

let test_liveness_diamond () =
  let g = Reg.Gen.create () in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let y = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let cfg =
    B.func ~reg_gen:g
      [
        ("A", [ B.cmpi ~dst:c ~lhs:y 0 ],
         B.bt ~cr:c ~cond:Instr.Eq ~taken:"B" ~fallthru:"C");
        ("B", [ B.li ~dst:x 1 ], B.jmp "D");
        ("C", [ B.li ~dst:x 2 ], B.jmp "D");
        ("D", [ B.call "print_int" [ x ] ], Instr.Halt);
      ]
  in
  let live = Liveness.compute cfg in
  let blk l = (Cfg.block_of_label cfg l).Block.id in
  (* x defined on both paths before D: not live out of A. *)
  Alcotest.(check bool) "x not live out of A" false
    (Reg.Set.mem x (Liveness.live_out live (blk "A")));
  Alcotest.(check bool) "x live out of B" true
    (Reg.Set.mem x (Liveness.live_out live (blk "B")));
  Alcotest.(check bool) "x live into D" true
    (Reg.Set.mem x (Liveness.live_in live (blk "D")));
  Alcotest.(check bool) "y live into A" true
    (Reg.Set.mem y (Liveness.live_in live (blk "A")));
  (* After removing B's definition, x becomes live out of A. *)
  ignore (Block.remove_by_uid (Cfg.block_of_label cfg "B")
            ~uid:(Instr.uid (Gis_util.Vec.get (Cfg.block_of_label cfg "B").Block.body 0)));
  let live = Liveness.compute cfg in
  Alcotest.(check bool) "x now live out of A" true
    (Reg.Set.mem x (Liveness.live_out live (blk "A")))

let test_liveness_loop_carried () =
  let g = Reg.Gen.create () in
  let acc = Reg.Gen.fresh g Reg.Gpr in
  let i = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let cfg =
    B.func ~reg_gen:g
      [
        ("H", [ B.cmpi ~dst:c ~lhs:i 10 ],
         B.bt ~cr:c ~cond:Instr.Lt ~taken:"BODY" ~fallthru:"X");
        ("BODY",
         [ B.add ~dst:acc ~lhs:acc ~rhs:i; B.addi ~dst:i ~lhs:i 1 ],
         B.jmp "H");
        ("X", [ B.call "print_int" [ acc ] ], Instr.Halt);
      ]
  in
  let live = Liveness.compute cfg in
  let blk l = (Cfg.block_of_label cfg l).Block.id in
  Alcotest.(check bool) "acc live around the loop" true
    (Reg.Set.mem acc (Liveness.live_out live (blk "BODY")));
  Alcotest.(check bool) "i live into H" true
    (Reg.Set.mem i (Liveness.live_in live (blk "H")));
  Alcotest.(check bool) "live before terminator includes branch source" true
    (Reg.Set.mem c (Liveness.live_before_terminator live cfg (blk "H")))

(* ---- reaching definitions ---- *)

let test_reaching_sole_def () =
  let g = Reg.Gen.create () in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let y = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ("A", [ B.li ~dst:x 1; B.mr ~dst:y ~src:x ], B.jmp "B");
        ("B", [ B.call "print_int" [ y ] ], Instr.Halt);
      ]
  in
  let reach = Reaching.compute cfg in
  let a = Cfg.block_of_label cfg "A" in
  let def_x = Instr.uid (Gis_util.Vec.get a.Block.body 0) in
  let use_x = Instr.uid (Gis_util.Vec.get a.Block.body 1) in
  (match Reaching.defs_of_use reach ~uid:use_x ~reg:x with
  | [ Reaching.Def d ] -> Alcotest.(check int) "ud chain" def_x d
  | other ->
      Alcotest.failf "unexpected: %a" Fmt.(list Reaching.pp_site) other);
  (match Reaching.sole_def_of_all_uses reach ~uid:def_x ~reg:x with
  | Some uses -> Alcotest.(check (list int)) "du chain" [ use_x ] uses
  | None -> Alcotest.fail "expected sole def")

(* The Section 5.3 shape: a use reached by two definitions is not
   renameable through either. *)
let test_reaching_merge () =
  let s = Gis_workloads.Section53.build () in
  let cfg = s.Gis_workloads.Section53.cfg in
  let reach = Reaching.compute cfg in
  let x =
    match
      Instr.defs
        (Gis_util.Vec.get (Cfg.block_of_label cfg "B2").Block.body 0)
    with
    | [ r ] -> r
    | _ -> Alcotest.fail "x5 should define one register"
  in
  Alcotest.(check bool) "x5 not sole" true
    (Reaching.sole_def_of_all_uses reach ~uid:s.Gis_workloads.Section53.x5_uid ~reg:x
    = None);
  Alcotest.(check bool) "x3 not sole" true
    (Reaching.sole_def_of_all_uses reach ~uid:s.Gis_workloads.Section53.x3_uid ~reg:x
    = None);
  (* The print's use is reached by both definitions. *)
  let print_uid =
    Instr.uid (Gis_util.Vec.get (Cfg.block_of_label cfg "B4").Block.body 0)
  in
  Alcotest.(check int) "two reaching defs" 2
    (List.length (Reaching.defs_of_use reach ~uid:print_uid ~reg:x))

let test_reaching_external () =
  let g = Reg.Gen.create () in
  let n = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g [ ("A", [ B.call "print_int" [ n ] ], Instr.Halt) ]
  in
  let reach = Reaching.compute cfg in
  let use = Instr.uid (Gis_util.Vec.get (Cfg.block_of_label cfg "A").Block.body 0) in
  match Reaching.defs_of_use reach ~uid:use ~reg:n with
  | [ Reaching.External ] -> ()
  | other -> Alcotest.failf "unexpected: %a" Fmt.(list Reaching.pp_site) other

(* ---- loops and regions ---- *)

let test_minmax_loop_detect () =
  let t = Gis_workloads.Minmax.build () in
  let info = Loops.compute t.Gis_workloads.Minmax.cfg in
  Alcotest.(check bool) "reducible" true (Loops.reducible info);
  Alcotest.(check int) "one loop" 1 (Array.length (Loops.loops info));
  let l = (Loops.loops info).(0) in
  Alcotest.(check int) "ten blocks" 10 (Int_set.cardinal l.Loops.blocks);
  Alcotest.(check string) "header is CL.0" "CL.0"
    (Cfg.block t.Gis_workloads.Minmax.cfg l.Loops.header).Block.label;
  Alcotest.(check int) "depth" 1 l.Loops.depth

let nested_loops_cfg () =
  let g = Reg.Gen.create () in
  let i = Reg.Gen.fresh g Reg.Gpr in
  let j = Reg.Gen.fresh g Reg.Gpr in
  let ci = Reg.Gen.fresh g Reg.Cr in
  let cj = Reg.Gen.fresh g Reg.Cr in
  B.func ~reg_gen:g
    [
      ("PRE", [ B.li ~dst:i 0 ], B.jmp "OH");
      ("OH", [ B.cmpi ~dst:ci ~lhs:i 8 ],
       B.bt ~cr:ci ~cond:Instr.Lt ~taken:"OB" ~fallthru:"EXIT");
      ("OB", [ B.li ~dst:j 0 ], B.jmp "IH");
      ("IH", [ B.cmpi ~dst:cj ~lhs:j 4 ],
       B.bt ~cr:cj ~cond:Instr.Lt ~taken:"IB" ~fallthru:"OL");
      ("IB", [ B.addi ~dst:j ~lhs:j 1 ], B.jmp "IH");
      ("OL", [ B.addi ~dst:i ~lhs:i 1 ], B.jmp "OH");
      ("EXIT", [], Instr.Halt);
    ]

let test_nested_loops () =
  let cfg = nested_loops_cfg () in
  let info = Loops.compute cfg in
  Alcotest.(check int) "two loops" 2 (Array.length (Loops.loops info));
  let inner =
    List.find (fun l -> l.Loops.depth = 2) (Array.to_list (Loops.loops info))
  in
  let outer =
    List.find (fun l -> l.Loops.depth = 1) (Array.to_list (Loops.loops info))
  in
  Alcotest.(check int) "inner size" 2 (Int_set.cardinal inner.Loops.blocks);
  Alcotest.(check bool) "nesting" true (inner.Loops.parent = Some outer.Loops.index);
  Alcotest.(check (list int)) "children" [ inner.Loops.index ] outer.Loops.children;
  let order = Loops.innermost_first info in
  Alcotest.(check int) "innermost first" 2 (List.hd order).Loops.depth

let test_irreducible () =
  (* Two entries into a cycle: A -> B, A -> C, B <-> C. *)
  let g = Reg.Gen.create () in
  let c = Reg.Gen.fresh g Reg.Cr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ("A", [ B.cmpi ~dst:c ~lhs:x 0 ],
         B.bt ~cr:c ~cond:Instr.Eq ~taken:"B" ~fallthru:"C");
        ("B", [], B.jmp "C");
        ("C", [ B.addi ~dst:x ~lhs:x 1 ],
         B.bt ~cr:c ~cond:Instr.Ne ~taken:"B" ~fallthru:"D");
        ("D", [], Instr.Halt);
      ]
  in
  let info = Loops.compute cfg in
  Alcotest.(check bool) "irreducible" false (Loops.reducible info)

let test_regions_structure () =
  let cfg = nested_loops_cfg () in
  let regions = Regions.compute cfg in
  let rs = Regions.regions regions in
  Alcotest.(check int) "three regions" 3 (List.length rs);
  (match rs with
  | first :: _ ->
      Alcotest.(check int) "innermost first" 2 first.Regions.nesting
  | [] -> Alcotest.fail "no regions");
  let top = List.nth rs 2 in
  Alcotest.(check bool) "toplevel last" true (top.Regions.loop = None);
  (* The outer loop region excludes the inner loop's blocks. *)
  let outer = List.nth rs 1 in
  Alcotest.(check int) "outer own blocks" 3
    (Int_set.cardinal outer.Regions.own_blocks)

let test_region_view_collapse () =
  let cfg = nested_loops_cfg () in
  let regions = Regions.compute cfg in
  let outer = List.nth (Regions.regions regions) 1 in
  let view = Regions.view cfg regions outer in
  Alcotest.(check int) "3 blocks + 1 summary" 4 view.Regions.flow.Flow.num_nodes;
  Alcotest.(check bool) "acyclic after masking" true
    (Flow.is_acyclic view.Regions.flow);
  let summaries =
    Array.to_list view.Regions.nodes
    |> List.filter (function Regions.Inner_loop _ -> true | Regions.Block _ -> false)
  in
  Alcotest.(check int) "one summary node" 1 (List.length summaries)

(* ---- symbolic addresses (Symaddr) ---- *)

let body_uid cfg label idx =
  Instr.uid (Gis_util.Vec.get (Cfg.block_of_label cfg label).Block.body idx)

(* Affine chain inside one block: add-immediate shifts the symbolic
   value, a register move copies it, and deltas compose with sign. *)
let test_symaddr_affine_chain () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let b2 = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ( "A",
          [
            B.store ~src:x ~base ~offset:0;
            B.addi ~dst:base ~lhs:base 8;
            B.store ~src:x ~base ~offset:0;
            B.mr ~dst:b2 ~src:base;
            B.load ~dst:x ~base:b2 ~offset:4;
          ],
          Instr.Halt );
      ]
  in
  let t = Symaddr.compute cfg in
  let u0 = body_uid cfg "A" 0 in
  let u2 = body_uid cfg "A" 2 in
  let u4 = body_uid cfg "A" 4 in
  Alcotest.(check (option int)) "addi shifts the base" (Some 8)
    (Symaddr.delta t ~a:u0 ~b:u2);
  Alcotest.(check (option int)) "move copies the value" (Some 0)
    (Symaddr.delta t ~a:u2 ~b:u4);
  Alcotest.(check (option int)) "delta is signed" (Some (-8))
    (Symaddr.delta t ~a:u2 ~b:u0)

(* Registers live at entry get their own origin: accesses through an
   unknown-but-unchanged base still compare, and an opaque
   redefinition (a load result) severs the relation. *)
let test_symaddr_entry_and_opaque () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ( "A",
          [
            B.store ~src:x ~base ~offset:0;
            B.store ~src:x ~base ~offset:8;
            B.load ~dst:base ~base ~offset:0;
            B.store ~src:x ~base ~offset:0;
          ],
          Instr.Halt );
      ]
  in
  let t = Symaddr.compute cfg in
  let u0 = body_uid cfg "A" 0 in
  let u1 = body_uid cfg "A" 1 in
  let u3 = body_uid cfg "A" 3 in
  Alcotest.(check (option int)) "entry origin compares" (Some 0)
    (Symaddr.delta t ~a:u0 ~b:u1);
  Alcotest.(check (option int)) "opaque redefinition severs" None
    (Symaddr.delta t ~a:u0 ~b:u3)

(* The update post-increment: the access itself is recorded at the
   pre-update base value, the increment shows up at the next access. *)
let test_symaddr_update_postincrement () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ( "A",
          [
            B.load_update ~dst:x ~base ~offset:8;
            B.store ~src:x ~base ~offset:0;
          ],
          Instr.Halt );
      ]
  in
  let t = Symaddr.compute cfg in
  let u0 = body_uid cfg "A" 0 in
  let u1 = body_uid cfg "A" 1 in
  Alcotest.(check (option int)) "post-increment lands after the access"
    (Some 8)
    (Symaddr.delta t ~a:u0 ~b:u1)

(* CFG joins: agreeing paths keep the symbolic value, disagreeing
   paths go to Top and the delta is unprovable. *)
let test_symaddr_join () =
  let diamond shift_t shift_f =
    let g = Reg.Gen.create () in
    let base = Reg.Gen.fresh g Reg.Gpr in
    let x = Reg.Gen.fresh g Reg.Gpr in
    let c = Reg.Gen.fresh g Reg.Cr in
    let cfg =
      B.func ~reg_gen:g
        [
          ( "E",
            [ B.cmpi ~dst:c ~lhs:x 0; B.store ~src:x ~base ~offset:0 ],
            B.bt ~cr:c ~cond:Instr.Gt ~taken:"T" ~fallthru:"F" );
          ("T", [ B.addi ~dst:base ~lhs:base shift_t ], B.jmp "J");
          ("F", [ B.addi ~dst:base ~lhs:base shift_f ], B.jmp "J");
          ("J", [ B.store ~src:x ~base ~offset:0 ], Instr.Halt);
        ]
    in
    let t = Symaddr.compute cfg in
    Symaddr.delta t ~a:(body_uid cfg "E" 1) ~b:(body_uid cfg "J" 0)
  in
  Alcotest.(check (option int)) "agreeing join keeps the value" (Some 8)
    (diamond 8 8);
  Alcotest.(check (option int)) "disagreeing join is Top" None (diamond 8 16)

(* The fault-injection hook fabricates deltas for unprovable pairs;
   the DDG-subset property and the checker-independence tests rely on
   it actually over-claiming. *)
let test_symaddr_overclaim_hook () =
  let g = Reg.Gen.create () in
  let b1 = Reg.Gen.fresh g Reg.Gpr in
  let b2 = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ( "A",
          [ B.store ~src:x ~base:b1 ~offset:0;
            B.store ~src:x ~base:b2 ~offset:0 ],
          Instr.Halt );
      ]
  in
  let t = Symaddr.compute cfg in
  let u0 = body_uid cfg "A" 0 in
  let u1 = body_uid cfg "A" 1 in
  Alcotest.(check (option int)) "distinct origins unprovable" None
    (Symaddr.delta t ~a:u0 ~b:u1);
  Symaddr.overclaim_for_testing := true;
  Fun.protect
    ~finally:(fun () -> Symaddr.overclaim_for_testing := false)
    (fun () ->
      Alcotest.(check bool) "hook fabricates a delta" true
        (Symaddr.delta t ~a:u0 ~b:u1 <> None))

let () =
  Alcotest.run "gis_analysis"
    [
      ( "flow",
        [
          Alcotest.test_case "postorder" `Quick test_postorder;
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "acyclicity" `Quick test_acyclicity;
        ] );
      ( "dominance",
        [
          Alcotest.test_case "diamond" `Quick test_dominance_diamond;
          Alcotest.test_case "postdominance" `Quick test_postdominance_diamond;
          Alcotest.test_case "vs-naive" `Quick test_dominance_vs_naive;
        ] );
      ( "minmax (Figures 3-4)",
        [
          Alcotest.test_case "loop shape" `Quick test_minmax_loop_shape;
          Alcotest.test_case "equivalences" `Quick test_minmax_equivalences;
          Alcotest.test_case "control deps" `Quick test_minmax_cdg;
          Alcotest.test_case "speculation degree" `Quick test_minmax_speculation_degree;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "diamond" `Quick test_liveness_diamond;
          Alcotest.test_case "loop-carried" `Quick test_liveness_loop_carried;
        ] );
      ( "reaching",
        [
          Alcotest.test_case "sole-def" `Quick test_reaching_sole_def;
          Alcotest.test_case "merge" `Quick test_reaching_merge;
          Alcotest.test_case "external" `Quick test_reaching_external;
        ] );
      ( "loops/regions",
        [
          Alcotest.test_case "minmax" `Quick test_minmax_loop_detect;
          Alcotest.test_case "nested" `Quick test_nested_loops;
          Alcotest.test_case "irreducible" `Quick test_irreducible;
          Alcotest.test_case "regions" `Quick test_regions_structure;
          Alcotest.test_case "view-collapse" `Quick test_region_view_collapse;
          Alcotest.test_case "loop-exit postdominance" `Quick
            test_loop_exit_not_equivalent;
        ] );
      ( "symaddr",
        [
          Alcotest.test_case "affine chain" `Quick test_symaddr_affine_chain;
          Alcotest.test_case "entry origin / opaque def" `Quick
            test_symaddr_entry_and_opaque;
          Alcotest.test_case "update post-increment" `Quick
            test_symaddr_update_postincrement;
          Alcotest.test_case "join" `Quick test_symaddr_join;
          Alcotest.test_case "overclaim hook" `Quick
            test_symaddr_overclaim_hook;
        ] );
    ]
