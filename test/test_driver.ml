(* The batch driver and the scheduler hot path, locked down.

   - A differential regression corpus pins cycle counts and motion
     counts for the paper's workloads at every level. The constants
     were recorded from the scheduler BEFORE the priority-heap rewrite
     and the lazy-dataflow caching; the suite therefore proves the perf
     refactor changed compile time, not schedules.
   - Driver.run must be deterministic in the worker count: jobs:1 and
     jobs:N produce byte-identical scheduled code, observables and
     (scrubbed) JSON reports.
   - A crashing task must not take down the pool, and a task budget
     must be enforced. *)

open Gis_ir
open Gis_core
open Gis_sim
open Gis_frontend
open Gis_workloads
open Gis_driver
open Gis_driver.Driver

let machine = Test_support.machine

let parallel_jobs =
  (* CI runs the suite with GIS_TEST_JOBS=4; default stays multi-domain
     but modest so laptops are not oversubscribed. *)
  match Sys.getenv_opt "GIS_TEST_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 1 -> n | _ -> 4)
  | None -> 4

(* ------------------------------------------------------------------ *)
(* Differential regression corpus                                      *)
(* ------------------------------------------------------------------ *)

(* (program, level, cycles, dynamic instructions, moves, speculative
   moves, renames) — recorded from the pre-heap scheduler at commit
   "telemetry layer", simulating each workload on its standard input.
   The espresso and gcc rows were re-recorded when those proxies grew
   their memory-resident statistics counters (the A1 disambiguation
   workloads); scheduling runs with symbolic disambiguation on, the
   pipeline default. *)
let golden =
  [
    ("minmax", `Local, 655, 375, 0, 0, 0);
    ("minmax", `Useful, 431, 375, 4, 0, 0);
    ("minmax", `Speculative, 395, 407, 6, 2, 1);
    ("li", `Local, 8998, 7460, 0, 0, 0);
    ("li", `Useful, 7657, 7460, 1, 0, 0);
    ("li", `Speculative, 6646, 7878, 4, 3, 0);
    ("eqntott", `Local, 8656, 6865, 0, 0, 0);
    ("eqntott", `Useful, 6837, 6865, 3, 0, 0);
    ("eqntott", `Speculative, 6837, 7286, 4, 1, 0);
    ("espresso", `Local, 15375, 15761, 0, 0, 0);
    ("espresso", `Useful, 15375, 15761, 0, 0, 0);
    ("espresso", `Speculative, 15375, 15761, 0, 0, 0);
    ("gcc", `Local, 14760, 14469, 0, 0, 0);
    ("gcc", `Useful, 14760, 14469, 1, 0, 0);
    ("gcc", `Speculative, 14332, 14706, 4, 3, 0);
  ]

let config_of_level = Test_support.config_of_level
let level_name = Test_support.level_name
let standard_programs = Test_support.standard_programs

let test_golden_schedules () =
  let programs = standard_programs () in
  List.iter
    (fun (name, level, cycles, instrs, moves, spec, renames) ->
      let cfg0, input = List.assoc name programs in
      let cfg = Cfg.deep_copy cfg0 in
      let stats = Pipeline.run machine (config_of_level level) cfg in
      let ms = Pipeline.moves stats in
      let outcome = Simulator.run machine cfg input in
      let got =
        ( outcome.Simulator.cycles,
          outcome.Simulator.instructions,
          List.length ms,
          List.length
            (List.filter
               (fun (m : Global_sched.move) -> m.Global_sched.speculative)
               ms),
          List.length
            (List.filter
               (fun (m : Global_sched.move) -> m.Global_sched.renamed <> None)
               ms) )
      in
      Alcotest.(check (list int))
        (Fmt.str "%s @ %s" name (level_name level))
        [ cycles; instrs; moves; spec; renames ]
        (let a, b, c, d, e = got in
         [ a; b; c; d; e ]))
    golden

(* ------------------------------------------------------------------ *)
(* Driver determinism                                                  *)
(* ------------------------------------------------------------------ *)

let batch () = workload_tasks () @ corpus_tasks ~seeds:[ 11; 22; 33; 44 ]

let summary_key (r : task_result) =
  match r.outcome with
  | Ok s ->
      Fmt.str "%s|%d|%d|%d|%d|%d|%d|%d|%d|%s|%s" r.task s.blocks s.instrs
        s.moves s.spec_moves s.renames s.events s.base_cycles s.sched_cycles
        s.observables s.code
  | Error e -> Fmt.str "%s|ERR|%a" r.task pp_error e

let test_jobs_determinism () =
  let seq = Driver.run ~jobs:1 machine Config.speculative (batch ()) in
  let par = Driver.run ~jobs:parallel_jobs machine Config.speculative (batch ()) in
  Alcotest.(check int) "all sequential tasks ok" 0 seq.pool.failed;
  Alcotest.(check int) "all parallel tasks ok" 0 par.pool.failed;
  Alcotest.(check (list string))
    "byte-identical summaries across job counts"
    (List.map summary_key seq.results)
    (List.map summary_key par.results);
  let json r =
    Gis_obs.Json.to_string (report_to_json ~deterministic:true r)
  in
  Alcotest.(check string)
    "deterministic JSON reports identical" (json seq) (json par)

let test_pool_telemetry () =
  let tasks = batch () in
  let r = Driver.run ~jobs:parallel_jobs machine Config.speculative tasks in
  let p = r.pool in
  Alcotest.(check int) "task count" (List.length tasks) p.tasks;
  Alcotest.(check int)
    "every task ran on some worker" (List.length tasks)
    (Array.fold_left ( + ) 0 p.tasks_run);
  Alcotest.(check int)
    "queue high water is the initial depth" (List.length tasks)
    p.queue_high_water;
  Alcotest.(check bool) "wall clock advanced" true (p.wall_seconds > 0.0);
  let u = utilization p in
  Alcotest.(check bool) "utilization in (0,1]" true (u > 0.0 && u <= 1.0)

(* ------------------------------------------------------------------ *)
(* Fault isolation                                                     *)
(* ------------------------------------------------------------------ *)

let test_fault_isolation () =
  let tasks =
    [
      { name = "good-1"; source = Tiny_c Minmax.source };
      { name = "broken"; source = Tiny_c "int x = (;" };
      { name = "good-2"; source = Generated 7 };
      { name = "trap"; source = File "/nonexistent/gis-no-such-file.c" };
    ]
  in
  let r = Driver.run ~jobs:parallel_jobs machine Config.speculative tasks in
  Alcotest.(check int) "results in input order" 4 (List.length r.results);
  Alcotest.(check (list string))
    "input order preserved"
    [ "good-1"; "broken"; "good-2"; "trap" ]
    (List.map (fun t -> t.task) r.results);
  let by_name n = List.find (fun t -> String.equal t.task n) r.results in
  (match (by_name "broken").outcome with
  | Error (Compile_error _) -> ()
  | Error e -> Alcotest.failf "expected compile error, got %a" pp_error e
  | Ok _ -> Alcotest.fail "broken task unexpectedly compiled");
  (match (by_name "trap").outcome with
  | Error (Crashed _) -> ()
  | Error e -> Alcotest.failf "expected crash, got %a" pp_error e
  | Ok _ -> Alcotest.fail "trapping task unexpectedly succeeded");
  List.iter
    (fun n ->
      match (by_name n).outcome with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s should have survived: %a" n pp_error e)
    [ "good-1"; "good-2" ];
  Alcotest.(check int) "two failures counted" 2 r.pool.failed;
  Alcotest.(check int) "failures accessor agrees" 2 (List.length (failures r))

let test_timeout () =
  let r =
    Driver.run ~jobs:2 ~timeout:0.0 machine Config.speculative
      (workload_tasks ())
  in
  Alcotest.(check int) "every task over a zero budget" r.pool.tasks
    r.pool.failed;
  List.iter
    (fun t ->
      match t.outcome with
      | Error (Timed_out s) ->
          Alcotest.(check bool) "recorded time positive" true (s > 0.0)
      | Error e -> Alcotest.failf "expected timeout, got %a" pp_error e
      | Ok _ -> Alcotest.fail "expected timeout, task succeeded")
    r.results

(* An exhausted budget must pre-empt the queue, not merely label tasks
   after letting them all run: tasks dequeued after the budget is spent
   are skipped entirely (zero task seconds, no worker charged). *)
let test_timeout_preempts_queue () =
  let r =
    Driver.run ~jobs:1 ~timeout:0.0 machine Config.speculative
      (workload_tasks ())
  in
  List.iter
    (fun t ->
      Alcotest.(check (float 0.0))
        (t.task ^ " was never executed")
        0.0 t.seconds)
    r.results;
  Alcotest.(check (float 0.0)) "no worker time charged" 0.0
    (Array.fold_left ( +. ) 0.0 r.pool.busy_seconds);
  Alcotest.(check int) "no task counted as run" 0
    (Array.fold_left ( + ) 0 r.pool.tasks_run);
  (* ... and a timeout-only batch is distinguishable from a crash. *)
  let timeout_only =
    List.for_all
      (fun (_, e) -> match e with Timed_out _ -> true | _ -> false)
      (failures r)
  in
  Alcotest.(check bool) "all failures are timeouts" true timeout_only

(* ------------------------------------------------------------------ *)
(* Provenance and explainability                                       *)
(* ------------------------------------------------------------------ *)

module Provenance = Gis_obs.Provenance

let reachable_instr_count cfg =
  let reach = Cfg.reachable cfg in
  let n = ref 0 in
  List.iter
    (fun id ->
      if Gis_util.Ints.Int_set.mem id reach then begin
        let b = Cfg.block cfg id in
        Gis_util.Vec.iter (fun _ -> incr n) b.Block.body;
        incr n
      end)
    (Cfg.layout cfg);
  !n

(* Conservation: whatever combination of passes ran, every reachable
   instruction of the final CFG has exactly one provenance record, and
   the per-kind counts tile the instruction count. The generator sweeps
   workload x level x unroll/rotate x regalloc. *)
let prop_provenance_conservation =
  QCheck.Test.make ~count:60 ~name:"provenance conservation"
    QCheck.(
      quad (int_bound 4) (int_bound 2) bool bool)
    (fun (wi, li, unroll, regalloc) ->
      let task = List.nth (workload_tasks ()) wi in
      Label.reset_fresh_counter ();
      let compiled = compile_task task in
      let prov = Provenance.create () in
      let level = List.nth [ `Local; `Useful; `Speculative ] li in
      let config =
        {
          (config_of_level level) with
          Config.unroll_small_loops = unroll;
          rotate_small_loops = unroll;
          regalloc;
          prov = Some prov;
        }
      in
      let cfg = Cfg.deep_copy compiled.Codegen.cfg in
      ignore (Pipeline.run machine config cfg);
      let count = reachable_instr_count cfg in
      Provenance.missing prov cfg = []
      && List.length (Provenance.entries prov) = count
      && List.fold_left (fun a (_, c) -> a + c) 0 (Provenance.counts prov)
         = count)

(* The E-A accounting identity: the per-block attribution credits sum
   exactly (integer-exactly, not approximately) to the difference of
   the base and scheduled issue spans, on every workload, with and
   without the allocator's spill code in the mix. *)
let test_explain_identity () =
  List.iter
    (fun (cname, config) ->
      List.iter
        (fun task ->
          match Explain.explain machine config task with
          | Error e ->
              Alcotest.failf "%s (%s): %a" task.name cname pp_error e
          | Ok e ->
              Alcotest.(check int)
                (Fmt.str "%s (%s): credits sum to the E-A delta" task.name
                   cname)
                (e.Explain.base_last_issue - e.Explain.sched_last_issue)
                (Provenance.attribution_total e.Explain.attribution);
              Alcotest.(check bool)
                (Fmt.str "%s (%s): identity holds" task.name cname)
                true (Explain.identity_holds e))
        (workload_tasks ()))
    [
      ("speculative", Config.speculative);
      ("regalloc", { Config.speculative with Config.regalloc = true });
    ]

(* Pinned: attaching a provenance table must not change one byte of the
   scheduled code — recording is observation, not participation. *)
let test_provenance_zero_cost () =
  List.iter
    (fun task ->
      let print_with prov =
        Label.reset_fresh_counter ();
        let compiled = compile_task task in
        let cfg = Cfg.deep_copy compiled.Codegen.cfg in
        ignore
          (Pipeline.run machine
             { Config.speculative with Config.prov; regalloc = true }
             cfg);
        Fmt.str "%a" Cfg.pp cfg
      in
      Alcotest.(check string)
        (task.name ^ ": schedule byte-identical with provenance on")
        (print_with None)
        (print_with (Some (Provenance.create ()))))
    (workload_tasks ())

(* The minmax walkthrough documented in EXPERIMENTS.md: speculative
   scheduling must show actual useful and speculative motions, and the
   JSON report must carry the identity flag. *)
let test_explain_minmax_motions () =
  match
    Explain.explain machine Config.speculative
      { name = "minmax"; source = Tiny_c Minmax.source }
  with
  | Error e -> Alcotest.failf "minmax: %a" pp_error e
  | Ok e ->
      let count k =
        match List.assoc_opt k (Provenance.counts e.Explain.prov) with
        | Some c -> c
        | None -> 0
      in
      Alcotest.(check bool) "useful motions recorded" true
        (count Provenance.Useful > 0);
      Alcotest.(check bool) "speculative motions recorded" true
        (count Provenance.Speculative > 0);
      Alcotest.(check bool) "scheduled faster than base" true
        (Explain.delta_total e > 0);
      (match Gis_obs.Json.member "identity_exact" (Explain.to_json e) with
      | Some (Gis_obs.Json.Bool true) -> ()
      | _ -> Alcotest.fail "identity_exact missing or false in JSON")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "gis_driver"
    [
      ( "differential corpus",
        [
          Alcotest.test_case "golden cycles and motions" `Quick
            test_golden_schedules;
        ] );
      ( "pool",
        [
          Alcotest.test_case "jobs determinism" `Quick test_jobs_determinism;
          Alcotest.test_case "telemetry" `Quick test_pool_telemetry;
          Alcotest.test_case "fault isolation" `Quick test_fault_isolation;
          Alcotest.test_case "timeout budget" `Quick test_timeout;
          Alcotest.test_case "timeout preempts queue" `Quick
            test_timeout_preempts_queue;
        ] );
      ( "provenance",
        [
          QCheck_alcotest.to_alcotest prop_provenance_conservation;
          Alcotest.test_case "accounting identity" `Quick test_explain_identity;
          Alcotest.test_case "zero cost when off" `Quick
            test_provenance_zero_cost;
          Alcotest.test_case "minmax explain" `Quick test_explain_minmax_motions;
        ] );
    ]
