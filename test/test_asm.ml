open Gis_ir
open Gis_sim
open Gis_workloads

let machine = Test_support.machine
let observe = Test_support.observe

let test_roundtrip_minmax () =
  let t = Minmax.build () in
  let printed = Asm.print t.Minmax.cfg in
  let reparsed = Asm.parse printed in
  Alcotest.(check string) "print . parse . print is the identity" printed
    (Asm.print reparsed);
  (* Registers keep their ids, so the same simulator input applies. *)
  let input = Minmax.input t [ 8; 2; 9; 4; 6; 1 ] in
  Alcotest.(check string) "same behaviour"
    (observe t.Minmax.cfg input)
    (observe reparsed input)

let test_roundtrip_random () =
  List.iter
    (fun seed ->
      let compiled = Random_prog.generate_compiled ~seed in
      let cfg = compiled.Gis_frontend.Codegen.cfg in
      let printed = Asm.print cfg in
      let reparsed = Asm.parse printed in
      Validate.check_exn reparsed;
      Alcotest.(check string) (Fmt.str "fixpoint seed %d" seed) printed
        (Asm.print reparsed);
      let input = Random_prog.random_input ~seed compiled in
      Alcotest.(check string)
        (Fmt.str "behaviour seed %d" seed)
        (observe cfg input)
        (observe reparsed input))
    [ 2; 44; 171; 508; 999 ]

(* A scheduled, rotated graph exercises the explicit-fallthrough
   arrow (fallthrough != lexically next block). *)
let test_roundtrip_scheduled () =
  let t = Minmax.build () in
  let cfg = Cfg.deep_copy t.Minmax.cfg in
  ignore (Gis_core.Pipeline.run machine Gis_core.Config.speculative cfg);
  let printed = Asm.print cfg in
  let reparsed = Asm.parse printed in
  Alcotest.(check string) "fixpoint" printed (Asm.print reparsed);
  let input = Minmax.input t [ 5; 4; 3; 2; 1; 0 ] in
  Alcotest.(check string) "behaviour"
    (observe cfg input)
    (observe reparsed input)

(* Hand-written text in the paper's Figure 2 notation. *)
let test_parse_handwritten () =
  let src =
    {|
; the BL1 block of Figure 2, plus an exit
CL.0:
  L     r12=mem(r31,4)
  LU    r0,r31=mem(r31,8)
  C     cr7=r12,r0
  BF    CL.4,cr7,gt
MID:
  AI   r29=r29,2       # comments work here too
  B     CL.4
CL.4:
  CALL  print_int(r29)
  HALT
|}
  in
  let cfg = Asm.parse src in
  Alcotest.(check int) "three blocks" 3 (Cfg.num_blocks cfg);
  let o =
    Simulator.run machine cfg
      {
        Simulator.no_input with
        Simulator.memory = [ (1028, 7); (1032, 3) ];
        int_regs =
          [
            (Reg.Gen.reserve (Cfg.regs cfg) Reg.Gpr 31, 1024);
            (Reg.Gen.reserve (Cfg.regs cfg) Reg.Gpr 29, 10);
          ];
      }
  in
  (* u=7 > v=3, so the branch falls through to MID: i = 10+2. *)
  Alcotest.(check (list string)) "runs" [ "print_int(12)" ] o.Simulator.output

let test_parse_implicit_fallthrough_block () =
  (* A block without a terminator flows into the next one. *)
  let cfg = Asm.parse "A:\n  LI r1=4\nB:\n  CALL print_int(r1)\n  HALT\n" in
  let o = Simulator.run machine cfg Simulator.no_input in
  Alcotest.(check (list string)) "flows" [ "print_int(4)" ] o.Simulator.output

let test_parse_errors () =
  List.iter
    (fun (what, src) ->
      Alcotest.(check bool) what true
        (match Asm.parse src with
        | exception Asm.Error _ -> true
        | _ -> false))
    [
      ("empty", "   \n ; nothing\n");
      ("instr before label", "  LI r1=4\n");
      ("unknown mnemonic", "A:\n  FROB r1=2\n  HALT\n");
      ("bad register", "A:\n  LI x9=2\n  HALT\n");
      ("bad branch target", "A:\n  LI r1=2\n  B NOWHERE\n");
      ("code after terminator", "A:\n  HALT\n  LI r1=2\n");
      ("trailing cond branch", "A:\n  C cr1=r0,0\n  BT A,cr1,lt\n");
      ("update base mismatch", "A:\n  LU r0,r2=mem(r1,4)\n  HALT\n");
    ]

let test_float_and_update_forms_roundtrip () =
  let g = Reg.Gen.create () in
  let base = Reg.Gen.fresh g Reg.Gpr in
  let x = Reg.Gen.fresh g Reg.Gpr in
  let f0 = Reg.Gen.fresh g Reg.Fpr in
  let f1 = Reg.Gen.fresh g Reg.Fpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let r = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    Gis_ir.Builder.func ~reg_gen:g
      [
        ( "A",
          [
            Gis_ir.Builder.li ~dst:base 64;
            Gis_ir.Builder.load ~dst:f0 ~base ~offset:0;
            Gis_ir.Builder.load_update ~dst:x ~base ~offset:8;
            Gis_ir.Builder.fbinop Instr.Fmul ~dst:f1 ~lhs:f0 ~rhs:f0;
            Gis_ir.Builder.fcmp ~dst:c ~lhs:f1 ~rhs:f0;
            Gis_ir.Builder.store_update ~src:x ~base ~offset:4;
            Gis_ir.Builder.call ~ret:r "runtime_helper" [ x; base ];
          ],
          Gis_ir.Builder.bt ~cr:c ~cond:Instr.Ge ~taken:"A" ~fallthru:"B" );
        ("B", [], Instr.Halt);
      ]
  in
  Validate.check_exn cfg;
  let printed = Asm.print cfg in
  let reparsed = Asm.parse printed in
  Validate.check_exn reparsed;
  Alcotest.(check string) "fp/update/call fixpoint" printed (Asm.print reparsed)

let test_negative_immediates () =
  let cfg = Asm.parse "A:\n  LI r1=-7\n  AI r2=r1,-3\n  CALL print_int(r2)\n  HALT\n" in
  let o = Simulator.run machine cfg Simulator.no_input in
  Alcotest.(check (list string)) "negatives" [ "print_int(-10)" ] o.Simulator.output

let () =
  Alcotest.run "gis_asm"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "minmax" `Quick test_roundtrip_minmax;
          Alcotest.test_case "random programs" `Quick test_roundtrip_random;
          Alcotest.test_case "scheduled code" `Quick test_roundtrip_scheduled;
        ] );
      ( "parse",
        [
          Alcotest.test_case "handwritten" `Quick test_parse_handwritten;
          Alcotest.test_case "implicit fallthrough" `Quick test_parse_implicit_fallthrough_block;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "negative immediates" `Quick test_negative_immediates;
          Alcotest.test_case "fp/update/call forms" `Quick
            test_float_and_update_forms_roundtrip;
        ] );
    ]
