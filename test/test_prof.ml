(* Self-profiling layer: the profiler's exact accounting identity (unit
   and property tests), flight-recorder ring semantics, the metrics
   snapshot API, the regression gate's zero/NaN/allocation handling,
   bench history append/load/trend, and the pinned guarantee that a
   detached profiler leaves schedules byte-identical. *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_frontend
open Gis_workloads
open Gis_obs

let machine = Machine.rs6k

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Prof                                                                *)
(* ------------------------------------------------------------------ *)

(* A little deterministic work so every node has a non-zero footprint. *)
let churn n =
  let acc = ref [] in
  for i = 1 to n do
    acc := string_of_int i :: !acc
  done;
  List.length !acc

let test_prof_none_passthrough () =
  let r = Prof.record None "nothing" (fun () -> 41 + 1) in
  Alcotest.(check int) "value" 42 r

let test_prof_shape_and_identity () =
  let t = Prof.create () in
  let v =
    Prof.record (Some t) "root" (fun () ->
        ignore (Prof.record (Some t) "a" (fun () -> churn 500));
        ignore
          (Prof.record (Some t) "b" (fun () ->
               ignore (Prof.record (Some t) "b1" (fun () -> churn 200));
               churn 100));
        7)
  in
  Alcotest.(check int) "value" 7 v;
  match Prof.roots t with
  | [ root ] ->
      Alcotest.(check string) "root name" "root" root.Prof.name;
      Alcotest.(check (list string))
        "children in completion order" [ "a"; "b" ]
        (List.map (fun (n : Prof.node) -> n.Prof.name) root.Prof.children);
      Alcotest.(check int) "node count" 4 (Prof.node_count root);
      Alcotest.(check bool) "identity" true (Prof.identity_ok root);
      Alcotest.(check bool)
        "self alloc non-negative" true
        (Prof.fold
           (fun acc n -> acc && Prof.self_alloc_bytes n >= 0)
           true root);
      (* The children really allocated: the root's total covers them. *)
      let b = List.nth root.Prof.children 1 in
      Alcotest.(check bool) "b allocated" true (b.Prof.alloc_bytes > 0);
      Alcotest.(check bool)
        "parent total covers child"
        true
        (root.Prof.alloc_bytes >= b.Prof.alloc_bytes)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_prof_exception_still_records () =
  let t = Prof.create () in
  (try
     Prof.record (Some t) "outer" (fun () ->
         ignore (Prof.record (Some t) "inner" (fun () -> churn 50));
         failwith "boom")
   with Failure _ -> ());
  match Prof.roots t with
  | [ root ] ->
      Alcotest.(check string) "crashed node recorded" "outer" root.Prof.name;
      Alcotest.(check int) "inner survived" 1 (List.length root.Prof.children);
      Alcotest.(check bool) "identity" true (Prof.identity_ok root)
  | _ -> Alcotest.fail "expected exactly one root"

let test_prof_scrub_and_json () =
  let t = Prof.create () in
  ignore
    (Prof.record (Some t) "p" (fun () ->
         Prof.record (Some t) "c" (fun () -> churn 300)));
  let root = List.hd (Prof.roots t) in
  let s = Prof.scrub root in
  Alcotest.(check bool)
    "scrub zeroes everything" true
    (Prof.fold
       (fun acc n ->
         acc && n.Prof.wall_ns = 0 && n.Prof.alloc_bytes = 0
         && n.Prof.minor = 0 && n.Prof.major = 0)
       true s);
  Alcotest.(check string) "scrub keeps names" "p" s.Prof.name;
  Alcotest.(check int) "scrub keeps shape" 2 (Prof.node_count s);
  (* The JSON export parses back and is stable for scrubbed trees. *)
  let json = Json.to_string (Prof.to_json s) in
  match Json.of_string json with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check string) "json round-trip" json (Json.to_string v)

let test_prof_folded () =
  let t = Prof.create () in
  ignore
    (Prof.record (Some t) "p" (fun () ->
         Prof.record (Some t) "c" (fun () -> churn 100)));
  let root = List.hd (Prof.roots t) in
  let lines = Prof.folded root in
  Alcotest.(check int) "one line per node" 2 (List.length lines);
  Alcotest.(check bool)
    "stack paths" true
    (List.exists (fun l -> String.length l > 4 && String.sub l 0 4 = "p;c ")
       lines);
  (* Folded self values sum back to the root total — the flamegraph is
     the identity drawn as rectangles. *)
  let sum =
    List.fold_left
      (fun acc l ->
        match String.rindex_opt l ' ' with
        | None -> acc
        | Some i ->
            acc
            + int_of_string (String.sub l (i + 1) (String.length l - i - 1)))
      0
      (Prof.folded ~metric:`Alloc root)
  in
  Alcotest.(check int) "alloc folded sums to total" root.Prof.alloc_bytes sum

(* The pipeline's own tree: one "pipeline" root, the five standard
   phases as children, identity intact. *)
let test_prof_pipeline_tree () =
  let compiled = Codegen.compile_string Minmax.source in
  let prof = Prof.create () in
  let config = { Config.speculative with Config.prof = Some prof } in
  let cfg = Cfg.deep_copy compiled.Codegen.cfg in
  ignore (Pipeline.run machine config cfg);
  match Prof.roots prof with
  | [ root ] ->
      Alcotest.(check string) "root" "pipeline" root.Prof.name;
      let child_names =
        List.map (fun (n : Prof.node) -> n.Prof.name) root.Prof.children
      in
      List.iter
        (fun p ->
          Alcotest.(check bool) (p ^ " present") true (List.mem p child_names))
        Pipeline.phase_names;
      Alcotest.(check bool) "identity" true (Prof.identity_ok root);
      (* Scheduled regions show up as grandchildren of the global passes. *)
      let region_nodes =
        Prof.fold
          (fun acc (n : Prof.node) ->
            if String.length n.Prof.name >= 7
               && String.sub n.Prof.name 0 7 = "region-"
            then acc + 1
            else acc)
          0 root
      in
      Alcotest.(check bool) "regions recorded" true (region_nodes > 0)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

(* Pinned: a detached profiler must not perturb the schedule at all. *)
let test_prof_none_schedule_identical () =
  List.iter
    (fun (name, src) ->
      (* Fresh-label streams are task state, not profiler state: pin
         them per run the way the batch driver does. *)
      let compile () =
        Label.reset_fresh_counter ();
        Codegen.compile_string src
      in
      let plain = Cfg.deep_copy (compile ()).Codegen.cfg in
      ignore (Pipeline.run machine Config.speculative plain);
      let profiled = Cfg.deep_copy (compile ()).Codegen.cfg in
      let config =
        { Config.speculative with Config.prof = Some (Prof.create ()) }
      in
      ignore (Pipeline.run machine config profiled);
      Alcotest.(check string)
        (name ^ ": schedule byte-identical with profiler on")
        (Fmt.str "%a" Cfg.pp plain)
        (Fmt.str "%a" Cfg.pp profiled))
    (("minmax", Minmax.source)
    :: List.map
         (fun (p : Spec_proxy.t) -> (p.Spec_proxy.name, p.Spec_proxy.source))
         Spec_proxy.all)

(* Property: the accounting identity holds over random programs at
   every scheduling level, and every monotonic counter's self value is
   non-negative. *)
let prop_identity config seed =
  let compiled = Random_prog.generate_compiled ~seed in
  let prof = Prof.create () in
  let config = { config with Config.prof = Some prof } in
  let cfg = Cfg.deep_copy compiled.Codegen.cfg in
  ignore (Pipeline.run machine config cfg);
  List.for_all
    (fun root ->
      Prof.identity_ok root
      && Prof.fold
           (fun acc n ->
             acc
             && Prof.self_alloc_bytes n >= 0
             && Prof.self_minor n >= 0
             && Prof.self_major n >= 0)
           true root)
    (Prof.roots prof)

let qtest name prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:25 QCheck.(int_range 1 1_000_000) prop)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_flight_ring () =
  Flight.clear ();
  Alcotest.(check int) "empty after clear" 0 (List.length (Flight.dump ()));
  Flight.note "one";
  Flight.notef "two %d" 2;
  Alcotest.(check (list string))
    "order oldest first" [ "one"; "two 2" ] (Flight.dump_messages ());
  (* Overflow: only the newest [capacity] survive, still in order. *)
  Flight.clear ();
  for i = 1 to Flight.capacity + 10 do
    Flight.notef "n%d" i
  done;
  Alcotest.(check int) "recorded counts all" (Flight.capacity + 10)
    (Flight.recorded ());
  let msgs = Flight.dump_messages () in
  Alcotest.(check int) "ring keeps capacity" Flight.capacity
    (List.length msgs);
  Alcotest.(check string) "oldest surviving" "n11" (List.hd msgs);
  Alcotest.(check string)
    "newest last"
    (Fmt.str "n%d" (Flight.capacity + 10))
    (List.nth msgs (Flight.capacity - 1));
  Flight.clear ()

(* Ring capacity is configurable per explicit ring (and per process
   via gisc --flight-cap), but the default stays pinned at 64. *)
let test_flight_capacity () =
  Alcotest.(check int) "default capacity pinned" 64 Flight.capacity;
  Alcotest.(check int) "per-domain default unchanged" 64
    (Flight.get_default_capacity ());
  Alcotest.(check int) "create () uses the default" 64
    (Flight.capacity_of (Flight.create ()));
  let r = Flight.create ~capacity:3 () in
  Alcotest.(check int) "explicit capacity" 3 (Flight.capacity_of r);
  for i = 1 to 5 do
    Flight.notef_to r "n%d" i
  done;
  Alcotest.(check int) "recorded counts all" 5 (Flight.recorded_of r);
  Alcotest.(check (list string))
    "ring keeps newest 3" [ "n3"; "n4"; "n5" ]
    (List.map (fun (e : Flight.entry) -> e.Flight.msg) (Flight.dump_of r));
  Flight.clear_of r;
  Alcotest.(check int) "clear empties" 0 (List.length (Flight.dump_of r));
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Flight.create: capacity must be >= 1") (fun () ->
      ignore (Flight.create ~capacity:0 ()))

let test_flight_domain_isolation () =
  Flight.clear ();
  Flight.note "main-domain";
  let other =
    Domain.spawn (fun () ->
        Flight.note "worker-domain";
        Flight.dump_messages ())
  in
  let worker_msgs = Domain.join other in
  Alcotest.(check (list string))
    "worker sees only its own" [ "worker-domain" ] worker_msgs;
  Alcotest.(check (list string))
    "main unaffected" [ "main-domain" ] (Flight.dump_messages ());
  Flight.clear ()

let test_flight_sink () =
  Flight.clear ();
  let sink = Flight.sink () in
  sink.Sink.emit (Sink.Phase_finished { phase = "local"; seconds = 0.0 });
  Alcotest.(check int) "event mirrored" 1 (List.length (Flight.dump ()));
  Flight.clear ()

(* ------------------------------------------------------------------ *)
(* Metrics snapshot                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_snapshot () =
  Metrics.enable ();
  Metrics.reset ();
  let c = Metrics.counter "ztest.snap_total" in
  let g = Metrics.gauge "atest.snap_gauge" in
  let h = Metrics.histogram "mtest.snap_hist" in
  Metrics.incr ~by:3 c;
  Metrics.set g 2.5;
  Metrics.observe h 5.0;
  Metrics.observe h 100.0;
  let snap = Metrics.snapshot () in
  let names = List.map fst snap in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names;
  (match List.assoc_opt "ztest.snap_total" snap with
  | Some (Metrics.Counter_v 3) -> ()
  | _ -> Alcotest.fail "counter value in snapshot");
  (match List.assoc_opt "mtest.snap_hist" snap with
  | Some (Metrics.Histogram_v v) ->
      Alcotest.(check int) "hist count" 2 v.Metrics.count;
      Alcotest.(check (float 1e-9)) "hist sum" 105.0 v.Metrics.sum
  | _ -> Alcotest.fail "histogram view in snapshot");
  let v = Metrics.histogram_stats h in
  Alcotest.(check int) "stats count" 2 v.Metrics.count;
  Alcotest.(check bool) "non-empty buckets only" true
    (List.for_all (fun (_, c) -> c > 0) v.Metrics.buckets)

let test_metrics_scrub_suffixes () =
  Metrics.enable ();
  Metrics.reset ();
  Metrics.set (Metrics.gauge "ztest.thing_bytes") 4096.0;
  Metrics.set (Metrics.gauge "ztest.thing_us") 17.0;
  Metrics.set (Metrics.gauge "ztest.thing_count") 9.0;
  let dump = Json.to_string (Metrics.to_json ~deterministic:true ()) in
  let field name =
    match Json.of_string dump with
    | Ok (Json.Obj fields) -> (
        match List.assoc_opt name fields with
        | Some (Json.Obj kv) -> List.assoc_opt "value" kv
        | _ -> None)
    | _ -> None
  in
  Alcotest.(check bool) "bytes scrubbed" true
    (field "ztest.thing_bytes" = Some (Json.Float 0.0));
  Alcotest.(check bool) "us scrubbed" true
    (field "ztest.thing_us" = Some (Json.Float 0.0));
  Alcotest.(check bool) "plain gauge kept" true
    (field "ztest.thing_count" = Some (Json.Float 9.0))

let test_prof_export_metrics () =
  Metrics.enable ();
  Metrics.reset ();
  let t = Prof.create () in
  ignore
    (Prof.record (Some t) "pipeline" (fun () ->
         Prof.record (Some t) "local" (fun () -> churn 100)));
  Prof.export_metrics (List.hd (Prof.roots t));
  let snap = Metrics.snapshot () in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " exported") true
        (List.mem_assoc name snap))
    [
      "prof.pipeline_seconds"; "prof.pipeline_alloc_bytes";
      "prof.local_seconds"; "prof.local_alloc_bytes";
    ]

(* ------------------------------------------------------------------ *)
(* Regression gate: zero, NaN, allocation                              *)
(* ------------------------------------------------------------------ *)

let outcome ?tolerance ?alloc_tolerance ?alloc_floor_bytes b c =
  Regress.check ?tolerance ?alloc_tolerance ?alloc_floor_bytes ~baseline:b
    ~current:c ()

let test_regress_zero_baseline () =
  let b = Json.Obj [ ("x_cycles", Json.Int 0) ] in
  (* Any growth over a zero baseline fails absolutely — a ratio would
     be infinite and a tolerance meaningless. *)
  let o = outcome b (Json.Obj [ ("x_cycles", Json.Int 1) ]) in
  Alcotest.(check int) "one regression" 1 (List.length o.Regress.regressions);
  let msg = Fmt.str "%a" Regress.pp o in
  Alcotest.(check bool) "message reports absolute delta" true
    (contains ~needle:"absolute" msg);
  let o0 = outcome b (Json.Obj [ ("x_cycles", Json.Int 0) ]) in
  Alcotest.(check bool) "zero vs zero ok" true (Regress.ok o0)

let test_regress_nan_invalid () =
  let b = Json.Obj [ ("x_cycles", Json.Float Float.nan) ] in
  let c = Json.Obj [ ("x_cycles", Json.Int 5) ] in
  let o = outcome b c in
  Alcotest.(check int) "nan flagged invalid" 1 (List.length o.Regress.invalid);
  Alcotest.(check bool) "nan fails the gate" false (Regress.ok o);
  (* The other side too: a NaN current must not silently pass. *)
  let o2 = outcome c b in
  Alcotest.(check bool) "nan current fails" false (Regress.ok o2)

let test_regress_alloc_tolerance_and_floor () =
  let b v = Json.Obj [ ("p_bytes", Json.Int v) ] in
  (* +100% but only 1 KiB absolute: under the floor, passes. *)
  let o1 = outcome (b 1024) (b 2048) in
  Alcotest.(check bool) "tiny phase passes on floor" true (Regress.ok o1);
  (* +100% and 1 MiB absolute: both exceeded, fails as Alloc. *)
  let o2 = outcome (b 1_048_576) (b 2_097_152) in
  Alcotest.(check bool) "big growth fails" false (Regress.ok o2);
  (match o2.Regress.regressions with
  | [ f ] -> Alcotest.(check bool) "kind alloc" true (f.Regress.kind = Regress.Alloc)
  | _ -> Alcotest.fail "expected one alloc regression");
  (* +4% cycles still gates at the tight cycle tolerance. *)
  let bc v = Json.Obj [ ("x_cycles", Json.Int v) ] in
  let o3 = outcome (bc 1000) (bc 1040) in
  Alcotest.(check bool) "cycles keep 2% tolerance" false (Regress.ok o3);
  (* Large alloc growth within ratio tolerance passes: 10 MiB + 30%. *)
  let o4 = outcome (b 10_485_760) (b 13_631_488) in
  Alcotest.(check bool) "alloc within 50% ratio passes" true (Regress.ok o4)

(* ------------------------------------------------------------------ *)
(* Bench history                                                       *)
(* ------------------------------------------------------------------ *)

let entry ?(time = 0.0) ?(cycles = 1000) ?(wall = 1.0) ?(alloc = 1_000_000) ()
    =
  {
    History.time;
    label = "test";
    total_cycles = cycles;
    wall_seconds = wall;
    total_alloc_bytes = alloc;
    per_program_cycles = [ ("minmax", cycles) ];
  }

let with_temp_file f =
  let path = Filename.temp_file "gis_history" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_history_roundtrip () =
  with_temp_file (fun path ->
      Sys.remove path;
      (* append creates a missing file *)
      History.append ~path (entry ~cycles:10 ());
      History.append ~path (entry ~cycles:20 ());
      let entries, skipped = History.load ~path in
      Alcotest.(check int) "no skips" 0 (List.length skipped);
      Alcotest.(check (list int))
        "order preserved" [ 10; 20 ]
        (List.map (fun e -> e.History.total_cycles) entries);
      Alcotest.(check (list (pair string int)))
        "per-program survives" [ ("minmax", 20) ]
        (List.nth entries 1).History.per_program_cycles)

let test_history_skips_bad_lines () =
  with_temp_file (fun path ->
      History.append ~path (entry ~cycles:1 ());
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{truncated append\n";
      close_out oc;
      History.append ~path (entry ~cycles:2 ());
      let entries, skipped = History.load ~path in
      Alcotest.(check int) "two good records" 2 (List.length entries);
      Alcotest.(check int) "one skip reported" 1 (List.length skipped))

let test_history_load_missing () =
  let entries, skipped = History.load ~path:"/nonexistent/gis_history.jsonl" in
  Alcotest.(check int) "missing file is empty" 0 (List.length entries);
  Alcotest.(check int) "no skips" 0 (List.length skipped)

(* The drift thresholds are configurable (bench --trend-*-pct) but the
   defaults are pinned: cycles 2%, allocation 10%, wall clock 50%. *)
let test_history_trend_tolerances () =
  let stable = List.init 5 (fun _ -> entry ()) in
  (* +1% cycles sits inside the default 2%; +3% is out. *)
  Alcotest.(check int) "cycles +1% inside default" 0
    (List.length (History.trend (stable @ [ entry ~cycles:1010 () ])));
  Alcotest.(check int) "cycles +3% outside default" 1
    (List.length (History.trend (stable @ [ entry ~cycles:1030 () ])));
  (* +8% alloc inside the default 10%; +15% is out. *)
  Alcotest.(check int) "alloc +8% inside default" 0
    (List.length (History.trend (stable @ [ entry ~alloc:1_080_000 () ])));
  Alcotest.(check int) "alloc +15% outside default" 1
    (List.length (History.trend (stable @ [ entry ~alloc:1_150_000 () ])));
  (* +40% wall inside the default 50%; tightening the tolerance flags it. *)
  let wall_up = stable @ [ entry ~wall:1.4 () ] in
  Alcotest.(check int) "wall +40% inside default" 0
    (List.length (History.trend wall_up));
  (match History.trend ~wall_tolerance:0.3 wall_up with
  | [ d ] -> Alcotest.(check string) "metric" "wall_seconds" d.History.metric
  | ds -> Alcotest.failf "expected one wall drift, got %d" (List.length ds));
  (* Overriding one tolerance leaves the others at their defaults. *)
  Alcotest.(check int) "cycle override flags +1%" 1
    (List.length
       (History.trend ~cycle_tolerance:0.005 (stable @ [ entry ~cycles:1010 () ])))

let test_history_trend () =
  let stable = List.init 5 (fun _ -> entry ()) in
  Alcotest.(check int) "stable history has no drift" 0
    (List.length (History.trend stable));
  (* Newest run +10% cycles over the window mean: flagged. *)
  let drifted = stable @ [ entry ~cycles:1100 () ] in
  (match History.trend drifted with
  | [ d ] ->
      Alcotest.(check string) "metric" "total_cycles" d.History.metric;
      Alcotest.(check bool) "upward" true (d.History.change > 0.0)
  | ds -> Alcotest.failf "expected one drift, got %d" (List.length ds));
  (* Improvement (downward) is never flagged. *)
  Alcotest.(check int) "improvement not flagged" 0
    (List.length (History.trend (stable @ [ entry ~cycles:900 () ])));
  (* Fewer than two entries: nothing to compare. *)
  Alcotest.(check int) "single entry no findings" 0
    (List.length (History.trend [ entry () ]))

(* ------------------------------------------------------------------ *)
(* Driver integration: flight dumps and deterministic reports          *)
(* ------------------------------------------------------------------ *)

let test_driver_flight_on_failure () =
  let module D = Gis_driver.Driver in
  let tasks =
    [
      { D.name = "good"; source = D.Tiny_c Minmax.source };
      { D.name = "bad"; source = D.Tiny_c "int x; x = ;" };
    ]
  in
  let report = D.run ~simulate:false machine Config.speculative tasks in
  let result name =
    List.find (fun (r : D.task_result) -> String.equal r.D.task name)
      report.D.results
  in
  let good = result "good" and bad = result "bad" in
  Alcotest.(check bool) "good has no flight dump" true (good.D.flight = []);
  Alcotest.(check bool) "good succeeded" true (Result.is_ok good.D.outcome);
  Alcotest.(check bool) "bad failed" true (Result.is_error bad.D.outcome);
  Alcotest.(check bool) "bad carries flight dump" true (bad.D.flight <> []);
  Alcotest.(check bool) "dump names the task" true
    (List.exists (contains ~needle:"task bad") bad.D.flight);
  (* Deterministic reports drop the dumps (wall-clock prose would break
     byte-identity across runs); non-deterministic ones keep them. *)
  let det = Json.to_string (D.report_to_json ~deterministic:true report) in
  let raw = Json.to_string (D.report_to_json report) in
  Alcotest.(check bool) "deterministic report has no flight" false
    (contains ~needle:"\"flight\"" det);
  Alcotest.(check bool) "raw report keeps flight" true
    (contains ~needle:"\"flight\"" raw)

let () =
  Alcotest.run "prof"
    [
      ( "profiler",
        [
          Alcotest.test_case "None is passthrough" `Quick
            test_prof_none_passthrough;
          Alcotest.test_case "shape and identity" `Quick
            test_prof_shape_and_identity;
          Alcotest.test_case "exception still records" `Quick
            test_prof_exception_still_records;
          Alcotest.test_case "scrub and json" `Quick test_prof_scrub_and_json;
          Alcotest.test_case "folded stacks" `Quick test_prof_folded;
          Alcotest.test_case "pipeline tree" `Quick test_prof_pipeline_tree;
          Alcotest.test_case "detached profiler pins schedule" `Quick
            test_prof_none_schedule_identical;
          qtest "identity holds: local" (prop_identity Config.base);
          qtest "identity holds: useful" (prop_identity Config.useful_only);
          qtest "identity holds: speculative" (prop_identity Config.speculative);
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "ring order and wrap" `Quick test_flight_ring;
          Alcotest.test_case "configurable capacity, pinned default" `Quick
            test_flight_capacity;
          Alcotest.test_case "domain isolation" `Quick
            test_flight_domain_isolation;
          Alcotest.test_case "sink mirrors events" `Quick test_flight_sink;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "snapshot" `Quick test_metrics_snapshot;
          Alcotest.test_case "scrub suffixes" `Quick
            test_metrics_scrub_suffixes;
          Alcotest.test_case "profile export" `Quick test_prof_export_metrics;
        ] );
      ( "regression gate",
        [
          Alcotest.test_case "zero baseline" `Quick test_regress_zero_baseline;
          Alcotest.test_case "NaN is invalid" `Quick test_regress_nan_invalid;
          Alcotest.test_case "alloc tolerance and floor" `Quick
            test_regress_alloc_tolerance_and_floor;
        ] );
      ( "bench history",
        [
          Alcotest.test_case "append and load" `Quick test_history_roundtrip;
          Alcotest.test_case "skips bad lines" `Quick
            test_history_skips_bad_lines;
          Alcotest.test_case "missing file" `Quick test_history_load_missing;
          Alcotest.test_case "trend" `Quick test_history_trend;
          Alcotest.test_case "trend tolerances, pinned defaults" `Quick
            test_history_trend_tolerances;
        ] );
      ( "driver",
        [
          Alcotest.test_case "flight dump on failure" `Quick
            test_driver_flight_on_failure;
        ] );
    ]
