(* Telemetry-layer checks: the JSON codec round-trips, the simulator's
   stall attribution obeys its accounting identity, and the scheduler's
   decision trace replays exactly the motions the pipeline reports. *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_workloads
open Gis_obs

let machine = Machine.rs6k

let elements =
  let rng = Prng.create ~seed:5 in
  List.init 64 (fun _ -> Prng.int rng 1000)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("n", Json.Int (-42));
      ("x", Json.Float 1.5);
      ("s", Json.String "a \"quoted\"\nline\twith \\ specials");
      ("xs", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
      ("nested", Json.Obj [ ("inner", Json.List [ Json.Obj [ ("k", Json.Null) ] ]) ]);
    ]

let test_json_roundtrip () =
  List.iter
    (fun minify ->
      match Json.of_string (Json.to_string ~minify sample_json) with
      | Ok v ->
          Alcotest.(check string)
            (Fmt.str "round-trip (minify=%b)" minify)
            (Json.to_string sample_json) (Json.to_string v)
      | Error e -> Alcotest.fail e)
    [ true; false ]

let test_json_parser_accepts () =
  List.iter
    (fun (src, want) ->
      match Json.of_string src with
      | Ok v -> Alcotest.(check string) src want (Json.to_string ~minify:true v)
      | Error e -> Alcotest.fail (src ^ ": " ^ e))
    [
      ("  [ 1 , -2.5e2 , \"\\u0041\" ]  ", {|[1,-250.0,"A"]|});
      ("{\"a\":{},\"b\":[[]]}", {|{"a":{},"b":[[]]}|});
      ("true", "true");
      ("-0.125", "-0.125");
    ]

let test_json_parser_rejects () =
  List.iter
    (fun src ->
      match Json.of_string src with
      | Ok _ -> Alcotest.fail ("accepted invalid input: " ^ src)
      | Error _ -> ())
    [
      ""; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated"; "[1] trailing"; "1.2.3";
      (* Lone surrogate halves are not scalar values. *)
      {|"\ud83d"|}; {|"\udca9 tail"|}; {|"\ud83dA"|};
    ]

(* \uXXXX escapes decode to UTF-8, including supplementary-plane
   characters split across a surrogate pair; the encoder re-emits raw
   UTF-8 bytes, so a decode/encode/decode cycle is stable. *)
let test_json_unicode_escapes () =
  List.iter
    (fun (src, utf8) ->
      match Json.of_string src with
      | Error e -> Alcotest.fail (src ^ ": " ^ e)
      | Ok v ->
          Alcotest.(check string) src (Json.to_string ~minify:true v) utf8;
          (match Json.of_string (Json.to_string ~minify:true v) with
          | Ok v' ->
              Alcotest.(check string)
                (src ^ " re-parses")
                (Json.to_string ~minify:true v)
                (Json.to_string ~minify:true v')
          | Error e -> Alcotest.fail (src ^ " re-parse: " ^ e)))
    [
      (* BMP: U+00E9 (é) and U+4E2D (中). *)
      ({|"caf\u00e9"|}, "\"caf\xc3\xa9\"");
      ({|"\u4e2d"|}, "\"\xe4\xb8\xad\"");
      (* Supplementary plane via surrogate pairs: U+1F680 and U+1D11E,
         surrounded by ASCII. *)
      ({|"a\ud83d\ude80b"|}, "\"a\xf0\x9f\x9a\x80b\"");
      ({|"\ud834\udd1e"|}, "\"\xf0\x9d\x84\x9e\"");
    ]

(* U+2028/U+2029 are valid JSON but illegal in JavaScript string
   literals; the emitter must escape them (and only them) among the
   printable multi-byte sequences. *)
let test_json_js_separators () =
  let s = "a\xe2\x80\xa8b\xe2\x80\xa9c\xe2\x80\xaad" in
  let text = Json.to_string ~minify:true (Json.String s) in
  Alcotest.(check string)
    "line/paragraph separators escaped, other E2 80 xx raw"
    "\"a\\u2028b\\u2029c\xe2\x80\xaad\"" text;
  (match Json.of_string text with
  | Ok (Json.String s') -> Alcotest.(check string) "round-trips" s s'
  | Ok _ -> Alcotest.fail "parsed to a non-string"
  | Error e -> Alcotest.fail e);
  (* A string ending mid-sequence must not read out of bounds. *)
  ignore (Json.to_string (Json.String "\xe2\x80"));
  ignore (Json.to_string (Json.String "\xe2"))

(* Shortest round-trip float printing: every finite double re-parses to
   the exact same bits, and the literal always stays typed as a float. *)
let prop_json_float_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"float literals round-trip exactly"
    QCheck.float (fun f ->
      (not (Float.is_finite f))
      ||
      match Json.of_string (Json.to_string ~minify:true (Json.Float f)) with
      | Ok (Json.Float g) ->
          Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float g)
      | Ok _ | Error _ -> false)

let test_json_float_canonical () =
  List.iter
    (fun (f, want) ->
      Alcotest.(check string)
        (Fmt.str "%h" f)
        want
        (Json.to_string ~minify:true (Json.Float f)))
    [
      (0.1, "0.1");
      (1.0, "1.0");
      (-0.0, "-0.0");
      (1e22, "1e+22");
      (* smallest denormal: 15 significant digits already round-trip *)
      (5e-324, "4.94065645841247e-324");
      (nan, "null");
      (infinity, "null");
    ]

(* ------------------------------------------------------------------ *)
(* Span nesting and scrubbing                                          *)
(* ------------------------------------------------------------------ *)

let nested_span () =
  let (), outer =
    Span.time "outer" (fun () ->
        let (), _inner =
          Span.time "inner" (fun () ->
              let (), _leaf = Span.time "leaf" (fun () -> ()) in
              ())
        in
        ())
  in
  outer

type shape = Shape of string * shape list

let rec span_shape (s : Span.t) =
  Shape (s.Span.name, List.map span_shape s.Span.children)

let shape name children = Shape (name, children)

let rec all_zero (s : Span.t) =
  s.Span.seconds = 0.0 && List.for_all all_zero s.Span.children

let test_span_nesting () =
  let outer = nested_span () in
  Alcotest.(check bool)
    "children nest innermost-open" true
    (span_shape outer
    = shape "outer" [ shape "inner" [ shape "leaf" [] ] ]);
  (* A parent's time includes its children's. *)
  let inner = List.hd outer.Span.children in
  Alcotest.(check bool) "parent >= child" true
    (outer.Span.seconds >= inner.Span.seconds)

(* The PR-4 determinism bug: scrub zeroed only the top level, so a
   nested span leaked wall-clock into --deterministic reports. Pinned:
   scrubbing is recursive and shape-preserving, and the scrubbed JSON
   is byte-stable across runs. *)
let test_span_scrub_nested () =
  let scrubbed = Span.scrub [ nested_span () ] in
  List.iter
    (fun s ->
      Alcotest.(check bool) "every nested duration zeroed" true (all_zero s))
    scrubbed;
  Alcotest.(check bool)
    "shape preserved" true
    (List.map span_shape scrubbed
    = [ shape "outer" [ shape "inner" [ shape "leaf" [] ] ] ]);
  let again = Span.scrub [ nested_span () ] in
  Alcotest.(check string) "scrubbed JSON byte-stable"
    (Json.to_string (Span.to_json scrubbed))
    (Json.to_string (Span.to_json again))

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let with_metrics f =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect ~finally:(fun () -> Metrics.disable (); Metrics.reset ()) f

let test_metrics_counter_gauge () =
  with_metrics (fun () ->
      let c = Metrics.counter "test.hits_total" in
      Metrics.incr c;
      Metrics.incr ~by:4 c;
      Alcotest.(check (option int)) "counter accumulates" (Some 5)
        (Metrics.find_counter "test.hits_total");
      (* Same name returns the same metric, not a fresh zero. *)
      Metrics.incr (Metrics.counter "test.hits_total");
      Alcotest.(check (option int)) "registration is idempotent" (Some 6)
        (Metrics.find_counter "test.hits_total");
      Alcotest.check_raises "type clash rejected"
        (Invalid_argument "test.hits_total is already registered with another type")
        (fun () -> ignore (Metrics.gauge "test.hits_total")))

let test_metrics_disabled_noop () =
  Metrics.reset ();
  Metrics.disable ();
  let c = Metrics.counter "test.off_total" in
  Metrics.incr ~by:100 c;
  Alcotest.(check (option int)) "disabled incr is a no-op" (Some 0)
    (Metrics.find_counter "test.off_total");
  Metrics.reset ()

let test_metrics_histogram_json () =
  with_metrics (fun () ->
      let h = Metrics.histogram "test.latency_seconds" in
      List.iter (Metrics.observe h) [ 0.5; 1.5; 3.0; 100.0 ];
      let c = Metrics.counter "test.runs_total" in
      Metrics.incr c;
      let json = Metrics.to_json () in
      (match Json.member "test.latency_seconds" json with
      | Some hist ->
          (match Json.member "count" hist with
          | Some (Json.Int n) -> Alcotest.(check int) "histogram count" 4 n
          | _ -> Alcotest.fail "histogram count missing");
          (match Json.member "sum" hist with
          | Some (Json.Float s) ->
              Alcotest.(check (float 1e-9)) "histogram sum" 105.0 s
          | _ -> Alcotest.fail "histogram sum missing")
      | None -> Alcotest.fail "histogram not dumped");
      (* Deterministic dumps zero time-based metrics but keep counters. *)
      (match
         Json.member "test.latency_seconds" (Metrics.to_json ~deterministic:true ())
       with
      | Some hist -> (
          match (Json.member "count" hist, Json.member "sum" hist) with
          | Some (Json.Int 0), Some (Json.Float 0.0) -> ()
          | _ -> Alcotest.fail "_seconds metric not scrubbed")
      | None -> Alcotest.fail "scrubbed histogram missing");
      (match
         Json.member "test.runs_total" (Metrics.to_json ~deterministic:true ())
       with
      | Some (Json.Obj fields) ->
          Alcotest.(check bool) "counters survive deterministic dumps" true
            (List.assoc_opt "value" fields = Some (Json.Int 1))
      | _ -> Alcotest.fail "counter missing from deterministic dump");
      (* Dump order is sorted by name, so reports diff stably. *)
      match Metrics.to_json () with
      | Json.Obj fields ->
          let names = List.map fst fields in
          Alcotest.(check (list string)) "sorted by name"
            (List.sort String.compare names)
            names
      | _ -> Alcotest.fail "metrics dump is not an object")

(* ------------------------------------------------------------------ *)
(* Simulator stall attribution                                         *)
(* ------------------------------------------------------------------ *)

let minmax_outcome ?(trace = false) level =
  let t = Minmax.build () in
  let cfg = Cfg.deep_copy t.Minmax.cfg in
  ignore (Pipeline.run machine { Config.default with Config.level } cfg);
  Simulator.run ~trace machine cfg (Minmax.input t elements)

let test_issue_counts_sum () =
  let o = minmax_outcome Config.Speculative in
  let s = o.Simulator.telemetry in
  let issued =
    List.fold_left (fun acc u -> acc + u.Trace.issues) 0 s.Trace.units
  in
  Alcotest.(check int) "unit issues sum to instructions"
    o.Simulator.instructions issued;
  let block_instrs =
    List.fold_left (fun acc b -> acc + b.Trace.instrs) 0 s.Trace.blocks
  in
  Alcotest.(check int) "block instrs sum to instructions"
    o.Simulator.instructions block_instrs

let test_stall_identity () =
  List.iter
    (fun level ->
      let o = minmax_outcome level in
      let s = o.Simulator.telemetry in
      Alcotest.(check int)
        (Fmt.str "stall total = last issue (%a)" Config.pp_level level)
        s.Trace.last_issue (Trace.stall_total s);
      (* The per-block gap attribution covers the same cycles. *)
      let block_stalls =
        List.fold_left (fun acc b -> acc + b.Trace.stall_cycles) 0 s.Trace.blocks
      in
      Alcotest.(check int)
        (Fmt.str "block stalls = last issue (%a)" Config.pp_level level)
        s.Trace.last_issue block_stalls)
    [ Config.Local; Config.Useful; Config.Speculative ]

let test_utilization_histograms () =
  let o = minmax_outcome Config.Speculative in
  let s = o.Simulator.telemetry in
  let span = s.Trace.last_issue + 1 in
  List.iter
    (fun (u : Trace.unit_stat) ->
      let cycles =
        List.fold_left (fun acc (_, c) -> acc + c) 0 u.Trace.histogram
      in
      let issues =
        List.fold_left (fun acc (k, c) -> acc + (k * c)) 0 u.Trace.histogram
      in
      Alcotest.(check int)
        (Fmt.str "%a histogram covers the span" Instr.pp_unit_ty u.Trace.unit_)
        span cycles;
      Alcotest.(check int)
        (Fmt.str "%a histogram counts every issue" Instr.pp_unit_ty
           u.Trace.unit_)
        u.Trace.issues issues)
    s.Trace.units

let test_issue_trace_events () =
  let o = minmax_outcome ~trace:true Config.Speculative in
  let s = o.Simulator.telemetry in
  Alcotest.(check int) "one event per dynamic instruction"
    o.Simulator.instructions
    (List.length s.Trace.events);
  let gaps =
    List.fold_left (fun acc e -> acc + e.Trace.gap) 0 s.Trace.events
  in
  Alcotest.(check int) "gaps telescope to the issue span" s.Trace.last_issue
    gaps;
  ignore
    (List.fold_left
       (fun prev (e : Trace.event) ->
         Alcotest.(check bool) "issue cycles are non-decreasing" true
           (e.Trace.cycle >= prev);
         e.Trace.cycle)
       0 s.Trace.events);
  (* Without tracing the event list stays empty. *)
  let o' = minmax_outcome Config.Speculative in
  Alcotest.(check int) "no events without tracing" 0
    (List.length o'.Simulator.telemetry.Trace.events)

let test_telemetry_json_parses () =
  let o = minmax_outcome ~trace:true Config.Speculative in
  let text = Json.to_string (Trace.to_json o.Simulator.telemetry) in
  match Json.of_string text with
  | Error e -> Alcotest.fail e
  | Ok v -> (
      match Json.member "stalls" v with
      | Some stalls -> (
          match Json.member "total" stalls with
          | Some (Json.Int total) ->
              Alcotest.(check int) "serialized stall total"
                o.Simulator.telemetry.Trace.last_issue total
          | _ -> Alcotest.fail "stalls.total missing")
      | None -> Alcotest.fail "stalls object missing")

(* ------------------------------------------------------------------ *)
(* Scheduler decision trace                                            *)
(* ------------------------------------------------------------------ *)

let traced_pipeline level =
  let t = Minmax.build () in
  let cfg = Cfg.deep_copy t.Minmax.cfg in
  let sink, events = Sink.memory () in
  let config = { Config.default with Config.level; obs = sink } in
  let stats = Pipeline.run machine config cfg in
  (stats, events ())

let test_decision_trace_replays_moves () =
  List.iter
    (fun level ->
      let stats, events = traced_pipeline level in
      let expected =
        List.map
          (fun (m : Global_sched.move) ->
            ( m.Global_sched.uid,
              m.Global_sched.from_label,
              m.Global_sched.to_label,
              m.Global_sched.speculative ))
          (Pipeline.moves stats)
      in
      let traced =
        List.filter_map
          (function
            | Sink.Moved_useful { uid; from_block; to_block } ->
                Some (uid, from_block, to_block, false)
            | Sink.Moved_speculative { uid; from_block; to_block } ->
                Some (uid, from_block, to_block, true)
            | _ -> None)
          events
      in
      let move4 =
        Alcotest.testable
          (fun ppf (uid, from_l, to_l, spec) ->
            Fmt.pf ppf "%d:%s->%s%s" uid from_l to_l
              (if spec then " (spec)" else ""))
          ( = )
      in
      Alcotest.(check (list move4))
        (Fmt.str "trace replays moves (%a)" Config.pp_level level)
        expected traced)
    [ Config.Useful; Config.Speculative ]

let test_decision_trace_considers_and_blocks () =
  let _, events = traced_pipeline Config.Speculative in
  let considered =
    List.exists (function Sink.Candidate_considered _ -> true | _ -> false)
      events
  in
  let scheduled =
    List.exists (function Sink.Block_scheduled _ -> true | _ -> false) events
  in
  Alcotest.(check bool) "candidates were considered" true considered;
  Alcotest.(check bool) "local pass reported blocks" true scheduled;
  (* Every event serializes. *)
  List.iter
    (fun e ->
      match Json.of_string (Json.to_string (Sink.event_to_json e)) with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m)
    events

let test_phase_spans () =
  let stats, events = traced_pipeline Config.Speculative in
  let names = List.map (fun (s : Span.t) -> s.Span.name) stats.Pipeline.phases in
  Alcotest.(check (list string)) "the five pipeline phases, in order"
    Pipeline.phase_names names;
  List.iter
    (fun (s : Span.t) ->
      Alcotest.(check bool) (s.Span.name ^ " non-negative") true
        (s.Span.seconds >= 0.0))
    stats.Pipeline.phases;
  let total =
    List.fold_left (fun acc (s : Span.t) -> acc +. s.Span.seconds) 0.0
      stats.Pipeline.phases
  in
  Alcotest.(check (float 1e-9)) "seconds is the phase sum" total
    (Pipeline.seconds stats);
  (* The sink heard about each phase too. *)
  let finished =
    List.filter_map
      (function Sink.Phase_finished { phase; _ } -> Some phase | _ -> None)
      events
  in
  Alcotest.(check (list string)) "Phase_finished events match"
    Pipeline.phase_names finished

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)
(* ------------------------------------------------------------------ *)

(* A small fixed diamond (slow divide, two arms, join) built directly,
   so uids, labels and therefore the whole trace are deterministic —
   golden-file testable. *)
let diamond_outcome () =
  let module B = Builder in
  let g = Reg.Gen.create () in
  let p = Reg.Gen.reserve g Reg.Gpr 1 in
  let q = Reg.Gen.reserve g Reg.Gpr 2 in
  let m = Reg.Gen.fresh g Reg.Gpr in
  let c = Reg.Gen.fresh g Reg.Cr in
  let a1 = Reg.Gen.fresh g Reg.Gpr in
  let t = Reg.Gen.fresh g Reg.Gpr in
  let u = Reg.Gen.fresh g Reg.Gpr in
  let cfg =
    B.func ~reg_gen:g
      [
        ( "E",
          [ B.binop Instr.Div ~dst:m ~lhs:p ~rhs:(Instr.Imm 3);
            B.cmpi ~dst:c ~lhs:p 0 ],
          B.bt ~cr:c ~cond:Instr.Gt ~taken:"L" ~fallthru:"R" );
        ("L", [ B.addi ~dst:a1 ~lhs:p 1 ], B.jmp "J");
        ("R", [ B.addi ~dst:a1 ~lhs:q 2 ], B.jmp "J");
        ( "J",
          [ B.add ~dst:t ~lhs:m ~rhs:q; B.add ~dst:u ~lhs:t ~rhs:a1;
            B.call "print_int" [ u ] ],
          Instr.Halt );
      ]
  in
  let input =
    { Simulator.no_input with Simulator.int_regs = [ (p, 41); (q, 7) ] }
  in
  Simulator.run ~trace:true machine cfg input

(* Golden file: regenerate with
     dune exec test/regen_chrome_golden.exe > test/golden_chrome_trace.json
   after an intentional trace format change, and eyeball the diff. *)
let test_chrome_trace_golden () =
  let o = diamond_outcome () in
  let text =
    Chrome_trace.to_string ~process_name:"diamond" o.Simulator.telemetry
  in
  let golden =
    (* dune runtest runs in _build/default/test (where the dep is
       staged); dune exec runs from the project root. *)
    let path =
      if Sys.file_exists "golden_chrome_trace.json" then
        "golden_chrome_trace.json"
      else "test/golden_chrome_trace.json"
    in
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  Alcotest.(check string) "trace matches the committed golden file"
    (String.trim golden) (String.trim text)

let test_chrome_trace_schema () =
  let o = minmax_outcome ~trace:true Config.Speculative in
  let json = Chrome_trace.to_json o.Simulator.telemetry in
  (* Emitted text re-parses (well-formed JSON). *)
  (match Json.of_string (Json.to_string json) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Json.member "displayTimeUnit" json with
  | Some (Json.String _) -> ()
  | _ -> Alcotest.fail "displayTimeUnit missing");
  let events = Json.to_list (Option.get (Json.member "traceEvents" json)) in
  let phase e =
    match Json.member "ph" e with Some (Json.String p) -> p | _ -> "?"
  in
  let int_field k e =
    match Json.member k e with Some (Json.Int n) -> Some n | _ -> None
  in
  List.iter
    (fun e ->
      (* Every event carries pid/tid; slices also ts and dur >= 1. *)
      Alcotest.(check bool) "pid present" true (int_field "pid" e <> None);
      Alcotest.(check bool) "tid present" true (int_field "tid" e <> None);
      match phase e with
      | "X" ->
          Alcotest.(check bool) "slice has ts" true (int_field "ts" e <> None);
          Alcotest.(check bool) "slice dur >= 1" true
            (match int_field "dur" e with Some d -> d >= 1 | None -> false)
      | "i" | "M" -> ()
      | p -> Alcotest.fail ("unexpected event phase " ^ p))
    events;
  let slices = List.filter (fun e -> phase e = "X") events in
  Alcotest.(check int) "one slice per dynamic instruction"
    o.Simulator.instructions (List.length slices);
  (* Three unit tracks + process name = 4 metadata events. *)
  Alcotest.(check int) "metadata events" 4
    (List.length (List.filter (fun e -> phase e = "M") events))

(* ------------------------------------------------------------------ *)
(* Regression gate                                                     *)
(* ------------------------------------------------------------------ *)

let report cycles nested =
  Json.Obj
    [
      ("label", Json.String "x");
      ("timing_seconds", Json.Float 9.9);
      ( "table",
        Json.List
          [
            Json.Obj
              [
                ("program", Json.String "p");
                ("base_cycles", Json.Int cycles);
                ( "cycles",
                  Json.Obj [ ("minmax", Json.Int nested) ] );
              ];
          ] );
    ]

let test_regress_self_ok () =
  let r = report 1000 200 in
  let o = Regress.check ~baseline:r ~current:r () in
  Alcotest.(check bool) "self-comparison is ok" true (Regress.ok o);
  Alcotest.(check int) "both cycle metrics compared" 2 o.Regress.compared;
  Alcotest.(check int) "no regressions" 0 (List.length o.Regress.regressions)

let test_regress_detects () =
  (* +5% on a cycle metric fails; +5% on a timing float does not. *)
  let o =
    Regress.check ~baseline:(report 1000 200) ~current:(report 1050 200) ()
  in
  Alcotest.(check bool) "5% regression fails the gate" false (Regress.ok o);
  (match o.Regress.regressions with
  | [ f ] ->
      Alcotest.(check string) "path names the metric"
        "table[0].base_cycles" f.Regress.path;
      Alcotest.(check (float 1e-9)) "ratio" 1.05 (Regress.ratio f)
  | _ -> Alcotest.fail "expected exactly one regression");
  (* Within tolerance passes. *)
  let o =
    Regress.check ~baseline:(report 1000 200) ~current:(report 1010 200) ()
  in
  Alcotest.(check bool) "1% is within the 2% tolerance" true (Regress.ok o);
  (* Improvements are reported but do not fail. *)
  let o =
    Regress.check ~baseline:(report 1000 200) ~current:(report 900 200) ()
  in
  Alcotest.(check bool) "improvement is ok" true (Regress.ok o);
  Alcotest.(check int) "improvement recorded" 1
    (List.length o.Regress.improvements)

let test_regress_nested_and_missing () =
  (* Numeric leaves under a "cycles" object count as cycle metrics. *)
  let o =
    Regress.check ~baseline:(report 1000 200) ~current:(report 1000 300) ()
  in
  Alcotest.(check bool) "nested cycles table gated" false (Regress.ok o);
  (* A cycle-bearing subtree missing from the current report fails;
     a missing non-cycle field is ignored. *)
  let chopped =
    Json.Obj [ ("label", Json.String "x"); ("timing_seconds", Json.Float 0.0) ]
  in
  let o = Regress.check ~baseline:(report 1000 200) ~current:chopped () in
  Alcotest.(check bool) "missing cycle metrics fail" false (Regress.ok o);
  Alcotest.(check bool) "missing paths recorded" true (o.Regress.missing <> []);
  let o = Regress.check ~baseline:chopped ~current:(report 1000 200) () in
  Alcotest.(check bool) "extra current-only fields are fine" true
    (Regress.ok o)

let () =
  Alcotest.run "gis_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parser accepts" `Quick test_json_parser_accepts;
          Alcotest.test_case "parser rejects" `Quick test_json_parser_rejects;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "js separators" `Quick test_json_js_separators;
          Alcotest.test_case "float canonical" `Quick test_json_float_canonical;
          QCheck_alcotest.to_alcotest prop_json_float_roundtrip;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "recursive scrub" `Quick test_span_scrub_nested;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter and gauge" `Quick
            test_metrics_counter_gauge;
          Alcotest.test_case "disabled no-op" `Quick test_metrics_disabled_noop;
          Alcotest.test_case "histogram json" `Quick test_metrics_histogram_json;
        ] );
      ( "chrome trace",
        [
          Alcotest.test_case "golden file" `Quick test_chrome_trace_golden;
          Alcotest.test_case "schema" `Quick test_chrome_trace_schema;
        ] );
      ( "regression gate",
        [
          Alcotest.test_case "self ok" `Quick test_regress_self_ok;
          Alcotest.test_case "detects regressions" `Quick test_regress_detects;
          Alcotest.test_case "nested and missing" `Quick
            test_regress_nested_and_missing;
        ] );
      ( "stall attribution",
        [
          Alcotest.test_case "issue counts" `Quick test_issue_counts_sum;
          Alcotest.test_case "accounting identity" `Quick test_stall_identity;
          Alcotest.test_case "utilization histograms" `Quick
            test_utilization_histograms;
          Alcotest.test_case "issue trace" `Quick test_issue_trace_events;
          Alcotest.test_case "telemetry json" `Quick test_telemetry_json_parses;
        ] );
      ( "decision trace",
        [
          Alcotest.test_case "replays moves" `Quick
            test_decision_trace_replays_moves;
          Alcotest.test_case "considers and blocks" `Quick
            test_decision_trace_considers_and_blocks;
          Alcotest.test_case "phase spans" `Quick test_phase_spans;
        ] );
    ]
