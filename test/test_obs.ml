(* Telemetry-layer checks: the JSON codec round-trips, the simulator's
   stall attribution obeys its accounting identity, and the scheduler's
   decision trace replays exactly the motions the pipeline reports. *)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_workloads
open Gis_obs

let machine = Machine.rs6k

let elements =
  let rng = Prng.create ~seed:5 in
  List.init 64 (fun _ -> Prng.int rng 1000)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("n", Json.Int (-42));
      ("x", Json.Float 1.5);
      ("s", Json.String "a \"quoted\"\nline\twith \\ specials");
      ("xs", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
      ("nested", Json.Obj [ ("inner", Json.List [ Json.Obj [ ("k", Json.Null) ] ]) ]);
    ]

let test_json_roundtrip () =
  List.iter
    (fun minify ->
      match Json.of_string (Json.to_string ~minify sample_json) with
      | Ok v ->
          Alcotest.(check string)
            (Fmt.str "round-trip (minify=%b)" minify)
            (Json.to_string sample_json) (Json.to_string v)
      | Error e -> Alcotest.fail e)
    [ true; false ]

let test_json_parser_accepts () =
  List.iter
    (fun (src, want) ->
      match Json.of_string src with
      | Ok v -> Alcotest.(check string) src want (Json.to_string ~minify:true v)
      | Error e -> Alcotest.fail (src ^ ": " ^ e))
    [
      ("  [ 1 , -2.5e2 , \"\\u0041\" ]  ", {|[1,-250.0,"A"]|});
      ("{\"a\":{},\"b\":[[]]}", {|{"a":{},"b":[[]]}|});
      ("true", "true");
      ("-0.125", "-0.125");
    ]

let test_json_parser_rejects () =
  List.iter
    (fun src ->
      match Json.of_string src with
      | Ok _ -> Alcotest.fail ("accepted invalid input: " ^ src)
      | Error _ -> ())
    [
      ""; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated"; "[1] trailing"; "1.2.3";
      (* Lone surrogate halves are not scalar values. *)
      {|"\ud83d"|}; {|"\udca9 tail"|}; {|"\ud83dA"|};
    ]

(* \uXXXX escapes decode to UTF-8, including supplementary-plane
   characters split across a surrogate pair; the encoder re-emits raw
   UTF-8 bytes, so a decode/encode/decode cycle is stable. *)
let test_json_unicode_escapes () =
  List.iter
    (fun (src, utf8) ->
      match Json.of_string src with
      | Error e -> Alcotest.fail (src ^ ": " ^ e)
      | Ok v ->
          Alcotest.(check string) src (Json.to_string ~minify:true v) utf8;
          (match Json.of_string (Json.to_string ~minify:true v) with
          | Ok v' ->
              Alcotest.(check string)
                (src ^ " re-parses")
                (Json.to_string ~minify:true v)
                (Json.to_string ~minify:true v')
          | Error e -> Alcotest.fail (src ^ " re-parse: " ^ e)))
    [
      (* BMP: U+00E9 (é) and U+4E2D (中). *)
      ({|"caf\u00e9"|}, "\"caf\xc3\xa9\"");
      ({|"\u4e2d"|}, "\"\xe4\xb8\xad\"");
      (* Supplementary plane via surrogate pairs: U+1F680 and U+1D11E,
         surrounded by ASCII. *)
      ({|"a\ud83d\ude80b"|}, "\"a\xf0\x9f\x9a\x80b\"");
      ({|"\ud834\udd1e"|}, "\"\xf0\x9d\x84\x9e\"");
    ]

(* ------------------------------------------------------------------ *)
(* Simulator stall attribution                                         *)
(* ------------------------------------------------------------------ *)

let minmax_outcome ?(trace = false) level =
  let t = Minmax.build () in
  let cfg = Cfg.deep_copy t.Minmax.cfg in
  ignore (Pipeline.run machine { Config.default with Config.level } cfg);
  Simulator.run ~trace machine cfg (Minmax.input t elements)

let test_issue_counts_sum () =
  let o = minmax_outcome Config.Speculative in
  let s = o.Simulator.telemetry in
  let issued =
    List.fold_left (fun acc u -> acc + u.Trace.issues) 0 s.Trace.units
  in
  Alcotest.(check int) "unit issues sum to instructions"
    o.Simulator.instructions issued;
  let block_instrs =
    List.fold_left (fun acc b -> acc + b.Trace.instrs) 0 s.Trace.blocks
  in
  Alcotest.(check int) "block instrs sum to instructions"
    o.Simulator.instructions block_instrs

let test_stall_identity () =
  List.iter
    (fun level ->
      let o = minmax_outcome level in
      let s = o.Simulator.telemetry in
      Alcotest.(check int)
        (Fmt.str "stall total = last issue (%a)" Config.pp_level level)
        s.Trace.last_issue (Trace.stall_total s);
      (* The per-block gap attribution covers the same cycles. *)
      let block_stalls =
        List.fold_left (fun acc b -> acc + b.Trace.stall_cycles) 0 s.Trace.blocks
      in
      Alcotest.(check int)
        (Fmt.str "block stalls = last issue (%a)" Config.pp_level level)
        s.Trace.last_issue block_stalls)
    [ Config.Local; Config.Useful; Config.Speculative ]

let test_utilization_histograms () =
  let o = minmax_outcome Config.Speculative in
  let s = o.Simulator.telemetry in
  let span = s.Trace.last_issue + 1 in
  List.iter
    (fun (u : Trace.unit_stat) ->
      let cycles =
        List.fold_left (fun acc (_, c) -> acc + c) 0 u.Trace.histogram
      in
      let issues =
        List.fold_left (fun acc (k, c) -> acc + (k * c)) 0 u.Trace.histogram
      in
      Alcotest.(check int)
        (Fmt.str "%a histogram covers the span" Instr.pp_unit_ty u.Trace.unit_)
        span cycles;
      Alcotest.(check int)
        (Fmt.str "%a histogram counts every issue" Instr.pp_unit_ty
           u.Trace.unit_)
        u.Trace.issues issues)
    s.Trace.units

let test_issue_trace_events () =
  let o = minmax_outcome ~trace:true Config.Speculative in
  let s = o.Simulator.telemetry in
  Alcotest.(check int) "one event per dynamic instruction"
    o.Simulator.instructions
    (List.length s.Trace.events);
  let gaps =
    List.fold_left (fun acc e -> acc + e.Trace.gap) 0 s.Trace.events
  in
  Alcotest.(check int) "gaps telescope to the issue span" s.Trace.last_issue
    gaps;
  ignore
    (List.fold_left
       (fun prev (e : Trace.event) ->
         Alcotest.(check bool) "issue cycles are non-decreasing" true
           (e.Trace.cycle >= prev);
         e.Trace.cycle)
       0 s.Trace.events);
  (* Without tracing the event list stays empty. *)
  let o' = minmax_outcome Config.Speculative in
  Alcotest.(check int) "no events without tracing" 0
    (List.length o'.Simulator.telemetry.Trace.events)

let test_telemetry_json_parses () =
  let o = minmax_outcome ~trace:true Config.Speculative in
  let text = Json.to_string (Trace.to_json o.Simulator.telemetry) in
  match Json.of_string text with
  | Error e -> Alcotest.fail e
  | Ok v -> (
      match Json.member "stalls" v with
      | Some stalls -> (
          match Json.member "total" stalls with
          | Some (Json.Int total) ->
              Alcotest.(check int) "serialized stall total"
                o.Simulator.telemetry.Trace.last_issue total
          | _ -> Alcotest.fail "stalls.total missing")
      | None -> Alcotest.fail "stalls object missing")

(* ------------------------------------------------------------------ *)
(* Scheduler decision trace                                            *)
(* ------------------------------------------------------------------ *)

let traced_pipeline level =
  let t = Minmax.build () in
  let cfg = Cfg.deep_copy t.Minmax.cfg in
  let sink, events = Sink.memory () in
  let config = { Config.default with Config.level; obs = sink } in
  let stats = Pipeline.run machine config cfg in
  (stats, events ())

let test_decision_trace_replays_moves () =
  List.iter
    (fun level ->
      let stats, events = traced_pipeline level in
      let expected =
        List.map
          (fun (m : Global_sched.move) ->
            ( m.Global_sched.uid,
              m.Global_sched.from_label,
              m.Global_sched.to_label,
              m.Global_sched.speculative ))
          (Pipeline.moves stats)
      in
      let traced =
        List.filter_map
          (function
            | Sink.Moved_useful { uid; from_block; to_block } ->
                Some (uid, from_block, to_block, false)
            | Sink.Moved_speculative { uid; from_block; to_block } ->
                Some (uid, from_block, to_block, true)
            | _ -> None)
          events
      in
      let move4 =
        Alcotest.testable
          (fun ppf (uid, from_l, to_l, spec) ->
            Fmt.pf ppf "%d:%s->%s%s" uid from_l to_l
              (if spec then " (spec)" else ""))
          ( = )
      in
      Alcotest.(check (list move4))
        (Fmt.str "trace replays moves (%a)" Config.pp_level level)
        expected traced)
    [ Config.Useful; Config.Speculative ]

let test_decision_trace_considers_and_blocks () =
  let _, events = traced_pipeline Config.Speculative in
  let considered =
    List.exists (function Sink.Candidate_considered _ -> true | _ -> false)
      events
  in
  let scheduled =
    List.exists (function Sink.Block_scheduled _ -> true | _ -> false) events
  in
  Alcotest.(check bool) "candidates were considered" true considered;
  Alcotest.(check bool) "local pass reported blocks" true scheduled;
  (* Every event serializes. *)
  List.iter
    (fun e ->
      match Json.of_string (Json.to_string (Sink.event_to_json e)) with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m)
    events

let test_phase_spans () =
  let stats, events = traced_pipeline Config.Speculative in
  let names = List.map (fun (s : Span.t) -> s.Span.name) stats.Pipeline.phases in
  Alcotest.(check (list string)) "the five pipeline phases, in order"
    Pipeline.phase_names names;
  List.iter
    (fun (s : Span.t) ->
      Alcotest.(check bool) (s.Span.name ^ " non-negative") true
        (s.Span.seconds >= 0.0))
    stats.Pipeline.phases;
  let total =
    List.fold_left (fun acc (s : Span.t) -> acc +. s.Span.seconds) 0.0
      stats.Pipeline.phases
  in
  Alcotest.(check (float 1e-9)) "seconds is the phase sum" total
    (Pipeline.seconds stats);
  (* The sink heard about each phase too. *)
  let finished =
    List.filter_map
      (function Sink.Phase_finished { phase; _ } -> Some phase | _ -> None)
      events
  in
  Alcotest.(check (list string)) "Phase_finished events match"
    Pipeline.phase_names finished

let () =
  Alcotest.run "gis_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parser accepts" `Quick test_json_parser_accepts;
          Alcotest.test_case "parser rejects" `Quick test_json_parser_rejects;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
        ] );
      ( "stall attribution",
        [
          Alcotest.test_case "issue counts" `Quick test_issue_counts_sum;
          Alcotest.test_case "accounting identity" `Quick test_stall_identity;
          Alcotest.test_case "utilization histograms" `Quick
            test_utilization_histograms;
          Alcotest.test_case "issue trace" `Quick test_issue_trace_events;
          Alcotest.test_case "telemetry json" `Quick test_telemetry_json_parses;
        ] );
      ( "decision trace",
        [
          Alcotest.test_case "replays moves" `Quick
            test_decision_trace_replays_moves;
          Alcotest.test_case "considers and blocks" `Quick
            test_decision_trace_considers_and_blocks;
          Alcotest.test_case "phase spans" `Quick test_phase_spans;
        ] );
    ]
