(* gisc — the global instruction scheduling compiler driver.

   Compiles Tiny-C source (a file, or one of the built-in workloads)
   through the full pipeline of the paper and optionally simulates the
   result on a parametric superscalar machine:

     gisc --workload minmax --level speculative --show-code --simulate
     gisc my_program.tc --level useful --width 4 --simulate
     gisc --workload minmax --simulate --trace-issue
     gisc --workload minmax --simulate --stats out.json
*)

open Gis_ir
open Gis_machine
open Gis_core
open Gis_sim
open Gis_frontend
open Gis_workloads
open Gis_obs
open Cmdliner
module Exit = Gis_driver.Exit_codes

type source =
  | From_file of string
  | Workload of string

let builtin_workloads =
  ("minmax", Minmax.source)
  :: List.map (fun (p : Spec_proxy.t) -> (p.Spec_proxy.name, p.Spec_proxy.source))
       Spec_proxy.all

let load_source = function
  | From_file path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      (Filename.basename path, s)
  | Workload name -> (
      match List.assoc_opt name builtin_workloads with
      | Some src -> (name, src)
      | None ->
          Fmt.epr "unknown workload %s (available: %a)@." name
            Fmt.(list ~sep:comma string)
            (List.map fst builtin_workloads);
          exit Exit.usage_error)

let default_input compiled ~elements ~seed =
  let rng = Prng.create ~seed in
  let arrays =
    List.map
      (fun (name, _, len) ->
        (name, List.init (min len elements) (fun _ -> Prng.int rng 1000)))
      compiled.Codegen.arrays
  in
  let n_binding =
    match List.assoc_opt "n" compiled.Codegen.vars with
    | Some reg -> [ (reg, elements) ]
    | None -> []
  in
  {
    Simulator.no_input with
    Simulator.int_regs = n_binding;
    memory = Codegen.array_input compiled arrays;
  }

let move_to_json (m : Global_sched.move) =
  Json.Obj
    [
      ("uid", Json.Int m.Global_sched.uid);
      ("from", Json.String m.Global_sched.from_label);
      ("to", Json.String m.Global_sched.to_label);
      ("speculative", Json.Bool m.Global_sched.speculative);
      ( "renamed",
        match m.Global_sched.renamed with
        | None -> Json.Null
        | Some (a, b) ->
            Json.Obj
              [
                ("from_reg", Json.String (Fmt.str "%a" Reg.pp a));
                ("to_reg", Json.String (Fmt.str "%a" Reg.pp b));
              ] );
      ( "duplicated_into",
        Json.List
          (List.map (fun l -> Json.String l) m.Global_sched.duplicated_into) );
    ]

let outcome_to_json (o : Simulator.outcome) =
  Json.Obj
    [
      ("stop", Json.String (Fmt.str "%a" Simulator.pp_stop_reason o.Simulator.stop));
      ("cycles", Json.Int o.Simulator.cycles);
      ("instructions", Json.Int o.Simulator.instructions);
      ("telemetry", Trace.to_json o.Simulator.telemetry);
    ]

let config_of_level level =
  match level with
  | "local" -> Config.base
  | "useful" -> Config.useful_only
  | "speculative" | "spec" -> Config.speculative
  | other ->
      Fmt.epr "unknown level %s (local|useful|speculative)@." other;
      exit Exit.usage_error

let write_file path s =
  match open_out path with
  | exception Sys_error m ->
      Fmt.epr "cannot write %s: %s@." path m;
      exit Exit.usage_error
  | oc ->
      output_string oc s;
      output_char oc '\n';
      close_out oc

let write_json path json = write_file path (Json.to_string json)

(* Batch mode: schedule every file in DIR (plus nothing else) across a
   pool of [jobs] domains. Exit code 0 when the whole batch succeeds,
   5 when every failure is a budget timeout, 4 when any task actually
   crashed, mismatched, or failed to compile. *)
let run_batch dir jobs width simulate elements seed deterministic stats_file
    config timeout =
  let machine = if width = 1 then Machine.rs6k else Machine.superscalar ~width in
  let entries =
    match Sys.readdir dir with
    | exception Sys_error m ->
        Fmt.epr "cannot read batch directory: %s@." m;
        exit Exit.usage_error
    | names ->
        Array.sort String.compare names;
        Array.to_list names
        |> List.filter (fun n -> not (Sys.is_directory (Filename.concat dir n)))
        |> List.map (fun n -> Gis_driver.Driver.task_of_file (Filename.concat dir n))
  in
  if entries = [] then begin
    Fmt.epr "batch directory %s has no files@." dir;
    exit Exit.usage_error
  end;
  let report =
    Gis_driver.Driver.run ~jobs ?timeout ~simulate ~elements ~seed machine
      config entries
  in
  Fmt.pr "batch %s: %d tasks, %d jobs@.%a" dir report.Gis_driver.Driver.pool.Gis_driver.Driver.tasks
    report.Gis_driver.Driver.pool.Gis_driver.Driver.jobs Gis_driver.Driver.pp_table report;
  (* Fault-isolation post-mortem: each failed task carries its worker's
     flight-recorder ring — the last events before the failure. *)
  List.iter
    (fun (t : Gis_driver.Driver.task_result) ->
      match t.Gis_driver.Driver.outcome with
      | Error e when t.Gis_driver.Driver.flight <> [] ->
          Fmt.epr "@.%s failed (%a); flight recorder, oldest first:@."
            t.Gis_driver.Driver.task Gis_driver.Driver.pp_error e;
          List.iter (fun m -> Fmt.epr "  %s@." m) t.Gis_driver.Driver.flight
      | _ -> ())
    report.Gis_driver.Driver.results;
  Option.iter
    (fun path ->
      let json =
        match Gis_driver.Driver.report_to_json ~deterministic report with
        | Json.Obj fields ->
            Json.Obj (fields @ [ ("metrics", Metrics.to_json ~deterministic ()) ])
        | j -> j
      in
      write_json path json;
      Fmt.pr "@.stats written to %s@." path)
    stats_file;
  (* A batch that only ran out of budget is a different condition than
     one whose tasks crashed: timeouts say "give me more time", crashes
     say "the compiler is broken". *)
  match Gis_driver.Driver.failures report with
  | [] -> exit Exit.ok
  | fails ->
      let timeout_only =
        List.for_all
          (fun (_, e) ->
            match e with Gis_driver.Driver.Timed_out _ -> true | _ -> false)
          fails
      in
      exit
        (if timeout_only then Exit.batch_timeout_only
         else Exit.batch_partial_failure)

let run_gisc source batch jobs level width show_code simulate elements seed
    trace_issue trace_out pipeline_view deterministic stats_file regalloc
    pressure_aware regs no_disambig timeout flight_cap verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  Option.iter
    (fun cap ->
      if cap < 1 then begin
        Fmt.epr "--flight-cap must be >= 1 (got %d)@." cap;
        exit Exit.usage_error
      end;
      Flight.set_default_capacity cap)
    flight_cap;
  Metrics.enable ();
  let with_alloc config =
    {
      config with
      Config.regalloc;
      pressure_aware;
      regs;
      disambiguate = not no_disambig;
    }
  in
  (match batch with
  | Some dir ->
      run_batch dir jobs width simulate elements seed deterministic stats_file
        (with_alloc (config_of_level level))
        timeout
  | None -> ());
  let name, src = load_source source in
  let machine =
    if width = 1 then Machine.rs6k else Machine.superscalar ~width
  in
  let sink, sink_events = Sink.memory () in
  let config = with_alloc (config_of_level level) in
  (* A provenance table costs a hashtable insert per instruction and
     motion, so only attach one when a JSON report will use it. Same
     for the self-profiler: it feeds the stats report and the Chrome
     trace's profiler process. *)
  let prov =
    if stats_file <> None then Some (Provenance.create ()) else None
  in
  let prof =
    if stats_file <> None || trace_out <> None then Some (Prof.create ())
    else None
  in
  let config = { config with Config.obs = sink; prov; prof } in
  let prof_root () =
    match prof with
    | None -> None
    | Some p -> ( match Prof.roots p with r :: _ -> Some r | [] -> None)
  in
  let compile_input () =
    (* Files ending in .s hold pseudo-assembly in the paper's Figure 2
       notation; everything else is Tiny-C. *)
    if Filename.check_suffix name ".s" then
      { Codegen.cfg = Asm.parse src; vars = []; arrays = [] }
    else Codegen.compile_string src
  in
  match compile_input () with
  | exception Parser.Error m
  | exception Lexer.Error m
  | exception Codegen.Error m
  | exception Asm.Error m ->
      Fmt.epr "%s: %s@." name m;
      exit Exit.compile_error
  | compiled ->
      let baseline = Cfg.deep_copy compiled.Codegen.cfg in
      ignore (Pipeline.run machine Config.base baseline);
      let cfg = Cfg.deep_copy compiled.Codegen.cfg in
      let stats =
        try Pipeline.run machine config cfg
        with Gis_regalloc.Regalloc.Infeasible m ->
          Fmt.epr "%s: regalloc infeasible: %s@." name m;
          exit Exit.regalloc_infeasible
      in
      Validate.check_exn cfg;
      Fmt.pr "%s: %d blocks, %d instructions; machine %a; level %a@." name
        (Cfg.num_blocks cfg) (Cfg.instr_count cfg) Machine.pp machine
        Config.pp_level config.Config.level;
      Fmt.pr "unrolled %d loops, rotated %d; %d interblock motions@."
        stats.Pipeline.unrolled stats.Pipeline.rotated
        (List.length (Pipeline.moves stats));
      Option.iter
        (fun alloc ->
          Fmt.pr "regalloc: %a@." Gis_regalloc.Regalloc.pp alloc)
        stats.Pipeline.regalloc;
      List.iter
        (fun m -> Fmt.pr "  %a@." Global_sched.pp_move m)
        (Pipeline.moves stats);
      if verbose then
        List.iter
          (fun s -> Fmt.pr "  phase %a@." Span.pp s)
          stats.Pipeline.phases;
      if show_code then Fmt.pr "@.%a@." Cfg.pp cfg;
      if (trace_out <> None || pipeline_view) && not simulate then
        Fmt.epr "note: --trace-out and --pipeline-view need --simulate@.";
      let want_trace = trace_issue || trace_out <> None || pipeline_view in
      let simulation =
        if not simulate then None
        else begin
          let input = default_input compiled ~elements ~seed in
          (* With --regalloc the scheduled code runs on physical names:
             feed it the remapped input, route spill traffic through the
             frame register's spill segment, and run the full
             post-allocation verifier. Observables compare exactly —
             spill storage is disjoint by construction. *)
          let sched_input, frame =
            match stats.Pipeline.regalloc with
            | Some alloc ->
                ( Gis_regalloc.Regalloc.remap_input alloc input,
                  alloc.Gis_regalloc.Regalloc.frame )
            | None -> (input, None)
          in
          Option.iter
            (fun alloc ->
              match
                Gis_regalloc.Regalloc.verify ?gprs:regs ?fprs:regs ~machine
                  ~baseline ~allocated:cfg alloc input
              with
              | Ok () -> Fmt.pr "regalloc: verified@."
              | Error m ->
                  Fmt.epr "INTERNAL ERROR: allocation verifier failed: %s@." m;
                  exit Exit.verification_failure)
            stats.Pipeline.regalloc;
          let ob = Simulator.run machine baseline input in
          let os =
            Simulator.run ~trace:want_trace ?frame machine cfg sched_input
          in
          let base_obs = Simulator.observables ob in
          let sched_obs = Simulator.observables os in
          if not (String.equal base_obs sched_obs) then begin
            Fmt.epr "INTERNAL ERROR: scheduling changed observable behaviour@.";
            Fmt.epr "--- base observables ---@.%s@." base_obs;
            Fmt.epr "--- scheduled observables ---@.%s@." sched_obs;
            exit Exit.verification_failure
          end;
          Fmt.pr "@.simulation (%d array elements):@." elements;
          Fmt.pr "  base      %7d cycles, %6d instructions@." ob.Simulator.cycles
            ob.Simulator.instructions;
          Fmt.pr "  scheduled %7d cycles, %6d instructions (%.1f%% faster)@."
            os.Simulator.cycles os.Simulator.instructions
            (100.0
            *. (1.0 -. (float_of_int os.Simulator.cycles /. float_of_int ob.Simulator.cycles)));
          Fmt.pr "  output: %a@."
            Fmt.(list ~sep:comma string)
            os.Simulator.output;
          (* Schedule-quality bound on the run we just simulated: how
             many of the achieved cycles were forced by dependences and
             unit capacity, and how many are attributable gap. *)
          let bounds =
            Gis_bounds.Bounds.compute ~machine
              ~halted:(os.Simulator.stop = Simulator.Halted)
              cfg os.Simulator.telemetry
          in
          Gis_bounds.Bounds.export_metrics bounds;
          Fmt.pr
            "  bound     %7d cycles lower bound (critical path %d, resources \
             %d); gap %d@."
            bounds.Gis_bounds.Bounds.lower_bound bounds.Gis_bounds.Bounds.cp_lb
            bounds.Gis_bounds.Bounds.res_lb bounds.Gis_bounds.Bounds.gap;
          Fmt.pr "@.stall breakdown (scheduled):@.";
          Report.pp_summary Fmt.stdout os.Simulator.telemetry;
          if trace_issue then begin
            Fmt.pr "@.issue trace (scheduled):@.";
            Report.pp_issue_diagram Fmt.stdout os.Simulator.telemetry
          end;
          if pipeline_view then begin
            Fmt.pr "@.pipeline view (scheduled):@.";
            Report.pp_pipeline Fmt.stdout os.Simulator.telemetry
          end;
          Option.iter
            (fun path ->
              write_file path
                (Chrome_trace.to_string ~process_name:name
                   ?profile:(prof_root ())
                   ~slack:(Gis_bounds.Bounds.slack_of_uid bounds)
                   os.Simulator.telemetry);
              Fmt.pr "@.chrome trace written to %s (load in Perfetto)@." path)
            trace_out;
          Some (ob, os, bounds)
        end
      in
      match stats_file with
      | None -> ()
      | Some path ->
          (* --deterministic: zero every wall-clock field so reports
             from different runs and machines diff cleanly. *)
          let phases =
            if deterministic then Span.scrub stats.Pipeline.phases
            else stats.Pipeline.phases
          in
          let events =
            List.map
              (function
                | Sink.Phase_finished p when deterministic ->
                    Sink.Phase_finished { p with seconds = 0.0 }
                | e -> e)
              (sink_events ())
          in
          let report =
            Json.Obj
              ([
                 ("program", Json.String name);
                 ("machine", Json.String (Machine.name machine));
                 ("level", Json.String (Fmt.str "%a" Config.pp_level config.Config.level));
                 ("elements", Json.Int elements);
                 ("seed", Json.Int seed);
                 ("metrics", Metrics.to_json ~deterministic ());
                 ( "profile",
                   match prof_root () with
                   | None -> Json.Null
                   | Some r ->
                       Prof.to_json (if deterministic then Prof.scrub r else r)
                 );
                 ( "provenance",
                   match prov with
                   | None -> Json.Null
                   | Some p -> Provenance.to_json p );
                 ( "scheduler",
                   Json.Obj
                     [
                       ("unrolled", Json.Int stats.Pipeline.unrolled);
                       ("rotated", Json.Int stats.Pipeline.rotated);
                       ("phases", Span.to_json phases);
                       ( "moves",
                         Json.List (List.map move_to_json (Pipeline.moves stats))
                       );
                       ( "events",
                         Json.List (List.map Sink.event_to_json events) );
                       ( "regalloc",
                         match stats.Pipeline.regalloc with
                         | None -> Json.Null
                         | Some a ->
                             Json.Obj
                               [
                                 ( "spilled_regs",
                                   Json.Int
                                     (List.length a.Gis_regalloc.Regalloc.spilled)
                                 );
                                 ( "spill_loads",
                                   Json.Int a.Gis_regalloc.Regalloc.spill_loads );
                                 ( "spill_stores",
                                   Json.Int a.Gis_regalloc.Regalloc.spill_stores
                                 );
                                 ("slots", Json.Int a.Gis_regalloc.Regalloc.slots);
                                 ( "classes",
                                   Json.List
                                     (List.map
                                        (fun (s : Gis_regalloc.Regalloc.cls_stat) ->
                                          Json.Obj
                                            [
                                              ( "class",
                                                Json.String
                                                  (Fmt.str "%a" Reg.pp_cls
                                                     s.Gis_regalloc.Regalloc.cls)
                                              );
                                              ( "budget",
                                                Json.Int
                                                  s.Gis_regalloc.Regalloc.budget );
                                              ( "pressure",
                                                Json.Int
                                                  s.Gis_regalloc.Regalloc.pressure
                                              );
                                              ( "used",
                                                Json.Int
                                                  s.Gis_regalloc.Regalloc.used );
                                            ])
                                        a.Gis_regalloc.Regalloc.per_class) );
                               ] );
                     ] );
               ]
              @
              match simulation with
              | None -> []
              | Some (ob, os, bounds) ->
                  [
                    ( "simulation",
                      Json.Obj
                        [
                          ("base", outcome_to_json ob);
                          ("scheduled", outcome_to_json os);
                          ("bound", Gis_bounds.Bounds.to_json bounds);
                        ] );
                  ])
          in
          write_json path report;
          Fmt.pr "@.stats written to %s@." path

(* `gisc explain`: provenance-tracked run of one program — where each
   final instruction came from and what the motions bought, block by
   block. The attribution identity (credits sum exactly to the base vs
   scheduled issue-cycle delta) is checked on every run. *)
let run_explain source level width elements seed regalloc pressure_aware regs
    no_disambig json_file trace_out verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  Metrics.enable ();
  let name, src = load_source source in
  let machine =
    if width = 1 then Machine.rs6k else Machine.superscalar ~width
  in
  let config = config_of_level level in
  let config =
    {
      config with
      Config.regalloc;
      pressure_aware;
      regs;
      disambiguate = not no_disambig;
    }
  in
  let task =
    {
      Gis_driver.Driver.name;
      source =
        (if Filename.check_suffix name ".s" then Gis_driver.Driver.Asm src
         else Gis_driver.Driver.Tiny_c src);
    }
  in
  let trace = trace_out <> None in
  match
    Gis_driver.Explain.explain ~elements ~seed ~trace machine config task
  with
  | Error (Gis_driver.Driver.Infeasible _ as e) ->
      Fmt.epr "%s: %a@." name Gis_driver.Driver.pp_error e;
      exit Exit.regalloc_infeasible
  | Error e ->
      Fmt.epr "%s: %a@." name Gis_driver.Driver.pp_error e;
      exit Exit.compile_error
  | Ok e ->
      Fmt.pr "%a" Gis_driver.Explain.pp e;
      if not (Gis_driver.Explain.identity_holds e) then begin
        Fmt.epr
          "INTERNAL ERROR: cycle attribution does not sum to the base vs \
           scheduled issue delta@.";
        exit Exit.verification_failure
      end;
      Option.iter
        (fun path ->
          write_json path (Gis_driver.Explain.to_json e);
          Fmt.pr "@.explain report written to %s@." path)
        json_file;
      Option.iter
        (fun path ->
          write_file path
            (Chrome_trace.to_string ~process_name:name
               e.Gis_driver.Explain.sched_telemetry);
          Fmt.pr "@.chrome trace written to %s (load in Perfetto)@." path)
        trace_out

(* `gisc bound`: schedule-quality lower bounds for one program. The
   scheduled program is simulated once; from the checker's trusted
   dependence reconstruction we compute per-region critical-path and
   resource lower bounds, per-instruction slack, and the binding
   dependence edges, then attribute the distance between the achieved
   cycles and the bound per stall category under an exact accounting
   identity (exit 3 on violation). *)
let run_bound source level width elements seed regalloc pressure_aware regs
    no_disambig top_k json_file verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  Metrics.enable ();
  let name, src = load_source source in
  let machine =
    if width = 1 then Machine.rs6k else Machine.superscalar ~width
  in
  let config = config_of_level level in
  let config =
    {
      config with
      Config.regalloc;
      pressure_aware;
      regs;
      disambiguate = not no_disambig;
    }
  in
  let compile_input () =
    if Filename.check_suffix name ".s" then
      { Codegen.cfg = Asm.parse src; vars = []; arrays = [] }
    else Codegen.compile_string src
  in
  match compile_input () with
  | exception Parser.Error m
  | exception Lexer.Error m
  | exception Codegen.Error m
  | exception Asm.Error m ->
      Fmt.epr "%s: %s@." name m;
      exit Exit.compile_error
  | compiled ->
      let cfg = Cfg.deep_copy compiled.Codegen.cfg in
      let stats =
        try Pipeline.run machine config cfg
        with Gis_regalloc.Regalloc.Infeasible m ->
          Fmt.epr "%s: regalloc infeasible: %s@." name m;
          exit Exit.regalloc_infeasible
      in
      Validate.check_exn cfg;
      let input = default_input compiled ~elements ~seed in
      let sched_input, frame =
        match stats.Pipeline.regalloc with
        | Some alloc ->
            ( Gis_regalloc.Regalloc.remap_input alloc input,
              alloc.Gis_regalloc.Regalloc.frame )
        | None -> (input, None)
      in
      let os = Simulator.run ?frame machine cfg sched_input in
      let bounds =
        Gis_bounds.Bounds.compute ~top_k ~disambig:(not no_disambig) ~machine
          ~halted:(os.Simulator.stop = Simulator.Halted)
          cfg os.Simulator.telemetry
      in
      Gis_bounds.Bounds.export_metrics bounds;
      Fmt.pr "== %s: schedule bounds (machine %a, level %a) ==@.%a" name
        Machine.pp machine Config.pp_level config.Config.level
        Gis_bounds.Bounds.pp bounds;
      Option.iter
        (fun path ->
          write_json path
            (Json.Obj
               [
                 ("program", Json.String name);
                 ("machine", Json.String (Machine.name machine));
                 ( "level",
                   Json.String (Fmt.str "%a" Config.pp_level config.Config.level)
                 );
                 ("elements", Json.Int elements);
                 ("seed", Json.Int seed);
                 ("bound", Gis_bounds.Bounds.to_json bounds);
               ]);
          Fmt.pr "bound report written to %s@." path)
        json_file;
      if not (Gis_bounds.Bounds.identity_holds bounds) then begin
        Fmt.epr
          "INTERNAL ERROR: bound accounting identity violated (achieved <> \
           lower bound + attributed gap)@.";
        exit Exit.verification_failure
      end

(* `gisc check`: static certification of one program's schedule. The
   pipeline runs with the per-stage verification hook installed; every
   stage transition is checked against a dependence graph and
   control-dependence relation reconstructed independently from the
   stage's input, plus an IR lint over the source and final programs.
   No simulation is involved. Exit code 3 on any legality Error. *)
let run_check source level width regalloc pressure_aware regs no_disambig
    json_file deterministic verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  Metrics.enable ();
  let name, src = load_source source in
  let machine =
    if width = 1 then Machine.rs6k else Machine.superscalar ~width
  in
  let config = config_of_level level in
  let prov = Provenance.create () in
  let collector =
    Gis_check.Check.collector ~prov
      ~max_speculation_degree:config.Config.max_speculation_degree ()
  in
  let config =
    {
      config with
      Config.regalloc;
      pressure_aware;
      regs;
      disambiguate = not no_disambig;
      prov = Some prov;
      check = Some (Gis_check.Check.hook collector);
    }
  in
  let compile_input () =
    if Filename.check_suffix name ".s" then
      { Codegen.cfg = Asm.parse src; vars = []; arrays = [] }
    else Codegen.compile_string src
  in
  match compile_input () with
  | exception Parser.Error m
  | exception Lexer.Error m
  | exception Codegen.Error m
  | exception Asm.Error m ->
      Fmt.epr "%s: %s@." name m;
      exit Exit.compile_error
  | compiled ->
      let cfg = compiled.Codegen.cfg in
      let input_lint = Gis_check.Lint.run ~stage:"input" cfg in
      let pstats =
        try Pipeline.run machine config cfg
        with Gis_regalloc.Regalloc.Infeasible m ->
          Fmt.epr "%s: regalloc infeasible: %s@." name m;
          exit Exit.regalloc_infeasible
      in
      let staged_slots =
        match pstats.Pipeline.regalloc with
        | Some alloc -> Gis_regalloc.Regalloc.staged_slots alloc
        | None -> []
      in
      let final_lint =
        Gis_check.Lint.run ~prov ~staged_slots ~stage:"final" cfg
      in
      let results =
        (("input", input_lint) :: Gis_check.Check.diagnostics collector)
        @ [ ("final", final_lint) ]
      in
      let all = List.concat_map snd results in
      let errors = Gis_check.Check.errors all in
      let stats = Gis_check.Check.stats collector in
      Gis_check.Check.record_metrics all;
      Metrics.set (Metrics.gauge "check_seconds")
        (if deterministic then 0.0 else Gis_check.Check.seconds collector);
      List.iter
        (fun (_, ds) ->
          List.iter (fun d -> Fmt.pr "%a@." Gis_check.Diagnostic.pp d) ds)
        results;
      if all <> [] then
        List.iter
          (fun (rule, n) -> Fmt.pr "  %4d %s@." n rule)
          (Gis_check.Diagnostic.counts all);
      Fmt.pr
        "check %s: %d stages, %d dependences checked, %d motions classified; \
         %d errors, %d warnings@."
        name stats.Gis_check.Check.stages
        stats.Gis_check.Check.deps_checked
        stats.Gis_check.Check.motions_classified (List.length errors)
        (List.length all - List.length errors);
      Option.iter
        (fun path ->
          let json =
            match Gis_check.Check.report_to_json ~stats results with
            | Json.Obj fields ->
                Json.Obj
                  (("program", Json.String name)
                   :: ("level", Json.String level)
                   :: fields
                  @ [ ("metrics", Metrics.to_json ~deterministic ()) ])
            | j -> j
          in
          write_json path json;
          Fmt.pr "diagnostics written to %s@." path)
        json_file;
      if errors <> [] then exit Exit.verification_failure

(* `gisc profile`: self-profiling run of one program — wall clock,
   allocation and GC collections attributed per pipeline phase and per
   compiled region, under the exact accounting identity of
   [Gis_obs.Prof] (checked on every run; exit 3 on violation). *)
let run_profile source level width regalloc pressure_aware regs json_file
    folded_file folded_alloc trace_file deterministic verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  Metrics.enable ();
  let name, src = load_source source in
  let machine =
    if width = 1 then Machine.rs6k else Machine.superscalar ~width
  in
  let config = config_of_level level in
  let prof = Prof.create () in
  let config =
    { config with Config.regalloc; pressure_aware; regs; prof = Some prof }
  in
  let compile_input () =
    if Filename.check_suffix name ".s" then
      { Codegen.cfg = Asm.parse src; vars = []; arrays = [] }
    else Codegen.compile_string src
  in
  match compile_input () with
  | exception Parser.Error m
  | exception Lexer.Error m
  | exception Codegen.Error m
  | exception Asm.Error m ->
      Fmt.epr "%s: %s@." name m;
      exit Exit.compile_error
  | compiled -> (
      let cfg = Cfg.deep_copy compiled.Codegen.cfg in
      let stats =
        try Pipeline.run machine config cfg
        with Gis_regalloc.Regalloc.Infeasible m ->
          Fmt.epr "%s: regalloc infeasible: %s@." name m;
          exit Exit.regalloc_infeasible
      in
      Validate.check_exn cfg;
      match Prof.roots prof with
      | [] ->
          Fmt.epr "INTERNAL ERROR: pipeline recorded no profile tree@.";
          exit Exit.verification_failure
      | root :: _ as roots ->
          Fmt.pr "%s: %d blocks, %d instructions; level %a; %d motions@." name
            (Cfg.num_blocks cfg) (Cfg.instr_count cfg) Config.pp_level
            config.Config.level
            (List.length (Pipeline.moves stats));
          Fmt.pr "@.%a@." Prof.pp root;
          if not (List.for_all Prof.identity_ok roots) then begin
            Fmt.epr
              "INTERNAL ERROR: profile accounting identity violated (self \
               values do not sum to the root totals)@.";
            exit Exit.verification_failure
          end;
          Fmt.pr "@.profile: %d nodes, accounting identity holds@."
            (Prof.node_count root);
          Prof.export_metrics root;
          Option.iter
            (fun path ->
              let node = if deterministic then Prof.scrub root else root in
              write_json path
                (Json.Obj
                   [
                     ("program", Json.String name);
                     ("machine", Json.String (Machine.name machine));
                     ( "level",
                       Json.String
                         (Fmt.str "%a" Config.pp_level config.Config.level) );
                     ("profile", Prof.to_json node);
                     ("metrics", Metrics.to_json ~deterministic ());
                   ]);
              Fmt.pr "profile written to %s@." path)
            json_file;
          Option.iter
            (fun path ->
              let metric = if folded_alloc then `Alloc else `Wall in
              write_file path (String.concat "\n" (Prof.folded ~metric root));
              Fmt.pr "folded stacks written to %s (flamegraph.pl/speedscope)@."
                path)
            folded_file;
          Option.iter
            (fun path ->
              write_file path (Chrome_trace.profile_to_string root);
              Fmt.pr "profile trace written to %s (load in Perfetto)@." path)
            trace_file)

let source_arg =
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Tiny-C source file.")
  in
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:"Built-in workload: minmax, li, eqntott, espresso, gcc.")
  in
  let combine file workload =
    match file, workload with
    | Some f, None -> Ok (From_file f)
    | None, Some w -> Ok (Workload w)
    | None, None -> Ok (Workload "minmax")
    | Some _, Some _ -> Error (`Msg "give either FILE or --workload, not both")
  in
  Term.(term_result (const combine $ file $ workload))

let level_arg =
  Arg.(
    value & opt string "speculative"
    & info [ "l"; "level" ] ~docv:"LEVEL"
        ~doc:"Scheduling level: local, useful, or speculative.")

let width_arg =
  Arg.(
    value & opt int 1
    & info [ "width" ] ~docv:"N"
        ~doc:"Issue width: 1 selects the RS/6000 model, larger values a \
              superscalar with N units of each type.")

let show_code_arg =
  Arg.(value & flag & info [ "show-code" ] ~doc:"Print the scheduled code.")

let simulate_arg =
  Arg.(value & flag & info [ "simulate" ] ~doc:"Simulate base vs scheduled.")

let elements_arg =
  Arg.(
    value & opt int 128
    & info [ "elements" ] ~docv:"N" ~doc:"Array elements for simulation inputs.")

let seed_arg =
  Arg.(
    value & opt int 3
    & info [ "seed" ] ~docv:"N"
        ~doc:"PRNG seed for the default simulation input arrays.")

let trace_issue_arg =
  Arg.(
    value & flag
    & info [ "trace-issue" ]
        ~doc:"With --simulate, print the cycle-by-cycle issue diagram of \
              the scheduled program (which instruction issued on which \
              unit, and the binding stall reason for silent cycles).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"With $(b,--simulate), write the scheduled run's issue trace \
              as Chrome trace-event JSON to $(docv): one track per \
              functional unit, each dynamic instruction a complete slice \
              from issue to completion, attributed stalls as instant \
              events. Load in Perfetto or chrome://tracing.")

let pipeline_view_arg =
  Arg.(
    value & flag
    & info [ "pipeline-view" ]
        ~doc:"With $(b,--simulate), print an ASCII pipeline occupancy view \
              of the scheduled run: one row per functional unit, $(b,#) \
              issue, $(b,=) executing, $(b,.) idle.")

let stats_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:"Write a machine-readable JSON report: scheduler phases, \
              decision trace, interblock motions, and (with --simulate) \
              stall-attributed simulation telemetry.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Scheduler debug logging.")

let batch_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "batch" ] ~docv:"DIR"
        ~doc:"Compile and schedule every file in $(docv) as one batch \
              ($(b,.s) files as pseudo-assembly, the rest as Tiny-C), \
              spread across $(b,--jobs) worker domains. Results are \
              deterministic in the job count. Exit code 4 means some \
              tasks failed but the pool survived.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for $(b,--batch) (default 1).")

let regalloc_arg =
  Arg.(
    value & flag
    & info [ "regalloc" ]
        ~doc:"Run linear-scan register allocation after scheduling: rewrite \
              the code onto the machine's physical register file, insert \
              spill loads/stores where it overflows, and (with \
              $(b,--simulate)) verify the allocated code against the \
              symbolic baseline.")

let pressure_aware_arg =
  Arg.(
    value & flag
    & info [ "pressure-aware" ]
        ~doc:"Prepend a register-pressure priority rule to the scheduler: \
              among ready candidates, prefer the one whose upward motion \
              imports fewest new live ranges into a block already at its \
              register budget.")

let regs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "regs" ] ~docv:"N"
        ~doc:"Override the machine's GPR and FPR file sizes with $(docv) \
              each, for $(b,--regalloc) and $(b,--pressure-aware) \
              experiments. Condition registers keep the machine's count.")

let no_disambig_arg =
  Arg.(
    value & flag
    & info [ "no-disambig" ]
        ~doc:"Disable symbolic memory disambiguation: dependence graphs \
              (scheduler and bound sides) keep every Mem edge the \
              syntactic same-base rule cannot rule out, instead of \
              consulting the whole-procedure affine address analysis. \
              The control configuration of the A1 disambiguation \
              experiment.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Wall-clock budget for $(b,--batch): tasks dequeued after the \
              budget is spent are marked timed out without running. A batch \
              whose only failures are timeouts exits with code 5.")

let flight_cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "flight-cap" ] ~docv:"N"
        ~doc:"Capacity of each worker domain's flight-recorder ring \
              (default 64): the number of recent scheduler events kept \
              for the post-mortem dump when a $(b,--batch) task crashes \
              or times out.")

let deterministic_arg =
  Arg.(
    value & flag
    & info [ "deterministic" ]
        ~doc:"Zero all wall-clock timing fields in $(b,--stats) output so \
              reports diff stably across runs, machines, and job counts.")

let explain_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the explain report (per-instruction provenance, \
              motion-kind counts, per-block cycle attribution) as JSON to \
              $(docv).")

(* `gisc fuzz`: the differential fuzzing campaign. Each seed in the
   window denotes one random Tiny-C program + input; its observable
   trace must survive every (level x regalloc x machine) cell of the
   matrix, with the static legality checker hooked into every pipeline
   run. Findings are shrunk to minimal reproducers and written to the
   corpus directory. Exit 6 when the campaign found anything. *)
let run_fuzz seeds start corpus max_findings shrink_fuel jobs grammar
    no_disambig json_file verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  if seeds <= 0 then begin
    Fmt.epr "gisc fuzz: --seeds must be positive@.";
    exit Exit.usage_error
  end;
  let params =
    match grammar with
    | "default" -> Gis_workloads.Random_prog.default
    | "hardened" -> Gis_workloads.Random_prog.hardened
    | g ->
        Fmt.epr "gisc fuzz: unknown grammar %S (default|hardened)@." g;
        exit Exit.usage_error
  in
  let report =
    Gis_fuzz.Fuzz.campaign ~params ~max_findings ~shrink_fuel ~jobs
      ~log:(fun line -> Fmt.pr "FINDING %s@." line)
      ~disambig:(not no_disambig) ~start ~seeds ()
  in
  Option.iter
    (fun path -> write_json path (Gis_fuzz.Fuzz.report_to_json report))
    json_file;
  match report.Gis_fuzz.Fuzz.findings with
  | [] ->
      Fmt.pr "fuzz: %d seeds x %d cells, no findings@."
        report.Gis_fuzz.Fuzz.seeds_run report.Gis_fuzz.Fuzz.cells_per_seed
  | findings ->
      let paths = Gis_fuzz.Corpus.write_all ~dir:corpus findings in
      List.iter (fun p -> Fmt.pr "reproducer written to %s@." p) paths;
      Fmt.pr "fuzz: %d seeds x %d cells, %d finding%s@."
        report.Gis_fuzz.Fuzz.seeds_run report.Gis_fuzz.Fuzz.cells_per_seed
        (List.length findings)
        (if List.length findings = 1 then "" else "s");
      exit Exit.fuzz_finding

let main_term =
  Term.(
    const run_gisc $ source_arg $ batch_arg $ jobs_arg $ level_arg
    $ width_arg $ show_code_arg $ simulate_arg $ elements_arg $ seed_arg
    $ trace_issue_arg $ trace_out_arg $ pipeline_view_arg $ deterministic_arg
    $ stats_arg $ regalloc_arg $ pressure_aware_arg $ regs_arg
    $ no_disambig_arg $ timeout_arg $ flight_cap_arg $ verbose_arg)

let explain_cmd =
  let doc =
    "show where every scheduled instruction came from (motion kind, \
     priority scores, unroll copy) and attribute the cycle savings per \
     block"
  in
  Cmd.v
    (Cmd.info "explain" ~doc)
    Term.(
      const run_explain $ source_arg $ level_arg $ width_arg $ elements_arg
      $ seed_arg $ regalloc_arg $ pressure_aware_arg $ regs_arg
      $ no_disambig_arg $ explain_json_arg $ trace_out_arg $ verbose_arg)

let profile_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the profile tree (per-phase and per-region wall clock, \
              allocation, GC collections, self and total) plus the metrics \
              registry as JSON to $(docv).")

let folded_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "folded" ] ~docv:"FILE"
        ~doc:"Write folded-stack lines ($(b,pipeline;global-pass1;region-0 \
              VALUE)) to $(docv) — the input format of flamegraph.pl and \
              speedscope.")

let folded_alloc_arg =
  Arg.(
    value & flag
    & info [ "alloc" ]
        ~doc:"With $(b,--folded), weight stacks by self allocated bytes \
              instead of self wall-clock nanoseconds.")

let profile_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write the profile as standalone Chrome trace-event JSON to \
              $(docv): one slice track of phases and regions plus \
              allocation and GC counter tracks. Load in Perfetto.")

let profile_cmd =
  let doc =
    "profile the compiler itself: attribute wall clock, allocation and GC \
     collections to every pipeline phase and compiled region, under an \
     exact accounting identity (self values sum back to the run totals; \
     exits 3 if they do not)"
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      const run_profile $ source_arg $ level_arg $ width_arg $ regalloc_arg
      $ pressure_aware_arg $ regs_arg $ profile_json_arg $ folded_arg
      $ folded_alloc_arg $ profile_trace_arg $ deterministic_arg
      $ verbose_arg)

let bound_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the bound report (program and per-region lower \
              bounds, slack, binding edges, gap attribution per stall \
              category) as JSON to $(docv).")

let top_k_arg =
  Arg.(
    value & opt int 5
    & info [ "top-k" ] ~docv:"N"
        ~doc:"Binding dependence edges kept per region, ranked by how \
              close the edge is to the region's critical path \
              (default 5).")

let bound_cmd =
  let doc =
    "lower-bound the achieved schedule: from an independently \
     reconstructed dependence graph, compute per-region critical-path \
     and unit-capacity lower bounds, per-instruction slack and the \
     binding dependence edges, then attribute the gap between achieved \
     cycles and the bound per stall category under an exact accounting \
     identity (exits 3 if it does not hold)"
  in
  Cmd.v
    (Cmd.info "bound" ~doc)
    Term.(
      const run_bound $ source_arg $ level_arg $ width_arg $ elements_arg
      $ seed_arg $ regalloc_arg $ pressure_aware_arg $ regs_arg
      $ no_disambig_arg $ top_k_arg $ bound_json_arg $ verbose_arg)

let check_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the structured diagnostics (per stage, with rule \
              counts and checker statistics) as JSON to $(docv).")

let check_cmd =
  let doc =
    "statically certify a schedule: re-derive the dependence graph and \
     control dependences of every pipeline stage's input, verify the \
     stage's output preserves them, classify each cross-block motion \
     against the paper's speculation rules, and lint the IR — no \
     simulation involved; exits 3 on any legality violation"
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run_check $ source_arg $ level_arg $ width_arg $ regalloc_arg
      $ pressure_aware_arg $ regs_arg $ no_disambig_arg $ check_json_arg
      $ deterministic_arg $ verbose_arg)

let fuzz_seeds_arg =
  Arg.(
    value & opt int 500
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Number of consecutive seeds to fuzz.")

let fuzz_start_arg =
  Arg.(
    value & opt int 0
    & info [ "start" ] ~docv:"N"
        ~doc:"First seed of the window (campaigns are deterministic in \
              the window, so disjoint windows explore disjoint programs).")

let fuzz_corpus_arg =
  Arg.(
    value & opt string "fuzz-corpus"
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:"Directory shrunk reproducers are written to (created if \
              missing). Each finding becomes one runnable Tiny-C file \
              with its provenance in a comment header.")

let fuzz_max_findings_arg =
  Arg.(
    value & opt int 5
    & info [ "max-findings" ] ~docv:"N"
        ~doc:"Stop the campaign after $(docv) findings.")

let fuzz_shrink_fuel_arg =
  Arg.(
    value & opt int Gis_fuzz.Shrink.default_fuel
    & info [ "shrink-fuel" ] ~docv:"N"
        ~doc:"Budget of candidate evaluations per shrink.")

let fuzz_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Detect $(docv) seeds concurrently on separate domains. \
              Findings are identical at any job count.")

let fuzz_grammar_arg =
  Arg.(
    value & opt string "hardened"
    & info [ "grammar" ] ~docv:"NAME"
        ~doc:"Program-generator grammar: $(b,hardened) (the campaign \
              default: calls with argument expressions, do/while, \
              masked wild array indices, extra pressure) or \
              $(b,default) (the plain generator — wild indices \
              unmasked, so out-of-bounds loads stress the spill \
              segment isolation).")

let fuzz_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the campaign report (seeds run, matrix size, every \
              finding with its shrunk program) as JSON to $(docv).")

let fuzz_cmd =
  let doc =
    "differential fuzzing: random Tiny-C programs through every \
     level/regalloc/machine cell of a parametric matrix, each schedule \
     statically checked and its observable trace compared against the \
     unscheduled reference; findings are delta-debugged to minimal \
     reproducers in the corpus directory (exit 6 if any)"
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const run_fuzz $ fuzz_seeds_arg $ fuzz_start_arg $ fuzz_corpus_arg
      $ fuzz_max_findings_arg $ fuzz_shrink_fuel_arg $ fuzz_jobs_arg
      $ fuzz_grammar_arg $ no_disambig_arg $ fuzz_json_arg $ verbose_arg)

let cmd =
  let doc =
    "global instruction scheduling for superscalar machines (Bernstein & \
     Rodeh, PLDI 1991)"
  in
  Cmd.group ~default:main_term
    (Cmd.info "gisc" ~version:"1.0.0" ~doc)
    [ explain_cmd; bound_cmd; check_cmd; profile_cmd; fuzz_cmd ]

let () = exit (Cmd.eval cmd)
