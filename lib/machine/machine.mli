(** Parametric machine description (paper, Section 2).

    A superscalar machine is a collection of functional units of [m]
    types with [n_1 ... n_m] units of each type. Each instruction
    executes on one unit of its type for an integral number of cycles,
    and pipeline constraints appear as integer delays on data dependence
    edges: if [i1 -> i2] is a dependence edge, [i1] takes [t] cycles and
    the edge carries delay [d], then [i2] should start no earlier than
    [start(i1) + t + d]. Scheduling earlier is never incorrect — the
    hardware interlocks — only slower. *)

type t

val name : t -> string

val units : t -> Gis_ir.Instr.unit_ty -> int
(** Number of functional units of the given type (n_i). *)

val regs : t -> Gis_ir.Reg.cls -> int
(** Size of the physical register file of the given class. Scheduling
    itself runs on symbolic registers (paper, Section 2); this bound is
    what the register allocator and the pressure-aware rank heuristic
    allocate against. Defaults mirror the RS/6000: 32 GPRs, 32 FPRs,
    8 condition register fields. *)

val with_regs : ?gprs:int -> ?fprs:int -> ?crs:int -> t -> t
(** Same machine with a smaller (or larger) register file per class —
    used to force spills in experiments. Condition registers spill
    through an integer scratch transfer (mfcr/mtcr), so [crs] can be
    shrunk to exercise condition-register pressure too. *)

val exec_time : t -> Gis_ir.Instr.t -> int
(** Cycles the instruction occupies its unit; >= 1. *)

val delay : t -> producer:Gis_ir.Instr.t -> consumer:Gis_ir.Instr.t -> reg:Gis_ir.Reg.t -> int
(** Delay carried by the dependence edge from [producer] to [consumer]
    through register [reg]; >= 0. Only definition-to-use edges carry a
    non-zero delay (Section 4.2). *)

val mem_delay : t -> producer:Gis_ir.Instr.t -> consumer:Gis_ir.Instr.t -> int
(** Delay carried by a memory dependence edge — one of the "secondary
    features of the machine" (Section 5.1) that only the basic block
    scheduler's detailed model knows about. Zero on the primary models;
    a zero delay also imposes no simulator constraint (the hardware
    forwards). *)

val make :
  name:string ->
  fixed_units:int ->
  float_units:int ->
  branch_units:int ->
  ?gprs:int ->
  ?fprs:int ->
  ?crs:int ->
  ?exec_time:(Gis_ir.Instr.t -> int) ->
  ?delay:
    (producer:Gis_ir.Instr.t -> consumer:Gis_ir.Instr.t -> reg:Gis_ir.Reg.t -> int) ->
  ?mem_delay:(producer:Gis_ir.Instr.t -> consumer:Gis_ir.Instr.t -> int) ->
  unit ->
  t
(** Build a custom machine. Defaults: RS/6000 execution times and the
    four delay rules of Section 2.1. *)

val rs6k : t
(** The RS/6000 model of Section 2.1: one fixed-point, one floating
    point and one branch unit; delayed load = 1 cycle; fixed compare to
    branch = 3 cycles; floating point result = 1 cycle; float compare to
    branch = 5 cycles. *)

val rs6k_detailed : t
(** [rs6k] plus a secondary delay: a load issued the cycle after a store
    pays one extra cycle (store-queue forwarding). This is the "more
    detailed model of the machine" that the paper gives only to the
    basic block scheduler (Section 5.1); pass it as the local post-pass
    machine to reproduce that design. *)

val superscalar : width:int -> t
(** [superscalar ~width] has [width] units of every type with RS/6000
    latencies — the "machines with a larger number of computational
    units" the paper's Section 6 anticipates. [superscalar ~width:1] has
    the same timing as {!rs6k}. *)

val rs6k_exec_time : Gis_ir.Instr.t -> int
val rs6k_delay :
  producer:Gis_ir.Instr.t -> consumer:Gis_ir.Instr.t -> reg:Gis_ir.Reg.t -> int

val zero_delay_single_issue : t
(** A degenerate machine with unit latencies and no delays — useful in
    tests to isolate scheduler mechanics from timing. *)

val pp : t Fmt.t
