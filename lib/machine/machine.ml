open Gis_ir

type t = {
  name : string;
  fixed_units : int;
  float_units : int;
  branch_units : int;
  gprs : int;
  fprs : int;
  crs : int;
  exec_time : Instr.t -> int;
  delay : producer:Instr.t -> consumer:Instr.t -> reg:Reg.t -> int;
  mem_delay : producer:Instr.t -> consumer:Instr.t -> int;
}

let name m = m.name

let units m = function
  | Instr.Fixed -> m.fixed_units
  | Instr.Float -> m.float_units
  | Instr.Branch -> m.branch_units

let exec_time m i = m.exec_time i
let delay m = m.delay
let mem_delay m = m.mem_delay

(* Physical register file, by class. The RS/6000 has 32 GPRs, 32 FPRs
   and 8 condition register fields. *)
let regs m = function
  | Reg.Gpr -> m.gprs
  | Reg.Fpr -> m.fprs
  | Reg.Cr -> m.crs

let with_regs ?gprs ?fprs ?crs m =
  let gprs = Option.value gprs ~default:m.gprs in
  let fprs = Option.value fprs ~default:m.fprs in
  let crs = Option.value crs ~default:m.crs in
  if gprs < 1 || fprs < 1 || crs < 1 then
    invalid_arg "Machine.with_regs: need at least one register per class";
  { m with gprs; fprs; crs }

(* RS/6000 execution times: most instructions take a single cycle;
   multiply and divide are the multi-cycle exceptions (Section 2.1). *)
let rs6k_exec_time i =
  match Instr.kind i with
  | Instr.Binop { op = Instr.Mul; _ } -> 5
  | Instr.Binop { op = Instr.Div | Instr.Rem; _ } -> 19
  | Instr.Fbinop { op = Instr.Fdiv; _ } -> 19
  | Instr.Fbinop _ -> 1
  | Instr.Binop _ | Instr.Load _ | Instr.Store _ | Instr.Load_imm _
  | Instr.Move _ | Instr.Compare _ | Instr.Fcompare _ | Instr.Branch_cond _
  | Instr.Jump _ | Instr.Call _ | Instr.Halt ->
      1

(* The four delay types of Section 2.1. [reg] distinguishes the loaded
   value of an update-form load (delayed) from its incremented base
   (available immediately, computed by the fixed point unit itself). *)
let rs6k_delay ~producer ~consumer ~reg =
  match Instr.kind producer, Instr.kind consumer with
  | Instr.Load { dst; _ }, _ when Reg.equal dst reg -> 1
  | Instr.Compare _, Instr.Branch_cond _ -> 3
  | Instr.Fcompare _, Instr.Branch_cond _ -> 5
  | Instr.Fbinop _, _ -> 1
  | _, _ -> 0

let no_mem_delay ~producer:_ ~consumer:_ = 0

let make ~name ~fixed_units ~float_units ~branch_units ?(gprs = 32)
    ?(fprs = 32) ?(crs = 8) ?(exec_time = rs6k_exec_time)
    ?(delay = rs6k_delay) ?(mem_delay = no_mem_delay) () =
  if fixed_units < 1 || float_units < 0 || branch_units < 1 then
    invalid_arg "Machine.make: need at least one fixed and one branch unit";
  if gprs < 1 || fprs < 1 || crs < 1 then
    invalid_arg "Machine.make: need at least one register per class";
  {
    name;
    fixed_units;
    float_units;
    branch_units;
    gprs;
    fprs;
    crs;
    exec_time;
    delay;
    mem_delay;
  }

let rs6k =
  make ~name:"rs6k" ~fixed_units:1 ~float_units:1 ~branch_units:1 ()

(* Store-to-load forwarding takes a cycle through the store queue. *)
let detailed_mem_delay ~producer ~consumer =
  match Instr.kind producer, Instr.kind consumer with
  | Instr.Store _, Instr.Load _ -> 1
  | _, _ -> 0

let rs6k_detailed =
  make ~name:"rs6k-detailed" ~fixed_units:1 ~float_units:1 ~branch_units:1
    ~mem_delay:detailed_mem_delay ()

let superscalar ~width =
  if width < 1 then invalid_arg "Machine.superscalar: width must be positive";
  make
    ~name:(Printf.sprintf "superscalar-%d" width)
    ~fixed_units:width ~float_units:width ~branch_units:width ()

let zero_delay_single_issue =
  make ~name:"unit-latency" ~fixed_units:1 ~float_units:1 ~branch_units:1
    ~exec_time:(fun _ -> 1)
    ~delay:(fun ~producer:_ ~consumer:_ ~reg:_ -> 0)
    ()

let pp ppf m =
  Fmt.pf ppf "%s (fixed=%d float=%d branch=%d)" m.name m.fixed_units
    m.float_units m.branch_units
