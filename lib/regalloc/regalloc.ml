open Gis_ir
open Gis_machine
open Gis_sim

type interval = { reg : Reg.t; start : int; stop : int }

type cls_stat = { cls : Reg.cls; budget : int; pressure : int; used : int }

type t = {
  assignment : (Reg.t * Reg.t) list;
  spilled : (Reg.t * int) list;
  intervals : interval list;
  entry_live : Reg.t list;
  frame : Reg.t option;
  spill_loads : int;
  spill_stores : int;
  cr_spill_moves : int;
  slots : int;
  per_class : cls_stat list;
}

exception Alloc_error of string

exception Infeasible of string

let () =
  Printexc.register_printer (function
    | Infeasible m -> Some (Fmt.str "Regalloc.Infeasible(%S)" m)
    | _ -> None)

(* Spill slots live in a dedicated spill segment, not in program
   memory: the simulator routes every load/store whose base register
   is the reserved frame register ({!field-frame}) to a separate
   address space. Slot offsets can therefore start at 0 — no numeric
   range is "unreachable" from program arithmetic (a shifted or
   multiplied index can produce any integer), so isolation is by base
   register identity, never by address. Word slots for GPRs and CRs;
   doubles get 8-byte strides so printed addresses stay plausible. *)
let slot_offset (cls : Reg.cls) k =
  match cls with Reg.Fpr -> 8 * k | Reg.Gpr | Reg.Cr -> 4 * k

(* ---- live intervals ---- *)

(* Linearize blocks in layout order: a block-start position, then each
   instruction two apart, then a block-end position. One conservative
   interval per register (the classic linear-scan simplification):
   live-in extends it to the block start, live-out to the block end, so
   any hole inside the range is simply over-approximated away. *)
let build_intervals cfg =
  let live = Gis_analysis.Liveness.compute cfg in
  let tbl : (int, Reg.t * int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  let touch r p =
    match Hashtbl.find_opt tbl (Reg.hash r) with
    | Some (_, s, e) ->
        if p < !s then s := p;
        if p > !e then e := p
    | None -> Hashtbl.add tbl (Reg.hash r) (r, ref p, ref p)
  in
  let pos = ref 0 in
  List.iter
    (fun bid ->
      let b = Cfg.block cfg bid in
      let block_start = !pos in
      Reg.Set.iter
        (fun r -> touch r block_start)
        (Gis_analysis.Liveness.live_in live bid);
      List.iter
        (fun i ->
          pos := !pos + 2;
          List.iter (fun r -> touch r !pos) (Instr.uses i);
          List.iter (fun r -> touch r !pos) (Instr.defs i))
        (Block.instrs b);
      Reg.Set.iter
        (fun r -> touch r (!pos + 1))
        (Gis_analysis.Liveness.live_out live bid);
      pos := !pos + 2)
    (Cfg.layout cfg);
  let intervals =
    Hashtbl.fold
      (fun _ (r, s, e) acc -> { reg = r; start = !s; stop = !e } :: acc)
      tbl []
    |> List.sort (fun a b ->
           match Int.compare a.start b.start with
           | 0 -> Reg.compare a.reg b.reg
           | c -> c)
  in
  let entry_live =
    Reg.Set.elements
      (Gis_analysis.Liveness.live_in live (Cfg.entry cfg))
  in
  (intervals, entry_live)

let class_pressure intervals cls =
  let events =
    List.concat_map
      (fun iv ->
        if iv.reg.Reg.cls = cls then [ (iv.start, 1); (iv.stop + 1, -1) ]
        else [])
      intervals
    |> List.sort compare
  in
  snd
    (List.fold_left
       (fun (cur, peak) (_, d) ->
         let c = cur + d in
         (c, max peak c))
       (0, 0) events)

(* ---- the scan (Poletto & Sarkar) ---- *)

(* Returns (assignment, spilled, slot count); physical registers are
   represented by their pool index until [phys] materializes them. *)
let scan ~pool_size ~phys intervals =
  let assignment : (int, Reg.t * Reg.t) Hashtbl.t = Hashtbl.create 64 in
  let spilled : (int, Reg.t * int) Hashtbl.t = Hashtbl.create 8 in
  let slots = ref 0 in
  let free : (Reg.cls, int list ref) Hashtbl.t = Hashtbl.create 3 in
  let active : (Reg.cls, (interval * int) list ref) Hashtbl.t =
    Hashtbl.create 3
  in
  let cell tbl cls init =
    match Hashtbl.find_opt tbl cls with
    | Some l -> l
    | None ->
        let l = ref (init ()) in
        Hashtbl.add tbl cls l;
        l
  in
  let spill iv =
    (* Condition registers spill like everything else: through memory,
       via an integer transfer scratch (see [rewrite]). *)
    Hashtbl.replace spilled (Reg.hash iv.reg) (iv.reg, !slots);
    incr slots
  in
  List.iter
    (fun iv ->
      let cls = iv.reg.Reg.cls in
      let fl = cell free cls (fun () -> List.init (pool_size cls) Fun.id) in
      let al = cell active cls (fun () -> []) in
      (* Expire: strictly-before intervals can share a register — equal
         endpoints are kept apart (a def at the very position of
         another value's last use is conservative territory). *)
      let expired, keep = List.partition (fun (a, _) -> a.stop < iv.start) !al in
      al := keep;
      List.iter (fun (_, n) -> fl := List.sort Int.compare (n :: !fl)) expired;
      let insert_active entry =
        let rec ins = function
          | ((a, _) as hd) :: tl when a.stop <= (fst entry).stop ->
              hd :: ins tl
          | rest -> entry :: rest
        in
        al := ins !al
      in
      let assign n =
        Hashtbl.replace assignment (Reg.hash iv.reg) (iv.reg, phys cls n);
        insert_active (iv, n)
      in
      match !fl with
      | n :: rest ->
          fl := rest;
          assign n
      | [] -> (
          (* Spill the interval with the furthest end — the current one
             or the active one it can replace. *)
          match List.rev !al with
          | (last, n) :: _ when last.stop > iv.stop ->
              al :=
                List.filter (fun (a, _) -> not (Reg.equal a.reg last.reg)) !al;
              Hashtbl.remove assignment (Reg.hash last.reg);
              spill last;
              assign n
          | _ -> spill iv))
    intervals;
  (assignment, spilled, !slots)

(* ---- rewriting onto physical names ---- *)

let rewrite ?prov cfg ~assignment ~spilled ~base ~scratch =
  let loads = ref 0 and stores = ref 0 and cr_moves = ref 0 in
  let phys_of r =
    match Hashtbl.find_opt assignment (Reg.hash r) with
    | Some (_, p) -> p
    | None -> r
  in
  let is_spilled r = Hashtbl.mem spilled (Reg.hash r) in
  let slot_of r = snd (Hashtbl.find spilled (Reg.hash r)) in
  Cfg.iter_blocks
    (fun b ->
      let out = ref [] in
      let emit i = out := i :: !out in
      let record i =
        Gis_obs.Provenance.spill prov ~uid:(Instr.uid i) ~block:b.Block.label
      in
      let base_reg () = match base with Some r -> r | None -> assert false in
      (* A spilled condition register cannot be loaded or stored
         directly (ill-formed, see [Validate]): it moves through memory
         via an integer transfer scratch — mfcr/mtcr modeling. [gpr_tmp]
         picks the transfer register; it must not collide with the GPR
         scratches already handed to this instruction's spilled GPR
         operands, so it takes the next free one. *)
      let reload_cr ~gpr_tmp ~cr_scratch r =
        incr loads;
        incr cr_moves;
        let load =
          Cfg.make_instr cfg
            (Instr.Load
               {
                 dst = gpr_tmp;
                 base = base_reg ();
                 offset = slot_offset r.Reg.cls (slot_of r);
                 update = false;
               })
        in
        let transfer =
          Cfg.make_instr cfg (Instr.Move { dst = cr_scratch; src = gpr_tmp })
        in
        record load;
        record transfer;
        emit load;
        emit transfer
      in
      Gis_util.Vec.iter
        (fun i ->
          let sp =
            List.sort_uniq Reg.compare
              (List.filter is_spilled (Instr.uses i @ Instr.defs i))
          in
          if sp = [] then emit (Instr.map_regs ~f:phys_of i)
          else begin
            (* Hand each distinct spilled operand a scratch register of
               its class; reload uses before, store defs after. A
               register that is both read and written (binop dst = lhs,
               an update-form base) shares one scratch for both. *)
            let scratch_map = Hashtbl.create 4 in
            let counters = Hashtbl.create 2 in
            let take cls ~what =
              let k =
                Option.value ~default:0 (Hashtbl.find_opt counters cls)
              in
              let avail = scratch cls in
              if k >= List.length avail then
                raise
                  (Alloc_error
                     (Fmt.str
                        "instruction %d needs %d %a scratch registers (%s) \
                         but only %d are reserved"
                        (Instr.uid i) (k + 1) Reg.pp_cls cls what
                        (List.length avail)));
              Hashtbl.replace counters cls (k + 1);
              List.nth avail k
            in
            List.iter
              (fun r ->
                Hashtbl.replace scratch_map (Reg.hash r)
                  (take r.Reg.cls ~what:"spilled operands"))
              sp;
            (* One GPR transfer temp per instruction, shared by the CR
               reload and store-back (its value is dead across the
               instruction itself). At most one CR operand can appear —
               compares define one, branches read one, and cr<->cr
               moves do not exist — and any instruction with a CR
               operand touches at most two GPRs, so the three-GPR
               scratch pool always has a register left for it. *)
            let cr_tmp = ref None in
            let gpr_tmp () =
              match !cr_tmp with
              | Some g -> g
              | None ->
                  let g = take Reg.Gpr ~what:"condition-register transfer" in
                  cr_tmp := Some g;
                  g
            in
            let lookup r =
              match Hashtbl.find_opt scratch_map (Reg.hash r) with
              | Some s -> s
              | None -> phys_of r
            in
            List.iter
              (fun r ->
                if List.exists (Reg.equal r) (Instr.uses i) then
                  let s = Hashtbl.find scratch_map (Reg.hash r) in
                  if r.Reg.cls = Reg.Cr then
                    reload_cr ~gpr_tmp:(gpr_tmp ()) ~cr_scratch:s r
                  else begin
                    incr loads;
                    let reload =
                      Cfg.make_instr cfg
                        (Instr.Load
                           {
                             dst = s;
                             base = base_reg ();
                             offset = slot_offset r.Reg.cls (slot_of r);
                             update = false;
                           })
                    in
                    record reload;
                    emit reload
                  end)
              sp;
            emit (Instr.map_regs ~f:lookup i);
            List.iter
              (fun r ->
                if List.exists (Reg.equal r) (Instr.defs i) then begin
                  incr stores;
                  let src =
                    let s = Hashtbl.find scratch_map (Reg.hash r) in
                    if r.Reg.cls = Reg.Cr then begin
                      (* mfcr: move the scratch CR down to the integer
                         transfer register, then store that. *)
                      incr cr_moves;
                      let g = gpr_tmp () in
                      let transfer =
                        Cfg.make_instr cfg (Instr.Move { dst = g; src = s })
                      in
                      record transfer;
                      emit transfer;
                      g
                    end
                    else s
                  in
                  let store =
                    Cfg.make_instr cfg
                      (Instr.Store
                         {
                           src;
                           base = base_reg ();
                           offset = slot_offset r.Reg.cls (slot_of r);
                           update = false;
                         })
                  in
                  record store;
                  emit store
                end)
              sp
          end)
        b.Block.body;
      (* Terminators read exactly their condition register
         ([Branch_cond]) or nothing ([Jump]/[Halt]). A spilled branch
         CR is reloaded at the end of the block body — through the
         first GPR scratch, which is free here since no other
         instruction is mid-rewrite — and the branch tests the CR
         scratch instead. *)
      let term_map = Hashtbl.create 1 in
      List.iter
        (fun r ->
          if r.Reg.cls <> Reg.Cr then
            raise
              (Alloc_error
                 (Fmt.str
                    "terminator of %a reads spilled non-condition register %a"
                    Label.pp b.Block.label Reg.pp r));
          let cr_scratch =
            match scratch Reg.Cr with
            | s :: _ -> s
            | [] ->
                raise
                  (Alloc_error
                     (Fmt.str
                        "terminator of %a reads spilled %a but no \
                         condition-register scratch is reserved"
                        Label.pp b.Block.label Reg.pp r))
          in
          let gpr_tmp =
            match scratch Reg.Gpr with
            | s :: _ -> s
            | [] -> assert false (* spilling always reserves GPR scratch *)
          in
          reload_cr ~gpr_tmp ~cr_scratch r;
          Hashtbl.replace term_map (Reg.hash r) cr_scratch)
        (List.filter is_spilled (Instr.uses b.Block.term));
      b.Block.term <-
        Instr.map_regs
          ~f:(fun r ->
            match Hashtbl.find_opt term_map (Reg.hash r) with
            | Some s -> s
            | None -> phys_of r)
          b.Block.term;
      Gis_util.Vec.clear b.Block.body;
      List.iter (fun i -> Gis_util.Vec.push b.Block.body i) (List.rev !out))
    cfg;
  (!loads, !stores, !cr_moves)

(* ---- driver ---- *)

(* Process-wide metrics (no-ops until Gis_obs.Metrics.enable). *)
let m_allocations = Gis_obs.Metrics.counter "regalloc.allocations_total"
let m_spill_instrs = Gis_obs.Metrics.counter "regalloc.spill_instrs_total"
let m_spilled_regs = Gis_obs.Metrics.counter "regalloc.spilled_regs_total"

let m_cr_spill_moves =
  Gis_obs.Metrics.counter "regalloc.cr_spill_moves_total"

let allocate ?gprs ?fprs ?prov machine cfg =
  let budget = function
    | Reg.Gpr -> Option.value gprs ~default:(Machine.regs machine Reg.Gpr)
    | Reg.Fpr -> Option.value fprs ~default:(Machine.regs machine Reg.Fpr)
    | Reg.Cr -> Machine.regs machine Reg.Cr
  in
  let gen = Cfg.regs cfg in
  let phys cls n = Reg.Gen.reserve gen cls n in
  let intervals, entry_live = build_intervals cfg in
  let has_fpr = List.exists (fun iv -> iv.reg.Reg.cls = Reg.Fpr) intervals in
  let finish ~assignment ~spilled ~slots ~base ~scratch =
    let loads, stores, cr_moves =
      rewrite ?prov cfg ~assignment ~spilled ~base ~scratch
    in
    Gis_obs.Metrics.incr m_allocations;
    Gis_obs.Metrics.incr ~by:(loads + stores + cr_moves) m_spill_instrs;
    Gis_obs.Metrics.incr ~by:cr_moves m_cr_spill_moves;
    Gis_obs.Metrics.incr ~by:(Hashtbl.length spilled) m_spilled_regs;
    if Hashtbl.length spilled > 0 then begin
      let base_reg = match base with Some r -> r | None -> assert false in
      let entry_block = Cfg.block cfg (Cfg.entry cfg) in
      let setup =
        Cfg.make_instr cfg (Instr.Load_imm { dst = base_reg; value = 0 })
      in
      Gis_obs.Provenance.spill prov ~uid:(Instr.uid setup)
        ~block:entry_block.Block.label;
      Gis_util.Vec.insert entry_block.Block.body 0 setup
    end;
    let used cls =
      let seen = Hashtbl.create 16 in
      List.iter
        (fun i ->
          List.iter
            (fun r ->
              if r.Reg.cls = cls then Hashtbl.replace seen (Reg.hash r) ())
            (Instr.uses i @ Instr.defs i))
        (Cfg.all_instrs cfg);
      Hashtbl.length seen
    in
    {
      assignment =
        Hashtbl.fold (fun _ (r, p) acc -> (r, p) :: acc) assignment []
        |> List.sort (fun (a, _) (b, _) -> Reg.compare a b);
      spilled =
        Hashtbl.fold (fun _ (r, s) acc -> (r, s) :: acc) spilled []
        |> List.sort (fun (a, _) (b, _) -> Reg.compare a b);
      intervals;
      entry_live;
      frame = (if Hashtbl.length spilled > 0 then base else None);
      spill_loads = loads;
      spill_stores = stores;
      cr_spill_moves = cr_moves;
      slots;
      per_class =
        List.map
          (fun cls ->
            {
              cls;
              budget = budget cls;
              pressure = class_pressure intervals cls;
              used = used cls;
            })
          [ Reg.Gpr; Reg.Fpr; Reg.Cr ];
    }
  in
  if budget Reg.Gpr < 1 || budget Reg.Fpr < 1 then
    Error "register file too small: need at least one GPR and one FPR"
  else
    match scan ~pool_size:budget ~phys intervals with
    | exception Alloc_error m -> Error m
    | assignment, spilled, slots when Hashtbl.length spilled = 0 ->
        Ok
          (finish ~assignment ~spilled ~slots ~base:None
             ~scratch:(fun _ -> []))
    | _ -> (
        (* The procedure does not fit: re-run the scan with the top of
           each file reserved — one GPR as the spill-slot frame base
           (holds 0, initialized at entry; the simulator routes every
           access through it to the dedicated spill segment) and three
           scratch registers per spillable class in use (a
           three-address op can have dst, lhs and rhs all spilled and
           distinct). Condition registers spill through memory via an
           integer transfer scratch, so CR pressure above the file
           additionally reserves the top CR as the scratch — linear
           scan spills a class exactly when its peak pressure exceeds
           its pool, so the reservation is decided up front, before any
           CFG mutation. *)
        let g = budget Reg.Gpr and f = budget Reg.Fpr in
        let crs = budget Reg.Cr in
        let cr_spill = class_pressure intervals Reg.Cr > crs in
        if g < 5 then
          Error
            (Fmt.str
               "spilling needs 5 GPRs (1 slot base + 3 scratch + 1 \
                allocatable), have %d"
               g)
        else if has_fpr && f < 4 then
          Error
            (Fmt.str
               "spilling floats needs 4 FPRs (3 scratch + 1 allocatable), \
                have %d"
               f)
        else if cr_spill && crs < 2 then
          Error
            (Fmt.str
               "spilling condition registers needs 2 CRs (1 transfer \
                scratch + 1 allocatable), have %d"
               crs)
        else
          let pool_size = function
            | Reg.Gpr -> g - 4
            | Reg.Fpr -> if has_fpr then f - 3 else f
            | Reg.Cr -> if cr_spill then crs - 1 else crs
          in
          match scan ~pool_size ~phys intervals with
          | exception Alloc_error m -> Error m
          | assignment, spilled, slots -> (
              let base = Some (phys Reg.Gpr (g - 1)) in
              let scratch = function
                | Reg.Gpr ->
                    [
                      phys Reg.Gpr (g - 2); phys Reg.Gpr (g - 3);
                      phys Reg.Gpr (g - 4);
                    ]
                | Reg.Fpr ->
                    if has_fpr then
                      [
                        phys Reg.Fpr (f - 1); phys Reg.Fpr (f - 2);
                        phys Reg.Fpr (f - 3);
                      ]
                    else []
                | Reg.Cr -> if cr_spill then [ phys Reg.Cr (crs - 1) ] else []
              in
              match finish ~assignment ~spilled ~slots ~base ~scratch with
              | t -> Ok t
              | exception Alloc_error m -> Error m))

(* ---- inputs and observables ---- *)

(* Slots that {!remap_input} pre-stages from the caller: spilled
   registers live at entry are initialized in memory, not by a spill
   store — reloads from these slots are legitimate without one. *)
let staged_slots t =
  List.filter_map
    (fun ((r : Reg.t), s) ->
      if List.exists (Reg.equal r) t.entry_live then
        Some (slot_offset r.Reg.cls s)
      else None)
    t.spilled

let remap_input t (input : Simulator.input) =
  let assign = Hashtbl.create 32 in
  List.iter (fun (r, p) -> Hashtbl.replace assign (Reg.hash r) p) t.assignment;
  let spill = Hashtbl.create 8 in
  List.iter (fun (r, s) -> Hashtbl.replace spill (Reg.hash r) s) t.spilled;
  let entry = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace entry (Reg.hash r) ()) t.entry_live;
  (* A binding for a register the procedure does not read at entry is
     dropped: its physical home may be shared with (and would clobber)
     a register that is live there. *)
  let split regs =
    List.fold_left
      (fun (kept, mem) (r, v) ->
        if not (Hashtbl.mem entry (Reg.hash r)) then (kept, mem)
        else
          match Hashtbl.find_opt spill (Reg.hash r) with
          | Some s -> (kept, (slot_offset r.Reg.cls s, v) :: mem)
          | None -> (
              match Hashtbl.find_opt assign (Reg.hash r) with
              | Some p -> ((p, v) :: kept, mem)
              | None -> ((r, v) :: kept, mem)))
      ([], []) regs
  in
  let int_regs, extra_mem = split input.Simulator.int_regs in
  let float_regs, extra_fmem = split input.Simulator.float_regs in
  (* Bindings of spilled registers are staged into the spill segment,
     not program memory — the segment the simulator's [frame] routing
     reads them back from. *)
  {
    input with
    Simulator.int_regs = List.rev int_regs;
    float_regs = List.rev float_regs;
    spill_memory = input.Simulator.spill_memory @ List.rev extra_mem;
    spill_float_memory =
      input.Simulator.spill_float_memory @ List.rev extra_fmem;
  }

(* ---- verification ---- *)

let verify ?gprs ?fprs ~machine ~baseline ~allocated t input =
  let budget = function
    | Reg.Gpr -> Option.value gprs ~default:(Machine.regs machine Reg.Gpr)
    | Reg.Fpr -> Option.value fprs ~default:(Machine.regs machine Reg.Fpr)
    | Reg.Cr -> Machine.regs machine Reg.Cr
  in
  let ivals = Hashtbl.create 32 in
  List.iter (fun iv -> Hashtbl.replace ivals (Reg.hash iv.reg) iv) t.intervals;
  (* (a) no physical register is live across a conflicting def: the
     intervals mapped onto one physical register must be pairwise
     disjoint. *)
  let by_phys = Hashtbl.create 32 in
  List.iter
    (fun (r, p) ->
      match Hashtbl.find_opt ivals (Reg.hash r) with
      | Some iv ->
          Hashtbl.replace by_phys (Reg.hash p)
            (iv
            :: Option.value ~default:[]
                 (Hashtbl.find_opt by_phys (Reg.hash p)))
      | None -> ())
    t.assignment;
  let conflict =
    Hashtbl.fold
      (fun _ ivs acc ->
        match acc with
        | Some _ -> acc
        | None ->
            let sorted =
              List.sort (fun a b -> Int.compare a.start b.start) ivs
            in
            let rec chk = function
              | a :: (b :: _ as tl) ->
                  if a.stop >= b.start then Some (a, b) else chk tl
              | _ -> None
            in
            chk sorted)
      by_phys None
  in
  match conflict with
  | Some (a, b) ->
      Error
        (Fmt.str
           "%a and %a share a physical register but their live ranges \
            overlap"
           Reg.pp a.reg Reg.pp b.reg)
  | None -> (
      match
        List.find_opt (fun (s : cls_stat) -> s.used > budget s.cls) t.per_class
      with
      | Some s ->
          Error
            (Fmt.str "%a file overflow: %d registers used, budget %d"
               Reg.pp_cls s.cls s.used (budget s.cls))
      | None ->
          let expected =
            Simulator.observables (Simulator.run machine baseline input)
          in
          let got =
            Simulator.observables
              (Simulator.run ?frame:t.frame machine allocated
                 (remap_input t input))
          in
          if String.equal expected got then Ok ()
          else
            Error
              (Fmt.str "observable mismatch:@,symbolic:@,%s@,allocated:@,%s"
                 expected got))

let pp ppf t =
  Fmt.pf ppf "%a; spilled %d regs into %d slots (+%d reloads, +%d stores%a)"
    Fmt.(
      list ~sep:comma (fun ppf (s : cls_stat) ->
          pf ppf "%a pressure %d, used %d/%d" Reg.pp_cls s.cls s.pressure
            s.used s.budget))
    t.per_class
    (List.length t.spilled)
    t.slots t.spill_loads t.spill_stores
    (fun ppf n -> if n > 0 then Fmt.pf ppf ", +%d cr transfers" n)
    t.cr_spill_moves
