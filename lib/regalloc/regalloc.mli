(** Linear-scan register allocation over scheduled code.

    The paper schedules {e symbolic} registers and leaves allocation to
    the XL backend (Section 2), so the simulated cycle counts of the
    plain pipeline never pay for spills. This pass closes that gap: it
    builds one conservative live interval per symbolic register from
    the {!Gis_analysis.Liveness} solution (extended to block boundaries
    by live-in/live-out), runs the Poletto–Sarkar linear scan against
    the machine's physical register file, rewrites the procedure onto
    physical names with {!Gis_ir.Instr.map_regs}, and inserts spill
    code as real load/store instructions — so the simulator's delay
    model (load-use delay, store-queue forwarding) prices spills with
    no special cases.

    Spill slots live at {e negative} addresses (word slots at
    [-4(k+1)], doubles at [-8(k+1)]), below every Tiny-C array (static
    bases start at 1024), addressed off a reserved base register that
    holds 0. Observable comparisons against symbolic code must ignore
    those addresses — use {!observables_ignoring_spills}.

    Condition registers cannot be spilled (stores of [crN] are
    ill-formed, see [Validate]); a procedure whose condition-register
    pressure exceeds the file is rejected with [Error]. *)

type interval = {
  reg : Gis_ir.Reg.t;
  start : int;
  stop : int;  (** inclusive; positions are linearized layout order *)
}

type cls_stat = {
  cls : Gis_ir.Reg.cls;
  budget : int;  (** physical registers available to the allocator *)
  pressure : int;  (** peak simultaneous live intervals (pre-allocation) *)
  used : int;  (** distinct physical registers in the rewritten code *)
}

type t = {
  assignment : (Gis_ir.Reg.t * Gis_ir.Reg.t) list;
      (** symbolic register -> physical register, every allocated
          (non-spilled) register that appears in the procedure *)
  spilled : (Gis_ir.Reg.t * int) list;  (** symbolic register -> slot *)
  intervals : interval list;  (** the live intervals the scan ran on *)
  entry_live : Gis_ir.Reg.t list;
      (** registers live into the entry block — the only input bindings
          that survive {!remap_input} *)
  spill_loads : int;  (** reload instructions inserted *)
  spill_stores : int;  (** spill-store instructions inserted *)
  slots : int;  (** distinct spill slots *)
  per_class : cls_stat list;  (** GPR, FPR, CR in that order *)
}

val allocate :
  ?gprs:int ->
  ?fprs:int ->
  ?prov:Gis_obs.Provenance.t ->
  Gis_machine.Machine.t ->
  Gis_ir.Cfg.t ->
  (t, string) result
(** Allocate the procedure in place: every register in the rewritten
    code is physical ([rN]/[fN]/[crN] with [N] below the class budget),
    and spill code is inserted where the scan ran out. [gprs]/[fprs]
    override the machine's register file (the [--regs N] experiments);
    the condition-register budget always comes from the machine.

    When spilling is needed the allocator re-runs the scan with a
    reduced pool: the highest GPR becomes the spill-slot base register
    and the next three GPRs (and top three FPRs, when floats are in
    use) become reload/store scratch registers — three because a
    three-address op can have all its operands spilled and distinct.
    [Error] when the file is too small even for that (fewer than 5
    GPRs), when condition registers overflow their file, or when one
    instruction needs more spilled operands of a class than there are
    scratch registers (a call with 4+ spilled arguments). *)

val staged_slots : t -> int list
(** Spill-slot offsets that {!remap_input} pre-stages from the caller
    (spilled registers live at procedure entry): reloads from these
    slots legitimately have no matching spill store. *)

val remap_input : t -> Gis_sim.Simulator.input -> Gis_sim.Simulator.input
(** Translate an input built for the symbolic procedure: register
    bindings move to their physical names, bindings of spilled
    registers become memory bindings at the spill slot, and bindings of
    registers the procedure never read at entry are dropped (their
    physical home may be shared with a register that {e is} live). *)

val observables_ignoring_spills : Gis_sim.Simulator.outcome -> string
(** {!Gis_sim.Simulator.observables} with spill-slot (negative)
    addresses removed from both final memories — what allocation must
    preserve. The identity on outcomes of spill-free code. *)

val verify :
  ?gprs:int ->
  ?fprs:int ->
  machine:Gis_machine.Machine.t ->
  baseline:Gis_ir.Cfg.t ->
  allocated:Gis_ir.Cfg.t ->
  t ->
  Gis_sim.Simulator.input ->
  (unit, string) result
(** Post-allocation checks, strongest last:

    - no physical register hosts two overlapping live intervals (a
      conflicting def while another value is still live);
    - the rewritten code uses at most the budget of each class;
    - running the functional evaluator on the allocated code with the
      remapped input produces observable state (modulo spill slots)
      identical to the symbolic [baseline] on the same input. *)

val pp : t Fmt.t
(** One-line allocation summary: per-class pressure/used/budget plus
    spill counts. *)
