(** Linear-scan register allocation over scheduled code.

    The paper schedules {e symbolic} registers and leaves allocation to
    the XL backend (Section 2), so the simulated cycle counts of the
    plain pipeline never pay for spills. This pass closes that gap: it
    builds one conservative live interval per symbolic register from
    the {!Gis_analysis.Liveness} solution (extended to block boundaries
    by live-in/live-out), runs the Poletto–Sarkar linear scan against
    the machine's physical register file, rewrites the procedure onto
    physical names with {!Gis_ir.Instr.map_regs}, and inserts spill
    code as real load/store instructions — so the simulator's delay
    model (load-use delay, store-queue forwarding) prices spills with
    no special cases.

    Spill slots live in a {e dedicated spill segment}, disjoint from
    program memory by construction: slots (word slots at [4k], doubles
    at [8k]) are addressed off a reserved frame register holding 0, and
    the simulator routes every access whose base register {e is} the
    frame register ({!field-frame}, passed as {!Gis_sim.Simulator.run}'s
    [frame]) to separate spill tables. Isolation is by base-register
    identity, never by address range — program arithmetic can compute
    any integer, so no numeric range is unreachable, but the frame
    register is never assigned to a program value. Out-of-bounds
    program loads therefore cannot alias spill slots, and
    {!Gis_sim.Simulator.observables} needs no spill filtering.

    Condition registers spill through memory via an integer transfer
    scratch (mfcr/mtcr modeling, see [Validate]'s cr<->gpr move forms):
    the reload is [l gN,slot(base); mtcr crS,gN], the store-back
    [mfcr gN,crS; st gN,slot(base)]. CR pressure above the file
    reserves the top CR as the scratch and needs at least 2 CRs. *)

type interval = {
  reg : Gis_ir.Reg.t;
  start : int;
  stop : int;  (** inclusive; positions are linearized layout order *)
}

type cls_stat = {
  cls : Gis_ir.Reg.cls;
  budget : int;  (** physical registers available to the allocator *)
  pressure : int;  (** peak simultaneous live intervals (pre-allocation) *)
  used : int;  (** distinct physical registers in the rewritten code *)
}

type t = {
  assignment : (Gis_ir.Reg.t * Gis_ir.Reg.t) list;
      (** symbolic register -> physical register, every allocated
          (non-spilled) register that appears in the procedure *)
  spilled : (Gis_ir.Reg.t * int) list;  (** symbolic register -> slot *)
  intervals : interval list;  (** the live intervals the scan ran on *)
  entry_live : Gis_ir.Reg.t list;
      (** registers live into the entry block — the only input bindings
          that survive {!remap_input} *)
  frame : Gis_ir.Reg.t option;
      (** the reserved spill frame base register, [Some] exactly when
          spill code was inserted; pass it to
          {!Gis_sim.Simulator.run}'s [frame] so spill traffic lands in
          the simulator's dedicated spill segment *)
  spill_loads : int;  (** reload instructions inserted *)
  spill_stores : int;  (** spill-store instructions inserted *)
  cr_spill_moves : int;
      (** cr<->gpr transfer moves inserted for condition-register
          spills (also counted process-wide by the
          [regalloc.cr_spill_moves_total] metric) *)
  slots : int;  (** distinct spill slots *)
  per_class : cls_stat list;  (** GPR, FPR, CR in that order *)
}

exception Infeasible of string
(** The procedure cannot be allocated within the register file at all —
    what {!allocate} reports as [Error]. Raised by the pipeline (never
    by this module) so drivers can classify infeasibility separately
    from crashes; deterministic for a given (program, machine, budget). *)

val allocate :
  ?gprs:int ->
  ?fprs:int ->
  ?prov:Gis_obs.Provenance.t ->
  Gis_machine.Machine.t ->
  Gis_ir.Cfg.t ->
  (t, string) result
(** Allocate the procedure in place: every register in the rewritten
    code is physical ([rN]/[fN]/[crN] with [N] below the class budget),
    and spill code is inserted where the scan ran out. [gprs]/[fprs]
    override the machine's register file (the [--regs N] experiments);
    the condition-register budget always comes from the machine.

    When spilling is needed the allocator re-runs the scan with a
    reduced pool: the highest GPR becomes the spill frame base register
    and the next three GPRs (and top three FPRs, when floats are in
    use) become reload/store scratch registers — three because a
    three-address op can have all its operands spilled and distinct.
    When condition-register pressure exceeds the CR file, the top CR is
    additionally reserved as the transfer scratch. [Error] when the
    file is too small even for that (fewer than 5 GPRs, or fewer than
    2 CRs under CR pressure), or when one instruction needs more
    spilled operands of a class than there are scratch registers (a
    call with 4+ spilled arguments). *)

val staged_slots : t -> int list
(** Spill-slot offsets that {!remap_input} pre-stages from the caller
    (spilled registers live at procedure entry): reloads from these
    slots legitimately have no matching spill store. *)

val remap_input : t -> Gis_sim.Simulator.input -> Gis_sim.Simulator.input
(** Translate an input built for the symbolic procedure: register
    bindings move to their physical names, bindings of spilled
    registers become spill-segment bindings at the spill slot
    ([spill_memory]/[spill_float_memory]), and bindings of registers
    the procedure never read at entry are dropped (their physical home
    may be shared with a register that {e is} live). *)

val verify :
  ?gprs:int ->
  ?fprs:int ->
  machine:Gis_machine.Machine.t ->
  baseline:Gis_ir.Cfg.t ->
  allocated:Gis_ir.Cfg.t ->
  t ->
  Gis_sim.Simulator.input ->
  (unit, string) result
(** Post-allocation checks, strongest last:

    - no physical register hosts two overlapping live intervals (a
      conflicting def while another value is still live);
    - the rewritten code uses at most the budget of each class;
    - running the functional evaluator on the allocated code with the
      remapped input (and the spill segment routed through
      {!field-frame}) produces observable state identical to the
      symbolic [baseline] on the same input — exact equality, no spill
      filtering, since spill storage is disjoint by construction. *)

val pp : t Fmt.t
(** One-line allocation summary: per-class pressure/used/budget plus
    spill counts. *)
