(** The data dependence subgraph of the PDG (paper Section 4.2).

    Built per scheduling region over a {!Gis_analysis.Regions.view}:
    nodes are the instructions of the region's own blocks plus one
    *summary node* per collapsed inner loop (so that nothing is ever
    moved across a loop it depends on); edges are flow, anti, output and
    memory dependences. Intra-block dependences relate instructions of
    one block; inter-block dependences relate instructions of blocks
    [A], [B] such that [B] is reachable from [A] in the region's forward
    flow graph. Only definition-to-use (flow) edges carry a machine
    delay. The graph is acyclic because the view is. *)

type dep_kind = Flow | Anti | Output | Mem

val pp_dep_kind : dep_kind Fmt.t

type node = {
  idx : int;  (** dense node index *)
  uid : int;  (** instruction uid; negative for loop summaries *)
  instr : Gis_ir.Instr.t option;  (** [None] for loop summaries *)
  view_node : int;  (** region-view node containing this instruction *)
  pos : int;  (** position within its block; the terminator is last *)
  defs : Gis_ir.Reg.Set.t;
  uses : Gis_ir.Reg.Set.t;
}

type edge = {
  src : int;
  dst : int;
  kind : dep_kind;
  reg : Gis_ir.Reg.t option;  (** register carrying the dependence *)
  delay : int;
}

type t

val build :
  ?sym:Gis_analysis.Symaddr.t ->
  Gis_ir.Cfg.t ->
  Gis_machine.Machine.t ->
  Gis_analysis.Regions.t ->
  Gis_analysis.Regions.view ->
  t
(** Dependences are computed pairwise with the transitive-closure
    shortcut of Section 4.2 disabled (all edges are materialised); use
    {!prune_transitive} to drop edges implied by longer paths.

    When [sym] (the whole-procedure symbolic address analysis of the
    same CFG) is supplied, Mem edges between accesses with provably
    equal-origin bases and disjoint ranges are pruned; without it only
    the version/family and reaching-definition rules apply. Legal code
    motion preserves every address computation, so facts computed once
    per scheduling pass stay valid as regions are scheduled. *)

val build_single_block :
  ?sym:Gis_analysis.Symaddr.t -> Gis_machine.Machine.t -> Gis_ir.Block.t -> t
(** Intra-block dependences of one basic block only (view node 0) — the
    input to the local (basic block) scheduler applied after global
    scheduling, Section 5.1. [sym] as in {!build}. *)

val mem_kept : t -> int
(** Mem edges this build materialised. *)

val mem_pruned : t -> int
(** Conflicting access pairs whose Mem edge the family or
    symbolic-address refinement proved unnecessary. *)

val num_nodes : t -> int

(** [exec_time t i] is the machine execution time of node [i]'s
    instruction (1 for loop summaries). *)
val exec_time : t -> int -> int
val node : t -> int -> node
val nodes_of_view_node : t -> int -> int list
(** Node indices in block order (position order). *)

val node_of_uid : t -> int -> int option
val succs : t -> int -> edge list
val preds : t -> int -> edge list
val num_edges : t -> int

val prune_transitive : t -> t
(** Remove an edge [a -> c] when some intermediate [b] with edges
    [a -> b -> c] already enforces at least as strong a timing
    constraint: [delay(a,b) + exec(b) + delay(b,c) >= delay(a,c)].
    Scheduling results are unchanged; the graph just gets smaller
    (the paper's compile-time optimisation). *)

val is_acyclic : t -> bool

val iter_edges : (edge -> unit) -> t -> unit

val drop_mem_edges_for_testing : bool ref
(** Fault injection for the fuzzer's self-test ONLY: while [true], the
    builders omit every memory dependence edge, letting the scheduler
    reorder conflicting stores and loads. [false] by default; tests that
    set it must restore it ([Fun.protect]). *)

val pp : t Fmt.t
