open Gis_ir

type family = Int_mem | Float_mem

let pp_family ppf f =
  Fmt.string ppf (match f with Int_mem -> "int" | Float_mem -> "float")

type ref_info = {
  base : Reg.t;
  version : int;
  offset : int;
  width : int;
  family : family;
}

type access =
  | Load_ref of ref_info
  | Store_ref of ref_info
  | Call_ref

(* The access's memory family is chosen by the class of the moved
   register, exactly as the simulator selects its [mem]/[fmem] table;
   the width then belongs to the family (a float access moves a
   doubleword, everything else a word), not to whatever class the
   register happens to have. *)
let family_of_moved (r : Reg.t) =
  match r.Reg.cls with Reg.Fpr -> Float_mem | Reg.Gpr | Reg.Cr -> Int_mem

let width_of_family = function Float_mem -> 8 | Int_mem -> 4

let access_of_instr ~version_of i =
  let ref_of ~moved ~base ~offset =
    let family = family_of_moved moved in
    {
      base;
      version = version_of base;
      offset;
      width = width_of_family family;
      family;
    }
  in
  match Instr.kind i with
  | Instr.Load { dst; base; offset; _ } ->
      Some (Load_ref (ref_of ~moved:dst ~base ~offset))
  | Instr.Store { src; base; offset; _ } ->
      Some (Store_ref (ref_of ~moved:src ~base ~offset))
  | Instr.Call _ -> Some Call_ref
  | Instr.Load_imm _ | Instr.Move _ | Instr.Binop _ | Instr.Fbinop _
  | Instr.Compare _ | Instr.Fcompare _ | Instr.Branch_cond _ | Instr.Jump _
  | Instr.Halt ->
      None

let ranges_disjoint a b =
  a.offset + a.width <= b.offset || b.offset + b.width <= a.offset

(* Proven-disjoint: same base value, non-overlapping [offset,
   offset+width) intervals. Unknown versions (-1) still compare equal
   only to -1, which is sound within one block scan: version -1 means
   "whatever the base held at block entry", a single well-defined
   value. Accesses of different families live in architecturally
   disjoint memories and never need the base proof at all. *)
let disjoint a b =
  a.family <> b.family
  || (Reg.equal a.base b.base && a.version = b.version && ranges_disjoint a b)

let conflict a b =
  match a, b with
  | Load_ref _, Load_ref _ -> false
  | Call_ref, _ | _, Call_ref -> true
  | Load_ref x, Store_ref y
  | Store_ref x, Load_ref y
  | Store_ref x, Store_ref y ->
      not (disjoint x y)

let baseline_conflict a b =
  match a, b with
  | Load_ref _, Load_ref _ -> false
  | Call_ref, _ | _, Call_ref -> true
  | Load_ref x, Store_ref y
  | Store_ref x, Load_ref y
  | Store_ref x, Store_ref y ->
      not (Reg.equal x.base y.base && x.version = y.version && ranges_disjoint x y)
