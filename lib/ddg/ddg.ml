open Gis_util
open Gis_ir
open Gis_analysis

type dep_kind = Flow | Anti | Output | Mem

let pp_dep_kind ppf k =
  Fmt.string ppf
    (match k with Flow -> "flow" | Anti -> "anti" | Output -> "output" | Mem -> "mem")

type node = {
  idx : int;
  uid : int;
  instr : Instr.t option;
  view_node : int;
  pos : int;
  defs : Reg.Set.t;
  uses : Reg.Set.t;
}

type edge = {
  src : int;
  dst : int;
  kind : dep_kind;
  reg : Reg.t option;
  delay : int;
}

type t = {
  nodes : node array;
  succs : edge list array;
  preds : edge list array;
  exec : int array;
  of_uid : (int, int) Hashtbl.t;
  by_view_node : int list array;
  mem_access : Alias.access option array;
  mem_kept : int;
  mem_pruned : int;
}

let mem_kept t = t.mem_kept
let mem_pruned t = t.mem_pruned

(* Process-wide disambiguation telemetry (no-ops until
   [Gis_obs.Metrics.enable]): every conflict query, every Mem edge the
   refinements pruned versus kept, and why conservative queries fell
   back. *)
let m_queries = Gis_obs.Metrics.counter "alias.queries_total"
let m_kept = Gis_obs.Metrics.counter "alias.mem_edges_kept_total"

let m_pruned_intra =
  Gis_obs.Metrics.counter "alias.mem_edges_pruned_total.intra"

let m_pruned_inter =
  Gis_obs.Metrics.counter "alias.mem_edges_pruned_total.inter"

let m_fb_top = Gis_obs.Metrics.counter "alias.fallback_total.top"

let m_fb_origin =
  Gis_obs.Metrics.counter "alias.fallback_total.origin-mismatch"

let m_fb_overlap = Gis_obs.Metrics.counter "alias.fallback_total.overlap"
let m_fb_call = Gis_obs.Metrics.counter "alias.fallback_total.call"
let m_fb_off = Gis_obs.Metrics.counter "alias.fallback_total.disabled"

let num_nodes t = Array.length t.nodes
let exec_time t i = t.exec.(i)
let node t i = t.nodes.(i)
let nodes_of_view_node t v = t.by_view_node.(v)
let node_of_uid t u = Hashtbl.find_opt t.of_uid u
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)
let num_edges t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.succs

let iter_edges f t = Array.iter (List.iter f) t.succs

(* Does an inter-block pair of memory accesses conflict? Scan-local base
   versions mean nothing across blocks; instead two references share a
   base value when the base register's use has the same single reaching
   definition at both instructions (then every execution reads the same
   value there, whatever path it took). [base_sites] supplies those
   reaching definitions. *)
let interblock_mem_conflict ~base_sites (a_idx, a) (b_idx, b) =
  match a, b with
  | Alias.Load_ref _, Alias.Load_ref _ -> false
  | Alias.Call_ref, _ | _, Alias.Call_ref -> true
  | (Alias.Load_ref x | Alias.Store_ref x), (Alias.Load_ref y | Alias.Store_ref y)
    -> (
      if not (Reg.equal x.Alias.base y.Alias.base) then true
      else
        match base_sites a_idx, base_sites b_idx with
        | Some [ sa ], Some [ sb ] when Reaching.equal_site sa sb ->
            not (Alias.ranges_disjoint x y)
        | _, _ -> true)

(* Decide whether a conflicting pair of accesses really needs its Mem
   edge. [conservative] is the verdict of the version/family (intra) or
   reaching-definition (inter) rule; when it says "ordered" and both
   sides are plain references, the symbolic-address pass gets the last
   word. Every decision is tallied — process-wide in the alias.*
   metrics, per-graph in [kept]/[pruned] (surfaced by `gisc explain`).
   Accesses of different memory families are disjoint outright; they
   count as pruned when the family-blind baseline rule would have kept
   an edge. *)
let decide_mem ~sym ~pruned_metric ~kept ~pruned ~ua ~ub a b conservative =
  Gis_obs.Metrics.incr m_queries;
  let prune () =
    incr pruned;
    Gis_obs.Metrics.incr pruned_metric;
    false
  in
  let keep reason =
    Gis_obs.Metrics.incr reason;
    incr kept;
    Gis_obs.Metrics.incr m_kept;
    true
  in
  match a, b with
  | Alias.Load_ref _, Alias.Load_ref _ -> false
  | Alias.Call_ref, _ | _, Alias.Call_ref ->
      if conservative then keep m_fb_call else false
  | ( (Alias.Load_ref x | Alias.Store_ref x),
      (Alias.Load_ref y | Alias.Store_ref y) ) -> (
      if x.Alias.family <> y.Alias.family then
        if Alias.baseline_conflict a b then prune () else false
      else if not conservative then false
      else
        match sym with
        | None -> keep m_fb_off
        | Some sym -> (
            match Symaddr.delta sym ~a:ua ~b:ub with
            | Some d ->
                let shifted = { y with Alias.offset = y.Alias.offset + d } in
                if Alias.ranges_disjoint x shifted then prune ()
                else keep m_fb_overlap
            | None ->
                keep
                  (match
                     ( Symaddr.base_value sym ua,
                       Symaddr.base_value sym ub )
                   with
                  | Symaddr.Top, _ | _, Symaddr.Top -> m_fb_top
                  | (Symaddr.Const _ | Symaddr.Sym _), _ -> m_fb_origin)))

(* One ordered scan over the nodes of a single block, adding flow, anti,
   output and memory edges. Shared by the region builder and the
   single-block builder. [mem_conflict] answers whether an earlier
   memory node and the current one must stay ordered. *)
let intra_block_scan ~(nodes : node array) ~mem_access ~flow_delay ~mem_delay
    ~mem_conflict ~add_edge node_idxs =
  let last_def = Hashtbl.create 8 in   (* reg hash -> node idx *)
  let uses_since = Hashtbl.create 8 in (* reg hash -> node idx list *)
  let mem_before = ref [] in           (* earlier memory nodes, newest first *)
  List.iter
    (fun j ->
      let nd = nodes.(j) in
      Reg.Set.iter
        (fun r ->
          match Hashtbl.find_opt last_def (Reg.hash r) with
          | Some d -> add_edge d j Flow (Some r) (flow_delay d j r)
          | None -> ())
        nd.uses;
      Reg.Set.iter
        (fun r ->
          (match Hashtbl.find_opt last_def (Reg.hash r) with
          | Some d -> add_edge d j Output (Some r) 0
          | None -> ());
          List.iter
            (fun u -> add_edge u j Anti (Some r) 0)
            (Option.value ~default:[]
               (Hashtbl.find_opt uses_since (Reg.hash r))))
        nd.defs;
      (match mem_access.(j) with
      | Some _ ->
          List.iter
            (fun m ->
              if mem_conflict m j then add_edge m j Mem None (mem_delay m j))
            !mem_before;
          mem_before := j :: !mem_before
      | None -> ());
      Reg.Set.iter
        (fun r ->
          Hashtbl.replace last_def (Reg.hash r) j;
          Hashtbl.replace uses_since (Reg.hash r) [])
        nd.defs;
      Reg.Set.iter
        (fun r ->
          let cur =
            Option.value ~default:[] (Hashtbl.find_opt uses_since (Reg.hash r))
          in
          Hashtbl.replace uses_since (Reg.hash r) (j :: cur))
        nd.uses)
    node_idxs

let finalize ~nodes ~mem_access ~exec ~by_view_node ~mem_kept ~mem_pruned
    edges =
  let n = Array.length nodes in
  let succs = Array.make n [] and preds = Array.make n [] in
  Hashtbl.iter
    (fun _ (e : edge) ->
      succs.(e.src) <- e :: succs.(e.src);
      preds.(e.dst) <- e :: preds.(e.dst))
    edges;
  let of_uid = Hashtbl.create (max 1 n) in
  Array.iter (fun nd -> Hashtbl.replace of_uid nd.uid nd.idx) nodes;
  { nodes; succs; preds; exec; of_uid; by_view_node; mem_access; mem_kept;
    mem_pruned }

(* The intra-block memory-conflict test both builders hand to the scan:
   version/family rule first, symbolic refinement second. *)
let intra_mem_conflict ~sym ~(nodes : node array)
    ~(mem_access : Alias.access option array) ~kept ~pruned m j =
  match mem_access.(m), mem_access.(j) with
  | Some a, Some b ->
      decide_mem ~sym ~pruned_metric:m_pruned_intra ~kept ~pruned
        ~ua:nodes.(m).uid ~ub:nodes.(j).uid a b (Alias.conflict a b)
  | None, _ | _, None -> false

(* Fault-injection hook for the differential fuzzer's self-test: when
   set, every memory dependence edge is silently dropped, so stores and
   loads reorder freely — the classic alias-analysis bug class. All
   edges funnel through [make_edge_table]'s [add_edge], so gating here
   covers both the region builder and the single-block builder. Never
   set outside tests. *)
let drop_mem_edges_for_testing = ref false

let make_edge_table () =
  let edges = Hashtbl.create 256 in
  let add_edge src dst kind reg delay =
    if src = dst || (!drop_mem_edges_for_testing && kind = Mem) then ()
    else
      match Hashtbl.find_opt edges (src, dst) with
      | Some (e : edge) when e.delay >= delay -> ()
      | Some _ | None ->
          Hashtbl.replace edges (src, dst) { src; dst; kind; reg; delay }
  in
  (edges, add_edge)

let flow_delay_fn machine (nodes : node array) a b r =
  match nodes.(a).instr, nodes.(b).instr with
  | Some p, Some c ->
      Gis_machine.Machine.delay machine ~producer:p ~consumer:c ~reg:r
  | None, _ | _, None -> 0

let mem_delay_fn machine (nodes : node array) a b =
  match nodes.(a).instr, nodes.(b).instr with
  | Some p, Some c -> Gis_machine.Machine.mem_delay machine ~producer:p ~consumer:c
  | None, _ | _, None -> 0

let build_single_block ?sym machine (blk : Block.t) =
  let nodes_v = Vec.create () in
  let mem_v = Vec.create () in
  let exec_v = Vec.create () in
  let versions = Hashtbl.create 8 in
  let version_of (r : Reg.t) =
    Option.value ~default:(-1) (Hashtbl.find_opt versions (Reg.hash r))
  in
  let visit i =
    let idx = Vec.length nodes_v in
    Vec.push nodes_v
      {
        idx;
        uid = Instr.uid i;
        instr = Some i;
        view_node = 0;
        pos = idx;
        defs = Reg.Set.of_list (Instr.defs i);
        uses = Reg.Set.of_list (Instr.uses i);
      };
    Vec.push mem_v (Alias.access_of_instr ~version_of i);
    Vec.push exec_v (Gis_machine.Machine.exec_time machine i);
    List.iter
      (fun r -> Hashtbl.replace versions (Reg.hash r) (Instr.uid i))
      (Instr.defs i)
  in
  Vec.iter visit blk.Block.body;
  visit blk.Block.term;
  let nodes = Vec.to_array nodes_v in
  let mem_access = Vec.to_array mem_v in
  let exec = Vec.to_array exec_v in
  let edges, add_edge = make_edge_table () in
  let kept = ref 0 and pruned = ref 0 in
  intra_block_scan ~nodes ~mem_access
    ~flow_delay:(flow_delay_fn machine nodes)
    ~mem_delay:(mem_delay_fn machine nodes)
    ~mem_conflict:(intra_mem_conflict ~sym ~nodes ~mem_access ~kept ~pruned)
    ~add_edge
    (List.init (Array.length nodes) Fun.id);
  finalize ~nodes ~mem_access ~exec
    ~by_view_node:[| List.init (Array.length nodes) Fun.id |]
    ~mem_kept:!kept ~mem_pruned:!pruned edges

let build ?sym cfg machine regions (view : Regions.view) =
  let loops_blocks c = Regions.summary_blocks regions ~loop_index:c in
  (* ---- 1. Node table ---- *)
  let nodes = Vec.create () in
  let mem_access_v = Vec.create () in
  let exec_v = Vec.create () in
  let add_node ~uid ~instr ~view_node ~pos ~defs ~uses ~mem ~exec =
    let idx = Vec.length nodes in
    Vec.push nodes { idx; uid; instr; view_node; pos; defs; uses };
    Vec.push mem_access_v mem;
    Vec.push exec_v exec;
    idx
  in
  let num_view_nodes = view.Regions.flow.Flow.num_nodes in
  let by_view_node = Array.make num_view_nodes [] in
  Array.iteri
    (fun v kind ->
      match kind with
      | Regions.Block b ->
          let blk = Cfg.block cfg b in
          let versions = Hashtbl.create 8 in
          let version_of (r : Reg.t) =
            Option.value ~default:(-1) (Hashtbl.find_opt versions (Reg.hash r))
          in
          let pos = ref 0 in
          let visit i =
            let mem = Alias.access_of_instr ~version_of i in
            let idx =
              add_node ~uid:(Instr.uid i) ~instr:(Some i) ~view_node:v
                ~pos:!pos
                ~defs:(Reg.Set.of_list (Instr.defs i))
                ~uses:(Reg.Set.of_list (Instr.uses i))
                ~mem ~exec:(Gis_machine.Machine.exec_time machine i)
            in
            incr pos;
            List.iter
              (fun r -> Hashtbl.replace versions (Reg.hash r) (Instr.uid i))
              (Instr.defs i);
            by_view_node.(v) <- idx :: by_view_node.(v)
          in
          Vec.iter visit blk.Block.body;
          visit blk.Block.term
      | Regions.Inner_loop c ->
          let defs = ref Reg.Set.empty and uses = ref Reg.Set.empty in
          let mem = ref false in
          Ints.Int_set.iter
            (fun b ->
              List.iter
                (fun i ->
                  List.iter (fun r -> defs := Reg.Set.add r !defs) (Instr.defs i);
                  List.iter (fun r -> uses := Reg.Set.add r !uses) (Instr.uses i);
                  if Instr.touches_memory i then mem := true)
                (Block.instrs (Cfg.block cfg b)))
            (loops_blocks c);
          let idx =
            add_node ~uid:(-c - 1) ~instr:None ~view_node:v ~pos:0 ~defs:!defs
              ~uses:!uses
              ~mem:(if !mem then Some Alias.Call_ref else None)
              ~exec:1
          in
          by_view_node.(v) <- idx :: by_view_node.(v))
    view.Regions.nodes;
  let by_view_node = Array.map List.rev by_view_node in
  let nodes = Vec.to_array nodes in
  let mem_access = Vec.to_array mem_access_v in
  let exec = Vec.to_array exec_v in
  (* ---- 2. Edges ---- *)
  let edges, add_edge = make_edge_table () in
  let flow_delay = flow_delay_fn machine nodes in
  let mem_delay = mem_delay_fn machine nodes in
  let kept = ref 0 and pruned = ref 0 in
  (* Intra-block dependences: one ordered scan per view node. *)
  Array.iter
    (intra_block_scan ~nodes ~mem_access ~flow_delay ~mem_delay
       ~mem_conflict:(intra_mem_conflict ~sym ~nodes ~mem_access ~kept ~pruned)
       ~add_edge)
    by_view_node;
  (* Inter-block dependences over reachable view-node pairs. Reaching
     definitions power the cross-block base-value proof; they are only
     computed when some memory reference actually needs them. *)
  let reaching = lazy (Reaching.compute cfg) in
  let base_sites idx =
    match nodes.(idx).instr, mem_access.(idx) with
    | Some i, Some (Alias.Load_ref ri | Alias.Store_ref ri) ->
        Some
          (Reaching.defs_of_use (Lazy.force reaching) ~uid:(Instr.uid i)
             ~reg:ri.Alias.base)
    | _, _ -> None
  in
  let reach = Flow.reachable_matrix view.Regions.flow in
  for va = 0 to num_view_nodes - 1 do
    for vb = 0 to num_view_nodes - 1 do
      if va <> vb && reach.(va).(vb) then
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                let na = nodes.(a) and nb = nodes.(b) in
                Reg.Set.iter
                  (fun r ->
                    if Reg.Set.mem r nb.uses then
                      add_edge a b Flow (Some r) (flow_delay a b r);
                    if Reg.Set.mem r nb.defs then add_edge a b Output (Some r) 0)
                  na.defs;
                Reg.Set.iter
                  (fun r ->
                    if Reg.Set.mem r nb.defs then add_edge a b Anti (Some r) 0)
                  na.uses;
                match mem_access.(a), mem_access.(b) with
                | Some x, Some y ->
                    if
                      decide_mem ~sym ~pruned_metric:m_pruned_inter ~kept
                        ~pruned ~ua:na.uid ~ub:nb.uid x y
                        (interblock_mem_conflict ~base_sites (a, x) (b, y))
                    then add_edge a b Mem None (mem_delay a b)
                | None, _ | _, None -> ())
              by_view_node.(vb))
          by_view_node.(va)
    done
  done;
  finalize ~nodes ~mem_access ~exec ~by_view_node ~mem_kept:!kept
    ~mem_pruned:!pruned edges

let prune_transitive t =
  let implied e =
    List.exists
      (fun (ab : edge) ->
        ab.dst <> e.dst
        && List.exists
             (fun (bc : edge) ->
               bc.dst = e.dst
               && ab.delay + t.exec.(ab.dst) + bc.delay >= e.delay)
             t.succs.(ab.dst))
      t.succs.(e.src)
  in
  let keep = Hashtbl.create 256 in
  Array.iter
    (List.iter (fun e -> if not (implied e) then Hashtbl.replace keep (e.src, e.dst) e))
    t.succs;
  let n = Array.length t.nodes in
  let succs = Array.make n [] and preds = Array.make n [] in
  Hashtbl.iter
    (fun _ (e : edge) ->
      succs.(e.src) <- e :: succs.(e.src);
      preds.(e.dst) <- e :: preds.(e.dst))
    keep;
  { t with succs; preds }

let is_acyclic t =
  let n = Array.length t.nodes in
  let color = Array.make n 0 in
  let rec go v =
    if color.(v) = 1 then false
    else if color.(v) = 2 then true
    else begin
      color.(v) <- 1;
      let ok = List.for_all (fun e -> go e.dst) t.succs.(v) in
      color.(v) <- 2;
      ok
    end
  in
  let rec all v = v >= n || (go v && all (v + 1)) in
  all 0

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  Array.iter
    (fun nd ->
      Fmt.pf ppf "%d (uid %d, view %d): %a@," nd.idx nd.uid nd.view_node
        Fmt.(option ~none:(any "<summary>") Instr.pp)
        nd.instr;
      List.iter
        (fun e ->
          Fmt.pf ppf "   -> %d [%a%a d=%d]@," e.dst pp_dep_kind e.kind
            Fmt.(option (fun ppf r -> pf ppf " %a" Reg.pp r))
            e.reg e.delay)
        t.succs.(nd.idx))
    t.nodes;
  Fmt.pf ppf "@]"
