(** Memory disambiguation (paper Section 4.2, fourth dependence rule).

    Two memory-touching instructions must be ordered unless it is proven
    they address different locations. The proof here is syntactic, in
    the spirit of the XL compiler: two references are independent when
    they use the same base register holding the same *value* (the same
    reaching definition during a single block scan) with accesses that
    cannot overlap, or when they touch different memory families
    altogether. Loads never conflict with loads. Calls conflict with
    every memory reference.

    Stronger proofs — full affine address arithmetic across blocks —
    live in {!Gis_analysis.Symaddr} (scheduler side) and
    [Gis_check.Addrcheck] (checker side); both reduce to
    {!ranges_disjoint} once base equality is established. *)

type family =
  | Int_mem  (** word accesses: GPR/CR loads and stores *)
  | Float_mem  (** doubleword accesses: FPR loads and stores *)
      (** Which architectural memory the access touches — the simulator
          keeps integer and floating-point memory as disjoint address
          spaces (its [mem]/[fmem] tables), so accesses of different
          families never alias regardless of address. *)

val pp_family : family Fmt.t

type ref_info = {
  base : Gis_ir.Reg.t;
  version : int;
      (** uid of the base register's defining instruction at address
          computation time, or [-1] when defined before the scan began
          (unknown/external); two refs disambiguate positionally only
          when versions are equal and non-conflicting offsets *)
  offset : int;
  width : int;
      (** bytes accessed — derived from the access's {!family}, i.e.
          from which memory the instruction moves data, not from the
          base register *)
  family : family;
}

type access =
  | Load_ref of ref_info
  | Store_ref of ref_info
  | Call_ref  (** conservatively touches everything *)

val access_of_instr :
  version_of:(Gis_ir.Reg.t -> int) -> Gis_ir.Instr.t -> access option
(** [None] when the instruction does not touch memory. [version_of]
    supplies the current value-version of the base register. *)

val conflict : access -> access -> bool
(** Must the second access stay ordered after the first? *)

val baseline_conflict : access -> access -> bool
(** The family-blind version rule alone — what {!conflict} answered
    before memory families existed. Kept only so the DDG builders can
    account how many Mem edges each refinement layer pruned; never use
    it to decide an edge. *)

val ranges_disjoint : ref_info -> ref_info -> bool
(** Do the two [offset, offset+width) intervals miss each other?

    Contract: this compares offsets {e relative to the two base
    values}, so it proves disjointness only once the caller has proved
    the base values equal. Blessed callers and their proofs:
    - the intra-block scan ({!conflict}): same register at the same
      scan version;
    - the inter-block disambiguators in [Gis_ddg.Ddg] and
      [Gis_check.Deps]: same register with the same single reaching
      definition;
    - the symbolic-address passes ([Gis_analysis.Symaddr] /
      [Gis_check.Addrcheck]): same affine origin, with the proven
      base delta folded into one side's offsets before the range
      test.
    Any other caller must bring its own base-equality proof. *)
