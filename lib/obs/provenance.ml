open Gis_ir

(* Motion provenance: where every final instruction came from.

   The table is keyed by instruction uid — [Instr.with_kind], renaming
   and register rewriting all preserve uids, and every fresh copy
   ([Cfg.copy_instr], spill code) gets a recording call at its creation
   site — so a record survives every transformation the pipeline
   applies. Recording functions take a [t option] and do nothing on
   [None]: with provenance off the passes pay one option match per
   call site and the schedule is untouched. *)

type kind = Unmoved | Useful | Speculative | Duplicated | Spill_inserted

(* Fixed order: used for deterministic remainder assignment in
   [attribute] and for the conservation counts. *)
let all_kinds = [ Useful; Speculative; Duplicated; Spill_inserted; Unmoved ]

let kind_name = function
  | Unmoved -> "unmoved"
  | Useful -> "useful"
  | Speculative -> "speculative"
  | Duplicated -> "duplicated"
  | Spill_inserted -> "spill_inserted"

let pp_kind ppf k = Fmt.string ppf (kind_name k)

(* The Section 5.2 priority ranks of the winning heap entry at the
   moment the scheduler committed to the motion. *)
type scores = { d : int; cp : int; order : int; pressure : int }

type record = {
  uid : int;
  origin : Label.t;
  kind : kind;
  scores : scores option;
  copy_index : int;
  renamed : bool;
  moved_from : Label.t option;
}

type t = {
  tbl : (int, record) Hashtbl.t;
  (* uid -> (block, position) in the final CFG; filled by [finalize] *)
  final : (int, Label.t * int) Hashtbl.t;
}

let create () = { tbl = Hashtbl.create 256; final = Hashtbl.create 256 }

let find t uid = Hashtbl.find_opt t.tbl uid
let final_site t uid = Hashtbl.find_opt t.final uid

let seed prov ~uid ~origin =
  match prov with
  | None -> ()
  | Some t ->
      if not (Hashtbl.mem t.tbl uid) then
        Hashtbl.replace t.tbl uid
          {
            uid;
            origin;
            kind = Unmoved;
            scores = None;
            copy_index = 0;
            renamed = false;
            moved_from = None;
          }

(* A fresh copy made by unrolling/rotation inherits its source's
   lineage one generation deeper; a copy of an untracked instruction
   (provenance enabled mid-flight) starts a lineage of its own. *)
let copied prov ~orig ~copy ~block =
  match prov with
  | None -> ()
  | Some t ->
      let r =
        match Hashtbl.find_opt t.tbl orig with
        | Some r -> { r with uid = copy; copy_index = r.copy_index + 1 }
        | None ->
            {
              uid = copy;
              origin = block;
              kind = Unmoved;
              scores = None;
              copy_index = 1;
              renamed = false;
              moved_from = None;
            }
      in
      Hashtbl.replace t.tbl copy r

let moved prov ~uid ~kind ?scores ?(renamed = false) ~from () =
  match prov with
  | None -> ()
  | Some t -> (
      match Hashtbl.find_opt t.tbl uid with
      | Some r ->
          Hashtbl.replace t.tbl uid
            {
              r with
              kind;
              scores = (match scores with Some _ -> scores | None -> r.scores);
              renamed = r.renamed || renamed;
              moved_from = Some from;
            }
      | None ->
          Hashtbl.replace t.tbl uid
            {
              uid;
              origin = from;
              kind;
              scores;
              copy_index = 0;
              renamed;
              moved_from = Some from;
            })

(* Duplication places a fresh copy of a moved instruction in the other
   predecessors; the copy shares the original's provenance but is its
   own Duplicated record in the block it landed in. *)
let duplicated prov ~orig ~copy ~block =
  match prov with
  | None -> ()
  | Some t ->
      let base =
        match Hashtbl.find_opt t.tbl orig with
        | Some r -> r
        | None ->
            {
              uid = copy;
              origin = block;
              kind = Duplicated;
              scores = None;
              copy_index = 0;
              renamed = false;
              moved_from = None;
            }
      in
      Hashtbl.replace t.tbl copy
        { base with uid = copy; kind = Duplicated; moved_from = Some base.origin }

let spill prov ~uid ~block =
  match prov with
  | None -> ()
  | Some t ->
      Hashtbl.replace t.tbl uid
        {
          uid;
          origin = block;
          kind = Spill_inserted;
          scores = None;
          copy_index = 0;
          renamed = false;
          moved_from = None;
        }

(* Record local-scheduler ranks for instructions the global pass never
   touched, without disturbing a motion's decision-time scores. *)
let scored prov ~uid ~scores =
  match prov with
  | None -> ()
  | Some t -> (
      match Hashtbl.find_opt t.tbl uid with
      | Some ({ scores = None; _ } as r) ->
          Hashtbl.replace t.tbl uid { r with scores = Some scores }
      | Some _ | None -> ())

let iter_reachable_blocks cfg f =
  let reach = Cfg.reachable cfg in
  List.iter
    (fun id ->
      if Gis_util.Ints.Int_set.mem id reach then f (Cfg.block cfg id))
    (Cfg.layout cfg)

let finalize prov cfg =
  match prov with
  | None -> ()
  | Some t ->
      Hashtbl.reset t.final;
      iter_reachable_blocks cfg (fun b ->
          let label = b.Block.label in
          let pos = ref 0 in
          let at i =
            Hashtbl.replace t.final (Instr.uid i) (label, !pos);
            incr pos
          in
          Gis_util.Vec.iter at b.Block.body;
          at b.Block.term)

(* ---- queries over a finalized table ---- *)

type entry = { record : record; block : Label.t; position : int }

let entries t =
  Hashtbl.fold
    (fun uid (block, position) acc ->
      match Hashtbl.find_opt t.tbl uid with
      | Some record -> { record; block; position } :: acc
      | None -> acc)
    t.final []
  |> List.sort (fun a b ->
         match Label.compare a.block b.block with
         | 0 -> compare a.position b.position
         | c -> c)

let missing t cfg =
  let acc = ref [] in
  iter_reachable_blocks cfg (fun b ->
      let at i =
        if not (Hashtbl.mem t.tbl (Instr.uid i)) then
          acc := Instr.uid i :: !acc
      in
      Gis_util.Vec.iter at b.Block.body;
      at b.Block.term);
  List.rev !acc

let counts t =
  let tally = List.map (fun k -> (k, ref 0)) all_kinds in
  Hashtbl.iter
    (fun uid _site ->
      match Hashtbl.find_opt t.tbl uid with
      | Some r -> incr (List.assoc r.kind tally)
      | None -> ())
    t.final;
  List.map (fun (k, c) -> (k, !c)) tally

(* ---- per-block cycle attribution ---- *)

type attribution = {
  ablock : Label.t;
  delta : int;  (** base stall gap minus scheduled stall gap; >0 = saved *)
  credits : (kind * int) list;  (** sums to [delta] exactly *)
}

(* Apportion [delta] across the kinds statically present in the block,
   weighted by instruction count, using largest remainders so the
   integer credits sum to [delta] exactly. Deterministic: remainders
   tie-break in [all_kinds] order. *)
let apportion delta weights =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  if delta = 0 || total = 0 then
    [ (Unmoved, delta) ]
  else begin
    let sign = if delta < 0 then -1 else 1 in
    let mag = abs delta in
    let shares =
      List.map
        (fun (k, w) -> (k, mag * w / total, mag * w mod total))
        weights
    in
    let floor_sum = List.fold_left (fun acc (_, q, _) -> acc + q) 0 shares in
    let leftover = mag - floor_sum in
    let order =
      List.mapi (fun i (k, q, r) -> (i, k, q, r)) shares
      |> List.sort (fun (i1, _, _, r1) (i2, _, _, r2) ->
             match compare r2 r1 with 0 -> compare i1 i2 | c -> c)
    in
    let bumped =
      List.mapi (fun rank (i, k, q, _) -> (i, k, if rank < leftover then q + 1 else q)) order
      |> List.sort (fun (i1, _, _) (i2, _, _) -> compare i1 i2)
    in
    List.filter_map
      (fun (_, k, q) -> if q = 0 then None else Some (k, sign * q))
      bumped
  end

let block_gaps (s : Trace.summary) =
  List.map
    (fun (b : Trace.block_stat) -> (b.Trace.block, b.Trace.stall_cycles))
    s.Trace.blocks

let attribute t ~(base : Trace.summary) ~(sched : Trace.summary) =
  let base_gaps = block_gaps base and sched_gaps = block_gaps sched in
  let labels =
    List.sort_uniq Label.compare
      (List.map fst base_gaps @ List.map fst sched_gaps)
  in
  (* Static per-kind instruction counts per final block, the weights. *)
  let by_block = Hashtbl.create 16 in
  Hashtbl.iter
    (fun uid (block, _) ->
      match Hashtbl.find_opt t.tbl uid with
      | Some r ->
          let cur =
            Option.value ~default:[] (Hashtbl.find_opt by_block block)
          in
          Hashtbl.replace by_block block (r.kind :: cur)
      | None -> ())
    t.final;
  List.filter_map
    (fun label ->
      let find gaps = Option.value ~default:0 (List.assoc_opt label gaps) in
      let delta = find base_gaps - find sched_gaps in
      let kinds = Option.value ~default:[] (Hashtbl.find_opt by_block label) in
      let weights =
        List.filter_map
          (fun k ->
            match List.length (List.filter (( = ) k) kinds) with
            | 0 -> None
            | n -> Some (k, n))
          all_kinds
      in
      if delta = 0 && weights = [] then None
      else Some { ablock = label; delta; credits = apportion delta weights })
    labels

let attribution_total atts =
  List.fold_left (fun acc a -> acc + a.delta) 0 atts

(* ---- rendering ---- *)

let scores_to_json s =
  Json.Obj
    [
      ("d", Json.Int s.d);
      ("cp", Json.Int s.cp);
      ("order", Json.Int s.order);
      ("pressure", Json.Int s.pressure);
    ]

let entry_to_json e =
  let r = e.record in
  Json.Obj
    ([
       ("uid", Json.Int r.uid);
       ("block", Json.String e.block);
       ("position", Json.Int e.position);
       ("origin", Json.String r.origin);
       ("kind", Json.String (kind_name r.kind));
       ("copy_index", Json.Int r.copy_index);
       ("renamed", Json.Bool r.renamed);
     ]
    @ (match r.moved_from with
      | Some l -> [ ("moved_from", Json.String l) ]
      | None -> [])
    @
    match r.scores with
    | Some s -> [ ("scores", scores_to_json s) ]
    | None -> [])

let to_json t =
  Json.Obj
    [
      ( "counts",
        Json.Obj
          (List.map (fun (k, c) -> (kind_name k, Json.Int c)) (counts t)) );
      ("instructions", Json.List (List.map entry_to_json (entries t)));
    ]

let attribution_to_json atts =
  Json.List
    (List.map
       (fun a ->
         Json.Obj
           [
             ("block", Json.String a.ablock);
             ("delta_cycles", Json.Int a.delta);
             ( "credits",
               Json.Obj
                 (List.map
                    (fun (k, c) -> (kind_name k, Json.Int c))
                    a.credits) );
           ])
       atts)
