open Gis_ir

(* Chrome trace-event export of a simulator issue trace.

   The trace-event JSON format (loadable in chrome://tracing and
   Perfetto) wants an object with a "traceEvents" array; we map one
   simulated cycle to one microsecond of trace time, give every
   functional unit its own thread (track), and render each dynamic
   instruction as a complete ("X") slice from its issue cycle to its
   completion cycle. Cycles lost to a stall appear as instant ("i")
   events on the stalled unit's track at the start of the gap, so the
   dead time between slices is labelled with its cause. *)

let pid = 1

let unit_rank = function Instr.Fixed -> 0 | Instr.Float -> 1 | Instr.Branch -> 2
let unit_tid u = unit_rank u + 1
let unit_name u = Fmt.str "%a" Instr.pp_unit_ty u

let str s = Json.String s
let int n = Json.Int n

let meta ~name ~tid fields =
  Json.Obj
    ([
       ("name", str name);
       ("ph", str "M");
       ("pid", int pid);
       ("tid", int tid);
     ]
    @ [ ("args", Json.Obj fields) ])

(* Slice colour from schedule slack (Lstart - Estart of the static
   instruction): zero-slack instructions sit on the critical path. The
   cnames are Catapult's reserved palette names. *)
let slack_cname s =
  if s = 0 then "terrible" else if s <= 2 then "bad" else "good"

let slice ?slack_of (e : Trace.event) =
  let dur = max 1 (e.Trace.fin - e.Trace.cycle) in
  let slack =
    match slack_of with
    | None -> None
    | Some f -> f (Instr.uid e.Trace.instr)
  in
  let cname =
    match slack with None -> [] | Some s -> [ ("cname", str (slack_cname s)) ]
  in
  let slack_arg =
    match slack with None -> [] | Some s -> [ ("slack_cycles", int s) ]
  in
  Json.Obj
    ([
       ("name", str (Fmt.str "%a" Instr.pp e.Trace.instr));
       ("cat", str "issue");
       ("ph", str "X");
       ("ts", int e.Trace.cycle);
       ("dur", int dur);
       ("pid", int pid);
       ("tid", int (unit_tid e.Trace.unit_));
     ]
    @ cname
    @ [
        ( "args",
          Json.Obj
            ([
               ("block", str e.Trace.block);
               ("uid", int (Instr.uid e.Trace.instr));
               ("issue_cycle", int e.Trace.cycle);
               ("completion_cycle", int e.Trace.fin);
               ("gap", int e.Trace.gap);
               ("stall", str (Trace.stall_category e.Trace.stall));
             ]
            @ slack_arg) );
      ])

(* A counter track of the issuing instruction's slack over the
   timeline — dips to zero mark stretches where the schedule is pinned
   to the critical path. *)
let slack_counter ?slack_of (e : Trace.event) =
  match slack_of with
  | None -> None
  | Some f -> (
      match f (Instr.uid e.Trace.instr) with
      | None -> None
      | Some s ->
          Some
            (Json.Obj
               [
                 ("name", str "schedule_slack");
                 ("ph", str "C");
                 ("ts", int e.Trace.cycle);
                 ("pid", int pid);
                 ("args", Json.Obj [ ("slack_cycles", int s) ]);
               ]))

let stall_instant (e : Trace.event) =
  match e.Trace.stall with
  | Trace.No_stall | Trace.In_order _ -> None
  | st when e.Trace.gap > 0 ->
      Some
        (Json.Obj
           [
             ("name", str (Fmt.str "stall: %a" Trace.pp_stall st));
             ("cat", str "stall");
             ("ph", str "i");
             ("ts", int (e.Trace.cycle - e.Trace.gap));
             ("pid", int pid);
             ("tid", int (unit_tid e.Trace.unit_));
             ("s", str "t");
             ( "args",
               Json.Obj
                 [
                   ("category", str (Trace.stall_category st));
                   ("cycles", int e.Trace.gap);
                   ("until_uid", int (Instr.uid e.Trace.instr));
                 ] );
           ])
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Profiler export: the compiler profiling itself on the same viewer.  *)
(* ------------------------------------------------------------------ *)

(* A [Prof.node] tree has durations but no absolute timestamps; lay the
   children out back to back from the parent's start (self time ends up
   at the tail), one profile nanosecond = one trace microsecond /1000.
   Each node is an "X" slice on the profiler process, and the GC
   counters are emitted as "C" counter events at every node boundary,
   which Perfetto renders as dedicated counter tracks — allocation and
   collection pressure over the compilation timeline. *)
let prof_pid = 2
let prof_tid = 1

let profile_events (root : Prof.node) =
  let events = ref [] in
  let emit e = events := e :: !events in
  let us ns = ns / 1000 in
  let cum_alloc = ref 0 and cum_minor = ref 0 and cum_major = ref 0 in
  let counters ts =
    emit
      (Json.Obj
         [
           ("name", str "allocated_bytes");
           ("ph", str "C");
           ("ts", int ts);
           ("pid", int prof_pid);
           ("args", Json.Obj [ ("bytes", int !cum_alloc) ]);
         ]);
    emit
      (Json.Obj
         [
           ("name", str "gc_collections");
           ("ph", str "C");
           ("ts", int ts);
           ("pid", int prof_pid);
           ( "args",
             Json.Obj [ ("minor", int !cum_minor); ("major", int !cum_major) ]
           );
         ])
  in
  let rec go off (n : Prof.node) =
    emit
      (Json.Obj
         [
           ("name", str n.Prof.name);
           ("cat", str "profile");
           ("ph", str "X");
           ("ts", int (us off));
           ("dur", int (max 1 (us n.Prof.wall_ns)));
           ("pid", int prof_pid);
           ("tid", int prof_tid);
           ( "args",
             Json.Obj
               [
                 ("wall_ns", int n.Prof.wall_ns);
                 ("self_wall_ns", int (Prof.self_wall_ns n));
                 ("alloc_bytes", int n.Prof.alloc_bytes);
                 ("self_alloc_bytes", int (Prof.self_alloc_bytes n));
                 ("minor_collections", int n.Prof.minor);
                 ("major_collections", int n.Prof.major);
               ] );
         ]);
    counters (us off);
    ignore
      (List.fold_left
         (fun o c ->
           go o c;
           o + c.Prof.wall_ns)
         off n.Prof.children);
    cum_alloc := !cum_alloc + Prof.self_alloc_bytes n;
    cum_minor := !cum_minor + Prof.self_minor n;
    cum_major := !cum_major + Prof.self_major n;
    counters (us (off + n.Prof.wall_ns))
  in
  go 0 root;
  let prof_meta name tid fields =
    Json.Obj
      [
        ("name", str name);
        ("ph", str "M");
        ("pid", int prof_pid);
        ("tid", int tid);
        ("args", Json.Obj fields);
      ]
  in
  [
    prof_meta "process_name" 0 [ ("name", str "gisc profiler") ];
    prof_meta "thread_name" prof_tid [ ("name", str "pipeline phases") ];
  ]
  @ List.rev !events

let profile_to_json root =
  Json.Obj
    [
      ("displayTimeUnit", str "ms");
      ("traceEvents", Json.List (profile_events root));
    ]

let profile_to_string root = Json.to_string (profile_to_json root)

let to_json ?(process_name = "gisc simulator") ?profile ?slack
    (s : Trace.summary) =
  let unit_tys = [ Instr.Fixed; Instr.Float; Instr.Branch ] in
  let metadata =
    meta ~name:"process_name" ~tid:0 [ ("name", str process_name) ]
    :: List.map
         (fun u ->
           meta ~name:"thread_name" ~tid:(unit_tid u)
             [ ("name", str (unit_name u ^ " unit")) ])
         unit_tys
  in
  let slices = List.map (slice ?slack_of:slack) s.Trace.events in
  let stalls = List.filter_map stall_instant s.Trace.events in
  let slack_track =
    List.filter_map (slack_counter ?slack_of:slack) s.Trace.events
  in
  (* The profiler rides along as a second process (its own slice track
     plus counter tracks); an absent profile leaves the simulator-only
     trace byte-identical to what it always was. *)
  let prof_events =
    match profile with None -> [] | Some root -> profile_events root
  in
  Json.Obj
    [
      ("displayTimeUnit", str "ms");
      ( "traceEvents",
        Json.List (metadata @ slices @ stalls @ slack_track @ prof_events) );
      ( "otherData",
        Json.Obj
          [
            ("cycles_per_us", int 1);
            ("last_issue", int s.Trace.last_issue);
            ("stall_cycles", int (Trace.stall_total s));
          ] );
    ]

let to_string ?process_name ?profile ?slack s =
  Json.to_string (to_json ?process_name ?profile ?slack s)
