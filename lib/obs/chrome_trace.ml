open Gis_ir

(* Chrome trace-event export of a simulator issue trace.

   The trace-event JSON format (loadable in chrome://tracing and
   Perfetto) wants an object with a "traceEvents" array; we map one
   simulated cycle to one microsecond of trace time, give every
   functional unit its own thread (track), and render each dynamic
   instruction as a complete ("X") slice from its issue cycle to its
   completion cycle. Cycles lost to a stall appear as instant ("i")
   events on the stalled unit's track at the start of the gap, so the
   dead time between slices is labelled with its cause. *)

let pid = 1

let unit_rank = function Instr.Fixed -> 0 | Instr.Float -> 1 | Instr.Branch -> 2
let unit_tid u = unit_rank u + 1
let unit_name u = Fmt.str "%a" Instr.pp_unit_ty u

let str s = Json.String s
let int n = Json.Int n

let meta ~name ~tid fields =
  Json.Obj
    ([
       ("name", str name);
       ("ph", str "M");
       ("pid", int pid);
       ("tid", int tid);
     ]
    @ [ ("args", Json.Obj fields) ])

let slice (e : Trace.event) =
  let dur = max 1 (e.Trace.fin - e.Trace.cycle) in
  Json.Obj
    [
      ("name", str (Fmt.str "%a" Instr.pp e.Trace.instr));
      ("cat", str "issue");
      ("ph", str "X");
      ("ts", int e.Trace.cycle);
      ("dur", int dur);
      ("pid", int pid);
      ("tid", int (unit_tid e.Trace.unit_));
      ( "args",
        Json.Obj
          [
            ("block", str e.Trace.block);
            ("uid", int (Instr.uid e.Trace.instr));
            ("issue_cycle", int e.Trace.cycle);
            ("completion_cycle", int e.Trace.fin);
            ("gap", int e.Trace.gap);
            ("stall", str (Trace.stall_category e.Trace.stall));
          ] );
    ]

let stall_instant (e : Trace.event) =
  match e.Trace.stall with
  | Trace.No_stall | Trace.In_order _ -> None
  | st when e.Trace.gap > 0 ->
      Some
        (Json.Obj
           [
             ("name", str (Fmt.str "stall: %a" Trace.pp_stall st));
             ("cat", str "stall");
             ("ph", str "i");
             ("ts", int (e.Trace.cycle - e.Trace.gap));
             ("pid", int pid);
             ("tid", int (unit_tid e.Trace.unit_));
             ("s", str "t");
             ( "args",
               Json.Obj
                 [
                   ("category", str (Trace.stall_category st));
                   ("cycles", int e.Trace.gap);
                   ("until_uid", int (Instr.uid e.Trace.instr));
                 ] );
           ])
  | _ -> None

let to_json ?(process_name = "gisc simulator") (s : Trace.summary) =
  let unit_tys = [ Instr.Fixed; Instr.Float; Instr.Branch ] in
  let metadata =
    meta ~name:"process_name" ~tid:0 [ ("name", str process_name) ]
    :: List.map
         (fun u ->
           meta ~name:"thread_name" ~tid:(unit_tid u)
             [ ("name", str (unit_name u ^ " unit")) ])
         unit_tys
  in
  let slices = List.map slice s.Trace.events in
  let stalls = List.filter_map stall_instant s.Trace.events in
  Json.Obj
    [
      ("displayTimeUnit", str "ms");
      ("traceEvents", Json.List (metadata @ slices @ stalls));
      ( "otherData",
        Json.Obj
          [
            ("cycles_per_us", int 1);
            ("last_issue", int s.Trace.last_issue);
            ("stall_cycles", int (Trace.stall_total s));
          ] );
    ]

let to_string ?process_name s = Json.to_string (to_json ?process_name s)
