(** Chrome trace-event export of a simulator issue trace.

    Converts a {!Trace.summary} recorded with tracing on into the
    trace-event JSON format understood by [chrome://tracing] and
    Perfetto: one thread (track) per functional unit, each dynamic
    instruction a complete ["X"] slice spanning issue to completion
    (one cycle = one microsecond of trace time), and each attributed
    stall an instant ["i"] event at the start of its gap. The top-level
    object carries [displayTimeUnit] and a ["traceEvents"] array, per
    the schema. *)

val to_json : ?process_name:string -> Trace.summary -> Json.t
val to_string : ?process_name:string -> Trace.summary -> string
