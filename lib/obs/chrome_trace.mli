(** Chrome trace-event export of a simulator issue trace.

    Converts a {!Trace.summary} recorded with tracing on into the
    trace-event JSON format understood by [chrome://tracing] and
    Perfetto: one thread (track) per functional unit, each dynamic
    instruction a complete ["X"] slice spanning issue to completion
    (one cycle = one microsecond of trace time), and each attributed
    stall an instant ["i"] event at the start of its gap. The top-level
    object carries [displayTimeUnit] and a ["traceEvents"] array, per
    the schema. *)

val to_json :
  ?process_name:string ->
  ?profile:Prof.node ->
  ?slack:(int -> int option) ->
  Trace.summary ->
  Json.t
(** With [profile], the self-profiler's tree rides along as a second
    trace process: one slice track of pipeline phases/regions plus
    ["allocated_bytes"] and ["gc_collections"] counter tracks sampled
    at every phase boundary (one profile nanosecond = one trace
    microsecond).

    With [slack] (instruction uid → schedule slack, [None] for unknown
    uids), every slice is coloured by how pinned its instruction is to
    the critical path — zero slack renders ["terrible"] (red), 1–2
    ["bad"], the rest ["good"] — each slice's args gain
    [slack_cycles], and a ["schedule_slack"] counter track follows the
    issuing instruction's slack across the timeline.

    Without either option, the output is exactly the simulator-only
    trace. *)

val to_string :
  ?process_name:string ->
  ?profile:Prof.node ->
  ?slack:(int -> int option) ->
  Trace.summary ->
  string

val profile_events : Prof.node -> Json.t list
(** The raw trace events of one profile tree (metadata, slices,
    counters), for embedding in a larger trace. *)

val profile_to_json : Prof.node -> Json.t
(** A standalone profiler-only trace ([gisc profile --trace-out]). *)

val profile_to_string : Prof.node -> string
