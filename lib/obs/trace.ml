open Gis_ir

type stall =
  | No_stall
  | In_order of int
  | Interlock of { reg : Reg.t; producer : int }
  | Mem_interlock of { producer : int }
  | Call_interlock of { producer : int }
  | Unit_busy of Instr.unit_ty

let stall_category = function
  | No_stall -> "none"
  | In_order _ -> "in_order"
  | Interlock _ -> "interlock"
  | Mem_interlock _ -> "mem_interlock"
  | Call_interlock _ -> "call_interlock"
  | Unit_busy _ -> "unit_busy"

let pp_stall ppf = function
  | No_stall -> Fmt.string ppf "none"
  | In_order k -> Fmt.pf ppf "in-order (ready %d early)" k
  | Interlock { reg; producer } ->
      Fmt.pf ppf "interlock %a<-#%d" Reg.pp reg producer
  | Mem_interlock { producer } -> Fmt.pf ppf "store-queue behind #%d" producer
  | Call_interlock { producer } ->
      Fmt.pf ppf "serialized behind call #%d" producer
  | Unit_busy u -> Fmt.pf ppf "%a unit busy" Instr.pp_unit_ty u

type event = {
  cycle : int;
  unit_ : Instr.unit_ty;
  block : Label.t;
  instr : Instr.t;
  stall : stall;
  gap : int;
  fin : int;
}

type unit_stat = {
  unit_ : Instr.unit_ty;
  issues : int;
  busy_stall : int;
  histogram : (int * int) list;
}

type block_stat = {
  block : Label.t;
  entries : int;
  instrs : int;
  stall_cycles : int;
}

type summary = {
  last_issue : int;
  interlock_cycles : int;
  mem_interlock_cycles : int;
  call_interlock_cycles : int;
  in_order_instrs : int;
  units : unit_stat list;
  blocks : block_stat list;
  events : event list;
}

let empty =
  {
    last_issue = 0;
    interlock_cycles = 0;
    mem_interlock_cycles = 0;
    call_interlock_cycles = 0;
    in_order_instrs = 0;
    units = [];
    blocks = [];
    events = [];
  }

let unit_busy_total s =
  List.fold_left (fun acc u -> acc + u.busy_stall) 0 s.units

let stall_total s =
  s.interlock_cycles + s.mem_interlock_cycles + s.call_interlock_cycles
  + unit_busy_total s

let unit_name u = Fmt.str "%a" Instr.pp_unit_ty u

let stall_to_json = function
  | No_stall -> Json.Obj [ ("category", Json.String "none") ]
  | In_order k ->
      Json.Obj [ ("category", Json.String "in_order"); ("ready_early", Json.Int k) ]
  | Interlock { reg; producer } ->
      Json.Obj
        [
          ("category", Json.String "interlock");
          ("reg", Json.String (Fmt.str "%a" Reg.pp reg));
          ("producer_uid", Json.Int producer);
        ]
  | Mem_interlock { producer } ->
      Json.Obj
        [
          ("category", Json.String "mem_interlock");
          ("producer_uid", Json.Int producer);
        ]
  | Call_interlock { producer } ->
      Json.Obj
        [
          ("category", Json.String "call_interlock");
          ("producer_uid", Json.Int producer);
        ]
  | Unit_busy u ->
      Json.Obj
        [ ("category", Json.String "unit_busy"); ("unit", Json.String (unit_name u)) ]

let event_to_json e =
  Json.Obj
    [
      ("cycle", Json.Int e.cycle);
      ("unit", Json.String (unit_name e.unit_));
      ("block", Json.String e.block);
      ("uid", Json.Int (Instr.uid e.instr));
      ("instr", Json.String (Fmt.str "%a" Instr.pp e.instr));
      ("stall", stall_to_json e.stall);
      ("gap", Json.Int e.gap);
      ("fin", Json.Int e.fin);
    ]

let to_json s =
  Json.Obj
    [
      ("last_issue", Json.Int s.last_issue);
      ( "stalls",
        Json.Obj
          [
            ("interlock", Json.Int s.interlock_cycles);
            ("mem_interlock", Json.Int s.mem_interlock_cycles);
            ("call_interlock", Json.Int s.call_interlock_cycles);
            ( "unit_busy",
              Json.Obj
                (List.map
                   (fun u -> (unit_name u.unit_, Json.Int u.busy_stall))
                   s.units) );
            ("total", Json.Int (stall_total s));
            ("in_order_instrs", Json.Int s.in_order_instrs);
          ] );
      ( "units",
        Json.List
          (List.map
             (fun u ->
               Json.Obj
                 [
                   ("unit", Json.String (unit_name u.unit_));
                   ("issues", Json.Int u.issues);
                   ("busy_stall", Json.Int u.busy_stall);
                   ( "utilization",
                     Json.List
                       (List.map
                          (fun (k, c) ->
                            Json.Obj
                              [ ("issued", Json.Int k); ("cycles", Json.Int c) ])
                          u.histogram) );
                 ])
             s.units) );
      ( "blocks",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 [
                   ("block", Json.String b.block);
                   ("entries", Json.Int b.entries);
                   ("instructions", Json.Int b.instrs);
                   ("stall_cycles", Json.Int b.stall_cycles);
                 ])
             s.blocks) );
      ("events", Json.List (List.map event_to_json s.events));
    ]

let pp_event ppf e =
  Fmt.pf ppf "cycle %4d | %a | %a: %a" e.cycle Label.pp e.block
    Instr.pp_unit_ty e.unit_ Instr.pp e.instr;
  match e.stall with
  | No_stall -> ()
  | s -> Fmt.pf ppf "  [%a, +%d]" pp_stall s e.gap
