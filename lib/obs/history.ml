(* Bench trajectory: one JSONL record per bench run, appended to a
   history file that outlives any single invocation. Where the
   [--baseline --check] gate compares one run against one committed
   snapshot, the history answers the longitudinal question — is the
   scheduler drifting slower or hungrier over the last K runs? — which
   is the measurement the ROADMAP's ≥5× flat-IR claim will be made
   against. *)

type entry = {
  time : float;  (** wall clock of the run (0.0 in deterministic mode) *)
  label : string;  (** free-form run label, e.g. "bench" or a git ref *)
  total_cycles : int;  (** sum of speculative-level cycles across workloads *)
  wall_seconds : float;  (** harness wall clock for the measured section *)
  total_alloc_bytes : int;  (** bytes allocated compiling all workloads *)
  per_program_cycles : (string * int) list;
}

let to_json e =
  Json.Obj
    [
      ("time", Json.Float e.time);
      ("label", Json.String e.label);
      ("total_cycles", Json.Int e.total_cycles);
      ("wall_seconds", Json.Float e.wall_seconds);
      ("total_alloc_bytes", Json.Int e.total_alloc_bytes);
      ( "per_program_cycles",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.per_program_cycles)
      );
    ]

let of_json j =
  let open Json in
  match j with
  | Obj fields ->
      let num name =
        match List.assoc_opt name fields with
        | Some (Int n) -> Some (float_of_int n)
        | Some (Float f) -> Some f
        | _ -> None
      in
      let str name =
        match List.assoc_opt name fields with
        | Some (String s) -> Some s
        | _ -> None
      in
      let per_program =
        match List.assoc_opt "per_program_cycles" fields with
        | Some (Obj kvs) ->
            List.filter_map
              (fun (k, v) ->
                match v with
                | Int n -> Some (k, n)
                | Float f -> Some (k, int_of_float f)
                | _ -> None)
              kvs
        | _ -> []
      in
      (match (num "total_cycles", num "total_alloc_bytes") with
      | Some cycles, Some alloc ->
          Ok
            {
              time = Option.value ~default:0.0 (num "time");
              label = Option.value ~default:"" (str "label");
              total_cycles = int_of_float cycles;
              wall_seconds = Option.value ~default:0.0 (num "wall_seconds");
              total_alloc_bytes = int_of_float alloc;
              per_program_cycles = per_program;
            }
      | _ -> Error "history entry lacks total_cycles/total_alloc_bytes")
  | _ -> Error "history entry is not an object"

let append ~path e =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      (* One record = one line: JSONL requires the minified form. *)
      output_string oc (Json.to_string ~minify:true (to_json e));
      output_char oc '\n')

(* A malformed line (a truncated append, a hand edit) skips that line
   only — losing the whole trajectory to one bad record would defeat
   the point of keeping one. *)
let load ~path =
  match open_in_bin path with
  | exception Sys_error _ -> ([], [])
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go lineno entries bad =
            match input_line ic with
            | exception End_of_file -> (List.rev entries, List.rev bad)
            | "" -> go (lineno + 1) entries bad
            | line -> (
                match Json.of_string line with
                | Error m -> go (lineno + 1) entries (Fmt.str "line %d: %s" lineno m :: bad)
                | Ok j -> (
                    match of_json j with
                    | Ok e -> go (lineno + 1) (e :: entries) bad
                    | Error m ->
                        go (lineno + 1) entries
                          (Fmt.str "line %d: %s" lineno m :: bad)))
          in
          go 1 [] [])

type drift = {
  metric : string;
  mean : float;  (** over the prior window *)
  latest : float;
  change : float;  (** latest/mean - 1 *)
}

let pp_drift ppf d =
  Fmt.pf ppf "%s drifted %+.1f%% against the last %s mean (%g -> %g)" d.metric
    (100.0 *. d.change)
    (if d.mean = 0.0 then "runs'" else "runs'")
    d.mean d.latest

(* Compare the newest entry against the mean of up to [window] prior
   runs. Only upward drift (slower, hungrier) is flagged; the alloc
   threshold is looser for the same reason the gate's is — byte counts
   move with the toolchain. *)
let trend ?(window = 5) ?(cycle_tolerance = 0.02) ?(alloc_tolerance = 0.1)
    ?(wall_tolerance = 0.5) entries =
  match List.rev entries with
  | [] | [ _ ] -> []
  | latest :: prior ->
      let prior = List.filteri (fun i _ -> i < window) prior in
      let mean f =
        List.fold_left (fun acc e -> acc +. f e) 0.0 prior
        /. float_of_int (List.length prior)
      in
      let check metric value mean_v tolerance =
        if mean_v > 0.0 && value > mean_v *. (1.0 +. tolerance) then
          [ { metric; mean = mean_v; latest = value; change = (value /. mean_v) -. 1.0 } ]
        else []
      in
      check "total_cycles"
        (float_of_int latest.total_cycles)
        (mean (fun e -> float_of_int e.total_cycles))
        cycle_tolerance
      @ check "total_alloc_bytes"
          (float_of_int latest.total_alloc_bytes)
          (mean (fun e -> float_of_int e.total_alloc_bytes))
          alloc_tolerance
      @ check "wall_seconds" latest.wall_seconds
          (mean (fun e -> e.wall_seconds))
          (* Wall clock is the noisiest of the three; by default only
             flag a run half again slower than the recent mean. *)
          wall_tolerance
