open Gis_ir

let unit_name u = Fmt.str "%a" Instr.pp_unit_ty u

(* Group consecutive events that share an issue cycle. Events arrive
   chronologically, so a plain left fold suffices. *)
let by_cycle events =
  List.fold_left
    (fun acc (e : Trace.event) ->
      match acc with
      | (c, es) :: rest when c = e.Trace.cycle -> (c, e :: es) :: rest
      | _ -> (e.Trace.cycle, [ e ]) :: acc)
    [] events
  |> List.rev_map (fun (c, es) -> (c, List.rev es))

(* Compact per-line stall code; the expansion is printed once in the
   diagram header rather than spelled out on every stalled line. *)
let stall_code ppf = function
  | Trace.No_stall -> Fmt.string ppf "--"
  | Trace.In_order k -> Fmt.pf ppf "IO+%d" k
  | Trace.Interlock { reg; producer } ->
      Fmt.pf ppf "RAW %a<-#%d" Reg.pp reg producer
  | Trace.Mem_interlock { producer } -> Fmt.pf ppf "STQ #%d" producer
  | Trace.Call_interlock { producer } -> Fmt.pf ppf "CALL #%d" producer
  | Trace.Unit_busy u -> Fmt.pf ppf "UNIT %a" Instr.pp_unit_ty u

let pp_legend ppf () =
  Fmt.pf ppf
    "stall legend: RAW=register interlock  STQ=store-queue delay  \
     CALL=serialized behind call  UNIT=functional unit busy  \
     IO+k=in-order issue (operands ready k cycles early)@."

let pp_issue_diagram ppf (s : Trace.summary) =
  match s.Trace.events with
  | [] ->
      Fmt.pf ppf
        "(no issue trace recorded — run the simulator with tracing enabled)@."
  | events ->
      pp_legend ppf ();
      let groups = by_cycle events in
      let prev = ref (-1) in
      List.iter
        (fun (cycle, es) ->
          (* Cycles where nothing issued: attribute them to the binding
             stall of the instruction that eventually broke the silence. *)
          (if cycle > !prev + 1 then
             let first = List.hd es in
             match first.Trace.stall with
             | Trace.No_stall | Trace.In_order _ ->
                 Fmt.pf ppf "cycle %4d-%-4d | -- stall --@." (!prev + 1)
                   (cycle - 1)
             | st ->
                 Fmt.pf ppf "cycle %4d-%-4d | -- %a --@." (!prev + 1)
                   (cycle - 1) stall_code st);
          Fmt.pf ppf "cycle %4d |" cycle;
          List.iter
            (fun (e : Trace.event) ->
              Fmt.pf ppf " %s: %a |" (unit_name e.Trace.unit_) Instr.pp
                e.Trace.instr)
            es;
          (match es with
          | [ e ] -> (
              match e.Trace.stall with
              | Trace.Interlock _ | Trace.Mem_interlock _
              | Trace.Call_interlock _ | Trace.Unit_busy _
                when e.Trace.gap > 0 ->
                  Fmt.pf ppf " (%a)" stall_code e.Trace.stall
              | _ -> ())
          | _ -> ());
          Fmt.pf ppf "@.";
          prev := cycle)
        groups

(* ASCII pipeline occupancy: one row per functional unit, one column
   per cycle. '#' marks an issue, '=' marks cycles an earlier issue is
   still executing on the unit, a digit marks multi-issue on a
   superscalar unit, '.' is idle. Wide traces are windowed to the
   first [max_cycles] columns with a truncation note. *)
let pp_pipeline ?(max_cycles = 120) ppf (s : Trace.summary) =
  match s.Trace.events with
  | [] ->
      Fmt.pf ppf
        "(no issue trace recorded — run the simulator with tracing enabled)@."
  | events ->
      let span = s.Trace.last_issue + 1 in
      let shown = min span max_cycles in
      let unit_tys = [ Instr.Fixed; Instr.Float; Instr.Branch ] in
      let rank = function
        | Instr.Fixed -> 0
        | Instr.Float -> 1
        | Instr.Branch -> 2
      in
      let issues = Array.make_matrix 3 shown 0 in
      let exec = Array.make_matrix 3 shown false in
      List.iter
        (fun (e : Trace.event) ->
          let r = rank e.Trace.unit_ in
          if e.Trace.cycle < shown then
            issues.(r).(e.Trace.cycle) <- issues.(r).(e.Trace.cycle) + 1;
          for c = e.Trace.cycle + 1 to min (e.Trace.fin - 1) (shown - 1) do
            exec.(r).(c) <- true
          done)
        events;
      (* Decade ruler so columns can be read off against cycle numbers. *)
      Fmt.pf ppf "%8s " "";
      for c = 0 to shown - 1 do
        Fmt.pf ppf "%c" (if c mod 10 = 0 then Char.chr (0x30 + c / 10 mod 10) else ' ')
      done;
      Fmt.pf ppf "@.";
      List.iter
        (fun u ->
          let r = rank u in
          Fmt.pf ppf "%8s " (unit_name u);
          for c = 0 to shown - 1 do
            let ch =
              match issues.(r).(c) with
              | 0 -> if exec.(r).(c) then '=' else '.'
              | 1 -> '#'
              | k -> Char.chr (0x30 + min k 9)
            in
            Fmt.pf ppf "%c" ch
          done;
          Fmt.pf ppf "@.")
        unit_tys;
      if span > shown then
        Fmt.pf ppf "(%d of %d cycles shown)@." shown span

let pp_summary ppf (s : Trace.summary) =
  Fmt.pf ppf
    "issue span %d cycles; stalls: interlock %d, store-queue %d, call %d"
    s.Trace.last_issue s.Trace.interlock_cycles s.Trace.mem_interlock_cycles
    s.Trace.call_interlock_cycles;
  List.iter
    (fun (u : Trace.unit_stat) ->
      Fmt.pf ppf ", %s-busy %d" (unit_name u.Trace.unit_) u.Trace.busy_stall)
    s.Trace.units;
  Fmt.pf ppf "; in-order-bound instrs %d@." s.Trace.in_order_instrs;
  List.iter
    (fun (u : Trace.unit_stat) ->
      let span = s.Trace.last_issue + 1 in
      let busy_cycles =
        List.fold_left
          (fun acc (k, c) -> if k > 0 then acc + c else acc)
          0 u.Trace.histogram
      in
      Fmt.pf ppf "  unit %-6s: %6d issues, active %d/%d cycles (%.1f%%)@."
        (unit_name u.Trace.unit_) u.Trace.issues busy_cycles span
        (100.0 *. float_of_int busy_cycles /. float_of_int (max 1 span)))
    s.Trace.units;
  List.iter
    (fun (b : Trace.block_stat) ->
      Fmt.pf ppf "  block %-8s: %6d entries, %6d instrs, %6d stall cycles@."
        b.Trace.block b.Trace.entries b.Trace.instrs b.Trace.stall_cycles)
    s.Trace.blocks

let pp_sched_log ppf events =
  List.iter (fun e -> Fmt.pf ppf "  %a@." Sink.pp_event e) events
