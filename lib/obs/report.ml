open Gis_ir

let unit_name u = Fmt.str "%a" Instr.pp_unit_ty u

(* Group consecutive events that share an issue cycle. Events arrive
   chronologically, so a plain left fold suffices. *)
let by_cycle events =
  List.fold_left
    (fun acc (e : Trace.event) ->
      match acc with
      | (c, es) :: rest when c = e.Trace.cycle -> (c, e :: es) :: rest
      | _ -> (e.Trace.cycle, [ e ]) :: acc)
    [] events
  |> List.rev_map (fun (c, es) -> (c, List.rev es))

let pp_issue_diagram ppf (s : Trace.summary) =
  match s.Trace.events with
  | [] ->
      Fmt.pf ppf
        "(no issue trace recorded — run the simulator with tracing enabled)@."
  | events ->
      let groups = by_cycle events in
      let prev = ref (-1) in
      List.iter
        (fun (cycle, es) ->
          (* Cycles where nothing issued: attribute them to the binding
             stall of the instruction that eventually broke the silence. *)
          (if cycle > !prev + 1 then
             let first = List.hd es in
             match first.Trace.stall with
             | Trace.No_stall | Trace.In_order _ ->
                 Fmt.pf ppf "cycle %4d-%-4d | -- stall --@." (!prev + 1)
                   (cycle - 1)
             | st ->
                 Fmt.pf ppf "cycle %4d-%-4d | -- stall: %a --@." (!prev + 1)
                   (cycle - 1) Trace.pp_stall st);
          Fmt.pf ppf "cycle %4d |" cycle;
          List.iter
            (fun (e : Trace.event) ->
              Fmt.pf ppf " %s: %a |" (unit_name e.Trace.unit_) Instr.pp
                e.Trace.instr)
            es;
          (match es with
          | [ e ] -> (
              match e.Trace.stall with
              | Trace.Interlock _ | Trace.Mem_interlock _ | Trace.Unit_busy _
                when e.Trace.gap > 0 ->
                  Fmt.pf ppf " (%a)" Trace.pp_stall e.Trace.stall
              | _ -> ())
          | _ -> ());
          Fmt.pf ppf "@.";
          prev := cycle)
        groups

let pp_summary ppf (s : Trace.summary) =
  Fmt.pf ppf
    "issue span %d cycles; stalls: interlock %d, store-queue %d, call %d"
    s.Trace.last_issue s.Trace.interlock_cycles s.Trace.mem_interlock_cycles
    s.Trace.call_interlock_cycles;
  List.iter
    (fun (u : Trace.unit_stat) ->
      Fmt.pf ppf ", %s-busy %d" (unit_name u.Trace.unit_) u.Trace.busy_stall)
    s.Trace.units;
  Fmt.pf ppf "; in-order-bound instrs %d@." s.Trace.in_order_instrs;
  List.iter
    (fun (u : Trace.unit_stat) ->
      let span = s.Trace.last_issue + 1 in
      let busy_cycles =
        List.fold_left
          (fun acc (k, c) -> if k > 0 then acc + c else acc)
          0 u.Trace.histogram
      in
      Fmt.pf ppf "  unit %-6s: %6d issues, active %d/%d cycles (%.1f%%)@."
        (unit_name u.Trace.unit_) u.Trace.issues busy_cycles span
        (100.0 *. float_of_int busy_cycles /. float_of_int (max 1 span)))
    s.Trace.units;
  List.iter
    (fun (b : Trace.block_stat) ->
      Fmt.pf ppf "  block %-8s: %6d entries, %6d instrs, %6d stall cycles@."
        b.Trace.block b.Trace.entries b.Trace.instrs b.Trace.stall_cycles)
    s.Trace.blocks

let pp_sched_log ppf events =
  List.iter (fun e -> Fmt.pf ppf "  %a@." Sink.pp_event e) events
