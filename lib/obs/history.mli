(** Bench trajectory: an append-only JSONL history of bench runs.

    The [--baseline --check] gate compares one run against one
    committed snapshot; the history file records every run — cycles,
    wall clock, allocation — so drift that creeps in under the gate's
    tolerance is still visible over time. [bench --history FILE]
    appends one record per run; [--trend] compares the newest record
    against the mean of the prior window and warns (non-gating) on
    upward drift. *)

type entry = {
  time : float;  (** wall clock of the run (0.0 in deterministic mode) *)
  label : string;  (** free-form run label *)
  total_cycles : int;
      (** speculative-level cycles summed across the five workloads *)
  wall_seconds : float;  (** harness wall clock for the measured section *)
  total_alloc_bytes : int;  (** bytes allocated compiling all workloads *)
  per_program_cycles : (string * int) list;
}

val to_json : entry -> Json.t
val of_json : Json.t -> (entry, string) result

val append : path:string -> entry -> unit
(** Append one record (creates the file if needed). *)

val load : path:string -> entry list * string list
(** All well-formed records in file order, plus a description of each
    malformed line skipped (a truncated append must not poison the
    whole trajectory). A missing file is an empty history. *)

type drift = {
  metric : string;
  mean : float;  (** over the prior window *)
  latest : float;
  change : float;  (** [latest/mean - 1] *)
}

val pp_drift : drift Fmt.t

val trend :
  ?window:int ->
  ?cycle_tolerance:float ->
  ?alloc_tolerance:float ->
  ?wall_tolerance:float ->
  entry list ->
  drift list
(** Compare the newest entry against the mean of up to [window]
    (default 5) prior entries. Flags only upward drift: cycles beyond
    [cycle_tolerance] (default 2%), allocation beyond [alloc_tolerance]
    (default 10%), wall clock beyond [wall_tolerance] (default 50%).
    Fewer than two entries → no findings. *)
