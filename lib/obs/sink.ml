open Gis_ir

type sched_event =
  | Candidate_considered of {
      uid : int;
      from_block : Label.t;
      into_block : Label.t;
      speculative : bool;
    }
  | Moved_useful of { uid : int; from_block : Label.t; to_block : Label.t }
  | Moved_speculative of { uid : int; from_block : Label.t; to_block : Label.t }
  | Renamed of { uid : int; from_reg : Reg.t; to_reg : Reg.t }
  | Blocked of { uid : int; reason : string }
  | Region_skipped of { region_id : int; reason : string }
  | Block_scheduled of { block : Label.t; cycles : int }
  | Phase_finished of { phase : string; seconds : float }

type t = { emit : sched_event -> unit }

let null = { emit = ignore }

let memory () =
  let log = ref [] in
  ( { emit = (fun e -> log := e :: !log) },
    fun () -> List.rev !log )

let tee a b = { emit = (fun e -> a.emit e; b.emit e) }

let event_to_json = function
  | Candidate_considered { uid; from_block; into_block; speculative } ->
      Json.Obj
        [
          ("event", Json.String "candidate_considered");
          ("uid", Json.Int uid);
          ("from", Json.String from_block);
          ("into", Json.String into_block);
          ("speculative", Json.Bool speculative);
        ]
  | Moved_useful { uid; from_block; to_block } ->
      Json.Obj
        [
          ("event", Json.String "moved_useful");
          ("uid", Json.Int uid);
          ("from", Json.String from_block);
          ("to", Json.String to_block);
        ]
  | Moved_speculative { uid; from_block; to_block } ->
      Json.Obj
        [
          ("event", Json.String "moved_speculative");
          ("uid", Json.Int uid);
          ("from", Json.String from_block);
          ("to", Json.String to_block);
        ]
  | Renamed { uid; from_reg; to_reg } ->
      Json.Obj
        [
          ("event", Json.String "renamed");
          ("uid", Json.Int uid);
          ("from_reg", Json.String (Fmt.str "%a" Reg.pp from_reg));
          ("to_reg", Json.String (Fmt.str "%a" Reg.pp to_reg));
        ]
  | Blocked { uid; reason } ->
      Json.Obj
        [
          ("event", Json.String "blocked");
          ("uid", Json.Int uid);
          ("reason", Json.String reason);
        ]
  | Region_skipped { region_id; reason } ->
      Json.Obj
        [
          ("event", Json.String "region_skipped");
          ("region", Json.Int region_id);
          ("reason", Json.String reason);
        ]
  | Block_scheduled { block; cycles } ->
      Json.Obj
        [
          ("event", Json.String "block_scheduled");
          ("block", Json.String block);
          ("cycles", Json.Int cycles);
        ]
  | Phase_finished { phase; seconds } ->
      Json.Obj
        [
          ("event", Json.String "phase_finished");
          ("phase", Json.String phase);
          ("seconds", Json.Float seconds);
        ]

let pp_event ppf = function
  | Candidate_considered { uid; from_block; into_block; speculative } ->
      Fmt.pf ppf "candidate #%d %a -> %a%s" uid Label.pp from_block Label.pp
        into_block
        (if speculative then " (speculative)" else "")
  | Moved_useful { uid; from_block; to_block } ->
      Fmt.pf ppf "moved #%d %a -> %a (useful)" uid Label.pp from_block Label.pp
        to_block
  | Moved_speculative { uid; from_block; to_block } ->
      Fmt.pf ppf "moved #%d %a -> %a (speculative)" uid Label.pp from_block
        Label.pp to_block
  | Renamed { uid; from_reg; to_reg } ->
      Fmt.pf ppf "renamed #%d %a -> %a" uid Reg.pp from_reg Reg.pp to_reg
  | Blocked { uid; reason } -> Fmt.pf ppf "blocked #%d (%s)" uid reason
  | Region_skipped { region_id; reason } ->
      Fmt.pf ppf "region %d skipped (%s)" region_id reason
  | Block_scheduled { block; cycles } ->
      Fmt.pf ppf "block %a locally scheduled in %d cycles" Label.pp block cycles
  | Phase_finished { phase; seconds } ->
      Fmt.pf ppf "phase %s: %.6fs" phase seconds
