type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list

and t_float = float

(* ---- emitter ---- *)

let escape_string b s =
  Buffer.add_char b '"';
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '"' -> Buffer.add_string b "\\\""
    | '\\' -> Buffer.add_string b "\\\\"
    | '\n' -> Buffer.add_string b "\\n"
    | '\r' -> Buffer.add_string b "\\r"
    | '\t' -> Buffer.add_string b "\\t"
    (* U+2028/U+2029 (UTF-8 e2 80 a8 / e2 80 a9) are valid JSON but
       illegal in JavaScript string literals; emitting them raw breaks
       consumers that eval or inline reports. Escape the whole
       three-byte sequence. *)
    | '\xe2'
      when !i + 2 < n
           && s.[!i + 1] = '\x80'
           && (s.[!i + 2] = '\xa8' || s.[!i + 2] = '\xa9') ->
        Buffer.add_string b
          (if s.[!i + 2] = '\xa8' then "\\u2028" else "\\u2029");
        i := !i + 2
    | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.add_char b '"'

let float_literal f =
  if not (Float.is_finite f) then "null"
  else
    (* Shortest decimal that round-trips to exactly this double: try 15
       significant digits, then 16, then fall back to 17 (always
       sufficient for IEEE binary64). A fixed precision either loses
       bits (%.12g) or prints noise digits (%.17g for 0.1); probing
       keeps the emitted literal both exact and canonical, so equal
       floats always serialize to equal bytes. *)
    let s =
      let p15 = Printf.sprintf "%.15g" f in
      if float_of_string p15 = f then p15
      else
        let p16 = Printf.sprintf "%.16g" f in
        if float_of_string p16 = f then p16 else Printf.sprintf "%.17g" f
    in
    (* "1" is valid JSON but loses the floatness; keep a decimal point so
       round-trips stay typed. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string ?(minify = false) t =
  let b = Buffer.create 256 in
  let pad n = if not minify then Buffer.add_string b (String.make n ' ') in
  let nl () = if not minify then Buffer.add_char b '\n' in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> Buffer.add_string b (float_literal f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
        Buffer.add_char b '[';
        nl ();
        List.iteri
          (fun i x ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (indent + 2);
            go (indent + 2) x)
          xs;
        nl ();
        pad indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (indent + 2);
            escape_string b k;
            Buffer.add_string b (if minify then ":" else ": ");
            go (indent + 2) v)
          fields;
        nl ();
        pad indent;
        Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

let pp ppf t = Fmt.string ppf (to_string t)

(* ---- parser ---- *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              let hex4 () =
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                pos := !pos + 4;
                code
              in
              let code = hex4 () in
              (* A high surrogate must combine with the following
                 [\uDC00-\uDFFF] escape into one astral scalar —
                 emitting each half as its own 3-byte sequence would
                 produce CESU-8, not UTF-8, and break round-trips. *)
              let code =
                if code >= 0xD800 && code <= 0xDBFF then begin
                  if
                    not
                      (!pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
                  then fail "lone high surrogate in \\u escape";
                  pos := !pos + 2;
                  let low = hex4 () in
                  if low < 0xDC00 || low > 0xDFFF then
                    fail "bad low surrogate in \\u escape";
                  0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                end
                else if code >= 0xDC00 && code <= 0xDFFF then
                  fail "lone low surrogate in \\u escape"
                else code
              in
              (* Encode the scalar as UTF-8 (1–4 bytes). *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else if code < 0x10000 then begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                List.rev (f :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Parse (p, msg) -> Error (Printf.sprintf "at %d: %s" p msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_list = function
  | List xs -> xs
  | Null | Bool _ | Int _ | Float _ | String _ | Obj _ -> []
