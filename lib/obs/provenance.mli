(** Motion provenance: where every final instruction came from.

    A table keyed by instruction uid recording, for each instruction of
    the final CFG: the block it originated in, the motion kind that put
    it where it is (the paper's Section 4 taxonomy — useful motion,
    speculative motion past one branch, duplication — plus [Unmoved]
    and [Spill_inserted] for allocator-made code), the priority-rule
    ranks at decision time, and the unroll/rotate copy generation.

    Recording functions take [t option] and are no-ops on [None], so
    passes thread [Config.prov] through unconditionally; with
    provenance off the schedule is byte-identical (pinned test). *)

type kind = Unmoved | Useful | Speculative | Duplicated | Spill_inserted

val all_kinds : kind list
(** Fixed order used for conservation counts and deterministic
    remainder assignment in {!attribute}. *)

val kind_name : kind -> string
val pp_kind : kind Fmt.t

(** Priority ranks of the winning heap entry when the scheduler
    committed (paper Section 5.2): delay, critical path, source order,
    pressure rank. *)
type scores = { d : int; cp : int; order : int; pressure : int }

type record = {
  uid : int;
  origin : Gis_ir.Label.t;  (** block the instruction started in *)
  kind : kind;
  scores : scores option;
  copy_index : int;  (** 0 = original; +1 per unroll/rotate copy *)
  renamed : bool;  (** destination renamed to unblock the motion *)
  moved_from : Gis_ir.Label.t option;
}

type t

val create : unit -> t
val find : t -> int -> record option

val seed : t option -> uid:int -> origin:Gis_ir.Label.t -> unit
(** Register an original instruction; keeps an existing record. *)

val copied : t option -> orig:int -> copy:int -> block:Gis_ir.Label.t -> unit
(** An unroll/rotate copy: inherits [orig]'s record one copy generation
    deeper. *)

val moved :
  t option ->
  uid:int ->
  kind:kind ->
  ?scores:scores ->
  ?renamed:bool ->
  from:Gis_ir.Label.t ->
  unit ->
  unit
(** The global scheduler committed a motion of [uid] out of [from]. *)

val duplicated :
  t option -> orig:int -> copy:int -> block:Gis_ir.Label.t -> unit
(** A duplication copy placed in predecessor [block]. *)

val spill : t option -> uid:int -> block:Gis_ir.Label.t -> unit
(** Allocator-inserted spill code (loads, stores, slot-base setup). *)

val scored : t option -> uid:int -> scores:scores -> unit
(** Local-scheduler ranks, recorded only when the record has none. *)

val finalize : t option -> Gis_ir.Cfg.t -> unit
(** Walk the final CFG and record each uid's (block, position). Must
    run before the queries below. *)

type entry = { record : record; block : Gis_ir.Label.t; position : int }

val entries : t -> entry list
(** One entry per final instruction, ordered by (block, position). *)

val final_site : t -> int -> (Gis_ir.Label.t * int) option

val missing : t -> Gis_ir.Cfg.t -> int list
(** Uids present in the CFG with no provenance record — non-empty means
    a pass created instructions without recording them (conservation
    violation; QCheck-tested empty). *)

val counts : t -> (kind * int) list
(** Final instructions per kind, in {!all_kinds} order; sums to the
    instruction count of the finalized CFG. *)

(** Per-block cycle attribution: the schedule's stall-gap saving in
    each block, credited to the motion kinds statically present there
    by largest-remainder apportionment (credits sum to delta exactly,
    and deltas sum to the whole-program E−A issue-cycle difference —
    the accounting identity the test suite checks). *)
type attribution = {
  ablock : Gis_ir.Label.t;
  delta : int;
  credits : (kind * int) list;
}

val attribute : t -> base:Trace.summary -> sched:Trace.summary -> attribution list
val attribution_total : attribution list -> int

val scores_to_json : scores -> Json.t
val entry_to_json : entry -> Json.t
val to_json : t -> Json.t
val attribution_to_json : attribution list -> Json.t
