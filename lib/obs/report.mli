(** Human-readable renderings of telemetry.

    {!pp_issue_diagram} prints the cycle-by-cycle issue trace of a
    simulation — which instruction issued on which unit each cycle, and
    for the cycles where nothing issued, the binding stall reason — the
    form in which the paper's Section 3 walks through Figure 2's 20-22
    cycle iteration. {!pp_summary} prints the aggregate breakdown:
    per-unit utilization and where the non-issue cycles went. *)

val pp_legend : Format.formatter -> unit -> unit
(** The stall-reason legend ([RAW]/[STQ]/[CALL]/[UNIT]/[IO+k]) printed
    once at the top of the issue diagram. *)

val pp_issue_diagram : Format.formatter -> Trace.summary -> unit
(** Requires a summary recorded with tracing on ([Trace.summary.events]
    non-empty); prints a notice otherwise. Starts with {!pp_legend};
    stalled lines carry compact codes rather than full descriptions. *)

val pp_pipeline : ?max_cycles:int -> Format.formatter -> Trace.summary -> unit
(** ASCII pipeline occupancy: one row per functional unit, one column
    per cycle; ['#'] an issue, a digit multi-issue, ['='] an earlier
    instruction still executing, ['.'] idle. Windows to the first
    [max_cycles] (default 120) columns. *)

val pp_summary : Format.formatter -> Trace.summary -> unit

val pp_sched_log : Format.formatter -> Sink.sched_event list -> unit
(** The scheduler decision log, one event per line. *)
