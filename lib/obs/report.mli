(** Human-readable renderings of telemetry.

    {!pp_issue_diagram} prints the cycle-by-cycle issue trace of a
    simulation — which instruction issued on which unit each cycle, and
    for the cycles where nothing issued, the binding stall reason — the
    form in which the paper's Section 3 walks through Figure 2's 20-22
    cycle iteration. {!pp_summary} prints the aggregate breakdown:
    per-unit utilization and where the non-issue cycles went. *)

val pp_issue_diagram : Format.formatter -> Trace.summary -> unit
(** Requires a summary recorded with tracing on ([Trace.summary.events]
    non-empty); prints a notice otherwise. *)

val pp_summary : Format.formatter -> Trace.summary -> unit

val pp_sched_log : Format.formatter -> Sink.sched_event list -> unit
(** The scheduler decision log, one event per line. *)
