(** Named wall-of-CPU-time spans.

    The pipeline used to report a single [seconds] float for all of
    scheduling; spans attribute that time to the individual phases
    (unroll, first global pass, rotate, second global pass, local
    post-pass) so compile-time regressions can be localised — the
    Figure 7 experiment, but per phase. *)

type t = { name : string; seconds : float }

val time : string -> (unit -> 'a) -> 'a * t
(** [time name f] runs [f] and returns its result with the CPU seconds
    it took (via [Sys.time]). *)

val total : t list -> float
(** Sum of all span durations. *)

val find : t list -> string -> t option

val to_json : t list -> Json.t

val pp : t Fmt.t
