(** Named wall-clock time spans.

    The pipeline used to report a single [seconds] float for all of
    scheduling; spans attribute that time to the individual phases
    (unroll, first global pass, rotate, second global pass, local
    post-pass) so compile-time regressions can be localised — the
    Figure 7 experiment, but per phase. *)

type t = { name : string; seconds : float }

val now : unit -> float
(** Wall-clock seconds (via [Unix.gettimeofday]). *)

val time : string -> (unit -> 'a) -> 'a * t
(** [time name f] runs [f] and returns its result with the wall-clock
    seconds it took. Wall clock, not CPU time: under the parallel batch
    driver a task's CPU time is split across domains, and reports that
    mix the two are meaningless. *)

val total : t list -> float
(** Sum of all span durations. *)

val find : t list -> string -> t option

val scrub : t list -> t list
(** Zero every duration, keeping names and order — used by the
    [--deterministic] report mode so golden tests and CI artifact diffs
    are stable. *)

val to_json : t list -> Json.t

val pp : t Fmt.t
