(** Named wall-clock time spans.

    The pipeline used to report a single [seconds] float for all of
    scheduling; spans attribute that time to the individual phases
    (unroll, first global pass, rotate, second global pass, local
    post-pass) so compile-time regressions can be localised — the
    Figure 7 experiment, but per phase.

    Spans nest: a [time] call made while another [time] call is running
    (in the same domain) is recorded as a child of the enclosing span,
    so a phase can expose sub-phase structure (e.g. the region analysis
    computed inside a global pass) without changing its own total. *)

type t = { name : string; seconds : float; children : t list }

val now : unit -> float
(** Wall-clock seconds (via [Unix.gettimeofday]). *)

val time : string -> (unit -> 'a) -> 'a * t
(** [time name f] runs [f] and returns its result with the wall-clock
    seconds it took. Wall clock, not CPU time: under the parallel batch
    driver a task's CPU time is split across domains, and reports that
    mix the two are meaningless. Nested [time] calls in the same domain
    become [children] of this span (innermost-open parent), in call
    order. *)

val total : t list -> float
(** Sum of the top-level span durations (children are already counted
    inside their parents). *)

val find : t list -> string -> t option

val scrub : t list -> t list
(** Zero every duration, recursively through [children], keeping names
    and order — used by the [--deterministic] report mode so golden
    tests and CI artifact diffs are byte-stable across runs. A nested
    span inherits its parent's scrubbing; partially-scrubbed trees were
    the PR-4 determinism bug. *)

val to_json : t list -> Json.t
(** Each span is [{name, seconds}] plus a ["children"] field when it
    has any. *)

val pp : t Fmt.t
