(* Hierarchical self-profiler: wall-clock and GC attribution per
   pipeline phase and per compiled region.

   Every sample is an integer — wall clock in nanoseconds, allocation
   in bytes, GC runs in collections — so the accounting identity is
   exact, not approximate: a node's [self] value is its total minus the
   sum of its children's totals, and summing [self] over a subtree
   telescopes back to the subtree's total with no floating-point
   slack. [identity_ok] re-derives that sum independently; `gisc
   profile` runs it on every invocation and exits 3 when it fails.

   Recording mirrors {!Span}: a per-domain stack of open frames, so the
   batch driver's worker domains never interleave each other's trees.
   With no profiler attached ([record None]) the cost is one pattern
   match — the pinned test asserts schedules are byte-identical. *)

type node = {
  name : string;
  wall_ns : int;  (** total wall clock, children included *)
  alloc_bytes : int;  (** total bytes allocated, children included *)
  minor : int;  (** minor collections finished inside the node *)
  major : int;  (** major collection cycles finished inside the node *)
  children : node list;
}

type t = { mutable roots : node list (* reverse completion order *); lock : Mutex.t }

let create () = { roots = []; lock = Mutex.create () }

let roots t = Mutex.protect t.lock (fun () -> List.rev t.roots)

(* Integer samples. [gettimeofday] doubles carry ~2^-22 s of mantissa
   at current epochs; scaling to ns before truncating keeps the
   subtraction exact in int space, which is all the identity needs.

   Allocation is sampled from [Gc.minor_words], not
   [Gc.allocated_bytes]: the latter is [minor + major - promoted],
   whose major/promoted components only update at GC slice boundaries,
   so phase attribution would shift by megabytes depending on where
   collections happen to fall. [minor_words] is precise and monotonic
   per domain — deterministic attribution at the cost of not counting
   blocks allocated directly on the major heap (> 128 words). *)
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let allocated () = int_of_float (Gc.minor_words ()) * (Sys.word_size / 8)

type frame = {
  owner : t;
  frame_name : string;
  t0 : int;
  a0 : int;
  minor0 : int;
  major0 : int;
  mutable kids : node list; (* reverse order *)
}

let frames : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let record prof name f =
  match prof with
  | None -> f ()
  | Some t ->
      let stack = Domain.DLS.get frames in
      let st = Gc.quick_stat () in
      let fr =
        {
          owner = t;
          frame_name = name;
          t0 = now_ns ();
          a0 = allocated ();
          minor0 = st.Gc.minor_collections;
          major0 = st.Gc.major_collections;
          kids = [];
        }
      in
      stack := fr :: !stack;
      let finish () =
        let wall_ns = now_ns () - fr.t0 in
        let alloc_bytes = allocated () - fr.a0 in
        let st1 = Gc.quick_stat () in
        (match !stack with
        | top :: rest when top == fr -> stack := rest
        | _ -> () (* an escaped effect unbalanced the stack; keep it sane *));
        let node =
          {
            name;
            wall_ns;
            alloc_bytes;
            minor = st1.Gc.minor_collections - fr.minor0;
            major = st1.Gc.major_collections - fr.major0;
            children = List.rev fr.kids;
          }
        in
        match !stack with
        | parent :: _ when parent.owner == t -> parent.kids <- node :: parent.kids
        | _ -> Mutex.protect t.lock (fun () -> t.roots <- node :: t.roots)
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

let sum f children = List.fold_left (fun acc c -> acc + f c) 0 children

let self_wall_ns n = n.wall_ns - sum (fun c -> c.wall_ns) n.children
let self_alloc_bytes n = n.alloc_bytes - sum (fun c -> c.alloc_bytes) n.children
let self_minor n = n.minor - sum (fun c -> c.minor) n.children
let self_major n = n.major - sum (fun c -> c.major) n.children

let rec fold f acc n = List.fold_left (fold f) (f acc n) n.children

(* The identity, checked from first principles rather than trusting the
   derivation above: over any subtree, the self values must sum back to
   the root's totals, and no counter that is physically monotonic
   (allocation, collections) may go negative anywhere. Wall-clock self
   may only go negative if the system clock stepped backwards mid-run —
   that too is a violation worth failing loudly on. *)
let identity_ok n =
  let sums =
    fold
      (fun (w, a, mi, ma) m ->
        ( w + self_wall_ns m,
          a + self_alloc_bytes m,
          mi + self_minor m,
          ma + self_major m ))
      (0, 0, 0, 0) n
  in
  let non_negative =
    fold
      (fun ok m ->
        ok && self_wall_ns m >= 0 && self_alloc_bytes m >= 0
        && self_minor m >= 0 && self_major m >= 0)
      true n
  in
  sums = (n.wall_ns, n.alloc_bytes, n.minor, n.major) && non_negative

let node_count n = fold (fun k _ -> k + 1) 0 n

(* ------------------------------------------------------------------ *)
(* Renderings                                                          *)
(* ------------------------------------------------------------------ *)

let rec scrub n =
  {
    n with
    wall_ns = 0;
    alloc_bytes = 0;
    minor = 0;
    major = 0;
    children = List.map scrub n.children;
  }

let seconds_of_ns ns = float_of_int ns /. 1e9

let rec to_json n =
  Json.Obj
    ([
       ("name", Json.String n.name);
       ("wall_seconds", Json.Float (seconds_of_ns n.wall_ns));
       ("self_seconds", Json.Float (seconds_of_ns (self_wall_ns n)));
       ("alloc_bytes", Json.Int n.alloc_bytes);
       ("self_alloc_bytes", Json.Int (self_alloc_bytes n));
       ("minor_collections", Json.Int n.minor);
       ("major_collections", Json.Int n.major);
     ]
    @
    match n.children with
    | [] -> []
    | children -> [ ("children", Json.List (List.map to_json children)) ])

(* Folded-stack output, one line per node: semicolon-joined path then
   the node's *self* value, the format flamegraph.pl and speedscope
   ingest directly. Wall values are nanoseconds, [`Alloc] bytes. *)
let folded ?(metric = `Wall) n =
  let value m =
    match metric with `Wall -> self_wall_ns m | `Alloc -> self_alloc_bytes m
  in
  let rec go prefix m acc =
    let path = if prefix = "" then m.name else prefix ^ ";" ^ m.name in
    let acc = Fmt.str "%s %d" path (value m) :: acc in
    List.fold_left (fun acc c -> go path c acc) acc m.children
  in
  List.rev (go "" n [])

let pp_bytes ppf b =
  if b >= 10 * 1024 * 1024 then Fmt.pf ppf "%7.1fMB" (float_of_int b /. 1048576.)
  else if b >= 10 * 1024 then Fmt.pf ppf "%7.1fkB" (float_of_int b /. 1024.)
  else Fmt.pf ppf "%6dB " b

let pp ppf n =
  Fmt.pf ppf "  %-28s | %10s | %10s | %10s | %10s | %5s@." "phase" "wall (ms)"
    "self (ms)" "alloc" "self alloc" "gc";
  let rec row depth m =
    let indent = String.make (2 * depth) ' ' in
    Fmt.pf ppf "  %-28s | %10.3f | %10.3f | %a | %a | %2d/%d@."
      (indent ^ m.name)
      (float_of_int m.wall_ns /. 1e6)
      (float_of_int (self_wall_ns m) /. 1e6)
      pp_bytes m.alloc_bytes pp_bytes (self_alloc_bytes m) m.minor m.major;
    List.iter (row (depth + 1)) m.children
  in
  row 0 n

(* Totals as registry gauges: the root and each of its direct children
   (the pipeline phases) become [prof.<name>_seconds] /
   [prof.<name>_alloc_bytes], which the deterministic dump scrubs like
   every other [_seconds]/[_bytes] metric. *)
let export_metrics n =
  let export m =
    Metrics.set (Metrics.gauge ("prof." ^ m.name ^ "_seconds"))
      (seconds_of_ns m.wall_ns);
    Metrics.set
      (Metrics.gauge ("prof." ^ m.name ^ "_alloc_bytes"))
      (float_of_int m.alloc_bytes)
  in
  export n;
  List.iter export n.children
