(* Process-wide metrics registry.

   One flat namespace of named counters, gauges and histograms that
   every subsystem (scheduler, driver pool, register allocator,
   simulator) registers into, dumped verbatim into every JSON report.
   Counters and gauges are atomics and the registry itself is guarded
   by a mutex, so the batch driver's worker domains can bump the same
   metric concurrently.

   Collection is off until [enable] is called (the CLI entry points and
   the bench harness turn it on); with the registry disabled every
   recording operation is a single atomic load and branch, so library
   code can instrument unconditionally. *)

type counter = { c_name : string; count : int Atomic.t }
type gauge = { g_name : string; cell : float Atomic.t }

type histogram = {
  h_name : string;
  (* log2 buckets: bucket i counts observations in [2^(i-1), 2^i), with
     bucket 0 holding everything below 1.0. Coarse, fixed and
     allocation-free — enough to tell microseconds from seconds. *)
  buckets : int Atomic.t array;
  h_count : int Atomic.t;
  sum : float Atomic.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let num_buckets = 32
let enabled = Atomic.make false
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

let register name make =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> m
      | None ->
          let m = make () in
          Hashtbl.replace registry name m;
          m)

let counter name =
  match
    register name (fun () ->
        Counter { c_name = name; count = Atomic.make 0 })
  with
  | Counter c -> c
  | Gauge _ | Histogram _ ->
      invalid_arg (name ^ " is already registered with another type")

let gauge name =
  match
    register name (fun () -> Gauge { g_name = name; cell = Atomic.make 0.0 })
  with
  | Gauge g -> g
  | Counter _ | Histogram _ ->
      invalid_arg (name ^ " is already registered with another type")

let histogram name =
  match
    register name (fun () ->
        Histogram
          {
            h_name = name;
            buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
            h_count = Atomic.make 0;
            sum = Atomic.make 0.0;
          })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ ->
      invalid_arg (name ^ " is already registered with another type")

let incr ?(by = 1) c =
  if Atomic.get enabled then ignore (Atomic.fetch_and_add c.count by)

let set g v = if Atomic.get enabled then Atomic.set g.cell v

let rec add_float cell by =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. by)) then add_float cell by

let bucket_of v =
  if not (v >= 1.0) then 0
  else min (num_buckets - 1) (1 + int_of_float (Float.log2 v))

let observe h v =
  if Atomic.get enabled then begin
    ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    add_float h.sum v
  end

(* A metric whose name ends in "_seconds", "_ns" or "_us" measures wall
   clock, and one ending in "_bytes" measures allocation (which varies
   with compiler version even when the program is deterministic);
   deterministic dumps zero both the same way [Span.scrub] zeroes phase
   timings, so reports stay byte-stable across runs and toolchains. *)
let scrubbed_name name =
  let suffix s = Filename.check_suffix name s in
  suffix "_seconds" || suffix "_ns" || suffix "_us" || suffix "_bytes"

(* Snapshot: every metric read in one pass under the registry lock, so
   a report never shows counter A after an increment that counter B's
   reading missed. The per-histogram fields are still read one atomic
   at a time, but no registration or reset can interleave. *)
type histogram_view = { count : int; sum : float; buckets : (int * int) list }

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_view

let read_metric = function
  | Counter c -> (c.c_name, Counter_v (Atomic.get c.count))
  | Gauge g -> (g.g_name, Gauge_v (Atomic.get g.cell))
  | Histogram h ->
      let buckets =
        Array.to_list h.buckets
        |> List.mapi (fun i c -> (i, Atomic.get c))
        |> List.filter (fun (_, c) -> c > 0)
      in
      ( h.h_name,
        Histogram_v
          { count = Atomic.get h.h_count; sum = Atomic.get h.sum; buckets } )

let snapshot () =
  let all =
    Mutex.protect lock (fun () ->
        Hashtbl.fold (fun _ m acc -> read_metric m :: acc) registry [])
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let histogram_stats h =
  match read_metric (Histogram h) with
  | _, Histogram_v v -> v
  | _ -> assert false

let pp_histogram_view ppf v =
  if v.count = 0 then Fmt.string ppf "empty"
  else begin
    Fmt.pf ppf "count %d, mean %.1f" v.count (v.sum /. float_of_int v.count);
    Fmt.pf ppf ", log2 buckets [%a]"
      Fmt.(list ~sep:sp (fun ppf (i, c) -> pf ppf "%d:%d" i c))
      v.buckets
  end

let value_to_json ~deterministic name v =
  let scrub = deterministic && scrubbed_name name in
  match v with
  | Counter_v n ->
      Json.Obj
        [
          ("type", Json.String "counter");
          ("value", Json.Int (if scrub then 0 else n));
        ]
  | Gauge_v x ->
      Json.Obj
        [
          ("type", Json.String "gauge");
          ("value", Json.Float (if scrub then 0.0 else x));
        ]
  | Histogram_v h ->
      let count = if scrub then 0 else h.count in
      let sum = if scrub then 0.0 else h.sum in
      let buckets = if scrub then [] else h.buckets in
      Json.Obj
        [
          ("type", Json.String "histogram");
          ("count", Json.Int count);
          ("sum", Json.Float sum);
          ( "buckets",
            Json.Obj
              (List.map (fun (i, c) -> (string_of_int i, Json.Int c)) buckets)
          );
        ]

let to_json ?(deterministic = false) () =
  Json.Obj
    (List.map
       (fun (name, v) -> (name, value_to_json ~deterministic name v))
       (snapshot ()))

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Atomic.set c.count 0
          | Gauge g -> Atomic.set g.cell 0.0
          | Histogram h ->
              Array.iter (fun b -> Atomic.set b 0) h.buckets;
              Atomic.set h.h_count 0;
              Atomic.set h.sum 0.0)
        registry)

let find_counter name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> Some (Atomic.get c.count)
      | Some (Gauge _ | Histogram _) | None -> None)
