(** Pluggable sink for structured scheduler decision events.

    The global and local schedulers narrate what they do — which
    instructions became interblock candidates, which motions committed
    (and whether they were useful or speculative), which were blocked by
    the Section 5.3 safety rule, which regions were skipped and why, and
    how long each pipeline phase took. A sink is just a callback; the
    default {!null} sink costs one indirect call per event, so tracing
    is always compiled in and enabled by plugging a real sink into
    [Config.obs]. *)

type sched_event =
  | Candidate_considered of {
      uid : int;
      from_block : Gis_ir.Label.t;
      into_block : Gis_ir.Label.t;
      speculative : bool;
          (** true when the motion out of [from_block] would execute the
              instruction on paths where it was not originally present *)
    }
  | Moved_useful of {
      uid : int;
      from_block : Gis_ir.Label.t;
      to_block : Gis_ir.Label.t;
    }
  | Moved_speculative of {
      uid : int;
      from_block : Gis_ir.Label.t;
      to_block : Gis_ir.Label.t;
    }
  | Renamed of { uid : int; from_reg : Gis_ir.Reg.t; to_reg : Gis_ir.Reg.t }
  | Blocked of { uid : int; reason : string }
      (** a candidate motion rejected by the speculation-safety rule *)
  | Region_skipped of { region_id : int; reason : string }
  | Block_scheduled of { block : Gis_ir.Label.t; cycles : int }
      (** local post-pass finished a block with the given schedule length *)
  | Phase_finished of { phase : string; seconds : float }

type t = { emit : sched_event -> unit }

val null : t
(** Drops every event. *)

val memory : unit -> t * (unit -> sched_event list)
(** [memory ()] returns a sink and a function producing everything
    emitted so far, in emission order. *)

val tee : t -> t -> t
(** Forward each event to both sinks, left first. *)

val event_to_json : sched_event -> Json.t

val pp_event : sched_event Fmt.t
