(* Per-domain flight recorder: a fixed-size ring of the most recent
   observability events, kept cheaply at all times and dumped only when
   something goes wrong (a task crash or timeout in the driver pool).
   The ring is domain-local, so each worker's recent history survives
   the failure of its own task without interleaving with the others,
   and recording is a single array store — no allocation beyond the
   message the caller already built, no locks. *)

type entry = { at : float; msg : string }

let capacity = 64

type ring = { mutable n : int (* total notes ever *); slots : entry array }

let ring : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { n = 0; slots = Array.make capacity { at = 0.0; msg = "" } })

let note msg =
  let r = Domain.DLS.get ring in
  r.slots.(r.n mod capacity) <- { at = Unix.gettimeofday (); msg };
  r.n <- r.n + 1

let notef fmt = Fmt.kstr note fmt

let clear () =
  let r = Domain.DLS.get ring in
  r.n <- 0

let recorded () = (Domain.DLS.get ring).n

let dump () =
  let r = Domain.DLS.get ring in
  let kept = min r.n capacity in
  List.init kept (fun i ->
      (* Oldest first: the ring's logical start is n - kept. *)
      r.slots.((r.n - kept + i) mod capacity))

let dump_messages () = List.map (fun e -> e.msg) (dump ())

let pp_dump ppf () =
  match dump () with
  | [] -> Fmt.pf ppf "flight recorder: empty@."
  | entries ->
      let t0 = (List.hd entries).at in
      Fmt.pf ppf "flight recorder (last %d of %d event(s)):@."
        (List.length entries) (recorded ());
      List.iter
        (fun e -> Fmt.pf ppf "  [+%8.6fs] %s@." (e.at -. t0) e.msg)
        entries

(* A sink that mirrors every scheduler decision event into this
   domain's ring, for wrapping around a real sink with [Sink.tee]. *)
let sink () = { Sink.emit = (fun e -> notef "%a" Sink.pp_event e) }
