(* Per-domain flight recorder: a fixed-size ring of the most recent
   observability events, kept cheaply at all times and dumped only when
   something goes wrong (a task crash or timeout in the driver pool).
   The ring is domain-local, so each worker's recent history survives
   the failure of its own task without interleaving with the others,
   and recording is a single array store — no allocation beyond the
   message the caller already built, no locks. *)

type entry = { at : float; msg : string }

let capacity = 64

type t = { mutable n : int (* total notes ever *); slots : entry array }

let create ?capacity:(c = capacity) () =
  if c < 1 then invalid_arg "Flight.create: capacity must be >= 1";
  { n = 0; slots = Array.make c { at = 0.0; msg = "" } }

let capacity_of r = Array.length r.slots

let note_to r msg =
  r.slots.(r.n mod capacity_of r) <- { at = Unix.gettimeofday (); msg };
  r.n <- r.n + 1

let notef_to r fmt = Fmt.kstr (note_to r) fmt
let clear_of r = r.n <- 0
let recorded_of r = r.n

let dump_of r =
  let cap = capacity_of r in
  let kept = min r.n cap in
  List.init kept (fun i ->
      (* Oldest first: the ring's logical start is n - kept. *)
      r.slots.((r.n - kept + i) mod cap))

(* Capacity used for the lazily-created per-domain rings. Settable once
   at startup (e.g. from gisc --flight-cap) before any domain has
   noted; rings already materialised keep their size. *)
let default_capacity = Atomic.make capacity

let set_default_capacity c =
  if c < 1 then invalid_arg "Flight.set_default_capacity: capacity must be >= 1";
  Atomic.set default_capacity c

let get_default_capacity () = Atomic.get default_capacity

let ring : t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> create ~capacity:(Atomic.get default_capacity) ())

let note msg = note_to (Domain.DLS.get ring) msg
let notef fmt = Fmt.kstr note fmt
let clear () = clear_of (Domain.DLS.get ring)
let recorded () = recorded_of (Domain.DLS.get ring)
let dump () = dump_of (Domain.DLS.get ring)
let dump_messages () = List.map (fun e -> e.msg) (dump ())

let pp_dump ppf () =
  match dump () with
  | [] -> Fmt.pf ppf "flight recorder: empty@."
  | entries ->
      let t0 = (List.hd entries).at in
      Fmt.pf ppf "flight recorder (last %d of %d event(s)):@."
        (List.length entries) (recorded ());
      List.iter
        (fun e -> Fmt.pf ppf "  [+%8.6fs] %s@." (e.at -. t0) e.msg)
        entries

(* A sink that mirrors every scheduler decision event into this
   domain's ring, for wrapping around a real sink with [Sink.tee]. *)
let sink () = { Sink.emit = (fun e -> notef "%a" Sink.pp_event e) }
