(** A tiny self-contained JSON tree — emitter and parser.

    The environment ships no JSON library, and the telemetry layer needs
    only a canonical machine-readable rendering of reports ([gisc
    --stats], [bench --json]) plus enough of a parser for the test suite
    to check that what we emit is well-formed. This module is that: a
    plain value type, a printer producing canonical JSON (sorted nothing,
    stable field order, [null] for non-finite floats), and a strict
    recursive-descent parser for the same subset. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list

and t_float = float

val to_string : ?minify:bool -> t -> string
(** Canonical rendering. With [minify:false] (default) the output is
    indented two spaces per level; with [minify:true] it is a single
    line. Non-finite floats render as [null] (JSON has no NaN). *)

val pp : t Fmt.t
(** [to_string ~minify:false] behind a formatter. *)

val of_string : string -> (t, string) result
(** Strict parser for the output of {!to_string} (and ordinary JSON:
    whitespace-insensitive, escapes, exponents). Returns [Error msg]
    with a character position on malformed input. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_list : t -> t list
(** The elements of a [List]; [[]] for any other constructor. *)
