(** Stall-attributed timing telemetry from the simulator.

    The machine model (paper, Section 2) constrains the issue cycle of a
    dynamic instruction in exactly three ways: in-order issue (the
    cursor of the previous instruction), hardware interlocks (operands
    not yet available), and structural hazards (all units of its type
    already taken this cycle). The simulator records, per instruction,
    which constraint was {e binding} and how many cycles each one cost,
    and aggregates the costs here.

    Accounting identity (checked by the test suite): the issue-cycle gap
    between consecutive instructions decomposes into interlock cycles
    (register or store-queue) plus unit-busy cycles, so

    {[ interlock + mem_interlock + sum(unit busy) = last_issue ]}

    — every cycle in [0, last_issue] where the machine failed to issue
    the next instruction is attributed to exactly one cause. Separately,
    [in_order_instrs] counts the instructions that were operand-ready
    before in-order issue reached them — a bounded measure of how much
    an out-of-order frontend could have lifted; it overlaps the gaps
    and is not part of the identity. *)

type stall =
  | No_stall  (** issued the same cycle as its predecessor, unconstrained *)
  | In_order of int
      (** operands were ready [k] cycles before in-order issue allowed it *)
  | Interlock of { reg : Gis_ir.Reg.t; producer : int }
      (** waiting on [reg], produced by the instruction with uid
          [producer] — the hardware-interlock rule *)
  | Mem_interlock of { producer : int }
      (** the secondary store-queue delay of the detailed model, behind
          a store *)
  | Call_interlock of { producer : int }
      (** the same secondary memory delay, but the producer is a call —
          kept apart from [Mem_interlock] so per-category accounting
          does not blame the store queue for call serialization *)
  | Unit_busy of Gis_ir.Instr.unit_ty
      (** all units of the type were taken — structural hazard *)

val stall_category : stall -> string
(** Short category slug: ["none"], ["in_order"], ["interlock"],
    ["mem_interlock"], ["call_interlock"], ["unit_busy"]. *)

val pp_stall : stall Fmt.t

(** One dynamic issue, recorded only when full tracing is requested. *)
type event = {
  cycle : int;  (** issue cycle *)
  unit_ : Gis_ir.Instr.unit_ty;
  block : Gis_ir.Label.t;  (** block being executed *)
  instr : Gis_ir.Instr.t;
  stall : stall;  (** the binding constraint on this issue cycle *)
  gap : int;  (** cycles since the previous instruction's issue *)
  fin : int;  (** completion cycle: issue + the unit's execution time *)
}

type unit_stat = {
  unit_ : Gis_ir.Instr.unit_ty;
  issues : int;  (** dynamic instructions issued on this unit type *)
  busy_stall : int;  (** gap cycles lost to this unit type being full *)
  histogram : (int * int) list;
      (** utilization: [(k, c)] means [c] cycles issued exactly [k]
          instructions on this unit type; covers every cycle in
          [0, last_issue], including [k = 0] *)
}

type block_stat = {
  block : Gis_ir.Label.t;
  entries : int;  (** dynamic entries (the profile count) *)
  instrs : int;  (** dynamic instructions issued from this block *)
  stall_cycles : int;  (** gap cycles attributed while inside this block *)
}

type summary = {
  last_issue : int;  (** issue cycle of the last dynamic instruction *)
  interlock_cycles : int;
  mem_interlock_cycles : int;
  call_interlock_cycles : int;
  in_order_instrs : int;
      (** dynamic instructions that were operand-ready strictly before
          in-order issue let them go — the issues an out-of-order
          machine could have lifted; a count, not cycles, and not part
          of the identity *)
  units : unit_stat list;  (** one entry per unit type, fixed order *)
  blocks : block_stat list;  (** sorted by label *)
  events : event list;  (** chronological; [[]] unless tracing was on *)
}

val empty : summary

val unit_busy_total : summary -> int
(** Sum of [busy_stall] over all unit types. *)

val stall_total : summary -> int
(** [interlock + mem_interlock + call_interlock + unit_busy_total] —
    equals [last_issue] by the accounting identity. *)

val to_json : summary -> Json.t
(** Canonical JSON: unit utilization, stall totals, per-block breakdown,
    and the event list when present. *)

val pp_event : event Fmt.t
