(** Hierarchical self-profiler: wall-clock and GC attribution per
    pipeline phase and per compiled region.

    {!Span} answers "how long did each phase take"; [Prof] additionally
    answers "what did it allocate and how often did the GC run", and it
    does so under an {e exact} accounting identity: every sample is an
    integer (nanoseconds, bytes, collections), a node's self value is
    its total minus its children's totals, and the self values of a
    subtree sum back to the root's totals with no floating-point slack
    — the profiler-side counterpart of the simulator's stall-accounting
    identity and [gisc explain]'s cycle-attribution identity.

    Recording nests per domain (a {!record} made while another is open
    in the same domain becomes a child), so the batch driver's workers
    each grow their own tree. [record None name f] is [f ()] — one
    pattern match, no samples, no allocation — and the pinned test
    asserts schedules are byte-identical with the profiler detached. *)

type node = {
  name : string;
  wall_ns : int;  (** total wall clock in nanoseconds, children included *)
  alloc_bytes : int;
      (** total bytes allocated ([Gc.minor_words] delta — precise and
          GC-timing-independent, unlike [Gc.allocated_bytes]; blocks
          allocated directly on the major heap are not counted),
          children included *)
  minor : int;  (** minor collections finished inside the node *)
  major : int;  (** major collection cycles finished inside the node *)
  children : node list;  (** in completion order *)
}

type t
(** A profile under construction. Safe to share across domains: each
    domain's open frames are domain-local, completed top-level trees
    land in the shared root list behind a mutex. *)

val create : unit -> t

val record : t option -> string -> (unit -> 'a) -> 'a
(** [record (Some t) name f] runs [f] and records a node named [name]
    covering it — as a child of the innermost open record of the same
    profiler on this domain, or as a new root. [record None name f] is
    exactly [f ()]. Exceptions propagate; the partial node is still
    recorded so a crashed phase stays visible in the dump. *)

val roots : t -> node list
(** Completed top-level trees, oldest first. *)

val self_wall_ns : node -> int
(** Wall clock not covered by any child. May only be negative if the
    system clock stepped backwards mid-phase; {!identity_ok} rejects
    that. *)

val self_alloc_bytes : node -> int
val self_minor : node -> int
val self_major : node -> int

val identity_ok : node -> bool
(** Re-derives the accounting identity from scratch: self values over
    the subtree must sum exactly to the root's totals (integer
    arithmetic — no tolerance), and every self value of a physically
    monotonic counter must be non-negative. *)

val node_count : node -> int

val fold : ('a -> node -> 'a) -> 'a -> node -> 'a
(** Pre-order fold over a subtree. *)

val scrub : node -> node
(** Zero every [*_seconds]/[*_bytes]/collection field recursively,
    keeping names and shape — the profile-report counterpart of
    {!Span.scrub} for [--deterministic] output. *)

val seconds_of_ns : int -> float

val to_json : node -> Json.t
(** [{name, wall_seconds, self_seconds, alloc_bytes, self_alloc_bytes,
    minor_collections, major_collections, children?}], recursively.
    Scrub first for deterministic output. *)

val folded : ?metric:[ `Wall | `Alloc ] -> node -> string list
(** Folded-stack lines ("a;b;c VALUE", one per node, value = self), the
    input format of flamegraph.pl and speedscope. [`Wall] (default)
    reports self nanoseconds, [`Alloc] self bytes. *)

val pp : node Fmt.t
(** Indented table: wall/self milliseconds, alloc/self alloc bytes,
    minor/major collections per node. *)

val export_metrics : node -> unit
(** Set [prof.<name>_seconds] and [prof.<name>_alloc_bytes] gauges in
    {!Metrics} for the node and each direct child. *)
