(** Process-wide metrics registry.

    Counters, gauges and log2 histograms in one flat namespace, safe to
    bump from any domain (atomics; the registry table itself is behind a
    mutex). The scheduler, driver pool, register allocator and simulator
    register into it; [gisc --stats] and [bench --json] dump it as a
    ["metrics"] section.

    Collection is disabled until {!enable} — a disabled recording is one
    atomic load and a branch, so schedules and timings are unaffected
    when observability is off. Registration itself is always allowed
    (handles are cheap and idempotent: the same name returns the same
    metric). *)

type counter
type gauge
type histogram

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val counter : string -> counter
(** Get or register. Raises [Invalid_argument] if the name is already
    registered as a different metric type. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : ?by:int -> counter -> unit
val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Bucket [i] counts observations in [2^(i-1), 2^i) (bucket 0 holds
    everything below 1.0); count and sum are kept exactly. *)

val to_json : ?deterministic:bool -> unit -> Json.t
(** Every registered metric, sorted by name. With [deterministic], any
    metric whose name ends in ["_seconds"] or ["_ns"] is zeroed — the
    registry's equivalent of [Span.scrub]. *)

val reset : unit -> unit
(** Zero every registered metric (the registry keeps its names). Used
    by tests and by the bench harness between table groups. *)

val find_counter : string -> int option
(** Current value of a registered counter, for tests. *)
