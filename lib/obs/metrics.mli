(** Process-wide metrics registry.

    Counters, gauges and log2 histograms in one flat namespace, safe to
    bump from any domain (atomics; the registry table itself is behind a
    mutex). The scheduler, driver pool, register allocator and simulator
    register into it; [gisc --stats] and [bench --json] dump it as a
    ["metrics"] section.

    Collection is disabled until {!enable} — a disabled recording is one
    atomic load and a branch, so schedules and timings are unaffected
    when observability is off. Registration itself is always allowed
    (handles are cheap and idempotent: the same name returns the same
    metric). *)

type counter
type gauge
type histogram

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val counter : string -> counter
(** Get or register. Raises [Invalid_argument] if the name is already
    registered as a different metric type. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : ?by:int -> counter -> unit
val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Bucket [i] counts observations in [2^(i-1), 2^i) (bucket 0 holds
    everything below 1.0); count and sum are kept exactly. *)

type histogram_view = { count : int; sum : float; buckets : (int * int) list }
(** [buckets] holds only the non-empty log2 buckets, as
    [(bucket index, count)] in ascending index order. *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_view

val snapshot : unit -> (string * value) list
(** Every registered metric read in one pass under the registry lock,
    sorted by name — the one way to read multiple metrics without a
    concurrent registration or {!reset} interleaving between reads.
    Reports (including the profiler's) are built from this. *)

val histogram_stats : histogram -> histogram_view
(** Current count, sum, and non-empty buckets of one histogram. *)

val pp_histogram_view : histogram_view Fmt.t
(** ["count N, mean M, log2 buckets [i:c ...]"] — the driver pool
    summary's rendering. *)

val to_json : ?deterministic:bool -> unit -> Json.t
(** Every registered metric, sorted by name. With [deterministic], any
    metric whose name ends in ["_seconds"], ["_ns"], ["_us"] or
    ["_bytes"] is zeroed — the registry's equivalent of [Span.scrub]
    (allocation counts are deterministic per binary but vary across
    compiler versions, so they scrub too). *)

val reset : unit -> unit
(** Zero every registered metric (the registry keeps its names). Used
    by tests and by the bench harness between table groups. *)

val find_counter : string -> int option
(** Current value of a registered counter, for tests. *)
