(** Benchmark regression gate: diff two JSON reports on cycle and
    allocation metrics.

    Walks a baseline and a current report in lockstep and compares
    every numeric field that measures cycles — a field named [cycles]
    or [cycles_per_iteration], one whose name ends in [_cycles], or any
    numeric leaf directly under such a field (the A2/A3 tables nest
    per-program counts under a ["cycles"] object) — or allocation — a
    field named [alloc_bytes]/[allocated_bytes] or ending in [_bytes].

    A cycle comparison fails when the current value exceeds the
    baseline by more than the tolerance (default 2%); with a zero
    baseline the ratio is meaningless, so any growth at all fails and
    the message reports the absolute delta. An allocation comparison
    fails only when both the (looser, default 50%) ratio and an
    absolute noise floor (default 64 KiB) are exceeded — byte counts
    are deterministic for one binary but drift across compiler
    versions, and tiny phases must not gate on ratio alone. A NaN on
    either side is reported as invalid rather than silently passing
    (NaN compares false with everything). A metric-bearing subtree
    present in the baseline but absent from the current report also
    fails, so schema drift cannot silently shrink coverage. Timing
    fields are never cycle- or bytes-named in scrubbed reports, so
    reports generated with [--deterministic] gate cleanly. *)

type kind = Cycles | Alloc

val pp_kind : kind Fmt.t

type finding = {
  path : string;  (** JSON path, e.g. [E5_figure8_runtime[2].base_cycles] *)
  kind : kind;
  baseline : float;
  current : float;
}

val ratio : finding -> float
(** [current /. baseline]; [infinity] when the baseline is zero and the
    current value positive, [1.0] when both are zero, [nan] when either
    side is NaN. *)

val delta : finding -> float
(** [current -. baseline] — the absolute movement, the honest number
    when the baseline is zero. *)

type outcome = {
  compared : int;  (** metrics compared *)
  regressions : finding list;  (** beyond tolerance (see above) *)
  improvements : finding list;  (** current < baseline *)
  missing : string list;
      (** metric-bearing paths in the baseline with no counterpart (or
          a non-numeric counterpart) in the current report *)
  invalid : string list;  (** paths where either side is NaN *)
}

val check :
  ?tolerance:float ->
  ?alloc_tolerance:float ->
  ?alloc_floor_bytes:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  outcome
(** [tolerance] (default [0.02]) is the fractional slack for cycle
    metrics; [alloc_tolerance] (default [0.5]) and [alloc_floor_bytes]
    (default [65536.]) bound allocation metrics — both the ratio and
    the absolute floor must be exceeded to fail. *)

val ok : outcome -> bool
(** No regressions, nothing missing, nothing invalid. Comparing a
    report against itself is always [ok]. *)

val pp : outcome Fmt.t
(** Summary line, then one line per regression (with the relative and
    absolute delta; absolute only when the baseline is zero), per
    missing path, per invalid path, and per improvement. *)
