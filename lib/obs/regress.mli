(** Benchmark regression gate: diff two JSON reports on cycle metrics.

    Walks a baseline and a current report in lockstep and compares
    every numeric field that measures cycles — a field named [cycles]
    or [cycles_per_iteration], one whose name ends in [_cycles], or any
    numeric leaf directly under such a field (the A2/A3 tables nest
    per-program counts under a ["cycles"] object). A comparison fails
    when the current value exceeds the baseline by more than the
    tolerance (default 2%); a cycle-bearing subtree present in the
    baseline but absent from the current report also fails, so schema
    drift cannot silently shrink coverage. Timing fields are never
    cycle-named, so reports generated with [--deterministic] gate
    cleanly. *)

type finding = {
  path : string;  (** JSON path, e.g. [E5_figure8_runtime[2].base_cycles] *)
  baseline : float;
  current : float;
}

val ratio : finding -> float
(** [current /. baseline]; [infinity] when the baseline is zero and the
    current value positive, [1.0] when both are zero. *)

type outcome = {
  compared : int;  (** cycle metrics compared *)
  regressions : finding list;  (** current > baseline * (1 + tolerance) *)
  improvements : finding list;  (** current < baseline *)
  missing : string list;
      (** cycle-bearing paths in the baseline with no counterpart (or a
          non-numeric counterpart) in the current report *)
}

val check :
  ?tolerance:float -> baseline:Json.t -> current:Json.t -> unit -> outcome
(** [tolerance] (default [0.02]) is the fractional slack before a
    larger current value counts as a regression. *)

val ok : outcome -> bool
(** No regressions and nothing missing. Comparing a report against
    itself is always [ok]. *)

val pp : outcome Fmt.t
(** Summary line, then one line per regression (with percentages), per
    missing path, and per improvement. *)
