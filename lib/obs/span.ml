type t = { name : string; seconds : float; children : t list }

let now () = Unix.gettimeofday ()

(* Per-domain stack of open frames. Each frame accumulates the child
   spans finished while it was the innermost open span; [time] pushes a
   frame, runs the thunk, pops the frame and — when another frame is
   still open — records the finished span as that parent's child. The
   stack is domain-local so the batch driver's workers never interleave
   each other's frames. *)
let frames : t list ref list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let time name f =
  let stack = Domain.DLS.get frames in
  let frame = ref [] in
  stack := frame :: !stack;
  let t0 = now () in
  let finish () =
    let dt = now () -. t0 in
    let children = List.rev !frame in
    (match !stack with
    | top :: rest when top == frame -> stack := rest
    | _ -> () (* an escaped effect unbalanced the stack; don't corrupt it *));
    let span = { name; seconds = dt; children } in
    (match !stack with
    | parent :: _ -> parent := span :: !parent
    | [] -> ());
    span
  in
  match f () with
  | v -> (v, finish ())
  | exception e ->
      ignore (finish ());
      raise e

let total spans = List.fold_left (fun acc s -> acc +. s.seconds) 0.0 spans

let find spans name =
  List.find_opt (fun s -> String.equal s.name name) spans

(* Scrubbing is recursive: a span opened inside a scrubbed parent must
   not leak wall-clock through its children, or [--deterministic]
   reports stop being byte-stable across runs. *)
let rec scrub spans =
  List.map (fun s -> { s with seconds = 0.0; children = scrub s.children }) spans

let rec to_json spans =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           ([ ("name", Json.String s.name); ("seconds", Json.Float s.seconds) ]
           @
           match s.children with
           | [] -> []
           | children -> [ ("children", to_json children) ]))
       spans)

let pp ppf s = Fmt.pf ppf "%s: %.6fs" s.name s.seconds
