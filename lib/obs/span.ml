type t = { name : string; seconds : float }

let time name f =
  let t0 = Sys.time () in
  let v = f () in
  (v, { name; seconds = Sys.time () -. t0 })

let total spans = List.fold_left (fun acc s -> acc +. s.seconds) 0.0 spans

let find spans name =
  List.find_opt (fun s -> String.equal s.name name) spans

let to_json spans =
  Json.List
    (List.map
       (fun s ->
         Json.Obj [ ("name", Json.String s.name); ("seconds", Json.Float s.seconds) ])
       spans)

let pp ppf s = Fmt.pf ppf "%s: %.6fs" s.name s.seconds
