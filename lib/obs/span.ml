type t = { name : string; seconds : float }

let now () = Unix.gettimeofday ()

let time name f =
  let t0 = now () in
  let v = f () in
  (v, { name; seconds = now () -. t0 })

let total spans = List.fold_left (fun acc s -> acc +. s.seconds) 0.0 spans

let find spans name =
  List.find_opt (fun s -> String.equal s.name name) spans

let scrub spans = List.map (fun s -> { s with seconds = 0.0 }) spans

let to_json spans =
  Json.List
    (List.map
       (fun s ->
         Json.Obj [ ("name", Json.String s.name); ("seconds", Json.Float s.seconds) ])
       spans)

let pp ppf s = Fmt.pf ppf "%s: %.6fs" s.name s.seconds
