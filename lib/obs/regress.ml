type finding = { path : string; baseline : float; current : float }

let ratio f =
  if f.baseline <> 0.0 then f.current /. f.baseline
  else if f.current = 0.0 then 1.0
  else infinity

type outcome = {
  compared : int;
  regressions : finding list;
  improvements : finding list;
  missing : string list;
}

let is_cycle_key k =
  String.equal k "cycles"
  || String.equal k "cycles_per_iteration"
  || (String.length k > 7
     && String.equal (String.sub k (String.length k - 7) 7) "_cycles")

let number = function
  | Json.Int n -> Some (float_of_int n)
  | Json.Float f -> Some f
  | Json.Null | Json.Bool _ | Json.String _ | Json.List _ | Json.Obj _ -> None

(* Does this baseline subtree hold any cycle metric? Decides whether a
   key missing from the current report matters to the gate. *)
let rec bears_cycles in_cycles = function
  | (Json.Int _ | Json.Float _) as j -> in_cycles && number j <> None
  | Json.Obj fields ->
      List.exists
        (fun (k, v) -> bears_cycles (in_cycles || is_cycle_key k) v)
        fields
  | Json.List items -> List.exists (bears_cycles in_cycles) items
  | Json.Null | Json.Bool _ | Json.String _ -> false

type state = {
  mutable n : int;
  mutable regs : finding list;
  mutable imps : finding list;
  mutable miss : string list;
}

let check ?(tolerance = 0.02) ~baseline ~current () =
  let st = { n = 0; regs = []; imps = []; miss = [] } in
  let lost path b in_cycles =
    if bears_cycles in_cycles b then st.miss <- path :: st.miss
  in
  let rec walk path in_cycles b c =
    match (b, c) with
    | (Json.Int _ | Json.Float _), _ when in_cycles -> (
        match (number b, number c) with
        | Some bv, Some cv ->
            st.n <- st.n + 1;
            let f = { path; baseline = bv; current = cv } in
            if cv > bv *. (1.0 +. tolerance) then st.regs <- f :: st.regs
            else if cv < bv then st.imps <- f :: st.imps
        | Some _, None -> st.miss <- path :: st.miss
        | None, _ -> ())
    | Json.Obj bf, Json.Obj cf ->
        List.iter
          (fun (k, bv) ->
            let kpath = if path = "" then k else path ^ "." ^ k in
            let inc = in_cycles || is_cycle_key k in
            match List.assoc_opt k cf with
            | Some cv -> walk kpath inc bv cv
            | None -> lost kpath bv inc)
          bf
    | Json.List bl, Json.List cl ->
        List.iteri
          (fun i bv ->
            let ipath = Fmt.str "%s[%d]" path i in
            match List.nth_opt cl i with
            | Some cv -> walk ipath in_cycles bv cv
            | None -> lost ipath bv in_cycles)
          bl
    | b, _ -> lost path b in_cycles
  in
  walk "" false baseline current;
  {
    compared = st.n;
    regressions = List.rev st.regs;
    improvements = List.rev st.imps;
    missing = List.rev st.miss;
  }

let ok o = o.regressions = [] && o.missing = []

let pp_pct ppf f =
  if ratio f = infinity then Fmt.string ppf "from 0"
  else Fmt.pf ppf "%+.1f%%" (100.0 *. (ratio f -. 1.0))

let pp ppf o =
  Fmt.pf ppf
    "regression check: %d cycle metric(s) compared, %d regression(s), %d \
     improvement(s), %d missing@."
    o.compared
    (List.length o.regressions)
    (List.length o.improvements)
    (List.length o.missing);
  List.iter
    (fun f ->
      Fmt.pf ppf "  REGRESSION %s: %g -> %g (%a)@." f.path f.baseline f.current
        pp_pct f)
    o.regressions;
  List.iter
    (fun p -> Fmt.pf ppf "  MISSING %s (in baseline, not in current)@." p)
    o.missing;
  List.iter
    (fun f ->
      Fmt.pf ppf "  improved %s: %g -> %g (%a)@." f.path f.baseline f.current
        pp_pct f)
    o.improvements
