type kind = Cycles | Alloc

let pp_kind ppf = function
  | Cycles -> Fmt.string ppf "cycles"
  | Alloc -> Fmt.string ppf "alloc"

type finding = {
  path : string;
  kind : kind;
  baseline : float;
  current : float;
}

(* Guarded against the degenerate baselines that used to poison the
   ratio: a zero baseline yields [infinity] only when the current value
   actually grew, and a NaN anywhere yields [nan] (the walk never
   produces findings from NaN inputs — they land in [invalid]). *)
let ratio f =
  if Float.is_nan f.baseline || Float.is_nan f.current then Float.nan
  else if f.baseline <> 0.0 then f.current /. f.baseline
  else if f.current = 0.0 then 1.0
  else infinity

let delta f = f.current -. f.baseline

type outcome = {
  compared : int;
  regressions : finding list;
  improvements : finding list;
  missing : string list;
  invalid : string list;
}

let is_cycle_key k =
  String.equal k "cycles"
  || String.equal k "cycles_per_iteration"
  || (String.length k > 7
     && String.equal (String.sub k (String.length k - 7) 7) "_cycles")

(* Allocation metrics ride the same walk: any field named
   [alloc_bytes]/[allocated_bytes] or ending in [_bytes] opens an
   allocation subtree, compared with its own (looser) tolerance and an
   absolute noise floor — byte counts are deterministic for one binary
   but drift with compiler versions, and tiny phases must not gate on
   ratio alone. *)
let is_alloc_key k =
  String.equal k "alloc_bytes"
  || String.equal k "allocated_bytes"
  || (String.length k > 6
     && String.equal (String.sub k (String.length k - 6) 6) "_bytes")

let key_kind k =
  if is_cycle_key k then Some Cycles
  else if is_alloc_key k then Some Alloc
  else None

let number = function
  | Json.Int n -> Some (float_of_int n)
  | Json.Float f -> Some f
  | Json.Null | Json.Bool _ | Json.String _ | Json.List _ | Json.Obj _ -> None

(* Does this baseline subtree hold any gated metric? Decides whether a
   key missing from the current report matters to the gate. *)
let rec bears_metric in_metric = function
  | (Json.Int _ | Json.Float _) as j -> in_metric <> None && number j <> None
  | Json.Obj fields ->
      List.exists
        (fun (k, v) ->
          bears_metric
            (match in_metric with Some _ as m -> m | None -> key_kind k)
            v)
        fields
  | Json.List items -> List.exists (bears_metric in_metric) items
  | Json.Null | Json.Bool _ | Json.String _ -> false

type state = {
  mutable n : int;
  mutable regs : finding list;
  mutable imps : finding list;
  mutable miss : string list;
  mutable inv : string list;
}

let check ?(tolerance = 0.02) ?(alloc_tolerance = 0.5)
    ?(alloc_floor_bytes = 65536.0) ~baseline ~current () =
  let st = { n = 0; regs = []; imps = []; miss = []; inv = [] } in
  let lost path b in_metric =
    if bears_metric in_metric b then st.miss <- path :: st.miss
  in
  let worse kind bv cv =
    match kind with
    | Cycles ->
        if bv = 0.0 then cv > 0.0 (* zero baseline: compare absolutely *)
        else cv > bv *. (1.0 +. tolerance)
    | Alloc ->
        (* Both the ratio and the absolute floor must be exceeded: a
           4 kB phase doubling is noise, a 40 MB pipeline doubling is a
           regression. A zero baseline falls back to the floor alone. *)
        let ratio_worse =
          if bv = 0.0 then cv > 0.0 else cv > bv *. (1.0 +. alloc_tolerance)
        in
        ratio_worse && cv -. bv > alloc_floor_bytes
  in
  let rec walk path in_metric b c =
    match (b, c) with
    | (Json.Int _ | Json.Float _), _ when in_metric <> None -> (
        let kind = Option.get in_metric in
        match (number b, number c) with
        | Some bv, Some cv ->
            if Float.is_nan bv || Float.is_nan cv then
              (* NaN compares false with everything; without this guard
                 a NaN baseline silently waves every current value
                 through (and vice versa). *)
              st.inv <- path :: st.inv
            else begin
              st.n <- st.n + 1;
              let f = { path; kind; baseline = bv; current = cv } in
              if worse kind bv cv then st.regs <- f :: st.regs
              else if cv < bv then st.imps <- f :: st.imps
            end
        | Some _, None -> st.miss <- path :: st.miss
        | None, _ -> ())
    | Json.Obj bf, Json.Obj cf ->
        List.iter
          (fun (k, bv) ->
            let kpath = if path = "" then k else path ^ "." ^ k in
            let inm =
              match in_metric with Some _ as m -> m | None -> key_kind k
            in
            match List.assoc_opt k cf with
            | Some cv -> walk kpath inm bv cv
            | None -> lost kpath bv inm)
          bf
    | Json.List bl, Json.List cl ->
        List.iteri
          (fun i bv ->
            let ipath = Fmt.str "%s[%d]" path i in
            match List.nth_opt cl i with
            | Some cv -> walk ipath in_metric bv cv
            | None -> lost ipath bv in_metric)
          bl
    | b, _ -> lost path b in_metric
  in
  walk "" None baseline current;
  {
    compared = st.n;
    regressions = List.rev st.regs;
    improvements = List.rev st.imps;
    missing = List.rev st.miss;
    invalid = List.rev st.inv;
  }

let ok o = o.regressions = [] && o.missing = [] && o.invalid = []

(* A zero or degenerate baseline has no meaningful ratio; print the
   absolute delta instead so the failure message stays informative. *)
let pp_pct ppf f =
  let r = ratio f in
  if Float.is_nan r then Fmt.string ppf "NaN"
  else if r = infinity then Fmt.pf ppf "%+g absolute (baseline 0)" (delta f)
  else Fmt.pf ppf "%+.1f%% (%+g)" (100.0 *. (r -. 1.0)) (delta f)

let pp ppf o =
  Fmt.pf ppf
    "regression check: %d metric(s) compared, %d regression(s), %d \
     improvement(s), %d missing, %d invalid@."
    o.compared
    (List.length o.regressions)
    (List.length o.improvements)
    (List.length o.missing)
    (List.length o.invalid);
  List.iter
    (fun f ->
      Fmt.pf ppf "  REGRESSION [%a] %s: %g -> %g (%a)@." pp_kind f.kind f.path
        f.baseline f.current pp_pct f)
    o.regressions;
  List.iter
    (fun p -> Fmt.pf ppf "  MISSING %s (in baseline, not in current)@." p)
    o.missing;
  List.iter
    (fun p -> Fmt.pf ppf "  INVALID %s (NaN baseline or current)@." p)
    o.invalid;
  List.iter
    (fun f ->
      Fmt.pf ppf "  improved [%a] %s: %g -> %g (%a)@." pp_kind f.kind f.path
        f.baseline f.current pp_pct f)
    o.improvements
