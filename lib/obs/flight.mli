(** Per-domain flight recorder.

    A fixed-size ring buffer ({!capacity} entries) of the most recent
    observability events. Recording is always cheap — one array store,
    no locks — and the ring is domain-local, so the batch driver's
    workers keep independent histories and a crashing task can dump the
    last events that led up to the failure without touching the other
    domains. The driver pool's fault-isolation path dumps it on crash
    and timeout; everything else just keeps feeding it. *)

type entry = { at : float;  (** wall clock of the note *) msg : string }

val capacity : int
(** Default entries retained per ring (older notes are overwritten). *)

type t
(** An explicit ring, independent of the per-domain ones — for callers
    that want a recorder with a chosen capacity or lifetime. *)

val create : ?capacity:int -> unit -> t
(** Fresh empty ring. [capacity] defaults to {!capacity} (64); raises
    [Invalid_argument] when < 1. *)

val capacity_of : t -> int
val note_to : t -> string -> unit
val notef_to : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
val clear_of : t -> unit
val recorded_of : t -> int
val dump_of : t -> entry list

val set_default_capacity : int -> unit
(** Capacity for per-domain rings created after this call (each
    domain's ring materialises lazily on first use). Call at startup —
    e.g. from [gisc --flight-cap] — before anything notes; rings that
    already exist keep their size. Raises [Invalid_argument] when
    < 1. *)

val get_default_capacity : unit -> int
(** Current per-domain default; {!capacity} unless
    {!set_default_capacity} was called. *)

val note : string -> unit
(** Append to this domain's ring. *)

val notef : ('a, Format.formatter, unit, unit) format4 -> 'a
(** [Fmt]-style formatted {!note}. *)

val clear : unit -> unit
(** Empty this domain's ring (e.g. between driver tasks, so a dump
    only shows the failing task's history). *)

val recorded : unit -> int
(** Total notes ever recorded on this domain since the last {!clear} —
    may exceed {!capacity}; the excess has been overwritten. *)

val dump : unit -> entry list
(** The surviving entries of this domain's ring, oldest first. *)

val dump_messages : unit -> string list

val pp_dump : unit Fmt.t
(** Render the ring with timestamps relative to the oldest entry. *)

val sink : unit -> Sink.t
(** A sink that mirrors every event into this domain's ring — tee it
    with the real sink to keep the recorder fed during scheduling. *)
