(** Array-backed binary min-heap.

    The global scheduler keeps its ready candidates here, ordered by the
    paper's rank heuristics, replacing the per-cycle linear rescans of
    the whole node set. Ties must be broken by the comparator itself
    (the scheduler's final [Program_order] arbiter already does), so pop
    order is deterministic regardless of insertion order. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** A fresh empty heap. [cmp a b < 0] means [a] pops before [b]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** The minimum element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val clear : 'a t -> unit
