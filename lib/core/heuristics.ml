open Gis_ddg

type t = {
  d : int array;
  cp : int array;
  estart : int array;
  lstart : int array;
}

(* Issue-to-issue weight of an intra-block edge, mirroring the
   scheduler's availability rule: a flow edge holds the consumer until
   the producer's result is through the pipeline, order edges carry
   only their own delay. *)
let issue_weight ddg src (e : Ddg.edge) =
  match e.Ddg.kind with
  | Ddg.Flow -> Ddg.exec_time ddg src + e.Ddg.delay
  | Ddg.Anti | Ddg.Output | Ddg.Mem -> e.Ddg.delay

let compute ddg =
  let n = Ddg.num_nodes ddg in
  let d = Array.make n 0 in
  let cp = Array.make n 0 in
  for i = 0 to n - 1 do
    cp.(i) <- Ddg.exec_time ddg i
  done;
  (* Intra-block edges always point from a smaller [pos] to a larger
     one, so visiting each block's nodes in reverse position order
     visits every node after its successors (paper: "by visiting I
     after visiting its data dependence successors"). *)
  let visit i =
    let nd = Ddg.node ddg i in
    List.iter
      (fun (e : Ddg.edge) ->
        if (Ddg.node ddg e.Ddg.dst).Ddg.view_node = nd.Ddg.view_node then begin
          d.(i) <- max d.(i) (d.(e.Ddg.dst) + e.Ddg.delay);
          cp.(i) <-
            max cp.(i) (cp.(e.Ddg.dst) + e.Ddg.delay + Ddg.exec_time ddg i)
        end)
      (Ddg.succs ddg i)
  in
  (* Nodes of a block are returned in position order; iterate over all
     blocks' lists reversed. *)
  let rec each_view v =
    if v >= 0 then begin
      List.iter visit (List.rev (Ddg.nodes_of_view_node ddg v));
      each_view (v - 1)
    end
  in
  (* View nodes are 0..k-1; find k by probing node view indices. *)
  let max_view =
    let rec go i acc =
      if i >= n then acc else go (i + 1) (max acc (Ddg.node ddg i).Ddg.view_node)
    in
    go 0 (-1)
  in
  each_view max_view;
  (* Estart/Lstart in issue-cycle space, per block (paper Section 5.2's
     critical-path reasoning made explicit): Estart is the earliest
     issue offset the block's dependences allow, tail the longest
     weighted path still ahead, and Lstart = span - tail the latest
     issue offset that keeps the block at its dependence-height span.
     Slack (Lstart - Estart) is 0 exactly on the critical path. *)
  let estart = Array.make n 0 in
  let tail = Array.make n 0 in
  let visit_tail i =
    let nd = Ddg.node ddg i in
    List.iter
      (fun (e : Ddg.edge) ->
        if (Ddg.node ddg e.Ddg.dst).Ddg.view_node = nd.Ddg.view_node then
          tail.(i) <- max tail.(i) (issue_weight ddg i e + tail.(e.Ddg.dst)))
      (Ddg.succs ddg i)
  in
  let visit_estart i =
    let nd = Ddg.node ddg i in
    List.iter
      (fun (e : Ddg.edge) ->
        if (Ddg.node ddg e.Ddg.dst).Ddg.view_node = nd.Ddg.view_node then
          estart.(e.Ddg.dst) <-
            max estart.(e.Ddg.dst) (estart.(i) + issue_weight ddg i e))
      (Ddg.succs ddg i)
  in
  let lstart = Array.make n 0 in
  let rec each_view_se v =
    if v >= 0 then begin
      let nodes = Ddg.nodes_of_view_node ddg v in
      List.iter visit_tail (List.rev nodes);
      List.iter visit_estart nodes;
      let span =
        List.fold_left (fun acc i -> max acc (estart.(i) + tail.(i))) 0 nodes
      in
      List.iter (fun i -> lstart.(i) <- span - tail.(i)) nodes;
      each_view_se (v - 1)
    end
  in
  each_view_se max_view;
  { d; cp; estart; lstart }

let d t i = t.d.(i)
let cp t i = t.cp.(i)
let estart t i = t.estart.(i)
let lstart t i = t.lstart.(i)
let slack t i = t.lstart.(i) - t.estart.(i)

let class_pressure live cls =
  Gis_ir.Reg.Set.fold
    (fun r acc -> if r.Gis_ir.Reg.cls = cls then acc + 1 else acc)
    live 0

let import_pressure ~live ~budget inst =
  List.fold_left
    (fun acc r ->
      if Gis_ir.Reg.Set.mem r live then acc
      else
        let n = class_pressure live r.Gis_ir.Reg.cls in
        let b = budget r.Gis_ir.Reg.cls in
        if n >= b then acc + 1 + (n - b) else acc)
    0
    (Gis_ir.Instr.defs inst)

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  Array.iteri (fun i dv -> Fmt.pf ppf "node %d: D=%d CP=%d@," i dv t.cp.(i)) t.d;
  Fmt.pf ppf "@]"
