(** Scheduling configuration.

    The defaults reproduce the prototype described in the paper's
    Section 6: only "small" reducible regions are scheduled (at most 64
    blocks and 256 instructions), two nesting levels, loops of at most 4
    blocks are unrolled once before and rotated after the first global
    pass. *)

(** How far code may move (paper Section 5.1, "two levels of
    scheduling"). [Local] disables interblock motion entirely — the BASE
    compiler configuration of Section 6, which still runs the basic
    block scheduler. *)
type level = Local | Useful | Speculative

val pp_level : level Fmt.t

type t = {
  level : level;
  rename : bool;
      (** rename the destination of a blocked speculative motion when
          the use-def chains prove it safe (Figure 6's cr6 -> cr5) *)
  prune_transitive : bool;  (** drop timing-implied dependence edges *)
  rules : Priority_rule.t list;  (** heuristic order, Section 5.2 *)
  max_region_blocks : int;
  max_region_instrs : int;
  max_nesting_levels : int;
      (** only regions within this many levels of the innermost are
          scheduled (the paper uses 2) *)
  unroll_small_loops : bool;  (** unroll loops of <= [small_loop_blocks] once *)
  rotate_small_loops : bool;  (** rotate them after the first global pass *)
  small_loop_blocks : int;
  local_post_pass : bool;
      (** run the basic block scheduler after global scheduling *)
  disambiguate : bool;
      (** consult the whole-procedure symbolic address analysis
          ({!Gis_analysis.Symaddr}) when building dependence graphs, so
          that provably disjoint memory accesses need no Mem edge. On
          by default; [gisc --no-disambig] turns it off, leaving only
          the syntactic same-base/same-version rule — the off
          configuration of the A1 disambiguation experiment. Every
          pruned edge is independently re-proved by the checker
          ([Gis_check.Addrcheck]). *)
  split_webs : bool;
      (** run the register-web renaming pre-pass of Section 4.2 before
          scheduling (off by default so that the published Figure 5/6
          register names reproduce exactly) *)
  max_speculation_degree : int;
      (** how many branches a speculative motion may gamble on
          (Definition 7). The paper's prototype supports 1; larger
          values enable the "more aggressive speculative scheduling" of
          Section 7. *)
  profile : (Gis_ir.Label.t -> int) option;
      (** dynamic execution count per block, e.g. from
          {!val:Gis_sim} profiling. When present, speculative candidates
          whose probability of executing (relative to the target block)
          falls below {!field-min_speculation_probability} are not
          moved. *)
  min_speculation_probability : float;
  local_machine : Gis_machine.Machine.t option;
      (** machine description for the local post-pass; the paper gives
          the basic block scheduler "a more detailed model of the
          machine" (Section 5.1), e.g. {!Gis_machine.Machine.rs6k_detailed}.
          [None] reuses the global machine. *)
  allow_duplication : bool;
      (** enable the restricted form of "scheduling with duplication"
          (Definition 6; Section 7 future work): an instruction may move
          from a join block [B] into a predecessor [A] that does not
          dominate it, with fresh copies placed at the end of every
          other predecessor of [B]. Off by default — the paper's
          prototype forbids duplication. *)
  pressure_aware : bool;
      (** prepend a register-pressure rank rule (see
          {!Gis_core.Priority_rule.t}) that demotes interblock motion
          candidates whose import would push the live-register count of
          the target block past the machine's register file. Off by
          default so the published golden schedules reproduce exactly. *)
  regalloc : bool;
      (** run the linear-scan register allocator as a pipeline phase
          after scheduling, rewriting symbolic registers to the
          machine's physical file and inserting spill code. Off by
          default — the paper schedules symbolic code and leaves
          allocation to the XL backend. *)
  regs : int option;
      (** override the GPR/FPR file size the allocator (and the
          pressure heuristic) target; [None] uses the machine's own
          register counts. *)
  obs : Gis_obs.Sink.t;
      (** telemetry sink for structured scheduler decision events
          (candidates, motions, renames, safety rejections, skipped
          regions, phase timings). {!Gis_obs.Sink.null} by default —
          one dropped closure call per event. *)
  prov : Gis_obs.Provenance.t option;
      (** motion provenance table. When set, the pipeline seeds every
          original instruction, the passes record motions/copies/spill
          code into it, and the final CFG is indexed on completion
          ([gisc explain] renders it). [None] by default — recording is
          a no-op and schedules are byte-identical (pinned test). *)
  prof : Gis_obs.Prof.t option;
      (** self-profiler. When set, the pipeline records one tree per
          {!Pipeline.run} — a ["pipeline"] root with one child per
          phase and one grandchild per compiled region — carrying wall
          clock, allocation, and GC-collection deltas under an exact
          accounting identity ([gisc profile] renders and verifies it).
          [None] by default: recording is a single pattern match and
          schedules are byte-identical (pinned test). *)
  check :
    (stage:string -> pre:Gis_ir.Cfg.t -> post:Gis_ir.Cfg.t -> unit) option;
      (** per-stage verification hook. When set, the pipeline snapshots
          the CFG before each executed stage ([unroll], [global-pass1],
          [rotate], [global-pass2], [local], [regalloc]) and calls the
          hook with the pre/post pair after the stage runs —
          [Gis_check.Check.hook] is the intended callee. [None] by
          default: no snapshots, no cost. *)
}

val default : t
(** [Speculative] scheduling with all the paper's settings. *)

val base : t
(** The paper's BASE compiler: local scheduling only. *)

val useful_only : t
val speculative : t

val pp : t Fmt.t
