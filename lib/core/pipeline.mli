(** The complete compilation flow of the paper's prototype (Section 6):

    + certain inner loops are unrolled;
    + global scheduling is applied the first time, to inner regions only;
    + certain inner loops are rotated;
    + global scheduling is applied the second time, to the rotated inner
      loops and the outer regions;
    + the basic block scheduler runs over every block (Section 5.1).

    With [Config.base] only the last step runs — that is the paper's
    BASE compiler, whose own local scheduling the global results are
    measured against. *)

type stats = {
  unrolled : int;
  rotated : int;
  pass1 : Global_sched.region_report list;
  pass2 : Global_sched.region_report list;
  regalloc : Gis_regalloc.Regalloc.t option;
      (** allocation result when [Config.regalloc] is set; [None]
          otherwise. On [Error] from the allocator, {!run} raises
          [Failure] — a register file too small to spill into is a task
          failure, not a silent fallback. *)
  phases : Gis_obs.Span.t list;
      (** CPU time per pipeline phase, in execution order. Always
          contains the five phases of {!phase_names} (a disabled phase
          reports the cost of deciding to skip it, ~0); a ["webs"] span
          is prepended when the Section 4.2 pre-pass runs and a
          ["regalloc"] span appended when allocation runs. *)
}

val phase_names : string list
(** The five standard phases: ["unroll"], ["global-pass1"], ["rotate"],
    ["global-pass2"], ["local"]. *)

val moves : stats -> Global_sched.move list
(** All interblock motions across both passes. *)

val seconds : stats -> float
(** Total CPU time spent in scheduling — the sum of all phase spans
    (what the old [stats.seconds] field reported). *)

val run :
  Gis_machine.Machine.t -> Config.t -> Gis_ir.Cfg.t -> stats
(** Transform the procedure in place. Every phase duration is also
    emitted as a [Phase_finished] event on [config.obs]. With
    [config.prof] set, the whole run is recorded as one ["pipeline"]
    profile tree — phases as children, compiled regions as
    grandchildren — whose wall/allocation deltas satisfy the exact
    accounting identity ({!Gis_obs.Prof.identity_ok}). *)
