(** Loop unrolling (paper Section 6, preparation step).

    "Inner regions that represent loops with up to 4 basic blocks are
    unrolled once (i.e., after unrolling they include two iterations of
    a loop instead of one)." The copy keeps both exit tests — the
    transformation is pure block duplication with back edges routed
    through the copy, so it is valid for any loop shape, counted or
    not. *)

val unroll_once :
  ?prov:Gis_obs.Provenance.t -> Gis_ir.Cfg.t -> Gis_analysis.Loops.loop -> unit
(** Duplicate the loop body in place: the original back edges are
    redirected to a fresh copy of the loop, whose own back edges return
    to the original header. Raises [Invalid_argument] if the loop
    header's label generates a clash (never happens with {!Gis_ir.Label.fresh}). *)

val unroll_small_inner_loops :
  ?prov:Gis_obs.Provenance.t -> max_blocks:int -> Gis_ir.Cfg.t -> int
(** Unroll every innermost loop with at most [max_blocks] blocks;
    returns how many loops were unrolled. Loop analysis is recomputed
    internally after each unroll. With [prov], every fresh copy is
    recorded one copy generation deeper than its source. *)
