open Gis_util
open Gis_ir
open Gis_machine
open Gis_analysis
open Gis_ddg

type move = {
  uid : int;
  from_label : Label.t;
  to_label : Label.t;
  speculative : bool;
  renamed : (Reg.t * Reg.t) option;
  duplicated_into : Label.t list;
      (** blocks that received a fresh copy of the instruction — the
          restricted "scheduling with duplication" of Definition 6 *)
}

let pp_move ppf m =
  Fmt.pf ppf "%d: %a -> %a%s%a%a" m.uid Label.pp m.from_label Label.pp
    m.to_label
    (if m.speculative then " (speculative)" else "")
    Fmt.(
      option (fun ppf (a, b) -> pf ppf " [rename %a->%a]" Reg.pp a Reg.pp b))
    m.renamed
    Fmt.(
      list (fun ppf l -> pf ppf " [copy in %a]" Label.pp l))
    m.duplicated_into

type blocked = {
  blocked_uid : int;
  reason : [ `Live_on_exit of Reg.t | `Rename_unsafe of Reg.t ];
}

type region_report = {
  region_id : int;
  nesting : int;
  scheduled : bool;
  skip_reason : string option;
  moves : move list;
  blocked : blocked list;
}

let pp_region_report ppf r =
  Fmt.pf ppf "@[<v>region %d (nesting %d): %s%a%a@]" r.region_id r.nesting
    (if r.scheduled then "scheduled" else "skipped")
    Fmt.(option (fun ppf s -> pf ppf " (%s)" s))
    r.skip_reason
    Fmt.(list ~sep:(any "") (fun ppf m -> pf ppf "@,  move %a" pp_move m))
    r.moves

let src = Logs.Src.create "gis.global" ~doc:"global instruction scheduler"

module Log = (val Logs.src_log src : Logs.LOG)

(* Process-wide metrics (no-ops until Gis_obs.Metrics.enable). *)
let m_moves_useful = Gis_obs.Metrics.counter "sched.moves_useful_total"

let m_moves_speculative =
  Gis_obs.Metrics.counter "sched.moves_speculative_total"

let m_renames = Gis_obs.Metrics.counter "sched.renames_total"
let m_dup_copies = Gis_obs.Metrics.counter "sched.duplication_copies_total"
let m_blocked = Gis_obs.Metrics.counter "sched.blocked_motions_total"
let m_regions_scheduled = Gis_obs.Metrics.counter "sched.regions_scheduled_total"
let m_regions_skipped = Gis_obs.Metrics.counter "sched.regions_skipped_total"

(* One counter per Section 5.2 rank rule, bumped with the rule that
   actually separated the winner from the best runner-up whenever a
   ready-queue pick had competition; the order fallback (every rule
   tied) gets its own counter. Which rules do real work is the signal
   the ROADMAP's rank-auto-tuning item will optimize against. *)
let m_rule_decides =
  List.map
    (fun r ->
      ( r,
        Gis_obs.Metrics.counter
          ("priority.rule_decides_total." ^ Priority_rule.slug r) ))
    Priority_rule.all

let m_rule_order_fallback =
  Gis_obs.Metrics.counter "priority.rule_decides_total.order-fallback"

let tally_decision ~rules winner runner_up =
  if Gis_obs.Metrics.is_enabled () then
    match Priority.deciding_rule ~rules winner runner_up with
    | Some r -> Gis_obs.Metrics.incr (List.assoc r m_rule_decides)
    | None -> Gis_obs.Metrics.incr m_rule_order_fallback

let blocked_reason = function
  | `Live_on_exit r -> Fmt.str "%a live on exit" Reg.pp r
  | `Rename_unsafe r -> Fmt.str "%a not renameable" Reg.pp r

(* ------------------------------------------------------------------ *)

let region_too_big config cfg (region : Regions.region) =
  let open Ints in
  let blocks = Int_set.cardinal region.Regions.own_blocks in
  let instrs =
    Int_set.fold
      (fun b acc -> acc + Block.instr_count (Cfg.block cfg b))
      region.Regions.own_blocks 0
  in
  if blocks > config.Config.max_region_blocks then
    Some (Fmt.str "region has %d blocks (limit %d)" blocks config.Config.max_region_blocks)
  else if instrs > config.Config.max_region_instrs then
    Some (Fmt.str "region has %d instructions (limit %d)" instrs config.Config.max_region_instrs)
  else None

(* Scheduling state for one region. *)
type state = {
  cfg : Cfg.t;
  machine : Machine.t;
  config : Config.t;
  view : Regions.view;
  ddg : Ddg.t;
  dom : Dominance.t;
  post : Dominance.Post.post;
  cdg : Cdg.t;
  heur : Heuristics.t;
  order_of : int array;  (** ddg node -> original program order *)
  home : int array;  (** ddg node -> current view node *)
  issue : int array;  (** ddg node -> issue cycle within its block pass *)
  done_ : bool array;  (** ddg node -> dependences from it are fulfilled *)
  current : Instr.t option array;  (** possibly renamed instruction *)
  mutable liveness : Liveness.t option;
      (** computed lazily and invalidated on motion — only the
          speculative safety rule reads it, so useful-only scheduling
          never pays for it, and a burst of motions between two safety
          checks costs one recomputation, not one per motion *)
  mutable reaching : Reaching.t option;
      (** computed lazily — only rename-safety checks need it *)
  mutable moves : move list;
  mutable blocked_log : blocked list;
  pending_copies : (int, Instr.t list) Hashtbl.t;
      (** copies destined for blocks whose own pass has not run yet *)
  mutable processed : Ints.Int_set.t;  (** view nodes already scheduled *)
}

let emit st e = st.config.Config.obs.Gis_obs.Sink.emit e

let view_label st v =
  match st.view.Regions.nodes.(v) with
  | Regions.Block b -> Some (Cfg.block st.cfg b).Block.label
  | Regions.Inner_loop _ -> None

(* Liveness and reaching definitions go stale whenever an instruction
   moves; mark them dirty and recompute on the next read instead of
   recomputing eagerly after every motion. *)
let invalidate_dataflow st =
  st.liveness <- None;
  st.reaching <- None

let liveness st =
  match st.liveness with
  | Some l -> l
  | None ->
      let l = Liveness.compute st.cfg in
      st.liveness <- Some l;
      l

let reaching st =
  match st.reaching with
  | Some r -> r
  | None ->
      let r = Reaching.compute st.cfg in
      st.reaching <- Some r;
      r

let make_state ?sym machine config cfg regions view =
  let ddg = Ddg.build ?sym cfg machine regions view in
  let ddg = if config.Config.prune_transitive then Ddg.prune_transitive ddg else ddg in
  let flow = view.Regions.flow in
  let dom = Dominance.compute flow in
  let post = Dominance.Post.compute flow in
  let cdg = Cdg.compute ~edge_label:view.Regions.edge_label flow in
  let heur = Heuristics.compute ddg in
  let n = Ddg.num_nodes ddg in
  (* "Original program order" (heuristic rule 7) follows the source
     layout, not the topological visit order. *)
  let layout_pos = Hashtbl.create 16 in
  List.iteri (fun pos b -> Hashtbl.replace layout_pos b pos) (Cfg.layout cfg);
  let node_rank v =
    match view.Regions.nodes.(v) with
    | Regions.Block b ->
        Option.value ~default:max_int (Hashtbl.find_opt layout_pos b)
    | Regions.Inner_loop _ -> max_int
  in
  let order_of = Array.make n 0 in
  let counter = ref 0 in
  let by_layout =
    List.sort
      (fun a b -> Int.compare (node_rank a) (node_rank b))
      (List.init flow.Flow.num_nodes Fun.id)
  in
  List.iter
    (fun v ->
      List.iter
        (fun i ->
          order_of.(i) <- !counter;
          incr counter)
        (Ddg.nodes_of_view_node ddg v))
    by_layout;
  {
    cfg;
    machine;
    config;
    view;
    ddg;
    dom;
    post;
    cdg;
    heur;
    order_of;
    home = Array.init n (fun i -> (Ddg.node ddg i).Ddg.view_node);
    issue = Array.make n (-1);
    done_ = Array.make n false;
    current = Array.init n (fun i -> (Ddg.node ddg i).Ddg.instr);
    liveness = None;
    reaching = None;
    moves = [];
    blocked_log = [];
    pending_copies = Hashtbl.create 4;
    processed = Ints.Int_set.empty;
  }

let equiv_blocks st a =
  let flow = st.view.Regions.flow in
  List.filter
    (fun e ->
      e <> a
      && (match st.view.Regions.nodes.(e) with
         | Regions.Block _ -> true
         | Regions.Inner_loop _ -> false)
      && Dominance.equivalent st.dom st.post a e)
    (List.init flow.Flow.num_nodes Fun.id)

(* Speculative candidate blocks (Section 5.1, level 2): blocks within
   [max_speculation_degree] CSPDG edges of [a] or its equivalent blocks
   (Definition 7). With the paper's degree of 1 these are exactly the
   immediate CSPDG successors of U(A). Blocks not dominated by [a]
   would require duplication and are excluded; when a profile is
   available, blocks unlikely to execute are excluded too. *)
let speculative_blocks st a equiv =
  let u_of_a = a :: equiv in
  let max_degree = max 1 st.config.Config.max_speculation_degree in
  let within_degree b =
    List.exists
      (fun s ->
        match Cdg.speculation_degree st.cdg ~src:s ~dst:b with
        | Some d -> d >= 1 && d <= max_degree
        | None -> false)
      u_of_a
  in
  let label_of v =
    match st.view.Regions.nodes.(v) with
    | Regions.Block blk -> Some (Cfg.block st.cfg blk).Block.label
    | Regions.Inner_loop _ -> None
  in
  let likely_enough b =
    match st.config.Config.profile with
    | None -> true
    | Some counts -> (
        match label_of a, label_of b with
        | Some la, Some lb ->
            let ca = counts la and cb = counts lb in
            ca = 0
            || float_of_int cb /. float_of_int ca
               >= st.config.Config.min_speculation_probability
        | None, _ | _, None -> true)
  in
  List.init st.view.Regions.flow.Flow.num_nodes Fun.id
  |> List.filter (fun b ->
         (not (List.mem b u_of_a))
         && (match st.view.Regions.nodes.(b) with
            | Regions.Block _ -> true
            | Regions.Inner_loop _ -> false)
         && Dominance.dominates st.dom a b
         && within_degree b
         && likely_enough b)

(* Join blocks eligible for duplication-based motion into [a]
   (Definition 6, restricted form): [a] is an immediate view predecessor
   of the join [b] but does not dominate it (else the motion would be
   plain useful/speculative); every other predecessor is a plain block
   whose only successor is [b] (so a copy at its end executes exactly
   when [b] would have executed it — never speculatively); and [b] is
   not the region entry, so its view predecessors are the whole story —
   no masked back edge or region-external path sneaks into it. *)
let duplication_blocks st a equiv =
  if not st.config.Config.allow_duplication then []
  else begin
    let flow = st.view.Regions.flow in
    let u_of_a = a :: equiv in
    List.init flow.Flow.num_nodes Fun.id
    |> List.filter (fun b ->
           (not (List.mem b u_of_a))
           && b <> flow.Flow.entry
           && (match st.view.Regions.nodes.(b) with
              | Regions.Block _ -> true
              | Regions.Inner_loop _ -> false)
           && (not (Dominance.dominates st.dom a b))
           && List.mem a flow.Flow.pred.(b)
           && List.for_all
                (fun p ->
                  p = a
                  || (match st.view.Regions.nodes.(p) with
                     | Regions.Block _ -> true
                     | Regions.Inner_loop _ -> false)
                     && flow.Flow.succ.(p) = [ b ]
                     && not (List.mem p flow.Flow.extra_exits))
                flow.Flow.pred.(b))
  end

(* All data sources of a duplication candidate must sit in blocks that
   dominate the join [b]: every path into [b] — through [a] or any other
   predecessor — must have produced the operands the copies read. *)
let duplication_sources_ok st ~join i =
  List.for_all
    (fun (e : Ddg.edge) ->
      Dominance.dominates st.dom st.home.(e.Ddg.src) join)
    (Ddg.preds st.ddg i)

(* ---- speculation safety (Section 5.3) ---- *)

type safety =
  | Safe
  | Safe_with_rename of Reg.t * int list  (** reg to rename, consumer uids *)
  | Unsafe of blocked

let plainly_renameable inst r =
  match Instr.kind inst with
  | Instr.Load { base; update = true; _ } when Reg.equal base r -> false
  | Instr.Store _ -> false
  | Instr.Load _ | Instr.Load_imm _ | Instr.Move _ | Instr.Binop _
  | Instr.Fbinop _ | Instr.Compare _ | Instr.Fcompare _ | Instr.Call _ ->
      true
  | Instr.Branch_cond _ | Instr.Jump _ | Instr.Halt -> false

let check_speculative st ~target_block inst =
  let live = Liveness.live_before_terminator (liveness st) st.cfg target_block in
  let clobbered = List.filter (fun r -> Reg.Set.mem r live) (Instr.defs inst) in
  match clobbered with
  | [] -> Safe
  | [ r ] when st.config.Config.rename && plainly_renameable inst r -> (
      match
        Reaching.sole_def_of_all_uses (reaching st) ~uid:(Instr.uid inst) ~reg:r
      with
      | Some uses -> Safe_with_rename (r, uses)
      | None ->
          Unsafe { blocked_uid = Instr.uid inst; reason = `Rename_unsafe r })
  | r :: _ -> Unsafe { blocked_uid = Instr.uid inst; reason = `Live_on_exit r }

(* Physically move node [i] into [target]: detach from its current
   block, apply renaming if required, append to the target body (final
   order is rewritten when the block pass finishes). *)
let apply_motion st ~node:i ~target_blk ~speculative ~rename ~duplicated_into =
  let inst =
    match st.current.(i) with Some x -> x | None -> assert false
  in
  let from_blk_id =
    match Cfg.owner_of_uid st.cfg (Instr.uid inst) with
    | Some b -> b
    | None -> assert false
  in
  let from_blk = Cfg.block st.cfg from_blk_id in
  ignore (Block.remove_by_uid from_blk ~uid:(Instr.uid inst));
  let inst, renamed =
    match rename with
    | None -> (inst, None)
    | Some (r, consumer_uids) ->
        let r' = Cfg.fresh_reg st.cfg r.Reg.cls in
        let inst' = Instr.rename_def inst ~from_reg:r ~to_reg:r' in
        List.iter
          (fun u ->
            ignore
              (Cfg.update_instr st.cfg ~uid:u
                 ~f:(Instr.rename_uses ~from_reg:r ~to_reg:r'));
            match Ddg.node_of_uid st.ddg u with
            | Some j ->
                st.current.(j) <-
                  Option.map
                    (Instr.rename_uses ~from_reg:r ~to_reg:r')
                    st.current.(j)
            | None -> ())
          consumer_uids;
        (inst', Some (r, r'))
  in
  st.current.(i) <- Some inst;
  Vec.push target_blk.Block.body inst;
  st.moves <-
    {
      uid = Instr.uid inst;
      from_label = from_blk.Block.label;
      to_label = target_blk.Block.label;
      speculative;
      renamed;
      duplicated_into;
    }
    :: st.moves;
  (let uid = Instr.uid inst
   and from_block = from_blk.Block.label
   and to_block = target_blk.Block.label in
   Gis_obs.Metrics.incr
     (if speculative then m_moves_speculative else m_moves_useful);
   emit st
     (if speculative then
        Gis_obs.Sink.Moved_speculative { uid; from_block; to_block }
      else Gis_obs.Sink.Moved_useful { uid; from_block; to_block });
   match renamed with
   | Some (from_reg, to_reg) ->
       Gis_obs.Metrics.incr m_renames;
       emit st (Gis_obs.Sink.Renamed { uid; from_reg; to_reg })
   | None -> ());
  invalidate_dataflow st;
  inst

(* ---- the per-block cycle-by-cycle process (Section 5.1) ---- *)

let schedule_block st a blk_id =
  let blk = Cfg.block st.cfg blk_id in
  let equiv = equiv_blocks st a in
  let useful_homes = a :: equiv in
  let spec =
    match st.config.Config.level with
    | Config.Speculative -> speculative_blocks st a equiv
    | Config.Useful | Config.Local -> []
  in
  let dup =
    match st.config.Config.level with
    | Config.Speculative -> duplication_blocks st a equiv
    | Config.Useful | Config.Local -> []
  in
  let own = List.filter (fun i -> st.home.(i) = a) (List.init (Array.length st.home) Fun.id) in
  let term_node =
    match Ddg.node_of_uid st.ddg (Instr.uid blk.Block.term) with
    | Some i -> i
    | None -> failwith "Global_sched: terminator not in DDG"
  in
  (* Candidate set: own instructions plus importable ones. *)
  let candidate = Array.make (Array.length st.home) false in
  List.iter (fun i -> candidate.(i) <- true) own;
  let import_ok ~spec_src i =
    match st.current.(i) with
    | None -> false
    | Some inst ->
        st.issue.(i) = -1 && (not st.done_.(i))
        &&
        if spec_src then Instr.speculable inst
        else Instr.movable_across_blocks inst
  in
  let consider ~speculative i v =
    candidate.(i) <- true;
    match st.current.(i) with
    | Some inst ->
        emit st
          (Gis_obs.Sink.Candidate_considered
             {
               uid = Instr.uid inst;
               from_block =
                 Option.value ~default:blk.Block.label (view_label st v);
               into_block = blk.Block.label;
               speculative;
             })
    | None -> ()
  in
  (match st.config.Config.level with
  | Config.Local -> ()
  | Config.Useful | Config.Speculative ->
      List.iter
        (fun e ->
          List.iter
            (fun i ->
              if st.home.(i) = e && import_ok ~spec_src:false i then
                consider ~speculative:false i e)
            (Ddg.nodes_of_view_node st.ddg e))
        equiv;
      List.iter
        (fun s ->
          List.iter
            (fun i ->
              if st.home.(i) = s && import_ok ~spec_src:true i then
                consider ~speculative:true i s)
            (Ddg.nodes_of_view_node st.ddg s))
        spec;
      List.iter
        (fun d ->
          List.iter
            (fun i ->
              if
                st.home.(i) = d
                && import_ok ~spec_src:true i
                && duplication_sources_ok st ~join:d i
              then consider ~speculative:true i d)
            (Ddg.nodes_of_view_node st.ddg d))
        dup);
  (* Per-candidate dependence bookkeeping. A candidate whose
     predecessor is neither fulfilled nor a candidate can never become
     ready during this block pass. *)
  let n = Array.length st.home in
  let pending = Array.make n 0 in
  let ready_at = Array.make n 0 in
  let barred = Array.make n false in
  for i = 0 to n - 1 do
    if candidate.(i) && st.issue.(i) = -1 then
      List.iter
        (fun (e : Ddg.edge) ->
          let p = e.Ddg.src in
          if st.done_.(p) then ()
          else if candidate.(p) then pending.(i) <- pending.(i) + 1
          else barred.(i) <- true)
        (Ddg.preds st.ddg i)
  done;
  let emitted = Vec.create () in
  let own_left =
    ref (List.length (List.filter (fun i -> st.issue.(i) = -1) own))
  in
  let cycle = ref 0 in
  let unit_of i =
    match st.current.(i) with
    | Some ins -> Instr.unit_ty ins
    | None -> Instr.Fixed
  in
  let is_own i = st.home.(i) = a in
  let finished = ref false in
  (* Ready-list machinery. Candidates whose dependences are satisfied
     sit in [ready_h], a heap ordered by the paper's rank heuristics
     (rules 1-7, [Program_order] as the strict final arbiter, so pop
     order is a total order independent of insertion order); candidates
     whose operands become available at a known future cycle wait in
     [waiting] keyed by that cycle. A node's [ready_at] is final once
     its last in-flight predecessor has issued, which is exactly when it
     is released, so [waiting] keys never go stale. Without the
     pressure term, [item]'s fields are likewise fixed for the lifetime
     of a heap entry: [home] changes only when a node issues, and
     issued nodes never re-enter a heap. The [pressure] field, however,
     reads the lazy liveness that every motion invalidates, so under
     [pressure_aware] each applied motion must re-key surviving heap
     entries (see [rekey_ready]) or pops would follow stale ranks. *)
  let pressure_budget cls =
    match st.config.Config.regs with
    | Some n when cls <> Reg.Cr -> n
    | Some _ | None -> Machine.regs st.machine cls
  in
  let pressure_of i =
    if (not st.config.Config.pressure_aware) || st.home.(i) = a then 0
    else
      match st.current.(i) with
      | None -> 0
      | Some inst ->
          let live =
            Liveness.live_before_terminator (liveness st) st.cfg blk_id
          in
          Heuristics.import_pressure ~live ~budget:pressure_budget inst
  in
  let item i =
    {
      Priority.node = i;
      useful = List.mem st.home.(i) useful_homes;
      d = Heuristics.d st.heur i;
      cp = Heuristics.cp st.heur i;
      order = st.order_of.(i);
      pressure = pressure_of i;
    }
  in
  let rules =
    if st.config.Config.pressure_aware then
      Priority_rule.Min_pressure :: st.config.Config.rules
    else st.config.Config.rules
  in
  let ready_h = Heap.create ~cmp:(Priority.compare ~rules) in
  let waiting = Heap.create ~cmp:(fun (ra, _) (rb, _) -> Int.compare ra rb) in
  let deferred = ref [] in
  (* An applied motion invalidates the lazy liveness backing the
     pressure term, leaving entries already in the heaps with stale
     rank keys; rebuild every surviving entry with a fresh [item].
     Skipped entirely when pressure-aware scheduling is off: all keys
     are then immutable and pop order is untouched, keeping the golden
     schedules byte-identical. *)
  let rekey_ready () =
    if st.config.Config.pressure_aware then begin
      let rec drain h acc =
        match Heap.pop h with Some x -> drain h (x :: acc) | None -> acc
      in
      List.iter
        (fun it -> Heap.push ready_h (item it.Priority.node))
        (drain ready_h []);
      List.iter
        (fun (r, it) -> Heap.push waiting (r, item it.Priority.node))
        (drain waiting []);
      deferred := List.map (fun it -> item it.Priority.node) !deferred
    end
  in
  let release i =
    if i <> term_node && candidate.(i) && (not barred.(i)) && st.issue.(i) = -1
    then begin
      let it = item i in
      if ready_at.(i) <= !cycle then Heap.push ready_h it
      else Heap.push waiting (ready_at.(i), it)
    end
  in
  for i = 0 to n - 1 do
    if candidate.(i) && st.issue.(i) = -1 && pending.(i) = 0 then release i
  done;
  while not !finished do
    if !cycle > 200_000 then failwith "Global_sched: no progress";
    let slots = Hashtbl.create 3 in
    let slots_left u =
      match Hashtbl.find_opt slots u with
      | Some k -> k
      | None -> Machine.units st.machine u
    in
    let take_slot u = Hashtbl.replace slots u (slots_left u - 1) in
    (* Start-of-cycle: operands newly available this cycle, plus
       candidates shut out by unit saturation last cycle (units never
       free up mid-cycle, so they could not have issued any earlier). *)
    List.iter (Heap.push ready_h) !deferred;
    deferred := [];
    let rec drain_waiting () =
      match Heap.peek waiting with
      | Some (r, _) when r <= !cycle -> (
          match Heap.pop waiting with
          | Some (_, it) ->
              Heap.push ready_h it;
              drain_waiting ()
          | None -> ())
      | Some _ | None -> ()
    in
    drain_waiting ();
    let basic_ready i =
      candidate.(i) && (not barred.(i)) && st.issue.(i) = -1
      && pending.(i) = 0
      && ready_at.(i) <= !cycle
      && slots_left (unit_of i) > 0
    in
    (* The terminator waits for the block's own instructions — and
       yields to ready duplication candidates, which are free to take
       (the join shrinks on every path) but would otherwise lose the
       race against a delay-less jump. Useful/speculative candidates
       get no such priority: their interplay with the terminator is
       exactly the paper's, keeping the Figure 5/6 schedules intact.
       [dup] is almost always empty, so the linear scan is off the hot
       path. *)
    let dup_ready_exists () =
      dup <> []
      && List.exists
           (fun i -> basic_ready i && List.mem st.home.(i) dup)
           (List.init n Fun.id)
    in
    let term_item () =
      if
        !own_left = 1
        && candidate.(term_node)
        && (not barred.(term_node))
        && st.issue.(term_node) = -1
        && pending.(term_node) = 0
        && ready_at.(term_node) <= !cycle
        && slots_left (unit_of term_node) > 0
        && not (dup_ready_exists ())
      then Some (item term_node)
      else None
    in
    (* Best heap entry that can still issue this cycle; entries whose
       unit is saturated move to [deferred] for the next cycle. *)
    let rec pick_ready () =
      match Heap.pop ready_h with
      | None -> None
      | Some it ->
          let i = it.Priority.node in
          if (not candidate.(i)) || st.issue.(i) <> -1 then pick_ready ()
          else if slots_left (unit_of i) > 0 then Some it
          else begin
            deferred := it :: !deferred;
            pick_ready ()
          end
    in
    (* Best still-live entry left in the heap — the tie-break
       counters' runner-up. Popped entries go straight back; the
       comparator is total and deterministic, so re-pushing cannot
       perturb pop order. Only scanned when metrics are on. *)
    let runner_up () =
      if not (Gis_obs.Metrics.is_enabled ()) then None
      else begin
        let popped = ref [] in
        let rec go () =
          match Heap.pop ready_h with
          | None -> None
          | Some it ->
              popped := it :: !popped;
              let i = it.Priority.node in
              if candidate.(i) && st.issue.(i) = -1 then Some it else go ()
        in
        let res = go () in
        List.iter (Heap.push ready_h) !popped;
        res
      end
    in
    let pick () =
      match pick_ready (), term_item () with
      | None, t -> t
      | (Some it as s), None ->
          (match runner_up () with
          | Some other -> tally_decision ~rules it other
          | None -> ());
          s
      | (Some it as s), (Some t as tt) ->
          if Priority.compare ~rules t it < 0 then begin
            tally_decision ~rules t it;
            Heap.push ready_h it;
            tt
          end
          else begin
            tally_decision ~rules it t;
            s
          end
    in
    let rec step () =
      if !finished then ()
      else
        match pick () with
        | None -> ()
        | Some it ->
          let i = it.Priority.node in
          let accept ~was_own =
            st.issue.(i) <- !cycle;
            take_slot (unit_of i);
            Vec.push emitted i;
            if was_own then decr own_left;
            List.iter
              (fun (e : Ddg.edge) ->
                if candidate.(e.Ddg.dst) then begin
                  pending.(e.Ddg.dst) <- pending.(e.Ddg.dst) - 1;
                  let avail =
                    match e.Ddg.kind with
                    | Ddg.Flow ->
                        !cycle + Ddg.exec_time st.ddg i + e.Ddg.delay
                    | Ddg.Anti | Ddg.Output | Ddg.Mem -> !cycle + e.Ddg.delay
                  in
                  ready_at.(e.Ddg.dst) <- max ready_at.(e.Ddg.dst) avail;
                  if pending.(e.Ddg.dst) = 0 then release e.Ddg.dst
                end)
              (Ddg.succs st.ddg i);
            st.done_.(i) <- true;
            if i = term_node then finished := true
          in
          (if is_own i then accept ~was_own:true
          else begin
            let speculative = not (List.mem st.home.(i) useful_homes) in
            let inst =
              match st.current.(i) with Some x -> x | None -> assert false
            in
            let needs_duplication = List.mem st.home.(i) dup in
            (* A duplication motion additionally needs the instruction's
               definitions out of the way of every copy host's branch. *)
            let copy_hosts =
              if not needs_duplication then []
              else
                List.filter
                  (fun p -> p <> a)
                  st.view.Regions.flow.Flow.pred.(st.home.(i))
            in
            let copy_hosts_ok =
              List.for_all
                (fun p ->
                  match st.view.Regions.nodes.(p) with
                  | Regions.Block pb ->
                      let term = (Cfg.block st.cfg pb).Block.term in
                      List.for_all
                        (fun r ->
                          not (List.exists (Reg.equal r) (Instr.uses term)))
                        (Instr.defs inst)
                  | Regions.Inner_loop _ -> false)
                copy_hosts
            in
            let verdict =
              if needs_duplication && not copy_hosts_ok then
                Unsafe
                  {
                    blocked_uid = Instr.uid inst;
                    reason =
                      `Live_on_exit
                        (match Instr.defs inst with
                        | r :: _ -> r
                        | [] -> assert false);
                  }
              else if speculative then
                check_speculative st ~target_block:blk_id inst
              else Safe
            in
            let place_copies placed =
              List.iter
                (fun p ->
                  match st.view.Regions.nodes.(p) with
                  | Regions.Block pb ->
                      let copy = Cfg.copy_instr st.cfg placed in
                      Gis_obs.Metrics.incr m_dup_copies;
                      Gis_obs.Provenance.duplicated st.config.Config.prov
                        ~orig:(Instr.uid placed) ~copy:(Instr.uid copy)
                        ~block:(Cfg.block st.cfg pb).Block.label;
                      if Ints.Int_set.mem p st.processed then
                        Vec.push (Cfg.block st.cfg pb).Block.body copy
                      else
                        Hashtbl.replace st.pending_copies p
                          (copy
                          :: Option.value ~default:[]
                               (Hashtbl.find_opt st.pending_copies p))
                  | Regions.Inner_loop _ -> assert false)
                copy_hosts;
              if copy_hosts <> [] then invalidate_dataflow st
            in
            (* Provenance: the committed motion with the heap entry's
               decision-time ranks. Reads the move record [apply_motion]
               just pushed, so rename and duplication details are exact. *)
            let record_motion () =
              match st.config.Config.prov, st.moves with
              | None, _ | _, [] -> ()
              | (Some _ as prov), m :: _ ->
                  Gis_obs.Provenance.moved prov ~uid:m.uid
                    ~kind:
                      (if needs_duplication then Gis_obs.Provenance.Duplicated
                       else if speculative then Gis_obs.Provenance.Speculative
                       else Gis_obs.Provenance.Useful)
                    ~scores:
                      {
                        Gis_obs.Provenance.d = it.Priority.d;
                        cp = it.Priority.cp;
                        order = it.Priority.order;
                        pressure = it.Priority.pressure;
                      }
                    ~renamed:(m.renamed <> None) ~from:m.from_label ()
            in
            let hosts_labels =
              List.filter_map
                (fun p ->
                  match st.view.Regions.nodes.(p) with
                  | Regions.Block pb -> Some (Cfg.block st.cfg pb).Block.label
                  | Regions.Inner_loop _ -> None)
                copy_hosts
            in
            match verdict with
            | Safe ->
                let placed =
                  apply_motion st ~node:i ~target_blk:blk ~speculative
                    ~rename:None ~duplicated_into:hosts_labels
                in
                record_motion ();
                place_copies placed;
                st.home.(i) <- a;
                accept ~was_own:false;
                rekey_ready ()
            | Safe_with_rename (r, uses) ->
                let placed =
                  apply_motion st ~node:i ~target_blk:blk ~speculative
                    ~rename:(Some (r, uses)) ~duplicated_into:hosts_labels
                in
                record_motion ();
                place_copies placed;
                st.home.(i) <- a;
                accept ~was_own:false;
                rekey_ready ()
            | Unsafe b ->
                Gis_obs.Metrics.incr m_blocked;
                st.blocked_log <- b :: st.blocked_log;
                emit st
                  (Gis_obs.Sink.Blocked
                     { uid = b.blocked_uid; reason = blocked_reason b.reason });
                candidate.(i) <- false
          end);
          step ()
    in
    step ();
    incr cycle
  done;
  (* Rewrite the block body in emission order; the terminator stays in
     place as the block's [term]. *)
  let order = List.filter (fun i -> i <> term_node) (Vec.to_list emitted) in
  Vec.clear blk.Block.body;
  List.iter
    (fun i ->
      match st.current.(i) with
      | Some inst -> Vec.push blk.Block.body inst
      | None -> assert false)
    order;
  (* Copies stashed for this block by earlier duplication motions go at
     the end, just before the terminator — always order-correct there. *)
  (match Hashtbl.find_opt st.pending_copies a with
  | Some copies ->
      List.iter (Vec.push blk.Block.body) (List.rev copies);
      Hashtbl.remove st.pending_copies a
  | None -> ());
  st.processed <- Ints.Int_set.add a st.processed;
  invalidate_dataflow st

let note_skip (config : Config.t) region_id reason =
  config.Config.obs.Gis_obs.Sink.emit
    (Gis_obs.Sink.Region_skipped { region_id; reason })

let schedule_region ?sym machine config cfg regions region =
  let base_report =
    {
      region_id = region.Regions.id;
      nesting = region.Regions.nesting;
      scheduled = false;
      skip_reason = None;
      moves = [];
      blocked = [];
    }
  in
  let skipped why =
    Gis_obs.Metrics.incr m_regions_skipped;
    note_skip config region.Regions.id why;
    { base_report with skip_reason = Some why }
  in
  if config.Config.level = Config.Local then
    skipped "local-only configuration"
  else
    match region_too_big config cfg region with
    | Some why -> skipped why
    | None -> (
        match Regions.view cfg regions region with
        | exception Invalid_argument why -> skipped why
        | view ->
            let st = make_state ?sym machine config cfg regions view in
            let topo = Flow.reverse_postorder view.Regions.flow in
            List.iter
              (fun v ->
                (match view.Regions.nodes.(v) with
                | Regions.Block blk_id -> schedule_block st v blk_id
                | Regions.Inner_loop _ -> ());
                (* Everything homed in this view node is now behind us. *)
                Array.iteri
                  (fun i h -> if h = v then st.done_.(i) <- true)
                  st.home)
              topo;
            Gis_obs.Metrics.incr m_regions_scheduled;
            Log.debug (fun m ->
                m "region %d: %d moves" region.Regions.id (List.length st.moves));
            {
              base_report with
              scheduled = true;
              moves = List.rev st.moves;
              blocked = List.rev st.blocked_log;
            })

(* Regions are eligible when within [max_nesting_levels] of the
   innermost level: a leaf loop has inner level 1, a region whose
   deepest nested loop chain has k levels has inner level k + 1.
   Levels for the whole region forest are memoized once per [schedule]
   call instead of being recomputed (quadratically) per region. *)
let inner_levels regions =
  let all = Regions.regions regions in
  let memo = Hashtbl.create 16 in
  let rec depth_below (r : Regions.region) =
    match Hashtbl.find_opt memo r.Regions.id with
    | Some d -> d
    | None ->
        let children =
          List.filter
            (fun (c : Regions.region) ->
              match c.Regions.loop, r.Regions.loop with
              | Some cl, Some rl -> cl.Gis_analysis.Loops.parent = Some rl.Gis_analysis.Loops.index
              | Some cl, None -> cl.Gis_analysis.Loops.parent = None
              | None, _ -> false)
            all
        in
        let d =
          1 + List.fold_left (fun acc c -> max acc (depth_below c)) 0 children
        in
        Hashtbl.add memo r.Regions.id d;
        d
  in
  depth_below

let is_inner_region (region : Regions.region) =
  match region.Regions.loop with
  | Some l -> l.Gis_analysis.Loops.children = []
  | None -> false

let schedule ?(only = fun _ -> true) ?regions machine config cfg =
  let regions =
    match regions with Some r -> r | None -> Regions.compute cfg
  in
  (* The symbolic address analysis is whole-procedure and its per-access
     facts survive legal code motion (register dependences pin every
     address computation), so one run serves every region of this pass. *)
  let sym =
    if config.Config.disambiguate && config.Config.level <> Config.Local then
      Some (Symaddr.compute cfg)
    else None
  in
  let inner_level = inner_levels regions in
  List.map
    (fun region ->
      if not (only region) then begin
        note_skip config region.Regions.id "filtered out for this pass";
        {
          region_id = region.Regions.id;
          nesting = region.Regions.nesting;
          scheduled = false;
          skip_reason = Some "filtered out for this pass";
          moves = [];
          blocked = [];
        }
      end
      else if inner_level region > config.Config.max_nesting_levels then begin
        let why =
          Fmt.str "nesting: inner level %d exceeds limit %d"
            (inner_level region)
            config.Config.max_nesting_levels
        in
        note_skip config region.Regions.id why;
        {
          region_id = region.Regions.id;
          nesting = region.Regions.nesting;
          scheduled = false;
          skip_reason = Some why;
          moves = [];
          blocked = [];
        }
      end
      else
        (* Per-region attribution: each scheduled region becomes a
           profile node under the enclosing global pass. The name is
           only built when a profiler is attached, so the detached path
           stays allocation-identical. *)
        match config.Config.prof with
        | None -> schedule_region ?sym machine config cfg regions region
        | Some _ as prof ->
            Gis_obs.Prof.record prof
              (Fmt.str "region-%d" region.Regions.id)
              (fun () ->
                schedule_region ?sym machine config cfg regions region))
    (Regions.regions regions)
