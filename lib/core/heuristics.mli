(** The two priority functions of paper Section 5.2, computed per basic
    block over intra-block dependence edges only.

    - [D(I)] ("delay heuristic"): the maximum total edge delay on any
      dependence path from [I] to the end of its block — how many delay
      slots may have to be covered after issuing [I].
    - [CP(I)] ("critical path"): how long completing [I] and everything
      depending on it within the block takes with unbounded units.

    Both satisfy the paper's recurrences:
    [D(I)  = max_J (D(J) + d(I,J))], 0 at sinks;
    [CP(I) = max_J (CP(J) + d(I,J)) + E(I)], [E(I)] at sinks. *)

type t

val compute : Gis_ddg.Ddg.t -> t
(** Heuristics for every node of the dependence graph, each relative to
    its own block (view node). Loop-summary nodes get [D = 0],
    [CP = E]. *)

val d : t -> int -> int
(** Delay heuristic of the node with the given DDG index. *)

val cp : t -> int -> int
(** Critical path heuristic of the node with the given DDG index. *)

val estart : t -> int -> int
(** Earliest issue offset (in cycles from the block's first issue) the
    node's intra-block dependences allow — the forward analogue of the
    [CP] recurrence, in issue-to-issue edge weights. *)

val lstart : t -> int -> int
(** Latest issue offset that still keeps the node's block at its
    dependence-height span; [lstart - estart] is the node's slack and
    is 0 exactly on the block's critical path. *)

val slack : t -> int -> int
(** [lstart t i - estart t i]. *)

val class_pressure : Gis_ir.Reg.Set.t -> Gis_ir.Reg.cls -> int
(** Number of registers of the given class in a live set — the register
    pressure the allocator will face at that program point. *)

val import_pressure :
  live:Gis_ir.Reg.Set.t ->
  budget:(Gis_ir.Reg.cls -> int) ->
  Gis_ir.Instr.t ->
  int
(** Pressure penalty of importing [inst] into a block whose
    live-on-exit set is [live]: for each register the instruction
    defines that is not already live there, how far past the class
    [budget] the motion would push the live count. 0 when everything
    fits — the [Min_pressure] rank rule is a no-op then. *)

val pp : t Fmt.t
