(** Loop rotation (paper Section 6).

    "Such regions that represent loops with up to 4 basic blocks are
    rotated, by copying their first basic block after the end of the
    loop." The original header becomes a once-executed entry peel; the
    copy sits at the bottom of the loop, so a second global scheduling
    pass can pull the next iteration's leading instructions up into the
    body — the partial software-pipelining effect. *)

val rotate :
  ?prov:Gis_obs.Provenance.t ->
  Gis_ir.Cfg.t ->
  Gis_analysis.Loops.loop ->
  Gis_ir.Label.t
(** Rotate the loop in place; returns the label of the header copy. *)

val rotate_small_inner_loops :
  ?prov:Gis_obs.Provenance.t -> max_blocks:int -> Gis_ir.Cfg.t -> int
(** Rotate every innermost loop with at most [max_blocks] blocks;
    returns how many loops were rotated. With [prov], header copies are
    recorded one copy generation deeper than their source. *)
