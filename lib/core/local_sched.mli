(** The basic block (local) scheduler.

    A classic list scheduler over the intra-block dependence graph with
    the D/CP priority heuristics. The paper's BASE compiler runs this on
    every block; the global scheduler also runs it as a post-pass,
    because global decisions "are not necessarily optimal in a local
    context" (Section 5.1). Functional units are fully pipelined: each
    unit issues at most one instruction per cycle, execution times affect
    only result availability. *)

val schedule_block :
  ?rules:Priority_rule.t list ->
  ?prov:Gis_obs.Provenance.t ->
  ?sym:Gis_analysis.Symaddr.t ->
  Gis_machine.Machine.t ->
  Gis_ir.Block.t ->
  int
(** Reorder the block body in place (the terminator stays last) and
    return the schedule length in cycles — the issue cycle of the
    terminator plus one. With [prov], records the decision-time ranks
    of instructions whose provenance has no scores yet. [sym] prunes
    provably false Mem edges from the block's DDG
    ({!Gis_ddg.Ddg.build_single_block}). *)

val schedule_cfg :
  ?rules:Priority_rule.t list ->
  ?obs:Gis_obs.Sink.t ->
  ?prov:Gis_obs.Provenance.t ->
  ?disambig:bool ->
  Gis_machine.Machine.t ->
  Gis_ir.Cfg.t ->
  unit
(** Apply {!schedule_block} to every block, emitting a
    [Block_scheduled] event per block to [obs] (default
    {!Gis_obs.Sink.null}). [disambig] (default [true]) runs the
    symbolic address analysis once for the procedure and shares it
    across blocks. *)

val block_schedule_length :
  Gis_machine.Machine.t -> Gis_ir.Block.t -> int
(** Schedule length the list scheduler would achieve, without mutating
    the block — a static per-block cycle estimate. *)
