type item = {
  node : int;
  useful : bool;
  d : int;
  cp : int;
  order : int;
  pressure : int;
}

let apply_rule rule a b =
  match rule with
  | Priority_rule.Useful_first -> Bool.compare b.useful a.useful
  | Priority_rule.Max_delay -> Int.compare b.d a.d
  | Priority_rule.Max_critical_path -> Int.compare b.cp a.cp
  | Priority_rule.Program_order -> Int.compare a.order b.order
  | Priority_rule.Min_pressure -> Int.compare a.pressure b.pressure

let compare ~rules a b =
  let rec go = function
    | [] -> Int.compare a.order b.order
    | r :: rest -> ( match apply_rule r a b with 0 -> go rest | c -> c)
  in
  go rules

let deciding_rule ~rules a b =
  let rec go = function
    | [] -> None
    | r :: rest -> if apply_rule r a b <> 0 then Some r else go rest
  in
  go rules

let best ~rules = function
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun acc x -> if compare ~rules x acc < 0 then x else acc)
           first rest)
