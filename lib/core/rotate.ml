open Gis_ir
open Gis_analysis
open Gis_util.Ints

let rotate ?prov cfg (loop : Loops.loop) =
  let header = Cfg.block cfg loop.Loops.header in
  let header_label = header.Block.label in
  let copy_lbl = Label.fresh ~prefix:(header_label ^ ".r") () in
  (* Place the copy after the loop's last block in layout order. *)
  let last_in_layout =
    List.fold_left
      (fun acc b -> if Int_set.mem b loop.Loops.blocks then b else acc)
      loop.Loops.header (Cfg.layout cfg)
  in
  let copy = Cfg.insert_block_after cfg ~after:last_in_layout ~label:copy_lbl in
  (* The copy branches exactly where the original header did. *)
  Gis_util.Vec.iter
    (fun i ->
      let ci = Cfg.copy_instr cfg i in
      Gis_obs.Provenance.copied prov ~orig:(Instr.uid i) ~copy:(Instr.uid ci)
        ~block:copy_lbl;
      Gis_util.Vec.push copy.Block.body ci)
    header.Block.body;
  (let term_kind =
     match Instr.kind header.Block.term with
     | Instr.Branch_cond _ | Instr.Jump _ | Instr.Halt -> Instr.kind header.Block.term
     | Instr.Load _ | Instr.Store _ | Instr.Load_imm _ | Instr.Move _
     | Instr.Binop _ | Instr.Fbinop _ | Instr.Compare _ | Instr.Fcompare _
     | Instr.Call _ ->
         invalid_arg "Rotate: non-branch terminator"
   in
   let term = Cfg.make_instr cfg term_kind in
   Gis_obs.Provenance.copied prov ~orig:(Instr.uid header.Block.term)
     ~copy:(Instr.uid term) ~block:copy_lbl;
   copy.Block.term <- term);
  (* Back edges now land on the copy. *)
  List.iter
    (fun (tail, _) ->
      let b = Cfg.block cfg tail in
      let remap t = if Label.equal t header_label then copy_lbl else t in
      match Instr.kind b.Block.term with
      | Instr.Branch_cond br ->
          b.Block.term <-
            Instr.with_kind b.Block.term
              (Instr.Branch_cond
                 { br with taken = remap br.taken; fallthru = remap br.fallthru })
      | Instr.Jump { target } ->
          b.Block.term <-
            Instr.with_kind b.Block.term (Instr.Jump { target = remap target })
      | Instr.Halt -> ()
      | Instr.Load _ | Instr.Store _ | Instr.Load_imm _ | Instr.Move _
      | Instr.Binop _ | Instr.Fbinop _ | Instr.Compare _ | Instr.Fcompare _
      | Instr.Call _ ->
          invalid_arg "Rotate: non-branch terminator")
    loop.Loops.back_edges;
  copy_lbl

let rotate_small_inner_loops ?prov ~max_blocks cfg =
  let info = Loops.compute cfg in
  if not (Loops.reducible info) then 0
  else begin
    let targets =
      List.filter_map
        (fun (l : Loops.loop) ->
          if
            l.Loops.children = []
            && Int_set.cardinal l.Loops.blocks <= max_blocks
          then Some (Cfg.block cfg l.Loops.header).Block.label
          else None)
        (Loops.innermost_first info)
    in
    let count = ref 0 in
    List.iter
      (fun header_label ->
        let info = Loops.compute cfg in
        match
          List.find_opt
            (fun (l : Loops.loop) ->
              Label.equal (Cfg.block cfg l.Loops.header).Block.label
                header_label)
            (Array.to_list (Loops.loops info))
        with
        | Some l ->
            ignore (rotate ?prov cfg l);
            incr count
        | None -> ())
      targets;
    !count
  end
