type t =
  | Useful_first
  | Max_delay
  | Max_critical_path
  | Program_order
  | Min_pressure

let paper_order = [ Useful_first; Max_delay; Max_critical_path; Program_order ]

let slug = function
  | Useful_first -> "useful-first"
  | Max_delay -> "max-delay"
  | Max_critical_path -> "max-critical-path"
  | Program_order -> "program-order"
  | Min_pressure -> "min-pressure"

let all =
  [ Useful_first; Max_delay; Max_critical_path; Program_order; Min_pressure ]

let pp ppf r = Fmt.string ppf (slug r)
