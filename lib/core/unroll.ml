open Gis_util
open Gis_ir
open Gis_analysis
open Ints

(* Clone the instructions of [src] into [dst] with fresh uids,
   rewriting branch targets through [map_target]. *)
let clone_block_into ?prov cfg ~map_target ~(src : Block.t) ~(dst : Block.t) =
  Vec.iter
    (fun i ->
      let copy = Cfg.copy_instr cfg i in
      Gis_obs.Provenance.copied prov ~orig:(Instr.uid i)
        ~copy:(Instr.uid copy) ~block:dst.Block.label;
      Vec.push dst.Block.body copy)
    src.Block.body;
  let term_kind =
    match Instr.kind src.Block.term with
    | Instr.Branch_cond b ->
        Instr.Branch_cond
          { b with
            taken = map_target b.taken;
            fallthru = map_target b.fallthru
          }
    | Instr.Jump { target } -> Instr.Jump { target = map_target target }
    | Instr.Halt -> Instr.Halt
    | Instr.Load _ | Instr.Store _ | Instr.Load_imm _ | Instr.Move _
    | Instr.Binop _ | Instr.Fbinop _ | Instr.Compare _ | Instr.Fcompare _
    | Instr.Call _ ->
        invalid_arg "Unroll: non-branch terminator"
  in
  let term = Cfg.make_instr cfg term_kind in
  Gis_obs.Provenance.copied prov ~orig:(Instr.uid src.Block.term)
    ~copy:(Instr.uid term) ~block:dst.Block.label;
  dst.Block.term <- term

let unroll_once ?prov cfg (loop : Loops.loop) =
  let header_label = (Cfg.block cfg loop.Loops.header).Block.label in
  let members = Int_set.elements loop.Loops.blocks in
  (* Fresh labels for the copy, keyed by original label. *)
  let copy_label = Hashtbl.create 8 in
  List.iter
    (fun b ->
      let l = (Cfg.block cfg b).Block.label in
      Hashtbl.replace copy_label l (Label.fresh ~prefix:(l ^ ".u") ()))
    members;
  (* Create copy blocks after the loop's last block in layout order. *)
  let layout = Cfg.layout cfg in
  let last_in_layout =
    List.fold_left
      (fun acc b -> if Int_set.mem b loop.Loops.blocks then b else acc)
      loop.Loops.header layout
  in
  let anchor = ref last_in_layout in
  let copies =
    List.map
      (fun b ->
        let l = (Cfg.block cfg b).Block.label in
        let nb =
          Cfg.insert_block_after cfg ~after:!anchor
            ~label:(Hashtbl.find copy_label l)
        in
        anchor := nb.Block.id;
        (b, nb))
      members
  in
  (* Original blocks: back edges (to the header) now enter the copy's
     header; everything else is unchanged. *)
  let to_copy l = Option.value ~default:l (Hashtbl.find_opt copy_label l) in
  let redirect_original (b : Block.t) =
    let remap target =
      if Label.equal target header_label then to_copy header_label else target
    in
    match Instr.kind b.Block.term with
    | Instr.Branch_cond br ->
        b.Block.term <-
          Instr.with_kind b.Block.term
            (Instr.Branch_cond
               { br with taken = remap br.taken; fallthru = remap br.fallthru })
    | Instr.Jump { target } ->
        b.Block.term <-
          Instr.with_kind b.Block.term (Instr.Jump { target = remap target })
    | Instr.Halt -> ()
    | Instr.Load _ | Instr.Store _ | Instr.Load_imm _ | Instr.Move _
    | Instr.Binop _ | Instr.Fbinop _ | Instr.Compare _ | Instr.Fcompare _
    | Instr.Call _ ->
        invalid_arg "Unroll: non-branch terminator"
  in
  (* Copy blocks: in-loop targets go to the copy's labels, except the
     header, which closes the unrolled iteration back to the original. *)
  let copy_target l =
    if Label.equal l header_label then header_label
    else Option.value ~default:l (Hashtbl.find_opt copy_label l)
  in
  List.iter
    (fun (orig_id, nb) ->
      clone_block_into ?prov cfg ~map_target:copy_target
        ~src:(Cfg.block cfg orig_id) ~dst:nb)
    copies;
  List.iter (fun b -> redirect_original (Cfg.block cfg b)) members

let unroll_small_inner_loops ?prov ~max_blocks cfg =
  let info = Loops.compute cfg in
  if not (Loops.reducible info) then 0
  else begin
    (* Fix the targets before transforming anything, so a loop we have
       just doubled is not doubled again. Loops are identified by their
       header label, which unrolling never changes. *)
    let targets =
      List.filter_map
        (fun (l : Loops.loop) ->
          if
            l.Loops.children = []
            && Int_set.cardinal l.Loops.blocks <= max_blocks
          then Some (Cfg.block cfg l.Loops.header).Block.label
          else None)
        (Loops.innermost_first info)
    in
    let count = ref 0 in
    List.iter
      (fun header_label ->
        let info = Loops.compute cfg in
        let found =
          List.find_opt
            (fun (l : Loops.loop) ->
              Label.equal (Cfg.block cfg l.Loops.header).Block.label
                header_label)
            (Array.to_list (Loops.loops info))
        in
        match found with
        | Some l ->
            unroll_once ?prov cfg l;
            incr count
        | None -> ())
      targets;
    !count
  end
