(** Choosing among simultaneously-ready instructions (paper
    Section 5.2, the seven-step decision order). *)

type item = {
  node : int;  (** DDG node index *)
  useful : bool;
      (** true when the instruction's home block is in
          [U(A) = A ∪ EQUIV(A)] — rules 1–2 prefer these *)
  d : int;  (** delay heuristic *)
  cp : int;  (** critical path heuristic *)
  order : int;  (** original program order; smaller is earlier *)
  pressure : int;
      (** register-pressure penalty of scheduling this candidate into
          the current block: 0 when pressure-aware scheduling is off or
          the motion fits the register file, positive when it would
          exceed it. Smaller wins under [Min_pressure]. *)
}

val compare : rules:Priority_rule.t list -> item -> item -> int
(** Negative when the first item should be scheduled first. Rules are
    applied in the given order; items equal under every rule compare by
    [order] as the final arbiter (determinism). *)

val deciding_rule :
  rules:Priority_rule.t list -> item -> item -> Priority_rule.t option
(** The first rule in [rules] that distinguishes the two items — the
    rule that actually broke the tie when one of them was picked over
    the other. [None] when every rule ties and the pick fell through
    to the final program-order arbiter. *)

val best : rules:Priority_rule.t list -> item list -> item option
