open Gis_ir

type stats = {
  unrolled : int;
  rotated : int;
  pass1 : Global_sched.region_report list;
  pass2 : Global_sched.region_report list;
  regalloc : Gis_regalloc.Regalloc.t option;
  phases : Gis_obs.Span.t list;
}

let moves stats =
  List.concat_map
    (fun (r : Global_sched.region_report) -> r.Global_sched.moves)
    (stats.pass1 @ stats.pass2)

let seconds stats = Gis_obs.Span.total stats.phases

let phase_names = [ "unroll"; "global-pass1"; "rotate"; "global-pass2"; "local" ]

(* The body of [run], wrapped below in the profiler's "pipeline" root
   so phase deltas sum exactly to the whole-run delta (the accounting
   identity `gisc profile` checks). *)
let run_phases machine (config : Config.t) cfg =
  let prov = config.Config.prov in
  let prof = config.Config.prof in
  (* Every original instruction gets an [Unmoved] record in its source
     block before any pass runs; passes overwrite kind/scores as they
     commit decisions, and fresh copies are recorded at creation. *)
  (match prov with
  | None -> ()
  | Some _ ->
      Cfg.iter_blocks
        (fun b ->
          let at i =
            Gis_obs.Provenance.seed prov ~uid:(Instr.uid i)
              ~origin:b.Block.label
          in
          Gis_util.Vec.iter at b.Block.body;
          at b.Block.term)
        cfg);
  let spans = ref [] in
  let time name f =
    (* The profiler nests inside the span so span totals stay what they
       always were; a detached profiler ([None]) adds one match. *)
    let v, span =
      Gis_obs.Span.time name (fun () -> Gis_obs.Prof.record prof name f)
    in
    spans := span :: !spans;
    config.Config.obs.Gis_obs.Sink.emit
      (Gis_obs.Sink.Phase_finished
         { phase = name; seconds = span.Gis_obs.Span.seconds });
    v
  in
  if config.Config.split_webs && config.Config.level <> Config.Local then
    time "webs" (fun () -> ignore (Webs.split cfg));
  (* Per-stage verification: snapshot the CFG before a stage that will
     actually run, hand the pre/post pair to the hook afterwards. The
     snapshot is taken only when a hook is installed. *)
  let snapshot () =
    match config.Config.check with
    | Some _ -> Some (Cfg.deep_copy cfg)
    | None -> None
  in
  let fire stage pre =
    match config.Config.check, pre with
    | Some f, Some pre -> f ~stage ~pre ~post:cfg
    | _, _ -> ()
  in
  let global = config.Config.level <> Config.Local in
  (* Region analysis is a function of the CFG's shape, which interblock
     motion preserves — only unrolling and rotation invalidate it. Both
     global passes therefore share one analysis unless rotation ran in
     between. Computed inside the timed phases so the spans stay
     honest. *)
  let regions_cache = ref None in
  let regions () =
    match !regions_cache with
    | Some r -> r
    | None ->
        (* A nested span: shows up as a child of whichever global pass
           forced the computation. *)
        let r, _span =
          Gis_obs.Span.time "regions" (fun () ->
              Gis_obs.Prof.record prof "regions" (fun () ->
                  Gis_analysis.Regions.compute cfg))
        in
        regions_cache := Some r;
        r
  in
  let unrolled =
    time "unroll" (fun () ->
        if global && config.Config.unroll_small_loops then begin
          let pre = snapshot () in
          let n =
            Unroll.unroll_small_inner_loops ?prov
              ~max_blocks:config.Config.small_loop_blocks cfg
          in
          fire "unroll" pre;
          n
        end
        else 0)
  in
  let pass1 =
    time "global-pass1" (fun () ->
        if global then begin
          let pre = snapshot () in
          let reports =
            Global_sched.schedule ~only:Global_sched.is_inner_region
              ~regions:(regions ()) machine config cfg
          in
          fire "global-pass1" pre;
          reports
        end
        else [])
  in
  let rotated =
    time "rotate" (fun () ->
        if global && config.Config.rotate_small_loops then begin
          let pre = snapshot () in
          let n =
            Rotate.rotate_small_inner_loops ?prov
              ~max_blocks:config.Config.small_loop_blocks cfg
          in
          fire "rotate" pre;
          n
        end
        else 0)
  in
  if rotated > 0 then regions_cache := None;
  let pass2 =
    time "global-pass2" (fun () ->
        if global then begin
          let pre = snapshot () in
          let reports =
            Global_sched.schedule
              ~only:(fun r ->
                rotated > 0 || not (Global_sched.is_inner_region r))
              ~regions:(regions ()) machine config cfg
          in
          fire "global-pass2" pre;
          reports
        end
        else [])
  in
  time "local" (fun () ->
      if config.Config.local_post_pass then begin
        let local_machine =
          Option.value ~default:machine config.Config.local_machine
        in
        let pre = snapshot () in
        Local_sched.schedule_cfg ~rules:config.Config.rules
          ~obs:config.Config.obs ?prov
          ~disambig:config.Config.disambiguate local_machine cfg;
        fire "local" pre
      end);
  let regalloc =
    if config.Config.regalloc then
      time "regalloc" (fun () ->
          let pre = snapshot () in
          match
            Gis_regalloc.Regalloc.allocate ?gprs:config.Config.regs
              ?fprs:config.Config.regs ?prov machine cfg
          with
          | Ok alloc ->
              fire "regalloc" pre;
              Some alloc
          | Error msg ->
              (* A typed, deterministic outcome — drivers classify it
                 as infeasibility, not a crash. *)
              raise (Gis_regalloc.Regalloc.Infeasible msg))
    else None
  in
  ignore (Cfg.reachable cfg);
  Gis_obs.Provenance.finalize prov cfg;
  { unrolled; rotated; pass1; pass2; regalloc; phases = List.rev !spans }

let run machine (config : Config.t) cfg =
  Gis_obs.Prof.record config.Config.prof "pipeline" (fun () ->
      run_phases machine config cfg)
