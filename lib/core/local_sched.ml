open Gis_util
open Gis_ir
open Gis_ddg

(* List-schedule the nodes of a single-block DDG. Returns the emission
   order (node indices) and each node's issue cycle. *)
let run machine rules ddg =
  let n = Ddg.num_nodes ddg in
  let heur = Heuristics.compute ddg in
  let pending = Array.make n 0 in
  let ready_at = Array.make n 0 in
  let issue = Array.make n (-1) in
  for i = 0 to n - 1 do
    pending.(i) <- List.length (Ddg.preds ddg i)
  done;
  let emission = Vec.create () in
  let scheduled = ref 0 in
  let term = n - 1 in
  let cycle = ref 0 in
  let unit_of i =
    match (Ddg.node ddg i).Ddg.instr with
    | Some ins -> Instr.unit_ty ins
    | None -> Instr.Fixed
  in
  while !scheduled < n do
    if !cycle > 100_000 then failwith "Local_sched: no progress";
    let slots = Hashtbl.create 3 in
    let slots_left u =
      match Hashtbl.find_opt slots u with
      | Some k -> k
      | None -> Gis_machine.Machine.units machine u
    in
    let take_slot u = Hashtbl.replace slots u (slots_left u - 1) in
    let continue_cycle = ref true in
    while !continue_cycle do
      let ready =
        List.filter
          (fun i ->
            issue.(i) = -1 && pending.(i) = 0 && ready_at.(i) <= !cycle
            && slots_left (unit_of i) > 0
            && (i <> term || !scheduled = n - 1))
          (List.init n Fun.id)
      in
      let items =
        List.map
          (fun i ->
            {
              Priority.node = i;
              useful = true;
              d = Heuristics.d heur i;
              cp = Heuristics.cp heur i;
              order = i;
              pressure = 0;
            })
          ready
      in
      match Priority.best ~rules items with
      | None -> continue_cycle := false
      | Some it ->
          let i = it.Priority.node in
          issue.(i) <- !cycle;
          take_slot (unit_of i);
          Vec.push emission i;
          incr scheduled;
          List.iter
            (fun (e : Ddg.edge) ->
              pending.(e.Ddg.dst) <- pending.(e.Ddg.dst) - 1;
              let avail =
                match e.Ddg.kind with
                | Ddg.Flow -> !cycle + Ddg.exec_time ddg i + e.Ddg.delay
                | Ddg.Anti | Ddg.Output | Ddg.Mem -> !cycle + e.Ddg.delay
              in
              ready_at.(e.Ddg.dst) <- max ready_at.(e.Ddg.dst) avail)
            (Ddg.succs ddg i)
    done;
    incr cycle
  done;
  (Vec.to_list emission, issue)

let schedule_block ?(rules = Priority_rule.paper_order) ?prov ?sym machine
    (b : Block.t) =
  let ddg = Ddg.build_single_block ?sym machine b in
  let order, issue = run machine rules ddg in
  let n = Ddg.num_nodes ddg in
  let instr_of i =
    match (Ddg.node ddg i).Ddg.instr with
    | Some ins -> ins
    | None -> assert false
  in
  (* Decision-time ranks for instructions the global pass never moved:
     fills a record's empty scores, never overwrites a motion's. *)
  (match prov with
  | None -> ()
  | Some _ ->
      let heur = Heuristics.compute ddg in
      List.iter
        (fun i ->
          Gis_obs.Provenance.scored prov ~uid:(Instr.uid (instr_of i))
            ~scores:
              {
                Gis_obs.Provenance.d = Heuristics.d heur i;
                cp = Heuristics.cp heur i;
                order = i;
                pressure = 0;
              })
        order);
  let body_order = List.filter (fun i -> i <> n - 1) order in
  Vec.clear b.Block.body;
  List.iter (fun i -> Vec.push b.Block.body (instr_of i)) body_order;
  issue.(n - 1) + 1

let schedule_cfg ?(rules = Priority_rule.paper_order) ?(obs = Gis_obs.Sink.null)
    ?prov ?(disambig = true) machine cfg =
  (* One whole-procedure address analysis serves every block: the facts
     are per-access and reordering within a block cannot change them. *)
  let sym =
    if disambig then Some (Gis_analysis.Symaddr.compute cfg) else None
  in
  Cfg.iter_blocks
    (fun b ->
      let cycles = schedule_block ~rules ?prov ?sym machine b in
      obs.Gis_obs.Sink.emit
        (Gis_obs.Sink.Block_scheduled { block = b.Block.label; cycles }))
    cfg

let block_schedule_length machine (b : Block.t) =
  let ddg = Ddg.build_single_block machine b in
  let _, issue = run machine Priority_rule.paper_order ddg in
  issue.(Ddg.num_nodes ddg - 1) + 1
