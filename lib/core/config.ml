type level = Local | Useful | Speculative

let pp_level ppf l =
  Fmt.string ppf
    (match l with
    | Local -> "local"
    | Useful -> "useful"
    | Speculative -> "speculative")

type t = {
  level : level;
  rename : bool;
  prune_transitive : bool;
  rules : Priority_rule.t list;
  max_region_blocks : int;
  max_region_instrs : int;
  max_nesting_levels : int;
  unroll_small_loops : bool;
  rotate_small_loops : bool;
  small_loop_blocks : int;
  local_post_pass : bool;
  disambiguate : bool;
  split_webs : bool;
  max_speculation_degree : int;
  profile : (Gis_ir.Label.t -> int) option;
  min_speculation_probability : float;
  local_machine : Gis_machine.Machine.t option;
  allow_duplication : bool;
  pressure_aware : bool;
  regalloc : bool;
  regs : int option;
  obs : Gis_obs.Sink.t;
  prov : Gis_obs.Provenance.t option;
  prof : Gis_obs.Prof.t option;
  check :
    (stage:string -> pre:Gis_ir.Cfg.t -> post:Gis_ir.Cfg.t -> unit) option;
}

let default =
  {
    level = Speculative;
    rename = true;
    prune_transitive = true;
    rules = Priority_rule.paper_order;
    max_region_blocks = 64;
    max_region_instrs = 256;
    max_nesting_levels = 2;
    unroll_small_loops = true;
    rotate_small_loops = true;
    small_loop_blocks = 4;
    local_post_pass = true;
    disambiguate = true;
    split_webs = false;
    max_speculation_degree = 1;
    profile = None;
    min_speculation_probability = 0.0;
    local_machine = None;
    allow_duplication = false;
    pressure_aware = false;
    regalloc = false;
    regs = None;
    obs = Gis_obs.Sink.null;
    prov = None;
    prof = None;
    check = None;
  }

let base =
  {
    default with
    level = Local;
    unroll_small_loops = false;
    rotate_small_loops = false;
  }

let useful_only = { default with level = Useful }
let speculative = default

let pp ppf c =
  Fmt.pf ppf
    "level=%a rename=%b prune=%b rules=[%a] limits=%db/%di nesting<=%d \
     unroll=%b rotate=%b post=%b"
    pp_level c.level c.rename c.prune_transitive
    Fmt.(list ~sep:comma Priority_rule.pp)
    c.rules c.max_region_blocks c.max_region_instrs c.max_nesting_levels
    c.unroll_small_loops c.rotate_small_loops c.local_post_pass
