(** PDG-driven global instruction scheduling (paper Section 5).

    Regions are scheduled innermost first; within a region, basic blocks
    are visited in topological order and filled cycle by cycle from a
    ready list drawn from the block itself, from its equivalent blocks
    (useful motion), and — at the [Speculative] level — from the
    immediate CSPDG successors of the block and of its equivalent blocks
    (1-branch speculative motion). Moved instructions are physically
    removed from their home block. Speculative motions are subject to
    the live-on-exit rule of Section 5.3, with optional renaming of the
    moved definition when use-def chains prove it safe.

    Invariants maintained (Section 5.1): instructions never cross region
    boundaries; all motion is upward; branch order is preserved (branches
    never move); no duplication; no new basic blocks. *)

type move = {
  uid : int;
  from_label : Gis_ir.Label.t;
  to_label : Gis_ir.Label.t;
  speculative : bool;
  renamed : (Gis_ir.Reg.t * Gis_ir.Reg.t) option;
      (** (old, fresh) when the motion required renaming the moved
          definition *)
  duplicated_into : Gis_ir.Label.t list;
      (** blocks that received a fresh copy because the target block
          does not dominate the source (Definition 6's restricted
          "scheduling with duplication"; requires
          [Config.allow_duplication]) *)
}

val pp_move : move Fmt.t

type blocked = {
  blocked_uid : int;
  reason : [ `Live_on_exit of Gis_ir.Reg.t | `Rename_unsafe of Gis_ir.Reg.t ];
}

type region_report = {
  region_id : int;
  nesting : int;
  scheduled : bool;
  skip_reason : string option;
  moves : move list;
  blocked : blocked list;
      (** candidate motions rejected by the speculation safety rule *)
}

val pp_region_report : region_report Fmt.t

val schedule_region :
  ?sym:Gis_analysis.Symaddr.t ->
  Gis_machine.Machine.t ->
  Config.t ->
  Gis_ir.Cfg.t ->
  Gis_analysis.Regions.t ->
  Gis_analysis.Regions.region ->
  region_report
(** Schedule one region in place. [sym] is the whole-procedure symbolic
    address analysis used to prune provably false Mem edges from the
    region's DDG ({!Gis_ddg.Ddg.build}); {!schedule} computes it once
    per pass when [config.disambiguate] is on. *)

val schedule :
  ?only:(Gis_analysis.Regions.region -> bool) ->
  ?regions:Gis_analysis.Regions.t ->
  Gis_machine.Machine.t ->
  Config.t ->
  Gis_ir.Cfg.t ->
  region_report list
(** Schedule every eligible region of the procedure, innermost first,
    honouring the size and nesting limits in the configuration; [only]
    further restricts which regions are touched (used by the pipeline's
    inner-regions-first pass). [regions] supplies a precomputed region
    analysis; callers must guarantee it matches the CFG's current shape
    (interblock motion preserves the shape, so {!Pipeline} shares one
    analysis between its two global passes unless rotation changed the
    graph in between). With [config.level = Local] no region is
    scheduled (reports only). Does not run the local post-pass — see
    {!Pipeline}. *)

val is_inner_region : Gis_analysis.Regions.region -> bool
(** A region that is a loop containing no other loop — the paper's
    "inner region". *)
