(** The tie-breaking rules of the scheduling heuristic (paper
    Section 5.2), as first-class values so ablation benchmarks can
    reorder or drop them. The paper's order is: useful before
    speculative, then greater delay heuristic D, then greater critical
    path CP, then original program order. *)

type t =
  | Useful_first  (** rules 1–2: B(I) in U(A) wins *)
  | Max_delay     (** rules 3–4: larger D(I) wins *)
  | Max_critical_path  (** rules 5–6: larger CP(I) wins *)
  | Program_order  (** rule 7: the earlier instruction wins *)
  | Min_pressure
      (** not in the paper: smaller register-pressure penalty wins.
          Prepended to {!paper_order} when [Config.pressure_aware] is
          set, demoting interblock motions that would push the live
          register count of the target block past the machine's
          register file. *)

val paper_order : t list

val all : t list
(** Every rule, in [paper_order] position with {!Min_pressure} last —
    the enumeration the per-rule tie-break counters register over. *)

val slug : t -> string
(** Stable kebab-case name, used in metric names and reports. *)

val pp : t Fmt.t
