(** Control flow graphs.

    A CFG is a procedure: a set of basic blocks with explicit edges
    derived from the terminators, a distinguished entry block, a register
    generator and an instruction-uid generator. Blocks are identified by
    dense integer ids (their index in the block table); ids are stable —
    blocks are never renumbered in place (use {!compact} to rebuild a
    graph without unreachable blocks).

    Block *layout* (textual order, used by the pretty printer and by
    transformations that insert copied blocks "after" a loop) is tracked
    separately from block ids, since fallthrough targets are explicit. *)

type edge_kind =
  | Taken      (** the conditional branch was taken *)
  | Fallthru   (** the conditional branch fell through *)
  | Always     (** unconditional jump *)

val pp_edge_kind : edge_kind Fmt.t

type t

val create : ?reg_gen:Reg.Gen.t -> unit -> t
(** [reg_gen] lets callers pre-reserve named registers (e.g. the paper's
    r0, r12, r28...) before building the graph. *)

val regs : t -> Reg.Gen.t
val fresh_reg : t -> Reg.cls -> Reg.t
val make_instr : t -> Instr.kind -> Instr.t
val copy_instr : t -> Instr.t -> Instr.t

val add_block : t -> label:Label.t -> Block.t
(** Appends a block (initial terminator [Halt]) at the end of the
    layout. Raises [Invalid_argument] on duplicate labels. *)

val insert_block_after : t -> after:int -> label:Label.t -> Block.t
(** Like {!add_block} but placed immediately after block [after] in the
    layout. *)

val remove_block : t -> int -> unit
(** Detach a block from the layout. The block's storage and label stay
    registered (ids are stable, [find_label] still resolves), so any
    branch still naming the label now targets a detached block — it is
    the caller's burden to retarget those branches, and
    {!Validate.check} rejects graphs where one was missed. Raises
    [Invalid_argument] if the block is not in the layout. *)

val set_entry : t -> int -> unit
val entry : t -> int
val num_blocks : t -> int
val block : t -> int -> Block.t
val block_of_label : t -> Label.t -> Block.t
val find_label : t -> Label.t -> int option
val layout : t -> int list
(** Block ids in textual order. *)

val iter_blocks : (Block.t -> unit) -> t -> unit
(** In layout order. *)

val fold_blocks : ('a -> Block.t -> 'a) -> 'a -> t -> 'a

val successors : t -> int -> (int * edge_kind) list
(** Successor block ids with edge kinds; fallthrough edge first. *)

val predecessors : t -> int list array
(** [preds.(b)] lists the predecessors of block [b]. Recomputed on each
    call — callers that mutate terminators must not cache it across
    mutations. *)

val instr_count : t -> int
(** Total instructions including terminators. *)

val all_instrs : t -> Instr.t list
(** In layout/program order. *)

val owner_of_uid : t -> int -> int option
(** Block id currently containing the instruction with this uid. Linear
    scan; scheduling code maintains its own index instead. *)

val update_instr : t -> uid:int -> f:(Instr.t -> Instr.t) -> bool
(** Rewrite the instruction with the given uid in place (body or
    terminator), wherever it currently lives. Returns false when no
    such instruction exists. The replacement must keep the same uid. *)

val reachable : t -> Gis_util.Ints.Int_set.t
(** Block ids reachable from the entry. *)

val compact : t -> t
(** A fresh CFG containing only reachable blocks, with new dense ids but
    the same labels, instruction uids and register generator state. *)

val deep_copy : t -> t
(** Structural copy sharing nothing mutable with the original; labels,
    ids and uids are preserved. Used to snapshot code before scheduling
    so that baseline and scheduled versions can be compared. *)

val pp : t Fmt.t
(** Paper-style listing: labels, indented instructions; jumps to the
    lexically next block are still printed (explicitness over beauty). *)
