(** Machine instructions.

    The instruction set is the fixed-point RS/6000 subset used throughout
    the paper (Figure 2), plus the floating-point operations needed by the
    full delay model of Section 2.1. Memory is touched only by loads,
    stores and calls; everything else computes in registers.

    Every instruction carries a unique id ([uid]) that survives code
    motion, so dependence graphs built over uids stay valid while the
    scheduler moves instructions between blocks. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr

type fbinop = Fadd | Fsub | Fmul | Fdiv

(** Condition tested by a conditional branch against a condition
    register. A compare writes the three-way ordering of its operands to
    a condition register; the branch tests one of these predicates. *)
type cond = Lt | Gt | Eq | Le | Ge | Ne

type operand =
  | Reg of Reg.t
  | Imm of int

(** Instruction payload. Conventions:
    - [update] on loads/stores is the RS/6000 "with update" form ([LU] in
      Figure 2): the base register is post-incremented by [offset].
    - [Branch_cond] with [expect = true] is the paper's [BT], with
      [expect = false] its [BF]; [taken] is the branch target and
      [fallthru] the block executed otherwise. Branches appear only as
      block terminators.
    - [Call] models an opaque runtime routine (e.g. [printf]): it reads
      its argument registers, optionally defines a result register, and
      conservatively touches memory. Calls never move across block
      boundaries (Section 5.1). *)
type kind =
  | Load of { dst : Reg.t; base : Reg.t; offset : int; update : bool }
  | Store of { src : Reg.t; base : Reg.t; offset : int; update : bool }
  | Load_imm of { dst : Reg.t; value : int }
  | Move of { dst : Reg.t; src : Reg.t }
  | Binop of { op : binop; dst : Reg.t; lhs : Reg.t; rhs : operand }
  | Fbinop of { op : fbinop; dst : Reg.t; lhs : Reg.t; rhs : Reg.t }
  | Compare of { dst : Reg.t; lhs : Reg.t; rhs : operand }
  | Fcompare of { dst : Reg.t; lhs : Reg.t; rhs : Reg.t }
  | Branch_cond of {
      cr : Reg.t;
      cond : cond;
      expect : bool;
      taken : Label.t;
      fallthru : Label.t;
    }
  | Jump of { target : Label.t }
  | Call of { name : string; args : Reg.t list; ret : Reg.t option }
  | Halt  (** leaves the procedure; terminator of exit blocks *)

type t = private {
  uid : int;
  kind : kind;
}

(** Functional-unit types of the parametric machine (Section 2): a
    machine has some number of units of each type. Fixed-point units
    also execute all loads/stores (they generate the addresses), as on
    the RS/6000. *)
type unit_ty = Fixed | Float | Branch

module Gen : sig
  type instr = t
  type t

  val create : unit -> t
  val make : t -> kind -> instr

  val copy : t -> instr -> instr
  (** Same kind, fresh uid — for unrolling/rotation duplicates. *)
end

val uid : t -> int
val kind : t -> kind

val with_kind : t -> kind -> t
(** Same uid, replaced payload — for register renaming in place. *)

val defs : t -> Reg.t list
(** Registers written. For [update] loads/stores this includes the base. *)

val uses : t -> Reg.t list
(** Registers read. *)

val unit_ty : t -> unit_ty

val is_branch : t -> bool
(** Conditional branch, jump, or halt — i.e. only valid as terminator. *)

val is_cond_branch : t -> bool
val is_load : t -> bool
val is_store : t -> bool
val is_call : t -> bool

val touches_memory : t -> bool
(** Loads, stores and calls; used for memory disambiguation. *)

val movable_across_blocks : t -> bool
(** The paper excludes some instructions from interblock motion even
    between equivalent blocks: calls and branches (Section 5.1). *)

val speculable : t -> bool
(** May this instruction execute on a path where it was not originally
    present?  Stores and calls may not (Section 5.1); loads are allowed,
    matching the paper's Figure 6 (the implementation assumes loads
    cannot fault, as pre-virtual-memory compilers did; a trap-safe
    variant simply also excludes loads). *)

val rename_uses : t -> from_reg:Reg.t -> to_reg:Reg.t -> t
(** Substitute a register in use positions (def positions untouched,
    except that the base of an [update] load/store is both a use and a
    def and is renamed). *)

val rename_def : t -> from_reg:Reg.t -> to_reg:Reg.t -> t
(** Substitute the defined register. Raises [Invalid_argument] if
    [from_reg] is not defined by the instruction, or if it is defined
    via an [update] base (renaming those would change the use too). *)

val map_regs : f:(Reg.t -> Reg.t) -> t -> t
(** Apply [f] to every register position — defs and uses — {e
    simultaneously}. Unlike chained {!rename_uses}/{!rename_def} calls,
    a whole-map substitution is safe even when the image of one register
    collides with another register's name (exactly the situation when
    rewriting symbolic registers to a small physical file). *)

val negate_cond : cond -> cond

val eval_cond : cond -> int -> bool
(** [eval_cond c ord] interprets the three-way ordering [ord] (negative,
    zero, positive as written by a compare) under predicate [c]. *)

val equal_kind : kind -> kind -> bool
val pp_cond : cond Fmt.t
val pp_binop : binop Fmt.t
val pp_fbinop : fbinop Fmt.t
val pp_operand : operand Fmt.t
val pp_unit_ty : unit_ty Fmt.t

val pp : t Fmt.t
(** Paper-style rendering, e.g. [C cr7=r12,r0] or [BF CL.4,cr7,gt]. *)
