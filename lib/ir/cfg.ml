open Gis_util

type edge_kind = Taken | Fallthru | Always

let pp_edge_kind ppf k =
  Fmt.string ppf
    (match k with Taken -> "taken" | Fallthru -> "fallthru" | Always -> "always")

type t = {
  blocks : Block.t Vec.t;
  layout_order : int Vec.t;
  mutable entry_id : int;
  by_label : (Label.t, int) Hashtbl.t;
  reg_gen : Reg.Gen.t;
  instr_gen : Instr.Gen.t;
}

let create ?(reg_gen = Reg.Gen.create ()) () =
  {
    blocks = Vec.create ();
    layout_order = Vec.create ();
    entry_id = 0;
    by_label = Hashtbl.create 16;
    reg_gen;
    instr_gen = Instr.Gen.create ();
  }

let regs t = t.reg_gen
let fresh_reg t cls = Reg.Gen.fresh t.reg_gen cls
let make_instr t kind = Instr.Gen.make t.instr_gen kind
let copy_instr t i = Instr.Gen.copy t.instr_gen i

let new_block t ~label =
  if Hashtbl.mem t.by_label label then
    invalid_arg (Fmt.str "Cfg.add_block: duplicate label %a" Label.pp label);
  let id = Vec.length t.blocks in
  let b =
    {
      Block.id;
      label;
      body = Vec.create ();
      term = make_instr t Instr.Halt;
    }
  in
  Vec.push t.blocks b;
  Hashtbl.add t.by_label label id;
  b

let add_block t ~label =
  let b = new_block t ~label in
  Vec.push t.layout_order b.Block.id;
  b

let insert_block_after t ~after ~label =
  let b = new_block t ~label in
  match Vec.find_index (fun id -> id = after) t.layout_order with
  | None -> invalid_arg "Cfg.insert_block_after: unknown block"
  | Some pos ->
      Vec.insert t.layout_order (pos + 1) b.Block.id;
      b

let remove_block t id =
  match Vec.find_index (fun bid -> bid = id) t.layout_order with
  | None -> invalid_arg "Cfg.remove_block: block not in layout"
  | Some pos -> ignore (Vec.remove t.layout_order pos)

let set_entry t id = t.entry_id <- id
let entry t = t.entry_id
let num_blocks t = Vec.length t.blocks
let block t id = Vec.get t.blocks id

let find_label t label = Hashtbl.find_opt t.by_label label

let block_of_label t label =
  match find_label t label with
  | Some id -> block t id
  | None -> invalid_arg (Fmt.str "Cfg.block_of_label: unknown label %a" Label.pp label)

let layout t = Vec.to_list t.layout_order

let iter_blocks f t = Vec.iter (fun id -> f (block t id)) t.layout_order

let fold_blocks f acc t =
  Vec.fold_left (fun acc id -> f acc (block t id)) acc t.layout_order

let successors t id =
  let b = block t id in
  match Instr.kind b.Block.term with
  | Instr.Branch_cond { taken; fallthru; _ } ->
      [
        ((block_of_label t fallthru).Block.id, Fallthru);
        ((block_of_label t taken).Block.id, Taken);
      ]
  | Instr.Jump { target } -> [ ((block_of_label t target).Block.id, Always) ]
  | Instr.Halt -> []
  | Instr.Load _ | Instr.Store _ | Instr.Load_imm _ | Instr.Move _
  | Instr.Binop _ | Instr.Fbinop _ | Instr.Compare _ | Instr.Fcompare _
  | Instr.Call _ ->
      invalid_arg "Cfg.successors: non-branch terminator"

let predecessors t =
  let preds = Array.make (num_blocks t) [] in
  for id = 0 to num_blocks t - 1 do
    List.iter (fun (s, _) -> preds.(s) <- id :: preds.(s)) (successors t id)
  done;
  Array.map List.rev preds

let instr_count t =
  fold_blocks (fun acc b -> acc + Block.instr_count b) 0 t

let all_instrs t = List.concat_map Block.instrs (List.map (block t) (layout t))

let owner_of_uid t u =
  let found = ref None in
  iter_blocks
    (fun b -> if !found = None && Block.mem_uid b u then found := Some b.Block.id)
    t;
  !found

let update_instr t ~uid ~f =
  let found = ref false in
  iter_blocks
    (fun b ->
      if not !found then begin
        if Instr.uid b.Block.term = uid then begin
          let i' = f b.Block.term in
          if Instr.uid i' <> uid then invalid_arg "Cfg.update_instr: uid changed";
          b.Block.term <- i';
          found := true
        end
        else
          match Block.find_body_index b ~uid with
          | Some idx ->
              let i' = f (Vec.get b.Block.body idx) in
              if Instr.uid i' <> uid then
                invalid_arg "Cfg.update_instr: uid changed";
              Vec.set b.Block.body idx i';
              found := true
          | None -> ()
      end)
    t;
  !found

let reachable t =
  let open Ints in
  let seen = ref Int_set.empty in
  let rec go id =
    if not (Int_set.mem id !seen) then begin
      seen := Int_set.add id !seen;
      List.iter (fun (s, _) -> go s) (successors t id)
    end
  in
  if num_blocks t > 0 then go t.entry_id;
  !seen

(* Copy [src]'s blocks into a fresh graph, keeping only ids in [keep]
   (in layout order), preserving labels and instruction uids. Shared
   helper for [compact] and [deep_copy]. *)
let rebuild src ~keep =
  let dst =
    {
      blocks = Vec.create ();
      layout_order = Vec.create ();
      entry_id = 0;
      by_label = Hashtbl.create 16;
      reg_gen = src.reg_gen;
      instr_gen = src.instr_gen;
    }
  in
  let kept = List.filter (fun id -> Ints.Int_set.mem id keep) (layout src) in
  List.iter
    (fun old_id ->
      let old = block src old_id in
      let b = add_block dst ~label:old.Block.label in
      Vec.append b.Block.body old.Block.body;
      b.Block.term <- old.Block.term)
    kept;
  (match find_label dst (block src src.entry_id).Block.label with
  | Some id -> dst.entry_id <- id
  | None -> invalid_arg "Cfg.rebuild: entry block not kept");
  dst

let compact t = rebuild t ~keep:(reachable t)

let deep_copy t =
  let all =
    List.fold_left
      (fun acc id -> Ints.Int_set.add id acc)
      Ints.Int_set.empty (layout t)
  in
  (* [rebuild] copies body vectors via [Vec.append], so the result shares
     no mutable structure; instructions themselves are immutable. *)
  rebuild t ~keep:all

let pp ppf t =
  let first = ref true in
  Fmt.pf ppf "@[<v>";
  iter_blocks
    (fun b ->
      if !first then first := false else Fmt.cut ppf ();
      Block.pp ppf b)
    t;
  Fmt.pf ppf "@]"
