type t = string

let equal = String.equal
let compare = String.compare
let pp = Fmt.string

module Set = Set.Make (String)
module Map = Map.Make (String)

(* Domain-local: concurrent compilation tasks on different domains never
   race on the counter, and the batch driver resets it at the start of
   every task so generated labels depend only on the task itself, not on
   which worker ran it or what ran before. *)
let counter_key = Domain.DLS.new_key (fun () -> ref 0)

let fresh ~prefix () =
  let counter = Domain.DLS.get counter_key in
  incr counter;
  Printf.sprintf "%s.%d" prefix !counter

let reset_fresh_counter () = Domain.DLS.get counter_key := 0
