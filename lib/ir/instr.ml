type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type fbinop = Fadd | Fsub | Fmul | Fdiv

type cond = Lt | Gt | Eq | Le | Ge | Ne

type operand = Reg of Reg.t | Imm of int

type kind =
  | Load of { dst : Reg.t; base : Reg.t; offset : int; update : bool }
  | Store of { src : Reg.t; base : Reg.t; offset : int; update : bool }
  | Load_imm of { dst : Reg.t; value : int }
  | Move of { dst : Reg.t; src : Reg.t }
  | Binop of { op : binop; dst : Reg.t; lhs : Reg.t; rhs : operand }
  | Fbinop of { op : fbinop; dst : Reg.t; lhs : Reg.t; rhs : Reg.t }
  | Compare of { dst : Reg.t; lhs : Reg.t; rhs : operand }
  | Fcompare of { dst : Reg.t; lhs : Reg.t; rhs : Reg.t }
  | Branch_cond of {
      cr : Reg.t;
      cond : cond;
      expect : bool;
      taken : Label.t;
      fallthru : Label.t;
    }
  | Jump of { target : Label.t }
  | Call of { name : string; args : Reg.t list; ret : Reg.t option }
  | Halt

type t = {
  uid : int;
  kind : kind;
}

type unit_ty = Fixed | Float | Branch

module Gen = struct
  type instr = t

  type t = { mutable next : int }

  let create () = { next = 0 }

  let make gen kind =
    let uid = gen.next in
    gen.next <- uid + 1;
    { uid; kind }

  let copy gen i = make gen i.kind
end

let uid i = i.uid
let kind i = i.kind
let with_kind i kind = { i with kind }

let operand_uses = function Reg r -> [ r ] | Imm _ -> []

let defs i =
  match i.kind with
  | Load { dst; base; update; _ } -> if update then [ dst; base ] else [ dst ]
  | Store { base; update; _ } -> if update then [ base ] else []
  | Load_imm { dst; _ } -> [ dst ]
  | Move { dst; _ } -> [ dst ]
  | Binop { dst; _ } -> [ dst ]
  | Fbinop { dst; _ } -> [ dst ]
  | Compare { dst; _ } -> [ dst ]
  | Fcompare { dst; _ } -> [ dst ]
  | Branch_cond _ | Jump _ | Halt -> []
  | Call { ret; _ } -> ( match ret with None -> [] | Some r -> [ r ])

let uses i =
  match i.kind with
  | Load { base; _ } -> [ base ]
  | Store { src; base; _ } -> [ src; base ]
  | Load_imm _ -> []
  | Move { src; _ } -> [ src ]
  | Binop { lhs; rhs; _ } -> lhs :: operand_uses rhs
  | Fbinop { lhs; rhs; _ } -> [ lhs; rhs ]
  | Compare { lhs; rhs; _ } -> lhs :: operand_uses rhs
  | Fcompare { lhs; rhs; _ } -> [ lhs; rhs ]
  | Branch_cond { cr; _ } -> [ cr ]
  | Jump _ | Halt -> []
  | Call { args; _ } -> args

let unit_ty i =
  match i.kind with
  | Branch_cond _ | Jump _ | Halt -> Branch
  | Fbinop _ | Fcompare _ -> Float
  | Load _ | Store _ | Load_imm _ | Move _ | Binop _ | Compare _ | Call _ ->
      Fixed

let is_branch i =
  match i.kind with
  | Branch_cond _ | Jump _ | Halt -> true
  | Load _ | Store _ | Load_imm _ | Move _ | Binop _ | Fbinop _ | Compare _
  | Fcompare _ | Call _ ->
      false

let is_cond_branch i =
  match i.kind with Branch_cond _ -> true | _ -> false

let is_load i = match i.kind with Load _ -> true | _ -> false
let is_store i = match i.kind with Store _ -> true | _ -> false
let is_call i = match i.kind with Call _ -> true | _ -> false

let touches_memory i =
  match i.kind with Load _ | Store _ | Call _ -> true | _ -> false

let movable_across_blocks i = not (is_call i || is_branch i)

let speculable i = movable_across_blocks i && not (is_store i)

let rename_reg ~from_reg ~to_reg r = if Reg.equal r from_reg then to_reg else r

let rename_uses i ~from_reg ~to_reg =
  let rn = rename_reg ~from_reg ~to_reg in
  let rn_op = function Reg r -> Reg (rn r) | Imm _ as op -> op in
  let kind =
    match i.kind with
    | Load ({ base; _ } as l) -> Load { l with base = rn base }
    | Store ({ src; base; _ } as s) -> Store { s with src = rn src; base = rn base }
    | Load_imm _ as k -> k
    | Move ({ src; _ } as m) -> Move { m with src = rn src }
    | Binop ({ lhs; rhs; _ } as b) -> Binop { b with lhs = rn lhs; rhs = rn_op rhs }
    | Fbinop ({ lhs; rhs; _ } as b) -> Fbinop { b with lhs = rn lhs; rhs = rn rhs }
    | Compare ({ lhs; rhs; _ } as c) ->
        Compare { c with lhs = rn lhs; rhs = rn_op rhs }
    | Fcompare ({ lhs; rhs; _ } as c) ->
        Fcompare { c with lhs = rn lhs; rhs = rn rhs }
    | Branch_cond ({ cr; _ } as b) -> Branch_cond { b with cr = rn cr }
    | Jump _ as k -> k
    | Call ({ args; _ } as c) -> Call { c with args = List.map rn args }
    | Halt -> Halt
  in
  { i with kind }

let rename_def i ~from_reg ~to_reg =
  let bad () =
    invalid_arg
      (Fmt.str "Instr.rename_def: %a does not (plainly) define %a" Fmt.int i.uid
         Reg.pp from_reg)
  in
  let check r = if not (Reg.equal r from_reg) then bad () in
  let kind =
    match i.kind with
    | Load ({ dst; base; update; _ } as l) ->
        if update && Reg.equal base from_reg then bad ();
        check dst;
        Load { l with dst = to_reg }
    | Store _ -> bad ()
    | Load_imm ({ dst; _ } as l) ->
        check dst;
        Load_imm { l with dst = to_reg }
    | Move ({ dst; _ } as m) ->
        check dst;
        Move { m with dst = to_reg }
    | Binop ({ dst; _ } as b) ->
        check dst;
        Binop { b with dst = to_reg }
    | Fbinop ({ dst; _ } as b) ->
        check dst;
        Fbinop { b with dst = to_reg }
    | Compare ({ dst; _ } as c) ->
        check dst;
        Compare { c with dst = to_reg }
    | Fcompare ({ dst; _ } as c) ->
        check dst;
        Fcompare { c with dst = to_reg }
    | Branch_cond _ | Jump _ | Halt -> bad ()
    | Call ({ ret = Some r; _ } as c) ->
        check r;
        Call { c with ret = Some to_reg }
    | Call { ret = None; _ } -> bad ()
  in
  { i with kind }

let map_regs ~f i =
  let op = function Reg r -> Reg (f r) | Imm _ as o -> o in
  let kind =
    match i.kind with
    | Load ({ dst; base; _ } as l) -> Load { l with dst = f dst; base = f base }
    | Store ({ src; base; _ } as s) ->
        Store { s with src = f src; base = f base }
    | Load_imm ({ dst; _ } as l) -> Load_imm { l with dst = f dst }
    | Move { dst; src } -> Move { dst = f dst; src = f src }
    | Binop ({ dst; lhs; rhs; _ } as b) ->
        Binop { b with dst = f dst; lhs = f lhs; rhs = op rhs }
    | Fbinop ({ dst; lhs; rhs; _ } as b) ->
        Fbinop { b with dst = f dst; lhs = f lhs; rhs = f rhs }
    | Compare { dst; lhs; rhs } ->
        Compare { dst = f dst; lhs = f lhs; rhs = op rhs }
    | Fcompare { dst; lhs; rhs } ->
        Fcompare { dst = f dst; lhs = f lhs; rhs = f rhs }
    | Branch_cond ({ cr; _ } as b) -> Branch_cond { b with cr = f cr }
    | Jump _ as k -> k
    | Call ({ args; ret; _ } as c) ->
        Call { c with args = List.map f args; ret = Option.map f ret }
    | Halt -> Halt
  in
  { i with kind }

let negate_cond = function
  | Lt -> Ge
  | Gt -> Le
  | Eq -> Ne
  | Le -> Gt
  | Ge -> Lt
  | Ne -> Eq

let eval_cond c ord =
  match c with
  | Lt -> ord < 0
  | Gt -> ord > 0
  | Eq -> ord = 0
  | Le -> ord <= 0
  | Ge -> ord >= 0
  | Ne -> ord <> 0

let equal_kind (a : kind) (b : kind) = a = b

let pp_cond ppf c =
  Fmt.string ppf
    (match c with
    | Lt -> "lt"
    | Gt -> "gt"
    | Eq -> "eq"
    | Le -> "le"
    | Ge -> "ge"
    | Ne -> "ne")

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "A"
    | Sub -> "S"
    | Mul -> "MUL"
    | Div -> "DIV"
    | Rem -> "REM"
    | And -> "AND"
    | Or -> "OR"
    | Xor -> "XOR"
    | Shl -> "SL"
    | Shr -> "SR")

let pp_fbinop ppf op =
  Fmt.string ppf
    (match op with Fadd -> "FA" | Fsub -> "FS" | Fmul -> "FM" | Fdiv -> "FD")

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm n -> Fmt.int ppf n

let pp_unit_ty ppf u =
  Fmt.string ppf
    (match u with Fixed -> "fixed" | Float -> "float" | Branch -> "branch")

let pp ppf i =
  match i.kind with
  | Load { dst; base; offset; update = false } ->
      Fmt.pf ppf "L     %a=mem(%a,%d)" Reg.pp dst Reg.pp base offset
  | Load { dst; base; offset; update = true } ->
      Fmt.pf ppf "LU    %a,%a=mem(%a,%d)" Reg.pp dst Reg.pp base Reg.pp base
        offset
  | Store { src; base; offset; update = false } ->
      Fmt.pf ppf "ST    mem(%a,%d)=%a" Reg.pp base offset Reg.pp src
  | Store { src; base; offset; update = true } ->
      Fmt.pf ppf "STU   mem(%a,%d),%a=%a" Reg.pp base offset Reg.pp base Reg.pp
        src
  | Load_imm { dst; value } -> Fmt.pf ppf "LI    %a=%d" Reg.pp dst value
  | Move { dst; src } -> Fmt.pf ppf "LR    %a=%a" Reg.pp dst Reg.pp src
  | Binop { op; dst; lhs; rhs = Imm n } ->
      Fmt.pf ppf "%aI   %a=%a,%d" pp_binop op Reg.pp dst Reg.pp lhs n
  | Binop { op; dst; lhs; rhs } ->
      Fmt.pf ppf "%a    %a=%a,%a" pp_binop op Reg.pp dst Reg.pp lhs pp_operand
        rhs
  | Fbinop { op; dst; lhs; rhs } ->
      Fmt.pf ppf "%a    %a=%a,%a" pp_fbinop op Reg.pp dst Reg.pp lhs Reg.pp rhs
  | Compare { dst; lhs; rhs } ->
      Fmt.pf ppf "C     %a=%a,%a" Reg.pp dst Reg.pp lhs pp_operand rhs
  | Fcompare { dst; lhs; rhs } ->
      Fmt.pf ppf "FC    %a=%a,%a" Reg.pp dst Reg.pp lhs Reg.pp rhs
  | Branch_cond { cr; cond; expect; taken; _ } ->
      Fmt.pf ppf "%s    %a,%a,%a"
        (if expect then "BT" else "BF")
        Label.pp taken Reg.pp cr pp_cond cond
  | Jump { target } -> Fmt.pf ppf "B     %a" Label.pp target
  | Call { name; args; ret } ->
      let pp_ret ppf = function
        | None -> ()
        | Some r -> Fmt.pf ppf "%a=" Reg.pp r
      in
      (* A plain comma, not [Fmt.comma]: its break hint could wrap the
         line, and this rendering must stay parseable by {!Asm}. *)
      Fmt.pf ppf "CALL  %a%s(%a)" pp_ret ret name
        Fmt.(list ~sep:(any ",") Reg.pp)
        args
  | Halt -> Fmt.string ppf "HALT"
