(** Branch-target labels.

    Labels name basic blocks; the paper's pseudo-code uses labels such as
    [CL.0], [CL.4]. A label is a string plus an equality/compare/hash
    suite, so that it can key maps and hash tables. *)

type t = string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val fresh : prefix:string -> unit -> t
(** [fresh ~prefix ()] generates a label unique within the current
    domain, e.g. [fresh ~prefix:"CL" () = "CL.17"]. Used by CFG
    transformations (unrolling, rotation) that must invent new block
    names. The counter is domain-local, so concurrent compilation tasks
    never race on it. *)

val reset_fresh_counter : unit -> unit
(** Reset the current domain's [fresh] counter to zero. The batch
    driver calls this at the start of every compilation task so label
    streams are a function of the task alone — a prerequisite for
    byte-identical output across worker counts. Never call it while a
    CFG built with [fresh] labels is still live in this domain: reuse of
    a label within one CFG would corrupt it. *)
