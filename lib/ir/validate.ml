open Gis_util

let reg_is cls (r : Reg.t) = r.Reg.cls = cls

let check_kind ~err ~where kind =
  let expect what ok =
    if not ok then err (Fmt.str "%s: %s" where what)
  in
  match kind with
  | Instr.Load { dst; base; update; _ } ->
      expect "load destination must be gpr or fpr" (not (reg_is Reg.Cr dst));
      expect "load base must be gpr" (reg_is Reg.Gpr base);
      if update then begin
        expect "update load destination must be gpr" (reg_is Reg.Gpr dst);
        expect "update load with dst = base is ambiguous"
          (not (Reg.equal dst base))
      end
  | Instr.Store { src; base; _ } ->
      expect "store source must be gpr or fpr" (not (reg_is Reg.Cr src));
      expect "store base must be gpr" (reg_is Reg.Gpr base)
  | Instr.Load_imm { dst; _ } -> expect "li destination must be gpr" (reg_is Reg.Gpr dst)
  | Instr.Move { dst; src } -> (
      (* Same-class moves between GPRs or FPRs, plus the two
         condition-register transfer forms (mfcr/mtcr): cr -> gpr and
         gpr -> cr, which the allocator uses to spill CRs through an
         integer scratch. cr -> cr stays ill-formed. *)
      match dst.Reg.cls, src.Reg.cls with
      | Reg.Gpr, Reg.Gpr | Reg.Fpr, Reg.Fpr -> ()
      | Reg.Gpr, Reg.Cr | Reg.Cr, Reg.Gpr -> ()
      | Reg.Cr, Reg.Cr ->
          expect "move of condition registers is not a machine instruction"
            false
      | _ -> expect "move operands must share a class or transfer cr<->gpr" false)
  | Instr.Binop { dst; lhs; rhs; _ } ->
      expect "binop registers must be gpr"
        (reg_is Reg.Gpr dst && reg_is Reg.Gpr lhs
        && (match rhs with Instr.Reg r -> reg_is Reg.Gpr r | Instr.Imm _ -> true))
  | Instr.Fbinop { dst; lhs; rhs; _ } ->
      expect "fbinop registers must be fpr"
        (reg_is Reg.Fpr dst && reg_is Reg.Fpr lhs && reg_is Reg.Fpr rhs)
  | Instr.Compare { dst; lhs; rhs } ->
      expect "compare destination must be cr" (reg_is Reg.Cr dst);
      expect "compare operands must be gpr"
        (reg_is Reg.Gpr lhs
        && (match rhs with Instr.Reg r -> reg_is Reg.Gpr r | Instr.Imm _ -> true))
  | Instr.Fcompare { dst; lhs; rhs } ->
      expect "fcompare destination must be cr" (reg_is Reg.Cr dst);
      expect "fcompare operands must be fpr" (reg_is Reg.Fpr lhs && reg_is Reg.Fpr rhs)
  | Instr.Branch_cond { cr; _ } ->
      expect "branch must test a condition register" (reg_is Reg.Cr cr)
  | Instr.Jump _ | Instr.Halt -> ()
  | Instr.Call { args; ret; _ } ->
      expect "call arguments must be gpr or fpr"
        (List.for_all (fun r -> not (reg_is Reg.Cr r)) args);
      expect "call result must be gpr or fpr"
        (match ret with None -> true | Some r -> not (reg_is Reg.Cr r))

let is_branch_kind = function
  | Instr.Branch_cond _ | Instr.Jump _ | Instr.Halt -> true
  | Instr.Load _ | Instr.Store _ | Instr.Load_imm _ | Instr.Move _
  | Instr.Binop _ | Instr.Fbinop _ | Instr.Compare _ | Instr.Fcompare _
  | Instr.Call _ ->
      false

let check cfg =
  let errors = ref [] in
  let err msg = errors := msg :: !errors in
  let seen_uids = Hashtbl.create 64 in
  let check_instr ~where ~terminator i =
    let u = Instr.uid i in
    if Hashtbl.mem seen_uids u then err (Fmt.str "%s: duplicate uid %d" where u)
    else Hashtbl.add seen_uids u ();
    let branchy = is_branch_kind (Instr.kind i) in
    if terminator && not branchy then
      err (Fmt.str "%s: terminator is not a branch" where);
    if (not terminator) && branchy then
      err (Fmt.str "%s: branch in block body" where);
    check_kind ~err ~where (Instr.kind i)
  in
  let layout = Cfg.layout cfg in
  let layout_set = Hashtbl.create 16 in
  List.iter
    (fun id ->
      if Hashtbl.mem layout_set id then
        err (Fmt.str "block id %d appears twice in the layout" id)
      else Hashtbl.add layout_set id ())
    layout;
  if layout <> [] && not (Hashtbl.mem layout_set (Cfg.entry cfg)) then
    err "entry block is not in the layout";
  Cfg.iter_blocks
    (fun b ->
      let label = b.Block.label in
      Vec.iteri
        (fun idx i ->
          let where = Fmt.str "%a[%d] %a" Label.pp label idx Instr.pp i in
          check_instr ~where ~terminator:false i)
        b.Block.body;
      let where = Fmt.str "%a[term] %a" Label.pp label Instr.pp b.Block.term in
      check_instr ~where ~terminator:true b.Block.term;
      List.iter
        (fun target ->
          match Cfg.find_label cfg target with
          | None ->
              err
                (Fmt.str "%a: unresolved branch target %a" Label.pp label
                   Label.pp target)
          | Some tid when not (Hashtbl.mem layout_set tid) ->
              (* The label resolves, but its block was detached from the
                 layout (e.g. a loop header removed after rotation): the
                 branch escapes into dead storage. *)
              err
                (Fmt.str "%a: branch target %a names a detached block"
                   Label.pp label Label.pp target)
          | Some _ -> ())
        (try Block.successor_labels b with Invalid_argument m -> err m; []))
    cfg;
  if Cfg.num_blocks cfg = 0 || layout = [] then err "empty graph";
  match List.rev !errors with [] -> Ok () | es -> Error es

let check_exn cfg =
  match check cfg with
  | Ok () -> ()
  | Error es ->
      failwith (Fmt.str "invalid IR:@,%a" Fmt.(list ~sep:cut string) es)
