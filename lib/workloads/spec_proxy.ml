open Gis_frontend
open Gis_sim

type t = {
  name : string;
  source : string;
  setup : Codegen.compiled -> Simulator.input;
}

let input_with compiled ~n ~arrays =
  {
    Simulator.no_input with
    Simulator.int_regs = [ (Codegen.var_reg compiled "n", n) ];
    memory = Codegen.array_input compiled arrays;
  }

let gen_list ~seed ~len f =
  let rng = Prng.create ~seed in
  List.init len (fun i -> f rng i)

(* Interpreter-style dispatch over a pointer-chased heap (the Lisp
   interpreter's cdr-walk): the loop-closing test depends on the cell
   just loaded, so useful motion cannot start the next iteration early —
   the compares inside the branch arms, ready from the previous
   iteration's state, are the only instructions that can fill the delay
   slots, and moving them is speculative. *)
let li =
  {
    name = "li";
    source =
      {|
int heap[512];
int n;
int acc;
int i;
int t;
int lim;
i = 1;
acc = 0;
lim = 1000000;
while (i != 0) {
  t = heap[i];
  i = t & 511;
  if (t > 4096) {
    if (acc < lim) { acc = acc + t; }
    else { acc = acc - t; }
  } else {
    if (t > 2048) {
      if (acc > 0) { acc = acc ^ t; }
    } else {
      acc = acc + 1;
    }
  }
}
print(acc);
|};
    setup =
      (fun c ->
        (* A single chain 1 -> p1 -> p2 -> ... -> 0 through the whole
           heap, with pseudo-random tag bits above the pointer. *)
        let rng = Prng.create ~seed:11 in
        let len = 448 in
        let order =
          (* a deterministic shuffle of 2..len-1 *)
          let arr = Array.init (len - 2) (fun k -> k + 2) in
          for k = Array.length arr - 1 downto 1 do
            let j = Prng.int rng (k + 1) in
            let tmp = arr.(k) in
            arr.(k) <- arr.(j);
            arr.(j) <- tmp
          done;
          Array.to_list arr
        in
        let chain = (1 :: order) @ [ 0 ] in
        let heap = Array.make len 0 in
        let rec link = function
          | a :: (b :: _ as rest) ->
              heap.(a) <- b lor (Prng.int rng 16 * 512);
              link rest
          | [ last ] -> heap.(last) <- 0
          | [] -> ()
        in
        link chain;
        input_with c ~n:0 ~arrays:[ ("heap", Array.to_list heap) ]);
  }

(* eqntott's cmppt: scan two vectors, rare inequality. Useful motion
   (latch into the load block) covers the delayed loads. *)
let eqntott =
  {
    name = "eqntott";
    source =
      {|
int a[512];
int b[512];
int n;
int i;
int res;
int u;
int v;
i = 0;
res = 0;
while (i < n) {
  u = a[i];
  v = b[i];
  if (u != v) {
    if (u < v) { res = res - 1; } else { res = res + 1; }
  }
  i = i + 1;
}
print(res);
|};
    setup =
      (fun c ->
        let base = gen_list ~seed:23 ~len:448 (fun rng _ -> Prng.int rng 1000) in
        let b_side =
          List.mapi (fun i v -> if i mod 17 = 0 then v + 1 else v) base
        in
        input_with c ~n:448 ~arrays:[ ("a", base); ("b", b_side) ]);
  }

(* espresso: dense bitwise kernel in one large block — the local
   scheduler already fills the fixed point unit. Like the real
   espresso, the kernel also maintains global set statistics in
   memory (onct/offct): two read-modify-write chains through distinct
   single-cell arrays. Their base registers differ syntactically, so
   the conservative same-base rule serializes the two chains; the
   affine address analysis proves the cells disjoint and lets them
   interleave — the A1 measurement in EXPERIMENTS.md. *)
let espresso =
  {
    name = "espresso";
    source =
      {|
int a[512];
int b[512];
int c[512];
int onct[1];
int offct[1];
int n;
int i;
int s;
int x;
int y;
int t1;
int t2;
int t3;
int t4;
i = 0;
s = 0;
while (i < n) {
  x = a[i];
  y = b[i];
  t1 = x & y;
  t2 = x | y;
  t3 = x ^ y;
  onct[0] = onct[0] + (t1 & 15);
  offct[0] = offct[0] + (t2 & 15);
  t4 = (t1 << 1) + (t2 >> 1);
  c[i] = t4 + t3;
  s = s + t1;
  s = s ^ t2;
  s = s + (t3 & 255);
  i = i + 1;
}
print(s + onct[0] + offct[0]);
|};
    setup =
      (fun c ->
        input_with c ~n:384
          ~arrays:
            [
              ("a", gen_list ~seed:37 ~len:384 (fun rng _ -> Prng.bits rng));
              ("b", gen_list ~seed:41 ~len:384 (fun rng _ -> Prng.bits rng));
            ]);
  }

(* gcc: unpredictable branches whose arms are dominated by stores, which
   may never be moved speculatively (Section 5.1), and which read [i] so
   the latch cannot be hoisted usefully either — the shape that left the
   paper's gcc without improvement. Like the real gcc, the loop also
   bumps memory-resident statistics counters (nhit/nmiss): two
   read-modify-write chains through distinct single-cell arrays whose
   base registers differ syntactically, so the conservative same-base
   rule serializes them; the affine analysis proves the cells disjoint
   and lets the chains overlap — the A1 measurement in EXPERIMENTS.md. *)
let gcc =
  {
    name = "gcc";
    source =
      {|
int tab[512];
int nhit[1];
int nmiss[1];
int n;
int i;
int x;
int h;
int acc;
i = 0;
acc = 0;
while (i < n) {
  x = tab[i];
  h = x ^ (i << 5);
  h = h + (h >> 3);
  h = h ^ (h << 2);
  h = h + (h >> 5);
  h = h & 1023;
  nhit[0] = nhit[0] + (h & 7);
  nmiss[0] = nmiss[0] ^ x;
  if (x > 150) {
    tab[i] = h;
  } else {
    if (x > 40) { tab[i] = h + 1; }
    else { acc = acc + h; }
  }
  i = i + 1;
}
print(acc + nhit[0] + nmiss[0]);
|};
    setup =
      (fun c ->
        input_with c ~n:384
          ~arrays:
            [ ("tab", gen_list ~seed:53 ~len:384 (fun rng _ -> Prng.int rng 200)) ]);
  }

let all = [ li; eqntott; espresso; gcc ]

let compile t = Codegen.compile_string t.source
