open Gis_frontend.Ast

(* Grammar knobs. [default] reproduces the historical generator draw for
   draw (same PRNG consumption order), so seeds keep denoting the same
   programs across the repo. [hardened] is the fuzzing grammar: deeper
   nesting, do-while loops, wider literals, call arguments of full
   expression depth, and store/load aliasing pairs through the same
   masked index window — while keeping the two guarantees every consumer
   relies on (all loops are counter-driven and terminate; every scalar
   is printed at the end). *)
type params = {
  expr_depth : int;  (** depth budget for right-hand-side expressions *)
  stmt_depth : int;  (** nesting budget for if/while/for bodies *)
  literal_range : int;  (** literals drawn from [-range/4, 3*range/4) *)
  shift_range : int;  (** shift counts drawn from [0, shift_range) *)
  do_while : bool;  (** generate do-while loops *)
  call_args : bool;  (** print calls take full-depth argument expressions *)
  alias_pairs : bool;  (** emit store-then-load pairs to one masked slot *)
  mask_load_index : bool;
      (** mask array load indices to the array window, like stores.
          Unmasked loads of wild indices read 0 from untouched memory —
          well-defined now that spill storage lives in its own
          simulator segment, unreachable from program addresses. The
          hardened grammar masks (denser in-window aliasing); the
          default grammar leaves them wild, stressing that isolation. *)
  max_scalars : int;
  max_arrays : int;
  body_len : int;  (** top-level statement count is 3 + [0, body_len) *)
}

let default =
  {
    expr_depth = 2;
    stmt_depth = 2;
    literal_range = 64;
    shift_range = 5;
    do_while = false;
    call_args = false;
    alias_pairs = false;
    mask_load_index = false;
    max_scalars = 4;
    max_arrays = 2;
    body_len = 5;
  }

let hardened =
  {
    expr_depth = 3;
    stmt_depth = 3;
    literal_range = 1 lsl 16;
    shift_range = 31;
    do_while = true;
    call_args = true;
    alias_pairs = true;
    mask_load_index = true;
    max_scalars = 6;
    max_arrays = 3;
    body_len = 8;
  }

type ctx = {
  rng : Prng.t;
  params : params;
  scalars : string list;  (** assignable scalars *)
  arrays : string list;
  mutable counters : int;  (** loop counters allocated so far *)
}

let literal ctx = Prng.int ctx.rng ctx.params.literal_range - (ctx.params.literal_range / 4)

let rec gen_expr ctx depth =
  if depth = 0 then
    match Prng.int ctx.rng 3 with
    | 0 -> Int (literal ctx)
    | 1 -> Var (Prng.pick ctx.rng ctx.scalars)
    | _ -> (
        match ctx.arrays with
        | [] -> Var (Prng.pick ctx.rng ctx.scalars)
        | arrays -> Index (Prng.pick ctx.rng arrays, Int (Prng.int ctx.rng 16)))
  else
    match Prng.int ctx.rng 6 with
    | 0 ->
        let op = Prng.pick ctx.rng [ Add; Sub; Mul; And; Or; Xor ] in
        Binop (op, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 1 ->
        (* Division and remainder only by a non-zero literal. *)
        let op = Prng.pick ctx.rng [ Div; Rem ] in
        Binop (op, gen_expr ctx (depth - 1), Int (1 + Prng.int ctx.rng 9))
    | 2 ->
        let op = Prng.pick ctx.rng [ Shl; Shr ] in
        Binop (op, gen_expr ctx (depth - 1), Int (Prng.int ctx.rng ctx.params.shift_range))
    | 3 -> Neg (gen_expr ctx (depth - 1))
    | 4 -> (
        match ctx.arrays with
        | [] -> gen_expr ctx 0
        | arrays ->
            let idx = gen_expr ctx (depth - 1) in
            let idx =
              if ctx.params.mask_load_index then Binop (And, idx, Int 15)
              else idx
            in
            Index (Prng.pick ctx.rng arrays, idx))
    | _ -> gen_expr ctx 0

let rec gen_cond ctx depth =
  if depth = 0 || Prng.int ctx.rng 3 = 0 then
    let op = Prng.pick ctx.rng [ Lt; Gt; Le; Ge; Eq; Ne ] in
    Rel (op, gen_expr ctx 1, gen_expr ctx 1)
  else
    match Prng.int ctx.rng 3 with
    | 0 -> Not (gen_cond ctx (depth - 1))
    | 1 -> And_also (gen_cond ctx (depth - 1), gen_cond ctx (depth - 1))
    | _ -> Or_else (gen_cond ctx (depth - 1), gen_cond ctx (depth - 1))

(* Array stores use a masked index expression so that runs stay inside
   the address space deterministically even for wild indices. *)
let store_index ctx = Binop (And, gen_expr ctx 1, Int 15)

let max_counters = 12

(* A fresh private loop counter. The body generator never assigns
   counters (they are not in [ctx.scalars]), so counter-driven loops
   always terminate. *)
let fresh_counter ctx =
  let c = Printf.sprintf "c%d" ctx.counters in
  ctx.counters <- ctx.counters + 1;
  c

let rec gen_stmt ctx depth =
  let p = ctx.params in
  (* Extra grammar productions are appended AFTER the historical ones so
     the legacy choice indices (and PRNG draw order) are untouched when
     the extensions are disabled. *)
  let extra =
    (if p.do_while then 1 else 0)
    + (if p.call_args then 1 else 0)
    + if p.alias_pairs then 1 else 0
  in
  let choices =
    if depth = 0 then 3
    else if ctx.counters >= max_counters then 4
    else 7 + extra
  in
  match Prng.int ctx.rng choices with
  | 0 -> Assign (Prng.pick ctx.rng ctx.scalars, gen_expr ctx p.expr_depth)
  | 1 -> (
      match ctx.arrays with
      | [] -> Assign (Prng.pick ctx.rng ctx.scalars, gen_expr ctx p.expr_depth)
      | arrays ->
          Store (Prng.pick ctx.rng arrays, store_index ctx, gen_expr ctx p.expr_depth))
  | 2 -> Print (gen_expr ctx p.expr_depth)
  | 3 ->
      If
        ( gen_cond ctx 2,
          gen_stmts ctx (depth - 1) (1 + Prng.int ctx.rng 3),
          if Prng.bool ctx.rng then gen_stmts ctx (depth - 1) (1 + Prng.int ctx.rng 2)
          else [] )
  | 4 | 5 ->
      (* A bounded loop driven by a private counter. *)
      let c = fresh_counter ctx in
      let bound = 2 + Prng.int ctx.rng 6 in
      let body =
        gen_stmts ctx (depth - 1) (1 + Prng.int ctx.rng 3)
        @ [ Assign (c, Binop (Add, Var c, Int 1)) ]
      in
      Block [ Assign (c, Int 0); While (Rel (Lt, Var c, Int bound), body) ]
  | 6 ->
      let c = fresh_counter ctx in
      let bound = 1 + Prng.int ctx.rng 4 in
      Block
        [
          For
            ( Some (Assign (c, Int 0)),
              Some (Rel (Lt, Var c, Int bound)),
              Some (Assign (c, Binop (Add, Var c, Int 1))),
              gen_stmts ctx (depth - 1) (1 + Prng.int ctx.rng 3) );
        ]
  | n -> gen_extra ctx depth (n - 7)

(* The hardened-grammar productions, numbered in the fixed order
   do-while, call-with-arguments, aliasing pair — whichever of them are
   enabled occupy the slots after the legacy productions. *)
and gen_extra ctx depth slot =
  let p = ctx.params in
  let enabled =
    List.filter_map
      (fun (on, tag) -> if on then Some tag else None)
      [ (p.do_while, `Do_while); (p.call_args, `Call); (p.alias_pairs, `Alias) ]
  in
  match List.nth enabled slot with
  | `Do_while ->
      (* do { body; c = c + 1 } while (c < bound): runs bound times. *)
      let c = fresh_counter ctx in
      let bound = 1 + Prng.int ctx.rng 5 in
      let body =
        gen_stmts ctx (depth - 1) (1 + Prng.int ctx.rng 3)
        @ [ Assign (c, Binop (Add, Var c, Int 1)) ]
      in
      Block
        [ Assign (c, Int 0); Do_while (body, Rel (Lt, Var c, Int bound)) ]
  | `Call ->
      (* A call whose argument is a full-depth expression: lowers to a
         Call instruction fed by a freshly computed register. *)
      Print (gen_expr ctx (p.expr_depth + 1))
  | `Alias -> (
      (* Store-then-load aliasing through one masked slot: the load must
         observe the store (or a later conflicting one), which is
         exactly the memory dependence speculation must not break. *)
      match ctx.arrays with
      | [] -> Print (gen_expr ctx p.expr_depth)
      | arrays ->
          let a = Prng.pick ctx.rng arrays in
          let idx = store_index ctx in
          let x = Prng.pick ctx.rng ctx.scalars in
          Block
            [
              Store (a, idx, gen_expr ctx p.expr_depth);
              Assign (x, Binop (Add, Index (a, idx), gen_expr ctx 1));
            ])

and gen_stmts ctx depth count = List.init count (fun _ -> gen_stmt ctx depth)

let generate_with params ~seed =
  let rng = Prng.create ~seed in
  let n_scalars = 3 + Prng.int rng params.max_scalars in
  let scalars = List.init n_scalars (Printf.sprintf "x%d") in
  let n_arrays = 1 + Prng.int rng params.max_arrays in
  let arrays = List.init n_arrays (Printf.sprintf "a%d") in
  let ctx = { rng; params; scalars; arrays; counters = 0 } in
  let body = gen_stmts ctx params.stmt_depth (3 + Prng.int rng params.body_len) in
  let decls =
    List.map (fun s -> Scalar (s, Some (Prng.int rng 32))) scalars
    @ List.map (fun a -> Array (a, 16)) arrays
    @ List.init max_counters (fun i -> Scalar (Printf.sprintf "c%d" i, Some 0))
  in
  let epilogue = List.map (fun s -> Print (Var s)) scalars in
  { decls; body = body @ epilogue }

(* Retrying with derived seeds must be a pure function of the original
   seed: the k-th candidate is always [seed + k * retry_stride], so the
   retry chain — and therefore the returned program — is deterministic
   even when early candidates die of a codegen restriction. *)
let retry_stride = 7919

let generate ~seed = generate_with default ~seed

let generate_compiled_via ~compile params ~seed =
  let rec try_seed s attempts =
    if attempts = 0 then failwith "Random_prog: generation kept failing"
    else
      let prog = generate_with params ~seed:s in
      match compile prog with
      | Ok compiled -> compiled
      | Error _ -> try_seed (s + retry_stride) (attempts - 1)
  in
  try_seed seed 10

let compile_candidate prog =
  match Gis_frontend.Codegen.compile prog with
  | compiled -> Ok compiled
  | exception Gis_frontend.Codegen.Error m -> Error m

let generate_compiled_with params ~seed =
  generate_compiled_via ~compile:compile_candidate params ~seed

let generate_compiled ~seed = generate_compiled_with default ~seed

let random_input ~seed compiled =
  let rng = Prng.create ~seed:(seed + 101) in
  {
    Gis_sim.Simulator.no_input with
    Gis_sim.Simulator.memory =
      List.concat_map
        (fun (_, base, len) ->
          List.init len (fun i -> (base + (4 * i), Prng.int rng 256 - 64)))
        compiled.Gis_frontend.Codegen.arrays;
  }
