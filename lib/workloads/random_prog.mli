(** Random structured Tiny-C programs for differential testing.

    Generated programs always terminate (every loop is driven by a
    dedicated counter the body never writes), never divide by a variable
    (division and remainder only get non-zero literal divisors), and end
    by printing every scalar — so two runs are behaviourally equal iff
    their observable traces match. Generation is deterministic in the
    seed and in the grammar parameters. *)

type params = {
  expr_depth : int;  (** depth budget for right-hand-side expressions *)
  stmt_depth : int;  (** nesting budget for if/while/for bodies *)
  literal_range : int;  (** literals drawn from [-range/4, 3*range/4) *)
  shift_range : int;  (** shift counts drawn from [0, shift_range) *)
  do_while : bool;  (** generate do-while loops *)
  call_args : bool;  (** print calls take full-depth argument expressions *)
  alias_pairs : bool;  (** emit store-then-load pairs to one masked slot *)
  mask_load_index : bool;
      (** mask array load indices to the array window (stores always
          are). The hardened grammar masks loads too, for denser
          in-window aliasing; the default grammar leaves them wild —
          out-of-bounds loads read 0 and cannot touch the register
          allocator's spill segment, which is routed by frame-register
          identity, not an address range. *)
  max_scalars : int;  (** scalar count is 3 + [0, max_scalars) *)
  max_arrays : int;  (** array count is 1 + [0, max_arrays) *)
  body_len : int;  (** top-level statement count is 3 + [0, body_len) *)
}

val default : params
(** Bit-compatible with the historical generator: for any seed,
    [generate ~seed] returns exactly the program it always has. Tests,
    the driver's [Generated] tasks and the bench corpus all rely on
    this. *)

val hardened : params
(** The fuzzing grammar: deeper statement nesting, do-while loops,
    16-bit literals, wide shift counts, call arguments of full
    expression depth, store/load aliasing pairs through one masked
    index, and masked load indices. Termination and print-all-scalars
    guarantees are unchanged. *)

val generate : seed:int -> Gis_frontend.Ast.program
(** [generate_with default]. *)

val generate_with : params -> seed:int -> Gis_frontend.Ast.program

val generate_compiled : seed:int -> Gis_frontend.Codegen.compiled
(** Generate and compile; retries with derived seeds in the unlikely
    event the program dies of a codegen restriction. *)

val generate_compiled_with :
  params -> seed:int -> Gis_frontend.Codegen.compiled

val retry_stride : int
(** Seed increment between retry candidates: attempt [k] compiles
    [generate ~seed:(seed + k * retry_stride)]. Exposed (with
    [generate_compiled_via]) so tests can pin the retry chain. *)

val generate_compiled_via :
  compile:(Gis_frontend.Ast.program -> ('a, string) result) ->
  params ->
  seed:int ->
  'a
(** The retry driver behind [generate_compiled] with an injectable
    compile function: deterministically walks the retry chain
    [seed, seed + retry_stride, ...] (up to 10 candidates) and returns
    the first [Ok]. Raises [Failure] when all candidates fail. *)

val random_input :
  seed:int -> Gis_frontend.Codegen.compiled -> Gis_sim.Simulator.input
(** Random contents for every declared array. *)
