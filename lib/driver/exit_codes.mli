(** Single source of truth for [gisc] exit codes.

    Every subcommand exits through these constants; the README's
    exit-code table documents the same values. *)

val ok : int  (** 0 *)

val compile_error : int  (** 1 — the input program failed to compile *)

val usage_error : int  (** 2 — bad flags or arguments *)

val verification_failure : int
(** 3 — a simulation mismatch, identity failure, or static
    schedule-legality violation *)

val batch_partial_failure : int  (** 4 — batch run, ≥1 program failed *)

val batch_timeout_only : int  (** 5 — batch run, only timeouts failed *)

val fuzz_finding : int
(** 6 — [gisc fuzz] found at least one divergence, checker error, or
    crash; reproducers are in the corpus directory *)

val regalloc_infeasible : int
(** 7 — register allocation reported the procedure infeasible for the
    requested register file (deterministic, not a crash) *)

val describe : int -> string
(** Human-readable meaning of a code; ["unknown"] otherwise. *)

val all : int list
(** The codes above, ascending. *)
