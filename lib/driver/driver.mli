(** Parallel batch compilation service.

    Takes N independent compilation units and schedules them across a
    fixed pool of OCaml 5 domains pulling from a shared work queue.
    The paper's regions are per-procedure, so whole compilation units
    are embarrassingly parallel — each task compiles, schedules,
    validates and (optionally) simulates one unit with no shared
    mutable state.

    Guarantees:

    - {b Deterministic results}: the report lists task results in input
      order, and every result is byte-identical regardless of
      [~jobs] — worker count and queue interleaving only affect
      timing fields. Per-domain label counters are reset at the start
      of every task (see {!Gis_ir.Label.reset_fresh_counter}), so a
      task's output is a function of the task alone.
    - {b Fault isolation}: a task that raises (frontend error, scheduler
      bug, simulator trap) produces an [Error] entry in the report;
      the pool and the remaining tasks are unaffected.
    - {b Budget enforcement}: [~timeout] is a wall-clock budget for the
      whole batch, measured from pool start. A task dequeued after the
      budget is spent is marked [Timed_out] {e without being run};
      additionally, a task that itself runs longer than the budget is
      reported [Timed_out] when it finishes (cooperative — domains
      cannot be killed), so a diverging task is bounded only by the
      pipeline's own progress guards and the simulator's fuel, both of
      which are finite.
    - {b Telemetry}: per-task wall-clock spans, per-worker busy time and
      task counts, queue high-water mark, and pool utilization, all
      reportable as JSON via {!report_to_json}. *)

type source =
  | Tiny_c of string  (** Tiny-C source text *)
  | Asm of string  (** pseudo-assembly in the paper's Figure 2 notation *)
  | File of string
      (** path read inside the worker when the task runs, so batch IO
          happens in parallel and an unreadable file fails only its own
          task ([Crashed], not an exception in the caller); [.s] files
          parse as pseudo-assembly, anything else as Tiny-C *)
  | Generated of int
      (** random Tiny-C program from {!Gis_workloads.Random_prog} with
          this seed — pure data, so tasks stay deterministic *)

type task = { name : string; source : source }

val task_of_file : string -> task
(** [{ name = Filename.basename path; source = File path }]. *)

val workload_tasks : unit -> task list
(** The built-in corpus: minmax plus the four SPEC proxies, in the
    paper's order. *)

val corpus_tasks : seeds:int list -> task list
(** One generated-program task per seed. *)

type summary = {
  blocks : int;
  instrs : int;
  unrolled : int;
  rotated : int;
  moves : int;
  spec_moves : int;
  renames : int;
  events : int;  (** scheduler decision events emitted during the run *)
  spilled_regs : int;  (** symbolic registers spilled; 0 when regalloc off *)
  spill_instrs : int;  (** reload + spill-store instructions inserted *)
  spill_slots : int;  (** distinct spill slots *)
  max_pressure : int;
      (** peak live intervals across classes; 0 when regalloc off *)
  base_cycles : int;  (** -1 when simulation was disabled *)
  sched_cycles : int;  (** -1 when simulation was disabled *)
  observables : string;  (** canonical observable trace, "" unsimulated *)
  code : string;  (** the scheduled procedure, printed *)
  phases : Gis_obs.Span.t list;  (** pipeline phase spans *)
}

type error =
  | Compile_error of string
  | Crashed of string  (** exception escaping the task, printed *)
  | Timed_out of float
      (** wall-clock seconds: the task's own time when it ran over the
          budget, or the batch time elapsed when the task was skipped
          because the budget was already spent *)
  | Mismatch of string
      (** scheduling changed observable behaviour; payload is the
          base/scheduled trace pair, printed *)
  | Infeasible of string
      (** register allocation reported {!Gis_regalloc.Regalloc.Infeasible}:
          the procedure does not fit the register file even with the
          spill reservation — a deterministic, well-defined outcome,
          not a crash *)

val pp_error : error Fmt.t

val compile_task : task -> Gis_frontend.Codegen.compiled
(** Compile the task's source to a CFG; raises the frontend's own
    exceptions ([Parser.Error], [Lexer.Error], [Codegen.Error],
    [Asm.Error]). Exposed for {!Explain} and single-program tools. *)

val default_input :
  Gis_frontend.Codegen.compiled ->
  elements:int ->
  seed:int ->
  Gis_sim.Simulator.input
(** The simulation input [gisc] uses by default: deterministic
    pseudo-random contents for every declared array, and the variable
    [n] (if declared) bound to [elements]. *)

type task_result = {
  task : string;
  outcome : (summary, error) result;
  seconds : float;  (** wall-clock time inside the task *)
  worker : int;  (** pool worker (0-based) that ran the task *)
  flight : string list;
      (** on [Error] outcomes, the worker's {!Gis_obs.Flight} ring at
          the moment of failure (oldest first) — the last scheduler and
          driver events that led up to it. Empty on [Ok] results and on
          tasks skipped by the batch budget. *)
}

type pool_stats = {
  jobs : int;
  tasks : int;
  failed : int;
  wall_seconds : float;  (** end-to-end batch wall-clock time *)
  busy_seconds : float array;  (** per-worker time spent inside tasks *)
  tasks_run : int array;  (** per-worker completed task count *)
  queue_high_water : int;  (** deepest queue observed at a dequeue *)
}

val utilization : pool_stats -> float
(** [sum busy / (jobs * wall)], in [0, 1]; how busy the pool was. *)

type report = { results : task_result list; pool : pool_stats }

val failures : report -> (string * error) list
(** Failed tasks in input order; empty iff the whole batch succeeded. *)

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?simulate:bool ->
  ?elements:int ->
  ?seed:int ->
  Gis_machine.Machine.t ->
  Gis_core.Config.t ->
  task list ->
  report
(** Compile and schedule every task. [jobs] (default 1) is the domain
    pool size, clamped to the task count; workers always run in spawned
    domains, so the caller's domain-local state is never touched.
    [simulate] (default true) runs base and scheduled code on the
    simulator and checks observable equality; [elements]/[seed]
    (defaults 128/3) parameterize the default simulation input exactly
    as [gisc] does. [config.obs] is replaced by a private per-task sink
    — a shared sink would race across domains; use the [events] count
    and phase spans in each summary instead. *)

val speedup : report -> report -> float
(** [speedup sequential parallel] — ratio of batch wall-clock times. *)

val report_to_json : ?deterministic:bool -> report -> Gis_obs.Json.t
(** With [deterministic] (default false) every field that depends on
    timing or on the worker count — task seconds, phase durations,
    worker assignment, flight-recorder dumps, and all pool fields
    except [tasks]/[failed] — is zeroed or dropped, so reports are
    byte-identical across runs and job counts. *)

val pp_table : report Fmt.t
(** Human-readable batch table: one row per task plus a pool summary.
    When {!Gis_obs.Metrics} collection is enabled, also prints the
    pool's queue-wait and task-run-time log2 histograms (µs). *)
