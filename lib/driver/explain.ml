open Gis_ir
open Gis_core
open Gis_sim
open Gis_obs

(* `gisc explain`: run one program through the full pipeline with a
   provenance table attached, simulate the base and scheduled versions,
   and attribute the cycle difference to the motion kinds.

   The accounting identity behind the attribution: the simulator's
   per-block stall gaps telescope to the program's last issue cycle, so
   summing (base gap - scheduled gap) over the union of block labels
   yields exactly base.last_issue - sched.last_issue — the E-A delta of
   the paper's tables. Each block's share is then apportioned across
   the motion kinds statically present in it (largest remainders, so
   integer credits still sum exactly). *)

type t = {
  task : string;
  prov : Provenance.t;
  cfg : Cfg.t;  (** the final scheduled (and possibly allocated) CFG *)
  attribution : Provenance.attribution list;
  base_last_issue : int;
  sched_last_issue : int;
  base_cycles : int;
  sched_cycles : int;
  base_telemetry : Trace.summary;
  sched_telemetry : Trace.summary;
  bounds : Gis_bounds.Bounds.t;
      (** lower bounds and gap attribution for the scheduled run *)
  mem_edges_kept : int;
      (** Mem dependence edges the scheduled pipeline's DDGs kept *)
  mem_edges_pruned : int;
      (** Mem edges pruned by memory disambiguation (families plus the
          symbolic address analysis when [config.disambiguate]) *)
}

let delta_total e = e.base_last_issue - e.sched_last_issue

let identity_holds e =
  Provenance.attribution_total e.attribution = delta_total e

let explain ?(elements = 128) ?(seed = 3) ?(trace = false) machine
    (config : Config.t) (task : Driver.task) =
  Label.reset_fresh_counter ();
  match Driver.compile_task task with
  | exception Gis_frontend.Parser.Error m
  | exception Gis_frontend.Lexer.Error m
  | exception Gis_frontend.Codegen.Error m
  | exception Asm.Error m ->
      Error (Driver.Compile_error m)
  | exception e -> Error (Driver.Crashed (Printexc.to_string e))
  | compiled -> (
      match
        let prov = Provenance.create () in
        let config = { config with Config.prov = Some prov } in
        let baseline = Cfg.deep_copy compiled.Gis_frontend.Codegen.cfg in
        ignore (Pipeline.run machine Config.base baseline);
        let cfg = Cfg.deep_copy compiled.Gis_frontend.Codegen.cfg in
        (* Pruned-vs-kept Mem tallies for the scheduled pipeline only,
           read as [alias.*] counter deltas (the baseline run above is
           outside the window). Metrics stay enabled only if they
           already were. *)
        let was_enabled = Metrics.is_enabled () in
        if not was_enabled then Metrics.enable ();
        let alias_counts () =
          let v name = Option.value ~default:0 (Metrics.find_counter name) in
          ( v "alias.mem_edges_kept_total",
            v "alias.mem_edges_pruned_total.intra"
            + v "alias.mem_edges_pruned_total.inter" )
        in
        let kept0, pruned0 = alias_counts () in
        let stats = Pipeline.run machine config cfg in
        let kept1, pruned1 = alias_counts () in
        if not was_enabled then Metrics.disable ();
        let input =
          match task.Driver.source with
          | Driver.Generated gseed ->
              Gis_workloads.Random_prog.random_input ~seed:gseed compiled
          | Driver.Tiny_c _ | Driver.Asm _ | Driver.File _ ->
              Driver.default_input compiled ~elements ~seed
        in
        let sched_input, frame =
          match stats.Pipeline.regalloc with
          | Some alloc ->
              ( Gis_regalloc.Regalloc.remap_input alloc input,
                alloc.Gis_regalloc.Regalloc.frame )
          | None -> (input, None)
        in
        let ob = Simulator.run ~trace machine baseline input in
        let os = Simulator.run ~trace ?frame machine cfg sched_input in
        let attribution =
          Provenance.attribute prov ~base:ob.Simulator.telemetry
            ~sched:os.Simulator.telemetry
        in
        let bounds =
          Gis_bounds.Bounds.compute ~machine
            ~disambig:config.Config.disambiguate
            ~halted:(os.Simulator.stop = Simulator.Halted)
            cfg os.Simulator.telemetry
        in
        {
          task = task.Driver.name;
          prov;
          cfg;
          attribution;
          base_last_issue = ob.Simulator.telemetry.Trace.last_issue;
          sched_last_issue = os.Simulator.telemetry.Trace.last_issue;
          base_cycles = ob.Simulator.cycles;
          sched_cycles = os.Simulator.cycles;
          base_telemetry = ob.Simulator.telemetry;
          sched_telemetry = os.Simulator.telemetry;
          bounds;
          mem_edges_kept = kept1 - kept0;
          mem_edges_pruned = pruned1 - pruned0;
        }
      with
      | e -> Ok e
      | exception Gis_regalloc.Regalloc.Infeasible m ->
          Error (Driver.Infeasible m)
      | exception exn -> Error (Driver.Crashed (Printexc.to_string exn)))

(* ---- rendering ---- *)

let pp_record ppf (r : Provenance.record) =
  Fmt.pf ppf "%a" Provenance.pp_kind r.Provenance.kind;
  (match r.Provenance.moved_from with
  | Some l when not (Label.equal l r.Provenance.origin) ->
      Fmt.pf ppf " from %a (origin %a)" Label.pp l Label.pp r.Provenance.origin
  | Some l -> Fmt.pf ppf " from %a" Label.pp l
  | None ->
      if r.Provenance.kind <> Provenance.Unmoved then
        Fmt.pf ppf " (origin %a)" Label.pp r.Provenance.origin);
  if r.Provenance.copy_index > 0 then
    Fmt.pf ppf ", copy %d" r.Provenance.copy_index;
  if r.Provenance.renamed then Fmt.pf ppf ", renamed";
  match r.Provenance.scores with
  | Some s ->
      Fmt.pf ppf ", scores d=%d cp=%d ord=%d" s.Provenance.d s.Provenance.cp
        s.Provenance.order;
      if s.Provenance.pressure <> 0 then Fmt.pf ppf " press=%d" s.Provenance.pressure
  | None -> ()

let pp ppf e =
  Fmt.pf ppf "== %s: provenance ==@." e.task;
  let reach = Cfg.reachable e.cfg in
  List.iter
    (fun id ->
      if Gis_util.Ints.Int_set.mem id reach then begin
        let b = Cfg.block e.cfg id in
        Fmt.pf ppf "%a:@." Label.pp b.Block.label;
        let line i =
          Fmt.pf ppf "  %4d  %-36s " (Instr.uid i) (Fmt.str "%a" Instr.pp i);
          (match Provenance.find e.prov (Instr.uid i) with
          | Some r -> Fmt.pf ppf "[%a]" pp_record r
          | None -> Fmt.pf ppf "[no provenance]");
          Fmt.pf ppf "@."
        in
        Gis_util.Vec.iter line b.Block.body;
        line b.Block.term
      end)
    (Cfg.layout e.cfg);
  Fmt.pf ppf "@.== %s: motion kinds ==@." e.task;
  List.iter
    (fun (k, c) ->
      if c > 0 then Fmt.pf ppf "  %-14s %5d@." (Provenance.kind_name k) c)
    (Provenance.counts e.prov);
  Fmt.pf ppf "@.== %s: cycle attribution ==@." e.task;
  Fmt.pf ppf
    "  issue span: base %d, scheduled %d, saved %d cycle(s)@."
    e.base_last_issue e.sched_last_issue (delta_total e);
  List.iter
    (fun (a : Provenance.attribution) ->
      if a.Provenance.delta <> 0 then begin
        Fmt.pf ppf "  %-10s %+5d  <-" a.Provenance.ablock a.Provenance.delta;
        List.iter
          (fun (k, c) -> Fmt.pf ppf " %s %+d" (Provenance.kind_name k) c)
          a.Provenance.credits;
        Fmt.pf ppf "@."
      end)
    e.attribution;
  Fmt.pf ppf "  total %+d (identity %s)@."
    (Provenance.attribution_total e.attribution)
    (if identity_holds e then "exact" else "VIOLATED");
  let b = e.bounds in
  Fmt.pf ppf "@.== %s: schedule bounds ==@." e.task;
  Fmt.pf ppf
    "  achieved %d, lower bound %d (critical path %d, resources %d), gap %d@."
    b.Gis_bounds.Bounds.achieved b.Gis_bounds.Bounds.lower_bound
    b.Gis_bounds.Bounds.cp_lb b.Gis_bounds.Bounds.res_lb
    b.Gis_bounds.Bounds.gap;
  List.iter
    (fun (c : Gis_bounds.Bounds.credit) ->
      if c.Gis_bounds.Bounds.cycles > 0 then
        Fmt.pf ppf "  gap from %-14s %5d@." c.Gis_bounds.Bounds.category
          c.Gis_bounds.Bounds.cycles)
    b.Gis_bounds.Bounds.credits;
  Fmt.pf ppf "  bound identity %s@."
    (if Gis_bounds.Bounds.identity_holds b then "exact" else "VIOLATED");
  Fmt.pf ppf "@.== %s: memory disambiguation ==@." e.task;
  Fmt.pf ppf "  Mem edges kept %d, pruned %d@." e.mem_edges_kept
    e.mem_edges_pruned

let to_json e =
  Json.Obj
    [
      ("task", Json.String e.task);
      ("base_last_issue", Json.Int e.base_last_issue);
      ("sched_last_issue", Json.Int e.sched_last_issue);
      ("base_cycles", Json.Int e.base_cycles);
      ("sched_cycles", Json.Int e.sched_cycles);
      ("delta_cycles", Json.Int (delta_total e));
      ("identity_exact", Json.Bool (identity_holds e));
      ("provenance", Provenance.to_json e.prov);
      ("attribution", Provenance.attribution_to_json e.attribution);
      ("bound", Gis_bounds.Bounds.to_json e.bounds);
      ("mem_edges_kept", Json.Int e.mem_edges_kept);
      ("mem_edges_pruned", Json.Int e.mem_edges_pruned);
    ]
