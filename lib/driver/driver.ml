open Gis_ir
open Gis_core
open Gis_sim
open Gis_frontend
open Gis_workloads
open Gis_obs

type source =
  | Tiny_c of string
  | Asm of string
  | File of string
  | Generated of int

type task = { name : string; source : source }

let task_of_file path = { name = Filename.basename path; source = File path }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let workload_tasks () =
  { name = "minmax"; source = Tiny_c Minmax.source }
  :: List.map
       (fun (p : Spec_proxy.t) ->
         { name = p.Spec_proxy.name; source = Tiny_c p.Spec_proxy.source })
       Spec_proxy.all

let corpus_tasks ~seeds =
  List.map (fun s -> { name = Fmt.str "rand-%d" s; source = Generated s }) seeds

type summary = {
  blocks : int;
  instrs : int;
  unrolled : int;
  rotated : int;
  moves : int;
  spec_moves : int;
  renames : int;
  events : int;
  spilled_regs : int;
  spill_instrs : int;
  spill_slots : int;
  max_pressure : int;
  base_cycles : int;
  sched_cycles : int;
  observables : string;
  code : string;
  phases : Span.t list;
}

type error =
  | Compile_error of string
  | Crashed of string
  | Timed_out of float
  | Mismatch of string
  | Infeasible of string

let pp_error ppf = function
  | Compile_error m -> Fmt.pf ppf "compile error: %s" m
  | Crashed m -> Fmt.pf ppf "crashed: %s" m
  | Timed_out s -> Fmt.pf ppf "timed out after %.3fs" s
  | Mismatch m -> Fmt.pf ppf "observable mismatch: %s" m
  | Infeasible m -> Fmt.pf ppf "regalloc infeasible: %s" m

type task_result = {
  task : string;
  outcome : (summary, error) result;
  seconds : float;
  worker : int;
  flight : string list;
}

type pool_stats = {
  jobs : int;
  tasks : int;
  failed : int;
  wall_seconds : float;
  busy_seconds : float array;
  tasks_run : int array;
  queue_high_water : int;
}

let utilization p =
  if p.jobs = 0 || p.wall_seconds <= 0.0 then 0.0
  else
    Array.fold_left ( +. ) 0.0 p.busy_seconds
    /. (float_of_int p.jobs *. p.wall_seconds)

type report = { results : task_result list; pool : pool_stats }

let failures r =
  List.filter_map
    (fun t -> match t.outcome with Ok _ -> None | Error e -> Some (t.task, e))
    r.results

(* ------------------------------------------------------------------ *)
(* One task, start to finish.                                          *)
(* ------------------------------------------------------------------ *)

(* Mirrors gisc's default simulation input: every declared array gets
   deterministic pseudo-random contents, and a variable called [n], if
   any, is set to the element count. *)
let default_input compiled ~elements ~seed =
  let rng = Prng.create ~seed in
  let arrays =
    List.map
      (fun (name, _, len) ->
        (name, List.init (min len elements) (fun _ -> Prng.int rng 1000)))
      compiled.Codegen.arrays
  in
  let n_binding =
    match List.assoc_opt "n" compiled.Codegen.vars with
    | Some reg -> [ (reg, elements) ]
    | None -> []
  in
  {
    Simulator.no_input with
    Simulator.int_regs = n_binding;
    memory = Codegen.array_input compiled arrays;
  }

exception Observable_mismatch of string

(* Process-wide metrics (no-ops until Gis_obs.Metrics.enable). The
   log2 histograms observe microseconds — with seconds everything
   sub-second lands in bucket 0 and the distribution is invisible. *)
let m_tasks = Metrics.counter "driver.tasks_total"
let m_failed = Metrics.counter "driver.tasks_failed_total"
let m_task_seconds = Metrics.histogram "driver.task_seconds"
let m_queue_wait_us = Metrics.histogram "driver.queue_wait_us"
let m_run_us = Metrics.histogram "driver.task_run_us"

let compile_task task =
  match task.source with
  | Tiny_c src -> Codegen.compile_string src
  | Asm src -> { Codegen.cfg = Asm.parse src; vars = []; arrays = [] }
  | File path ->
      (* Read inside the worker so batch IO runs in parallel and an
         unreadable file fails only its own task. *)
      let src = read_file path in
      if Filename.check_suffix path ".s" then
        { Codegen.cfg = Asm.parse src; vars = []; arrays = [] }
      else Codegen.compile_string src
  | Generated seed -> Random_prog.generate_compiled ~seed

let run_task machine config ~simulate ~elements ~seed task =
  (* Label streams must depend only on the task, not on which worker
     runs it or what ran before — the determinism guarantee. *)
  Label.reset_fresh_counter ();
  (* Fresh flight-recorder history per task, so a dump after a failure
     shows only the events that led up to it. *)
  Flight.clear ();
  Flight.notef "task %s: start" task.name;
  match compile_task task with
  | exception Parser.Error m | exception Lexer.Error m
  | exception Codegen.Error m | exception Asm.Error m ->
      Error (Compile_error m)
  | exception e -> Error (Crashed (Printexc.to_string e))
  | compiled -> (
      Flight.notef "task %s: compiled, %d blocks" task.name
        (Cfg.num_blocks compiled.Codegen.cfg);
      let sink, sink_events = Sink.memory () in
      (* The recorder rides along on the task's own sink: every
         scheduler event lands in the ring too, memory sink first so
         the events count is unaffected. *)
      let config =
        { config with Config.obs = Sink.tee sink (Flight.sink ()) }
      in
      match
        let baseline = Cfg.deep_copy compiled.Codegen.cfg in
        ignore (Pipeline.run machine Config.base baseline);
        let cfg = Cfg.deep_copy compiled.Codegen.cfg in
        let stats = Pipeline.run machine config cfg in
        Validate.check_exn cfg;
        let moves = Pipeline.moves stats in
        let base_cycles, sched_cycles, observables =
          if not simulate then (-1, -1, "")
          else begin
            Flight.notef "task %s: scheduled, simulating" task.name;
            let input =
              match task.source with
              | Generated gseed -> Random_prog.random_input ~seed:gseed compiled
              | Tiny_c _ | Asm _ | File _ -> default_input compiled ~elements ~seed
            in
            (* With allocation on, the scheduled code runs on physical
               names: its input moves through the assignment, and spill
               traffic is routed through the frame register to the
               simulator's dedicated spill segment — so observables
               compare exactly, no filtering. *)
            let sched_input, frame =
              match stats.Pipeline.regalloc with
              | Some alloc ->
                  ( Gis_regalloc.Regalloc.remap_input alloc input,
                    alloc.Gis_regalloc.Regalloc.frame )
              | None -> (input, None)
            in
            let ob = Simulator.run machine baseline input in
            let os = Simulator.run ?frame machine cfg sched_input in
            let base_obs = Simulator.observables ob in
            let sched_obs = Simulator.observables os in
            if not (String.equal base_obs sched_obs) then
              raise
                (Observable_mismatch
                   (Fmt.str "base:@,%s@,scheduled:@,%s" base_obs sched_obs));
            (ob.Simulator.cycles, os.Simulator.cycles, sched_obs)
          end
        in
        let spilled_regs, spill_instrs, spill_slots, max_pressure =
          match stats.Pipeline.regalloc with
          | None -> (0, 0, 0, 0)
          | Some a ->
              ( List.length a.Gis_regalloc.Regalloc.spilled,
                a.Gis_regalloc.Regalloc.spill_loads
                + a.Gis_regalloc.Regalloc.spill_stores,
                a.Gis_regalloc.Regalloc.slots,
                List.fold_left
                  (fun acc (s : Gis_regalloc.Regalloc.cls_stat) ->
                    max acc s.Gis_regalloc.Regalloc.pressure)
                  0 a.Gis_regalloc.Regalloc.per_class )
        in
        {
          blocks = Cfg.num_blocks cfg;
          instrs = Cfg.instr_count cfg;
          unrolled = stats.Pipeline.unrolled;
          rotated = stats.Pipeline.rotated;
          moves = List.length moves;
          spec_moves =
            List.length
              (List.filter
                 (fun (m : Global_sched.move) -> m.Global_sched.speculative)
                 moves);
          renames =
            List.length
              (List.filter
                 (fun (m : Global_sched.move) -> m.Global_sched.renamed <> None)
                 moves);
          events = List.length (sink_events ());
          spilled_regs;
          spill_instrs;
          spill_slots;
          max_pressure;
          base_cycles;
          sched_cycles;
          observables;
          code = Fmt.str "%a" Cfg.pp cfg;
          phases = stats.Pipeline.phases;
        }
      with
      | summary -> Ok summary
      | exception Observable_mismatch m -> Error (Mismatch m)
      | exception Gis_regalloc.Regalloc.Infeasible m -> Error (Infeasible m)
      | exception e -> Error (Crashed (Printexc.to_string e)))

(* ------------------------------------------------------------------ *)
(* The pool.                                                           *)
(* ------------------------------------------------------------------ *)

let run ?(jobs = 1) ?timeout ?(simulate = true) ?(elements = 128) ?(seed = 3)
    machine config tasks =
  let tasks_arr = Array.of_list tasks in
  let n = Array.length tasks_arr in
  let jobs = max 1 (min jobs (max 1 n)) in
  let results = Array.make n None in
  let busy = Array.make jobs 0.0 in
  let ran = Array.make jobs 0 in
  let mutex = Mutex.create () in
  let next = ref 0 in
  let high_water = ref 0 in
  let dequeue () =
    Mutex.protect mutex (fun () ->
        if !next >= n then None
        else begin
          let depth = n - !next in
          if depth > !high_water then high_water := depth;
          let i = !next in
          incr next;
          Some i
        end)
  in
  let batch_start = Span.now () in
  let worker wid =
    let rec loop () =
      match dequeue () with
      | None -> ()
      | Some i ->
          let task = tasks_arr.(i) in
          let elapsed = Span.now () -. batch_start in
          (match timeout with
          | Some budget when elapsed > budget ->
              (* The batch budget is already spent: mark the task timed
                 out without running it at all, instead of letting
                 everything still queued run to completion. The payload
                 is the batch time elapsed when it was skipped. *)
              Metrics.incr m_tasks;
              Metrics.incr m_failed;
              results.(i) <-
                Some
                  {
                    task = task.name;
                    outcome = Error (Timed_out elapsed);
                    seconds = 0.0;
                    worker = wid;
                    flight = [];
                  }
          | Some _ | None ->
              (* How long the task sat queued before a worker picked it
                 up — every task was enqueued at batch start. *)
              Metrics.observe m_queue_wait_us (elapsed *. 1e6);
              let t0 = Span.now () in
              let outcome =
                try run_task machine config ~simulate ~elements ~seed task
                with e -> Error (Crashed (Printexc.to_string e))
              in
              let seconds = Span.now () -. t0 in
              (* Per-task budget check stays: a single task that blows
                 the whole budget is reported as timed out too, even
                 though (cooperatively) it did run to completion. *)
              let outcome =
                match timeout with
                | Some budget when seconds > budget -> Error (Timed_out seconds)
                | Some _ | None -> outcome
              in
              Metrics.incr m_tasks;
              if Result.is_error outcome then Metrics.incr m_failed;
              Metrics.observe m_task_seconds seconds;
              Metrics.observe m_run_us (seconds *. 1e6);
              busy.(wid) <- busy.(wid) +. seconds;
              ran.(wid) <- ran.(wid) + 1;
              (* The ring is domain-local and run_task ran right here,
                 so on failure it still holds that task's last events. *)
              let flight =
                if Result.is_error outcome then Flight.dump_messages ()
                else []
              in
              results.(i) <-
                Some { task = task.name; outcome; seconds; worker = wid; flight });
          loop ()
    in
    loop ()
  in
  let domains = Array.init jobs (fun wid -> Domain.spawn (fun () -> worker wid)) in
  Array.iter Domain.join domains;
  let wall_seconds = Span.now () -. batch_start in
  let results =
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* every index was dequeued exactly once *))
         results)
  in
  let failed =
    List.length (List.filter (fun r -> Result.is_error r.outcome) results)
  in
  {
    results;
    pool =
      {
        jobs;
        tasks = n;
        failed;
        wall_seconds;
        busy_seconds = busy;
        tasks_run = ran;
        queue_high_water = !high_water;
      };
  }

let speedup sequential parallel =
  if parallel.pool.wall_seconds <= 0.0 then 0.0
  else sequential.pool.wall_seconds /. parallel.pool.wall_seconds

(* ------------------------------------------------------------------ *)
(* Reporting.                                                          *)
(* ------------------------------------------------------------------ *)

let error_to_json e =
  let tag, detail =
    match e with
    | Compile_error m -> ("compile_error", Json.String m)
    | Crashed m -> ("crashed", Json.String m)
    | Timed_out s -> ("timed_out", Json.Float s)
    | Mismatch m -> ("mismatch", Json.String m)
    | Infeasible m -> ("infeasible", Json.String m)
  in
  Json.Obj [ ("error", Json.String tag); ("detail", detail) ]

let report_to_json ?(deterministic = false) r =
  let scrub_f x = if deterministic then 0.0 else x in
  let result_json t =
    Json.Obj
      ([
         ("task", Json.String t.task);
         ("seconds", Json.Float (scrub_f t.seconds));
         ("worker", Json.Int (if deterministic then 0 else t.worker));
       ]
      @ (* Flight-recorder messages carry wall-clock prose, so they are
           dropped from deterministic reports (which must stay
           byte-identical across runs and job counts). *)
      (if deterministic || t.flight = [] then []
       else
         [
           ( "flight",
             Json.List (List.map (fun m -> Json.String m) t.flight) );
         ])
      @
      match t.outcome with
      | Error e -> [ ("outcome", error_to_json e) ]
      | Ok s ->
          [
            ( "outcome",
              Json.Obj
                [
                  ("blocks", Json.Int s.blocks);
                  ("instrs", Json.Int s.instrs);
                  ("unrolled", Json.Int s.unrolled);
                  ("rotated", Json.Int s.rotated);
                  ("moves", Json.Int s.moves);
                  ("spec_moves", Json.Int s.spec_moves);
                  ("renames", Json.Int s.renames);
                  ("events", Json.Int s.events);
                  ("spilled_regs", Json.Int s.spilled_regs);
                  ("spill_instrs", Json.Int s.spill_instrs);
                  ("spill_slots", Json.Int s.spill_slots);
                  ("max_pressure", Json.Int s.max_pressure);
                  ("base_cycles", Json.Int s.base_cycles);
                  ("sched_cycles", Json.Int s.sched_cycles);
                  ("observables", Json.String s.observables);
                  ( "phases",
                    Span.to_json
                      (if deterministic then Span.scrub s.phases else s.phases)
                  );
                ] );
          ])
  in
  let p = r.pool in
  let pool_json =
    if deterministic then
      (* Only fields that are invariant in the worker count survive, so
         jobs:1 and jobs:N reports are byte-identical. *)
      [ ("tasks", Json.Int p.tasks); ("failed", Json.Int p.failed) ]
    else
      [
        ("jobs", Json.Int p.jobs);
        ("tasks", Json.Int p.tasks);
        ("failed", Json.Int p.failed);
        ("wall_seconds", Json.Float p.wall_seconds);
        ( "busy_seconds",
          Json.List
            (Array.to_list
               (Array.map (fun b -> Json.Float b) p.busy_seconds)) );
        ( "tasks_run",
          Json.List
            (Array.to_list (Array.map (fun k -> Json.Int k) p.tasks_run)) );
        ("queue_high_water", Json.Int p.queue_high_water);
        ("utilization", Json.Float (utilization p));
      ]
  in
  Json.Obj
    [
      ("results", Json.List (List.map result_json r.results));
      ("pool", Json.Obj pool_json);
    ]

let pp_table ppf r =
  Fmt.pf ppf "  %-14s | %7s | %7s | %6s | %6s | %s@." "task" "base" "sched"
    "moves" "sec" "status";
  List.iter
    (fun t ->
      match t.outcome with
      | Ok s ->
          Fmt.pf ppf "  %-14s | %7d | %7d | %6d | %6.3f | ok@." t.task
            s.base_cycles s.sched_cycles s.moves t.seconds
      | Error e ->
          Fmt.pf ppf "  %-14s | %7s | %7s | %6s | %6.3f | %a@." t.task "-" "-"
            "-" t.seconds pp_error e)
    r.results;
  let p = r.pool in
  Fmt.pf ppf
    "  pool: %d jobs, %d tasks (%d failed), %.3fs wall, %.0f%% utilization, \
     queue high water %d@."
    p.jobs p.tasks p.failed p.wall_seconds
    (100.0 *. utilization p)
    p.queue_high_water;
  (* With metrics on, the per-task latency distributions (µs, so log2
     buckets actually discriminate between sub-second tasks). *)
  if Metrics.is_enabled () then begin
    let line name h =
      let v = Metrics.histogram_stats h in
      if v.Metrics.count > 0 then
        Fmt.pf ppf "  %s: %a@." name Metrics.pp_histogram_view v
    in
    line "queue wait (us)" m_queue_wait_us;
    line "task run (us)" m_run_us
  end
