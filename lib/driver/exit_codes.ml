(* Single source of truth for the CLI's exit codes — the README table,
   [gisc], [gisc explain] and [gisc check] all derive from here. *)

let ok = 0
let compile_error = 1
let usage_error = 2
let verification_failure = 3
let batch_partial_failure = 4
let batch_timeout_only = 5
let fuzz_finding = 6
let regalloc_infeasible = 7

let describe = function
  | 0 -> "success"
  | 1 -> "compile or input error"
  | 2 -> "usage error"
  | 3 -> "verification or schedule-legality failure"
  | 4 -> "batch run with at least one failing program"
  | 5 -> "batch run whose only failures were timeouts"
  | 6 -> "fuzzing campaign produced at least one finding"
  | 7 -> "register allocation infeasible for the requested register file"
  | _ -> "unknown"

let all =
  [
    ok;
    compile_error;
    usage_error;
    verification_failure;
    batch_partial_failure;
    batch_timeout_only;
    fuzz_finding;
    regalloc_infeasible;
  ]
