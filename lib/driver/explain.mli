(** [gisc explain]: provenance-tracked run of one program.

    Compiles the task, schedules it with a fresh provenance table on
    [config], simulates the base and scheduled versions, and attributes
    the per-block issue-cycle difference to motion kinds. The deltas
    sum to [base_last_issue - sched_last_issue] exactly (the E−A
    accounting identity; {!identity_holds} checks it and the test suite
    pins it on every workload). *)

type t = {
  task : string;
  prov : Gis_obs.Provenance.t;
  cfg : Gis_ir.Cfg.t;
  attribution : Gis_obs.Provenance.attribution list;
  base_last_issue : int;
  sched_last_issue : int;
  base_cycles : int;
  sched_cycles : int;
  base_telemetry : Gis_obs.Trace.summary;
  sched_telemetry : Gis_obs.Trace.summary;
  bounds : Gis_bounds.Bounds.t;
      (** schedule-quality lower bounds and gap attribution for the
          scheduled run (see {!Gis_bounds.Bounds}) *)
  mem_edges_kept : int;
      (** Mem dependence edges materialised while building the
          scheduled pipeline's DDGs (the baseline run is excluded) *)
  mem_edges_pruned : int;
      (** Mem edges memory disambiguation proved unnecessary — the
          family rule plus, when [config.disambiguate], the symbolic
          address analysis *)
}

val delta_total : t -> int
val identity_holds : t -> bool

val explain :
  ?elements:int ->
  ?seed:int ->
  ?trace:bool ->
  Gis_machine.Machine.t ->
  Gis_core.Config.t ->
  Driver.task ->
  (t, Driver.error) result
(** [trace] (default false) additionally records per-issue event logs
    in both telemetry summaries (for {!Gis_obs.Chrome_trace} export or
    the ASCII pipeline view). Any [Config.prov] already on [config] is
    replaced by the fresh table. *)

val pp : t Fmt.t
(** Per-instruction provenance grouped by block, motion-kind counts,
    and the per-block cycle attribution table. *)

val to_json : t -> Gis_obs.Json.t
