open Gis_util
open Gis_ir

(* An origin is one definition instance: instruction [o_uid] defining
   register [o_reg] ([Reg.hash] is injective, so the hash is the
   register), or the register's value at procedure entry ([o_uid] =
   -1). A call that defines several registers yields one origin per
   register — collapsing them would claim two distinct results equal. *)
type origin = { o_uid : int; o_reg : int }

let equal_origin a b = a.o_uid = b.o_uid && a.o_reg = b.o_reg

let pp_origin ppf o =
  if o.o_uid < 0 then Fmt.pf ppf "entry(r%d)" o.o_reg
  else Fmt.pf ppf "def#%d(r%d)" o.o_uid o.o_reg

type value =
  | Const of int
  | Sym of { origin : origin; offset : int }
  | Top

let pp_value ppf = function
  | Const k -> Fmt.pf ppf "const %d" k
  | Sym { origin; offset } -> Fmt.pf ppf "%a%+d" pp_origin origin offset
  | Top -> Fmt.string ppf "top"

let equal_value a b =
  match a, b with
  | Const x, Const y -> x = y
  | Sym x, Sym y -> equal_origin x.origin y.origin && x.offset = y.offset
  | Top, Top -> true
  | (Const _ | Sym _ | Top), _ -> false

(* Environments map register keys to values. A register absent from the
   map reads as [Top] — only unreachable blocks ever hit that case,
   because the entry environment seeds every register of the procedure
   with its own entry origin. *)
type env = value Ints.Int_map.t

let lookup env r =
  Option.value ~default:Top (Ints.Int_map.find_opt (Reg.hash r) env)

let join_value a b = if equal_value a b then a else Top

let join_env (a : env) (b : env) : env =
  Ints.Int_map.merge
    (fun _ va vb ->
      match va, vb with
      | Some x, Some y -> Some (join_value x y)
      | Some _, None | None, Some _ | None, None -> Some Top)
    a b

let equal_env (a : env) (b : env) = Ints.Int_map.equal equal_value a b

(* Affine shift; [None] when the input is [Top] (the caller then starts
   a fresh origin, which is always a sound description of a def). *)
let shift v k =
  match v with
  | Const c -> Some (Const (c + k))
  | Sym { origin; offset } -> Some (Sym { origin; offset = offset + k })
  | Top -> None

let fresh uid (r : Reg.t) = Sym { origin = { o_uid = uid; o_reg = Reg.hash r }; offset = 0 }

let set env (r : Reg.t) v = Ints.Int_map.add (Reg.hash r) v env

(* Transfer of one instruction. [record] is called with the base value
   of a load/store before the [update] post-increment — the simulator
   computes the effective address from the old base, then writes the
   destination, then updates the base (so on [LU rT,rT] the update
   wins, mirrored by the [set] order below). *)
let transfer ~record env i =
  let uid = Instr.uid i in
  let opaque env r = set env r (fresh uid r) in
  match Instr.kind i with
  | Instr.Load_imm { dst; value } -> set env dst (Const value)
  | Instr.Move { dst; src } -> (
      match lookup env src with
      | Top -> opaque env dst
      | v -> set env dst v)
  | Instr.Binop { op; dst; lhs; rhs } -> (
      let affine =
        match op, rhs with
        | Instr.Add, Instr.Imm k -> shift (lookup env lhs) k
        | Instr.Sub, Instr.Imm k -> shift (lookup env lhs) (-k)
        | Instr.Add, Instr.Reg r -> (
            match lookup env lhs, lookup env r with
            | Const a, Const b -> Some (Const (a + b))
            | vl, Const k -> shift vl k
            | Const k, vr -> shift vr k
            | (Sym _ | Top), (Sym _ | Top) -> None)
        | Instr.Sub, Instr.Reg r -> (
            match lookup env lhs, lookup env r with
            | Const a, Const b -> Some (Const (a - b))
            | vl, Const k -> shift vl (-k)
            | (Const _ | Sym _ | Top), (Sym _ | Top) -> None)
        | ( ( Instr.Mul | Instr.Div | Instr.Rem | Instr.And | Instr.Or
            | Instr.Xor | Instr.Shl | Instr.Shr ),
            _ ) ->
            None
      in
      match affine with Some v -> set env dst v | None -> opaque env dst)
  | Instr.Load { dst; base; offset; update } ->
      let bv = lookup env base in
      record uid bv;
      let env = opaque env dst in
      if update then
        set env base
          (Option.value ~default:(fresh uid base) (shift bv offset))
      else env
  | Instr.Store { src = _; base; offset; update } ->
      let bv = lookup env base in
      record uid bv;
      if update then
        set env base
          (Option.value ~default:(fresh uid base) (shift bv offset))
      else env
  | Instr.Compare _ | Instr.Fcompare _ | Instr.Fbinop _ | Instr.Call _ ->
      List.fold_left opaque env (Instr.defs i)
  | Instr.Branch_cond _ | Instr.Jump _ | Instr.Halt -> env

type t = { base_values : (int, value) Hashtbl.t }

let compute cfg =
  let n = Cfg.num_blocks cfg in
  (* Entry environment: every register of the procedure starts at its
     own entry origin, so a merge of "defined in the loop" with "still
     the entry value" joins two different origins to [Top] instead of
     spuriously claiming them equal. *)
  let entry_env =
    Cfg.fold_blocks
      (fun acc b ->
        List.fold_left
          (fun acc i ->
            List.fold_left
              (fun acc r ->
                set acc r (Sym { origin = { o_uid = -1; o_reg = Reg.hash r }; offset = 0 }))
              acc
              (Instr.defs i @ Instr.uses i))
          acc (Block.instrs b))
      Ints.Int_map.empty cfg
  in
  (* Block-entry environments to fixpoint: [None] is bottom (block not
     yet reached), the neutral element of the join. Each (block,
     register) entry moves at most bottom -> value -> Top, so the
     iteration terminates quickly. *)
  let in_ : env option array = Array.make n None in
  let out : env option array = Array.make n None in
  let preds = Cfg.predecessors cfg in
  let entry = Cfg.entry cfg in
  let no_record _ _ = () in
  let step () =
    let changed = ref false in
    List.iter
      (fun id ->
        let inn =
          List.fold_left
            (fun acc p ->
              match acc, out.(p) with
              | None, o -> o
              | o, None -> o
              | Some a, Some b -> Some (join_env a b))
            (if id = entry then Some entry_env else None)
            preds.(id)
        in
        match inn with
        | None -> ()
        | Some inn ->
            let stale =
              match in_.(id) with
              | None -> true
              | Some old -> not (equal_env old inn)
            in
            if stale then begin
              in_.(id) <- Some inn;
              let o =
                List.fold_left (transfer ~record:no_record) inn
                  (Block.instrs (Cfg.block cfg id))
              in
              out.(id) <- Some o;
              changed := true
            end)
      (Cfg.layout cfg);
    !changed
  in
  ignore (Fix.iterate step);
  (* One more pass over each reached block records the base value at
     every access's own program point. *)
  let base_values = Hashtbl.create 64 in
  let record uid v = Hashtbl.replace base_values uid v in
  Array.iteri
    (fun id inn ->
      match inn with
      | None -> ()
      | Some env ->
          ignore
            (List.fold_left (transfer ~record) env
               (Block.instrs (Cfg.block cfg id))))
    in_;
  { base_values }

let base_value t uid = Option.value ~default:Top (Hashtbl.find_opt t.base_values uid)

let overclaim_for_testing = ref false

let numeric = function Const k -> k | Sym { offset; _ } -> offset | Top -> 0

let delta t ~a ~b =
  let va = base_value t a and vb = base_value t b in
  match va, vb with
  | Const x, Const y -> Some (y - x)
  | Sym x, Sym y when equal_origin x.origin y.origin ->
      Some (y.offset - x.offset)
  | (Const _ | Sym _ | Top), (Const _ | Sym _ | Top) ->
      (* The injected over-claim: pretend unprovable base pairs are
         equal modulo their tracked offsets — exactly the bug class the
         checker-side re-proof and the fuzz oracle must catch. *)
      if !overclaim_for_testing then Some (numeric vb - numeric va) else None
