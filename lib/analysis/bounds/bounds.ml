open Gis_ir
module Deps = Gis_check.Deps
module Regions = Gis_analysis.Regions
module Machine = Gis_machine.Machine
module Trace = Gis_obs.Trace
module Metrics = Gis_obs.Metrics
module Json = Gis_obs.Json

(* Everything here is derived from the checker's independently
   reconstructed dependence graph, never the scheduler's DDG: a bound
   computed from the data structure under test would inherit its bugs.

   Two kinds of numbers come out, with different contracts:

   - Static per-region numbers (Estart/Lstart/slack, cp and resource
     bounds on ONE pass through the region) are reports: they describe
     the dependence structure of the final code.

   - The dynamic lower bound is a soundness claim against the
     simulator: the machine issues in order, so within one execution
     of a block the issue-cycle gaps the simulator attributes to that
     block telescope to at least the block's longest weighted
     dependence chain. Summing entries(b) * chain_lb(b) therefore
     never exceeds the gap cycles charged to the block's executions,
     and the run's own per-unit issue counts bound the span from below
     by ceil(issues/width) - 1. Both claims are machine-model facts
     (the interlock rule and per-cycle unit slots), not heuristics. *)

type credit = { category : string; cycles : int }

type instr_bound = {
  uid : int;
  block : Label.t;
  estart : int;
  lstart : int;
  slack : int;
}

type binding_edge = {
  e_src : int;
  e_dst : int;
  e_kind : Deps.kind;
  e_weight : int;
  e_rank : int;
}

type region_bound = {
  region_id : int;
  header : Label.t;
  nesting : int;
  blocks : Label.t list;
  instr_count : int;
  static_cp_lb : int;
  static_res_lb : int;
  instrs : instr_bound list;
  binding : binding_edge list;
  entries : int;
  achieved : int;
  chain_lb : int;
  gap : int;
  credits : credit list;
}

type t = {
  achieved : int;
  cp_lb : int;
  res_lb : int;
  lower_bound : int;
  gap : int;
  credits : credit list;
  regions : region_bound list;
  partial : bool;
}

let ceil_div a b = if b <= 0 then 0 else (a + b - 1) / b

(* Largest-remainder apportionment of [total] across the stall
   categories in proportion to [weights] — integer credits that sum
   back to [total] exactly (the scheme Provenance.attribute uses for
   the motion-kind credits). *)
let apportion total weights =
  let wsum = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  if total = 0 then List.map (fun (c, _) -> { category = c; cycles = 0 }) weights
  else if wsum <= 0 || total < 0 then
    (* Nothing to be proportional to (or an unsound negative gap the
       identity check will flag): keep the sum exact by charging the
       first category. *)
    List.mapi
      (fun i (c, _) -> { category = c; cycles = (if i = 0 then total else 0) })
      weights
  else begin
    let base =
      List.map (fun (c, w) -> (c, total * w / wsum, total * w mod wsum)) weights
    in
    let used = List.fold_left (fun acc (_, b, _) -> acc + b) 0 base in
    let order =
      List.mapi (fun i (_, _, r) -> (i, r)) base
      |> List.sort (fun (i, r) (j, r') ->
             match Int.compare r' r with 0 -> Int.compare i j | c -> c)
    in
    let bonus = Array.make (List.length base) 0 in
    List.iteri (fun k (i, _) -> if k < total - used then bonus.(i) <- 1) order;
    List.mapi (fun i (c, b, _) -> { category = c; cycles = b + bonus.(i) }) base
  end

let credit_total = List.fold_left (fun acc c -> acc + c.cycles) 0

(* ------------------------------------------------------------------ *)
(* Dependence edge weights in issue-to-issue cycles.                   *)
(* ------------------------------------------------------------------ *)

(* The simulator's interlock rule: a consumer issues no earlier than
   issue(producer) + exec(producer) + delay(producer, consumer, reg). *)
let flow_weight machine ~src ~dst ~reg =
  Machine.exec_time machine src
  + Machine.delay machine ~producer:src ~consumer:dst ~reg

(* A memory edge's dynamically guaranteed weight. The simulator tracks
   only the LAST store (and last call) issued before a memory-touching
   consumer, so a store->X edge may only claim the smallest mem_delay
   over the stores between its endpoints — whichever of them is last
   at run time, in-order issue still puts it no earlier than the
   edge's source. *)
let mem_chain_weight machine ~instr_at ~src_pos ~dst_pos ~dst =
  let src = instr_at src_pos in
  let family =
    if Instr.is_store src then Some Instr.is_store
    else if Instr.is_call src then Some Instr.is_call
    else None
  in
  match family with
  | None -> 0
  | Some same ->
      let w = ref max_int in
      for p = src_pos to dst_pos - 1 do
        let i = instr_at p in
        if same i then
          w := min !w (Machine.mem_delay machine ~producer:i ~consumer:dst)
      done;
      if !w = max_int then 0 else !w

(* Static (one-pass report) weight: the edge taken at face value.
   Anti/output edges order issue but carry no interlock delay. *)
let static_weight machine (d : Deps.dep) ~src ~dst =
  match d.Deps.d_kind with
  | Deps.Flow -> (
      match d.Deps.d_reg with
      | Some reg -> flow_weight machine ~src ~dst ~reg
      | None -> 0)
  | Deps.Mem -> Machine.mem_delay machine ~producer:src ~consumer:dst
  | Deps.Anti | Deps.Output -> 0

(* ------------------------------------------------------------------ *)
(* Indexing the final CFG.                                             *)
(* ------------------------------------------------------------------ *)

type site = { s_block : int; s_pos : int; s_instr : Instr.t }

let index_cfg cfg =
  let sites = Hashtbl.create 64 in
  let block_instrs = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      let b = Cfg.block cfg bid in
      let arr =
        Array.init
          (Gis_util.Vec.length b.Block.body + 1)
          (fun p ->
            if p < Gis_util.Vec.length b.Block.body then
              Gis_util.Vec.get b.Block.body p
            else b.Block.term)
      in
      Array.iteri
        (fun p i ->
          Hashtbl.replace sites (Instr.uid i)
            { s_block = bid; s_pos = p; s_instr = i })
        arr;
      Hashtbl.replace block_instrs bid arr)
    (Cfg.layout cfg);
  (sites, block_instrs)

(* ------------------------------------------------------------------ *)
(* Per-block dynamic chains.                                           *)
(* ------------------------------------------------------------------ *)

(* Longest dynamically-enforced dependence chain of each block, as an
   issue-cycle offset from the block's first issue. In-order issue
   makes issue cycles monotone in position, so the DP folds a running
   prefix maximum into each node's incoming weighted edges;
   order-only edges add nothing beyond the prefix. *)
let block_chains machine cfg deps sites block_instrs =
  let per_block_edges : (int, (int * int * int) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (d : Deps.dep) ->
      match
        (Hashtbl.find_opt sites d.Deps.d_src, Hashtbl.find_opt sites d.Deps.d_dst)
      with
      | Some s, Some t when s.s_block = t.s_block && s.s_pos < t.s_pos ->
          let instr_at p = (Hashtbl.find block_instrs s.s_block).(p) in
          let w =
            match d.Deps.d_kind with
            | Deps.Flow -> (
                match d.Deps.d_reg with
                | Some reg ->
                    flow_weight machine ~src:s.s_instr ~dst:t.s_instr ~reg
                | None -> 0)
            | Deps.Mem ->
                mem_chain_weight machine ~instr_at ~src_pos:s.s_pos
                  ~dst_pos:t.s_pos ~dst:t.s_instr
            | Deps.Anti | Deps.Output -> 0
          in
          if w > 0 then
            Hashtbl.replace per_block_edges s.s_block
              ((s.s_pos, t.s_pos, w)
              :: Option.value ~default:[]
                   (Hashtbl.find_opt per_block_edges s.s_block))
      | _ -> ())
    deps;
  let chains = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      let n = Array.length (Hashtbl.find block_instrs bid) in
      let offset = Array.make n 0 in
      let edges =
        List.sort
          (fun (_, d, _) (_, d', _) -> Int.compare d d')
          (Option.value ~default:[] (Hashtbl.find_opt per_block_edges bid))
      in
      let rest = ref edges in
      let running = ref 0 in
      for p = 0 to n - 1 do
        offset.(p) <- !running;
        let rec take () =
          match !rest with
          | (s, d, w) :: tl when d = p ->
              offset.(p) <- max offset.(p) (offset.(s) + w);
              rest := tl;
              take ()
          | _ -> ()
        in
        take ();
        running := max !running offset.(p)
      done;
      Hashtbl.replace chains bid !running)
    (Cfg.layout cfg);
  chains

(* ------------------------------------------------------------------ *)
(* Static per-region Estart/Lstart over the dependence DAG.            *)
(* ------------------------------------------------------------------ *)

let region_static ~top_k machine cfg sites block_instrs deps
    (r : Regions.region) =
  let in_region uid =
    match Hashtbl.find_opt sites uid with
    | Some s -> Gis_util.Ints.Int_set.mem s.s_block r.Regions.own_blocks
    | None -> false
  in
  let uids =
    Gis_util.Ints.Int_set.fold
      (fun bid acc ->
        Array.fold_left
          (fun acc i -> Instr.uid i :: acc)
          acc
          (Hashtbl.find block_instrs bid))
      r.Regions.own_blocks []
    |> List.sort Int.compare
  in
  let n = List.length uids in
  let uid_arr = Array.of_list uids in
  let idx = Hashtbl.create 32 in
  Array.iteri (fun k uid -> Hashtbl.replace idx uid k) uid_arr;
  let edges =
    List.filter_map
      (fun (d : Deps.dep) ->
        if in_region d.Deps.d_src && in_region d.Deps.d_dst then
          let src = (Hashtbl.find sites d.Deps.d_src).s_instr in
          let dst = (Hashtbl.find sites d.Deps.d_dst).s_instr in
          Some (d, static_weight machine d ~src ~dst)
        else None)
      deps
  in
  (* Kahn order over the region's dependence DAG (dependences respect
     the back-edge-masked forward view, so it is acyclic). *)
  let succs = Array.make (max n 1) [] in
  let indeg = Array.make (max n 1) 0 in
  List.iter
    (fun ((d : Deps.dep), w) ->
      let s = Hashtbl.find idx d.Deps.d_src
      and t = Hashtbl.find idx d.Deps.d_dst in
      succs.(s) <- (t, w) :: succs.(s);
      indeg.(t) <- indeg.(t) + 1)
    edges;
  let estart = Array.make (max n 1) 0 in
  let order = ref [] in
  let q = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i q
  done;
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    order := i :: !order;
    List.iter
      (fun (t, w) ->
        estart.(t) <- max estart.(t) (estart.(i) + w);
        indeg.(t) <- indeg.(t) - 1;
        if indeg.(t) = 0 then Queue.add t q)
      succs.(i)
  done;
  let tail = Array.make (max n 1) 0 in
  List.iter
    (fun i ->
      List.iter (fun (t, w) -> tail.(i) <- max tail.(i) (w + tail.(t))) succs.(i))
    !order;
  let cp = ref 0 in
  for i = 0 to n - 1 do
    cp := max !cp (estart.(i) + tail.(i))
  done;
  let counts = Hashtbl.create 3 in
  Array.iter
    (fun uid ->
      let ut = Instr.unit_ty (Hashtbl.find sites uid).s_instr in
      Hashtbl.replace counts ut
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts ut)))
    uid_arr;
  let res_lb =
    max 0
      (Hashtbl.fold
         (fun ut c acc -> max acc (ceil_div c (Machine.units machine ut) - 1))
         counts 0)
  in
  let instrs =
    List.init n (fun k ->
        let uid = uid_arr.(k) in
        let s = Hashtbl.find sites uid in
        {
          uid;
          block = (Cfg.block cfg s.s_block).Block.label;
          estart = estart.(k);
          lstart = !cp - tail.(k);
          slack = !cp - tail.(k) - estart.(k);
        })
  in
  let binding =
    List.map
      (fun ((d : Deps.dep), w) ->
        let s = Hashtbl.find idx d.Deps.d_src
        and t = Hashtbl.find idx d.Deps.d_dst in
        {
          e_src = d.Deps.d_src;
          e_dst = d.Deps.d_dst;
          e_kind = d.Deps.d_kind;
          e_weight = w;
          e_rank = estart.(s) + w + tail.(t);
        })
      edges
    |> List.sort (fun a b ->
           match Int.compare b.e_rank a.e_rank with
           | 0 -> (
               match Int.compare b.e_weight a.e_weight with
               | 0 -> (
                   match Int.compare a.e_src b.e_src with
                   | 0 -> Int.compare a.e_dst b.e_dst
                   | c -> c)
               | c -> c)
           | c -> c)
    |> List.filteri (fun k _ -> k < top_k)
  in
  (!cp, res_lb, instrs, binding)

(* ------------------------------------------------------------------ *)

let compute ?(top_k = 5) ?(disambig = true) ~machine ~halted cfg
    (summary : Trace.summary) =
  let program = Deps.of_cfg ~disambig cfg in
  let deps = Deps.reconstruct program in
  let sites, block_instrs = index_cfg cfg in
  let chains = block_chains machine cfg deps sites block_instrs in
  let label_of bid = (Cfg.block cfg bid).Block.label in
  let entries_of =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (b : Trace.block_stat) ->
        Hashtbl.replace tbl b.Trace.block (b.Trace.entries, b.Trace.stall_cycles))
      summary.Trace.blocks;
    fun label -> Option.value ~default:(0, 0) (Hashtbl.find_opt tbl label)
  in
  let weights =
    [
      ("interlock", summary.Trace.interlock_cycles);
      ("mem_interlock", summary.Trace.mem_interlock_cycles);
      ("call_interlock", summary.Trace.call_interlock_cycles);
      ("unit_busy", Trace.unit_busy_total summary);
    ]
  in
  let rstruct = Regions.compute cfg in
  let regions =
    List.map
      (fun (r : Regions.region) ->
        let static_cp_lb, static_res_lb, instrs, binding =
          region_static ~top_k machine cfg sites block_instrs deps r
        in
        let blocks =
          Gis_util.Ints.Int_set.fold
            (fun bid acc -> bid :: acc)
            r.Regions.own_blocks []
          |> List.sort Int.compare |> List.map label_of
        in
        let entries, achieved, chain, max_entered_chain =
          Gis_util.Ints.Int_set.fold
            (fun bid (en, ach, ch, mx) ->
              let e, s = entries_of (label_of bid) in
              let c = Option.value ~default:0 (Hashtbl.find_opt chains bid) in
              (en + e, ach + s, ch + (e * c), if e > 0 then max mx c else mx))
            r.Regions.own_blocks (0, 0, 0, 0)
        in
        (* A run that did not halt left (at most) one block execution
           incomplete; that block's region must concede one full
           chain. The partial block is unknown here, so every region
           concedes its own worst entered chain — sound, and a no-op
           for the overwhelmingly common halted case. *)
        let chain = if halted then chain else max 0 (chain - max_entered_chain) in
        let gap = achieved - chain in
        {
          region_id = r.Regions.id;
          header = label_of r.Regions.entry_block;
          nesting = r.Regions.nesting;
          blocks;
          instr_count = List.length instrs;
          static_cp_lb;
          static_res_lb;
          instrs;
          binding;
          entries;
          achieved;
          chain_lb = chain;
          gap;
          credits = apportion gap weights;
        })
      (Regions.regions rstruct)
  in
  let achieved = summary.Trace.last_issue in
  let cp_lb = List.fold_left (fun acc r -> acc + r.chain_lb) 0 regions in
  let res_lb =
    max 0
      (List.fold_left
         (fun acc (u : Trace.unit_stat) ->
           max acc
             (ceil_div u.Trace.issues (Machine.units machine u.Trace.unit_) - 1))
         0 summary.Trace.units)
  in
  let lower_bound = max cp_lb res_lb in
  let gap = achieved - lower_bound in
  {
    achieved;
    cp_lb;
    res_lb;
    lower_bound;
    gap;
    credits = apportion gap weights;
    regions;
    partial = not halted;
  }

let identity_holds t =
  t.gap >= 0
  && credit_total t.credits = t.gap
  && t.achieved = t.lower_bound + credit_total t.credits
  && List.for_all
       (fun (r : region_bound) ->
         r.gap >= 0
         && credit_total r.credits = r.gap
         && r.achieved = r.chain_lb + credit_total r.credits)
       t.regions
  && List.fold_left (fun acc (r : region_bound) -> acc + r.achieved) 0 t.regions
     = t.achieved

let slack_of_uid t uid =
  List.find_map
    (fun r ->
      List.find_map
        (fun i -> if i.uid = uid then Some i.slack else None)
        r.instrs)
    t.regions

let credit_cycles t category =
  Option.value ~default:0
    (List.find_map
       (fun c -> if String.equal c.category category then Some c.cycles else None)
       t.credits)

(* ---- metrics ---- *)

let g_achieved = Metrics.gauge "bound.achieved_cycles"
let g_cp = Metrics.gauge "bound.cp_lower_cycles"
let g_res = Metrics.gauge "bound.res_lower_cycles"
let g_lower = Metrics.gauge "bound.lower_cycles"
let g_gap = Metrics.gauge "bound.gap_cycles"
let g_regions = Metrics.gauge "bound.regions"

let export_metrics t =
  Metrics.set g_achieved (float_of_int t.achieved);
  Metrics.set g_cp (float_of_int t.cp_lb);
  Metrics.set g_res (float_of_int t.res_lb);
  Metrics.set g_lower (float_of_int t.lower_bound);
  Metrics.set g_gap (float_of_int t.gap);
  Metrics.set g_regions (float_of_int (List.length t.regions))

(* ---- rendering ---- *)

let pp_kind ppf = function
  | Deps.Flow -> Fmt.string ppf "flow"
  | Deps.Anti -> Fmt.string ppf "anti"
  | Deps.Output -> Fmt.string ppf "output"
  | Deps.Mem -> Fmt.string ppf "mem"

let pp_credits ppf cs =
  match List.filter (fun c -> c.cycles <> 0) cs with
  | [] -> Fmt.string ppf "none"
  | nz ->
      Fmt.(
        list ~sep:comma (fun ppf c -> Fmt.pf ppf "%s %d" c.category c.cycles))
        ppf nz

let slack_range = function
  | [] -> None
  | i :: rest ->
      Some
        (List.fold_left
           (fun (lo, hi) j -> (min lo j.slack, max hi j.slack))
           (i.slack, i.slack) rest)

let pp ppf t =
  Fmt.pf ppf "achieved (last issue) %6d@." t.achieved;
  Fmt.pf ppf "lower bound           %6d  = max(chain %d, resource %d)@."
    t.lower_bound t.cp_lb t.res_lb;
  Fmt.pf ppf "gap                   %6d  <- %a@." t.gap pp_credits t.credits;
  if t.partial then
    Fmt.pf ppf "(run did not halt: chain bounds conservatively reduced)@.";
  let last = List.length t.regions - 1 in
  List.iteri
    (fun k r ->
      let bar, pad = if k = last then ("└─", "   ") else ("├─", "│  ") in
      Fmt.pf ppf "%s region %d (header %a, nesting %d, %d instrs, blocks %a)@."
        bar r.region_id Label.pp r.header r.nesting r.instr_count
        Fmt.(list ~sep:comma Label.pp)
        r.blocks;
      Fmt.pf ppf "%s entries %d: achieved %d = chain lb %d + gap %d  <- %a@."
        pad r.entries r.achieved r.chain_lb r.gap pp_credits r.credits;
      Fmt.pf ppf "%s one pass: cp %d, resource %d" pad r.static_cp_lb
        r.static_res_lb;
      (match slack_range r.instrs with
      | Some (lo, hi) -> Fmt.pf ppf "; slack %d..%d@." lo hi
      | None -> Fmt.pf ppf "@.");
      List.iter
        (fun e ->
          Fmt.pf ppf "%s   #%d -%a(%d)-> #%d  rank %d%s@." pad e.e_src pp_kind
            e.e_kind e.e_weight e.e_dst e.e_rank
            (if e.e_rank = r.static_cp_lb && r.static_cp_lb > 0 then
               "  [critical]"
             else ""))
        r.binding)
    t.regions;
  Fmt.pf ppf "identity %s@." (if identity_holds t then "exact" else "VIOLATED")

let credits_to_json cs =
  Json.Obj (List.map (fun c -> (c.category, Json.Int c.cycles)) cs)

let instr_to_json i =
  Json.Obj
    [
      ("uid", Json.Int i.uid);
      ("block", Json.String i.block);
      ("estart", Json.Int i.estart);
      ("lstart", Json.Int i.lstart);
      ("slack", Json.Int i.slack);
    ]

let edge_to_json e =
  Json.Obj
    [
      ("src_uid", Json.Int e.e_src);
      ("dst_uid", Json.Int e.e_dst);
      ("kind", Json.String (Fmt.str "%a" pp_kind e.e_kind));
      ("weight", Json.Int e.e_weight);
      ("rank", Json.Int e.e_rank);
    ]

let region_to_json r =
  Json.Obj
    [
      ("id", Json.Int r.region_id);
      ("header", Json.String r.header);
      ("nesting", Json.Int r.nesting);
      ("blocks", Json.List (List.map (fun l -> Json.String l) r.blocks));
      ("instr_count", Json.Int r.instr_count);
      ("static_cp_lb", Json.Int r.static_cp_lb);
      ("static_res_lb", Json.Int r.static_res_lb);
      ("entries", Json.Int r.entries);
      ("achieved_cycles", Json.Int r.achieved);
      ("chain_lower_cycles", Json.Int r.chain_lb);
      ("gap_cycles", Json.Int r.gap);
      ("credits", credits_to_json r.credits);
      ("instrs", Json.List (List.map instr_to_json r.instrs));
      ("binding_edges", Json.List (List.map edge_to_json r.binding));
    ]

let to_json t =
  Json.Obj
    [
      ("achieved_cycles", Json.Int t.achieved);
      ("cp_lower_cycles", Json.Int t.cp_lb);
      ("res_lower_cycles", Json.Int t.res_lb);
      ("lower_bound_cycles", Json.Int t.lower_bound);
      ("gap_cycles", Json.Int t.gap);
      ("credits", credits_to_json t.credits);
      ("identity_exact", Json.Bool (identity_holds t));
      ("partial", Json.Bool t.partial);
      ("regions", Json.List (List.map region_to_json t.regions));
    ]
