(** Schedule-quality lower bounds, slack, and cycle-gap attribution.

    From the checker's trusted {!Gis_check.Deps.reconstruct} graph —
    never the scheduler's own DDG — compute, per scheduling region of
    the final scheduled program:

    - static Estart/Lstart per instruction under the machine's
      latencies, a critical-path lower bound on one pass through the
      region, per-instruction slack (Lstart - Estart), the top-k
      binding dependence edges, and a resource lower bound
      (ceil(class count / unit width) - 1 per functional unit);
    - a dynamic lower bound on the achieved issue span: every full
      execution of a block must spend at least the block's longest
      weighted dependence chain in issue-cycle gaps, so
      [entries(b) * chain_lb(b)] summed over a region's blocks bounds
      the gap cycles the simulator attributed to those blocks.

    The program-level bound is [max(cp_lb, res_lb)] where [res_lb]
    comes from the scheduled run's own per-unit issue counts. The
    distance between achieved cycles and the bound is attributed per
    stall category from the run's stall-attributed telemetry with
    largest-remainder rounding, so integer credits satisfy the exact
    identity: achieved = lower bound + sum of attributed gap — at the
    program level and per region. *)

open Gis_ir

type credit = { category : string; cycles : int }
(** One stall category's share of a gap; categories are the
    simulator's: "interlock", "mem_interlock", "call_interlock",
    "unit_busy". Shares always sum exactly to the gap. *)

type instr_bound = {
  uid : int;
  block : Label.t;
  estart : int;  (** earliest issue offset within one region pass *)
  lstart : int;  (** latest issue offset that keeps the pass at cp_lb *)
  slack : int;  (** lstart - estart; 0 marks the critical path *)
}

type binding_edge = {
  e_src : int;  (** producer uid *)
  e_dst : int;  (** consumer uid *)
  e_kind : Gis_check.Deps.kind;
  e_weight : int;  (** issue-to-issue cycles the edge forces *)
  e_rank : int;  (** Estart(src) + weight + tail(dst); = cp_lb when critical *)
}

type region_bound = {
  region_id : int;
  header : Label.t;  (** the region's entry block *)
  nesting : int;  (** 0 for the top-level region *)
  blocks : Label.t list;  (** own blocks (nested loops excluded) *)
  instr_count : int;
  static_cp_lb : int;  (** critical path of one pass through the region *)
  static_res_lb : int;  (** unit-capacity bound on one pass *)
  instrs : instr_bound list;  (** per-instruction Estart/Lstart/slack *)
  binding : binding_edge list;  (** top-k edges by rank *)
  entries : int;  (** dynamic entries summed over own blocks *)
  achieved : int;  (** gap cycles the simulator charged to own blocks *)
  chain_lb : int;  (** sum of entries(b) * chain_lb(b) over own blocks *)
  gap : int;  (** achieved - chain_lb; >= 0 when the bound is sound *)
  credits : credit list;  (** gap split per stall category; sums to gap *)
}

type t = {
  achieved : int;  (** the scheduled run's last issue cycle *)
  cp_lb : int;  (** dynamic critical-path bound (sum over regions) *)
  res_lb : int;  (** dynamic resource bound from per-unit issue counts *)
  lower_bound : int;  (** max cp_lb res_lb *)
  gap : int;  (** achieved - lower_bound *)
  credits : credit list;  (** gap split per stall category; sums to gap *)
  regions : region_bound list;  (** innermost first, top level last *)
  partial : bool;
      (** the run did not halt (trap or fuel), so one block execution
          may be incomplete; chain bounds were conservatively reduced *)
}

val compute :
  ?top_k:int ->
  ?disambig:bool ->
  machine:Gis_machine.Machine.t ->
  halted:bool ->
  Cfg.t ->
  Gis_obs.Trace.summary ->
  t
(** [compute ~machine ~halted cfg summary] bounds the run described by
    [summary] (the scheduled run's telemetry) for the final scheduled
    [cfg] it executed. [top_k] caps the binding edges kept per region
    (default 5). [disambig] (default [true]) is forwarded to
    {!Gis_check.Deps.of_cfg}: with symbolic memory disambiguation off
    the dependence chains keep every syntactic Mem edge and the lower
    bound can only rise. [halted] must be false unless the run stopped
    at a halt terminator. *)

val identity_holds : t -> bool
(** The exact accounting identity, checked at both levels: the bound
    is sound (no negative gap), program credits sum to the program
    gap, each region's credits sum to its gap, and the regions'
    achieved gap cycles telescope to the program's last issue. *)

val slack_of_uid : t -> int -> int option
(** Static slack of the instruction with the given uid, if bounded. *)

val credit_cycles : t -> string -> int
(** Cycles attributed to the given category at program level (0 for an
    unknown category). *)

val export_metrics : t -> unit
(** Publish [bound.*] gauges (achieved/cp/resource/lower/gap cycles
    and the region count) into {!Gis_obs.Metrics}. *)

val pp : t Fmt.t
(** Tree rendering: program totals, then one node per region with its
    bounds, slack range, and binding edges. *)

val to_json : t -> Gis_obs.Json.t
