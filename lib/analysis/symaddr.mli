(** Whole-procedure symbolic address analysis.

    A forward abstract interpretation over the CFG computing, at every
    memory access, the abstract value of the access's base register in
    the flat lattice

    {v Const k  |  Sym (origin, k)  |  Top v}

    where [origin] names one definition instance: either a specific
    defining instruction (an opaque def — a load result, a call result,
    a non-affine arithmetic result) or the register's value at procedure
    entry. [Sym (o, k)] means "the value most recently produced by [o],
    plus [k]"; the affine transfer tracks [Load_imm], [Move], and
    add/sub-with-a-known-constant [Binop]s (including the base
    post-increment of [update] loads/stores), every other definition
    starts a fresh origin, and CFG merges join pointwise with
    equality-or-Top.

    Soundness of origin comparison: a point maps a register to
    [Sym (o, k)] only when {e every} path to it passes through [o] with
    only affine adjustments since. Two accesses inside one traversal of
    an acyclic forward view therefore read the {e same} dynamic instance
    of [o] — if a redefinition (a second execution of [o], or any other
    def) could intervene on some path, the join at the second access
    would have produced [Top] or a different origin. Since the DDG keeps
    all register dependences, reordering two accesses never changes the
    base values they read, so same-origin bases with disjoint
    [offset, offset+width) ranges can never touch the same location —
    the paper's Section 4.2 fourth rule, upgraded from "same base
    register, same scan version" to full affine address arithmetic.

    The static checker never consults this module: [lib/check] carries
    its own independent re-implementation ({!Gis_check.Addrcheck}) so
    that every edge pruned here is re-proved from the stage's input at
    verification time. *)

type origin
(** A definition instance: an instruction uid together with the defined
    register, or the register's procedure-entry value. *)

val equal_origin : origin -> origin -> bool
val pp_origin : origin Fmt.t

type value =
  | Const of int
  | Sym of { origin : origin; offset : int }
  | Top

val pp_value : value Fmt.t

type t

val compute : Gis_ir.Cfg.t -> t
(** Run the fixpoint and record, for every [Load]/[Store] in the graph,
    the abstract value of its base register at its own program point
    (before the [update] post-increment, matching the effective-address
    computation). *)

val base_value : t -> int -> value
(** [base_value t uid] is the abstract base value of the memory access
    with instruction uid [uid]; [Top] when [uid] is not a recorded
    load or store. *)

val delta : t -> a:int -> b:int -> int option
(** [delta t ~a ~b] is [Some d] when the analysis proves that at every
    joint execution the base value of access [b] equals the base value
    of access [a] plus [d] — both [Const], or both [Sym] on the same
    origin. [None] otherwise. This is the one blessed entry point for
    {!Gis_ddg.Alias.ranges_disjoint}'s inter-block contract: callers
    shift [b]'s offsets by [d] and compare ranges. *)

val overclaim_for_testing : bool ref
(** Fault-injection hook for the checker's and the differential
    fuzzer's self-tests: when set, {!delta} fabricates a delta for
    pairs it cannot prove (differing origins, [Top]) — the classic
    unsound "syntactically different bases never alias" bug. The
    checker-side re-implementation does not consult this module, so a
    schedule built on the over-claim must be rejected at verification
    time. Never set outside tests. *)
