(** Static schedule-legality verification (translation validation).

    Given the pre- and post-IR of one pipeline stage, the checker
    independently reconstructs the dependence graph and the
    control-dependence relation of the *input* program and verifies,
    without running anything, that the stage's output preserves them:

    - every data/control/memory dependence still executes in order
      (modulo anti/output dependences legitimately dissolved by
      renaming, re-validated against the transformed registers);
    - every use still reads from exactly the same definition sites
      (use-def chains are invariant under legal motion and renaming);
    - every cross-block motion is classified against the paper's
      taxonomy — useful into an equivalent block (Definition 3),
      speculative into a dominating block within the configured
      speculation degree (Definition 7), or duplicated (Definition 6) —
      and each speculative motion satisfies the Section 5.3 safety
      rules: no store speculation, no clobber of a register live on the
      off-path, renames proven by sole-definition use-def chains;
    - instruction conservation holds (nothing vanishes; everything that
      appears is a provenance-recorded copy, duplicate, or spill), and
      the result is cross-checked against {!Gis_obs.Provenance} records
      when a table is supplied.

    Findings that only a paper-stricter policy would reject (Div/Rem
    speculation, degree overruns, taxonomy disagreements with the
    provenance table) are [Warning]s; hard legality violations are
    [Error]s. *)

open Gis_ir

val check_stage :
  ?prov:Gis_obs.Provenance.t ->
  ?max_speculation_degree:int ->
  stage:string ->
  pre:Cfg.t ->
  post:Cfg.t ->
  unit ->
  Diagnostic.t list
(** Verify one stage transition. [stage] selects the check matrix:
    ["unroll"]/["rotate"] (copying transforms), ["global-pass1"]/
    ["global-pass2"] (interblock motion), ["local"] (intra-block
    reordering only), ["regalloc"] (register rewriting + spill
    insertion); any other name gets the conservative motion checks. *)

type stats = {
  stages : int;
  deps_checked : int;
  motions_classified : int;
}

(** A collector accumulates per-stage results across one pipeline run;
    its [hook] has the shape of {!Gis_core.Config.t}'s [check] field. *)
type collector

val collector :
  ?prov:Gis_obs.Provenance.t -> ?max_speculation_degree:int -> unit -> collector

val hook : collector -> stage:string -> pre:Cfg.t -> post:Cfg.t -> unit

val diagnostics : collector -> (string * Diagnostic.t list) list
(** Stage name and findings, in execution order. *)

val stats : collector -> stats
val seconds : collector -> float

val errors : Diagnostic.t list -> Diagnostic.t list

val record_metrics : Diagnostic.t list -> unit
(** Bump the [check_*] counters in {!Gis_obs.Metrics} (total findings,
    errors, warnings, and one [check_rule_<rule>] counter per rule). *)

val report_to_json :
  ?stats:stats -> (string * Diagnostic.t list) list -> Gis_obs.Json.t
