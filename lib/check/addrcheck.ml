open Gis_util
open Gis_ir

type av =
  | Num of int
  | Ref of { def : int; reg : int; add : int }
  | Any

let pp_av ppf = function
  | Num k -> Fmt.pf ppf "num %d" k
  | Ref { def; reg; add } ->
      if def < 0 then Fmt.pf ppf "entry(r%d)%+d" reg add
      else Fmt.pf ppf "def#%d(r%d)%+d" def reg add
  | Any -> Fmt.string ppf "any"

let equal_av a b =
  match a, b with
  | Num x, Num y -> x = y
  | Ref x, Ref y -> x.def = y.def && x.reg = y.reg && x.add = y.add
  | Any, Any -> true
  | (Num _ | Ref _ | Any), _ -> false

type t = { at_access : (int, av) Hashtbl.t }

(* [bump v k]: the value [v + k] when the affine form survives. *)
let bump v k =
  match v with
  | Num c -> Some (Num (c + k))
  | Ref { def; reg; add } -> Some (Ref { def; reg; add = add + k })
  | Any -> None

let compute cfg =
  (* Registers interned to dense indices; environments are then flat
     arrays rather than maps. [Reg.hash] is injective, so it is both
     the intern key and the [Ref.reg] payload. *)
  let idx_of = Hashtbl.create 32 in
  let hashes = Vec.create () in
  let intern (r : Reg.t) =
    let h = Reg.hash r in
    if not (Hashtbl.mem idx_of h) then begin
      Hashtbl.add idx_of h (Vec.length hashes);
      Vec.push hashes h
    end
  in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          List.iter intern (Instr.defs i);
          List.iter intern (Instr.uses i))
        (Block.instrs b))
    cfg;
  let nr = Vec.length hashes in
  let get env (r : Reg.t) =
    match Hashtbl.find_opt idx_of (Reg.hash r) with
    | Some i -> env.(i)
    | None -> Any
  in
  let set env (r : Reg.t) v =
    match Hashtbl.find_opt idx_of (Reg.hash r) with
    | Some i -> env.(i) <- v
    | None -> ()
  in
  (* Transfer of one instruction, mutating [env]. Opaque definitions
     start a fresh instance, never [Any] — precision the scheduler side
     also has, and parity is mandatory. [note] observes the base value
     of each access before its [update] post-increment (the effective
     address uses the old base; on a load whose destination is its own
     base, the update still wins, hence the [set] order). *)
  let transfer ?note env i =
    let uid = Instr.uid i in
    let inst (r : Reg.t) = Ref { def = uid; reg = Reg.hash r; add = 0 } in
    let opaque r = set env r (inst r) in
    let seen u v = match note with Some f -> f u v | None -> () in
    match Instr.kind i with
    | Instr.Load_imm { dst; value } -> set env dst (Num value)
    | Instr.Move { dst; src } -> (
        match get env src with Any -> opaque dst | v -> set env dst v)
    | Instr.Binop { op; dst; lhs; rhs } -> (
        let affine =
          match op, rhs with
          | Instr.Add, Instr.Imm k -> bump (get env lhs) k
          | Instr.Sub, Instr.Imm k -> bump (get env lhs) (-k)
          | Instr.Add, Instr.Reg r -> (
              match get env lhs, get env r with
              | Num a, Num b -> Some (Num (a + b))
              | vl, Num k -> bump vl k
              | Num k, vr -> bump vr k
              | (Ref _ | Any), (Ref _ | Any) -> None)
          | Instr.Sub, Instr.Reg r -> (
              match get env lhs, get env r with
              | Num a, Num b -> Some (Num (a - b))
              | vl, Num k -> bump vl (-k)
              | (Num _ | Ref _ | Any), (Ref _ | Any) -> None)
          | ( ( Instr.Mul | Instr.Div | Instr.Rem | Instr.And | Instr.Or
              | Instr.Xor | Instr.Shl | Instr.Shr ),
              _ ) ->
              None
        in
        match affine with Some v -> set env dst v | None -> opaque dst)
    | Instr.Load { dst; base; offset; update } ->
        let bv = get env base in
        seen uid bv;
        opaque dst;
        if update then
          set env base (Option.value ~default:(inst base) (bump bv offset))
    | Instr.Store { src = _; base; offset; update } ->
        let bv = get env base in
        seen uid bv;
        if update then
          set env base (Option.value ~default:(inst base) (bump bv offset))
    | Instr.Compare _ | Instr.Fcompare _ | Instr.Fbinop _ | Instr.Call _ ->
        List.iter opaque (Instr.defs i)
    | Instr.Branch_cond _ | Instr.Jump _ | Instr.Halt -> ()
  in
  let run_block ?note env id =
    List.iter (transfer ?note env) (Block.instrs (Cfg.block cfg id));
    env
  in
  (* Worklist fixpoint on block-entry environments. [None] is bottom
     (block never reached); the entry block's environment seeds every
     register with its own entry instance, so a loop-carried
     redefinition joining the entry value goes to [Any] instead of
     being mistaken for it. *)
  let n = Cfg.num_blocks cfg in
  let in_ : av array option array = Array.make n None in
  let out : av array option array = Array.make n None in
  let preds = Cfg.predecessors cfg in
  let entry = Cfg.entry cfg in
  let entry_env () =
    Array.init nr (fun i -> Ref { def = -1; reg = Vec.get hashes i; add = 0 })
  in
  let join_into acc env =
    for i = 0 to nr - 1 do
      if not (equal_av acc.(i) env.(i)) then acc.(i) <- Any
    done
  in
  let wl = Fix.Worklist.create () in
  Fix.Worklist.add wl entry;
  let guard = ref 0 in
  let rec drain () =
    match Fix.Worklist.pop wl with
    | None -> ()
    | Some id ->
        incr guard;
        if !guard > 64 * (n + 1) * (nr + 2) then
          failwith "Addrcheck.compute: did not converge";
        let inn =
          List.fold_left
            (fun acc p ->
              match acc, out.(p) with
              | None, None -> None
              | None, Some o -> Some (Array.copy o)
              | Some _, None -> acc
              | Some a, Some o ->
                  join_into a o;
                  acc)
            (if id = entry then Some (entry_env ()) else None)
            preds.(id)
        in
        (match inn with
        | None -> ()
        | Some inn ->
            let stale =
              match in_.(id) with
              | None -> true
              | Some old -> not (Array.for_all2 equal_av old inn)
            in
            if stale then begin
              in_.(id) <- Some inn;
              out.(id) <- Some (run_block (Array.copy inn) id);
              List.iter
                (fun (s, _) -> Fix.Worklist.add wl s)
                (Cfg.successors cfg id)
            end);
        drain ()
  in
  drain ();
  (* Recording pass: replay each reached block once, noting every
     access's base value at its own program point. *)
  let at_access = Hashtbl.create 64 in
  let note uid v = Hashtbl.replace at_access uid v in
  Array.iteri
    (fun id inn ->
      match inn with
      | None -> ()
      | Some env -> ignore (run_block ~note (Array.copy env) id))
    in_;
  { at_access }

let base_value t uid =
  Option.value ~default:Any (Hashtbl.find_opt t.at_access uid)

let delta t ~a ~b =
  match base_value t a, base_value t b with
  | Num x, Num y -> Some (y - x)
  | Ref x, Ref y when x.def = y.def && x.reg = y.reg -> Some (y.add - x.add)
  | (Num _ | Ref _ | Any), (Num _ | Ref _ | Any) -> None
