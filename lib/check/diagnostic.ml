open Gis_obs

type severity = Error | Warning

let pp_severity ppf s =
  Fmt.string ppf (match s with Error -> "error" | Warning -> "warning")

type t = {
  rule : string;
  severity : severity;
  stage : string;
  message : string;
  uid : int option;
  blocks : Gis_ir.Label.t list;
}

let make severity ~rule ~stage ?uid ?(blocks = []) message =
  { rule; severity; stage; message; uid; blocks }

let error ~rule ~stage ?uid ?blocks msg =
  make Error ~rule ~stage ?uid ?blocks msg

let warning ~rule ~stage ?uid ?blocks msg =
  make Warning ~rule ~stage ?uid ?blocks msg

let is_error d = d.severity = Error

let counts ds =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      Hashtbl.replace tbl d.rule
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d.rule)))
    ds;
  Hashtbl.fold (fun rule n acc -> (rule, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf d =
  Fmt.pf ppf "%a[%s] %s: %s" pp_severity d.severity d.stage d.rule d.message;
  (match d.uid with None -> () | Some u -> Fmt.pf ppf " (uid %d)" u);
  match d.blocks with
  | [] -> ()
  | bs -> Fmt.pf ppf " [%a]" Fmt.(list ~sep:comma Gis_ir.Label.pp) bs

let to_json d =
  Json.Obj
    ([
       ("rule", Json.String d.rule);
       ("severity", Json.String (Fmt.str "%a" pp_severity d.severity));
       ("stage", Json.String d.stage);
       ("message", Json.String d.message);
     ]
    @ (match d.uid with None -> [] | Some u -> [ ("uid", Json.Int u) ])
    @
    match d.blocks with
    | [] -> []
    | bs -> [ ("blocks", Json.List (List.map (fun l -> Json.String l) bs)) ])

let list_to_json ds = Json.List (List.map to_json ds)
