(** Structured diagnostics for the static legality checker and linter.

    Every finding carries the rule that produced it, a severity, the
    pipeline stage (or ["input"]/["final"] for lint passes over a whole
    CFG), an optional instruction uid, and the block labels involved —
    enough for a reader to locate the offending motion without rerunning
    the pipeline. *)

type severity = Error | Warning

val pp_severity : severity Fmt.t

type t = {
  rule : string;  (** e.g. ["dependence.violated"], ["lint.dead-def"] *)
  severity : severity;
  stage : string;
  message : string;
  uid : int option;  (** instruction uid, when one is implicated *)
  blocks : Gis_ir.Label.t list;  (** blocks involved, source first *)
}

val error :
  rule:string -> stage:string -> ?uid:int -> ?blocks:Gis_ir.Label.t list ->
  string -> t

val warning :
  rule:string -> stage:string -> ?uid:int -> ?blocks:Gis_ir.Label.t list ->
  string -> t

val is_error : t -> bool

val counts : t list -> (string * int) list
(** Findings per rule, sorted by rule name. *)

val pp : t Fmt.t

val to_json : t -> Gis_obs.Json.t
val list_to_json : t list -> Gis_obs.Json.t
