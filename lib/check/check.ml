open Gis_util
open Gis_ir
open Gis_analysis
open Gis_obs

type stage_kind = Copying | Global | Local | Regalloc

let stage_kind = function
  | "unroll" | "rotate" -> Copying
  | "local" -> Local
  | "regalloc" -> Regalloc
  | "global-pass1" | "global-pass2" | _ -> Global

(* Kind equality ignoring branch/jump targets: unrolling and rotation
   retarget the back edges of surviving instructions but must change
   nothing else about them. *)
let equal_kind_modulo_targets k1 k2 =
  match k1, k2 with
  | ( Instr.Branch_cond { cr = cr1; cond = c1; expect = e1; _ },
      Instr.Branch_cond { cr = cr2; cond = c2; expect = e2; _ } ) ->
      Reg.equal cr1 cr2 && c1 = c2 && e1 = e2
  | Instr.Jump _, Instr.Jump _ -> true
  | _, _ -> Instr.equal_kind k1 k2

(* Kind equality ignoring register names: scheduling may rename a
   destination (and the uses it reaches) and allocation rewrites every
   register, but opcodes, immediates, offsets and control targets must
   survive any stage untouched. *)
let same_shape k1 k2 =
  let operand_shape (a : Instr.operand) (b : Instr.operand) =
    match a, b with
    | Instr.Imm x, Instr.Imm y -> x = y
    | Instr.Reg _, Instr.Reg _ -> true
    | Instr.Imm _, Instr.Reg _ | Instr.Reg _, Instr.Imm _ -> false
  in
  match k1, k2 with
  | ( Instr.Load { offset = o1; update = u1; _ },
      Instr.Load { offset = o2; update = u2; _ } )
  | ( Instr.Store { offset = o1; update = u1; _ },
      Instr.Store { offset = o2; update = u2; _ } ) ->
      o1 = o2 && u1 = u2
  | Instr.Load_imm { value = v1; _ }, Instr.Load_imm { value = v2; _ } ->
      v1 = v2
  | Instr.Move _, Instr.Move _ -> true
  | ( Instr.Binop { op = op1; rhs = r1; _ },
      Instr.Binop { op = op2; rhs = r2; _ } ) ->
      op1 = op2 && operand_shape r1 r2
  | Instr.Fbinop { op = op1; _ }, Instr.Fbinop { op = op2; _ } -> op1 = op2
  | Instr.Compare { rhs = r1; _ }, Instr.Compare { rhs = r2; _ } ->
      operand_shape r1 r2
  | Instr.Fcompare _, Instr.Fcompare _ -> true
  | ( Instr.Branch_cond { cond = c1; expect = e1; taken = t1; fallthru = f1; _ },
      Instr.Branch_cond { cond = c2; expect = e2; taken = t2; fallthru = f2; _ }
    ) ->
      c1 = c2 && e1 = e2 && Label.equal t1 t2 && Label.equal f1 f2
  | Instr.Jump { target = t1 }, Instr.Jump { target = t2 } ->
      Label.equal t1 t2
  | ( Instr.Call { name = n1; args = a1; ret = r1 },
      Instr.Call { name = n2; args = a2; ret = r2 } ) ->
      String.equal n1 n2
      && List.length a1 = List.length a2
      && Option.is_some r1 = Option.is_some r2
  | Instr.Halt, Instr.Halt -> true
  | _, _ -> false

let site_key = function Reaching.External -> -1 | Reaching.Def u -> u

let use_sites reaching ~uid instr =
  List.map
    (fun r ->
      List.sort_uniq compare
        (List.map site_key (Reaching.defs_of_use reaching ~uid ~reg:r)))
    (Instr.uses instr)

(* ---- per-region control analyses for motion classification ---- *)

type region_view = {
  rv_view : Regions.view;
  rv_dom : Dominance.t;
  rv_post : Dominance.Post.post;
  rv_cdg : Cdg.t;
  rv_reach : bool array array;
}

type classifier = {
  cl_pre : Cfg.t;
  cl_region_of : (int, Regions.region) Hashtbl.t;
  cl_views : (int, region_view option) Hashtbl.t;
  cl_regions : Regions.t;
}

let make_classifier pre =
  let regions = Regions.compute pre in
  let region_of = Hashtbl.create 16 in
  List.iter
    (fun (r : Regions.region) ->
      Ints.Int_set.iter
        (fun b -> Hashtbl.replace region_of b r)
        r.Regions.own_blocks)
    (Regions.regions regions);
  {
    cl_pre = pre;
    cl_region_of = region_of;
    cl_views = Hashtbl.create 8;
    cl_regions = regions;
  }

let view_of cl (r : Regions.region) =
  match Hashtbl.find_opt cl.cl_views r.Regions.id with
  | Some v -> v
  | None ->
      let v =
        match Regions.view cl.cl_pre cl.cl_regions r with
        | exception Invalid_argument _ -> None
        | view ->
            let dom = Dominance.compute view.Regions.flow in
            Some
              {
                rv_view = view;
                rv_dom = dom;
                rv_post = Dominance.Post.compute view.Regions.flow;
                rv_cdg =
                  Cdg.compute ~edge_label:view.Regions.edge_label
                    view.Regions.flow;
                rv_reach = Flow.reachable_matrix view.Regions.flow;
              }
      in
      Hashtbl.replace cl.cl_views r.Regions.id v;
      v

(* Equivalent blocks of the target node, exactly as the scheduler's
   [equiv_blocks] computes U(A) (Definition 3 on the region view). *)
let equivalents rv a =
  List.filter
    (fun e ->
      e <> a
      && (match rv.rv_view.Regions.nodes.(e) with
         | Regions.Block _ -> true
         | Regions.Inner_loop _ -> false)
      && Dominance.equivalent rv.rv_dom rv.rv_post a e)
    (List.init rv.rv_view.Regions.flow.Flow.num_nodes Fun.id)

let within_degree rv ~max_degree ~target ~source =
  List.exists
    (fun s ->
      match Cdg.speculation_degree rv.rv_cdg ~src:s ~dst:source with
      | Some d -> d >= 1 && d <= max_degree
      | None -> false)
    (target :: equivalents rv target)

(* ---- the stage checker ---- *)

type counters = { mutable deps_checked : int; mutable motions : int }

let run_stage ?prov ?(max_speculation_degree = 1) ~stage ~pre ~post () =
  let counters = { deps_checked = 0; motions = 0 } in
  match Validate.check post with
  | Error es ->
      ( List.map
          (fun m -> Diagnostic.error ~rule:"ir.invalid" ~stage m)
          es,
        counters )
  | Ok () ->
      let skind = stage_kind stage in
      let acc = ref [] in
      let err ~rule ?uid ?blocks msg =
        acc := Diagnostic.error ~rule ~stage ?uid ?blocks msg :: !acc
      in
      let warn ~rule ?uid ?blocks msg =
        acc := Diagnostic.warning ~rule ~stage ?uid ?blocks msg :: !acc
      in
      let ppre = Deps.of_cfg pre and ppost = Deps.of_cfg post in
      let pre_uids = Deps.uids ppre and post_uids = Deps.uids ppost in
      let created = Ints.Int_set.diff post_uids pre_uids in
      let label_of_pre uid = Deps.block_label_of_uid ppre uid in
      let label_of_post uid = Deps.block_label_of_uid ppost uid in
      (* Entry stability: no stage may change which block the procedure
         starts in. *)
      let entry_label c = (Cfg.block c (Cfg.entry c)).Block.label in
      if not (Label.equal (entry_label pre) (entry_label post)) then
        err ~rule:"control.entry-changed"
          ~blocks:[ entry_label pre; entry_label post ]
          "entry block changed across the stage";
      (* Conservation: nothing vanishes; everything that appears is an
         accounted-for copy, duplicate, or spill. *)
      Ints.Int_set.iter
        (fun uid ->
          err ~rule:"conservation.removed" ~uid
            ?blocks:(Option.map (fun l -> [ l ]) (label_of_pre uid))
            "instruction present before the stage is gone after it")
        (Ints.Int_set.diff pre_uids post_uids);
      Ints.Int_set.iter
        (fun uid ->
          let blocks = Option.map (fun l -> [ l ]) (label_of_post uid) in
          let record = Option.bind prov (fun p -> Provenance.find p uid) in
          let faithful_copy modulo_targets =
            match Deps.instr ppost uid with
            | None -> ()
            | Some i ->
                let k = Instr.kind i in
                let matches j =
                  if modulo_targets then
                    equal_kind_modulo_targets (Instr.kind j) k
                  else Instr.equal_kind (Instr.kind j) k
                in
                if not (List.exists matches (Cfg.all_instrs pre)) then
                  err ~rule:"transform.unfaithful-copy" ~uid ?blocks
                    "created instruction matches no instruction of the input \
                     program"
          in
          match skind with
          | Copying -> (
              faithful_copy true;
              match prov, record with
              | None, _ -> ()
              | Some _, Some r when r.Provenance.copy_index >= 1 -> ()
              | Some _, Some _ ->
                  warn ~rule:"provenance.kind-mismatch" ~uid ?blocks
                    "created instruction is not recorded as a copy"
              | Some _, None ->
                  err ~rule:"provenance.missing" ~uid ?blocks
                    "created instruction has no provenance record")
          | Global -> (
              faithful_copy false;
              match prov, record with
              | None, _ -> ()
              | Some _, Some { Provenance.kind = Provenance.Duplicated; _ } ->
                  ()
              | Some _, Some _ ->
                  err ~rule:"provenance.kind-mismatch" ~uid ?blocks
                    "instruction created by a global pass is not recorded as \
                     a duplicate"
              | Some _, None ->
                  err ~rule:"provenance.missing" ~uid ?blocks
                    "created instruction has no provenance record")
          | Local ->
              err ~rule:"conservation.created" ~uid ?blocks
                "local scheduling may not create instructions"
          | Regalloc -> (
              (match Deps.instr ppost uid with
              (* Loads and stores are spill code; a [Load_imm] is the
                 allocator's frame-base setup; a cross-class move is the
                 mfcr/mtcr transfer of a condition-register spill. *)
              | Some i
                when Instr.is_load i || Instr.is_store i
                     || (match Instr.kind i with
                        | Instr.Load_imm _ -> true
                        | Instr.Move { dst; src } ->
                            dst.Reg.cls <> src.Reg.cls
                        | _ -> false) ->
                  ()
              | Some _ ->
                  err ~rule:"conservation.created" ~uid ?blocks
                    "allocation may only insert spill loads, stores and \
                     cr transfer moves"
              | None -> ());
              match prov, record with
              | None, _ -> ()
              | ( Some _,
                  Some { Provenance.kind = Provenance.Spill_inserted; _ } ) ->
                  ()
              | Some _, Some _ ->
                  warn ~rule:"provenance.kind-mismatch" ~uid ?blocks
                    "created instruction is not recorded as spill code"
              | Some _, None ->
                  err ~rule:"provenance.missing" ~uid ?blocks
                    "created instruction has no provenance record"))
        created;
      let common =
        Ints.Int_set.elements (Ints.Int_set.inter pre_uids post_uids)
      in
      (* Per-instruction payload stability. *)
      List.iter
        (fun uid ->
          match Deps.instr ppre uid, Deps.instr ppost uid with
          | Some i1, Some i2 ->
              let k1 = Instr.kind i1 and k2 = Instr.kind i2 in
              let ok =
                match skind with
                | Copying -> equal_kind_modulo_targets k1 k2
                | Local -> Instr.equal_kind k1 k2
                | Global | Regalloc -> same_shape k1 k2
              in
              if not ok then
                err ~rule:"transform.instr-changed" ~uid
                  ?blocks:(Option.map (fun l -> [ l ]) (label_of_post uid))
                  (Fmt.str "instruction payload changed: %a became %a" Instr.pp
                     i1 Instr.pp i2)
          | None, _ | _, None -> ())
        common;
      (* Control structure: interblock motion, local scheduling and
         allocation never change the block graph. *)
      (match skind with
      | Copying -> ()
      | Global | Local | Regalloc ->
          let labels c =
            List.sort Label.compare
              (List.map
                 (fun id -> (Cfg.block c id).Block.label)
                 (Cfg.layout c))
          in
          if not (List.equal Label.equal (labels pre) (labels post)) then
            err ~rule:"control.structure-changed"
              "the stage changed the set of basic blocks"
          else
            Cfg.iter_blocks
              (fun b ->
                match Cfg.find_label post b.Block.label with
                | None -> ()
                | Some pid ->
                    let b' = Cfg.block post pid in
                    if Instr.uid b.Block.term <> Instr.uid b'.Block.term then
                      err ~rule:"control.structure-changed"
                        ~blocks:[ b.Block.label ]
                        "block terminator replaced across the stage"
                    else if
                      not
                        (List.equal Label.equal
                           (Block.successor_labels b)
                           (Block.successor_labels b'))
                    then
                      err ~rule:"control.structure-changed"
                        ~blocks:[ b.Block.label ]
                        "block successor edges changed across the stage")
              pre);
      (* Dependence preservation: every reconstructed dependence of the
         input program must still execute in order — unless renaming
         legitimately dissolved it, re-validated on the transformed
         registers. *)
      (match skind with
      | Copying -> ()
      | Global | Local | Regalloc ->
          List.iter
            (fun (d : Deps.dep) ->
              if
                Ints.Int_set.mem d.Deps.d_src post_uids
                && Ints.Int_set.mem d.Deps.d_dst post_uids
              then begin
                counters.deps_checked <- counters.deps_checked + 1;
                let active =
                  match skind with
                  | Regalloc -> true
                  | Copying | Global | Local -> (
                      match
                        ( Deps.instr ppost d.Deps.d_src,
                          Deps.instr ppost d.Deps.d_dst )
                      with
                      | Some iu, Some iv ->
                          Deps.still_conflicts d.Deps.d_kind iu iv
                      | None, _ | _, None -> true)
                in
                if
                  active
                  && not
                       (Deps.ordered ppost ~src:d.Deps.d_src ~dst:d.Deps.d_dst)
                then
                  err ~rule:"dependence.violated" ~uid:d.Deps.d_dst
                    ?blocks:
                      (match
                         ( label_of_post d.Deps.d_src,
                           label_of_post d.Deps.d_dst )
                       with
                      | Some a, Some b -> Some [ a; b ]
                      | _ -> None)
                    (Fmt.str "%a dependence of uid %d on uid %d is no longer \
                              ordered"
                       Deps.pp_kind d.Deps.d_kind d.Deps.d_dst d.Deps.d_src)
              end)
            (Deps.reconstruct ppre));
      (* Use-def chain preservation: a use must read from exactly the
         definition sites it read from before the stage (invariant under
         renaming, which rewrites both sides; duplication may only add
         sites that are this stage's own copies). *)
      (match skind with
      | Copying | Regalloc -> ()
      | Global | Local ->
          let rpre = Deps.reaching ppre and rpost = Deps.reaching ppost in
          List.iter
            (fun uid ->
              match Deps.instr ppre uid, Deps.instr ppost uid with
              | Some i1, Some i2
                when List.length (Instr.uses i1) = List.length (Instr.uses i2)
                ->
                  let s1 = use_sites rpre ~uid i1
                  and s2 = use_sites rpost ~uid i2 in
                  List.iteri
                    (fun k pre_sites ->
                      let post_sites = List.nth s2 k in
                      let equal = pre_sites = post_sites in
                      let dup_ok =
                        (not equal) && skind = Global
                        && List.for_all
                             (fun s -> List.mem s post_sites)
                             pre_sites
                        && List.for_all
                             (fun s ->
                               List.mem s pre_sites
                               || Ints.Int_set.mem s created)
                             post_sites
                      in
                      if not (equal || dup_ok) then
                        err ~rule:"dependence.use-def-changed" ~uid
                          ?blocks:
                            (Option.map (fun l -> [ l ]) (label_of_post uid))
                          (Fmt.str
                             "use #%d of uid %d reads from different \
                              definition sites after the stage"
                             k uid))
                    s1
              | _, _ -> ())
            common);
      (* Motion classification against the paper's taxonomy. *)
      let moved =
        List.filter_map
          (fun uid ->
            match label_of_pre uid, label_of_post uid with
            | Some l1, Some l2 when not (Label.equal l1 l2) ->
                Some (uid, l1, l2)
            | _ -> None)
          common
      in
      (match skind with
      | Copying -> ()
      | Local ->
          List.iter
            (fun (uid, l1, l2) ->
              err ~rule:"motion.local-pass" ~uid ~blocks:[ l1; l2 ]
                "local scheduling moved an instruction between blocks")
            moved
      | Regalloc ->
          List.iter
            (fun (uid, l1, l2) ->
              err ~rule:"motion.regalloc" ~uid ~blocks:[ l1; l2 ]
                "register allocation moved an instruction between blocks")
            moved
      | Global ->
          let cl = lazy (make_classifier pre) in
          let live_post = lazy (Liveness.compute post) in
          let record_of uid = Option.bind prov (fun p -> Provenance.find p uid) in
          List.iter
            (fun (uid, from_label, to_label) ->
              counters.motions <- counters.motions + 1;
              let blocks = [ from_label; to_label ] in
              let pre_instr = Deps.instr ppre uid in
              let post_instr = Deps.instr ppost uid in
              (match pre_instr with
              | Some i when not (Instr.movable_across_blocks i) ->
                  err ~rule:"motion.immovable" ~uid ~blocks
                    "calls and branches may never move between blocks"
              | _ -> ());
              (* Rename validity, wherever the motion landed: a renamed
                 definition must be the sole definition reaching every
                 one of its uses in the output program. *)
              let renamed_defs =
                match pre_instr, post_instr with
                | Some i1, Some i2 ->
                    List.filter
                      (fun r ->
                        not (List.exists (Reg.equal r) (Instr.defs i1)))
                      (Instr.defs i2)
                | _ -> []
              in
              List.iter
                (fun r ->
                  match
                    Reaching.sole_def_of_all_uses (Deps.reaching ppost) ~uid
                      ~reg:r
                  with
                  | Some _ -> ()
                  | None ->
                      err ~rule:"rename.unsafe" ~uid ~blocks
                        (Fmt.str
                           "renamed destination %a is not the sole definition \
                            reaching its uses"
                           Reg.pp r))
                renamed_defs;
              (match record_of uid with
              | None when prov <> None ->
                  warn ~rule:"provenance.missing" ~uid ~blocks
                    "moved instruction has no provenance record"
              | Some r
                when r.Provenance.kind = Provenance.Unmoved
                     || r.Provenance.kind = Provenance.Spill_inserted ->
                  err ~rule:"provenance.kind-mismatch" ~uid ~blocks
                    "instruction moved blocks but provenance says it did not"
              | Some r -> (
                  match r.Provenance.moved_from with
                  | Some f when not (Label.equal f from_label) ->
                      warn ~rule:"provenance.origin-mismatch" ~uid ~blocks
                        (Fmt.str
                           "provenance says the motion came from %a, the IR \
                            says %a"
                           Label.pp f Label.pp from_label)
                  | Some _ | None -> ())
              | None -> ());
              let from_id = Cfg.find_label pre from_label in
              let to_id = Cfg.find_label pre to_label in
              match from_id, to_id with
              | Some bs, Some bt -> (
                  let cl = Lazy.force cl in
                  match
                    ( Hashtbl.find_opt cl.cl_region_of bs,
                      Hashtbl.find_opt cl.cl_region_of bt )
                  with
                  | Some rs, Some rt
                    when rs.Regions.id <> rt.Regions.id ->
                      err ~rule:"motion.region-boundary" ~uid ~blocks
                        "instruction moved across a region boundary"
                  | Some rs, Some _ -> (
                      match view_of cl rs with
                      | None ->
                          warn ~rule:"motion.unclassified" ~uid ~blocks
                            "region is irreducible; motion cannot be \
                             classified"
                      | Some rv -> (
                          match
                            ( rv.rv_view.Regions.block_node bs,
                              rv.rv_view.Regions.block_node bt )
                          with
                          | Some vs, Some vt ->
                              let useful =
                                Dominance.equivalent rv.rv_dom rv.rv_post vt
                                  vs
                              in
                              let dominating =
                                Dominance.dominates rv.rv_dom vt vs
                              in
                              let kind_claimed =
                                Option.map
                                  (fun r -> r.Provenance.kind)
                                  (record_of uid)
                              in
                              if useful then begin
                                match kind_claimed with
                                | Some Provenance.Useful | None -> ()
                                | Some k ->
                                    warn ~rule:"provenance.kind-mismatch" ~uid
                                      ~blocks
                                      (Fmt.str
                                         "motion is useful (equivalent \
                                          blocks) but provenance says %a"
                                         Provenance.pp_kind k)
                              end
                              else if dominating then begin
                                (* Speculative: the Section 5.3 rules. *)
                                if
                                  not
                                    (within_degree rv
                                       ~max_degree:
                                         (max 1 max_speculation_degree)
                                       ~target:vt ~source:vs)
                                then
                                  warn ~rule:"speculation.degree" ~uid ~blocks
                                    "speculative motion gambles on more \
                                     branches than the configured degree";
                                (match pre_instr with
                                | Some i when Instr.is_store i ->
                                    err ~rule:"speculation.store" ~uid ~blocks
                                      "a store may never execute \
                                       speculatively (Section 5.1)"
                                | Some i -> (
                                    if not (Instr.speculable i) then
                                      err ~rule:"speculation.unsafe" ~uid
                                        ~blocks
                                        "instruction may not execute \
                                         speculatively";
                                    match Instr.kind i with
                                    | Instr.Binop
                                        { op = Instr.Div | Instr.Rem; _ } ->
                                        warn ~rule:"speculation.excepting"
                                          ~uid ~blocks
                                          "division may trap; the paper \
                                           excludes excepting instructions \
                                           from speculation"
                                    | _ -> ())
                                | None -> ());
                                (* Off-path clobber: no register defined by
                                   the moved instruction may be live into a
                                   successor of the target that avoids the
                                   source block. Only definitions that
                                   actually reach the target block's exit
                                   count: when several hoisted definitions of
                                   one register stack up in the target (fuzz
                                   seed 1741), the killed earlier ones never
                                   escape the block, so they cannot clobber
                                   an off-path value. *)
                                (match post_instr with
                                | None -> ()
                                | Some i ->
                                    let reaches_exit r =
                                      match Cfg.find_label post to_label with
                                      | None -> true
                                      | Some tpost ->
                                          let tblk = Cfg.block post tpost in
                                          (match
                                             Block.find_body_index tblk ~uid
                                           with
                                          | None -> true
                                          | Some idx ->
                                              not
                                                (List.exists
                                                   (fun j ->
                                                     List.exists
                                                       (Reg.equal r)
                                                       (Instr.defs j))
                                                   (List.filteri
                                                      (fun k _ -> k > idx)
                                                      (Block.instrs tblk))))
                                    in
                                    let defs =
                                      List.filter reaches_exit (Instr.defs i)
                                    in
                                    if defs <> [] then
                                      List.iter
                                        (fun (s, _) ->
                                          let off_path =
                                            match
                                              rv.rv_view.Regions.block_node s
                                            with
                                            | Some vn ->
                                                not rv.rv_reach.(vn).(vs)
                                            | None -> true
                                          in
                                          if off_path then
                                            let s_label =
                                              (Cfg.block pre s).Block.label
                                            in
                                            match
                                              Cfg.find_label post s_label
                                            with
                                            | None -> ()
                                            | Some spost ->
                                                let live =
                                                  Liveness.live_in
                                                    (Lazy.force live_post)
                                                    spost
                                                in
                                                List.iter
                                                  (fun r ->
                                                    if Reg.Set.mem r live then
                                                      err
                                                        ~rule:
                                                          "speculation.live-off-path"
                                                        ~uid
                                                        ~blocks:
                                                          (blocks
                                                          @ [ s_label ])
                                                        (Fmt.str
                                                           "%a is clobbered \
                                                            speculatively but \
                                                            live into \
                                                            off-path block %a"
                                                           Reg.pp r Label.pp
                                                           s_label))
                                                  defs)
                                        (Cfg.successors pre bt));
                                match kind_claimed with
                                | Some Provenance.Speculative | None -> ()
                                | Some k ->
                                    warn ~rule:"provenance.kind-mismatch" ~uid
                                      ~blocks
                                      (Fmt.str
                                         "motion is speculative (dominating, \
                                          non-equivalent target) but \
                                          provenance says %a"
                                         Provenance.pp_kind k)
                              end
                              else begin
                                (* Neither equivalent nor dominating: only
                                   duplication (Definition 6) makes this
                                   legal, and then this stage must have
                                   created copies. *)
                                match kind_claimed with
                                | Some Provenance.Duplicated ->
                                    if Ints.Int_set.is_empty created then
                                      warn ~rule:"duplication.coverage" ~uid
                                        ~blocks
                                        "duplicated motion but the stage \
                                         created no copies"
                                | Some _ ->
                                    err ~rule:"motion.not-upward" ~uid ~blocks
                                      "target neither is equivalent to nor \
                                       dominates the source and the motion \
                                       is not a duplication"
                                | None ->
                                    if Ints.Int_set.is_empty created then
                                      err ~rule:"motion.not-upward" ~uid
                                        ~blocks
                                        "target neither is equivalent to nor \
                                         dominates the source and the stage \
                                         created no duplicate copies"
                                    else
                                      warn ~rule:"motion.unclassified" ~uid
                                        ~blocks
                                        "non-dominating motion with copies \
                                         but no provenance to confirm \
                                         duplication"
                              end
                          | None, _ | _, None ->
                              warn ~rule:"motion.unclassified" ~uid ~blocks
                                "moved instruction's blocks are not in the \
                                 region view"))
                  | None, _ | _, None ->
                      warn ~rule:"motion.unclassified" ~uid ~blocks
                        "moved instruction's blocks belong to no region")
              | None, _ | _, None ->
                  err ~rule:"motion.not-upward" ~uid ~blocks
                    "moved instruction's source or target block does not \
                     exist in the input program")
            moved);
      (List.rev !acc, counters)

let check_stage ?prov ?max_speculation_degree ~stage ~pre ~post () =
  fst (run_stage ?prov ?max_speculation_degree ~stage ~pre ~post ())

(* ---- collector: per-pipeline-run accumulation ---- *)

type stats = {
  stages : int;
  deps_checked : int;
  motions_classified : int;
}

type collector = {
  c_prov : Provenance.t option;
  c_max_degree : int option;
  mutable c_results : (string * Diagnostic.t list) list;  (* reversed *)
  mutable c_stages : int;
  mutable c_deps : int;
  mutable c_motions : int;
  mutable c_seconds : float;
}

let collector ?prov ?max_speculation_degree () =
  {
    c_prov = prov;
    c_max_degree = max_speculation_degree;
    c_results = [];
    c_stages = 0;
    c_deps = 0;
    c_motions = 0;
    c_seconds = 0.0;
  }

let hook c ~stage ~pre ~post =
  let (diags, counters), span =
    Span.time ("check-" ^ stage) (fun () ->
        run_stage ?prov:c.c_prov
          ?max_speculation_degree:c.c_max_degree ~stage ~pre ~post ())
  in
  c.c_results <- (stage, diags) :: c.c_results;
  c.c_stages <- c.c_stages + 1;
  c.c_deps <- c.c_deps + counters.deps_checked;
  c.c_motions <- c.c_motions + counters.motions;
  c.c_seconds <- c.c_seconds +. span.Span.seconds

let diagnostics c = List.rev c.c_results

let stats c =
  {
    stages = c.c_stages;
    deps_checked = c.c_deps;
    motions_classified = c.c_motions;
  }

let seconds c = c.c_seconds

let errors ds = List.filter Diagnostic.is_error ds

let sanitize_rule rule =
  String.map
    (fun ch ->
      match ch with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ch | _ -> '_')
    rule

let record_metrics ds =
  let bump name = Metrics.incr (Metrics.counter name) in
  List.iter
    (fun (d : Diagnostic.t) ->
      bump ("check_rule_" ^ sanitize_rule d.Diagnostic.rule);
      bump
        (if Diagnostic.is_error d then "check_errors_total"
         else "check_warnings_total"))
    ds

let report_to_json ?stats results =
  let all = List.concat_map snd results in
  Json.Obj
    ([
       ( "stages",
         Json.List
           (List.map
              (fun (stage, ds) ->
                Json.Obj
                  [
                    ("stage", Json.String stage);
                    ("diagnostics", Diagnostic.list_to_json ds);
                  ])
              results) );
       ( "rule_counts",
         Json.Obj
           (List.map
              (fun (r, n) -> (r, Json.Int n))
              (Diagnostic.counts all)) );
       ("errors", Json.Int (List.length (errors all)));
       ( "warnings",
         Json.Int (List.length all - List.length (errors all)) );
     ]
    @
    match stats with
    | None -> []
    | Some s ->
        [
          ("stages_checked", Json.Int s.stages);
          ("dependences_checked", Json.Int s.deps_checked);
          ("motions_classified", Json.Int s.motions_classified);
        ])
