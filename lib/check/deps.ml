open Gis_util
open Gis_ir
open Gis_analysis
open Gis_ddg

type kind = Flow | Anti | Output | Mem

let pp_kind ppf k =
  Fmt.string ppf
    (match k with
    | Flow -> "flow"
    | Anti -> "anti"
    | Output -> "output"
    | Mem -> "mem")

type dep = { d_src : int; d_dst : int; d_kind : kind; d_reg : Reg.t option }

(* Per-instruction summary computed once per block scan: the memory
   access carries the scan-local base version, exactly as in
   [Ddg.build]'s node table. *)
type summary = {
  s_instr : Instr.t;
  s_defs : Reg.t list;
  s_uses : Reg.t list;
  s_mem : Alias.access option;
}

type program = {
  p_cfg : Cfg.t;
  p_flow : Gis_analysis.Flow.t;
  p_node_of_block : int Ints.Int_map.t;
  p_reach : bool array array;
  p_sites : (int, int * int) Hashtbl.t;  (* uid -> block id, position *)
  p_summaries : (int, summary list) Hashtbl.t;  (* block id -> in order *)
  p_uids : Ints.Int_set.t;
  p_reaching : Reaching.t Lazy.t;
  p_addr : Addrcheck.t Lazy.t;
  p_disambig : bool;
}

let cfg p = p.p_cfg
let reaching p = Lazy.force p.p_reaching
let uids p = p.p_uids

(* DFS back edges from the entry; masking them makes the whole-CFG view
   acyclic on the reachable portion (the forward program of Section 4.1,
   applied to the full procedure rather than one region). *)
let back_edges cfg =
  let n = Cfg.num_blocks cfg in
  if n = 0 then []
  else begin
    let color = Array.make n 0 in
    let acc = ref [] in
    let rec go u =
      color.(u) <- 1;
      List.iter
        (fun (v, _) ->
          if color.(v) = 1 then acc := (u, v) :: !acc
          else if color.(v) = 0 then go v)
        (Cfg.successors cfg u);
      color.(u) <- 2
    in
    go (Cfg.entry cfg);
    !acc
  end

let summarize_block (b : Block.t) =
  let versions = Hashtbl.create 8 in
  let version_of (r : Reg.t) =
    Option.value ~default:(-1) (Hashtbl.find_opt versions (Reg.hash r))
  in
  List.map
    (fun i ->
      let s =
        {
          s_instr = i;
          s_defs = Instr.defs i;
          s_uses = Instr.uses i;
          s_mem = Alias.access_of_instr ~version_of i;
        }
      in
      List.iter
        (fun r -> Hashtbl.replace versions (Reg.hash r) (Instr.uid i))
        s.s_defs;
      s)
    (Block.instrs b)

let of_cfg ?(disambig = true) cfg =
  let layout_set =
    List.fold_left
      (fun acc id -> Ints.Int_set.add id acc)
      Ints.Int_set.empty (Cfg.layout cfg)
  in
  let flow =
    Gis_analysis.Flow.of_cfg ~blocks:layout_set
      ~masked_edges:(back_edges cfg) ~entry:(Cfg.entry cfg) cfg
  in
  let node_of_block = Gis_analysis.Flow.local_of_block flow in
  let reach = Gis_analysis.Flow.reachable_matrix flow in
  let sites = Hashtbl.create 256 in
  let summaries = Hashtbl.create 64 in
  let uids = ref Ints.Int_set.empty in
  Cfg.iter_blocks
    (fun b ->
      let pos = ref 0 in
      List.iter
        (fun i ->
          Hashtbl.replace sites (Instr.uid i) (b.Block.id, !pos);
          uids := Ints.Int_set.add (Instr.uid i) !uids;
          incr pos)
        (Block.instrs b);
      Hashtbl.replace summaries b.Block.id (summarize_block b))
    cfg;
  {
    p_cfg = cfg;
    p_flow = flow;
    p_node_of_block = node_of_block;
    p_reach = reach;
    p_sites = sites;
    p_summaries = summaries;
    p_uids = !uids;
    p_reaching = lazy (Reaching.compute cfg);
    p_addr = lazy (Addrcheck.compute cfg);
    p_disambig = disambig;
  }

let site p uid = Hashtbl.find_opt p.p_sites uid
let block_id_of_uid p uid = Option.map fst (site p uid)
let pos_of_uid p uid = Option.map snd (site p uid)

let block_label_of_uid p uid =
  Option.map (fun b -> (Cfg.block p.p_cfg b).Block.label) (block_id_of_uid p uid)

let instr p uid =
  match site p uid with
  | None -> None
  | Some (b, pos) -> List.nth_opt (Block.instrs (Cfg.block p.p_cfg b)) pos

let block_reaches p a b =
  if a = b then true
  else
    match
      ( Ints.Int_map.find_opt a p.p_node_of_block,
        Ints.Int_map.find_opt b p.p_node_of_block )
    with
    | Some na, Some nb -> p.p_reach.(na).(nb)
    | None, _ | _, None -> false

let ordered p ~src ~dst =
  match site p src, site p dst with
  | Some (b1, p1), Some (b2, p2) ->
      if b1 = b2 then p1 < p2
      else block_reaches p b1 b2 && not (block_reaches p b2 b1)
  | None, _ | _, None -> false

let inter_regs a b = List.exists (fun r -> List.exists (Reg.equal r) b) a

let still_conflicts kind iu iv =
  match kind with
  | Mem -> true
  | Flow -> inter_regs (Instr.defs iu) (Instr.uses iv)
  | Anti -> inter_regs (Instr.uses iu) (Instr.defs iv)
  | Output -> inter_regs (Instr.defs iu) (Instr.defs iv)

(* Kill-sensitive single-block scan, mirroring [Ddg.intra_block_scan]:
   flow from the last definition, output over the last definition, anti
   from uses since the last definition, memory pairwise with scan-local
   base versions refined by [mem_conflict]. *)
let intra_deps ~mem_conflict summaries add =
  let last_def = Hashtbl.create 8 in
  let uses_since = Hashtbl.create 8 in
  let mem_before = ref [] in
  List.iter
    (fun s ->
      let u = Instr.uid s.s_instr in
      List.iter
        (fun r ->
          match Hashtbl.find_opt last_def (Reg.hash r) with
          | Some d -> add d u Flow (Some r)
          | None -> ())
        s.s_uses;
      List.iter
        (fun r ->
          (match Hashtbl.find_opt last_def (Reg.hash r) with
          | Some d -> add d u Output (Some r)
          | None -> ());
          List.iter
            (fun x -> add x u Anti (Some r))
            (Option.value ~default:[]
               (Hashtbl.find_opt uses_since (Reg.hash r))))
        s.s_defs;
      (match s.s_mem with
      | Some a ->
          List.iter
            (fun (m, am) -> if mem_conflict (m, am) (u, a) then add m u Mem None)
            !mem_before;
          mem_before := (u, a) :: !mem_before
      | None -> ());
      List.iter
        (fun r ->
          Hashtbl.replace last_def (Reg.hash r) u;
          Hashtbl.replace uses_since (Reg.hash r) [])
        s.s_defs;
      List.iter
        (fun r ->
          let cur =
            Option.value ~default:[] (Hashtbl.find_opt uses_since (Reg.hash r))
          in
          Hashtbl.replace uses_since (Reg.hash r) (u :: cur))
        s.s_uses)
    summaries

(* Inter-block memory disambiguation, mirroring
   [Ddg.interblock_mem_conflict]: scan-local versions mean nothing
   across blocks, so base values are proved equal through a shared
   single reaching definition. *)
let interblock_mem_conflict ~base_sites (ua, a) (ub, b) =
  match a, b with
  | Alias.Load_ref _, Alias.Load_ref _ -> false
  | Alias.Call_ref, _ | _, Alias.Call_ref -> true
  | ( (Alias.Load_ref x | Alias.Store_ref x),
      (Alias.Load_ref y | Alias.Store_ref y) ) -> (
      if not (Reg.equal x.Alias.base y.Alias.base) then true
      else
        match base_sites ua x, base_sites ub y with
        | Some [ sa ], Some [ sb ] when Reaching.equal_site sa sb ->
            not (Alias.ranges_disjoint x y)
        | _, _ -> true)

let reconstruct p =
  let acc = ref [] in
  let add src dst kind reg =
    if src <> dst then acc := { d_src = src; d_dst = dst; d_kind = kind; d_reg = reg } :: !acc
  in
  let base_sites uid (ri : Alias.ref_info) =
    Some (Reaching.defs_of_use (reaching p) ~uid ~reg:ri.Alias.base)
  in
  (* The symbolic-address refinement: a conflicting-looking pair stays
     a Mem dependence unless the two accesses live in different memory
     families, or the checker's own address analysis ([Addrcheck],
     deliberately not the scheduler's [Symaddr]) proves a base delta
     that puts their ranges apart. Matches [Ddg.decide_mem] in
     precision — a weaker rule here would demand edges the scheduler
     legitimately pruned and reject legal schedules. *)
  let addr = if p.p_disambig then Some (Lazy.force p.p_addr) else None in
  let refine ua a ub b conservative =
    conservative
    &&
    match a, b with
    | Alias.Call_ref, _ | _, Alias.Call_ref -> true
    | ( (Alias.Load_ref x | Alias.Store_ref x),
        (Alias.Load_ref y | Alias.Store_ref y) ) -> (
        x.Alias.family = y.Alias.family
        &&
        match addr with
        | None -> true
        | Some t -> (
            match Addrcheck.delta t ~a:ua ~b:ub with
            | Some d ->
                not
                  (Alias.ranges_disjoint x
                     { y with Alias.offset = y.Alias.offset + d })
            | None -> true))
  in
  (* Entry-reachable blocks only: unreachable code has no forward order
     (its back edges were never masked, so it may be cyclic) and is the
     linter's business, not the order oracle's. *)
  let entry_node =
    Ints.Int_map.find_opt (Cfg.entry p.p_cfg) p.p_node_of_block
  in
  let view_blocks =
    List.filter
      (fun id ->
        match entry_node, Ints.Int_map.find_opt id p.p_node_of_block with
        | Some e, Some n -> p.p_reach.(e).(n)
        | None, _ | _, None -> false)
      (Cfg.layout p.p_cfg)
  in
  List.iter
    (fun b ->
      intra_deps
        ~mem_conflict:(fun (m, am) (u, a) ->
          refine m am u a (Alias.conflict am a))
        (Hashtbl.find p.p_summaries b) add)
    view_blocks;
  List.iter
    (fun ba ->
      List.iter
        (fun bb ->
          if ba <> bb && block_reaches p ba bb then
            List.iter
              (fun sa ->
                let ua = Instr.uid sa.s_instr in
                List.iter
                  (fun sb ->
                    let ub = Instr.uid sb.s_instr in
                    List.iter
                      (fun r ->
                        if List.exists (Reg.equal r) sb.s_uses then
                          add ua ub Flow (Some r);
                        if List.exists (Reg.equal r) sb.s_defs then
                          add ua ub Output (Some r))
                      sa.s_defs;
                    List.iter
                      (fun r ->
                        if List.exists (Reg.equal r) sb.s_defs then
                          add ua ub Anti (Some r))
                      sa.s_uses;
                    match sa.s_mem, sb.s_mem with
                    | Some x, Some y ->
                        if
                          refine ua x ub y
                            (interblock_mem_conflict ~base_sites (ua, x)
                               (ub, y))
                        then add ua ub Mem None
                    | None, _ | _, None -> ())
                  (Hashtbl.find p.p_summaries bb))
              (Hashtbl.find p.p_summaries ba))
        view_blocks)
    view_blocks;
  !acc
